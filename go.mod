module fmore

go 1.24

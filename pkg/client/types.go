package client

import (
	"errors"
	"fmt"
	"time"

	"fmore/internal/transport"
)

// Wire-spec aliases. The exchange's job/equilibrium descriptions are
// defined next to the wire protocol in internal/transport; aliasing them
// here lets modules outside this repository populate JobSpec (Rule,
// Equilibrium) without naming an internal import path.
type (
	// RuleSpec describes a scoring rule ("additive", "leontief",
	// "cobb-douglas" with per-dimension coefficients).
	RuleSpec = transport.RuleSpec
	// CostSpec describes a bidder cost family c(q, θ).
	CostSpec = transport.CostSpec
	// DistSpec describes the private-type distribution F of θ.
	DistSpec = transport.DistSpec
	// EquilibriumSpec describes the bidder-side game a job needs to serve
	// the solved Theorem 1 strategy.
	EquilibriumSpec = transport.EquilibriumSpec
)

// Error codes of the v1 error envelope, mirrored from the exchange.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeUnknownJob     = "unknown_job"
	CodeRoundPending   = "round_pending"
	CodeNoStrategy     = "no_strategy"
	CodeOutcomeEvicted = "outcome_evicted"
	CodeDuplicateBid   = "duplicate_bid"
	CodeJobClosed      = "job_closed"
	CodeBelowQuorum    = "below_quorum"
	CodeExchangeClosed = "exchange_closed"
	CodeNotRegistered  = "not_registered"
	CodeBlacklisted    = "blacklisted"
	CodeTimeout        = "timeout"
	// CodeOverloaded (429) means the exchange's admission controller shed
	// the request; the APIError's RetryAfter carries the server's hint and
	// the client retries after it automatically (within the retry budget).
	CodeOverloaded = "overloaded"
	// CodeWrongPartition (421) means the replica does not own the job; the
	// APIError's ReplicaURL names the owner. The client handles it
	// transparently — see EnableRouting — so callers rarely observe it.
	CodeWrongPartition = "wrong_partition"
	// CodeDurabilityLost (503) means the replica's outcome log failed and
	// it refuses durable writes (degraded mode); reads still serve. The
	// client treats it as routing feedback: it refreshes the partition map
	// and re-aims once (same Idempotency-Key — the degraded replica
	// executed nothing), then fails within the retry budget if the whole
	// cluster is degraded.
	CodeDurabilityLost = "durability_lost"
)

// APIError is a non-2xx response decoded from the uniform v1 error envelope
// {code, message, retry_after_ms?}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error code (Code* constants).
	Code string
	// Message is the human-readable detail.
	Message string
	// RetryAfter is the server's suggested retry delay, when it sent one.
	RetryAfter time.Duration
	// Partition, ReplicaURL and MapVersion are set on wrong_partition
	// responses: the owning partition, its replica's base URL, and the map
	// version behind the verdict.
	Partition  string
	ReplicaURL string
	MapVersion int64
}

// Error implements the error interface.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("exchange: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
	}
	return fmt.Sprintf("exchange: %s (HTTP %d)", e.Message, e.Status)
}

// ErrorCode extracts the envelope code from an error chain, or "" when err
// is not an APIError.
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsNotFound reports whether err is any of the 404-family codes (unknown
// job, pending round, no strategy, unknown route).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == 404
}

// Job is a hosted job's status view.
type Job struct {
	ID           string `json:"id"`
	State        string `json:"state"` // "collecting", "scoring" or "closed"
	Round        int    `json:"round"`
	PendingBids  int    `json:"pending_bids"`
	Rule         string `json:"rule"`
	K            int    `json:"k"`
	BidWindowMS  int64  `json:"bid_window_ms"` // 0 = manual rounds
	MaxRounds    int    `json:"max_rounds"`
	MinBids      int    `json:"min_bids"`
	KeepOutcomes int    `json:"keep_outcomes"`
	// HasStrategy reports whether Strategy/NewBidder will succeed.
	HasStrategy bool `json:"has_strategy"`
}

// Bid is one sealed bid: a promised quality vector and the expected payment.
type Bid struct {
	NodeID    int       `json:"node_id"`
	Qualities []float64 `json:"qualities"`
	Payment   float64   `json:"payment"`
	// Meta optionally labels the node in the registry (open-posture
	// exchanges only).
	Meta string `json:"meta,omitempty"`
}

// Winner is one selected bid of an outcome. Payment is what the aggregator
// pays; BidPayment is what the bid asked (they differ under second price).
type Winner struct {
	NodeID     int       `json:"node_id"`
	Score      float64   `json:"score"`
	Payment    float64   `json:"payment"`
	BidPayment float64   `json:"bid_payment"`
	Qualities  []float64 `json:"qualities"`
}

// Outcome is one completed auction round.
type Outcome struct {
	Job              string   `json:"job"`
	Round            int      `json:"round"`
	NumBids          int      `json:"num_bids"`
	LatencyMS        float64  `json:"latency_ms"`
	Winners          []Winner `json:"winners"`
	TotalPayment     float64  `json:"total_payment"`
	AggregatorProfit float64  `json:"aggregator_profit"`
	// Scores is indexed by the round's bids in ascending node-ID order.
	Scores []float64 `json:"scores"`
	// Error is set (and the winner fields zero) when the round failed; it
	// appears on events and outcome listings, which must represent failed
	// rounds to keep round numbering contiguous.
	Error string `json:"error,omitempty"`
}

// WinnerIDs returns the winning node IDs in descending score order.
func (o Outcome) WinnerIDs() []int {
	ids := make([]int, len(o.Winners))
	for i, w := range o.Winners {
		ids[i] = w.NodeID
	}
	return ids
}

// Won reports whether nodeID is among the outcome's winners, and its
// payment if so.
func (o Outcome) Won(nodeID int) (payment float64, won bool) {
	for _, w := range o.Winners {
		if w.NodeID == nodeID {
			return w.Payment, true
		}
	}
	return 0, false
}

// Metrics is the exchange's health snapshot (GET /v1/metrics).
type Metrics struct {
	UptimeSec    float64 `json:"uptime_sec"`
	JobsActive   int64   `json:"jobs_active"`
	JobsCreated  int64   `json:"jobs_created"`
	NodesKnown   int     `json:"nodes_known"`
	RoundsTotal  int64   `json:"rounds_total"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	RoundsFailed int64   `json:"rounds_failed"`
	IdleTicks    int64   `json:"idle_ticks"`
	BidsAccepted int64   `json:"bids_accepted"`
	BidsRejected int64   `json:"bids_rejected"`
	BidsPerSec   float64 `json:"bids_per_sec"`
	// WalSnapshots / WalSnapshotErrors count WAL compactions (snapshot +
	// log rotation) on a durable exchange; both 0 when running in-memory.
	WalSnapshots      int64 `json:"wal_snapshots"`
	WalSnapshotErrors int64 `json:"wal_snapshot_errors"`
	// WalSegmentCount / WalBytes gauge the WAL's on-disk footprint (live
	// segment count and total bytes across segments); both 0 in-memory.
	WalSegmentCount int64 `json:"wal_segment_count"`
	WalBytes        int64 `json:"wal_bytes"`
	// FirehoseEvents / FirehoseDropped count events published to the
	// exchange's observability firehose and events slow sinks missed.
	FirehoseEvents    int64   `json:"firehose_events"`
	FirehoseDropped   int64   `json:"firehose_dropped"`
	RoundLatencyP50Ms float64 `json:"round_latency_p50_ms"`
	RoundLatencyP99Ms float64 `json:"round_latency_p99_ms"`
}

// Rollup is one aggregate view — windowed or lifetime — of a job's or
// node's auction activity, as served by the stats endpoints. Node rollups
// leave the round fields zero (rounds are a job-level event).
type Rollup struct {
	Rounds            int64   `json:"rounds"`
	RoundsFailed      int64   `json:"rounds_failed"`
	Bids              int64   `json:"bids"`
	Wins              int64   `json:"wins"`
	WinRate           float64 `json:"win_rate"`
	TotalPayment      float64 `json:"total_payment"`
	AggregatorProfit  float64 `json:"aggregator_profit"`
	AvgRoundLatencyMS float64 `json:"avg_round_latency_ms"`
	MaxRoundLatencyMS float64 `json:"max_round_latency_ms"`
}

// PriceHistogram is a fixed-bucket bid-price distribution: Counts[i]
// counts accepted bids with price <= Bounds[i]; Counts[len(Bounds)]
// catches everything above the last bound.
type PriceHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// JobStats is the payload of GET /v1/jobs/{id}/stats: rollups over the
// server's sliding window (roughly the last WindowSec seconds) and over
// the aggregator's lifetime, plus the windowed bid-price histogram.
type JobStats struct {
	Job            string         `json:"job"`
	WindowSec      int64          `json:"window_sec"`
	Window         Rollup         `json:"window"`
	Lifetime       Rollup         `json:"lifetime"`
	PriceHistogram PriceHistogram `json:"price_histogram"`
}

// NodeStats is the payload of GET /v1/nodes/{id}/stats. LastBidMS and
// LastWinMS are unix-millisecond timestamps of the node's most recent
// accepted bid and win (0 = never).
type NodeStats struct {
	Node           int            `json:"node"`
	WindowSec      int64          `json:"window_sec"`
	Window         Rollup         `json:"window"`
	Lifetime       Rollup         `json:"lifetime"`
	PriceHistogram PriceHistogram `json:"price_histogram"`
	LastBidMS      int64          `json:"last_bid_ms"`
	LastWinMS      int64          `json:"last_win_ms"`
}

// StrategyPoint is one sampled point of the equilibrium bid curve.
type StrategyPoint struct {
	Theta     float64   `json:"theta"`
	Qualities []float64 `json:"qualities"`
	Payment   float64   `json:"payment"`
	Score     float64   `json:"score"`
}

// Strategy is the solved Theorem 1 equilibrium bid curve served by
// GET /v1/jobs/{id}/strategy. Points sample the θ support evenly; Payment
// and Qualities interpolate linearly between them, which reproduces the
// solver's own curve to the sampling resolution.
type Strategy struct {
	Job     string          `json:"job"`
	Rule    string          `json:"rule"`
	N       int             `json:"n"`
	K       int             `json:"k"`
	ThetaLo float64         `json:"theta_lo"`
	ThetaHi float64         `json:"theta_hi"`
	Points  []StrategyPoint `json:"points"`
}

// locate clamps theta into the support and returns the surrounding sample
// index plus the interpolation fraction.
func (s *Strategy) locate(theta float64) (int, float64) {
	n := len(s.Points)
	if n == 0 {
		return 0, 0
	}
	if theta <= s.Points[0].Theta || n == 1 {
		return 0, 0
	}
	last := n - 1
	if theta >= s.Points[last].Theta {
		return last - 1, 1
	}
	// Evenly spaced samples: index arithmetic instead of a search.
	span := s.Points[last].Theta - s.Points[0].Theta
	pos := (theta - s.Points[0].Theta) / span * float64(last)
	i := int(pos)
	if i >= last {
		i = last - 1
	}
	return i, pos - float64(i)
}

// Payment returns the equilibrium expected payment pˢ(θ).
func (s *Strategy) Payment(theta float64) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	i, t := s.locate(theta)
	if i+1 >= len(s.Points) {
		return s.Points[i].Payment
	}
	return s.Points[i].Payment + t*(s.Points[i+1].Payment-s.Points[i].Payment)
}

// Qualities returns the equilibrium quality vector qˢ(θ).
func (s *Strategy) Qualities(theta float64) []float64 {
	if len(s.Points) == 0 {
		return nil
	}
	i, t := s.locate(theta)
	q := append([]float64(nil), s.Points[i].Qualities...)
	if i+1 < len(s.Points) {
		next := s.Points[i+1].Qualities
		for d := range q {
			if d < len(next) {
				q[d] += t * (next[d] - q[d])
			}
		}
	}
	return q
}

// Bid assembles the equilibrium bid of a node with private type theta.
func (s *Strategy) Bid(nodeID int, theta float64) Bid {
	return Bid{NodeID: nodeID, Qualities: s.Qualities(theta), Payment: s.Payment(theta)}
}

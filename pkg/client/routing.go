package client

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"fmore/internal/partition"
)

// PartitionReplica is one partition → replica assignment of the cluster map,
// as served by GET /v1/cluster/partitions.
type PartitionReplica struct {
	Partition string `json:"partition"`
	URL       string `json:"url"`
}

// ClusterPartitions is the cluster's partition map: which exchange replica
// owns which partition, under which map version.
type ClusterPartitions struct {
	Version int64 `json:"version"`
	// Local is the partition served by the replica that answered the fetch.
	Local      string             `json:"local"`
	Partitions []PartitionReplica `json:"partitions"`
}

// ClusterPartitionsMap fetches the exchange's partition map without changing
// the client's routing state. An unpartitioned exchange answers
// CodeNotFound.
func (c *Client) ClusterPartitionsMap(ctx context.Context) (ClusterPartitions, error) {
	var cp ClusterPartitions
	err := c.do(ctx, request{method: "GET", path: "/v1/cluster/partitions", out: &cp, retry: true, noReaim: true})
	return cp, err
}

// EnableRouting fetches the cluster partition map from the client's base URL
// and turns on SDK-side routing: every per-job call is sent directly to the
// replica owning the job under rendezvous hashing, falling back through the
// base URL (typically the router) when a replica is unreachable, and
// transparently re-aiming once on a wrong_partition response — refreshing
// the map as it does, so a map version bump converges after a single
// misroute. Idempotency keys make the redo of a redirected POST exactly-once.
//
// Against an unpartitioned exchange the fetch 404s; routing simply stays off
// and EnableRouting returns nil, so callers can enable it unconditionally.
func (c *Client) EnableRouting(ctx context.Context) error {
	err := c.RefreshPartitions(ctx)
	var ae *APIError
	if errors.As(err, &ae) && ae.Status == 404 {
		return nil
	}
	return err
}

// RefreshPartitions re-fetches the cluster map and installs it if strictly
// newer than the one the client routes by (the map version is monotone; a
// concurrent refresh can never roll routing back).
func (c *Client) RefreshPartitions(ctx context.Context) error {
	cp, err := c.ClusterPartitionsMap(ctx)
	if err != nil {
		return err
	}
	m := &partition.Map{Version: cp.Version}
	for _, r := range cp.Partitions {
		m.Partitions = append(m.Partitions, partition.Replica{Partition: r.Partition, URL: r.URL})
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("client: invalid partition map: %w", err)
	}
	c.routes.Advance(m)
	return nil
}

// RoutingVersion returns the version of the partition map the client routes
// by, or 0 when routing is off.
func (c *Client) RoutingVersion() int64 {
	if m := c.routes.Load(); m != nil {
		return m.Version
	}
	return 0
}

// routedBase picks the base URL for a request: the owning replica for a
// job-scoped call when routing is on, the client's own base otherwise.
func (c *Client) routedBase(job string) string {
	if job == "" {
		return c.base
	}
	m := c.routes.Load()
	if m == nil {
		return c.base
	}
	owner, ok := m.Owner(job)
	if !ok {
		return c.base
	}
	return strings.TrimRight(owner.URL, "/")
}

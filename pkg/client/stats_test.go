package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fmore/internal/analytics"
	"fmore/internal/exchange"
	"fmore/internal/promtext"
)

// statsFixture is the observability variant of fixture: the exchange runs
// with an analytics aggregator on its firehose and the stats handler in
// front, the deployment cmd/fmore-exchange serves.
func statsFixture(t *testing.T) (*Client, *exchange.Exchange) {
	t.Helper()
	ex := exchange.New(exchange.Options{})
	agg := analytics.New(analytics.Options{})
	detach := ex.Firehose().Attach(agg)
	srv := httptest.NewServer(analytics.NewHandler(ex, agg, exchange.NewHandler(ex)))
	t.Cleanup(func() {
		srv.Close()
		detach()
		ex.Close()
	})
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, ex
}

// TestClientStatsRoundTrip drives a round through the SDK and reads it
// back through every observability surface: JobStats, NodeStats, the
// extended Metrics snapshot, and the Prometheus exposition.
func TestClientStatsRoundTrip(t *testing.T) {
	c, ex := statsFixture(t)
	ctx := context.Background()

	if _, err := c.CreateJob(ctx, additiveSpec("obs", 2, 11)); err != nil {
		t.Fatal(err)
	}
	const bidders = 5
	for n := 0; n < bidders; n++ {
		bid := Bid{NodeID: n, Qualities: []float64{0.4, 0.6}, Payment: 0.1 + 0.02*float64(n)}
		if _, err := c.SubmitBid(ctx, "obs", bid); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.CloseRound(ctx, "obs")
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := ex.Firehose().Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	js, err := c.JobStats(ctx, "obs")
	if err != nil {
		t.Fatal(err)
	}
	if js.Job != "obs" || js.Lifetime.Rounds != 1 || js.Lifetime.Bids != bidders ||
		js.Lifetime.Wins != int64(len(out.Winners)) {
		t.Fatalf("JobStats = %+v", js)
	}
	if js.Window != js.Lifetime {
		t.Fatalf("fresh job window %+v != lifetime %+v", js.Window, js.Lifetime)
	}

	winner := out.Winners[0].NodeID
	ns, err := c.NodeStats(ctx, winner)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Node != winner || ns.Lifetime.Wins != 1 || ns.Lifetime.Bids != 1 || ns.LastWinMS == 0 {
		t.Fatalf("winner NodeStats = %+v", ns)
	}
	wantPay, _ := out.Won(winner)
	if ns.Lifetime.TotalPayment != wantPay {
		t.Fatalf("winner TotalPayment = %v, want %v", ns.Lifetime.TotalPayment, wantPay)
	}

	if _, err := c.JobStats(ctx, "ghost"); ErrorCode(err) != CodeUnknownJob {
		t.Fatalf("ghost JobStats error = %v, want %s", err, CodeUnknownJob)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.FirehoseEvents <= 0 || m.FirehoseDropped != 0 {
		t.Fatalf("snapshot firehose counters = (%d, %d)", m.FirehoseEvents, m.FirehoseDropped)
	}
	if m.WalSegmentCount != 0 || m.WalBytes != 0 {
		t.Fatalf("in-memory WAL gauges = (%d, %d), want (0, 0)", m.WalSegmentCount, m.WalBytes)
	}

	text, err := c.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	page, err := promtext.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition from SDK does not parse: %v", err)
	}
	rounds, err := page.Value("fmore_exchange_rounds_total")
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("scraped rounds_total = %v, want 1", rounds)
	}
}

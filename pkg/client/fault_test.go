package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"fmore/internal/exchange"
	"fmore/internal/fault"
)

// TestClientReroutesOnDurabilityLost: a 503 durability_lost is routing
// feedback, not a backoff signal — the client re-aims once, immediately,
// with the same Idempotency-Key, ignoring the degraded replica's retry
// hint (the retry goes elsewhere; only repeat failures should slow down).
func TestClientReroutesOnDurabilityLost(t *testing.T) {
	ex := exchange.New(exchange.Options{})
	inner := exchange.NewHandler(ex)
	var (
		mu       sync.Mutex
		keys     []string
		degraded = true
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs/dl/bids" {
			mu.Lock()
			keys = append(keys, r.Header.Get("Idempotency-Key"))
			first := degraded
			degraded = false
			mu.Unlock()
			if first {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				// A long hint the re-aim must NOT sleep on.
				_, _ = io.WriteString(w, `{"code":"durability_lost","message":"wal failed","retry_after_ms":5000}`)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("dl", 2, 7)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	round, err := c.SubmitBid(ctx, "dl", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
	if err != nil || round != 1 {
		t.Fatalf("bid through degraded replica: round %d err %v", round, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("re-aim took %v — it slept on the degraded replica's hint", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 {
		t.Fatalf("bid POSTs = %d, want 2 (original + re-aim)", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Errorf("idempotency keys %q vs %q: the re-aim must replay the same key", keys[0], keys[1])
	}
}

// TestClientDurabilityLostReroutesOnce: a cluster that is degraded
// everywhere gets exactly one immediate re-aim; after that durability_lost
// is an ordinary transient failure whose hints are throttled by the retry
// budget, so the call fails in ~budget rather than retries x hint.
func TestClientDurabilityLostReroutesOnce(t *testing.T) {
	var posts int32
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			posts++
			mu.Unlock()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, `{"code":"durability_lost","message":"wal failed","retry_after_ms":100}`)
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, WithRetries(10), WithRetryBudget(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = c.SubmitBid(context.Background(), "dl", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
	elapsed := time.Since(start)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeDurabilityLost {
		t.Fatalf("fully degraded cluster: err %v, want durability_lost", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("degraded-cluster call took %v, want ~retry budget", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	// 1 original + 1 immediate re-aim + the hint-paced retries the 250ms
	// budget admits (two 100ms hints fit, a third exceeds it).
	if posts < 3 || posts > 5 {
		t.Errorf("degraded-cluster POSTs = %d, want a small budget-bounded count", posts)
	}
}

// TestClientRetryBudgetCapsSleep: the budget charges computed backoff and
// server hints alike, before sleeping — so a call against a dead endpoint
// returns in roughly the budget regardless of the retry count.
func TestClientRetryBudgetCapsSleep(t *testing.T) {
	var hits int32
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, `{"code":"unavailable","message":"down","retry_after_ms":200}`)
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, WithRetries(10), WithRetryBudget(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = c.Jobs(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dead endpoint succeeded")
	}
	if elapsed > 2*time.Second {
		t.Errorf("budgeted call took %v, want ~250ms", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 2 {
		// One 200ms hint fits the 250ms budget; the second would overrun.
		t.Errorf("requests = %d, want 2 (budget cuts the third)", hits)
	}
}

// TestClientTransportFailpoint proves the sdk/transport injection site: a
// torn first connection surfaces as a transport error the retry loop
// absorbs, and the injected error is the syscall the real network would
// produce.
func TestClientTransportFailpoint(t *testing.T) {
	t.Cleanup(fault.DisableAll)
	c, _ := fixture(t)
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("fp", 2, 3)); err != nil {
		t.Fatal(err)
	}

	if err := fault.Enable("sdk/transport", fault.Config{Err: fault.ErrIO, Nth: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Jobs(ctx); err != nil {
		t.Fatalf("retry did not absorb the injected transport error: %v", err)
	}

	// With retries disabled the injected error surfaces to the caller.
	if err := fault.Enable("sdk/transport", fault.Config{Err: fault.ErrIO, Nth: 1}); err != nil {
		t.Fatal(err)
	}
	c2, err := New(c.base, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Jobs(ctx); !errors.Is(err, syscall.EIO) {
		t.Fatalf("unretried transport fault = %v, want EIO", err)
	}
}

// Package client is the typed Go SDK for the FMore exchange's versioned
// /v1 HTTP API (internal/exchange, served by cmd/fmore-exchange). It is the
// single supported way for in-repo consumers — cmd/edgenode's exchange
// mode, internal/cluster's exchange path, examples/exchange — to talk to an
// exchange; nothing else should construct raw exchange HTTP requests.
//
// A Client wraps one exchange base URL with connection reuse, uniform
// {code, message} error decoding (APIError), and context-aware retries with
// jittered exponential backoff. Mutating calls are made retry-safe with
// idempotency keys: CreateJob and SubmitBid attach one automatically, so a
// request replayed after a network failure returns the original result
// instead of a duplicate-ID or duplicate-bid conflict.
//
// The request/response surface mirrors the API one-to-one — CreateJob,
// Jobs (cursor pagination followed transparently), SubmitBid, CloseRound,
// Outcome/LatestOutcome/WaitOutcome/Outcomes, Register, Blacklist,
// Strategy, Metrics — plus three higher-level helpers:
//
//   - WatchRounds subscribes to the job's server-push round stream
//     (GET /v1/jobs/{id}/events, Server-Sent Events). The returned Watch
//     delivers round_open / round_closed (outcome inline) / job_closed
//     events in order and survives connection drops: it reconnects with
//     Last-Event-ID set to the last delivered round and the exchange
//     replays whatever was missed, so within the job's retained history a
//     consumer observes every round exactly once. This replaces outcome
//     long-polling for edge nodes.
//
//   - Bidder (NewBidder) fetches a job's solved Theorem 1 equilibrium bid
//     curve once and interpolates the node's (quality, payment) bid from
//     its private type θ — the node never runs the equilibrium solver.
//
//   - Engine adapts a remote job to transport.Engine, which is how the TCP
//     aggregator harness (internal/cluster) delegates winner determination
//     to an exchange over HTTP.
//
// See example_test.go for a runnable end-to-end round trip against an
// in-process exchange.
package client

package client_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"fmore/internal/exchange"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

// Example drives one complete auction round through the SDK against an
// in-process exchange: create a job, watch its event stream, bid, close,
// and read the pushed outcome. Against a deployed exchange, replace the
// httptest server with the service URL (e.g. "http://localhost:8780").
func Example() {
	ex := exchange.New(exchange.Options{})
	defer ex.Close()
	srv := httptest.NewServer(exchange.NewHandler(ex))
	defer srv.Close()

	c, err := client.New(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	// Cancel before the deferred server close: ending the watch's context
	// releases its event-stream connection, which the server waits out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	job, err := c.CreateJob(ctx, client.JobSpec{
		ID:   "demo",
		Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.5, 0.5}},
		K:    2,
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Server-push: the watch replays missed rounds and streams new ones.
	watch, err := c.WatchRounds(ctx, job.ID, client.WatchOptions{})
	if err != nil {
		log.Fatal(err)
	}

	for node := 0; node < 4; node++ {
		if _, err := c.SubmitBid(ctx, job.ID, client.Bid{
			NodeID:    node,
			Qualities: []float64{0.2 * float64(node+1), 0.8 - 0.1*float64(node)},
			Payment:   0.1,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := c.CloseRound(ctx, job.ID); err != nil {
		log.Fatal(err)
	}

	for ev := range watch.Events() {
		if ev.Type != client.RoundClosed {
			continue
		}
		fmt.Printf("round %d: %d bids, winners %v\n",
			ev.Round, ev.Outcome.NumBids, ev.Outcome.WinnerIDs())
		break
	}
	// Output:
	// round 1: 4 bids, winners [3 2]
}

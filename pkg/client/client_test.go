package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmore/internal/exchange"
	"fmore/internal/transport"
)

// fixture starts an in-memory exchange behind its HTTP front end and
// returns an SDK client for it.
func fixture(t *testing.T) (*Client, *exchange.Exchange) {
	t.Helper()
	ex := exchange.New(exchange.Options{})
	srv := httptest.NewServer(exchange.NewHandler(ex))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, ex
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func additiveSpec(id string, k int, seed int64) JobSpec {
	return JobSpec{
		ID:   id,
		Rule: transport.RuleSpec{Kind: "additive", Alpha: []float64{0.6, 0.4}},
		K:    k,
		Seed: seed,
	}
}

// TestClientRoundTrip drives a full bid→close→outcome round through the
// SDK, listings and metrics included.
func TestClientRoundTrip(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()

	job, err := c.CreateJob(ctx, additiveSpec("trip", 2, 21))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "trip" || job.State != "collecting" || job.Round != 1 {
		t.Fatalf("created job = %+v", job)
	}
	for node := 0; node < 5; node++ {
		if err := c.Register(ctx, node, fmt.Sprintf("edge-%d", node)); err != nil {
			t.Fatalf("register %d: %v", node, err)
		}
		round, err := c.SubmitBid(ctx, "trip", Bid{
			NodeID:    node,
			Qualities: []float64{0.2 * float64(node+1), 0.9 - 0.1*float64(node)},
			Payment:   0.1,
		})
		if err != nil || round != 1 {
			t.Fatalf("bid %d: round %d err %v", node, round, err)
		}
	}
	out, err := c.CloseRound(ctx, "trip")
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 1 || out.NumBids != 5 || len(out.Winners) != 2 || len(out.Scores) != 5 {
		t.Fatalf("close outcome = %+v", out)
	}
	got, err := c.Outcome(ctx, "trip", 1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(out) {
		t.Fatalf("refetched outcome differs:\n%v\n%v", got, out)
	}
	latest, err := c.LatestOutcome(ctx, "trip")
	if err != nil || latest.Round != 1 {
		t.Fatalf("latest = %+v err %v", latest, err)
	}

	// WaitOutcome on the next round completes when a concurrent close lands.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_, _ = c.SubmitBid(ctx, "trip", Bid{NodeID: 9, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
		_, _ = c.CloseRound(ctx, "trip")
	}()
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	out2, err := c.WaitOutcome(waitCtx, "trip", 2)
	if err != nil || out2.Round != 2 {
		t.Fatalf("wait outcome = %+v err %v", out2, err)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != "trip" {
		t.Fatalf("jobs = %+v err %v", jobs, err)
	}
	page, more, err := c.Outcomes(ctx, "trip", 0, 10)
	if err != nil || more || len(page) != 2 {
		t.Fatalf("outcomes page = %d more %v err %v", len(page), more, err)
	}
	m, err := c.Metrics(ctx)
	if err != nil || m.RoundsTotal != 2 || m.BidsAccepted != 6 {
		t.Fatalf("metrics = %+v err %v", m, err)
	}
	if err := c.RemoveJob(ctx, "trip"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(ctx, "trip"); !IsNotFound(err) || ErrorCode(err) != CodeUnknownJob {
		t.Fatalf("post-remove job err = %v", err)
	}
}

// TestClientErrorMapping pins APIError decoding across the code families.
func TestClientErrorMapping(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()

	_, err := c.Job(ctx, "ghost")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 404 || ae.Code != CodeUnknownJob {
		t.Fatalf("unknown job err = %v", err)
	}
	if _, err := c.CreateJob(ctx, additiveSpec("errs", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CloseRound(ctx, "errs"); ErrorCode(err) != CodeBelowQuorum {
		t.Fatalf("empty close err = %v", err)
	}
	if _, err := c.SubmitBid(ctx, "errs", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBid(ctx, "errs", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); ErrorCode(err) != CodeDuplicateBid {
		t.Fatalf("duplicate bid err = %v", err)
	}
	if _, err := c.Strategy(ctx, "errs", 9); ErrorCode(err) != CodeNoStrategy {
		t.Fatalf("no-strategy err = %v", err)
	}
	if err := c.Blacklist(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBid(ctx, "errs", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); ErrorCode(err) != CodeBlacklisted {
		t.Fatalf("blacklisted bid err = %v", err)
	}
}

// TestClientIdempotentJobRecreate: the same IdempotencyKey replays the
// original creation instead of a duplicate-ID failure, and distinct keys
// still conflict.
func TestClientIdempotentJobRecreate(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()
	spec := additiveSpec("idem", 1, 7)
	spec.IdempotencyKey = "fixed-key"
	job1, err := c.CreateJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	job2, err := c.CreateJob(ctx, spec)
	if err != nil {
		t.Fatalf("idempotent re-create failed: %v", err)
	}
	if job1 != job2 {
		t.Fatalf("replayed job differs: %+v vs %+v", job1, job2)
	}
	spec.IdempotencyKey = "other-key"
	if _, err := c.CreateJob(ctx, spec); err == nil {
		t.Fatal("duplicate ID with a fresh key must fail")
	}
}

// TestClientRetriesTransientFailures: a front end that throws 503s first
// still serves the request within the retry budget.
func TestClientRetriesTransientFailures(t *testing.T) {
	ex := exchange.New(exchange.Options{})
	inner := exchange.NewHandler(ex)
	var failures atomic.Int32
	failures.Store(2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, `{"code":"unavailable","message":"warming up"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	c, err := New(srv.URL, WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.CreateJob(context.Background(), additiveSpec("flaky", 1, 3))
	if err != nil {
		t.Fatalf("create through flaky front end: %v", err)
	}
	if job.ID != "flaky" {
		t.Fatalf("job = %+v", job)
	}

	// With retries exhausted the APIError surfaces.
	failures.Store(100)
	c2, err := New(srv.URL, WithRetries(1), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c2.Job(context.Background(), "flaky")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries err = %v", err)
	}
}

// TestClientBidder: a job with an equilibrium spec hands the bidder a
// strategy curve whose interpolated bid lands inside the quality box with a
// positive payment, and submission is accepted.
func TestClientBidder(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()
	spec := JobSpec{
		ID:   "eq",
		Rule: transport.RuleSpec{Kind: "cobb-douglas", Alpha: []float64{1, 1}, Scale: 25},
		K:    3,
		Seed: 5,
		Equilibrium: &transport.EquilibriumSpec{
			Cost:  transport.CostSpec{Kind: "linear", Beta: []float64{0.5, 0.5}},
			Theta: transport.DistSpec{Kind: "uniform", Lo: 1, Hi: 2},
			N:     20,
			QLo:   []float64{0, 0},
			QHi:   []float64{1, 1},
		},
	}
	job, err := c.CreateJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !job.HasStrategy {
		t.Fatal("job should advertise a strategy")
	}
	b, err := c.NewBidder(ctx, "eq", 4, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	bid := b.Bid()
	if bid.NodeID != 4 || len(bid.Qualities) != 2 || bid.Payment <= 0 {
		t.Fatalf("equilibrium bid = %+v", bid)
	}
	for d, q := range bid.Qualities {
		if q < 0 || q > 1 {
			t.Fatalf("quality[%d] = %v outside the box", d, q)
		}
	}
	// Interpolation fidelity: the curve reproduces its own sample points
	// exactly, and midpoints land between their neighbors.
	s := b.Strategy()
	for _, i := range []int{0, len(s.Points) / 2, len(s.Points) - 1} {
		pt := s.Points[i]
		if got := s.Payment(pt.Theta); !closeTo(got, pt.Payment, 1e-9) {
			t.Errorf("Payment(%v) = %v, want sample %v", pt.Theta, got, pt.Payment)
		}
	}
	a, bp := s.Points[0], s.Points[1]
	mid := s.Payment((a.Theta + bp.Theta) / 2)
	if !closeTo(mid, (a.Payment+bp.Payment)/2, 1e-9) {
		t.Errorf("midpoint payment = %v, want %v", mid, (a.Payment+bp.Payment)/2)
	}
	if round, err := b.Submit(ctx); err != nil || round != 1 {
		t.Fatalf("bidder submit: round %d err %v", round, err)
	}
}

// TestClientHonorsRetryAfterHint: a 429 shed with retry_after_ms delays the
// retry by at least the server's hint (the 1ms configured backoff cannot
// explain the gap), the retry reuses the same Idempotency-Key, and the
// eventual acceptance is a fresh submit, not an idempotent replay.
func TestClientHonorsRetryAfterHint(t *testing.T) {
	ex := exchange.New(exchange.Options{})
	inner := exchange.NewHandler(ex)
	const hintMS = 80
	var (
		mu       sync.Mutex
		keys     []string
		arrivals []time.Time
		shed     = true
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			mu.Lock()
			keys = append(keys, r.Header.Get("Idempotency-Key"))
			arrivals = append(arrivals, time.Now())
			doShed := shed
			shed = false
			mu.Unlock()
			if doShed {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprintf(w, `{"code":"overloaded","message":"shed","retry_after_ms":%d}`, hintMS)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	// 1ms backoff: any observed inter-attempt gap near the hint must come
	// from the retry_after_ms path, not the computed backoff.
	c, err := New(srv.URL, WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("hint", 1, 7)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	keys, arrivals, shed = nil, nil, true
	mu.Unlock()

	round, err := c.SubmitBid(ctx, "hint", Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
	if err != nil || round != 1 {
		t.Fatalf("submit through shedding front end: round %d err %v", round, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 {
		t.Fatalf("attempts = %d, want 2 (one shed, one admitted)", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across retry = %q, %q; want identical and non-empty", keys[0], keys[1])
	}
	if gap := arrivals[1].Sub(arrivals[0]); gap < hintMS*time.Millisecond {
		t.Fatalf("retry after %v, want >= %dms (server hint)", gap, hintMS)
	}
	// The shed never reached the exchange, so the key was never claimed:
	// the success must be a first-time accept, not a replay.
	if ex.Metrics().BidsAccepted != 1 {
		t.Fatalf("bids accepted = %d, want 1", ex.Metrics().BidsAccepted)
	}
}

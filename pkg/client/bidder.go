package client

import (
	"context"
	"fmt"
)

// bidderSamples is the strategy-curve resolution a Bidder fetches; matching
// the solver's own θ grid (129 points) makes the interpolated bid
// indistinguishable from a local solve at a few KB of payload.
const bidderSamples = 129

// Bidder bids a job's solved Theorem 1 equilibrium strategy on behalf of
// one edge node: it fetches the bid curve once and interpolates the node's
// (quality, payment) bid from its private type θ, so the node never runs
// the equilibrium solver locally.
type Bidder struct {
	c      *Client
	jobID  string
	nodeID int
	theta  float64
	strat  *Strategy
}

// NewBidder fetches the job's strategy curve and returns a bidder for the
// node with private cost parameter theta. Jobs created without an
// equilibrium spec fail with CodeNoStrategy.
func (c *Client) NewBidder(ctx context.Context, jobID string, nodeID int, theta float64) (*Bidder, error) {
	strat, err := c.Strategy(ctx, jobID, bidderSamples)
	if err != nil {
		return nil, fmt.Errorf("client: fetching strategy for job %s: %w", jobID, err)
	}
	return &Bidder{c: c, jobID: jobID, nodeID: nodeID, theta: theta, strat: strat}, nil
}

// Strategy returns the fetched bid curve.
func (b *Bidder) Strategy() *Strategy { return b.strat }

// WithTheta returns a bidder for a different private type reusing the
// already-fetched curve — e.g. after discovering the game's θ support from
// Strategy().ThetaLo/ThetaHi.
func (b *Bidder) WithTheta(theta float64) *Bidder {
	nb := *b
	nb.theta = theta
	return &nb
}

// Bid returns the node's equilibrium bid (without submitting it).
func (b *Bidder) Bid() Bid { return b.strat.Bid(b.nodeID, b.theta) }

// Submit places the node's equilibrium bid into the job's collecting round
// and returns the round it entered.
func (b *Bidder) Submit(ctx context.Context) (round int, err error) {
	return b.c.SubmitBid(ctx, b.jobID, b.Bid())
}

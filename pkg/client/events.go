package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// EventType discriminates round-stream events.
type EventType string

// Event types of the per-job stream.
const (
	// RoundOpen announces that a round began collecting bids.
	RoundOpen EventType = "round_open"
	// RoundClosed announces a completed round; Outcome is set.
	RoundClosed EventType = "round_closed"
	// JobClosed announces the job's end; the watch terminates after it.
	JobClosed EventType = "job_closed"
)

// Event is one server-push notification from a job's event stream.
type Event struct {
	Type  EventType
	Job   string
	Round int
	// Outcome carries the round's result inline on RoundClosed events.
	Outcome *Outcome
}

// WatchOptions configures WatchRounds.
type WatchOptions struct {
	// AfterRound resumes the stream past an already-seen round: every
	// retained round with a greater number is replayed before live events.
	AfterRound int
	// Buffer sizes the event channel (default 16).
	Buffer int
}

// Watch is a live subscription to a job's round events, kept alive across
// connection drops: on a disconnect it reconnects with Last-Event-ID set to
// the last round it delivered, and the exchange replays whatever was
// missed, so the consumer observes every retained round exactly once and in
// order.
type Watch struct {
	events chan Event
	done   chan struct{}
	err    error
}

// Events returns the ordered event channel. It is closed when the job
// closes, the watch's context ends, or a permanent error occurs — check Err
// afterwards.
func (w *Watch) Events() <-chan Event { return w.events }

// Err reports why the watch ended; nil after a clean job_closed or context
// cancellation. Valid once the event channel is closed.
func (w *Watch) Err() error {
	<-w.done
	return w.err
}

// WatchRounds subscribes to the job's server-push event stream
// (GET /v1/jobs/{id}/events). The initial connection is made synchronously
// so a missing job fails fast; after that a goroutine owns the stream,
// auto-reconnecting with Last-Event-ID resume and jittered backoff until
// ctx ends or the job closes.
func (c *Client) WatchRounds(ctx context.Context, jobID string, opts WatchOptions) (*Watch, error) {
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 16
	}
	w := &Watch{events: make(chan Event, buffer), done: make(chan struct{})}
	lastRound := opts.AfterRound
	body, err := c.connectEvents(ctx, jobID, lastRound)
	if err != nil {
		return nil, err
	}
	go func() {
		defer close(w.done)
		defer close(w.events)
		attempt := 0
		for {
			finished, last, err := w.consume(ctx, body, jobID, lastRound)
			lastRound = last
			if finished || ctx.Err() != nil {
				return
			}
			if err != nil {
				// Stream broke mid-flight (server drop, network): resume.
				attempt++
			}
			if serr := sleepFor(ctx, backoffDelay(c.backoff, attempt)); serr != nil {
				return
			}
			body, err = c.connectEvents(ctx, jobID, lastRound)
			if err != nil {
				var ae *APIError
				if errors.As(err, &ae) && !transientStatus(ae.Status) {
					// The job is gone (or the request became invalid);
					// reconnecting cannot help.
					w.err = err
					return
				}
				if ctx.Err() != nil {
					return
				}
				body = nil
				continue
			}
			attempt = 0
		}
	}()
	return w, nil
}

// connectEvents opens one SSE connection resuming after lastRound.
func (c *Client) connectEvents(ctx context.Context, jobID string, lastRound int) (io.ReadCloser, error) {
	u := c.routedBase(jobID) + "/v1/jobs/" + url.PathEscape(jobID) + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building events request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Cache-Control", "no-cache")
	if lastRound > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastRound))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: connecting events stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return resp.Body, nil
}

// consume reads one SSE connection until it ends. finished is true when the
// watch is done for good (job_closed delivered, or ctx over); otherwise the
// caller reconnects from lastRound.
func (w *Watch) consume(ctx context.Context, body io.ReadCloser, jobID string, lastRound int) (finished bool, last int, err error) {
	if body == nil {
		return false, lastRound, errors.New("client: no events connection")
	}
	defer body.Close() //nolint:errcheck // read side
	r := bufio.NewReader(body)
	for {
		frame, rerr := readSSEFrame(r)
		if rerr != nil {
			return ctx.Err() != nil, lastRound, rerr
		}
		ev, ok := parseEvent(frame, jobID)
		if !ok {
			continue // heartbeat or unknown event type
		}
		select {
		case w.events <- ev:
		case <-ctx.Done():
			return true, lastRound, nil
		}
		if ev.Type == RoundClosed {
			lastRound = ev.Round
		}
		if ev.Type == JobClosed {
			return true, lastRound, nil
		}
	}
}

// sseFrame is one parsed SSE event block.
type sseFrame struct {
	id, event string
	data      []byte
}

// readSSEFrame reads lines until a dispatching blank line. Comment lines
// (heartbeats) are skipped; multiple data lines are joined with newlines
// per the SSE spec.
func readSSEFrame(r *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return f, err
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			if seen {
				return f, nil
			}
			continue // blank line after a comment-only block
		}
		if line[0] == ':' {
			continue
		}
		field, value, _ := bytes.Cut(line, []byte(":"))
		value = bytes.TrimPrefix(value, []byte(" "))
		switch string(field) {
		case "id":
			f.id = string(value)
			seen = true
		case "event":
			f.event = string(value)
			seen = true
		case "data":
			if f.data != nil {
				f.data = append(f.data, '\n')
			}
			f.data = append(f.data, value...)
			seen = true
		case "retry":
			// Server reconnect hint; the client's own backoff governs.
		}
	}
}

// parseEvent decodes one frame into an Event.
func parseEvent(f sseFrame, jobID string) (Event, bool) {
	switch EventType(f.event) {
	case RoundClosed:
		var out Outcome
		if err := json.Unmarshal(f.data, &out); err != nil {
			return Event{}, false
		}
		return Event{Type: RoundClosed, Job: out.Job, Round: out.Round, Outcome: &out}, true
	case RoundOpen:
		var p struct {
			Job   string `json:"job"`
			Round int    `json:"round"`
		}
		if err := json.Unmarshal(f.data, &p); err != nil {
			return Event{}, false
		}
		return Event{Type: RoundOpen, Job: p.Job, Round: p.Round}, true
	case JobClosed:
		return Event{Type: JobClosed, Job: jobID}, true
	default:
		return Event{}, false
	}
}

package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fmore/internal/fault"
	"fmore/internal/partition"
)

// fpTransport injects transport-level failures (connection errors, latency)
// into every SDK request, exercising the client's retry/backoff/budget
// machinery without a flaky network. Enable via
// FMORE_FAILPOINTS="sdk/transport=eio@p0.1" in a process that calls
// fault.EnableFromEnv, or fault.Enable in tests.
var fpTransport = fault.New("sdk/transport")

// Client is a typed client for the exchange's /v1 API. All methods are safe
// for concurrent use; the underlying http.Client reuses connections.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	// retryBudget caps the total time one call may spend sleeping between
	// retry attempts; see WithRetryBudget.
	retryBudget time.Duration
	// routes holds the cluster partition map once EnableRouting fetched one;
	// with no map every request goes to base.
	routes partition.Handle
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is a plain http.Client with keep-alive reuse.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times an idempotent request is retried after a
// transient failure (network error or 502/503/504). Default 3; 0 disables.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base retry delay; attempt n sleeps roughly
// base·2ⁿ with ±50% jitter, capped at 5s. Default 100ms.
func WithBackoff(d time.Duration) Option {
	return func(c *Client) { c.backoff = d }
}

// WithRetryBudget caps the total time one call may spend sleeping between
// retry attempts (server hints and computed backoff alike); once the next
// sleep would exceed the budget the call fails with the last error
// instead. A degraded cluster — every replica answering 503
// durability_lost with a retry hint — therefore fails fast rather than
// backing off for the full retry count. Default 5s; 0 or negative removes
// the cap.
func WithRetryBudget(d time.Duration) Option {
	return func(c *Client) { c.retryBudget = d }
}

// New returns a client for the exchange at baseURL (e.g.
// "http://localhost:8780"). The /v1 prefix is implied; do not include it.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{
		base:        strings.TrimRight(u.String(), "/"),
		hc:          &http.Client{},
		retries:     3,
		backoff:     100 * time.Millisecond,
		retryBudget: 5 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// BaseURL returns the exchange base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// CreateJob creates (or idempotently re-creates) a hosted job. When
// spec.IdempotencyKey is empty a random key is generated for the call, so
// automatic retries after a network failure cannot create the job twice; a
// caller-supplied key additionally makes whole-call replays safe — the
// exchange returns the originally recorded response.
func (c *Client) CreateJob(ctx context.Context, spec JobSpec) (Job, error) {
	key := spec.IdempotencyKey
	if key == "" {
		key = newIdempotencyKey()
	}
	var job Job
	err := c.do(ctx, request{
		method:  http.MethodPost,
		path:    "/v1/jobs",
		body:    spec.wire(),
		headers: map[string]string{"Idempotency-Key": key},
		out:     &job,
		retry:   true,
		job:     spec.ID,
	})
	return job, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, jobID string) (Job, error) {
	var job Job
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID), out: &job, retry: true, job: jobID})
	return job, err
}

// Jobs lists every hosted job, following cursor pagination to the end.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var all []Job
	cursor := ""
	for {
		q := url.Values{}
		if cursor != "" {
			q.Set("cursor", cursor)
		}
		var page struct {
			Jobs       []Job  `json:"jobs"`
			NextCursor string `json:"next_cursor"`
		}
		if err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs", query: q, out: &page, retry: true}); err != nil {
			return nil, err
		}
		all = append(all, page.Jobs...)
		if page.NextCursor == "" {
			return all, nil
		}
		cursor = page.NextCursor
	}
}

// RemoveJob closes the job and evicts it from the exchange.
func (c *Client) RemoveJob(ctx context.Context, jobID string) error {
	return c.do(ctx, request{method: http.MethodDelete, path: "/v1/jobs/" + url.PathEscape(jobID), job: jobID})
}

// SubmitBid submits one sealed bid into the job's collecting round and
// returns the round it entered. Each call carries a fresh idempotency key,
// so transparent retries after a transport failure cannot double-bid (the
// exchange replays the recorded acceptance instead of answering 409).
func (c *Client) SubmitBid(ctx context.Context, jobID string, bid Bid) (round int, err error) {
	var resp struct {
		Round int `json:"round"`
	}
	err = c.do(ctx, request{
		method:  http.MethodPost,
		path:    "/v1/jobs/" + url.PathEscape(jobID) + "/bids",
		body:    bid,
		headers: map[string]string{"Idempotency-Key": newIdempotencyKey()},
		out:     &resp,
		retry:   true,
		job:     jobID,
	})
	return resp.Round, err
}

// CloseRound closes the job's collecting round now and returns its outcome.
// Not retried automatically: closing is not idempotent (a retry would close
// the next round too).
func (c *Client) CloseRound(ctx context.Context, jobID string) (Outcome, error) {
	var out Outcome
	err := c.do(ctx, request{method: http.MethodPost, path: "/v1/jobs/" + url.PathEscape(jobID) + "/close", out: &out, job: jobID})
	return out, err
}

// Outcome fetches one completed round.
func (c *Client) Outcome(ctx context.Context, jobID string, round int) (Outcome, error) {
	q := url.Values{"round": {strconv.Itoa(round)}}
	var out Outcome
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/outcome", query: q, out: &out, retry: true, job: jobID})
	return out, err
}

// LatestOutcome fetches the most recent completed round without blocking.
func (c *Client) LatestOutcome(ctx context.Context, jobID string) (Outcome, error) {
	var out Outcome
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/outcome", out: &out, retry: true, job: jobID})
	return out, err
}

// WaitOutcome blocks until the round completes (long-polling the exchange,
// re-issuing the poll on server timeouts) or ctx expires. round 0 waits for
// the latest completed round instead of a specific one.
func (c *Client) WaitOutcome(ctx context.Context, jobID string, round int) (Outcome, error) {
	q := url.Values{"wait": {"1"}}
	if round > 0 {
		q.Set("round", strconv.Itoa(round))
	}
	for {
		var out Outcome
		err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/outcome", query: q, out: &out, retry: true, job: jobID})
		if err == nil {
			return out, nil
		}
		// A 504 means the server's poll window lapsed with the round still
		// pending; keep waiting as long as our own context allows.
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeTimeout {
			return Outcome{}, err
		}
		if ctx.Err() != nil {
			return Outcome{}, ctx.Err()
		}
	}
}

// Outcomes fetches one page of retained rounds with numbers strictly
// greater than afterRound (oldest first) and reports whether more remain.
// limit 0 uses the server default.
func (c *Client) Outcomes(ctx context.Context, jobID string, afterRound, limit int) (page []Outcome, more bool, err error) {
	q := url.Values{}
	if afterRound > 0 {
		q.Set("cursor", strconv.Itoa(afterRound))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	var resp struct {
		Outcomes   []Outcome `json:"outcomes"`
		NextCursor string    `json:"next_cursor"`
	}
	err = c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/outcomes", query: q, out: &resp, retry: true, job: jobID})
	return resp.Outcomes, resp.NextCursor != "", err
}

// Register adds the node to the exchange's registry (idempotent).
func (c *Client) Register(ctx context.Context, nodeID int, meta string) error {
	body := map[string]any{"node_id": nodeID}
	if meta != "" {
		body["meta"] = meta
	}
	return c.do(ctx, request{method: http.MethodPost, path: "/v1/nodes", body: body, retry: true})
}

// Blacklist bans the node from all future rounds.
func (c *Client) Blacklist(ctx context.Context, nodeID int) error {
	return c.do(ctx, request{method: http.MethodPost, path: "/v1/nodes/" + strconv.Itoa(nodeID) + "/blacklist", retry: true})
}

// Strategy fetches the job's solved Theorem 1 equilibrium bid curve with
// the given sample count (0 uses the server default). Interpolate with the
// returned Strategy's Payment/Qualities, or use NewBidder.
func (c *Client) Strategy(ctx context.Context, jobID string, samples int) (*Strategy, error) {
	q := url.Values{}
	if samples > 0 {
		q.Set("samples", strconv.Itoa(samples))
	}
	var s Strategy
	if err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/strategy", query: q, out: &s, retry: true, job: jobID}); err != nil {
		return nil, err
	}
	return &s, nil
}

// Metrics fetches the exchange's health snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/metrics", out: &m, retry: true})
	return m, err
}

// PrometheusMetrics fetches the exchange's Prometheus text exposition page
// (GET /v1/metrics/prometheus) verbatim.
func (c *Client) PrometheusMetrics(ctx context.Context) (string, error) {
	var text string
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/metrics/prometheus", rawOut: &text, retry: true})
	return text, err
}

// JobStats fetches the job's windowed and lifetime analytics rollups
// (GET /v1/jobs/{id}/stats). The endpoint is served by exchanges running
// the analytics wrapper handler; a bare exchange answers 404.
func (c *Client) JobStats(ctx context.Context, jobID string) (JobStats, error) {
	var st JobStats
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/jobs/" + url.PathEscape(jobID) + "/stats", out: &st, retry: true, job: jobID})
	return st, err
}

// NodeStats fetches one node's windowed and lifetime analytics rollups
// (GET /v1/nodes/{id}/stats). See JobStats for availability.
func (c *Client) NodeStats(ctx context.Context, nodeID int) (NodeStats, error) {
	var st NodeStats
	err := c.do(ctx, request{method: http.MethodGet, path: "/v1/nodes/" + strconv.Itoa(nodeID) + "/stats", out: &st, retry: true})
	return st, err
}

// --- transport core ---------------------------------------------------------

// request is one API call description for do.
type request struct {
	method  string
	path    string
	query   url.Values
	body    any
	headers map[string]string
	out     any
	// rawOut receives the response body verbatim instead of JSON-decoding
	// into out (non-JSON endpoints, e.g. the Prometheus exposition).
	rawOut *string
	// retry marks the request safe to re-issue after a transient failure
	// (GETs, and POSTs carrying an idempotency key).
	retry bool
	// noReaim disables the wrong_partition/durability_lost re-aim paths.
	// Set on the partition-map fetch itself, whose re-aim handling calls
	// back into RefreshPartitions — without the guard, an intermediary
	// answering that endpoint with one of those codes would recurse.
	noReaim bool
	// job scopes the request to one job for SDK-side routing: with a
	// partition map loaded, the request goes directly to the owning replica.
	job string
}

// do executes one API request with context-aware retries and jittered
// exponential backoff on transient failures. With routing enabled,
// job-scoped requests go directly to the owning replica; a wrong_partition
// answer re-aims at the replica the envelope names (once, immediately,
// refreshing the map on the way — safe even for non-idempotent requests,
// since the refusing replica executed nothing), and a replica that is
// unreachable falls back through the client's base URL.
// doTransport issues one HTTP request through the sdk/transport failpoint:
// when firing it injects its configured latency and error before the
// request leaves the process, modelling the connection failures the retry
// loop must absorb.
func (c *Client) doTransport(hr *http.Request) (*http.Response, error) {
	if err := fpTransport.Fire(); err != nil {
		return nil, err
	}
	return c.hc.Do(hr)
}

func (c *Client) do(ctx context.Context, req request) error {
	var bodyBytes []byte
	if req.body != nil {
		var err error
		if bodyBytes, err = json.Marshal(req.body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	maxAttempts := 1
	if req.retry {
		maxAttempts += c.retries
	}
	// pinned overrides per-attempt base selection after a redirect or
	// fallback; redirected caps wrong_partition re-aims at one per call,
	// rerouted caps durability_lost re-aims the same way.
	pinned := ""
	redirected := false
	rerouted := false
	var slept time.Duration // total retry-sleep spent, charged against the budget
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// A server-supplied retry_after_ms (429 overloaded, 503
			// durability_lost, 504 timeout) overrides the computed backoff:
			// the server knows when capacity returns, and honoring the hint
			// keeps a shedding exchange from being hammered on the client's
			// own schedule.
			d := retryHint(lastErr)
			if d <= 0 {
				d = backoffDelay(c.backoff, attempt-1)
			}
			// The retry budget fails the call fast once the retries' sleep
			// time is spent — a fully degraded cluster answers in ~budget,
			// not retries x hint.
			if c.retryBudget > 0 && slept+d > c.retryBudget {
				return lastErr
			}
			slept += d
			if err := sleepFor(ctx, d); err != nil {
				return lastErr
			}
		}
		base := pinned
		if base == "" {
			base = c.routedBase(req.job)
		}
		u := base + req.path
		if len(req.query) > 0 {
			u += "?" + req.query.Encode()
		}
		hr, err := http.NewRequestWithContext(ctx, req.method, u, bytes.NewReader(bodyBytes))
		if err != nil {
			return fmt.Errorf("client: building request: %w", err)
		}
		if req.body != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
		for k, v := range req.headers {
			hr.Header.Set(k, v)
		}
		resp, err := c.doTransport(hr)
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s: %w", req.method, req.path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			if base != c.base {
				// The owning replica is unreachable; retries go through the
				// client's own base (typically the router).
				pinned = c.base
			}
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if req.rawOut != nil {
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close() //nolint:errcheck // read
				if err != nil {
					return fmt.Errorf("client: reading %s %s response: %w", req.method, req.path, err)
				}
				*req.rawOut = string(raw)
				return nil
			}
			if req.out == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close() //nolint:errcheck // drained
				return nil
			}
			err := json.NewDecoder(resp.Body).Decode(req.out)
			resp.Body.Close() //nolint:errcheck // decoded
			if err != nil {
				return fmt.Errorf("client: decoding %s %s response: %w", req.method, req.path, err)
			}
			return nil
		}
		apiErr := decodeAPIError(resp)
		lastErr = apiErr
		if apiErr.Code == CodeWrongPartition && apiErr.ReplicaURL != "" && !redirected && !req.noReaim {
			// The replica refused without executing anything, so one
			// immediate re-aim is safe regardless of req.retry. Refresh the
			// map (best effort) so future calls route directly.
			redirected = true
			pinned = strings.TrimRight(apiErr.ReplicaURL, "/")
			_ = c.RefreshPartitions(ctx)
			attempt--
			continue
		}
		if apiErr.Code == CodeDurabilityLost && !rerouted && !req.noReaim {
			// Routing feedback of the wrong_partition class: the degraded
			// replica refused before executing anything, so one immediate
			// re-aim — with the same headers, Idempotency-Key included — is
			// safe. Refresh the map in case the operator already moved the
			// partition to healthy hardware; otherwise fall back through the
			// client's base (typically the router, whose healthz probe knows
			// which replicas still take writes).
			rerouted = true
			_ = c.RefreshPartitions(ctx)
			if rb := c.routedBase(req.job); rb != base {
				pinned = rb
			} else {
				pinned = c.base
			}
			attempt--
			continue
		}
		if !transientStatus(resp.StatusCode) {
			return apiErr
		}
	}
	return lastErr
}

// transientStatus reports whether a failure status is worth retrying.
// 504 is the long-poll timeout — WaitOutcome handles it explicitly, and a
// plain request hitting a gateway timeout is equally safe to re-issue. 429
// is the exchange's admission shed: deliberate, explicitly retryable
// backpressure whose envelope carries the retry_after_ms hint the retry
// loop honors. Requests are re-sent with their original headers, so a
// retried keyed POST reuses its Idempotency-Key — a shed never burns the
// key (the server rejects before claiming it), and the eventual success is
// recorded against it normally.
func transientStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryHint extracts the server's suggested retry delay from the previous
// attempt's error, 0 when it sent none.
func retryHint(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	return 0
}

// sleepFor sleeps exactly d, or returns early when ctx expires.
func sleepFor(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay computes base·2ᵃᵗᵗᵉᵐᵖᵗ with ±50% jitter, capped at 5s. The
// delay is materialized before sleeping so the retry budget can charge it.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := time.Duration(float64(base) * math.Pow(2, float64(attempt)))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return time.Duration(float64(d) * (0.5 + mrand.Float64())) //nolint:gosec // jitter, not crypto
}

// decodeAPIError reads the v1 error envelope (falling back to the raw body
// for non-JSON responses, e.g. an intermediary's error page).
func decodeAPIError(resp *http.Response) *APIError {
	defer resp.Body.Close() //nolint:errcheck // error path
	ae := &APIError{Status: resp.StatusCode}
	var env struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
		Partition    string `json:"partition"`
		ReplicaURL   string `json:"replica_url"`
		MapVersion   int64  `json:"map_version"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err := json.Unmarshal(raw, &env); err == nil && env.Code != "" {
		ae.Code = env.Code
		ae.Message = env.Message
		ae.RetryAfter = time.Duration(env.RetryAfterMS) * time.Millisecond
		ae.Partition = env.Partition
		ae.ReplicaURL = env.ReplicaURL
		ae.MapVersion = env.MapVersion
		return ae
	}
	ae.Message = strings.TrimSpace(string(raw))
	if ae.Message == "" {
		ae.Message = resp.Status
	}
	return ae
}

// newIdempotencyKey returns a random 128-bit hex key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to math/rand rather
		// than failing the request over a retry-safety nicety.
		for i := range b {
			b[i] = byte(mrand.Int()) //nolint:gosec // fallback only
		}
	}
	return hex.EncodeToString(b[:])
}

// wire converts the SDK spec to the POST /v1/jobs payload.
func (s JobSpec) wire() map[string]any {
	m := map[string]any{
		"rule": s.Rule,
		"k":    s.K,
	}
	if s.ID != "" {
		m["id"] = s.ID
	}
	if s.Payment != "" {
		m["payment"] = s.Payment
	}
	if s.Psi != 0 {
		m["psi"] = s.Psi
	}
	if s.Seed != 0 {
		m["seed"] = s.Seed
	}
	if s.BidWindow > 0 {
		m["bid_window_ms"] = int64(s.BidWindow / time.Millisecond)
	}
	if s.MaxRounds > 0 {
		m["max_rounds"] = s.MaxRounds
	}
	if s.MinBids > 0 {
		m["min_bids"] = s.MinBids
	}
	if s.KeepOutcomes > 0 {
		m["keep_outcomes"] = s.KeepOutcomes
	}
	if s.Equilibrium != nil {
		m["equilibrium"] = s.Equilibrium
	}
	return m
}

// JobSpec configures a job to create. Rule and Equilibrium use the wire
// forms re-exported as RuleSpec/EquilibriumSpec, so external modules can
// populate them without internal imports.
type JobSpec struct {
	// ID names the job; empty lets the exchange assign one.
	ID string
	// Rule is the scoring rule (additive, leontief, cobb-douglas).
	Rule RuleSpec
	// K is the per-round winner count.
	K int
	// Payment is "first-price" (default) or "second-price".
	Payment string
	// Psi enables ψ-FMore when in (0, 1).
	Psi float64
	// Seed drives the job's deterministic tiebreak rng.
	Seed int64
	// BidWindow > 0 makes the exchange close rounds on a timer; zero means
	// manual rounds (CloseRound).
	BidWindow time.Duration
	// MaxRounds closes the job after that many rounds (0 = unlimited).
	MaxRounds int
	// MinBids is the round quorum (default 1).
	MinBids int
	// KeepOutcomes bounds retained history (0 = server default).
	KeepOutcomes int
	// Equilibrium optionally describes the bidder-side game so the job can
	// serve the solved Theorem 1 strategy.
	Equilibrium *EquilibriumSpec
	// IdempotencyKey, when set, is sent as the Idempotency-Key header so a
	// repeated CreateJob with the same key replays the original response
	// instead of failing on the duplicate ID.
	IdempotencyKey string
}

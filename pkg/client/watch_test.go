package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fmore/internal/exchange"
)

// collectRounds drains the watch until n round_closed events arrived (or
// the deadline passes), returning them in delivery order.
func collectRounds(t *testing.T, w *Watch, n int, timeout time.Duration) []Event {
	t.Helper()
	var got []Event
	deadline := time.After(timeout)
	for len(got) < n {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended early (err=%v) after %d/%d rounds", w.Err(), len(got), n)
			}
			if ev.Type == RoundClosed {
				got = append(got, ev)
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d rounds", len(got), n)
		}
	}
	return got
}

// TestWatchRoundsLive: a watch delivers every closed round with the outcome
// inline, in order.
func TestWatchRoundsLive(t *testing.T) {
	c, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := c.CreateJob(ctx, additiveSpec("live", 1, 2)); err != nil {
		t.Fatal(err)
	}
	w, err := c.WatchRounds(ctx, "live", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for round := 1; round <= 3; round++ {
			for node := 0; node < 3; node++ {
				_, _ = c.SubmitBid(ctx, "live", Bid{NodeID: node, Qualities: []float64{0.4, 0.6}, Payment: 0.1})
			}
			_, _ = c.CloseRound(ctx, "live")
		}
	}()
	got := collectRounds(t, w, 3, 10*time.Second)
	for i, ev := range got {
		if ev.Round != i+1 || ev.Outcome == nil || ev.Outcome.NumBids != 3 {
			t.Fatalf("event %d = %+v (outcome %+v)", i, ev, ev.Outcome)
		}
	}
	// WatchRounds against a missing job fails fast.
	if _, err := c.WatchRounds(ctx, "ghost", WatchOptions{}); ErrorCode(err) != CodeUnknownJob {
		t.Fatalf("missing-job watch err = %v", err)
	}
}

// TestWatchReconnectResumesLosslessly drops the SSE connection from the
// server side mid-stream and checks the watch resumes via Last-Event-ID
// with no lost and no duplicated rounds.
func TestWatchReconnectResumesLosslessly(t *testing.T) {
	ex := exchange.New(exchange.Options{})
	inner := exchange.NewHandler(ex)
	var (
		eventConns  atomic.Int32
		lastEventID atomic.Value // string: header seen on the reconnect
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			n := eventConns.Add(1)
			if n == 2 {
				lastEventID.Store(r.Header.Get("Last-Event-ID"))
			}
			if n == 1 {
				// First stream: pass one round through, then kill the
				// connection abruptly.
				inner.ServeHTTP(&droppingWriter{ResponseWriter: w, dropAfterRounds: 1}, r)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	c, err := New(srv.URL, WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := c.CreateJob(ctx, additiveSpec("drop", 1, 13)); err != nil {
		t.Fatal(err)
	}
	w, err := c.WatchRounds(ctx, "drop", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for round := 1; round <= 4; round++ {
			for node := 0; node < 2; node++ {
				_, _ = c.SubmitBid(ctx, "drop", Bid{NodeID: node, Qualities: []float64{0.3, 0.7}, Payment: 0.1})
			}
			_, _ = c.CloseRound(ctx, "drop")
			time.Sleep(20 * time.Millisecond)
		}
	}()
	got := collectRounds(t, w, 4, 15*time.Second)
	for i, ev := range got {
		if ev.Round != i+1 {
			t.Fatalf("rounds out of order or duplicated: %v", roundsOf(got))
		}
		if ev.Outcome == nil || len(ev.Outcome.Winners) != 1 {
			t.Fatalf("event %d outcome = %+v", i, ev.Outcome)
		}
	}
	if n := eventConns.Load(); n < 2 {
		t.Fatalf("server saw %d event connections, want a reconnect", n)
	}
	if id, _ := lastEventID.Load().(string); id != "1" {
		t.Fatalf("reconnect Last-Event-ID = %q, want 1 (the last delivered round)", id)
	}
}

func roundsOf(evs []Event) []int {
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Round
	}
	return out
}

// droppingWriter forwards the SSE stream until dropAfterRounds round_closed
// events have been flushed, then panics with ErrAbortHandler — the
// server-side equivalent of a connection cut.
type droppingWriter struct {
	http.ResponseWriter
	dropAfterRounds int
	seen            int
	armed           bool
}

func (d *droppingWriter) Write(p []byte) (int, error) {
	d.seen += strings.Count(string(p), "event: round_closed")
	n, err := d.ResponseWriter.Write(p)
	if d.seen >= d.dropAfterRounds {
		d.armed = true
	}
	return n, err
}

func (d *droppingWriter) Flush() {
	if f, ok := d.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	if d.armed {
		panic(http.ErrAbortHandler)
	}
}

// TestWatchAfterRound: WatchOptions.AfterRound replays only the rounds past
// the resume point.
func TestWatchAfterRound(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("replay", 1, 4)); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		for node := 0; node < 2; node++ {
			if _, err := c.SubmitBid(ctx, "replay", Bid{NodeID: node, Qualities: []float64{0.2, 0.8}, Payment: 0.1}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.CloseRound(ctx, "replay"); err != nil {
			t.Fatal(err)
		}
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w, err := c.WatchRounds(wctx, "replay", WatchOptions{AfterRound: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRounds(t, w, 2, 5*time.Second)
	if got[0].Round != 2 || got[1].Round != 3 {
		t.Fatalf("replayed rounds = %v, want [2 3]", roundsOf(got))
	}
}

// TestWatchJobClosedEndsCleanly: removing the job delivers job_closed and
// the channel closes with a nil Err.
func TestWatchJobClosedEndsCleanly(t *testing.T) {
	c, _ := fixture(t)
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("finite", 1, 6)); err != nil {
		t.Fatal(err)
	}
	w, err := c.WatchRounds(ctx, "finite", WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveJob(ctx, "finite"); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				if werr := w.Err(); werr != nil {
					t.Fatalf("watch err = %v, want clean close", werr)
				}
				return
			}
			if ev.Type == JobClosed {
				continue // channel close follows
			}
		case <-deadline:
			t.Fatal("watch did not end after job removal")
		}
	}
}

// TestWatchDurableRestart is the crash/recovery contract end to end: a
// durable exchange is killed and reopened, and a client that was watching
// resumes and reads bit-identical outcomes through the v1 API.
func TestWatchDurableRestart(t *testing.T) {
	dir := t.TempDir()
	ex, err := exchange.Open(dir, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(exchange.NewHandler(ex))
	c, err := New(srv.URL, WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateJob(ctx, additiveSpec("dur", 2, 99)); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		for node := 0; node < 6; node++ {
			if _, err := c.SubmitBid(ctx, "dur", Bid{
				NodeID:    node,
				Qualities: []float64{0.15 * float64(node+1), 0.9 - 0.1*float64(node)},
				Payment:   0.05 * float64(node+1),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.CloseRound(ctx, "dur"); err != nil {
			t.Fatal(err)
		}
	}
	// Raw response bytes are the strongest equality witness across the
	// restart (struct equality could mask field-level drift).
	rawBefore := rawOutcome(t, srv.URL, "dur", 2)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	ex.Close()

	ex2, err := exchange.Open(dir, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(exchange.NewHandler(ex2))
	t.Cleanup(func() {
		srv2.Close()
		ex2.Close()
	})
	c2, err := New(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	rawAfter := rawOutcome(t, srv2.URL, "dur", 2)
	if rawBefore != rawAfter {
		t.Fatalf("outcome bytes changed across restart:\n%s\n%s", rawBefore, rawAfter)
	}
	// The SDK view agrees, and a watch resuming past round 1 replays round
	// 2 from the recovered history.
	out, err := c2.Outcome(ctx, "dur", 2)
	if err != nil || out.Round != 2 || len(out.Winners) != 2 {
		t.Fatalf("recovered outcome = %+v err %v", out, err)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w, err := c2.WatchRounds(wctx, "dur", WatchOptions{AfterRound: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := collectRounds(t, w, 1, 5*time.Second)
	if got[0].Round != 2 || fmt.Sprint(*got[0].Outcome) != fmt.Sprint(out) {
		t.Fatalf("replayed recovered outcome = %+v, want %+v", *got[0].Outcome, out)
	}
}

// rawOutcome fetches the raw response bytes of one outcome. Raw HTTP is
// deliberate here (the test pins the wire bytes themselves, which the SDK
// would re-serialize).
func rawOutcome(t *testing.T, base, jobID string, round int) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/outcome?round=%d", base, jobID, round))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw outcome status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

package client

import (
	"context"
	"fmt"
	"sync"

	"fmore/internal/auction"
)

// Engine adapts a remote exchange job to the transport.Engine interface:
// each aggregator round becomes one exchange round driven through the v1
// API (submit the collected bids, close, return the outcome). It replaces
// the old in-process adapter so the TCP aggregator harness and any other
// embedder reach the exchange exclusively through the SDK — the same path a
// separately deployed exchange would be driven over.
//
// The job should be created with BidWindow = 0 (manual rounds); the caller
// owns the round cadence.
type Engine struct {
	c     *Client
	jobID string
	ctx   context.Context
}

// NewEngine returns the adapter for jobID on c's exchange. ctx bounds every
// round's API calls; pass context.Background() for no deadline.
func NewEngine(ctx context.Context, c *Client, jobID string) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Engine{c: c, jobID: jobID, ctx: ctx}
}

// RunRound implements transport.Engine. The transport round number is
// informational; the job keeps its own contiguous round counter.
// Individually rejected bids (blacklisted or unregistered nodes) drop out
// of the round without failing it, mirroring the aggregator's tolerance of
// misbehaving nodes; the round errors only if no bid is admitted.
//
// Submissions fire concurrently — they are independent HTTP requests, and
// sequencing them would multiply round latency by the bidder count. The
// outcome is unaffected: the exchange canonically orders each round's bid
// set by node ID before scoring.
func (e *Engine) RunRound(round int, bids []auction.Bid) (auction.Outcome, error) {
	var (
		mu       sync.Mutex
		lastErr  error
		admitted int
		wg       sync.WaitGroup
	)
	for _, b := range bids {
		wg.Add(1)
		go func(b auction.Bid) {
			defer wg.Done()
			_, err := e.c.SubmitBid(e.ctx, e.jobID, Bid{
				NodeID:    b.NodeID,
				Qualities: b.Qualities,
				Payment:   b.Payment,
			})
			mu.Lock()
			if err != nil {
				lastErr = err
			} else {
				admitted++
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if admitted == 0 {
		if lastErr == nil {
			lastErr = auction.ErrNoBids
		}
		return auction.Outcome{}, fmt.Errorf("client: engine admitted 0/%d bids (transport round %d): %w", len(bids), round, lastErr)
	}
	out, err := e.c.CloseRound(e.ctx, e.jobID)
	if err != nil {
		return auction.Outcome{}, fmt.Errorf("client: engine close (transport round %d): %w", round, err)
	}
	return out.AuctionOutcome(), nil
}

// AuctionOutcome converts the wire outcome back into the auction engine's
// native form; BidPayment restores each winning bid's asked payment so
// downstream accounting (second-price analysis, profit checks) sees exactly
// what an in-process auctioneer would have returned.
func (o Outcome) AuctionOutcome() auction.Outcome {
	winners := make([]auction.Winner, len(o.Winners))
	for i, w := range o.Winners {
		winners[i] = auction.Winner{
			Bid: auction.Bid{
				NodeID:    w.NodeID,
				Qualities: append([]float64(nil), w.Qualities...),
				Payment:   w.BidPayment,
			},
			Score:   w.Score,
			Payment: w.Payment,
		}
	}
	return auction.Outcome{
		Winners:          winners,
		Scores:           append([]float64(nil), o.Scores...),
		AggregatorProfit: o.AggregatorProfit,
	}
}

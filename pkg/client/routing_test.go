package client

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"fmore/internal/exchange"
	"fmore/internal/partition"
)

// partitionedPair starts two partitioned exchange replicas (p0, p1) behind
// HTTP front ends sharing one cluster map, and installs the map — with the
// servers' real URLs — into both replicas' handles.
func partitionedPair(t *testing.T) (ex0, ex1 *exchange.Exchange, url0, url1 string) {
	t.Helper()
	h0, h1 := partition.NewHandle(nil), partition.NewHandle(nil)
	ex0 = exchange.New(exchange.Options{Partition: &partition.Assignment{Local: "p0", Map: h0}})
	ex1 = exchange.New(exchange.Options{Partition: &partition.Assignment{Local: "p1", Map: h1}})
	srv0 := httptest.NewServer(exchange.NewHandler(ex0))
	srv1 := httptest.NewServer(exchange.NewHandler(ex1))
	t.Cleanup(func() {
		srv0.Close()
		srv1.Close()
		ex0.Close()
		ex1.Close()
	})
	m := &partition.Map{Version: 1, Partitions: []partition.Replica{
		{Partition: "p0", URL: srv0.URL},
		{Partition: "p1", URL: srv1.URL},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	h0.Advance(m)
	h1.Advance(m)
	return ex0, ex1, srv0.URL, srv1.URL
}

// jobOwnedUnder finds a job ID that partition `want` owns under m.
func jobOwnedUnder(t *testing.T, m *partition.Map, want string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("routed-%d", i)
		if owner, ok := m.Owner(id); ok && owner.Partition == want {
			return id
		}
	}
	t.Fatalf("no candidate job owned by %s", want)
	return ""
}

// TestClientRedirectOnWrongPartition points the SDK at the replica that does
// NOT own the job and checks every job-scoped call converges in one
// transparent re-aim: the create lands on the owner, concurrent bids all
// land exactly once (run under -race), and an idempotency-keyed create
// replays instead of duplicating even though each attempt crosses replicas.
func TestClientRedirectOnWrongPartition(t *testing.T) {
	ex0, ex1, url0, _ := partitionedPair(t)
	ctx := context.Background()

	// Base = replica p0; job owned by p1.
	c, err := New(url0)
	if err != nil {
		t.Fatal(err)
	}
	jobID := jobOwnedUnder(t, ex1.PartitionMap(), "p1")

	spec := additiveSpec(jobID, 2, 7)
	spec.IdempotencyKey = "create-once"
	if _, err := c.CreateJob(ctx, spec); err != nil {
		t.Fatalf("redirected create: %v", err)
	}
	if _, ok := ex1.Job(jobID); !ok {
		t.Fatal("job did not land on owning replica")
	}
	// Whole-call replay with the same key still converges on the recorded
	// response after the redirect.
	if _, err := c.CreateJob(ctx, spec); err != nil {
		t.Fatalf("keyed create replay: %v", err)
	}

	// The redirect refreshed the client's map as a side effect.
	if got := c.RoutingVersion(); got != 1 {
		t.Fatalf("RoutingVersion after redirect = %d, want 1", got)
	}

	// Concurrent misdirected bids: strip routing state so each goroutine's
	// first attempt really hits the wrong replica, then re-aims.
	cold, err := New(url0)
	if err != nil {
		t.Fatal(err)
	}
	const bidders = 16
	var wg sync.WaitGroup
	errs := make([]error, bidders)
	for i := 0; i < bidders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			round, err := cold.SubmitBid(ctx, jobID, Bid{NodeID: i, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
			if err == nil && round != 1 {
				err = fmt.Errorf("bid entered round %d, want 1", round)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("bid %d: %v", i, err)
		}
	}
	ro, err := ex1.CloseRound(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if ro.NumBids != bidders {
		t.Fatalf("owner scored %d bids, want exactly %d", ro.NumBids, bidders)
	}
	// Every bid was refused once by p0 before converging.
	if wp := ex0.Metrics().WrongPartition; wp < bidders {
		t.Fatalf("p0 wrong_partition = %d, want >= %d", wp, bidders)
	}
}

// TestClientEnableRoutingDirect turns on SDK routing and checks job-scoped
// calls bypass the base replica entirely: the non-owner never refuses a
// request because it never sees one.
func TestClientEnableRoutingDirect(t *testing.T) {
	ex0, ex1, url0, _ := partitionedPair(t)
	ctx := context.Background()

	c, err := New(url0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableRouting(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.RoutingVersion(); got != 1 {
		t.Fatalf("RoutingVersion = %d, want 1", got)
	}

	jobID := jobOwnedUnder(t, ex0.PartitionMap(), "p1")
	if _, err := c.CreateJob(ctx, additiveSpec(jobID, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitBid(ctx, jobID, Bid{NodeID: 1, Qualities: []float64{0.6, 0.4}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	out, err := c.CloseRound(ctx, jobID)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != 1 {
		t.Fatalf("round = %d, want 1", out.Round)
	}
	if got := ex0.Metrics().WrongPartition; got != 0 {
		t.Fatalf("p0 refused %d requests; routing should have bypassed it", got)
	}
	if _, ok := ex1.Job(jobID); !ok {
		t.Fatal("job not hosted on owner")
	}
}

// TestClientEnableRoutingUnpartitioned: against a single unpartitioned
// exchange the map fetch 404s and routing silently stays off.
func TestClientEnableRoutingUnpartitioned(t *testing.T) {
	c, _ := fixture(t)
	if err := c.EnableRouting(context.Background()); err != nil {
		t.Fatalf("EnableRouting on unpartitioned exchange: %v", err)
	}
	if got := c.RoutingVersion(); got != 0 {
		t.Fatalf("RoutingVersion = %d, want 0 (routing off)", got)
	}
}

// TestClientRoutingMapVersionBump bumps the cluster map under a client still
// routing by the old version: its next create aims at the stale owner, gets
// wrong_partition, re-aims to the v2 owner, and comes back carrying the new
// map.
func TestClientRoutingMapVersionBump(t *testing.T) {
	ex0, ex1, url0, _ := partitionedPair(t)
	ctx := context.Background()

	c, err := New(url0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableRouting(ctx); err != nil {
		t.Fatal(err)
	}

	// v2 renames p0 → p2 (same replica URL), shifting a slice of the hash
	// space. Pick a job that moves from p0 (v1) to p1 (v2): the stale
	// client aims the create at replica 0, which refuses it under v2.
	v1 := ex0.PartitionMap()
	v2 := &partition.Map{Version: 2, Partitions: []partition.Replica{
		{Partition: "p2", URL: v1.Partitions[0].URL},
		{Partition: "p1", URL: v1.Partitions[1].URL},
	}}
	var moved string
	for i := 0; i < 8192 && moved == ""; i++ {
		id := fmt.Sprintf("bump-%d", i)
		if v1.Owns("p0", id) && v2.Owns("p1", id) {
			moved = id
		}
	}
	if moved == "" {
		t.Fatal("no job moves p0→p1 across the bump")
	}
	ex0.Partition().Map.Advance(v2)
	ex1.Partition().Map.Advance(v2)

	if _, err := c.CreateJob(ctx, additiveSpec(moved, 2, 3)); err != nil {
		t.Fatalf("create across map bump: %v", err)
	}
	if _, ok := ex1.Job(moved); !ok {
		t.Fatal("job did not land on v2 owner")
	}
	if got := c.RoutingVersion(); got != 2 {
		t.Fatalf("RoutingVersion after bump = %d, want 2", got)
	}
	// With the refreshed map the next call goes straight to the owner.
	before := ex0.Metrics().WrongPartition
	if _, err := c.SubmitBid(ctx, moved, Bid{NodeID: 3, Qualities: []float64{0.5, 0.5}, Payment: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := ex0.Metrics().WrongPartition; got != before {
		t.Fatalf("stale replica refused again after refresh (%d → %d)", before, got)
	}
}

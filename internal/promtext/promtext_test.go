package promtext

import (
	"math"
	"strings"
	"testing"
)

const goodPage = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total 42
# HELP demo_temp_celsius Current temperature.
# TYPE demo_temp_celsius gauge
demo_temp_celsius{sensor="a",site="lab 1"} -3.5
demo_temp_celsius{sensor="b",site="lab 1"} 7
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.1"} 10
demo_latency_seconds_bucket{le="0.5"} 15
demo_latency_seconds_bucket{le="+Inf"} 20
demo_latency_seconds_sum 4.5
demo_latency_seconds_count 20
`

func TestParseGoodPage(t *testing.T) {
	m, err := Parse(strings.NewReader(goodPage))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Order); got != 3 {
		t.Fatalf("families = %d, want 3", got)
	}
	v, err := m.Value("demo_requests_total")
	if err != nil || v != 42 {
		t.Fatalf("requests_total = %v, %v; want 42", v, err)
	}
	gauge := m.Families["demo_temp_celsius"]
	if gauge.Type != "gauge" || len(gauge.Samples) != 2 {
		t.Fatalf("gauge family = %+v", gauge)
	}
	if s := gauge.Samples[0]; s.Labels["sensor"] != "a" || s.Labels["site"] != "lab 1" || s.Value != -3.5 {
		t.Fatalf("labeled sample = %+v", s)
	}
	hist := m.Families["demo_latency_seconds"]
	if hist.Type != "histogram" || len(hist.Samples) != 5 {
		t.Fatalf("histogram family = %+v", hist)
	}
	inf := hist.Samples[2]
	if !math.IsInf(mustLe(t, inf.Labels["le"]), 1) {
		t.Fatalf("+Inf bucket le = %q", inf.Labels["le"])
	}
}

func mustLe(t *testing.T, s string) float64 {
	t.Helper()
	v, err := parseValue(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseRejectsMalformedPages(t *testing.T) {
	cases := map[string]string{
		"bad metric name": "# TYPE 1bad counter\n1bad 1\n",
		"bad name in sample": "# TYPE ok counter\n" +
			"bad-dash 1\n",
		"sample before TYPE":  "lonely_metric 1\n",
		"unknown type":        "# TYPE x widget\nx 1\n",
		"TYPE after samples":  "# TYPE x counter\nx 1\n# TYPE x gauge\n",
		"bad label name":      "# TYPE x counter\nx{9bad=\"v\"} 1\n",
		"unquoted label":      "# TYPE x counter\nx{l=v} 1\n",
		"duplicate label":     "# TYPE x counter\nx{l=\"a\",l=\"b\"} 1\n",
		"unterminated labels": "# TYPE x counter\nx{l=\"a\" 1\n",
		"bad value":           "# TYPE x counter\nx one\n",
		"bucket without le": "# TYPE h histogram\n" +
			"h_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.5\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 0\nh_count 5\n",
		"le out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.5\"} 3\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 0\nh_count 5\n",
		"missing +Inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.5\"} 3\nh_sum 0\nh_count 3\n",
		"count disagrees with +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 0\nh_count 7\n",
	}
	for name, page := range cases {
		if _, err := Parse(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, page)
		}
	}
}

func TestParseToleratesTimestampsAndComments(t *testing.T) {
	page := "# scraped by test\n" +
		"# TYPE ts_metric counter\n" +
		"ts_metric 5 1712345678901\n"
	m, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Value("ts_metric"); err != nil || v != 5 {
		t.Fatalf("ts_metric = %v, %v; want 5", v, err)
	}
}

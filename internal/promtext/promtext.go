// Package promtext is a small validating parser for the Prometheus text
// exposition format (0.0.4) — just enough to smoke-test a scrape: metric
// name, label and type syntax, TYPE/sample consistency, and histogram
// bucket monotonicity. It exists so the exchange's hand-rolled exposition
// can be verified in CI without importing a Prometheus client library.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Sample is one scraped series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: its TYPE, HELP and samples in exposition
// order. Histogram families collect their _bucket/_sum/_count samples.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Metrics is a parsed exposition page.
type Metrics struct {
	// Families indexes by family name; Order preserves declaration order.
	Families map[string]*Family
	Order    []string
}

// Value returns the single unlabeled sample of the named family.
func (m *Metrics) Value(name string) (float64, error) {
	f, ok := m.Families[name]
	if !ok {
		return 0, fmt.Errorf("promtext: no family %q", name)
	}
	for _, s := range f.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, nil
		}
	}
	return 0, fmt.Errorf("promtext: family %q has no unlabeled sample", name)
}

// sampleFamily maps a sample name back to its declared family. Histogram
// and summary suffixes fold into their base family — but only when that
// base is actually declared as one, so a plain gauge whose name happens to
// end in _count (e.g. wal_segment_count) keeps its own family.
func (m *Metrics) sampleFamily(name string) string {
	if f, ok := m.Families[name]; ok && f.Type != "" {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f, ok := m.Families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return name
}

// Parse reads one exposition page, validating syntax as it goes:
// well-formed HELP/TYPE comments, legal metric and label names, float
// values, every sample preceded by its family's TYPE, and histogram
// buckets cumulative with a trailing +Inf equal to _count.
func Parse(r io.Reader) (*Metrics, error) {
	m := &Metrics{Families: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := m.parseSample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range m.Order {
		if f := m.Families[name]; f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func (m *Metrics) family(name string) *Family {
	f, ok := m.Families[name]
	if !ok {
		f = &Family{Name: name}
		m.Families[name] = f
		m.Order = append(m.Order, name)
	}
	return f
}

func (m *Metrics) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("bad metric name %q in HELP", fields[2])
		}
		f := m.family(fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("bad metric name %q in TYPE", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE without a type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
		f := m.family(fields[2])
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %q after its samples", fields[2])
		}
		f.Type = fields[3]
	default:
		// Other comments are legal and ignored.
	}
	return nil
}

func (m *Metrics) parseSample(line string) error {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name = line[:i]
		rest = line[i:]
	}
	if !nameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[1:end]
		rest = rest[end+1:]
		for _, pair := range splitLabels(body) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("malformed label %q", pair)
			}
			if !labelRe.MatchString(k) {
				return fmt.Errorf("bad label name %q", k)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				return fmt.Errorf("label %s value %s is not a quoted string", k, v)
			}
			if _, dup := labels[k]; dup {
				return fmt.Errorf("duplicate label %q", k)
			}
			labels[k] = unq
		}
	}
	valStr := strings.TrimSpace(rest)
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		valStr = valStr[:i] // a timestamp may follow; tolerate it
	}
	val, err := parseValue(valStr)
	if err != nil {
		return fmt.Errorf("bad value in %q: %w", line, err)
	}
	fam := m.family(m.sampleFamily(name))
	if fam.Type == "" {
		return fmt.Errorf("sample %q before any TYPE for %q", name, fam.Name)
	}
	if fam.Type == "histogram" && strings.HasSuffix(name, "_bucket") {
		if _, ok := labels["le"]; !ok {
			return fmt.Errorf("histogram bucket %q without le label", line)
		}
	}
	fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: val})
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks cumulative bucket monotonicity, le ordering,
// a final +Inf bucket and its agreement with _count.
func validateHistogram(f *Family) error {
	var lastLe, lastCum float64
	lastLe = math.Inf(-1)
	sawInf := false
	var count float64
	hasCount := false
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, s.Labels["le"])
			}
			if le <= lastLe {
				return fmt.Errorf("histogram %s: le %v out of order", f.Name, s.Labels["le"])
			}
			if s.Value < lastCum {
				return fmt.Errorf("histogram %s: bucket le=%s count %v < previous %v (not cumulative)",
					f.Name, s.Labels["le"], s.Value, lastCum)
			}
			lastLe, lastCum = le, s.Value
			if s.Labels["le"] == "+Inf" {
				sawInf = true
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
			hasCount = true
		}
	}
	if !sawInf {
		return fmt.Errorf("histogram %s: no +Inf bucket", f.Name)
	}
	if !hasCount {
		return fmt.Errorf("histogram %s: no _count", f.Name)
	}
	if count != lastCum {
		return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", f.Name, count, lastCum)
	}
	return nil
}

package auction

import (
	"errors"
	"fmt"
	"math"

	"fmore/internal/numeric"
)

// ErrDimensionMismatch reports a quality vector whose length does not match
// the scoring rule or cost function it is evaluated under.
var ErrDimensionMismatch = errors.New("auction: quality vector dimension mismatch")

// ScoringRule is the resource-utility part s(q₁..qₘ) of the quasi-linear
// scoring function S(q, p) = s(q) − p the aggregator broadcasts in the bid
// ask. Implementations must be non-decreasing in every coordinate.
type ScoringRule interface {
	// Value returns s(q). It panics only on programmer error; dimension
	// mismatches are reported as NaN-free zero with ok=false via CheckDims.
	Value(q []float64) float64
	// Dims returns the number m of resource dimensions.
	Dims() int
	// Name identifies the rule family for logs and experiment output.
	Name() string
}

// Score evaluates the quasi-linear scoring function S(q, p) = s(q) − p
// (Eq (4) of the paper).
func Score(rule ScoringRule, q []float64, p float64) (float64, error) {
	if err := CheckDims(rule.Dims(), q); err != nil {
		return 0, err
	}
	return rule.Value(q) - p, nil
}

// CheckDims validates that q has exactly want entries, all finite.
func CheckDims(want int, q []float64) error {
	if len(q) != want {
		return fmt.Errorf("%w: got %d, want %d", ErrDimensionMismatch, len(q), want)
	}
	for i, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("auction: quality[%d] = %v is not finite", i, v)
		}
	}
	return nil
}

// Additive is the perfect-substitution utility s(q) = Σ αᵢqᵢ, the paper's
// recommendation for substitutable resources such as GPU and CPU. It is also
// the scoring rule of the real-cluster experiment (§V-A, coefficients
// 0.4/0.3/0.3 over computing power, bandwidth, data size).
type Additive struct {
	Alpha []float64
}

var _ ScoringRule = Additive{}

// NewAdditive returns an additive rule with the given positive coefficients.
func NewAdditive(alpha ...float64) (Additive, error) {
	if err := checkCoefficients(alpha); err != nil {
		return Additive{}, err
	}
	return Additive{Alpha: append([]float64(nil), alpha...)}, nil
}

// Value implements ScoringRule.
func (a Additive) Value(q []float64) float64 {
	s := 0.0
	for i := range a.Alpha {
		s += a.Alpha[i] * q[i]
	}
	return s
}

// Dims implements ScoringRule.
func (a Additive) Dims() int { return len(a.Alpha) }

// Name implements ScoringRule.
func (a Additive) Name() string { return "additive" }

// Leontief is the perfect-complementary utility s(q) = min{αᵢqᵢ}, the
// paper's choice when resources are only useful together (e.g. bandwidth and
// computing power), and the rule of the five-node walk-through example.
type Leontief struct {
	Alpha []float64
}

var _ ScoringRule = Leontief{}

// NewLeontief returns a Leontief (min) rule with positive coefficients.
func NewLeontief(alpha ...float64) (Leontief, error) {
	if err := checkCoefficients(alpha); err != nil {
		return Leontief{}, err
	}
	return Leontief{Alpha: append([]float64(nil), alpha...)}, nil
}

// Value implements ScoringRule.
func (l Leontief) Value(q []float64) float64 {
	m := math.Inf(1)
	for i := range l.Alpha {
		if v := l.Alpha[i] * q[i]; v < m {
			m = v
		}
	}
	return m
}

// Dims implements ScoringRule.
func (l Leontief) Dims() int { return len(l.Alpha) }

// Name implements ScoringRule.
func (l Leontief) Name() string { return "leontief" }

// CobbDouglas is the general Cobb–Douglas utility
// s(q) = Scale · Π qᵢ^Exponent_i. The paper's simulator uses the special case
// s(q₁, q₂) = α·q₁·q₂ with α = 25 (Scale = 25, exponents 1); Proposition 4's
// guidance assumes Σ exponents = 1 (see guidance.go).
type CobbDouglas struct {
	Scale     float64
	Exponents []float64
}

var _ ScoringRule = CobbDouglas{}

// NewCobbDouglas returns a Cobb–Douglas rule. Scale and every exponent must
// be positive.
func NewCobbDouglas(scale float64, exponents ...float64) (CobbDouglas, error) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return CobbDouglas{}, fmt.Errorf("auction: Cobb-Douglas scale must be positive and finite, got %v", scale)
	}
	if err := checkCoefficients(exponents); err != nil {
		return CobbDouglas{}, err
	}
	return CobbDouglas{Scale: scale, Exponents: append([]float64(nil), exponents...)}, nil
}

// Value implements ScoringRule. Qualities must be non-negative; negative
// inputs are clamped to zero so fractional exponents stay real.
func (c CobbDouglas) Value(q []float64) float64 {
	v := c.Scale
	for i := range c.Exponents {
		qi := q[i]
		if qi < 0 {
			qi = 0
		}
		v *= math.Pow(qi, c.Exponents[i])
	}
	return v
}

// Dims implements ScoringRule.
func (c CobbDouglas) Dims() int { return len(c.Exponents) }

// Name implements ScoringRule.
func (c CobbDouglas) Name() string { return "cobb-douglas" }

// Normalized wraps a ScoringRule so that each quality dimension is min–max
// normalized to [0, 1] before evaluation, as in the walk-through example of
// §III-B where data size and bandwidth live on very different scales.
type Normalized struct {
	Rule ScoringRule
	Lo   []float64
	Hi   []float64
}

var _ ScoringRule = Normalized{}

// NewNormalized builds a normalizing wrapper; lo/hi give the per-dimension
// ranges used for min–max normalization and must match the inner rule's
// dimension count.
func NewNormalized(rule ScoringRule, lo, hi []float64) (Normalized, error) {
	if len(lo) != rule.Dims() || len(hi) != rule.Dims() {
		return Normalized{}, fmt.Errorf("%w: ranges %d/%d vs rule %d", ErrDimensionMismatch, len(lo), len(hi), rule.Dims())
	}
	for i := range lo {
		if !(lo[i] < hi[i]) {
			return Normalized{}, fmt.Errorf("auction: normalization range [%v, %v] in dim %d is empty", lo[i], hi[i], i)
		}
	}
	return Normalized{
		Rule: rule,
		Lo:   append([]float64(nil), lo...),
		Hi:   append([]float64(nil), hi...),
	}, nil
}

// Value implements ScoringRule.
func (n Normalized) Value(q []float64) float64 {
	norm := make([]float64, len(q))
	for i := range q {
		norm[i] = numeric.MinMaxNormalize(q[i], n.Lo[i], n.Hi[i])
	}
	return n.Rule.Value(norm)
}

// Dims implements ScoringRule.
func (n Normalized) Dims() int { return n.Rule.Dims() }

// Name implements ScoringRule.
func (n Normalized) Name() string { return "normalized-" + n.Rule.Name() }

func checkCoefficients(alpha []float64) error {
	if len(alpha) == 0 {
		return errors.New("auction: at least one coefficient required")
	}
	for i, a := range alpha {
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("auction: coefficient[%d] = %v must be positive and finite", i, a)
		}
	}
	return nil
}

// Package auction implements FMore, the multi-dimensional procurement
// auction with K winners from "FMore: An Incentive Scheme of Multi-dimensional
// Auction for Federated Learning in MEC" (Zeng et al., ICDCS 2020).
//
// The auction proceeds in three incentive steps per federated round (§III-A):
//
//  1. Bid ask — the aggregator broadcasts a quasi-linear scoring rule
//     S(q₁..qₘ, p) = s(q₁..qₘ) − p. Supported s(·) families are the perfect
//     substitution (additive), perfect complementary (Leontief/min) and
//     Cobb–Douglas utility functions.
//  2. Bid collection — each edge node privately knows its cost parameter θ
//     (i.i.d. with CDF F on [θ̲, θ̄]) and a cost function c(q, θ) satisfying
//     the single-crossing conditions. A rational node bids the Nash
//     equilibrium strategy of Theorem 1: quality qˢ(θ) = argmax s(q) − c(q, θ)
//     (Che's Theorem 1 — quality separates from payment) and payment
//     pˢ(θ) = c(qˢ, θ) + ∫₀ᵘ g(x)dx / g(u), computed numerically with the
//     Euler method as the paper prescribes (quadrature and RK4 variants are
//     provided as cross-checks).
//  3. Winner determination — the aggregator keeps the K best scores
//     (first-price payments by default, second-price optionally; ties broken
//     by coin flip). The ψ-FMore extension (§III-C) admits each node in score
//     order only with probability ψ, trading selection pressure for data
//     diversity.
//
// # The selection pipeline
//
// All winner-determination variants run through one configurable core:
// build a SelectionRequest (rule, bids, K, optional precomputed scores,
// ψ or per-node ψ vector, budget, payment rule) and call Selector.Select.
// The pipeline stages are
//
//	score → rank → select → pay
//
// The score stage validates each bid, evaluates S(qᵢ, pᵢ) (or accepts the
// caller's precomputed vector, e.g. from a batched scoring pool) and draws
// exactly one tiebreak key per bid in input order. The rank stage is a
// bounded partial top-K selection: a size-K min-heap over (score, tiebreak,
// position) that also tracks the (K+1)-th reference score second-price
// payments need, for O(N log K) winner determination at K ≪ N. Variants
// that can look past the K-th candidate (ψ-admission, budget knapsack) fall
// back to a full O(N log N) in-place heapsort over the same pooled buffers.
//
// Buffer reuse rules: a Selector owns all scratch memory, so a long-lived
// caller (one Selector per auction stream) runs selections with zero
// steady-state allocations. The returned Outcome aliases the selector's
// buffers and the request's bids and is valid only until the next Select
// call; Outcome.Clone produces an owning copy. The package-level Select
// and the Auctioneer's Run/RunScored return owning outcomes. Callers that
// retain outcomes round after round (the exchange's per-job history) use
// Auctioneer.RunScoredInto with a recycled OutcomeBuffer instead: the
// result is deep-copied into caller-pooled, generation-tagged memory —
// same rng draw sequence, no per-round allocation — and stays valid until
// the buffer's next reuse (see OutcomeBuffer's ownership rules).
//
// # Legacy entry points
//
// DetermineWinners, DetermineWinnersScored, DetermineWinnersPsi,
// DetermineWinnersPsiScored, DetermineWinnersBudget and
// DetermineWinnersPsiVector predate the pipeline and are retained as thin
// wrappers over Select. They are bit-for-bit compatible with the original
// full-sort implementation — identical Outcomes, identical rng draw order —
// which the exchange's write-ahead-log replay depends on and a seeded
// equivalence property test enforces. They allocate per call; new code and
// hot paths should prefer a pooled Selector (or an Auctioneer).
//
// The theoretical results of §IV are exposed as executable artifacts:
// expected-profit curves (Theorems 2 and 3), social surplus / Pareto
// efficiency (Theorem 4), incentive compatibility (Theorem 5), ψ-neutrality
// under identical θ (Proposition 2), quality/payment separation
// (Proposition 3), and the aggregator's expected-utility resource-mix
// guidance (Proposition 4).
package auction

// Package auction implements FMore, the multi-dimensional procurement
// auction with K winners from "FMore: An Incentive Scheme of Multi-dimensional
// Auction for Federated Learning in MEC" (Zeng et al., ICDCS 2020).
//
// The auction proceeds in three incentive steps per federated round (§III-A):
//
//  1. Bid ask — the aggregator broadcasts a quasi-linear scoring rule
//     S(q₁..qₘ, p) = s(q₁..qₘ) − p. Supported s(·) families are the perfect
//     substitution (additive), perfect complementary (Leontief/min) and
//     Cobb–Douglas utility functions.
//  2. Bid collection — each edge node privately knows its cost parameter θ
//     (i.i.d. with CDF F on [θ̲, θ̄]) and a cost function c(q, θ) satisfying
//     the single-crossing conditions. A rational node bids the Nash
//     equilibrium strategy of Theorem 1: quality qˢ(θ) = argmax s(q) − c(q, θ)
//     (Che's Theorem 1 — quality separates from payment) and payment
//     pˢ(θ) = c(qˢ, θ) + ∫₀ᵘ g(x)dx / g(u), computed numerically with the
//     Euler method as the paper prescribes (quadrature and RK4 variants are
//     provided as cross-checks).
//  3. Winner determination — the aggregator keeps the K best scores
//     (first-price payments by default, second-price optionally; ties broken
//     by coin flip). The ψ-FMore extension (§III-C) admits each node in score
//     order only with probability ψ, trading selection pressure for data
//     diversity.
//
// The theoretical results of §IV are exposed as executable artifacts:
// expected-profit curves (Theorems 2 and 3), social surplus / Pareto
// efficiency (Theorem 4), incentive compatibility (Theorem 5), ψ-neutrality
// under identical θ (Proposition 2), quality/payment separation
// (Proposition 3), and the aggregator's expected-utility resource-mix
// guidance (Proposition 4).
package auction

package auction

import (
	"fmt"
	"math"
	"math/rand"
)

// This file is the winner-determination core every public entry point of the
// package routes through. One request type describes all supported variants
// (plain FMore top-K, ψ-FMore, per-node ψ vectors, aggregator budgets, first-
// and second-price payments, precomputed score vectors), and one pipeline
// executes them:
//
//	score → rank → select → pay
//
// The score stage validates every bid, evaluates S(qᵢ, pᵢ) (or takes the
// caller's precomputed vector) and draws exactly one coin-flip tiebreak per
// bid in input order — the rng contract the exchange's write-ahead log
// replay depends on. The rank stage is a bounded partial top-K selection: a
// size-K min-heap over (score, tiebreak, position) that also tracks the best
// excluded candidate, i.e. the (K+1)-th reference score the second-price
// rule needs, in O(N log K) instead of the O(N log N) full sort. Variants
// that walk past the K-th candidate (ψ-admission, budget knapsack) fall back
// to a full in-place heapsort over the same pooled buffer. The select and
// pay stages are shared by all variants.
//
// All scratch memory lives on the Selector, so a caller that keeps one
// Selector per auction stream (one per exchange job, one per Auctioneer)
// runs the whole pipeline with zero steady-state allocations.

// SelectionRequest describes one winner-determination problem. The zero
// value of every optional field means "off": Scores nil evaluates the rule
// inline, Psi 0 (or 1) is deterministic admission, PsiOf nil uses the scalar
// Psi, Budget 0 is unconstrained, Payment 0 is FirstPrice.
type SelectionRequest struct {
	// Rule is the broadcast scoring rule S(q, p) = Rule.Value(q) − p.
	Rule ScoringRule
	// Bids is the round's sealed bid slate.
	Bids []Bid
	// Scores optionally carries precomputed S(qᵢ, pᵢ), one entry per bid —
	// typically from a batched scoring pool (see internal/exchange). The
	// slice is read, never retained, and the outcome never aliases it.
	Scores []float64
	// K is the number of winners to select (required, >= 1).
	K int
	// Psi in (0, 1] runs ψ-FMore admission (§III-C); 0 means plain top-K.
	// Psi = 1 is the deterministic admission walk of the legacy ψ entry
	// point: it selects the same winners at the same payments as top-K but
	// represents an empty winner set as nil (instead of empty), so the ψ
	// wrappers stay bit-for-bit compatible. New callers wanting plain FMore
	// should leave Psi at 0.
	Psi float64
	// PsiOf, when non-nil, runs the per-node ψ generalization: it must
	// return an admission probability in (0, 1] for every bidding node.
	PsiOf func(nodeID int) float64
	// Budget, when positive, caps the cumulative asked payment of the
	// winner set (greedy knapsack admission).
	Budget float64
	// Payment selects first- or second-price payments (default FirstPrice).
	Payment PaymentRule
}

// Selector runs winner determinations over reusable scratch buffers. The
// zero value is ready to use; buffers grow to the largest slate seen and are
// then reused, so the steady state allocates nothing. A Selector is not safe
// for concurrent use — give each goroutine (or each exchange job) its own.
//
// Buffer reuse rules: the Outcome returned by Select aliases the Selector's
// internal buffers (Winners, Scores) and the request's bids (each
// Winner.Bid.Qualities aliases the corresponding input bid). It is valid
// only until the next Select call on the same Selector; call Outcome.Clone
// to retain it. The package-level Select does this for callers that prefer
// an owning result over buffer reuse.
type Selector struct {
	scores   []float64   // per-bid S(qᵢ, pᵢ), input order; aliased by Outcome.Scores
	tiebreak []float64   // per-bid coin-flip key, input order
	heap     []scoredBid // bounded top-K heap (deterministic top-K path)
	ranked   []scoredBid // full descending ranking (ψ and budget paths)
	walk     []scoredBid // ψ-admission working set
	selected []scoredBid // winners in selection order (ψ and budget paths)
	winners  []Winner    // outcome assembly buffer; aliased by Outcome.Winners
}

// scoredBid pairs a bid with its evaluated score and input position.
type scoredBid struct {
	bid   Bid
	score float64
	pos   int
}

// Select runs one winner determination on the Selector's pooled buffers.
// The returned Outcome follows the buffer reuse rules documented on
// Selector: it is valid until the next call and aliases the request's bids.
//
// The rng contract matches the legacy entry points bit for bit: exactly one
// Float64 tiebreak draw per bid in input order, followed (for ψ variants)
// by one admission draw per candidate visit in descending score order.
func (s *Selector) Select(req SelectionRequest, rng *rand.Rand) (Outcome, error) {
	if req.K < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", req.K)
	}
	if req.Psi != 0 && (req.Psi <= 0 || req.Psi > 1 || math.IsNaN(req.Psi)) {
		// NaN compares unequal to 0, so a NaN Psi lands here too.
		return Outcome{}, fmt.Errorf("auction: psi must be in (0, 1], got %v", req.Psi)
	}
	if req.Budget != 0 && (req.Budget <= 0 || math.IsNaN(req.Budget)) {
		return Outcome{}, fmt.Errorf("auction: budget must be positive, got %v", req.Budget)
	}
	if req.PsiOf != nil && req.Psi != 0 {
		return Outcome{}, fmt.Errorf("auction: Psi and PsiOf are mutually exclusive")
	}
	if req.Budget > 0 && (req.PsiOf != nil || req.Psi > 0) {
		return Outcome{}, fmt.Errorf("auction: Budget cannot be combined with ψ-admission")
	}
	if err := s.score(req, rng); err != nil {
		return Outcome{}, err
	}
	switch {
	case req.PsiOf != nil:
		return s.selectPsiVector(req, rng)
	case req.Psi > 0 && req.Psi < 1:
		return s.selectPsi(req, rng)
	case req.Psi == 1:
		return s.selectPsiOne(req)
	case req.Budget > 0:
		return s.selectBudget(req)
	default:
		return s.selectTopK(req)
	}
}

// score validates every bid, fills s.scores (from req.Scores or by
// evaluating the rule) and draws one tiebreak key per bid. Ties are broken
// by a fair coin flip as the paper specifies ("ties are resolved by the flip
// of a coin"), implemented as a random key drawn per bid in input order —
// the draw sequence is identical whether scores are precomputed or not, so
// seeded runs agree bit-for-bit regardless of which path scored the bids.
func (s *Selector) score(req SelectionRequest, rng *rand.Rand) error {
	n := len(req.Bids)
	if n == 0 {
		return ErrNoBids
	}
	if req.Scores != nil && len(req.Scores) != n {
		return fmt.Errorf("auction: %d precomputed scores for %d bids", len(req.Scores), n)
	}
	if cap(s.scores) < n {
		s.scores = make([]float64, n)
	}
	s.scores = s.scores[:n]
	if cap(s.tiebreak) < n {
		s.tiebreak = make([]float64, n)
	}
	s.tiebreak = s.tiebreak[:n]
	dims := req.Rule.Dims()
	for i := range req.Bids {
		b := &req.Bids[i]
		if err := b.Validate(dims); err != nil {
			return err
		}
		if req.Scores != nil {
			s.scores[i] = req.Scores[i]
		} else {
			// Validate already proved the dimensions, so S(q, p) reduces to
			// the rule evaluation minus the asked payment.
			s.scores[i] = req.Rule.Value(b.Qualities) - b.Payment
		}
		s.tiebreak[i] = rng.Float64()
	}
	return nil
}

// better reports whether a outranks b: higher score, then higher coin-flip
// key, then earlier input position. This is the strict total order the
// legacy stable sort produced, so every ranking below reproduces it exactly.
func (s *Selector) better(a, b scoredBid) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if ta, tb := s.tiebreak[a.pos], s.tiebreak[b.pos]; ta != tb {
		return ta > tb
	}
	return a.pos < b.pos
}

// siftUp and siftDown maintain a min-heap under better — the worst retained
// candidate sits at the root, so the heap holds the best len(h) candidates
// seen so far.
func (s *Selector) siftUp(h []scoredBid, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.better(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (s *Selector) siftDown(h []scoredBid, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && s.better(h[l], h[r]) {
			m = r
		}
		if !s.better(h[i], h[m]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// sortDescending heapsorts h in place into descending better-order. Because
// better is a strict total order (position breaks every remaining tie), the
// result is independent of the algorithm — identical to a stable sort.
func (s *Selector) sortDescending(h []scoredBid) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		s.siftDown(h, i)
	}
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		s.siftDown(h[:end], 0)
	}
}

// selectTopK is the deterministic FMore winner determination on the bounded
// heap: O(N log K) with K ≪ N instead of a full sort. The best candidate
// excluded from the heap is tracked as it goes — that is exactly the
// (K+1)-th ranked score the second-price rule references.
func (s *Selector) selectTopK(req SelectionRequest) (Outcome, error) {
	n := len(req.Bids)
	k := min(req.K, n)
	if cap(s.heap) < k {
		s.heap = make([]scoredBid, 0, k)
	}
	h := s.heap[:0]
	var excl scoredBid // best candidate not retained in the heap
	haveExcl := false
	for i := range req.Bids {
		e := scoredBid{bid: req.Bids[i], score: s.scores[i], pos: i}
		if len(h) < k {
			h = append(h, e)
			s.siftUp(h, len(h)-1)
			continue
		}
		if s.better(e, h[0]) {
			if !haveExcl || s.better(h[0], excl) {
				excl = h[0]
				haveExcl = true
			}
			h[0] = e
			s.siftDown(h, 0)
		} else if !haveExcl || s.better(e, excl) {
			excl = e
			haveExcl = true
		}
	}
	s.heap = h
	s.sortDescending(h)

	// The aggregator's individual-rationality constraint (V >= 0): bids with
	// negative scores are never selected, because U(q) − p < 0 would make
	// the aggregator worse off than not hiring the node. h is sorted, so the
	// winners are the non-negative prefix.
	selected := h
	for i := range h {
		if h[i].score < 0 {
			selected = h[:i]
			break
		}
	}

	// Reference score for second-price: the best score among non-selected
	// bids — the next heap entry when IR truncated the prefix, otherwise the
	// best candidate the heap evicted (the (K+1)-th overall).
	refScore, hasRef := 0.0, false
	switch {
	case len(selected) < len(h):
		refScore, hasRef = h[len(selected)].score, true
	case haveExcl:
		refScore, hasRef = excl.score, true
	}
	return s.outcome(req, selected, refScore, hasRef), nil
}

// rankAll fills s.ranked with every bid in descending better-order — the
// full ranking the ψ-admission and budget walks need because they may visit
// candidates past the K-th.
func (s *Selector) rankAll(req SelectionRequest) {
	n := len(req.Bids)
	if cap(s.ranked) < n {
		s.ranked = make([]scoredBid, 0, n)
	}
	r := s.ranked[:0]
	for i := range req.Bids {
		r = append(r, scoredBid{bid: req.Bids[i], score: s.scores[i], pos: i})
	}
	s.ranked = r
	s.sortDescending(r)
}

// refAfter returns the second-price reference after nsel winners were taken
// from the full ranking: the (nsel+1)-th ranked score, when one exists.
func (s *Selector) refAfter(nsel int) (float64, bool) {
	if nsel < len(s.ranked) {
		return s.ranked[nsel].score, true
	}
	return 0, false
}

// selectPsi implements ψ-FMore (§III-C): bids are visited in descending
// score order and each is admitted with probability psi, repeating passes
// over the remaining candidates until K winners are chosen or every eligible
// bid has been admitted.
func (s *Selector) selectPsi(req SelectionRequest, rng *rand.Rand) (Outcome, error) {
	s.rankAll(req)
	// Drop IR-violating bids up front.
	if cap(s.walk) < len(s.ranked) {
		s.walk = make([]scoredBid, 0, len(s.ranked))
	}
	remaining := s.walk[:0]
	for _, sb := range s.ranked {
		if sb.score >= 0 {
			remaining = append(remaining, sb)
		}
	}
	s.walk = remaining
	if len(remaining) == 0 {
		return Outcome{Scores: s.scores}, nil
	}
	selected := s.selectedBuf(req.K, len(remaining))
	// A pass may select nobody (every ψ-flip fails), so termination is only
	// almost-sure; the pass cap keeps it deterministic against a pathological
	// rng while being unreachable in practice (P(no progress per pass) =
	// (1−ψ)^len(remaining)).
	const maxPasses = 1 << 16
	for pass := 0; len(selected) < req.K && len(remaining) > 0 && pass < maxPasses; pass++ {
		next := remaining[:0]
		for _, sb := range remaining {
			if len(selected) >= req.K {
				next = append(next, sb)
				continue
			}
			if rng.Float64() < req.Psi {
				selected = append(selected, sb)
			} else {
				next = append(next, sb)
			}
		}
		remaining = next
	}
	s.selected = selected
	refScore, hasRef := s.refAfter(len(selected))
	return s.outcome(req, selected, refScore, hasRef), nil
}

// selectPsiOne is the ψ = 1 degenerate admission walk: every eligible
// candidate is admitted deterministically in score order (no rng draws), so
// the winner set equals plain top-K — only the nil representation of an
// empty winner set differs, which the ψ wrappers' bit-for-bit contract
// requires.
func (s *Selector) selectPsiOne(req SelectionRequest) (Outcome, error) {
	s.rankAll(req)
	if cap(s.walk) < len(s.ranked) {
		s.walk = make([]scoredBid, 0, len(s.ranked))
	}
	eligible := s.walk[:0]
	for _, sb := range s.ranked {
		if sb.score >= 0 {
			eligible = append(eligible, sb)
		}
	}
	s.walk = eligible
	if len(eligible) == 0 {
		return Outcome{Scores: s.scores}, nil
	}
	selected := eligible[:min(req.K, len(eligible))]
	refScore, hasRef := s.refAfter(len(selected))
	return s.outcome(req, selected, refScore, hasRef), nil
}

// selectPsiVector generalizes ψ-FMore to a distinct admission probability
// per node, validating each node's ψ on first visit.
func (s *Selector) selectPsiVector(req SelectionRequest, rng *rand.Rand) (Outcome, error) {
	s.rankAll(req)
	if cap(s.walk) < len(s.ranked) {
		s.walk = make([]scoredBid, 0, len(s.ranked))
	}
	remaining := s.walk[:0]
	for _, sb := range s.ranked {
		if sb.score < 0 {
			continue
		}
		psi := req.PsiOf(sb.bid.NodeID)
		if psi <= 0 || psi > 1 || math.IsNaN(psi) {
			s.walk = remaining
			return Outcome{}, fmt.Errorf("auction: psi for node %d = %v outside (0, 1]", sb.bid.NodeID, psi)
		}
		remaining = append(remaining, sb)
	}
	s.walk = remaining
	if len(remaining) == 0 {
		return Outcome{Scores: s.scores}, nil
	}
	selected := s.selectedBuf(req.K, len(remaining))
	const maxPasses = 1 << 16
	for pass := 0; len(selected) < req.K && len(remaining) > 0 && pass < maxPasses; pass++ {
		next := remaining[:0]
		for _, sb := range remaining {
			if len(selected) >= req.K {
				next = append(next, sb)
				continue
			}
			if rng.Float64() < req.PsiOf(sb.bid.NodeID) {
				selected = append(selected, sb)
			} else {
				next = append(next, sb)
			}
		}
		remaining = next
	}
	s.selected = selected
	refScore, hasRef := s.refAfter(len(selected))
	return s.outcome(req, selected, refScore, hasRef), nil
}

// selectBudget admits bids in descending score order while the cumulative
// asked payment stays within budget, stopping at K winners. A bid too
// expensive for the remaining budget is skipped (not terminal), so cheaper
// lower-score bids can still fill the set — the greedy knapsack heuristic.
func (s *Selector) selectBudget(req SelectionRequest) (Outcome, error) {
	s.rankAll(req)
	remaining := req.Budget
	selected := s.selectedBuf(req.K, len(req.Bids))
	for _, sb := range s.ranked {
		if len(selected) >= req.K {
			break
		}
		if sb.score < 0 {
			break // sorted: everything after violates aggregator IR too
		}
		if sb.bid.Payment > remaining {
			continue // skip, cheaper bids may still fit
		}
		selected = append(selected, sb)
		remaining -= sb.bid.Payment
	}
	s.selected = selected
	refScore, hasRef := s.refAfter(len(selected))
	out := s.outcome(req, selected, refScore, hasRef)
	// Under second-price payments the raise could exceed the budget; clamp
	// the raises so the total stays within it, preserving per-winner
	// payment >= asked payment.
	if req.Payment == SecondPrice {
		clampToBudget(req.Rule, &out, req.Budget)
	}
	return out, nil
}

// selectedBuf returns the pooled winner-candidate buffer, grown to hold at
// most min(k, n) entries.
func (s *Selector) selectedBuf(k, n int) []scoredBid {
	need := min(k, n)
	if cap(s.selected) < need {
		s.selected = make([]scoredBid, 0, need)
	}
	return s.selected[:0]
}

// outcome applies the payment rule and assembles the Outcome from pooled
// buffers. refScore is the best non-selected score (the second-price
// reference), floored at 0 — the aggregator IR constraint never pays beyond
// s(q).
func (s *Selector) outcome(req SelectionRequest, selected []scoredBid, refScore float64, hasRef bool) Outcome {
	if refScore < 0 {
		refScore = 0
	}
	if cap(s.winners) < len(selected) || s.winners == nil {
		s.winners = make([]Winner, 0, max(len(selected), 1))
	}
	w := s.winners[:0]
	out := Outcome{Scores: s.scores}
	for _, sb := range selected {
		pay := sb.bid.Payment
		if req.Payment == SecondPrice && hasRef {
			// Raise the payment until this winner's score drops to the
			// reference score: p' = s(q) − refScore ≥ p.
			if p2 := req.Rule.Value(sb.bid.Qualities) - refScore; p2 > pay {
				pay = p2
			}
		}
		w = append(w, Winner{Bid: sb.bid, Score: sb.score, Payment: pay})
		out.AggregatorProfit += req.Rule.Value(sb.bid.Qualities) - pay
	}
	s.winners = w
	out.Winners = w
	return out
}

// Select runs one winner determination on a throwaway Selector and returns
// an Outcome that owns all of its memory (winners are deep-cloned, scores
// freshly allocated). Callers on a hot path should hold a Selector instead
// and amortize the buffers.
func Select(req SelectionRequest, rng *rand.Rand) (Outcome, error) {
	var s Selector
	out, err := s.Select(req, rng)
	if err != nil {
		return Outcome{}, err
	}
	return out.Clone(), nil
}

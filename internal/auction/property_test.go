package auction

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fmore/internal/dist"
)

// TestWinnerDeterminationInvariantsProperty checks structural invariants of
// winner determination over randomized bid pools:
//   - at most K winners, never more than the IR-feasible bids;
//   - winners sorted by descending score;
//   - every winner's score >= every non-winner's score;
//   - Scores records one entry per input bid.
func TestWinnerDeterminationInvariantsProperty(t *testing.T) {
	rule, err := NewAdditive(0.7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		k := 1 + int(rawK)%10
		bids := make([]Bid, n)
		for i := range bids {
			bids[i] = Bid{
				NodeID:    i,
				Qualities: []float64{rng.Float64(), rng.Float64()},
				Payment:   rng.Float64() * 1.2, // some scores go negative
			}
		}
		out, err := DetermineWinners(rule, bids, k, FirstPrice, rng)
		if err != nil {
			return false
		}
		if len(out.Scores) != n {
			return false
		}
		if len(out.Winners) > k {
			return false
		}
		feasible := 0
		for _, s := range out.Scores {
			if s >= 0 {
				feasible++
			}
		}
		if want := min(k, feasible); len(out.Winners) != want {
			return false
		}
		for i := 1; i < len(out.Winners); i++ {
			if out.Winners[i].Score > out.Winners[i-1].Score+1e-12 {
				return false
			}
		}
		if len(out.Winners) == 0 {
			return true
		}
		worstWinner := out.Winners[len(out.Winners)-1].Score
		winnerIDs := map[int]bool{}
		for _, w := range out.Winners {
			winnerIDs[w.Bid.NodeID] = true
		}
		for i, s := range out.Scores {
			if !winnerIDs[i] && s > worstWinner+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPsiFMoreWinnersSubsetOfFMoreEligibleProperty: ψ-FMore only ever picks
// IR-feasible bids, and with enough eligible bids it fills exactly K.
func TestPsiFMoreWinnersSubsetOfFMoreEligibleProperty(t *testing.T) {
	rule, err := NewAdditive(1)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		k := 1 + rng.Intn(5)
		psi := 0.2 + 0.8*rng.Float64()
		bids := make([]Bid, n)
		for i := range bids {
			bids[i] = Bid{NodeID: i, Qualities: []float64{rng.Float64()}, Payment: rng.Float64() * 0.5}
		}
		out, err := DetermineWinnersPsi(rule, bids, k, psi, FirstPrice, rng)
		if err != nil {
			return false
		}
		eligible := 0
		for _, s := range out.Scores {
			if s >= 0 {
				eligible++
			}
		}
		if eligible >= k && len(out.Winners) != k {
			return false
		}
		for _, w := range out.Winners {
			if w.Score < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEquilibriumWinRateMatchesExactOrderStatistics simulates many auction
// rounds where every node bids its equilibrium strategy, and compares a
// probe type's empirical win frequency to the two win-probability models.
// The empirical rate must match the exact order-statistic form; the paper's
// Eq (9) (which drops binomial coefficients) is reported for contrast —
// this is the quantitative content of the WinProbModel ablation.
func TestEquilibriumWinRateMatchesExactOrderStatistics(t *testing.T) {
	const n, k = 8, 3
	cfg := analyticCase(t, n, k, SolverQuadrature, WinProbPaper)
	s, err := SolveEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const trials = 30000
	probes := []float64{1.15, 1.4, 1.65}
	for _, probe := range probes {
		probeScore := s.ScoreAt(probe)
		wins := 0
		for trial := 0; trial < trials; trial++ {
			// Count how many of the N−1 rivals outscore the probe.
			better := 0
			for r := 0; r < n-1; r++ {
				if s.ScoreAt(theta.Sample(rng)) > probeScore {
					better++
				}
			}
			if better < k {
				wins++
			}
		}
		empirical := float64(wins) / trials
		// H(u(probe)) = Pr(a rival scores below the probe). Scores strictly
		// decrease in θ, so that event is {rival θ > probe} = 1 − F(probe).
		h := 1 - theta.CDF(probe)
		exact := winProbability(h, n, k, WinProbExact)
		paper := winProbability(h, n, k, WinProbPaper)
		if math.Abs(empirical-exact) > 0.02 {
			t.Errorf("θ=%v: empirical win rate %.4f vs exact order-stat %.4f", probe, empirical, exact)
		}
		t.Logf("θ=%v: empirical %.4f, exact %.4f, paper Eq(9) %.4f (approximation gap %.4f)",
			probe, empirical, exact, paper, math.Abs(paper-empirical))
	}
}

// TestSecondPriceWeaklyDominatesForWinners: under identical bids, no winner
// is paid less by the second-price rule than the first-price rule.
func TestSecondPriceWeaklyDominatesForWinnersProperty(t *testing.T) {
	rule, err := NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		k := 1 + rng.Intn(4)
		bids := make([]Bid, n)
		for i := range bids {
			bids[i] = Bid{NodeID: i, Qualities: []float64{rng.Float64(), rng.Float64()}, Payment: rng.Float64() * 0.3}
		}
		first, err := DetermineWinners(rule, bids, k, FirstPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		second, err := DetermineWinners(rule, bids, k, SecondPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if len(first.Winners) != len(second.Winners) {
			return false
		}
		for i := range first.Winners {
			if second.Winners[i].Payment < first.Winners[i].Payment-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEquilibriumPaymentMonotoneInTheta: under single-crossing costs the
// equilibrium payment falls with the cost type (cheaper nodes both promise
// more quality and extract more rent).
func TestEquilibriumPaymentMonotoneInTheta(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 10, 3, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.ThetaSupport()
	prev := math.Inf(1)
	for i := 0; i <= 32; i++ {
		theta := lo + (hi-lo)*float64(i)/32
		p := s.Payment(theta)
		if p > prev+1e-9 {
			t.Errorf("payment rose with θ at %v: %v > %v", theta, p, prev)
		}
		prev = p
	}
}

// TestScoreDistributionOfWinnersStochasticallyDominates: across random
// populations at equilibrium, winner scores first-order dominate the
// population's (the selection effect behind Fig. 8).
func TestWinnerScoresDominatePopulationScores(t *testing.T) {
	const n, k = 30, 8
	cfg := analyticCase(t, n, k, SolverQuadrature, WinProbPaper)
	s, err := SolveEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var all, winners []float64
	for trial := 0; trial < 200; trial++ {
		bids := make([]Bid, n)
		for i := range bids {
			th := theta.Sample(rng)
			q, p := s.Bid(th)
			bids[i] = Bid{NodeID: i, Qualities: q, Payment: p}
		}
		out, err := DetermineWinners(cfg.Rule, bids, k, FirstPrice, rng)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out.Scores...)
		for _, w := range out.Winners {
			winners = append(winners, w.Score)
		}
	}
	median := func(v []float64) float64 {
		c := append([]float64(nil), v...)
		sort.Float64s(c)
		return c[len(c)/2]
	}
	if median(winners) <= median(all) {
		t.Errorf("winner median score %v should exceed population median %v",
			median(winners), median(all))
	}
}

package auction

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func simpleRule(t *testing.T) ScoringRule {
	t.Helper()
	r, err := NewAdditive(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDetermineWinnersTopK(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.1}, // score 0.8
		{NodeID: 2, Qualities: []float64{0.5}, Payment: 0.1}, // score 0.4
		{NodeID: 3, Qualities: []float64{0.7}, Payment: 0.1}, // score 0.6
		{NodeID: 4, Qualities: []float64{0.3}, Payment: 0.1}, // score 0.2
	}
	out, err := DetermineWinners(rule, bids, 2, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	got := out.WinnerIDs()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("winners = %v, want [1 3]", got)
	}
	if len(out.Scores) != 4 {
		t.Errorf("Scores records %d entries, want 4 (winners and losers)", len(out.Scores))
	}
}

func TestDetermineWinnersFewerBidsThanK(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.1}}
	out, err := DetermineWinners(rule, bids, 5, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 {
		t.Errorf("winners = %d, want 1 (all bids when K exceeds them)", len(out.Winners))
	}
}

func TestDetermineWinnersExcludesNegativeScores(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.1},  // score 0.8
		{NodeID: 2, Qualities: []float64{0.1}, Payment: 0.5},  // score -0.4
		{NodeID: 3, Qualities: []float64{0.2}, Payment: 0.25}, // score -0.05
	}
	out, err := DetermineWinners(rule, bids, 3, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 || out.Winners[0].Bid.NodeID != 1 {
		t.Errorf("winners = %v, want only node 1 (aggregator IR excludes negative scores)", out.WinnerIDs())
	}
	if out.AggregatorProfit < 0 {
		t.Errorf("aggregator profit %v < 0 violates IR", out.AggregatorProfit)
	}
}

func TestDetermineWinnersErrors(t *testing.T) {
	rule := simpleRule(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := DetermineWinners(rule, nil, 2, FirstPrice, rng); !errors.Is(err, ErrNoBids) {
		t.Errorf("no bids: got %v, want ErrNoBids", err)
	}
	if _, err := DetermineWinners(rule, []Bid{{NodeID: 1, Qualities: []float64{1, 2}, Payment: 0}}, 2, FirstPrice, rng); err == nil {
		t.Error("dimension mismatch: want error")
	}
	if _, err := DetermineWinners(rule, []Bid{{NodeID: 1, Qualities: []float64{1}, Payment: math.NaN()}}, 2, FirstPrice, rng); err == nil {
		t.Error("NaN payment: want error")
	}
	if _, err := DetermineWinners(rule, []Bid{{NodeID: 1, Qualities: []float64{1}, Payment: 0}}, 0, FirstPrice, rng); err == nil {
		t.Error("K=0: want error")
	}
}

func TestTieBreakIsRandom(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.5}, Payment: 0.1},
		{NodeID: 2, Qualities: []float64{0.5}, Payment: 0.1},
	}
	saw := map[int]bool{}
	for seed := int64(0); seed < 64 && len(saw) < 2; seed++ {
		out, err := DetermineWinners(rule, bids, 1, FirstPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		saw[out.Winners[0].Bid.NodeID] = true
	}
	if !saw[1] || !saw[2] {
		t.Errorf("coin-flip tie-break never favored both nodes: saw %v", saw)
	}
}

func TestSecondPricePaysAtLeastFirstPrice(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.10}, // score 0.80
		{NodeID: 2, Qualities: []float64{0.8}, Payment: 0.15}, // score 0.65
		{NodeID: 3, Qualities: []float64{0.7}, Payment: 0.20}, // score 0.50
	}
	first, err := DetermineWinners(rule, bids, 2, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	second, err := DetermineWinners(rule, bids, 2, SecondPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Winners {
		if second.Winners[i].Payment < first.Winners[i].Payment-1e-12 {
			t.Errorf("second-price payment %v < first-price %v for node %d",
				second.Winners[i].Payment, first.Winners[i].Payment, first.Winners[i].Bid.NodeID)
		}
	}
	// Winner 1 is paid up to score parity with the 3rd (excluded) bid:
	// p = s(q) − refScore = 0.9 − 0.5 = 0.4.
	if got := second.Winners[0].Payment; math.Abs(got-0.4) > 1e-12 {
		t.Errorf("second-price top payment = %v, want 0.4", got)
	}
	// Winners' selection is identical under either payment rule.
	for i := range first.Winners {
		if first.Winners[i].Bid.NodeID != second.Winners[i].Bid.NodeID {
			t.Error("payment rule changed the winner set")
		}
	}
}

func TestSecondPriceDegeneratesWithoutRunnerUp(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.10},
		{NodeID: 2, Qualities: []float64{0.8}, Payment: 0.15},
	}
	out, err := DetermineWinners(rule, bids, 2, SecondPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range out.Winners {
		if w.Payment != bids[i].Payment && w.Payment != out.Winners[i].Bid.Payment {
			t.Errorf("winner %d payment %v, want asked payment (no reference bid)", i, w.Payment)
		}
	}
}

func TestOutcomeAccessors(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 7, Qualities: []float64{0.9}, Payment: 0.2},
		{NodeID: 9, Qualities: []float64{0.8}, Payment: 0.3},
	}
	out, err := DetermineWinners(rule, bids, 2, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalPayment(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TotalPayment = %v, want 0.5", got)
	}
	wantProfit := (0.9 - 0.2) + (0.8 - 0.3)
	if math.Abs(out.AggregatorProfit-wantProfit) > 1e-12 {
		t.Errorf("AggregatorProfit = %v, want %v", out.AggregatorProfit, wantProfit)
	}
}

func TestWinnerBidsAreDeepCopies(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.2}}
	out, err := DetermineWinners(rule, bids, 1, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	bids[0].Qualities[0] = -99
	if out.Winners[0].Bid.Qualities[0] == -99 {
		t.Error("winner bid aliases caller's quality slice; want deep copy")
	}
}

func TestAuctioneerLifecycle(t *testing.T) {
	rule := simpleRule(t)
	a, err := NewAuctioneer(Config{Rule: rule, K: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Payment != FirstPrice || a.Config().Psi != 1 {
		t.Errorf("defaults not applied: %+v", a.Config())
	}
	ask := a.Ask()
	if ask.K != 1 || ask.Round != 0 {
		t.Errorf("Ask = %+v, want K=1 Round=0", ask)
	}
	if _, err := a.Run([]Bid{{NodeID: 1, Qualities: []float64{0.5}, Payment: 0.1}}); err != nil {
		t.Fatal(err)
	}
	if a.Round() != 1 {
		t.Errorf("Round = %d, want 1", a.Round())
	}
}

func TestAuctioneerConfigValidation(t *testing.T) {
	rule := simpleRule(t)
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil rule", Config{K: 1}},
		{"zero K", Config{Rule: rule, K: 0}},
		{"psi > 1", Config{Rule: rule, K: 1, Psi: 1.5}},
		{"psi negative", Config{Rule: rule, K: 1, Psi: -0.1}},
		{"bad payment", Config{Rule: rule, K: 1, Payment: PaymentRule(99)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewAuctioneer(c.cfg, rng); err == nil {
				t.Errorf("config %+v: want error", c.cfg)
			}
		})
	}
	if _, err := NewAuctioneer(Config{Rule: rule, K: 1}, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

func TestPaymentRuleString(t *testing.T) {
	if FirstPrice.String() != "first-price" || SecondPrice.String() != "second-price" {
		t.Error("PaymentRule.String mismatch")
	}
	if PaymentRule(42).String() == "" {
		t.Error("unknown payment rule should still format")
	}
}

package auction

import (
	"math"
	"math/rand"
	"testing"
)

func TestPsiOneEqualsPlainFMore(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.1},
		{NodeID: 2, Qualities: []float64{0.5}, Payment: 0.1},
		{NodeID: 3, Qualities: []float64{0.7}, Payment: 0.1},
	}
	plain, err := DetermineWinners(rule, bids, 2, FirstPrice, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	psi, err := DetermineWinnersPsi(rule, bids, 2, 1, FirstPrice, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pw, gw := plain.WinnerIDs(), psi.WinnerIDs()
	if len(pw) != len(gw) {
		t.Fatalf("winner counts differ: %v vs %v", pw, gw)
	}
	for i := range pw {
		if pw[i] != gw[i] {
			t.Errorf("ψ=1 winners %v differ from FMore %v", gw, pw)
			break
		}
	}
}

func TestPsiValidation(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{{NodeID: 1, Qualities: []float64{0.5}, Payment: 0.1}}
	rng := rand.New(rand.NewSource(1))
	for _, psi := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := DetermineWinnersPsi(rule, bids, 1, psi, FirstPrice, rng); err == nil {
			t.Errorf("psi=%v: want error", psi)
		}
	}
	if _, err := DetermineWinnersPsi(rule, bids, 0, 0.5, FirstPrice, rng); err == nil {
		t.Error("K=0: want error")
	}
}

func TestPsiAlwaysFillsKWhenEnoughBids(t *testing.T) {
	rule := simpleRule(t)
	bids := make([]Bid, 10)
	for i := range bids {
		bids[i] = Bid{NodeID: i, Qualities: []float64{float64(i+1) / 10}, Payment: 0.01}
	}
	for seed := int64(0); seed < 30; seed++ {
		out, err := DetermineWinnersPsi(rule, bids, 4, 0.3, FirstPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Winners) != 4 {
			t.Fatalf("seed %d: got %d winners, want 4 (repeated passes must fill K)", seed, len(out.Winners))
		}
	}
}

// TestPsiSpreadsSelection: with small ψ, lower-ranked nodes win materially
// more often than under plain FMore (the diversity effect of §III-C).
func TestPsiSpreadsSelection(t *testing.T) {
	rule := simpleRule(t)
	const n, k, trials = 20, 5, 3000
	bids := make([]Bid, n)
	for i := range bids {
		// Node 0 scores highest, node n−1 lowest.
		bids[i] = Bid{NodeID: i, Qualities: []float64{1 - float64(i)/float64(n)}, Payment: 0.01}
	}
	countBottom := func(psi float64) int {
		rng := rand.New(rand.NewSource(11))
		wins := 0
		for trial := 0; trial < trials; trial++ {
			out, err := DetermineWinnersPsi(rule, bids, k, psi, FirstPrice, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range out.WinnerIDs() {
				if id >= n/2 {
					wins++
				}
			}
		}
		return wins
	}
	lowPsi := countBottom(0.2)
	highPsi := countBottom(0.95)
	if lowPsi <= highPsi {
		t.Errorf("bottom-half selections: ψ=0.2 gave %d, ψ=0.95 gave %d; want low ψ to diversify", lowPsi, highPsi)
	}
	if highPsi > trials*k/10 {
		t.Errorf("ψ=0.95 picked bottom half %d times; should be rare", highPsi)
	}
}

// TestProposition2PsiNeutralUnderIdenticalTheta: when every node has the
// same score (identical θ), any node is selected with probability K/N
// regardless of ψ.
func TestProposition2PsiNeutralUnderIdenticalTheta(t *testing.T) {
	rule := simpleRule(t)
	const n, k, trials = 10, 3, 6000
	bids := make([]Bid, n)
	for i := range bids {
		bids[i] = Bid{NodeID: i, Qualities: []float64{0.5}, Payment: 0.1}
	}
	for _, psi := range []float64{0.3, 0.7, 1} {
		rng := rand.New(rand.NewSource(17))
		wins := make([]int, n)
		for trial := 0; trial < trials; trial++ {
			out, err := DetermineWinnersPsi(rule, bids, k, psi, FirstPrice, rng)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range out.WinnerIDs() {
				wins[id]++
			}
		}
		want := float64(k) / float64(n)
		for id, w := range wins {
			got := float64(w) / trials
			if math.Abs(got-want) > 0.03 {
				t.Errorf("ψ=%v node %d win rate %v, want %v (Proposition 2)", psi, id, got, want)
			}
		}
	}
}

func TestSelectionProbabilityFormulas(t *testing.T) {
	// At ψ=1 both formulas certify selection.
	if got := PaperSelectionProbability(10, 3, 1); got != 1 {
		t.Errorf("paper Pr(ψ=1) = %v, want 1", got)
	}
	if got := ExactSelectionProbability(10, 3, 1); got != 1 {
		t.Errorf("exact Pr(ψ=1) = %v, want 1", got)
	}
	// Degenerate inputs.
	if got := PaperSelectionProbability(2, 3, 0.5); got != 0 {
		t.Errorf("paper Pr(N<K) = %v, want 0", got)
	}
	if got := ExactSelectionProbability(2, 3, 0.5); got != 0 {
		t.Errorf("exact Pr(N<K) = %v, want 0", got)
	}
	// The exact form is monotone in ψ and bounded by 1.
	prev := 0.0
	for _, psi := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		p := ExactSelectionProbability(30, 5, psi)
		if p < prev-1e-12 || p > 1 {
			t.Errorf("exact Pr not monotone/bounded at ψ=%v: %v", psi, p)
		}
		prev = p
	}
	// Larger N gives more draws, so the fill probability grows.
	if ExactSelectionProbability(50, 5, 0.3) < ExactSelectionProbability(10, 5, 0.3) {
		t.Error("exact Pr should grow with N")
	}
	// The paper's variant (with C(i+K, i)) upper-bounds the exact
	// negative-binomial form since C(i+K, i) >= C(i+K−1, i).
	for _, psi := range []float64{0.3, 0.6, 0.9} {
		if PaperSelectionProbability(20, 4, psi) < ExactSelectionProbability(20, 4, psi)-1e-12 {
			t.Errorf("paper Pr < exact Pr at ψ=%v", psi)
		}
	}
}

// TestExactSelectionProbabilityMatchesMonteCarlo validates the
// negative-binomial closed form against simulation of a single admission
// pass.
func TestExactSelectionProbabilityMatchesMonteCarlo(t *testing.T) {
	const n, k = 12, 4
	const psi = 0.45
	const trials = 40000
	rng := rand.New(rand.NewSource(23))
	fills := 0
	for trial := 0; trial < trials; trial++ {
		admitted := 0
		for i := 0; i < n && admitted < k; i++ {
			if rng.Float64() < psi {
				admitted++
			}
		}
		if admitted >= k {
			fills++
		}
	}
	want := ExactSelectionProbability(n, k, psi)
	got := float64(fills) / trials
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Monte Carlo fill rate %v vs closed form %v", got, want)
	}
}

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {0, 0, 1}, {3, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := binomialCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-9*math.Max(1, c.want) {
			t.Errorf("C(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestPsiExcludesNegativeScores(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.1}, // score 0.8
		{NodeID: 2, Qualities: []float64{0.1}, Payment: 0.9}, // score -0.8
	}
	for seed := int64(0); seed < 10; seed++ {
		out, err := DetermineWinnersPsi(rule, bids, 2, 0.5, FirstPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range out.WinnerIDs() {
			if id == 2 {
				t.Fatal("ψ-FMore selected an IR-violating bid")
			}
		}
	}
}

func TestPsiAllNegativeScoresYieldsEmptyOutcome(t *testing.T) {
	rule := simpleRule(t)
	bids := []Bid{{NodeID: 1, Qualities: []float64{0.1}, Payment: 0.9}}
	out, err := DetermineWinnersPsi(rule, bids, 1, 0.5, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 0 {
		t.Errorf("got %d winners, want 0", len(out.Winners))
	}
	if len(out.Scores) != 1 {
		t.Errorf("scores should still be reported for analysis, got %d", len(out.Scores))
	}
}

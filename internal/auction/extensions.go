package auction

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the two extensions the paper's conclusion names as
// future work:
//
//	"In this paper, the budget constraint of the aggregator is not
//	 considered, which is left for future work. In addition, whether the
//	 probability ψ should be identical or distinct for each node remains
//	 to be studied."
//
// DetermineWinnersBudget adds a per-round payment budget to winner
// determination; DetermineWinnersPsiVector generalizes ψ-FMore to per-node
// admission probabilities. Both are wrappers over the Select pipeline (see
// select.go) with the same outcomes and rng draw order as the original
// implementations.

// DetermineWinnersBudget runs FMore winner determination under an
// aggregator budget: bids are admitted in descending score order while the
// cumulative payment stays within budget, stopping at K winners. A bid too
// expensive for the remaining budget is skipped (not terminal), so cheaper
// lower-score bids can still fill the set — the greedy knapsack heuristic.
func DetermineWinnersBudget(rule ScoringRule, bids []Bid, k int, budget float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if budget <= 0 || math.IsNaN(budget) {
		return Outcome{}, fmt.Errorf("auction: budget must be positive, got %v", budget)
	}
	return Select(SelectionRequest{Rule: rule, Bids: bids, K: k, Budget: budget, Payment: payment}, rng)
}

// clampToBudget scales down second-price raises (the payment above the
// asked price) uniformly so TotalPayment() <= budget, then recomputes the
// aggregator profit.
func clampToBudget(rule ScoringRule, out *Outcome, budget float64) {
	total := out.TotalPayment()
	if total <= budget {
		return
	}
	asked, raise := 0.0, 0.0
	for _, w := range out.Winners {
		asked += w.Bid.Payment
		raise += w.Payment - w.Bid.Payment
	}
	if raise <= 0 {
		return // nothing to scale; asked payments alone exceed the budget
	}
	scale := (budget - asked) / raise
	if scale < 0 {
		scale = 0
	}
	out.AggregatorProfit = 0
	for i := range out.Winners {
		w := &out.Winners[i]
		w.Payment = w.Bid.Payment + scale*(w.Payment-w.Bid.Payment)
		out.AggregatorProfit += rule.Value(w.Bid.Qualities) - w.Payment
	}
}

// DetermineWinnersPsiVector generalizes ψ-FMore to a distinct admission
// probability per node: psiOf(nodeID) returns that node's ψ in (0, 1].
// Nodes are visited in descending score order and admitted with their own
// probability, with repeated passes until K winners are found or all
// eligible bids are admitted. Uniform psiOf recovers DetermineWinnersPsi.
func DetermineWinnersPsiVector(rule ScoringRule, bids []Bid, k int, psiOf func(nodeID int) float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if psiOf == nil {
		return Outcome{}, fmt.Errorf("auction: psiOf is required")
	}
	return Select(SelectionRequest{Rule: rule, Bids: bids, K: k, PsiOf: psiOf, Payment: payment}, rng)
}

// RankPsi builds a per-node ψ assignment that decays with score rank:
// the r-th ranked node gets psiTop·decay^r (floored at psiFloor). It is one
// concrete answer to the paper's open question of distinct ψ per node —
// strong nodes stay near-deterministic, weak nodes keep a diversity chance.
func RankPsi(rule ScoringRule, bids []Bid, psiTop, decay, psiFloor float64) (func(nodeID int) float64, error) {
	if psiTop <= 0 || psiTop > 1 || decay <= 0 || decay > 1 || psiFloor <= 0 || psiFloor > psiTop {
		return nil, fmt.Errorf("auction: invalid RankPsi parameters top=%v decay=%v floor=%v", psiTop, decay, psiFloor)
	}
	type ranked struct {
		id    int
		score float64
	}
	rs := make([]ranked, 0, len(bids))
	for _, b := range bids {
		s, err := Score(rule, b.Qualities, b.Payment)
		if err != nil {
			return nil, err
		}
		rs = append(rs, ranked{id: b.NodeID, score: s})
	}
	// Insertion sort by descending score (bid pools are small).
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].score > rs[j-1].score; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	psis := make(map[int]float64, len(rs))
	psi := psiTop
	for _, r := range rs {
		psis[r.id] = math.Max(psi, psiFloor)
		psi *= decay
	}
	return func(nodeID int) float64 {
		if p, ok := psis[nodeID]; ok {
			return p
		}
		return psiFloor
	}, nil
}

package auction

import (
	"fmt"
	"math"
	"math/rand"
)

// DetermineWinnersPsi implements ψ-FMore (§III-C): bids are visited in
// descending score order and each is admitted to the winner set with
// probability psi, repeating passes over the remaining candidates until K
// winners are chosen or every eligible bid has been admitted. FMore is the
// special case psi = 1.
//
// Like DetermineWinners, bids with negative scores are excluded by the
// aggregator's individual-rationality constraint. It is a wrapper over the
// Select pipeline with the same outcomes and rng draw order as the original
// implementation; hot paths should hold a Selector instead.
func DetermineWinnersPsi(rule ScoringRule, bids []Bid, k int, psi float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if psi <= 0 || psi > 1 || math.IsNaN(psi) {
		return Outcome{}, fmt.Errorf("auction: psi must be in (0, 1], got %v", psi)
	}
	return Select(SelectionRequest{Rule: rule, Bids: bids, K: k, Psi: psi, Payment: payment}, rng)
}

// DetermineWinnersPsiScored is DetermineWinnersPsi with precomputed scores,
// the ψ-FMore counterpart of DetermineWinnersScored: scores[i] must equal
// Score(rule, bids[i].Qualities, bids[i].Payment) and is copied, never
// retained. The rng draw sequence matches DetermineWinnersPsi exactly.
func DetermineWinnersPsiScored(rule ScoringRule, bids []Bid, scores []float64, k int, psi float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if scores == nil {
		return Outcome{}, fmt.Errorf("auction: DetermineWinnersPsiScored requires a score vector")
	}
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if psi <= 0 || psi > 1 || math.IsNaN(psi) {
		return Outcome{}, fmt.Errorf("auction: psi must be in (0, 1], got %v", psi)
	}
	return Select(SelectionRequest{Rule: rule, Bids: bids, Scores: scores, K: k, Psi: psi, Payment: payment}, rng)
}

// PaperSelectionProbability is the paper's closed form (§III-C) for the
// probability that ψ-FMore fills the winner set:
//
//	Pr(ψ) = Σ_{i=0}^{N−K} C(i+K, i) (1−ψ)^i ψ^K.
//
// It is reproduced verbatim for comparison; see ExactSelectionProbability
// for the standard negative-binomial form.
func PaperSelectionProbability(n, k int, psi float64) float64 {
	if k < 1 || n < k {
		return 0
	}
	if psi >= 1 {
		return 1
	}
	sum := 0.0
	for i := 0; i <= n-k; i++ {
		sum += binomialCoeff(i+k, i) * math.Pow(1-psi, float64(i)) * math.Pow(psi, float64(k))
	}
	return math.Min(sum, 1)
}

// ExactSelectionProbability is the negative-binomial probability that K
// admissions occur within N independent ψ-Bernoulli visits — the exact
// chance that a single pass over N candidates fills the winner set:
//
//	Pr = Σ_{i=0}^{N−K} C(K−1+i, i) ψ^K (1−ψ)^i.
func ExactSelectionProbability(n, k int, psi float64) float64 {
	if k < 1 || n < k {
		return 0
	}
	if psi >= 1 {
		return 1
	}
	sum := 0.0
	for i := 0; i <= n-k; i++ {
		sum += binomialCoeff(k-1+i, i) * math.Pow(psi, float64(k)) * math.Pow(1-psi, float64(i))
	}
	return math.Min(sum, 1)
}

// binomialCoeff computes C(n, k) in floating point via lgamma to avoid
// overflow for the population sizes used in experiments.
func binomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(ln - lk - lnk)
}

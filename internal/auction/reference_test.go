package auction

// This file is a frozen, test-only copy of the pre-refactor full-sort
// winner-determination implementation (sort.SliceStable over the whole
// slate, fresh allocations per call). The equivalence property test in
// select_equiv_test.go replays random slates through both this reference
// and the heap-based Select pipeline and requires identical Outcomes and
// rng draw sequences — the bit-for-bit guarantee the exchange's write-ahead
// log replay (PR 2) depends on. Do not "fix" or modernize this code; its
// whole value is that it stays exactly what the legacy entry points did.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

func refRankWith(rule ScoringRule, bids []Bid, pre []float64, rng *rand.Rand) ([]scoredBid, []float64, error) {
	if len(bids) == 0 {
		return nil, nil, ErrNoBids
	}
	if pre != nil && len(pre) != len(bids) {
		return nil, nil, fmt.Errorf("auction: %d precomputed scores for %d bids", len(pre), len(bids))
	}
	ranked := make([]scoredBid, 0, len(bids))
	scores := make([]float64, len(bids))
	tiebreak := make([]float64, len(bids))
	for i, b := range bids {
		if err := b.Validate(rule.Dims()); err != nil {
			return nil, nil, err
		}
		s := 0.0
		if pre != nil {
			s = pre[i]
		} else {
			var err error
			s, err = Score(rule, b.Qualities, b.Payment)
			if err != nil {
				return nil, nil, err
			}
		}
		scores[i] = s
		tiebreak[i] = rng.Float64()
		ranked = append(ranked, scoredBid{bid: b, score: s, pos: i})
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return tiebreak[ranked[a].pos] > tiebreak[ranked[b].pos]
	})
	return ranked, scores, nil
}

func refDetermineWinners(rule ScoringRule, bids []Bid, pre []float64, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	ranked, scores, err := refRankWith(rule, bids, pre, rng)
	if err != nil {
		return Outcome{}, err
	}
	limit := k
	if limit > len(ranked) {
		limit = len(ranked)
	}
	selected := make([]scoredBid, 0, limit)
	for _, sb := range ranked[:limit] {
		if sb.score < 0 {
			break
		}
		selected = append(selected, sb)
	}
	return refBuildOutcome(rule, ranked, selected, scores, payment)
}

func refBuildOutcome(rule ScoringRule, ranked, selected []scoredBid, scores []float64, payment PaymentRule) (Outcome, error) {
	refScore := 0.0
	hasRef := false
	if len(selected) < len(ranked) {
		refScore = ranked[len(selected)].score
		if refScore < 0 {
			refScore = 0
		}
		hasRef = true
	}

	out := Outcome{
		Winners: make([]Winner, 0, len(selected)),
		Scores:  scores,
	}
	for _, sb := range selected {
		pay := sb.bid.Payment
		if payment == SecondPrice && hasRef {
			if p2 := rule.Value(sb.bid.Qualities) - refScore; p2 > pay {
				pay = p2
			}
		}
		out.Winners = append(out.Winners, Winner{Bid: sb.bid.Clone(), Score: sb.score, Payment: pay})
		out.AggregatorProfit += rule.Value(sb.bid.Qualities) - pay
	}
	return out, nil
}

func refDetermineWinnersPsi(rule ScoringRule, bids []Bid, pre []float64, k int, psi float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if psi <= 0 || psi > 1 || math.IsNaN(psi) {
		return Outcome{}, fmt.Errorf("auction: psi must be in (0, 1], got %v", psi)
	}
	ranked, scores, err := refRankWith(rule, bids, pre, rng)
	if err != nil {
		return Outcome{}, err
	}
	eligible := ranked[:0:0]
	for _, sb := range ranked {
		if sb.score >= 0 {
			eligible = append(eligible, sb)
		}
	}
	if len(eligible) == 0 {
		return Outcome{Scores: scores}, nil
	}

	const maxPasses = 1 << 16
	selected := make([]scoredBid, 0, k)
	remaining := append([]scoredBid(nil), eligible...)
	for pass := 0; len(selected) < k && len(remaining) > 0 && pass < maxPasses; pass++ {
		next := remaining[:0]
		for _, sb := range remaining {
			if len(selected) >= k {
				next = append(next, sb)
				continue
			}
			if psi >= 1 || rng.Float64() < psi {
				selected = append(selected, sb)
			} else {
				next = append(next, sb)
			}
		}
		remaining = next
	}
	return refBuildOutcome(rule, ranked, selected, scores, payment)
}

func refDetermineWinnersBudget(rule ScoringRule, bids []Bid, k int, budget float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if budget <= 0 || math.IsNaN(budget) {
		return Outcome{}, fmt.Errorf("auction: budget must be positive, got %v", budget)
	}
	ranked, scores, err := refRankWith(rule, bids, nil, rng)
	if err != nil {
		return Outcome{}, err
	}
	remaining := budget
	selected := make([]scoredBid, 0, k)
	for _, sb := range ranked {
		if len(selected) >= k {
			break
		}
		if sb.score < 0 {
			break
		}
		if sb.bid.Payment > remaining {
			continue
		}
		selected = append(selected, sb)
		remaining -= sb.bid.Payment
	}
	out, err := refBuildOutcome(rule, ranked, selected, scores, payment)
	if err != nil {
		return Outcome{}, err
	}
	if payment == SecondPrice {
		clampToBudget(rule, &out, budget)
	}
	return out, nil
}

func refDetermineWinnersPsiVector(rule ScoringRule, bids []Bid, k int, psiOf func(nodeID int) float64, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	if psiOf == nil {
		return Outcome{}, fmt.Errorf("auction: psiOf is required")
	}
	ranked, scores, err := refRankWith(rule, bids, nil, rng)
	if err != nil {
		return Outcome{}, err
	}
	eligible := ranked[:0:0]
	for _, sb := range ranked {
		if sb.score < 0 {
			continue
		}
		psi := psiOf(sb.bid.NodeID)
		if psi <= 0 || psi > 1 || math.IsNaN(psi) {
			return Outcome{}, fmt.Errorf("auction: psi for node %d = %v outside (0, 1]", sb.bid.NodeID, psi)
		}
		eligible = append(eligible, sb)
	}
	if len(eligible) == 0 {
		return Outcome{Scores: scores}, nil
	}
	const maxPasses = 1 << 16
	selected := make([]scoredBid, 0, k)
	remaining := append([]scoredBid(nil), eligible...)
	for pass := 0; len(selected) < k && len(remaining) > 0 && pass < maxPasses; pass++ {
		next := remaining[:0]
		for _, sb := range remaining {
			if len(selected) >= k {
				next = append(next, sb)
				continue
			}
			if rng.Float64() < psiOf(sb.bid.NodeID) {
				selected = append(selected, sb)
			} else {
				next = append(next, sb)
			}
		}
		remaining = next
	}
	return refBuildOutcome(rule, ranked, selected, scores, payment)
}

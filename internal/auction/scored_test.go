package auction

import (
	"math/rand"
	"reflect"
	"testing"
)

// scoredFixture builds a rule and a deterministic bid pool with deliberate
// score ties (duplicated quality/payment pairs) so the tiebreak path is
// exercised.
func scoredFixture(t *testing.T, n int) (ScoringRule, []Bid, []float64) {
	t.Helper()
	rule, err := NewAdditive(0.6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	bids := make([]Bid, n)
	for i := range bids {
		q := []float64{rng.Float64(), rng.Float64()}
		p := 0.05 + 0.2*rng.Float64()
		if i%5 == 4 {
			// Exact duplicate of the previous bid: a guaranteed score tie.
			q = append([]float64(nil), bids[i-1].Qualities...)
			p = bids[i-1].Payment
		}
		bids[i] = Bid{NodeID: i, Qualities: q, Payment: p}
	}
	scores := make([]float64, n)
	for i, b := range bids {
		s, err := Score(rule, b.Qualities, b.Payment)
		if err != nil {
			t.Fatal(err)
		}
		scores[i] = s
	}
	return rule, bids, scores
}

func TestDetermineWinnersScoredMatchesInline(t *testing.T) {
	rule, bids, scores := scoredFixture(t, 50)
	for _, payment := range []PaymentRule{FirstPrice, SecondPrice} {
		inline, err := DetermineWinners(rule, bids, 10, payment, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		scored, err := DetermineWinnersScored(rule, bids, scores, 10, payment, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(inline, scored) {
			t.Errorf("%v: scored outcome differs from inline outcome", payment)
		}
	}
}

func TestDetermineWinnersPsiScoredMatchesInline(t *testing.T) {
	rule, bids, scores := scoredFixture(t, 50)
	inline, err := DetermineWinnersPsi(rule, bids, 10, 0.7, FirstPrice, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	scored, err := DetermineWinnersPsiScored(rule, bids, scores, 10, 0.7, FirstPrice, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inline, scored) {
		t.Error("psi scored outcome differs from inline outcome")
	}
}

func TestRunScoredMatchesRun(t *testing.T) {
	rule, bids, scores := scoredFixture(t, 40)
	for _, psi := range []float64{1, 0.8} {
		a1, err := NewAuctioneer(Config{Rule: rule, K: 8, Psi: psi}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		a2, err := NewAuctioneer(Config{Rule: rule, K: 8, Psi: psi}, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			o1, err := a1.Run(bids)
			if err != nil {
				t.Fatal(err)
			}
			o2, err := a2.RunScored(bids, scores)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(o1, o2) {
				t.Fatalf("psi=%v round %d: RunScored diverged from Run", psi, round)
			}
		}
		if a1.Round() != a2.Round() {
			t.Errorf("round counters diverged: %d vs %d", a1.Round(), a2.Round())
		}
	}
}

func TestDetermineWinnersScoredValidation(t *testing.T) {
	rule, bids, scores := scoredFixture(t, 10)
	if _, err := DetermineWinnersScored(rule, bids, nil, 3, FirstPrice, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil scores: expected error")
	}
	if _, err := DetermineWinnersScored(rule, bids, scores[:5], 3, FirstPrice, rand.New(rand.NewSource(1))); err == nil {
		t.Error("short scores: expected error")
	}
	// The scores slice must not be retained: mutating it after the call
	// must not affect the outcome's recorded scores.
	out, err := DetermineWinnersScored(rule, bids, scores, 3, FirstPrice, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), out.Scores...)
	for i := range scores {
		scores[i] = -1
	}
	if !reflect.DeepEqual(before, out.Scores) {
		t.Error("Outcome.Scores aliases the caller's score buffer")
	}
}

package auction

import (
	"errors"
	"fmt"
	"math"

	"fmore/internal/dist"
	"fmore/internal/numeric"
)

// SolverKind selects the numerical method used to evaluate the equilibrium
// payment pˢ(θ) of Theorem 1.
type SolverKind int

const (
	// SolverQuadrature evaluates pˢ(θ) = c + ∫ g(x)dx / g(u) directly by
	// trapezoid quadrature over the score grid. It is the most robust method
	// and the default.
	SolverQuadrature SolverKind = iota + 1
	// SolverEuler solves the first-order ODE (Eq 12) for the bid margin with
	// the explicit Euler method, the method named in the paper
	// ("Node i obtains its p using Euler's method", Algorithm 1 line 7).
	SolverEuler
	// SolverRK4 solves the same ODE with classical Runge–Kutta, the paper's
	// suggested higher-order alternative.
	SolverRK4
)

// String implements fmt.Stringer.
func (s SolverKind) String() string {
	switch s {
	case SolverQuadrature:
		return "quadrature"
	case SolverEuler:
		return "euler"
	case SolverRK4:
		return "rk4"
	default:
		return fmt.Sprintf("SolverKind(%d)", int(s))
	}
}

// WinProbModel selects the winning-probability expression g(u).
type WinProbModel int

const (
	// WinProbPaper is Eq (9) of the paper:
	// g(u) = Σ_{i=1..K} [1−H(u)]^{i−1} [H(u)]^{N−i}.
	// For K = 1 it reduces to H^{N−1} (Che's Theorem 2) and for K = 2 it
	// telescopes to H^{N−2} (Proposition 1).
	WinProbPaper WinProbModel = iota + 1
	// WinProbExact is the exact order-statistic probability that at most
	// K−1 of the N−1 rivals outscore u:
	// g(u) = Σ_{i=0..K−1} C(N−1, i) (1−H)^i H^{N−1−i}.
	// The paper's Eq (9) omits the binomial coefficients; this model is the
	// combinatorially exact alternative, offered as an ablation.
	WinProbExact
)

// String implements fmt.Stringer.
func (w WinProbModel) String() string {
	switch w {
	case WinProbPaper:
		return "paper-eq9"
	case WinProbExact:
		return "exact-orderstat"
	default:
		return fmt.Sprintf("WinProbModel(%d)", int(w))
	}
}

// EquilibriumConfig parameterizes SolveEquilibrium. Rule, Cost, Theta, N, K
// and the quality box are required; grid sizes default sensibly when zero.
type EquilibriumConfig struct {
	// Rule is the broadcast scoring rule s(·).
	Rule ScoringRule
	// Cost is the bidder cost family c(q, θ).
	Cost CostFunction
	// Theta is the common-knowledge distribution F of the private parameter.
	Theta dist.Distribution
	// N is the total number of bidders in the game.
	N int
	// K is the number of winners (1 <= K < N).
	K int
	// QLo, QHi bound the feasible quality box per dimension.
	QLo, QHi []float64

	// ThetaGridPoints is the resolution of the θ grid (default 129).
	ThetaGridPoints int
	// QualityGridPoints is the per-axis resolution of the argmax search
	// (default 96).
	QualityGridPoints int
	// AscentSweeps bounds coordinate-ascent sweeps for multi-dimensional
	// quality (default 8).
	AscentSweeps int
	// Solver selects the payment method (default SolverQuadrature).
	Solver SolverKind
	// WinProb selects the winning-probability model (default WinProbPaper).
	WinProb WinProbModel
}

func (c *EquilibriumConfig) setDefaults() {
	if c.ThetaGridPoints == 0 {
		c.ThetaGridPoints = 129
	}
	if c.QualityGridPoints == 0 {
		c.QualityGridPoints = 96
	}
	if c.AscentSweeps == 0 {
		c.AscentSweeps = 8
	}
	if c.Solver == 0 {
		c.Solver = SolverQuadrature
	}
	if c.WinProb == 0 {
		c.WinProb = WinProbPaper
	}
}

func (c *EquilibriumConfig) validate() error {
	if c.Rule == nil || c.Cost == nil || c.Theta == nil {
		return errors.New("auction: Rule, Cost and Theta are required")
	}
	if c.Rule.Dims() != c.Cost.Dims() {
		return fmt.Errorf("%w: rule %d vs cost %d", ErrDimensionMismatch, c.Rule.Dims(), c.Cost.Dims())
	}
	if c.N < 2 {
		return fmt.Errorf("auction: need N >= 2 bidders, got %d", c.N)
	}
	if c.K < 1 || c.K >= c.N {
		return fmt.Errorf("auction: need 1 <= K < N, got K=%d N=%d", c.K, c.N)
	}
	if len(c.QLo) != c.Rule.Dims() || len(c.QHi) != c.Rule.Dims() {
		return fmt.Errorf("%w: quality box %d/%d vs rule %d", ErrDimensionMismatch, len(c.QLo), len(c.QHi), c.Rule.Dims())
	}
	for i := range c.QLo {
		if !(c.QLo[i] <= c.QHi[i]) {
			return fmt.Errorf("auction: inverted quality bound dim %d: [%v, %v]", i, c.QLo[i], c.QHi[i])
		}
	}
	if c.ThetaGridPoints < 8 {
		return fmt.Errorf("auction: ThetaGridPoints must be >= 8, got %d", c.ThetaGridPoints)
	}
	return nil
}

// Validate applies the grid-size defaults and checks the configuration
// without solving it. It exists for services that accept a game description
// from clients and want to fail fast (see the exchange's strategy endpoint);
// SolveEquilibrium performs the same checks itself.
func (c *EquilibriumConfig) Validate() error {
	c.setDefaults()
	return c.validate()
}

// Strategy is the precomputed Nash equilibrium strategy tne(θ) =
// (qˢ(θ), pˢ(θ)) of Theorem 1 for one auction game (fixed rule, cost family,
// F, N and K). All evaluation methods interpolate over the solved θ grid.
type Strategy struct {
	cfg EquilibriumConfig

	thetas    []float64   // ascending θ grid
	qualities [][]float64 // qˢ per grid point
	costs     []float64   // c(qˢ(θ), θ)
	scores    []float64   // u(θ) = s(qˢ) − c, strictly decreasing
	payments  []float64   // pˢ(θ)

	scoreOf *numeric.MonotoneInterp // θ → u (decreasing)
}

// SolveEquilibrium computes the unique symmetric Nash equilibrium strategy
// of the first-price K-winner auction (Theorem 1):
//
//	qˢ(θ) = argmax_q s(q) − c(q, θ)            (Che's Theorem 1)
//	pˢ(θ) = c(qˢ, θ) + ∫₀ᵘ g(x)dx / g(u)       (Eq 8)
//	g(u)  = Σ_{i=1..K} [1−H(u)]^{i−1} H(u)^{N−i}  (Eq 9)
//	u(θ)  = s(qˢ(θ)) − c(qˢ(θ), θ)             (Eq 10)
//
// with H(x) = 1 − F(X⁻¹(x)) obtained by inverting the score map X(θ) = u(θ)
// via the Envelope theorem.
func SolveEquilibrium(cfg EquilibriumConfig) (*Strategy, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	thetaLo, thetaHi := cfg.Theta.Support()
	thetas := numeric.Linspace(thetaLo, thetaHi, cfg.ThetaGridPoints)

	s := &Strategy{
		cfg:       cfg,
		thetas:    thetas,
		qualities: make([][]float64, len(thetas)),
		costs:     make([]float64, len(thetas)),
		scores:    make([]float64, len(thetas)),
		payments:  make([]float64, len(thetas)),
	}

	// Stage 1: per-θ quality choice (Che's Theorem 1 / Proposition 3 —
	// quality separates from payment and maximizes s − c pointwise).
	for i, theta := range thetas {
		q, u, err := maximizeQuality(cfg, theta)
		if err != nil {
			return nil, fmt.Errorf("auction: quality argmax at θ=%v: %w", theta, err)
		}
		s.qualities[i] = q
		s.costs[i] = cfg.Cost.Cost(q, theta)
		s.scores[i] = u
	}

	// Stage 2: enforce strict monotonicity of u(θ). The Envelope theorem
	// gives du/dθ = −c_θ < 0 under single crossing; numerical argmax noise
	// can produce microscopic violations which we shave off.
	enforceStrictlyDecreasing(s.scores)

	interp, err := numeric.NewMonotoneInterp(s.thetas, s.scores)
	if err != nil {
		return nil, fmt.Errorf("auction: score map u(θ) is not invertible: %w", err)
	}
	s.scoreOf = interp

	// Stage 3: payments.
	if err := s.solvePayments(); err != nil {
		return nil, err
	}
	return s, nil
}

// maximizeQuality solves argmax_q s(q) − c(q, θ) over the quality box.
func maximizeQuality(cfg EquilibriumConfig, theta float64) ([]float64, float64, error) {
	objective := func(q []float64) float64 {
		return cfg.Rule.Value(q) - cfg.Cost.Cost(q, theta)
	}
	if cfg.Rule.Dims() == 1 {
		x, fx := numeric.GridMax(func(v float64) float64 {
			return objective([]float64{v})
		}, cfg.QLo[0], cfg.QHi[0], cfg.QualityGridPoints)
		return []float64{x}, fx, nil
	}
	return numeric.CoordinateAscentMax(objective, cfg.QLo, cfg.QHi, cfg.AscentSweeps, cfg.QualityGridPoints)
}

// enforceStrictlyDecreasing shaves numerical ties so scores[i] <
// scores[i-1] strictly, preserving the envelope-theorem monotonicity.
func enforceStrictlyDecreasing(scores []float64) {
	if len(scores) == 0 {
		return
	}
	scale := math.Max(1, math.Abs(scores[0]))
	minSep := scale * 1e-12
	for i := 1; i < len(scores); i++ {
		if scores[i] >= scores[i-1]-minSep {
			scores[i] = scores[i-1] - minSep
		}
	}
}

// hOf evaluates H(x) = 1 − F(X⁻¹(x)): the probability that a rival's
// equilibrium score falls below x.
func (s *Strategy) hOf(x float64) float64 {
	umin, umax := s.scoreOf.Range()
	switch {
	case x <= umin:
		return 0
	case x >= umax:
		return 1
	}
	theta := s.scoreOf.Inverse(x)
	return 1 - s.cfg.Theta.CDF(theta)
}

// gOf evaluates the winning probability g at score u under the configured
// model.
func (s *Strategy) gOf(u float64) float64 {
	h := s.hOf(u)
	return winProbability(h, s.cfg.N, s.cfg.K, s.cfg.WinProb)
}

// winProbability evaluates g given H(u) = h.
func winProbability(h float64, n, k int, model WinProbModel) float64 {
	if h <= 0 {
		return 0
	}
	if h >= 1 {
		return 1
	}
	switch model {
	case WinProbExact:
		// Σ_{i=0..K−1} C(N−1, i) (1−h)^i h^{N−1−i}
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += binomialCoeff(n-1, i) * math.Pow(1-h, float64(i)) * math.Pow(h, float64(n-1-i))
		}
		return math.Min(sum, 1)
	default:
		// Paper Eq (9): Σ_{i=1..K} (1−h)^{i−1} h^{N−i}
		sum := 0.0
		for i := 1; i <= k; i++ {
			sum += math.Pow(1-h, float64(i-1)) * math.Pow(h, float64(n-i))
		}
		return math.Min(sum, 1)
	}
}

// solvePayments fills s.payments for every θ grid point using the configured
// solver.
func (s *Strategy) solvePayments() error {
	n := len(s.thetas)
	// Ascending score grid: vs[j] = u(θ_{n−1−j}).
	vs := make([]float64, n)
	gs := make([]float64, n)
	for j := 0; j < n; j++ {
		vs[j] = s.scores[n-1-j]
		gs[j] = s.gOf(vs[j])
	}

	// Cumulative ∫ g over the ascending score grid (trapezoid), refined with
	// mid-point subdivision for accuracy on coarse grids.
	cum := make([]float64, n)
	for j := 1; j < n; j++ {
		a, b := vs[j-1], vs[j]
		mid := (a + b) / 2
		gm := s.gOf(mid)
		// Simpson on the segment.
		cum[j] = cum[j-1] + (b-a)/6*(gs[j-1]+4*gm+gs[j])
	}

	margin := make([]float64, n) // pˢ − c as a function of ascending score index
	switch s.cfg.Solver {
	case SolverEuler, SolverRK4:
		s.solveMarginODE(vs, gs, cum, margin)
	default:
		for j := 0; j < n; j++ {
			if gs[j] <= 0 {
				margin[j] = 0 // L'Hôpital limit of ∫g/g at the lowest score
				continue
			}
			margin[j] = cum[j] / gs[j]
		}
	}

	for i := 0; i < n; i++ {
		m := margin[n-1-i]
		if m < 0 {
			m = 0 // individual rationality: never bid below cost
		}
		s.payments[i] = s.costs[i] + m
	}
	return nil
}

// solveMarginODE integrates the bid-margin ODE m'(u) = 1 − m(u)·φ(u) with
// φ = g'/g (the first-order linear ODE of Eq 12 rewritten for the margin
// m = u − b(u) = pˢ − c) across the ascending score grid vs. The origin
// u = u_min is a removable singularity (g(u_min) = 0); the first segment is
// initialized from the quadrature limit before the ODE takes over.
func (s *Strategy) solveMarginODE(vs, gs, cum, margin []float64) {
	n := len(vs)
	margin[0] = 0
	// Initialize past the singular origin with the quadrature value.
	if n > 1 {
		if gs[1] > 0 {
			margin[1] = cum[1] / gs[1]
		}
	}
	phi := func(u float64) float64 {
		g := s.gOf(u)
		if g < 1e-14 {
			return 0 // treated by the quadrature bootstrap below u₁
		}
		h := (vs[n-1] - vs[0]) * 1e-6
		gp := (s.gOf(u+h) - s.gOf(u-h)) / (2 * h)
		return gp / g
	}
	rhs := func(u, m float64) float64 { return 1 - m*phi(u) }
	const stepsPerSegment = 24
	for j := 2; j < n; j++ {
		if s.cfg.Solver == SolverRK4 {
			margin[j] = numeric.RK4Solve(rhs, vs[j-1], margin[j-1], vs[j], stepsPerSegment)
		} else {
			margin[j] = numeric.EulerSolve(rhs, vs[j-1], margin[j-1], vs[j], stepsPerSegment*4)
		}
		if margin[j] < 0 {
			margin[j] = 0
		}
	}
}

// Bid returns the equilibrium bid (qˢ(θ), pˢ(θ)) for a node of type theta,
// interpolated over the solved grid. theta is clamped to the support.
func (s *Strategy) Bid(theta float64) ([]float64, float64) {
	return s.Quality(theta), s.Payment(theta)
}

// Quality returns qˢ(θ) per Che's Theorem 1.
func (s *Strategy) Quality(theta float64) []float64 {
	i, t := s.locate(theta)
	q := make([]float64, len(s.qualities[i]))
	for d := range q {
		q[d] = s.qualities[i][d] + t*(s.qualities[i+1][d]-s.qualities[i][d])
	}
	return q
}

// Payment returns pˢ(θ) per Eq (8).
func (s *Strategy) Payment(theta float64) float64 {
	i, t := s.locate(theta)
	return s.payments[i] + t*(s.payments[i+1]-s.payments[i])
}

// ScoreAt returns the equilibrium score u(θ) = s(qˢ(θ)) − c(qˢ(θ), θ).
func (s *Strategy) ScoreAt(theta float64) float64 {
	return s.scoreOf.At(theta)
}

// Cost returns c(qˢ(θ), θ).
func (s *Strategy) Cost(theta float64) float64 {
	i, t := s.locate(theta)
	return s.costs[i] + t*(s.costs[i+1]-s.costs[i])
}

// WinProbability returns g(u(θ)), the equilibrium probability of being among
// the K winners.
func (s *Strategy) WinProbability(theta float64) float64 {
	return s.gOf(s.ScoreAt(theta))
}

// ExpectedProfit returns π(θ) = (pˢ − c)·g(u(θ)) (Eq 11 at equilibrium).
func (s *Strategy) ExpectedProfit(theta float64) float64 {
	return (s.Payment(theta) - s.Cost(theta)) * s.WinProbability(theta)
}

// Config returns the configuration the strategy was solved under.
func (s *Strategy) Config() EquilibriumConfig { return s.cfg }

// ThetaSupport returns the support of the solved θ distribution.
func (s *Strategy) ThetaSupport() (lo, hi float64) { return s.cfg.Theta.Support() }

// StrategyPoint is one sampled point of the equilibrium bid curve tne(θ).
// The JSON tags serve the exchange's strategy endpoint, which ships the
// curve to edge clients so they can interpolate their bid without running
// the solver.
type StrategyPoint struct {
	Theta     float64   `json:"theta"`
	Qualities []float64 `json:"qualities"`
	Payment   float64   `json:"payment"`
	Score     float64   `json:"score"`
}

// SampleCurve returns n evenly spaced samples of the equilibrium strategy
// over the θ support, endpoints included. n below 2 is raised to 2. Linear
// interpolation between adjacent samples reproduces Bid to the sampling
// resolution, which is how remote clients are expected to evaluate it.
func (s *Strategy) SampleCurve(n int) []StrategyPoint {
	if n < 2 {
		n = 2
	}
	lo, hi := s.ThetaSupport()
	pts := make([]StrategyPoint, n)
	for i := range pts {
		theta := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = StrategyPoint{
			Theta:     theta,
			Qualities: s.Quality(theta),
			Payment:   s.Payment(theta),
			Score:     s.ScoreAt(theta),
		}
	}
	return pts
}

// locate finds the grid segment containing theta and the interpolation
// fraction within it, clamping to the support.
func (s *Strategy) locate(theta float64) (int, float64) {
	n := len(s.thetas)
	switch {
	case theta <= s.thetas[0]:
		return 0, 0
	case theta >= s.thetas[n-1]:
		return n - 2, 1
	}
	lo, hi := 0, n-2
	for lo < hi {
		mid := (lo + hi) / 2
		if s.thetas[mid+1] <= theta {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t := (theta - s.thetas[lo]) / (s.thetas[lo+1] - s.thetas[lo])
	return lo, t
}

package auction

import (
	"math/rand"
	"testing"

	"fmore/internal/dist"
)

func benchEquilibriumConfig(b *testing.B, n, k int) EquilibriumConfig {
	b.Helper()
	rule, err := NewCobbDouglas(25, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	cost, err := NewLinearCost(0.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	return EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: theta,
		N: n, K: k,
		QLo: []float64{0, 0}, QHi: []float64{1, 1},
	}
}

// BenchmarkSolveEquilibrium measures the cost of the paper's "linear time"
// strategy computation at the simulator's N=100, K=20.
func BenchmarkSolveEquilibrium(b *testing.B) {
	cfg := benchEquilibriumConfig(b, 100, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEquilibrium(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrategyBid measures one node's per-round bid evaluation — the
// hot path of Algorithm 1 line 6-7 once the strategy is precomputed.
func BenchmarkStrategyBid(b *testing.B) {
	s, err := SolveEquilibrium(benchEquilibriumConfig(b, 100, 20))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	thetas := make([]float64, 1024)
	for i := range thetas {
		thetas[i] = 1 + rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Bid(thetas[i%len(thetas)])
	}
}

// BenchmarkDetermineWinners measures the aggregator's sort-and-select at the
// paper's population size.
func BenchmarkDetermineWinners(b *testing.B) {
	rule, err := NewCobbDouglas(25, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bids := make([]Bid, 100)
	for i := range bids {
		bids[i] = Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   rng.Float64(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetermineWinners(rule, bids, 20, FirstPrice, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetermineWinnersPsi measures the ψ-FMore admission walk.
func BenchmarkDetermineWinnersPsi(b *testing.B) {
	rule, err := NewCobbDouglas(25, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	bids := make([]Bid, 100)
	for i := range bids {
		bids[i] = Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   rng.Float64(),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetermineWinnersPsi(rule, bids, 20, 0.6, FirstPrice, rng); err != nil {
			b.Fatal(err)
		}
	}
}

package auction

// OutcomeBuffer is a reusable backing store for one retained Outcome: the
// winner records, a flat backing array for every winner's quality vector,
// and the score vector all live in buffer-owned memory that CloneInto
// refills round after round, so a long-lived caller (one exchange job, one
// cluster server) can retain outcomes without per-round allocation.
//
// Ownership rules:
//
//   - An Outcome built by CloneInto aliases the buffer. It stays immutable
//     until the buffer's next CloneInto, which overwrites it in place.
//   - Recycle advances the buffer's generation. Holders that tagged an
//     Outcome with Generation at build time can verify the tag before
//     trusting the data; a mismatch means the buffer moved on.
//   - To keep an Outcome past the buffer's reuse, deep-copy it with
//     Outcome.Clone.
//
// The zero value is ready to use (the first CloneInto sizes it).
type OutcomeBuffer struct {
	gen     uint64
	winners []Winner
	quals   []float64
	scores  []float64
}

// Generation returns the buffer's recycle count. An Outcome built in this
// buffer is valid only while the generation it was built under is current.
func (b *OutcomeBuffer) Generation() uint64 { return b.gen }

// Recycle invalidates every Outcome previously built in the buffer and
// readies it for reuse. The backing memory is retained, so the next
// CloneInto of a similarly sized outcome allocates nothing.
func (b *OutcomeBuffer) Recycle() { b.gen++ }

// CloneInto deep-copies o into b's backing memory and returns an Outcome
// aliasing the buffer: equivalent to Clone, but allocation-free once the
// buffer is warm. Growing the buffer allocates fresh backing arrays and
// leaves old ones to any prior holders, so growth never corrupts an
// already-issued Outcome — only Recycle (or the next CloneInto) retires
// one. Nil-ness of Winners and Scores is preserved, so a CloneInto result
// is reflect.DeepEqual to a Clone of the same outcome.
func (o Outcome) CloneInto(b *OutcomeBuffer) Outcome {
	c := o
	if o.Winners != nil {
		need := 0
		for i := range o.Winners {
			need += len(o.Winners[i].Bid.Qualities)
		}
		if cap(b.quals) < need {
			b.quals = make([]float64, 0, need)
		}
		quals := b.quals[:0]
		if cap(b.winners) < len(o.Winners) {
			b.winners = make([]Winner, len(o.Winners))
		}
		ws := b.winners[:len(o.Winners)]
		for i, w := range o.Winners {
			if w.Bid.Qualities != nil {
				start := len(quals)
				quals = append(quals, w.Bid.Qualities...)
				w.Bid.Qualities = quals[start:len(quals):len(quals)]
			}
			ws[i] = w
		}
		b.quals = quals
		c.Winners = ws
	}
	if o.Scores != nil {
		if cap(b.scores) < len(o.Scores) {
			b.scores = make([]float64, len(o.Scores))
		}
		c.Scores = b.scores[:len(o.Scores)]
		copy(c.Scores, o.Scores)
	}
	return c
}

package auction

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdditiveRule(t *testing.T) {
	r, err := NewAdditive(0.4, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Value(1,1,1) = %v, want 1", got)
	}
	if got := r.Value([]float64{2, 0, 0}); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Value(2,0,0) = %v, want 0.8", got)
	}
	if r.Dims() != 3 {
		t.Errorf("Dims = %d, want 3", r.Dims())
	}
}

func TestLeontiefRule(t *testing.T) {
	r, err := NewLeontief(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value([]float64{0.75, 0.8421}); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("Value = %v, want 0.375 (min of 0.375, 0.42105)", got)
	}
}

func TestCobbDouglasRule(t *testing.T) {
	// The paper simulator's rule: s(q1, q2) = 25·q1·q2.
	r, err := NewCobbDouglas(25, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value([]float64{0.5, 0.8}); math.Abs(got-10) > 1e-12 {
		t.Errorf("Value = %v, want 10", got)
	}
	// Negative qualities clamp to zero rather than going complex.
	if got := r.Value([]float64{-1, 0.8}); got != 0 {
		t.Errorf("Value with negative quality = %v, want 0", got)
	}
}

func TestRuleConstructorErrors(t *testing.T) {
	if _, err := NewAdditive(); err == nil {
		t.Error("empty additive: want error")
	}
	if _, err := NewAdditive(1, -1); err == nil {
		t.Error("negative coefficient: want error")
	}
	if _, err := NewLeontief(0); err == nil {
		t.Error("zero coefficient: want error")
	}
	if _, err := NewCobbDouglas(-1, 1); err == nil {
		t.Error("negative scale: want error")
	}
	if _, err := NewCobbDouglas(1, math.NaN()); err == nil {
		t.Error("NaN exponent: want error")
	}
}

func TestScoreQuasiLinear(t *testing.T) {
	r, err := NewAdditive(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Score(r, []float64{0.3, 0.4}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-12 {
		t.Errorf("Score = %v, want 0.5", s)
	}
	if _, err := Score(r, []float64{0.3}, 0.2); err == nil {
		t.Error("dimension mismatch: want error")
	}
	if _, err := Score(r, []float64{math.Inf(1), 0}, 0.2); err == nil {
		t.Error("infinite quality: want error")
	}
}

func TestNormalizedRule(t *testing.T) {
	inner, err := NewLeontief(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewNormalized(inner, []float64{1000, 5}, []float64{5000, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Node A of the walk-through: (4000, 85Mb) -> normalized (0.75, 0.8421).
	got := r.Value([]float64{4000, 85})
	if math.Abs(got-0.375) > 1e-4 {
		t.Errorf("normalized Value = %v, want 0.375", got)
	}
	if _, err := NewNormalized(inner, []float64{0}, []float64{1, 2}); err == nil {
		t.Error("range dims mismatch: want error")
	}
	if _, err := NewNormalized(inner, []float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("empty range: want error")
	}
}

// TestWalkThroughExample reproduces the five-node example of §III-B
// (Fig. 3) exactly: both rounds of bids, the published score table, and the
// winner sets {A, D, E} then {A, C, E}.
func TestWalkThroughExample(t *testing.T) {
	inner, err := NewLeontief(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := NewNormalized(inner, []float64{1000, 5}, []float64{5000, 100})
	if err != nil {
		t.Fatal(err)
	}

	// Node IDs: A=0, B=1, C=2, D=3, E=4.
	round1 := []Bid{
		{NodeID: 0, Qualities: []float64{4000, 85}, Payment: 0.20},
		{NodeID: 1, Qualities: []float64{3000, 35}, Payment: 0.10},
		{NodeID: 2, Qualities: []float64{3500, 75}, Payment: 0.18},
		{NodeID: 3, Qualities: []float64{5000, 85}, Payment: 0.20},
		{NodeID: 4, Qualities: []float64{5000, 100}, Payment: 0.20},
	}
	wantScores1 := []float64{0.175, 0.0579, 0.1325, 0.2211, 0.300}

	rng := rand.New(rand.NewSource(1))
	out, err := DetermineWinners(rule, round1, 3, FirstPrice, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantScores1 {
		if math.Abs(out.Scores[i]-want) > 5e-4 {
			t.Errorf("round 1 score[%d] = %.4f, want %.4f", i, out.Scores[i], want)
		}
	}
	wantWinners1 := []int{4, 3, 0} // E, D, A in descending score order
	gotWinners1 := out.WinnerIDs()
	for i := range wantWinners1 {
		if gotWinners1[i] != wantWinners1[i] {
			t.Errorf("round 1 winners = %v, want %v", gotWinners1, wantWinners1)
			break
		}
	}
	// First-price payments equal the asked payments (the narrative text of
	// §III-B quotes the scores here; Fig. 3's p column shows 0.20 each).
	for _, w := range out.Winners {
		if w.Payment != w.Bid.Payment {
			t.Errorf("first-price payment %v != asked %v", w.Payment, w.Bid.Payment)
		}
	}

	round2 := []Bid{
		{NodeID: 0, Qualities: []float64{4000, 85}, Payment: 0.16},
		{NodeID: 1, Qualities: []float64{3500, 45}, Payment: 0.10},
		{NodeID: 2, Qualities: []float64{4000, 80}, Payment: 0.15},
		{NodeID: 3, Qualities: []float64{4000, 80}, Payment: 0.20},
		{NodeID: 4, Qualities: []float64{5000, 100}, Payment: 0.30},
	}
	wantScores2 := []float64{0.215, 0.1105, 0.225, 0.175, 0.200}
	out2, err := DetermineWinners(rule, round2, 3, FirstPrice, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantScores2 {
		if math.Abs(out2.Scores[i]-want) > 5e-4 {
			t.Errorf("round 2 score[%d] = %.4f, want %.4f", i, out2.Scores[i], want)
		}
	}
	wantWinners2 := []int{2, 0, 4} // C, A, E
	gotWinners2 := out2.WinnerIDs()
	for i := range wantWinners2 {
		if gotWinners2[i] != wantWinners2[i] {
			t.Errorf("round 2 winners = %v, want %v", gotWinners2, wantWinners2)
			break
		}
	}
	// Round 2 first-price payments from the paper: 0.16, 0.15, 0.3.
	wantPay := map[int]float64{0: 0.16, 2: 0.15, 4: 0.30}
	for _, w := range out2.Winners {
		if want := wantPay[w.Bid.NodeID]; math.Abs(w.Payment-want) > 1e-12 {
			t.Errorf("round 2 payment for node %d = %v, want %v", w.Bid.NodeID, w.Payment, want)
		}
	}
}

package auction

import (
	"errors"
	"fmt"
	"math"
)

// Proposition 4 of the paper: with the general Cobb–Douglas utility
// s(q) = Π qᵢ^αᵢ (Σαᵢ = 1) and the additive cost c(q) = θ·Σ β̃ᵢqᵢ (Σβ̃ᵢ = 1),
// the aggregator's expected-utility-optimal resource mix satisfies
//
//	q*ᵢ / q*ⱼ = (αᵢ/αⱼ) · (β̃ⱼ/β̃ᵢ),
//
// so by tuning α it can steer the proportion of resources it procures.
// This file exposes that guidance in three forms: the optimal mix itself,
// the budget-constrained optimal quantities, and the inverse problem of
// calibrating α to hit a desired mix.

// ErrCoefficients reports invalid guidance coefficients.
var ErrCoefficients = errors.New("auction: invalid guidance coefficients")

// OptimalQuantities solves the aggregator's expected-utility problem of
// Proposition 4: maximize Π qᵢ^αᵢ subject to θ·Σ β̃ᵢqᵢ = budget. The
// Lagrangian solution spends the budget share αᵢ on resource i:
//
//	q*ᵢ = αᵢ · budget / (θ · β̃ᵢ)   (after normalizing Σαᵢ = 1).
func OptimalQuantities(alpha, betaTilde []float64, theta, budget float64) ([]float64, error) {
	if err := checkGuidanceInputs(alpha, betaTilde); err != nil {
		return nil, err
	}
	if theta <= 0 || budget <= 0 || math.IsNaN(theta) || math.IsNaN(budget) {
		return nil, fmt.Errorf("%w: theta=%v budget=%v must be positive", ErrCoefficients, theta, budget)
	}
	alphaSum := 0.0
	for _, a := range alpha {
		alphaSum += a
	}
	q := make([]float64, len(alpha))
	for i := range alpha {
		q[i] = (alpha[i] / alphaSum) * budget / (theta * betaTilde[i])
	}
	return q, nil
}

// OptimalMix returns the optimal resource proportions q*ᵢ normalized to sum
// to one; the pairwise ratios equal (αᵢ/αⱼ)(β̃ⱼ/β̃ᵢ) as stated by
// Proposition 4, independent of θ and budget.
func OptimalMix(alpha, betaTilde []float64) ([]float64, error) {
	q, err := OptimalQuantities(alpha, betaTilde, 1, 1)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range q {
		total += v
	}
	for i := range q {
		q[i] /= total
	}
	return q, nil
}

// CalibrateAlpha inverts Proposition 4: given the resource mix the
// aggregator wants (desired, up to scale) and the market cost estimates β̃,
// it returns the Cobb–Douglas exponents α (normalized to Σα = 1) that make
// that mix optimal: αᵢ ∝ desiredᵢ · β̃ᵢ.
func CalibrateAlpha(desired, betaTilde []float64) ([]float64, error) {
	if err := checkGuidanceInputs(desired, betaTilde); err != nil {
		return nil, err
	}
	alpha := make([]float64, len(desired))
	total := 0.0
	for i := range desired {
		alpha[i] = desired[i] * betaTilde[i]
		total += alpha[i]
	}
	for i := range alpha {
		alpha[i] /= total
	}
	return alpha, nil
}

// EstimateBetaTilde estimates the per-resource cost coefficients β̃ from
// historical winning bids in "the public and efficient market": it solves
// the least-squares fit payment ≈ θ̄·Σ β̃ᵢqᵢ over observed (q, p) pairs with
// the mean cost parameter θ̄ absorbed into the coefficients, then normalizes
// Σβ̃ = 1 as Proposition 4 assumes.
func EstimateBetaTilde(qualities [][]float64, payments []float64) ([]float64, error) {
	if len(qualities) == 0 || len(qualities) != len(payments) {
		return nil, fmt.Errorf("%w: %d quality rows vs %d payments", ErrCoefficients, len(qualities), len(payments))
	}
	m := len(qualities[0])
	if m == 0 {
		return nil, fmt.Errorf("%w: empty quality vectors", ErrCoefficients)
	}
	// Normal equations AᵀA x = Aᵀb for x = θ̄·β̃.
	ata := make([][]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	atb := make([]float64, m)
	for r, q := range qualities {
		if len(q) != m {
			return nil, fmt.Errorf("%w: ragged quality row %d", ErrCoefficients, r)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ata[i][j] += q[i] * q[j]
			}
			atb[i] += q[i] * payments[r]
		}
	}
	x, err := solveSPD(ata, atb)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
		total += x[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("%w: degenerate fit (all coefficients <= 0)", ErrCoefficients)
	}
	for i := range x {
		x[i] /= total
	}
	return x, nil
}

// solveSPD solves Ax = b for a small symmetric positive-definite A by
// Gaussian elimination with partial pivoting and Tikhonov regularization.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	m := len(b)
	// Regularize: auctions with collinear quality dims would otherwise be
	// singular.
	trace := 0.0
	for i := 0; i < m; i++ {
		trace += a[i][i]
	}
	lambda := 1e-9 * math.Max(trace/float64(m), 1)
	aug := make([][]float64, m)
	for i := range aug {
		aug[i] = make([]float64, m+1)
		copy(aug[i], a[i])
		aug[i][i] += lambda
		aug[i][m] = b[i]
	}
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-15 {
			return nil, errors.New("auction: singular normal equations in beta estimation")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		for r := col + 1; r < m; r++ {
			f := aug[r][col] / aug[col][col]
			for c := col; c <= m; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		sum := aug[i][m]
		for j := i + 1; j < m; j++ {
			sum -= aug[i][j] * x[j]
		}
		x[i] = sum / aug[i][i]
	}
	return x, nil
}

func checkGuidanceInputs(alpha, betaTilde []float64) error {
	if len(alpha) == 0 || len(alpha) != len(betaTilde) {
		return fmt.Errorf("%w: alpha has %d entries, betaTilde %d", ErrCoefficients, len(alpha), len(betaTilde))
	}
	for i := range alpha {
		if alpha[i] <= 0 || betaTilde[i] <= 0 || math.IsNaN(alpha[i]) || math.IsNaN(betaTilde[i]) {
			return fmt.Errorf("%w: entry %d must be positive (alpha=%v, betaTilde=%v)", ErrCoefficients, i, alpha[i], betaTilde[i])
		}
	}
	return nil
}

package auction

import (
	"math"
	"testing"

	"fmore/internal/dist"
	"fmore/internal/numeric"
)

// analyticCase returns the benchmark game with a closed-form solution:
// s(q) = 2√q, c(q, θ) = θq, θ ~ Uniform[1, 2]. Then
// qˢ(θ) = 1/θ², u(θ) = 1/θ, H(x) = 2 − 1/x on [1/2, 1].
func analyticCase(t *testing.T, n, k int, solver SolverKind, model WinProbModel) EquilibriumConfig {
	t.Helper()
	rule, err := NewCobbDouglas(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := NewLinearCost(1)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return EquilibriumConfig{
		Rule:  rule,
		Cost:  cost,
		Theta: theta,
		N:     n,
		K:     k,
		QLo:   []float64{0},
		QHi:   []float64{1.5},
		// Finer grid than default: the tests below compare against closed
		// forms.
		ThetaGridPoints:   257,
		QualityGridPoints: 256,
		Solver:            solver,
		WinProb:           model,
	}
}

func TestEquilibriumQualityMatchesClosedForm(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 3, 1, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{1, 1.2, 1.5, 1.8, 2} {
		want := 1 / (theta * theta)
		got := s.Quality(theta)[0]
		if math.Abs(got-want) > 2e-3 {
			t.Errorf("qs(%v) = %v, want %v", theta, got, want)
		}
		wantU := 1 / theta
		if gotU := s.ScoreAt(theta); math.Abs(gotU-wantU) > 2e-3 {
			t.Errorf("u(%v) = %v, want %v", theta, gotU, wantU)
		}
	}
}

func TestEquilibriumPaymentMatchesHandComputedIntegral(t *testing.T) {
	// For N=3, K=1: g = H², H(x) = 2 − 1/x. At θ=1 (u=1):
	// p = c + ∫_{1/2}^{1} (2−1/x)² dx = 1 + [4x − 4ln x − 1/x]_{1/2}^1
	//   = 1 + (3 − 4ln 2) ≈ 1.22741.
	s, err := SolveEquilibrium(analyticCase(t, 3, 1, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 3 - 4*math.Ln2
	got := s.Payment(1)
	if math.Abs(got-want) > 5e-3 {
		t.Errorf("ps(1) = %v, want %v", got, want)
	}
	// At θ = θ̄ the node never wins; the margin vanishes and p = c = 2·(1/4).
	if got := s.Payment(2); math.Abs(got-0.5) > 5e-3 {
		t.Errorf("ps(2) = %v, want 0.5 (cost, zero margin)", got)
	}
}

func TestEquilibriumSolverAgreement(t *testing.T) {
	solvers := []SolverKind{SolverQuadrature, SolverEuler, SolverRK4}
	payments := make([][]float64, len(solvers))
	thetas := numeric.Linspace(1.05, 1.95, 7)
	for i, solver := range solvers {
		s, err := SolveEquilibrium(analyticCase(t, 5, 2, solver, WinProbPaper))
		if err != nil {
			t.Fatalf("solver %v: %v", solver, err)
		}
		payments[i] = make([]float64, len(thetas))
		for j, theta := range thetas {
			payments[i][j] = s.Payment(theta)
		}
	}
	for i := 1; i < len(solvers); i++ {
		for j := range thetas {
			base := payments[0][j]
			diff := math.Abs(payments[i][j] - base)
			if diff > 0.02*math.Max(1, math.Abs(base)) {
				t.Errorf("solver %v payment at θ=%v: %v vs quadrature %v",
					solvers[i], thetas[j], payments[i][j], base)
			}
		}
	}
}

func TestEquilibriumTheorem1MatchesCheClosedFormK1AndK2(t *testing.T) {
	for _, k := range []int{1, 2} {
		s, err := SolveEquilibrium(analyticCase(t, 6, k, SolverQuadrature, WinProbPaper))
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		for _, theta := range []float64{1.1, 1.4, 1.7} {
			closed, err := CheClosedFormPayment(s, theta)
			if err != nil {
				t.Fatalf("closed form: %v", err)
			}
			got := s.Payment(theta)
			if math.Abs(got-closed) > 0.01*math.Max(1, closed) {
				t.Errorf("K=%d θ=%v: Theorem 1 payment %v vs Che closed form %v", k, theta, got, closed)
			}
		}
	}
	// Closed form is only defined for K in {1, 2}.
	s, err := SolveEquilibrium(analyticCase(t, 6, 3, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheClosedFormPayment(s, 1.5); err == nil {
		t.Error("K=3 closed form: want error")
	}
}

// TestNashEquilibriumNoProfitableDeviation is the core game-theoretic check
// (Definition 1): a node of any type cannot increase its expected profit by
// unilaterally deviating in its asked payment while rivals play the
// equilibrium.
func TestNashEquilibriumNoProfitableDeviation(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 8, 3, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{1.05, 1.2, 1.5, 1.8} {
		eq := s.ExpectedProfit(theta)
		pStar := s.Payment(theta)
		for _, factor := range []float64{0.7, 0.85, 0.95, 1.05, 1.15, 1.3} {
			dev := DeviationProfit(s, theta, pStar*factor)
			if dev > eq+0.015*math.Max(1, eq) {
				t.Errorf("θ=%v: deviation p=%.4f yields %v > equilibrium %v",
					theta, pStar*factor, dev, eq)
			}
		}
	}
}

func TestEquilibriumProfitDecreasingInTheta(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 6, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	thetas, profits := ProfitCurve(s, 33)
	for i := 1; i < len(profits); i++ {
		if profits[i] > profits[i-1]+1e-6 {
			t.Errorf("π(%v)=%v > π(%v)=%v: profit should fall with cost type",
				thetas[i], profits[i], thetas[i-1], profits[i-1])
		}
	}
	// IR: profits are non-negative and payments cover costs.
	for _, theta := range thetas {
		if p := s.ExpectedProfit(theta); p < -1e-9 {
			t.Errorf("π(%v) = %v < 0 violates IR", theta, p)
		}
		if s.Payment(theta) < s.Cost(theta)-1e-9 {
			t.Errorf("payment %v < cost %v at θ=%v", s.Payment(theta), s.Cost(theta), theta)
		}
	}
}

// TestTheorem2ProfitDecreasingInN: with more rivals, every type's expected
// profit falls.
func TestTheorem2ProfitDecreasingInN(t *testing.T) {
	small, err := SolveEquilibrium(analyticCase(t, 5, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	large, err := SolveEquilibrium(analyticCase(t, 15, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range numeric.Linspace(1.05, 1.9, 9) {
		ps, pl := small.ExpectedProfit(theta), large.ExpectedProfit(theta)
		if pl > ps+1e-6 {
			t.Errorf("θ=%v: π(N=15)=%v > π(N=5)=%v, violates Theorem 2", theta, pl, ps)
		}
	}
}

// TestTheorem3ProfitIncreasingInK: with more winners, every type's expected
// profit rises.
func TestTheorem3ProfitIncreasingInK(t *testing.T) {
	k2, err := SolveEquilibrium(analyticCase(t, 10, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	k5, err := SolveEquilibrium(analyticCase(t, 10, 5, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range numeric.Linspace(1.05, 1.9, 9) {
		p2, p5 := k2.ExpectedProfit(theta), k5.ExpectedProfit(theta)
		if p5 < p2-1e-6 {
			t.Errorf("θ=%v: π(K=5)=%v < π(K=2)=%v, violates Theorem 3", theta, p5, p2)
		}
	}
}

// TestTheorem5IncentiveCompatible: under-declaring any quality dimension
// strictly lowers the achieved score, so winning probability only falls.
func TestTheorem5IncentiveCompatible(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 6, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{1.1, 1.5, 1.9} {
		q := s.Quality(theta)
		truthful, err := DeclaredQualityScore(s, theta, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, shave := range []float64{0.5, 0.8, 0.95} {
			qHat := []float64{q[0] * shave}
			lied, err := DeclaredQualityScore(s, theta, qHat)
			if err != nil {
				t.Fatal(err)
			}
			if lied >= truthful {
				t.Errorf("θ=%v: declaring %v scores %v >= truthful %v, violates IC",
					theta, qHat, lied, truthful)
			}
		}
	}
}

// TestTheorem4ParetoEfficiency: the equilibrium quality maximizes the social
// surplus term s(q) − c(q, θ) pointwise; no alternative quality does better.
func TestTheorem4ParetoEfficiency(t *testing.T) {
	cfg := analyticCase(t, 6, 2, SolverQuadrature, WinProbPaper)
	s, err := SolveEquilibrium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{1.1, 1.5, 1.9} {
		q := s.Quality(theta)
		best := cfg.Rule.Value(q) - cfg.Cost.Cost(q, theta)
		for _, alt := range numeric.Linspace(cfg.QLo[0], cfg.QHi[0], 101) {
			val := cfg.Rule.Value([]float64{alt}) - cfg.Cost.Cost([]float64{alt}, theta)
			if val > best+1e-4 {
				t.Errorf("θ=%v: alternative q=%v surplus %v beats equilibrium %v",
					theta, alt, val, best)
			}
		}
	}
}

// TestProposition3QualityIndependentOfCompetition: qˢ(θ) depends only on θ
// (via s and c), not on N, K, or the payment environment.
func TestProposition3QualityIndependentOfCompetition(t *testing.T) {
	a, err := SolveEquilibrium(analyticCase(t, 5, 1, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveEquilibrium(analyticCase(t, 20, 7, SolverQuadrature, WinProbExact))
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range numeric.Linspace(1.05, 1.95, 7) {
		qa, qb := a.Quality(theta)[0], b.Quality(theta)[0]
		if math.Abs(qa-qb) > 1e-9 {
			t.Errorf("θ=%v: quality differs across games: %v vs %v", theta, qa, qb)
		}
	}
}

func TestWinProbPaperTelescopesForK1K2(t *testing.T) {
	// K=1: paper g = H^{N−1}; K=2: paper g telescopes to H^{N−2}.
	for _, h := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if got, want := winProbability(h, 7, 1, WinProbPaper), math.Pow(h, 6); math.Abs(got-want) > 1e-12 {
			t.Errorf("K=1 g(%v) = %v, want H^6 = %v", h, got, want)
		}
		if got, want := winProbability(h, 7, 2, WinProbPaper), math.Pow(h, 5); math.Abs(got-want) > 1e-12 {
			t.Errorf("K=2 g(%v) = %v, want H^5 = %v", h, got, want)
		}
	}
}

func TestWinProbExactIsProperProbability(t *testing.T) {
	for _, h := range []float64{0, 0.2, 0.5, 0.8, 1} {
		for _, k := range []int{1, 3, 5} {
			g := winProbability(h, 10, k, WinProbExact)
			if g < 0 || g > 1 {
				t.Errorf("exact g(h=%v, K=%d) = %v outside [0,1]", h, k, g)
			}
		}
	}
	// Exact model at K=1 coincides with the paper model.
	for _, h := range []float64{0.2, 0.5, 0.8} {
		if p, e := winProbability(h, 9, 1, WinProbPaper), winProbability(h, 9, 1, WinProbExact); math.Abs(p-e) > 1e-12 {
			t.Errorf("K=1: paper %v != exact %v", p, e)
		}
	}
	// Monotone in h.
	prev := -1.0
	for _, h := range numeric.Linspace(0, 1, 21) {
		g := winProbability(h, 10, 3, WinProbExact)
		if g < prev-1e-12 {
			t.Errorf("exact g not monotone at h=%v", h)
		}
		prev = g
	}
}

func TestEquilibriumConfigValidation(t *testing.T) {
	base := analyticCase(t, 5, 2, SolverQuadrature, WinProbPaper)

	bad := base
	bad.K = 5 // K must be < N
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("K=N: want error")
	}
	bad = base
	bad.N = 1
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("N=1: want error")
	}
	bad = base
	bad.Rule = nil
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("nil rule: want error")
	}
	bad = base
	bad.QLo = []float64{1, 2}
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("box dims mismatch: want error")
	}
	bad = base
	bad.QLo = []float64{2}
	bad.QHi = []float64{1}
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("inverted box: want error")
	}
	bad = base
	twoDim, err := NewAdditive(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad.Rule = twoDim
	if _, err := SolveEquilibrium(bad); err == nil {
		t.Error("rule/cost dims mismatch: want error")
	}
}

func TestStrategyAccessorsClampToSupport(t *testing.T) {
	s, err := SolveEquilibrium(analyticCase(t, 5, 2, SolverQuadrature, WinProbPaper))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.ThetaSupport()
	if q := s.Quality(lo - 10); math.Abs(q[0]-s.Quality(lo)[0]) > 1e-12 {
		t.Error("Quality below support should clamp")
	}
	if p := s.Payment(hi + 10); math.Abs(p-s.Payment(hi)) > 1e-12 {
		t.Error("Payment above support should clamp")
	}
	if g := s.WinProbability(hi); g > 1e-6 {
		t.Errorf("win probability at θ̄ = %v, want ~0 (never wins)", g)
	}
	if g := s.WinProbability(lo); g < 1-1e-6 {
		t.Errorf("win probability at θ̲ = %v, want ~1 (best type always wins)", g)
	}
}

func TestSolverAndModelStrings(t *testing.T) {
	if SolverQuadrature.String() != "quadrature" || SolverEuler.String() != "euler" || SolverRK4.String() != "rk4" {
		t.Error("SolverKind.String mismatch")
	}
	if WinProbPaper.String() != "paper-eq9" || WinProbExact.String() != "exact-orderstat" {
		t.Error("WinProbModel.String mismatch")
	}
	if SolverKind(9).String() == "" || WinProbModel(9).String() == "" {
		t.Error("unknown enums should still format")
	}
}

// TestMultiDimensionalEquilibrium exercises the coordinate-ascent path with
// a two-dimensional quality space and verifies Che's Theorem 1 pointwise.
func TestMultiDimensionalEquilibrium(t *testing.T) {
	rule, err := NewAdditive(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := NewQuadraticCost(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	theta, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SolveEquilibrium(EquilibriumConfig{
		Rule:  rule,
		Cost:  cost,
		Theta: theta,
		N:     6,
		K:     2,
		QLo:   []float64{0, 0},
		QHi:   []float64{3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: max 2q1 + q2 − θ(q1² + q2²) -> q1 = 1/θ, q2 = 1/(2θ).
	for _, th := range []float64{0.6, 1, 1.4} {
		q := s.Quality(th)
		if math.Abs(q[0]-1/th) > 0.02 {
			t.Errorf("q1(%v) = %v, want %v", th, q[0], 1/th)
		}
		if math.Abs(q[1]-1/(2*th)) > 0.02 {
			t.Errorf("q2(%v) = %v, want %v", th, q[1], 1/(2*th))
		}
	}
}

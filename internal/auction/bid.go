package auction

import (
	"fmt"
	"math"
)

// Bid is a sealed bid (qᵢ, pᵢ) submitted by one edge node: the promised
// quality vector and the expected payment.
type Bid struct {
	// NodeID identifies the bidding edge node.
	NodeID int
	// Qualities is the promised quality vector q = (q₁..qₘ).
	Qualities []float64
	// Payment is the expected payment p the node asks for.
	Payment float64
}

// Validate checks the bid against the rule's dimensionality and finiteness.
func (b Bid) Validate(dims int) error {
	if err := CheckDims(dims, b.Qualities); err != nil {
		return fmt.Errorf("bid from node %d: %w", b.NodeID, err)
	}
	if math.IsNaN(b.Payment) || math.IsInf(b.Payment, 0) {
		return fmt.Errorf("bid from node %d: payment %v is not finite", b.NodeID, b.Payment)
	}
	return nil
}

// Clone returns a deep copy of the bid (qualities are copied).
func (b Bid) Clone() Bid {
	return Bid{
		NodeID:    b.NodeID,
		Qualities: append([]float64(nil), b.Qualities...),
		Payment:   b.Payment,
	}
}

// Ask is the bid ask the aggregator broadcasts at the start of each round:
// the scoring rule and how many winners will be selected. Its wire encoding
// lives in internal/transport; this is the in-memory form.
type Ask struct {
	// Rule is the public scoring rule S(q, p) = Rule.Value(q) − p.
	Rule ScoringRule
	// K is the number of winners the aggregator will select.
	K int
	// Round is the federated training round this ask belongs to.
	Round int
}

// Winner records one selected bid together with its score and the payment
// granted by the payment rule.
type Winner struct {
	Bid Bid
	// Score is S(q, p) under the broadcast rule.
	Score float64
	// Payment is what the aggregator actually pays (equals Bid.Payment under
	// the first-price rule; may exceed it under the second-price rule).
	Payment float64
}

// Outcome is the full result of one auction round.
type Outcome struct {
	// Winners are the selected bids in descending score order.
	Winners []Winner
	// Scores maps every bidder (by slice position of the input bids) to its
	// evaluated score, winners and losers alike, for score-distribution
	// analysis (paper Fig. 8).
	Scores []float64
	// AggregatorProfit is V = Σ_{i∈W} (U(qᵢ) − pᵢ) (Eq 6) where the utility
	// U is taken equal to the scoring rule's s(·), the Pareto-efficient
	// configuration of Theorem 4.
	AggregatorProfit float64
}

// Clone returns an Outcome that owns all of its memory: winners (their bid
// qualities included) are deep-copied and the score vector is freshly
// allocated. Use it to retain the buffer-aliasing result of Selector.Select
// beyond the selector's next call.
func (o Outcome) Clone() Outcome {
	c := o
	if o.Winners != nil {
		c.Winners = make([]Winner, len(o.Winners))
		for i, w := range o.Winners {
			w.Bid = w.Bid.Clone()
			c.Winners[i] = w
		}
	}
	if o.Scores != nil {
		c.Scores = make([]float64, len(o.Scores))
		copy(c.Scores, o.Scores)
	}
	return c
}

// WinnerIDs returns the node IDs of the winners in score order.
func (o Outcome) WinnerIDs() []int {
	ids := make([]int, len(o.Winners))
	for i, w := range o.Winners {
		ids[i] = w.Bid.NodeID
	}
	return ids
}

// TotalPayment returns the sum the aggregator pays this round.
func (o Outcome) TotalPayment() float64 {
	total := 0.0
	for _, w := range o.Winners {
		total += w.Payment
	}
	return total
}

package auction

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearCost(t *testing.T) {
	c, err := NewLinearCost(0.6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Cost([]float64{1, 2}, 3); math.Abs(got-3*(0.6+0.8)) > 1e-12 {
		t.Errorf("Cost = %v, want 4.2", got)
	}
	if got := c.CostThetaDeriv([]float64{1, 2}, 3); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("CostThetaDeriv = %v, want 1.4", got)
	}
}

func TestQuadraticCost(t *testing.T) {
	c, err := NewQuadraticCost(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Cost([]float64{2, 1}, 0.5); math.Abs(got-0.5*(4+2)) > 1e-12 {
		t.Errorf("Cost = %v, want 3", got)
	}
}

func TestPowerCostInterpolatesFamilies(t *testing.T) {
	lin, err := NewLinearCost(0.7)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPowerCost(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := NewQuadraticCost(0.7)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPowerCost(2, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.5, 1, 2} {
		if a, b := lin.Cost([]float64{q}, 1.3), p1.Cost([]float64{q}, 1.3); math.Abs(a-b) > 1e-12 {
			t.Errorf("power(1) != linear at q=%v: %v vs %v", q, b, a)
		}
		if a, b := quad.Cost([]float64{q}, 1.3), p2.Cost([]float64{q}, 1.3); math.Abs(a-b) > 1e-12 {
			t.Errorf("power(2) != quadratic at q=%v: %v vs %v", q, b, a)
		}
	}
}

func TestCostConstructorErrors(t *testing.T) {
	if _, err := NewLinearCost(); err == nil {
		t.Error("empty linear cost: want error")
	}
	if _, err := NewLinearCost(-1); err == nil {
		t.Error("negative beta: want error")
	}
	if _, err := NewQuadraticCost(0); err == nil {
		t.Error("zero beta: want error")
	}
	if _, err := NewPowerCost(0.5, 1); err == nil {
		t.Error("gamma < 1: want error")
	}
	if _, err := NewPowerCost(math.Inf(1), 1); err == nil {
		t.Error("infinite gamma: want error")
	}
}

func TestCostThetaDerivFallback(t *testing.T) {
	// A cost without the analytic derivative uses finite differences.
	c := finiteDiffOnlyCost{}
	got := CostThetaDeriv(c, []float64{2}, 1.5)
	// c = θ²·q -> ∂c/∂θ = 2θq = 6.
	if math.Abs(got-6) > 1e-4 {
		t.Errorf("finite-difference deriv = %v, want 6", got)
	}
}

type finiteDiffOnlyCost struct{}

func (finiteDiffOnlyCost) Cost(q []float64, theta float64) float64 { return theta * theta * q[0] }
func (finiteDiffOnlyCost) Dims() int                               { return 1 }
func (finiteDiffOnlyCost) Name() string                            { return "theta-squared" }

func TestVerifySingleCrossing(t *testing.T) {
	lin, err := NewLinearCost(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySingleCrossing(lin, []float64{0, 0}, []float64{2, 2}, 0.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("linear cost should satisfy single crossing: %+v", rep)
	}

	quad, err := NewQuadraticCost(1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = VerifySingleCrossing(quad, []float64{0}, []float64{2}, 0.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("quadratic cost should satisfy single crossing: %+v", rep)
	}

	// A cost decreasing in θ violates c_qθ > 0.
	rep, err = VerifySingleCrossing(decreasingThetaCost{}, []float64{0.1}, []float64{2}, 0.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CqThetaPositive {
		t.Error("decreasing-θ cost should fail c_qθ > 0")
	}
	if rep.OK() {
		t.Error("report should not be OK")
	}
}

type decreasingThetaCost struct{}

func (decreasingThetaCost) Cost(q []float64, theta float64) float64 { return q[0] / theta }
func (decreasingThetaCost) Dims() int                               { return 1 }
func (decreasingThetaCost) Name() string                            { return "decreasing-theta" }

func TestVerifySingleCrossingErrors(t *testing.T) {
	lin, err := NewLinearCost(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySingleCrossing(lin, []float64{0, 0}, []float64{1}, 0.5, 2, 5); err == nil {
		t.Error("dims mismatch: want error")
	}
	if _, err := VerifySingleCrossing(lin, []float64{1}, []float64{1}, 0.5, 2, 5); err == nil {
		t.Error("empty box: want error")
	}
	if _, err := VerifySingleCrossing(lin, []float64{0}, []float64{1}, 2, 2, 5); err == nil {
		t.Error("empty theta interval: want error")
	}
}

// Property: all provided cost families are non-negative and increase with θ
// for non-negative qualities.
func TestCostFamiliesMonotoneInThetaProperty(t *testing.T) {
	lin, err := NewLinearCost(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	quad, err := NewQuadraticCost(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := NewPowerCost(1.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []CostFunction{lin, quad, pow} {
		c := c
		prop := func(rawQ1, rawQ2, rawT float64) bool {
			q := []float64{math.Abs(math.Mod(rawQ1, 10)), math.Abs(math.Mod(rawQ2, 10))}
			t1 := 0.1 + math.Abs(math.Mod(rawT, 5))
			t2 := t1 + 0.5
			c1, c2 := c.Cost(q, t1), c.Cost(q, t2)
			return c1 >= 0 && c2 >= c1
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

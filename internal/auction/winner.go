package auction

import (
	"errors"
	"fmt"
	"math/rand"
)

// PaymentRule selects how winners are paid. The paper supports both the
// first-price and the second-price sealed auction and uses first-price
// "for simplicity" in all experiments.
type PaymentRule int

const (
	// FirstPrice pays each winner its own asked payment.
	FirstPrice PaymentRule = iota + 1
	// SecondPrice pays each winner the highest payment that would still have
	// kept its score at the level of the best excluded score: the winner's
	// payment is raised until its score equals the (K+1)-th score. With fewer
	// than K+1 bids it degenerates to first-price.
	SecondPrice
)

// String implements fmt.Stringer.
func (p PaymentRule) String() string {
	switch p {
	case FirstPrice:
		return "first-price"
	case SecondPrice:
		return "second-price"
	default:
		return fmt.Sprintf("PaymentRule(%d)", int(p))
	}
}

// ErrNoBids reports an auction round with no valid bids.
var ErrNoBids = errors.New("auction: no bids")

// DetermineWinners runs the winner-determination step of FMore: it scores
// all bids under rule, selects the top K by score, and applies the payment
// rule. rng drives the coin-flip tie-break. The aggregator's
// individual-rationality constraint (V ≥ 0) is enforced per winner: bids
// whose score is negative are never selected, because U(q) − p < 0 would
// make the aggregator worse off than not hiring the node.
//
// This is a convenience wrapper over the Select pipeline (see select.go); it
// produces bit-for-bit the outcomes and rng draw order of the original
// full-sort implementation, but allocates a fresh Selector per call — hot
// paths should hold a Selector (or an Auctioneer) instead.
func DetermineWinners(rule ScoringRule, bids []Bid, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	return Select(SelectionRequest{Rule: rule, Bids: bids, K: k, Payment: payment}, rng)
}

// DetermineWinnersScored is DetermineWinners for callers that have already
// evaluated S(qᵢ, pᵢ) for every bid — typically a batched scoring worker
// pool amortizing rule evaluation across many concurrent auctions (see
// internal/exchange). scores[i] must equal Score(rule, bids[i].Qualities,
// bids[i].Payment); it is copied, never retained, so the caller may reuse
// the buffer. The rng draw sequence matches DetermineWinners exactly, so a
// seeded run produces the identical Outcome on either path.
func DetermineWinnersScored(rule ScoringRule, bids []Bid, scores []float64, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if scores == nil {
		return Outcome{}, fmt.Errorf("auction: DetermineWinnersScored requires a score vector")
	}
	return Select(SelectionRequest{Rule: rule, Bids: bids, Scores: scores, K: k, Payment: payment}, rng)
}

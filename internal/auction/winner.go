package auction

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// PaymentRule selects how winners are paid. The paper supports both the
// first-price and the second-price sealed auction and uses first-price
// "for simplicity" in all experiments.
type PaymentRule int

const (
	// FirstPrice pays each winner its own asked payment.
	FirstPrice PaymentRule = iota + 1
	// SecondPrice pays each winner the highest payment that would still have
	// kept its score at the level of the best excluded score: the winner's
	// payment is raised until its score equals the (K+1)-th score. With fewer
	// than K+1 bids it degenerates to first-price.
	SecondPrice
)

// String implements fmt.Stringer.
func (p PaymentRule) String() string {
	switch p {
	case FirstPrice:
		return "first-price"
	case SecondPrice:
		return "second-price"
	default:
		return fmt.Sprintf("PaymentRule(%d)", int(p))
	}
}

// ErrNoBids reports an auction round with no valid bids.
var ErrNoBids = errors.New("auction: no bids")

// scoredBid pairs a bid with its evaluated score and input position.
type scoredBid struct {
	bid   Bid
	score float64
	pos   int
}

// rankBids validates and scores all bids, returning them sorted by
// descending score. Ties are broken by a fair coin flip as the paper
// specifies ("ties are resolved by the flip of a coin"), implemented as a
// random tiebreak key drawn per bid.
func rankBids(rule ScoringRule, bids []Bid, rng *rand.Rand) ([]scoredBid, []float64, error) {
	return rankWith(rule, bids, nil, rng)
}

// rankWith is the shared ranking core. When pre is non-nil it is taken as
// the precomputed score vector (one entry per bid, e.g. from a batched
// scoring worker pool) instead of evaluating the rule inline. The rng draw
// order — exactly one tiebreak per bid, in input order — is identical on
// both paths, so seeded runs agree bit-for-bit regardless of which path
// scored the bids. The returned score slice is freshly allocated and never
// aliases pre, so callers may reuse their scoring buffers.
func rankWith(rule ScoringRule, bids []Bid, pre []float64, rng *rand.Rand) ([]scoredBid, []float64, error) {
	if len(bids) == 0 {
		return nil, nil, ErrNoBids
	}
	if pre != nil && len(pre) != len(bids) {
		return nil, nil, fmt.Errorf("auction: %d precomputed scores for %d bids", len(pre), len(bids))
	}
	ranked := make([]scoredBid, 0, len(bids))
	scores := make([]float64, len(bids))
	tiebreak := make([]float64, len(bids))
	for i, b := range bids {
		if err := b.Validate(rule.Dims()); err != nil {
			return nil, nil, err
		}
		s := 0.0
		if pre != nil {
			s = pre[i]
		} else {
			var err error
			s, err = Score(rule, b.Qualities, b.Payment)
			if err != nil {
				return nil, nil, err
			}
		}
		scores[i] = s
		tiebreak[i] = rng.Float64()
		ranked = append(ranked, scoredBid{bid: b, score: s, pos: i})
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return tiebreak[ranked[a].pos] > tiebreak[ranked[b].pos]
	})
	return ranked, scores, nil
}

// DetermineWinners runs the winner-determination step of FMore: it scores
// all bids under rule, sorts them descending, selects the top K, and applies
// the payment rule. rng drives the coin-flip tie-break. The aggregator's
// individual-rationality constraint (V ≥ 0) is enforced per winner: bids
// whose score is negative are never selected, because U(q) − p < 0 would
// make the aggregator worse off than not hiring the node.
func DetermineWinners(rule ScoringRule, bids []Bid, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	return determineWinners(rule, bids, nil, k, payment, rng)
}

// DetermineWinnersScored is DetermineWinners for callers that have already
// evaluated S(qᵢ, pᵢ) for every bid — typically a batched scoring worker
// pool amortizing rule evaluation across many concurrent auctions (see
// internal/exchange). scores[i] must equal Score(rule, bids[i].Qualities,
// bids[i].Payment); it is copied, never retained, so the caller may reuse
// the buffer. The rng draw sequence matches DetermineWinners exactly, so a
// seeded run produces the identical Outcome on either path.
func DetermineWinnersScored(rule ScoringRule, bids []Bid, scores []float64, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if scores == nil {
		return Outcome{}, fmt.Errorf("auction: DetermineWinnersScored requires a score vector")
	}
	return determineWinners(rule, bids, scores, k, payment, rng)
}

func determineWinners(rule ScoringRule, bids []Bid, pre []float64, k int, payment PaymentRule, rng *rand.Rand) (Outcome, error) {
	if k < 1 {
		return Outcome{}, fmt.Errorf("auction: K must be >= 1, got %d", k)
	}
	ranked, scores, err := rankWith(rule, bids, pre, rng)
	if err != nil {
		return Outcome{}, err
	}
	limit := k
	if limit > len(ranked) {
		limit = len(ranked)
	}
	selected := make([]scoredBid, 0, limit)
	for _, sb := range ranked[:limit] {
		if sb.score < 0 {
			break // ranked is sorted; everything after is worse
		}
		selected = append(selected, sb)
	}
	return buildOutcome(rule, ranked, selected, scores, payment)
}

// buildOutcome applies the payment rule and assembles the Outcome.
func buildOutcome(rule ScoringRule, ranked, selected []scoredBid, scores []float64, payment PaymentRule) (Outcome, error) {
	// Reference score for second-price: the best score among non-selected
	// bids (the (K+1)-th overall when K winners were taken).
	refScore := 0.0
	hasRef := false
	if len(selected) < len(ranked) {
		refScore = ranked[len(selected)].score
		if refScore < 0 {
			refScore = 0 // aggregator IR floor: never pay beyond s(q)
		}
		hasRef = true
	}

	out := Outcome{
		Winners: make([]Winner, 0, len(selected)),
		Scores:  scores,
	}
	for _, sb := range selected {
		pay := sb.bid.Payment
		if payment == SecondPrice && hasRef {
			// Raise the payment until this winner's score drops to the
			// reference score: p' = s(q) − refScore ≥ p.
			if p2 := rule.Value(sb.bid.Qualities) - refScore; p2 > pay {
				pay = p2
			}
		}
		out.Winners = append(out.Winners, Winner{Bid: sb.bid.Clone(), Score: sb.score, Payment: pay})
		out.AggregatorProfit += rule.Value(sb.bid.Qualities) - pay
	}
	return out, nil
}

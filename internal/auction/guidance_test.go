package auction

import (
	"math"
	"math/rand"
	"testing"
)

func TestOptimalQuantitiesBudgetShares(t *testing.T) {
	// Proposition 4 with Σα = 1: spend share αᵢ of the budget on resource i.
	alpha := []float64{0.5, 0.3, 0.2}
	beta := []float64{0.4, 0.4, 0.2}
	theta, budget := 2.0, 100.0
	q, err := OptimalQuantities(alpha, beta, theta, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Budget is exhausted: θ·Σ βᵢqᵢ = budget.
	spend := 0.0
	for i := range q {
		spend += beta[i] * q[i]
	}
	spend *= theta
	if math.Abs(spend-budget) > 1e-9 {
		t.Errorf("spend = %v, want %v", spend, budget)
	}
	// Ratio law: q*ᵢ/q*ⱼ = (αᵢ/αⱼ)(β̃ⱼ/β̃ᵢ).
	for i := range q {
		for j := range q {
			want := (alpha[i] / alpha[j]) * (beta[j] / beta[i])
			got := q[i] / q[j]
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("q%d/q%d = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestOptimalQuantitiesNormalizesAlpha(t *testing.T) {
	// Unnormalized α is scaled internally; doubling α changes nothing.
	q1, err := OptimalQuantities([]float64{1, 1}, []float64{0.5, 0.5}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OptimalQuantities([]float64{2, 2}, []float64{0.5, 0.5}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1 {
		if math.Abs(q1[i]-q2[i]) > 1e-12 {
			t.Errorf("alpha scaling changed quantities: %v vs %v", q1, q2)
		}
	}
}

func TestOptimalMixSumsToOne(t *testing.T) {
	mix, err := OptimalMix([]float64{0.6, 0.4}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range mix {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mix sums to %v, want 1", sum)
	}
	// Higher α and cheaper β̃ both tilt the mix toward a resource.
	if mix[0] <= mix[1] {
		t.Errorf("mix = %v: resource 0 has higher α and lower β̃, should dominate", mix)
	}
}

func TestCalibrateAlphaRoundTrip(t *testing.T) {
	beta := []float64{0.25, 0.45, 0.3}
	desired := []float64{0.5, 0.2, 0.3}
	alpha, err := CalibrateAlpha(desired, beta)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range alpha {
		sum += a
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("alpha sums to %v, want 1", sum)
	}
	mix, err := OptimalMix(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated α reproduces the desired proportions.
	total := 0.0
	for _, d := range desired {
		total += d
	}
	for i := range mix {
		if math.Abs(mix[i]-desired[i]/total) > 1e-9 {
			t.Errorf("mix[%d] = %v, want %v", i, mix[i], desired[i]/total)
		}
	}
}

func TestGuidanceInputValidation(t *testing.T) {
	if _, err := OptimalQuantities([]float64{1}, []float64{1, 2}, 1, 1); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := OptimalQuantities([]float64{1}, []float64{1}, -1, 1); err == nil {
		t.Error("negative theta: want error")
	}
	if _, err := OptimalQuantities([]float64{1}, []float64{1}, 1, 0); err == nil {
		t.Error("zero budget: want error")
	}
	if _, err := OptimalMix([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Error("zero alpha: want error")
	}
	if _, err := CalibrateAlpha(nil, nil); err == nil {
		t.Error("empty inputs: want error")
	}
}

func TestEstimateBetaTildeRecoversCoefficients(t *testing.T) {
	// Synthetic market history: payments = θ̄·(0.7q1 + 0.3q2) + noise.
	trueBeta := []float64{0.7, 0.3}
	const thetaBar = 1.5
	rng := rand.New(rand.NewSource(5))
	var qualities [][]float64
	var payments []float64
	for i := 0; i < 400; i++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 10}
		p := thetaBar * (trueBeta[0]*q[0] + trueBeta[1]*q[1])
		p *= 1 + 0.02*(rng.Float64()-0.5)
		qualities = append(qualities, q)
		payments = append(payments, p)
	}
	beta, err := EstimateBetaTilde(qualities, payments)
	if err != nil {
		t.Fatal(err)
	}
	// θ̄ is absorbed by normalization; proportions should match.
	for i := range trueBeta {
		if math.Abs(beta[i]-trueBeta[i]) > 0.02 {
			t.Errorf("beta[%d] = %v, want ~%v", i, beta[i], trueBeta[i])
		}
	}
}

func TestEstimateBetaTildeErrors(t *testing.T) {
	if _, err := EstimateBetaTilde(nil, nil); err == nil {
		t.Error("empty history: want error")
	}
	if _, err := EstimateBetaTilde([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := EstimateBetaTilde([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := EstimateBetaTilde([][]float64{{}}, []float64{1}); err == nil {
		t.Error("empty quality vectors: want error")
	}
}

func TestSocialSurplus(t *testing.T) {
	rule, err := NewAdditive(1)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := NewLinearCost(0.5)
	if err != nil {
		t.Fatal(err)
	}
	winners := []Winner{
		{Bid: Bid{NodeID: 1, Qualities: []float64{2}, Payment: 0.5}},
		{Bid: Bid{NodeID: 2, Qualities: []float64{4}, Payment: 0.9}},
	}
	thetaOf := func(id int) float64 {
		if id == 1 {
			return 1
		}
		return 2
	}
	// SS = (2 − 1·0.5·2) + (4 − 2·0.5·4) = 1 + 0 = 1.
	if got := SocialSurplus(rule, cost, winners, thetaOf); math.Abs(got-1) > 1e-12 {
		t.Errorf("SocialSurplus = %v, want 1", got)
	}
}

package auction

import (
	"fmt"
	"math"

	"fmore/internal/numeric"
)

// CheClosedFormPayment evaluates the closed-form equilibrium payment of
// Che's Theorem 2 (K = 1) and its Proposition 1 extension (K = 2):
//
//	pˢ(θ) = c(qˢ, θ) + ∫_θ^θ̄ c_θ(qˢ(t), t) [(1−F(t))/(1−F(θ))]^{N−K} dt
//
// for K ∈ {1, 2}. It is used to cross-validate the general Theorem 1 solver:
// for these two cases the paper's g(u) telescopes to H^{N−K}, making both
// formulas mathematically identical.
func CheClosedFormPayment(s *Strategy, theta float64) (float64, error) {
	cfg := s.Config()
	if cfg.K != 1 && cfg.K != 2 {
		return 0, fmt.Errorf("auction: closed form defined for K in {1,2}, got K=%d", cfg.K)
	}
	_, thetaHi := cfg.Theta.Support()
	exp := float64(cfg.N - cfg.K)
	oneMinusF := 1 - cfg.Theta.CDF(theta)
	if oneMinusF <= 0 {
		// θ = θ̄: the integral is empty; the payment equals the cost.
		return cfg.Cost.Cost(s.Quality(theta), theta), nil
	}
	integrand := func(t float64) float64 {
		q := s.Quality(t)
		ct := CostThetaDeriv(cfg.Cost, q, t)
		ratio := (1 - cfg.Theta.CDF(t)) / oneMinusF
		if ratio <= 0 {
			return 0
		}
		return ct * math.Pow(ratio, exp)
	}
	integral := numeric.Simpson(integrand, theta, thetaHi, 512)
	return cfg.Cost.Cost(s.Quality(theta), theta) + integral, nil
}

// DeviationProfit returns the expected profit of a node of type theta that
// deviates to asking payment p while keeping the optimal quality qˢ(θ) and
// while all rivals play the equilibrium strategy. At the equilibrium payment
// this function is maximized (the Nash property, Definition 1); tests verify
// that no unilateral payment deviation is profitable.
func DeviationProfit(s *Strategy, theta, p float64) float64 {
	q := s.Quality(theta)
	cfg := s.Config()
	cost := cfg.Cost.Cost(q, theta)
	score := cfg.Rule.Value(q) - p
	return (p - cost) * s.gOf(score)
}

// DeclaredQualityScore returns the score a node of type theta would obtain
// by declaring quality qHat (at its equilibrium payment). Theorem 5 (IC):
// declaring any qHat with some q̂ⱼ < qⱼ strictly reduces the score, so
// truthful declaration maximizes the winning probability.
func DeclaredQualityScore(s *Strategy, theta float64, qHat []float64) (float64, error) {
	cfg := s.Config()
	if err := CheckDims(cfg.Rule.Dims(), qHat); err != nil {
		return 0, err
	}
	return cfg.Rule.Value(qHat) - s.Payment(theta), nil
}

// SocialSurplus computes SS = Σ_{i∈W} [s(qᵢ) − c(qᵢ, θᵢ)] (Theorem 4). When
// the aggregator's utility U equals s and has the additive form, FMore
// maximizes this quantity — Pareto efficiency.
func SocialSurplus(rule ScoringRule, cost CostFunction, winners []Winner, thetaOf func(nodeID int) float64) float64 {
	ss := 0.0
	for _, w := range winners {
		ss += rule.Value(w.Bid.Qualities) - cost.Cost(w.Bid.Qualities, thetaOf(w.Bid.NodeID))
	}
	return ss
}

// ProfitCurve samples the equilibrium expected profit π(θ) over the support,
// the quantity whose monotonicity in N (Theorem 2, decreasing) and K
// (Theorem 3, increasing) the paper proves.
func ProfitCurve(s *Strategy, points int) (thetas, profits []float64) {
	if points < 2 {
		points = 2
	}
	lo, hi := s.ThetaSupport()
	thetas = numeric.Linspace(lo, hi, points)
	profits = make([]float64, len(thetas))
	for i, t := range thetas {
		profits[i] = s.ExpectedProfit(t)
	}
	return thetas, profits
}

package auction

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// This file holds the seeded equivalence property test: for random slates
// (ties forced, negative scores, K above and below N, first- and
// second-price, ψ and budget variants, precomputed and inline scores) the
// heap-based Select pipeline must produce exactly the Outcome and consume
// exactly the rng draws of the frozen full-sort reference in
// reference_test.go. This guards the exchange's WAL replay guarantee from
// PR 2: recovery fast-forwards a seeded rng by recorded draw counts, so any
// drift in draw order or outcome bytes would corrupt replayed histories.

// equivSource wraps the seeded source and counts every step, mirroring the
// exchange's countingSource, so draw-order equivalence is asserted directly.
type equivSource struct {
	src rand.Source64
	n   int64
}

func newEquivSource(seed int64) *equivSource {
	return &equivSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *equivSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *equivSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *equivSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// genEquivSlate draws a bid slate designed to stress the selection order:
// qualities and payments live on coarse discrete grids so exact score ties
// are common, and a fraction of payments exceed the maximum rule value so
// negative scores (aggregator-IR exclusions) appear throughout the ranking.
func genEquivSlate(r *rand.Rand, n int) []Bid {
	bids := make([]Bid, n)
	for i := range bids {
		pay := float64(r.Intn(8)) / 8
		if r.Intn(6) == 0 {
			pay = 1.5 + float64(r.Intn(3)) // guaranteed negative score
		}
		bids[i] = Bid{
			NodeID:    i,
			Qualities: []float64{float64(r.Intn(5)) / 4, float64(r.Intn(5)) / 4},
			Payment:   pay,
		}
	}
	// Duplicate a few bids wholesale (fresh quality slices, new node IDs) so
	// full (score, payment) ties appear even across the duplication.
	for d := 0; d < n/8; d++ {
		i, j := r.Intn(n), r.Intn(n)
		bids[i].Qualities = append([]float64(nil), bids[j].Qualities...)
		bids[i].Payment = bids[j].Payment
	}
	return bids
}

// runEquiv drives one variant through the new pipeline and the reference on
// identically seeded counting sources and requires identical outcomes,
// errors and draw counts.
func runEquiv(t *testing.T, label string, seed int64,
	newPath func(rng *rand.Rand) (Outcome, error),
	refPath func(rng *rand.Rand) (Outcome, error)) {
	t.Helper()
	srcNew, srcRef := newEquivSource(seed), newEquivSource(seed)
	gotOut, gotErr := newPath(rand.New(srcNew))
	wantOut, wantErr := refPath(rand.New(srcRef))
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: error mismatch: new=%v ref=%v", label, gotErr, wantErr)
	}
	if gotErr != nil && gotErr.Error() != wantErr.Error() {
		t.Fatalf("%s: error text mismatch:\nnew: %v\nref: %v", label, gotErr, wantErr)
	}
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("%s: outcome mismatch:\nnew: %+v\nref: %+v", label, gotOut, wantOut)
	}
	if srcNew.n != srcRef.n {
		t.Fatalf("%s: rng draw count mismatch: new=%d ref=%d", label, srcNew.n, srcRef.n)
	}
}

func TestSelectEquivalenceProperty(t *testing.T) {
	rule, err := NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gen := rand.New(rand.NewSource(20260727))
	// A pooled selector lives across all iterations so buffer reuse across
	// wildly varying slate shapes is part of what the property verifies.
	var pooled Selector

	iters := 80
	if testing.Short() {
		iters = 20
	}
	for iter := 0; iter < iters; iter++ {
		var n int
		switch gen.Intn(10) {
		case 0:
			n = 1 + gen.Intn(3) // degenerate slates
		case 1:
			n = 1024 + gen.Intn(3073) // up to 4096
		default:
			n = 2 + gen.Intn(96)
		}
		k := 1 + gen.Intn(64)
		if gen.Intn(5) == 0 {
			k = n + 1 + gen.Intn(8) // K above the slate size
		}
		bids := genEquivSlate(gen, n)
		scores := make([]float64, n)
		for i, b := range bids {
			s, err := Score(rule, b.Qualities, b.Payment)
			if err != nil {
				t.Fatal(err)
			}
			scores[i] = s
		}
		psi := []float64{0.25, 0.6, 0.9, 1}[gen.Intn(4)]
		budget := 0.25 + 2*gen.Float64()
		psiOf := func(nodeID int) float64 {
			return []float64{0.3, 0.7, 1}[nodeID%3]
		}
		seed := gen.Int63()

		for _, payment := range []PaymentRule{FirstPrice, SecondPrice} {
			payment := payment
			tag := fmt.Sprintf("iter=%d n=%d k=%d pay=%v", iter, n, k, payment)

			runEquiv(t, tag+" plain", seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinners(rule, bids, k, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinners(rule, bids, nil, k, payment, rng)
				})

			runEquiv(t, tag+" scored", seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinnersScored(rule, bids, scores, k, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinners(rule, bids, scores, k, payment, rng)
				})

			runEquiv(t, tag+" pooled", seed,
				func(rng *rand.Rand) (Outcome, error) {
					out, err := pooled.Select(SelectionRequest{
						Rule: rule, Bids: bids, K: k, Payment: payment,
					}, rng)
					if err != nil {
						return Outcome{}, err
					}
					return out.Clone(), nil
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinners(rule, bids, nil, k, payment, rng)
				})

			runEquiv(t, fmt.Sprintf("%s psi=%v", tag, psi), seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinnersPsi(rule, bids, k, psi, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinnersPsi(rule, bids, nil, k, psi, payment, rng)
				})

			runEquiv(t, fmt.Sprintf("%s psi-scored=%v", tag, psi), seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinnersPsiScored(rule, bids, scores, k, psi, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinnersPsi(rule, bids, scores, k, psi, payment, rng)
				})

			runEquiv(t, fmt.Sprintf("%s budget=%v", tag, budget), seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinnersBudget(rule, bids, k, budget, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinnersBudget(rule, bids, k, budget, payment, rng)
				})

			runEquiv(t, tag+" psi-vector", seed,
				func(rng *rand.Rand) (Outcome, error) {
					return DetermineWinnersPsiVector(rule, bids, k, psiOf, payment, rng)
				},
				func(rng *rand.Rand) (Outcome, error) {
					return refDetermineWinnersPsiVector(rule, bids, k, psiOf, payment, rng)
				})
		}
	}
}

// TestAuctioneerEquivalenceProperty replays multi-round seeded auctioneer
// streams — the exact shape of an exchange job — against the reference
// dispatch, including the precomputed-score path the exchange uses.
func TestAuctioneerEquivalenceProperty(t *testing.T) {
	rule, err := NewAdditive(0.6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	gen := rand.New(rand.NewSource(42))
	for _, psi := range []float64{1, 0.5} {
		for _, payment := range []PaymentRule{FirstPrice, SecondPrice} {
			cfg := Config{Rule: rule, K: 8, Payment: payment, Psi: psi}
			srcNew, srcRef := newEquivSource(7), newEquivSource(7)
			auctNew, err := NewAuctioneer(cfg, rand.New(srcNew))
			if err != nil {
				t.Fatal(err)
			}
			rngRef := rand.New(srcRef)

			for round := 0; round < 12; round++ {
				n := 1 + gen.Intn(200)
				bids := genEquivSlate(gen, n)
				scores := make([]float64, n)
				for i, b := range bids {
					s, err := Score(rule, b.Qualities, b.Payment)
					if err != nil {
						t.Fatal(err)
					}
					scores[i] = s
				}
				useScored := round%2 == 0
				var got Outcome
				var gotErr error
				if useScored {
					got, gotErr = auctNew.RunScored(bids, scores)
				} else {
					got, gotErr = auctNew.Run(bids)
				}
				var want Outcome
				var wantErr error
				if psi < 1 {
					var pre []float64
					if useScored {
						pre = scores
					}
					want, wantErr = refDetermineWinnersPsi(rule, bids, pre, cfg.K, psi, payment, rngRef)
				} else {
					var pre []float64
					if useScored {
						pre = scores
					}
					want, wantErr = refDetermineWinners(rule, bids, pre, cfg.K, payment, rngRef)
				}
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("round %d: error mismatch: %v vs %v", round, gotErr, wantErr)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("psi=%v pay=%v round %d: outcome mismatch:\nnew: %+v\nref: %+v", psi, payment, round, got, want)
				}
				if srcNew.n != srcRef.n {
					t.Fatalf("psi=%v pay=%v round %d: draw count %d vs %d", psi, payment, round, srcNew.n, srcRef.n)
				}
			}
		}
	}
}

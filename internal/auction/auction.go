package auction

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes an Auctioneer, the aggregator-side orchestration of
// the three incentive steps (bid ask, bid collection, winner determination).
type Config struct {
	// Rule is the public scoring rule broadcast in the bid ask.
	Rule ScoringRule
	// K is the number of winners per round.
	K int
	// Payment selects first- or second-price payments (default FirstPrice).
	Payment PaymentRule
	// Psi is the ψ-FMore admission probability in (0, 1]; 1 (the default)
	// is plain FMore.
	Psi float64
}

func (c *Config) setDefaults() {
	if c.Payment == 0 {
		c.Payment = FirstPrice
	}
	if c.Psi == 0 {
		c.Psi = 1
	}
}

func (c *Config) validate() error {
	if c.Rule == nil {
		return fmt.Errorf("auction: Config.Rule is required")
	}
	if c.K < 1 {
		return fmt.Errorf("auction: Config.K must be >= 1, got %d", c.K)
	}
	if c.Psi <= 0 || c.Psi > 1 || math.IsNaN(c.Psi) {
		return fmt.Errorf("auction: Config.Psi must be in (0, 1], got %v", c.Psi)
	}
	if c.Payment != FirstPrice && c.Payment != SecondPrice {
		return fmt.Errorf("auction: unknown payment rule %v", c.Payment)
	}
	return nil
}

// Auctioneer runs FMore auction rounds for the aggregator. It owns a pooled
// Selector, so a long-lived auctioneer (one per exchange job, one per
// cluster server) runs winner determination with reusable scratch buffers
// round after round. It is not safe for concurrent use; give each goroutine
// its own instance.
type Auctioneer struct {
	cfg Config
	rng *rand.Rand
	sel Selector

	round int
}

// NewAuctioneer validates cfg and returns an Auctioneer using rng for
// tie-breaks and ψ-admission draws.
func NewAuctioneer(cfg Config, rng *rand.Rand) (*Auctioneer, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("auction: rng is required")
	}
	return &Auctioneer{cfg: cfg, rng: rng}, nil
}

// Ask returns the bid ask for the next round: the scoring rule and K. The
// paper notes this message is a few bytes — the rule parameters, not the
// model — so broadcasting it each round is negligible overhead.
func (a *Auctioneer) Ask() Ask {
	return Ask{Rule: a.cfg.Rule, K: a.cfg.K, Round: a.round}
}

// Run executes winner determination over the collected sealed bids and
// advances the round counter. With Psi < 1 it runs ψ-FMore admission. The
// selection runs on the auctioneer's pooled Selector; the returned Outcome
// owns all of its memory and may be retained across rounds.
func (a *Auctioneer) Run(bids []Bid) (Outcome, error) {
	return a.run(bids, nil)
}

// RunScored is Run with precomputed scores: scores[i] must equal
// Score(rule, bids[i].Qualities, bids[i].Payment). It exists for callers
// that batch rule evaluation across many concurrent auctions (see
// internal/exchange); the score slice is read, never retained, so the
// caller may reuse its buffer. The rng draw sequence matches Run exactly,
// so a seeded Auctioneer yields identical outcomes on either entry point.
func (a *Auctioneer) RunScored(bids []Bid, scores []float64) (Outcome, error) {
	if scores == nil {
		a.round++
		return Outcome{}, fmt.Errorf("auction: RunScored requires a score vector")
	}
	return a.run(bids, scores)
}

// RunScoredInto is RunScored with the result deep-copied into buf's pooled
// memory instead of freshly allocated: the returned Outcome aliases buf and
// is valid until buf's next CloneInto or Recycle (see OutcomeBuffer's
// ownership rules). The rng draw sequence is identical to RunScored, so a
// seeded Auctioneer yields bit-identical outcomes on either entry point —
// that equivalence is what lets internal/exchange's pooled round close
// replay against logs written by the allocating path.
func (a *Auctioneer) RunScoredInto(bids []Bid, scores []float64, buf *OutcomeBuffer) (Outcome, error) {
	if scores == nil {
		a.round++
		return Outcome{}, fmt.Errorf("auction: RunScoredInto requires a score vector")
	}
	out, err := a.selectRound(bids, scores)
	if err != nil {
		return Outcome{}, err
	}
	return out.CloneInto(buf), nil
}

// run is the shared round body: one Select on the pooled buffers, then a
// clone so the caller owns the result.
func (a *Auctioneer) run(bids []Bid, scores []float64) (Outcome, error) {
	out, err := a.selectRound(bids, scores)
	if err != nil {
		return Outcome{}, err
	}
	return out.Clone(), nil
}

// selectRound advances the round counter and runs one Select on the pooled
// buffers; the result aliases the selector's scratch. Psi >= 1 maps to the
// plain top-K path (the legacy dispatch), keeping the heap selection on the
// default configuration's hot path.
func (a *Auctioneer) selectRound(bids []Bid, scores []float64) (Outcome, error) {
	a.round++
	psi := a.cfg.Psi
	if psi >= 1 {
		psi = 0
	}
	return a.sel.Select(SelectionRequest{
		Rule:    a.cfg.Rule,
		Bids:    bids,
		Scores:  scores,
		K:       a.cfg.K,
		Psi:     psi,
		Payment: a.cfg.Payment,
	}, a.rng)
}

// Round returns the number of completed auction rounds.
func (a *Auctioneer) Round() int { return a.round }

// Resume restores the completed-round counter, for callers reconstructing
// an auctioneer from a persisted outcome log (see internal/exchange). It
// does not touch the rng; the caller must restore the rng position to match
// the recorded draw count alongside.
func (a *Auctioneer) Resume(round int) { a.round = round }

// Config returns the auctioneer's configuration (rule, K, payment, ψ).
func (a *Auctioneer) Config() Config { return a.cfg }

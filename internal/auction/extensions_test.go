package auction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func budgetBids() []Bid {
	return []Bid{
		{NodeID: 1, Qualities: []float64{0.9}, Payment: 0.50}, // score 0.40
		{NodeID: 2, Qualities: []float64{0.8}, Payment: 0.20}, // score 0.60
		{NodeID: 3, Qualities: []float64{0.7}, Payment: 0.10}, // score 0.60
		{NodeID: 4, Qualities: []float64{0.5}, Payment: 0.05}, // score 0.45
	}
}

func TestDetermineWinnersBudgetRespectsBudget(t *testing.T) {
	rule := simpleRule(t)
	for _, budget := range []float64{0.05, 0.15, 0.3, 1.0} {
		out, err := DetermineWinnersBudget(rule, budgetBids(), 3, budget, FirstPrice, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if got := out.TotalPayment(); got > budget+1e-12 {
			t.Errorf("budget %v: paid %v", budget, got)
		}
	}
}

func TestDetermineWinnersBudgetSkipsExpensiveBids(t *testing.T) {
	rule := simpleRule(t)
	// Budget 0.16: top scorers are nodes 2/3 (0.60 each, paying 0.20/0.10).
	// Node 2 (0.20) exceeds the budget, node 3 fits (remaining 0.06), then
	// node 4 (0.05) fits. Node 1 (0.50) never fits.
	out, err := DetermineWinnersBudget(rule, budgetBids(), 3, 0.16, FirstPrice, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ids := out.WinnerIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Errorf("winners = %v, want [3 4] (greedy skip of too-expensive bids)", ids)
	}
	if math.Abs(out.TotalPayment()-0.15) > 1e-12 {
		t.Errorf("total = %v, want 0.15", out.TotalPayment())
	}
}

func TestDetermineWinnersBudgetGenerousBudgetMatchesPlain(t *testing.T) {
	rule := simpleRule(t)
	plain, err := DetermineWinners(rule, budgetBids(), 3, FirstPrice, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := DetermineWinnersBudget(rule, budgetBids(), 3, 100, FirstPrice, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.WinnerIDs(), budgeted.WinnerIDs()
	if len(a) != len(b) {
		t.Fatalf("winner counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("generous budget changed winners: %v vs %v", a, b)
			break
		}
	}
}

func TestDetermineWinnersBudgetValidation(t *testing.T) {
	rule := simpleRule(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := DetermineWinnersBudget(rule, budgetBids(), 0, 1, FirstPrice, rng); err == nil {
		t.Error("K=0: want error")
	}
	if _, err := DetermineWinnersBudget(rule, budgetBids(), 2, 0, FirstPrice, rng); err == nil {
		t.Error("zero budget: want error")
	}
	if _, err := DetermineWinnersBudget(rule, budgetBids(), 2, math.NaN(), FirstPrice, rng); err == nil {
		t.Error("NaN budget: want error")
	}
	if _, err := DetermineWinnersBudget(rule, nil, 2, 1, FirstPrice, rng); err == nil {
		t.Error("no bids: want error")
	}
}

func TestDetermineWinnersBudgetSecondPriceClamped(t *testing.T) {
	rule := simpleRule(t)
	budget := 0.40
	out, err := DetermineWinnersBudget(rule, budgetBids(), 2, budget, SecondPrice, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.TotalPayment(); got > budget+1e-12 {
		t.Errorf("second-price total %v exceeds budget %v", got, budget)
	}
	for _, w := range out.Winners {
		if w.Payment < w.Bid.Payment-1e-12 {
			t.Errorf("clamping paid node %d below its ask: %v < %v", w.Bid.NodeID, w.Payment, w.Bid.Payment)
		}
	}
}

// Property: the budgeted auction never pays more than the budget and never
// selects more than K, over random pools.
func TestDetermineWinnersBudgetProperty(t *testing.T) {
	rule := simpleRule(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		k := 1 + rng.Intn(6)
		budget := 0.05 + rng.Float64()
		bids := make([]Bid, n)
		for i := range bids {
			bids[i] = Bid{NodeID: i, Qualities: []float64{rng.Float64()}, Payment: rng.Float64() * 0.4}
		}
		out, err := DetermineWinnersBudget(rule, bids, k, budget, FirstPrice, rng)
		if err != nil {
			return false
		}
		return out.TotalPayment() <= budget+1e-9 && len(out.Winners) <= k
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPsiVectorUniformMatchesScalarPsi(t *testing.T) {
	rule := simpleRule(t)
	bids := budgetBids()
	uniform := func(int) float64 { return 0.7 }
	vec, err := DetermineWinnersPsiVector(rule, bids, 2, uniform, FirstPrice, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := DetermineWinnersPsi(rule, bids, 2, 0.7, FirstPrice, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := vec.WinnerIDs(), scalar.WinnerIDs()
	if len(a) != len(b) {
		t.Fatalf("winner counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("uniform psi vector diverged from scalar psi: %v vs %v", a, b)
			break
		}
	}
}

func TestPsiVectorValidation(t *testing.T) {
	rule := simpleRule(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := DetermineWinnersPsiVector(rule, budgetBids(), 2, nil, FirstPrice, rng); err == nil {
		t.Error("nil psiOf: want error")
	}
	bad := func(int) float64 { return 1.5 }
	if _, err := DetermineWinnersPsiVector(rule, budgetBids(), 2, bad, FirstPrice, rng); err == nil {
		t.Error("psi > 1: want error")
	}
	if _, err := DetermineWinnersPsiVector(rule, budgetBids(), 0, func(int) float64 { return 1 }, FirstPrice, rng); err == nil {
		t.Error("K=0: want error")
	}
}

func TestRankPsiDecaysWithRank(t *testing.T) {
	rule := simpleRule(t)
	bids := budgetBids()
	psiOf, err := RankPsi(rule, bids, 0.9, 0.6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Score order: nodes 2/3 tie at 0.60, then 4 (0.45), then 1 (0.40).
	// The top-ranked node gets 0.9; each later rank decays by 0.6.
	top := math.Max(psiOf(2), psiOf(3))
	if math.Abs(top-0.9) > 1e-12 {
		t.Errorf("top psi = %v, want 0.9", top)
	}
	if !(psiOf(1) < psiOf(4) || psiOf(1) == 0.1) {
		t.Errorf("lowest-score node should have smallest psi: psi(1)=%v psi(4)=%v", psiOf(1), psiOf(4))
	}
	for _, id := range []int{1, 2, 3, 4} {
		if p := psiOf(id); p < 0.1-1e-12 || p > 0.9+1e-12 {
			t.Errorf("psi(%d) = %v outside [floor, top]", id, p)
		}
	}
	// Unknown nodes fall back to the floor.
	if p := psiOf(99); p != 0.1 {
		t.Errorf("unknown node psi = %v, want floor 0.1", p)
	}
}

func TestRankPsiValidation(t *testing.T) {
	rule := simpleRule(t)
	if _, err := RankPsi(rule, budgetBids(), 1.5, 0.5, 0.1); err == nil {
		t.Error("top > 1: want error")
	}
	if _, err := RankPsi(rule, budgetBids(), 0.9, 0, 0.1); err == nil {
		t.Error("decay = 0: want error")
	}
	if _, err := RankPsi(rule, budgetBids(), 0.5, 0.5, 0.9); err == nil {
		t.Error("floor > top: want error")
	}
	badBids := []Bid{{NodeID: 1, Qualities: []float64{1, 2}, Payment: 0}}
	if _, err := RankPsi(rule, badBids, 0.9, 0.5, 0.1); err == nil {
		t.Error("bad bid dims: want error")
	}
}

// TestRankPsiSelectionFillsK: the per-node-ψ auction still fills the winner
// set when enough eligible bids exist.
func TestRankPsiSelectionFillsK(t *testing.T) {
	rule := simpleRule(t)
	bids := make([]Bid, 20)
	for i := range bids {
		bids[i] = Bid{NodeID: i, Qualities: []float64{float64(i+1) / 20}, Payment: 0.01}
	}
	psiOf, err := RankPsi(rule, bids, 0.9, 0.9, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		out, err := DetermineWinnersPsiVector(rule, bids, 5, psiOf, FirstPrice, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Winners) != 5 {
			t.Fatalf("seed %d: %d winners, want 5", seed, len(out.Winners))
		}
	}
}

package auction

import (
	"fmt"
	"math"
)

// CostFunction is the private cost c(q₁..qₘ, θ) an edge node incurs to
// provide the quality vector q given its private type θ. The paper assumes
// the single-crossing conditions c_q ≥ 0, c_qθ > 0 and c_qqθ ≥ 0
// (§III-A step 2); VerifySingleCrossing checks them numerically.
type CostFunction interface {
	// Cost returns c(q, θ).
	Cost(q []float64, theta float64) float64
	// Dims returns the number of resource dimensions.
	Dims() int
	// Name identifies the cost family.
	Name() string
}

// ThetaDifferentiable is implemented by cost functions that expose the
// analytic partial derivative ∂c/∂θ, used by Che's Theorem 2 closed-form
// payment. Costs without it fall back to a central finite difference.
type ThetaDifferentiable interface {
	CostThetaDeriv(q []float64, theta float64) float64
}

// CostThetaDeriv returns ∂c/∂θ at (q, θ), analytically when available.
func CostThetaDeriv(c CostFunction, q []float64, theta float64) float64 {
	if td, ok := c.(ThetaDifferentiable); ok {
		return td.CostThetaDeriv(q, theta)
	}
	h := 1e-6 * math.Max(1, math.Abs(theta))
	return (c.Cost(q, theta+h) - c.Cost(q, theta-h)) / (2 * h)
}

// LinearCost is the additive cost c(q, θ) = θ · Σ βᵢqᵢ used by
// Proposition 4's guidance analysis. It satisfies the single-crossing
// conditions with c_qq = 0.
type LinearCost struct {
	Beta []float64
}

var (
	_ CostFunction        = LinearCost{}
	_ ThetaDifferentiable = LinearCost{}
)

// NewLinearCost returns a linear cost with positive coefficients β.
func NewLinearCost(beta ...float64) (LinearCost, error) {
	if err := checkCoefficients(beta); err != nil {
		return LinearCost{}, err
	}
	return LinearCost{Beta: append([]float64(nil), beta...)}, nil
}

// Cost implements CostFunction.
func (l LinearCost) Cost(q []float64, theta float64) float64 {
	s := 0.0
	for i := range l.Beta {
		s += l.Beta[i] * q[i]
	}
	return theta * s
}

// CostThetaDeriv implements ThetaDifferentiable.
func (l LinearCost) CostThetaDeriv(q []float64, _ float64) float64 {
	s := 0.0
	for i := range l.Beta {
		s += l.Beta[i] * q[i]
	}
	return s
}

// Dims implements CostFunction.
func (l LinearCost) Dims() int { return len(l.Beta) }

// Name implements CostFunction.
func (l LinearCost) Name() string { return "linear" }

// QuadraticCost is the strictly convex cost c(q, θ) = θ · Σ βᵢqᵢ², which
// yields interior quality optima under concave scoring rules and satisfies
// the single-crossing conditions with c_qq > 0.
type QuadraticCost struct {
	Beta []float64
}

var (
	_ CostFunction        = QuadraticCost{}
	_ ThetaDifferentiable = QuadraticCost{}
)

// NewQuadraticCost returns a quadratic cost with positive coefficients β.
func NewQuadraticCost(beta ...float64) (QuadraticCost, error) {
	if err := checkCoefficients(beta); err != nil {
		return QuadraticCost{}, err
	}
	return QuadraticCost{Beta: append([]float64(nil), beta...)}, nil
}

// Cost implements CostFunction.
func (c QuadraticCost) Cost(q []float64, theta float64) float64 {
	s := 0.0
	for i := range c.Beta {
		s += c.Beta[i] * q[i] * q[i]
	}
	return theta * s
}

// CostThetaDeriv implements ThetaDifferentiable.
func (c QuadraticCost) CostThetaDeriv(q []float64, _ float64) float64 {
	s := 0.0
	for i := range c.Beta {
		s += c.Beta[i] * q[i] * q[i]
	}
	return s
}

// Dims implements CostFunction.
func (c QuadraticCost) Dims() int { return len(c.Beta) }

// Name implements CostFunction.
func (c QuadraticCost) Name() string { return "quadratic" }

// PowerCost is c(q, θ) = θ · Σ βᵢqᵢ^γ for a common exponent γ ≥ 1, a
// generalization interpolating between LinearCost (γ=1) and QuadraticCost
// (γ=2).
type PowerCost struct {
	Beta  []float64
	Gamma float64
}

var (
	_ CostFunction        = PowerCost{}
	_ ThetaDifferentiable = PowerCost{}
)

// NewPowerCost returns a power cost with exponent gamma >= 1.
func NewPowerCost(gamma float64, beta ...float64) (PowerCost, error) {
	if gamma < 1 || math.IsNaN(gamma) || math.IsInf(gamma, 0) {
		return PowerCost{}, fmt.Errorf("auction: power cost exponent must be >= 1, got %v", gamma)
	}
	if err := checkCoefficients(beta); err != nil {
		return PowerCost{}, err
	}
	return PowerCost{Beta: append([]float64(nil), beta...), Gamma: gamma}, nil
}

// Cost implements CostFunction.
func (c PowerCost) Cost(q []float64, theta float64) float64 {
	s := 0.0
	for i := range c.Beta {
		qi := q[i]
		if qi < 0 {
			qi = 0
		}
		s += c.Beta[i] * math.Pow(qi, c.Gamma)
	}
	return theta * s
}

// CostThetaDeriv implements ThetaDifferentiable.
func (c PowerCost) CostThetaDeriv(q []float64, _ float64) float64 {
	s := 0.0
	for i := range c.Beta {
		qi := q[i]
		if qi < 0 {
			qi = 0
		}
		s += c.Beta[i] * math.Pow(qi, c.Gamma)
	}
	return s
}

// Dims implements CostFunction.
func (c PowerCost) Dims() int { return len(c.Beta) }

// Name implements CostFunction.
func (c PowerCost) Name() string { return fmt.Sprintf("power(%.2g)", c.Gamma) }

// SingleCrossingReport summarizes the numeric verification of the paper's
// single-crossing conditions over a grid.
type SingleCrossingReport struct {
	// CqNonNegative: marginal cost in every quality dimension is >= 0.
	CqNonNegative bool
	// CqThetaPositive: the marginal cost strictly increases with θ.
	CqThetaPositive bool
	// CqqThetaNonNegative: convexity of marginal cost does not decrease in θ.
	CqqThetaNonNegative bool
}

// OK reports whether all three conditions hold on the sampled grid.
func (r SingleCrossingReport) OK() bool {
	return r.CqNonNegative && r.CqThetaPositive && r.CqqThetaNonNegative
}

// VerifySingleCrossing samples c over a quality box and θ interval and checks
// the single-crossing conditions with central finite differences. gridPoints
// controls resolution per axis (min 3).
func VerifySingleCrossing(c CostFunction, qLo, qHi []float64, thetaLo, thetaHi float64, gridPoints int) (SingleCrossingReport, error) {
	if len(qLo) != c.Dims() || len(qHi) != c.Dims() {
		return SingleCrossingReport{}, fmt.Errorf("%w: box %d/%d vs cost %d", ErrDimensionMismatch, len(qLo), len(qHi), c.Dims())
	}
	if gridPoints < 3 {
		gridPoints = 3
	}
	rep := SingleCrossingReport{CqNonNegative: true, CqThetaPositive: true, CqqThetaNonNegative: true}
	const tol = 1e-9
	for d := 0; d < c.Dims(); d++ {
		hq := (qHi[d] - qLo[d]) / float64(gridPoints+1)
		if hq <= 0 {
			return SingleCrossingReport{}, fmt.Errorf("auction: empty quality box in dim %d", d)
		}
		ht := (thetaHi - thetaLo) / float64(gridPoints+1)
		if ht <= 0 {
			return SingleCrossingReport{}, fmt.Errorf("auction: empty theta interval [%v, %v]", thetaLo, thetaHi)
		}
		q := make([]float64, c.Dims())
		for gq := 1; gq <= gridPoints; gq++ {
			for gt := 1; gt <= gridPoints; gt++ {
				for j := range q {
					q[j] = (qLo[j] + qHi[j]) / 2
				}
				q[d] = qLo[d] + float64(gq)*hq
				theta := thetaLo + float64(gt)*ht

				cq := partialQ(c, q, d, theta, hq/4)
				if cq < -tol {
					rep.CqNonNegative = false
				}
				cqLoTheta := partialQ(c, q, d, theta-ht/4, hq/4)
				cqHiTheta := partialQ(c, q, d, theta+ht/4, hq/4)
				if cqHiTheta-cqLoTheta <= tol*math.Max(1, math.Abs(cqLoTheta)) {
					rep.CqThetaPositive = false
				}
				cqqLo := secondQ(c, q, d, theta-ht/4, hq/4)
				cqqHi := secondQ(c, q, d, theta+ht/4, hq/4)
				if cqqHi-cqqLo < -1e-6*math.Max(1, math.Abs(cqqLo)) {
					rep.CqqThetaNonNegative = false
				}
			}
		}
	}
	return rep, nil
}

func partialQ(c CostFunction, q []float64, d int, theta, h float64) float64 {
	qp := append([]float64(nil), q...)
	qm := append([]float64(nil), q...)
	qp[d] += h
	qm[d] -= h
	return (c.Cost(qp, theta) - c.Cost(qm, theta)) / (2 * h)
}

func secondQ(c CostFunction, q []float64, d int, theta, h float64) float64 {
	qp := append([]float64(nil), q...)
	qm := append([]float64(nil), q...)
	qp[d] += h
	qm[d] -= h
	return (c.Cost(qp, theta) - 2*c.Cost(q, theta) + c.Cost(qm, theta)) / (h * h)
}

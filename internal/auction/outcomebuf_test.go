package auction

import (
	"math/rand"
	"reflect"
	"testing"
)

func bufTestBids(n int, seed int64) []Bid {
	rng := rand.New(rand.NewSource(seed))
	bids := make([]Bid, n)
	for i := range bids {
		bids[i] = Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.25*rng.Float64(),
		}
	}
	return bids
}

func bufTestScores(t *testing.T, rule ScoringRule, bids []Bid) []float64 {
	t.Helper()
	scores := make([]float64, len(bids))
	for i, b := range bids {
		s, err := Score(rule, b.Qualities, b.Payment)
		if err != nil {
			t.Fatal(err)
		}
		scores[i] = s
	}
	return scores
}

// TestRunScoredIntoMatchesRunScored pins the pooled entry point against the
// allocating one: identical outcomes AND identical rng draw sequence for a
// seeded auctioneer, across configurations with different draw patterns
// (plain, second-price, ψ-admission). The exchange's WAL replay depends on
// this equivalence.
func TestRunScoredIntoMatchesRunScored(t *testing.T) {
	rule, err := NewAdditive(0.6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]Config{
		"plain":        {Rule: rule, K: 8},
		"second-price": {Rule: rule, K: 8, Payment: SecondPrice},
		"psi":          {Rule: rule, K: 8, Psi: 0.7},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			a1, err := NewAuctioneer(cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			a2, err := NewAuctioneer(cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			var buf OutcomeBuffer
			for round := 0; round < 5; round++ {
				bids := bufTestBids(64, int64(round))
				scores := bufTestScores(t, rule, bids)
				want, err := a1.RunScored(bids, scores)
				if err != nil {
					t.Fatal(err)
				}
				got, err := a2.RunScoredInto(bids, scores, &buf)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: pooled outcome diverges from the owning one", round)
				}
				buf.Recycle()
			}
			if a1.Round() != a2.Round() {
				t.Fatalf("round counters diverged: %d vs %d", a1.Round(), a2.Round())
			}
		})
	}
}

// TestCloneIntoOwnershipRules pins the buffer contract: the clone is
// independent of its source, growth never corrupts an already-issued
// outcome, nil-ness survives, and the generation advances on Recycle.
func TestCloneIntoOwnershipRules(t *testing.T) {
	rule, err := NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var sel Selector
	var buf OutcomeBuffer
	small, err := sel.Select(SelectionRequest{Rule: rule, Bids: bufTestBids(16, 1), K: 4}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	first := small.CloneInto(&buf)
	firstCopy := first.Clone()
	gen := buf.Generation()

	// A bigger outcome forces the buffer to grow; the previously issued
	// outcome must keep reading its (orphaned) old backing intact.
	big, err := sel.Select(SelectionRequest{Rule: rule, Bids: bufTestBids(256, 3), K: 12}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	bigClone := big.Clone()
	got := bigClone.CloneInto(&buf)
	if !reflect.DeepEqual(got, bigClone) {
		t.Fatal("CloneInto result differs from its source")
	}
	if !reflect.DeepEqual(first, firstCopy) {
		t.Fatal("growing the buffer corrupted a previously issued outcome")
	}
	if buf.Generation() != gen {
		t.Fatal("CloneInto must not advance the generation; only Recycle does")
	}
	buf.Recycle()
	if buf.Generation() != gen+1 {
		t.Fatal("Recycle must advance the generation")
	}

	// Nil-ness: a zero-winner ψ outcome keeps nil Winners through CloneInto
	// (reflect.DeepEqual parity with Clone).
	empty := Outcome{Scores: []float64{1, 2}}
	if got := empty.CloneInto(&buf); got.Winners != nil || !reflect.DeepEqual(got, empty.Clone()) {
		t.Fatalf("nil Winners not preserved: %+v", got)
	}
	zero := Outcome{}
	if got := zero.CloneInto(&buf); got.Winners != nil || got.Scores != nil {
		t.Fatalf("zero outcome not preserved: %+v", got)
	}
}

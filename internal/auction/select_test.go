package auction

import (
	"math/rand"
	"strings"
	"testing"
)

func selTestRule(t *testing.T) Additive {
	t.Helper()
	rule, err := NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

func selTestBids(n int, seed int64) []Bid {
	rng := rand.New(rand.NewSource(seed))
	bids := make([]Bid, n)
	for i := range bids {
		bids[i] = Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.3*rng.Float64(),
		}
	}
	return bids
}

// TestSelectorReportsEveryScore is the regression test for the heap path:
// Outcome.Scores must cover every bid of the slate (the HTTP outcome API and
// the persist log expose the full vector), not just the surviving top-K.
func TestSelectorReportsEveryScore(t *testing.T) {
	rule := selTestRule(t)
	bids := selTestBids(100, 3)
	bids[17].Payment = 5 // negative score: excluded from winning, still scored
	var sel Selector
	out, err := sel.Select(SelectionRequest{Rule: rule, Bids: bids, K: 4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 4 {
		t.Fatalf("want 4 winners, got %d", len(out.Winners))
	}
	if len(out.Scores) != len(bids) {
		t.Fatalf("Outcome.Scores covers %d of %d bids", len(out.Scores), len(bids))
	}
	for i, b := range bids {
		want, err := Score(rule, b.Qualities, b.Payment)
		if err != nil {
			t.Fatal(err)
		}
		if out.Scores[i] != want {
			t.Fatalf("Scores[%d] = %v, want %v", i, out.Scores[i], want)
		}
	}
}

// TestSelectorSecondPriceReference exercises the tracked (K+1)-th reference
// score on the heap path: each winner is paid up to s(q) − s_(K+1).
func TestSelectorSecondPriceReference(t *testing.T) {
	rule := selTestRule(t)
	// Values 0.9, 0.8, 0.7, 0.6 with payments 0.1 each: scores 0.8, 0.7,
	// 0.6, 0.5; with K=2 the reference is the 3rd score 0.6.
	bids := []Bid{
		{NodeID: 0, Qualities: []float64{0.9, 0.9}, Payment: 0.1},
		{NodeID: 1, Qualities: []float64{0.8, 0.8}, Payment: 0.1},
		{NodeID: 2, Qualities: []float64{0.7, 0.7}, Payment: 0.1},
		{NodeID: 3, Qualities: []float64{0.6, 0.6}, Payment: 0.1},
	}
	var sel Selector
	out, err := sel.Select(SelectionRequest{Rule: rule, Bids: bids, K: 2, Payment: SecondPrice}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ids := out.Winners; len(ids) != 2 || ids[0].Bid.NodeID != 0 || ids[1].Bid.NodeID != 1 {
		t.Fatalf("unexpected winners %+v", out.Winners)
	}
	// p' = s(q) − ref: 0.9 − 0.6 = 0.3 and 0.8 − 0.6 = 0.2.
	if p := out.Winners[0].Payment; !almostEq(p, 0.3) {
		t.Fatalf("winner 0 payment %v, want 0.3", p)
	}
	if p := out.Winners[1].Payment; !almostEq(p, 0.2) {
		t.Fatalf("winner 1 payment %v, want 0.2", p)
	}

	// With K >= N there is no reference: degenerates to first-price.
	out, err = sel.Select(SelectionRequest{Rule: rule, Bids: bids, K: 8, Payment: SecondPrice}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range out.Winners {
		if w.Payment != w.Bid.Payment {
			t.Fatalf("no-reference second price must pay the ask, got %v for %v", w.Payment, w.Bid.Payment)
		}
	}

	// A negative (K+1)-th score is floored at zero (aggregator IR): winners
	// can be raised to their full value but no further.
	bids[3].Payment = 2 // score 0.6 − 2 < 0
	out, err = sel.Select(SelectionRequest{Rule: rule, Bids: bids, K: 3, Payment: SecondPrice}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 3 {
		t.Fatalf("want 3 winners, got %d", len(out.Winners))
	}
	if p := out.Winners[0].Payment; !almostEq(p, 0.9) {
		t.Fatalf("floored reference should raise payment to s(q) = 0.9, got %v", p)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestSelectorBufferReuse verifies the documented aliasing contract: the
// outcome is rewritten in place by the next Select on the same Selector, and
// Clone decouples it.
func TestSelectorBufferReuse(t *testing.T) {
	rule := selTestRule(t)
	var sel Selector
	first, err := sel.Select(SelectionRequest{Rule: rule, Bids: selTestBids(64, 1), K: 8}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	kept := first.Clone()
	second, err := sel.Select(SelectionRequest{Rule: rule, Bids: selTestBids(64, 2), K: 8}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if &first.Scores[0] != &second.Scores[0] {
		t.Fatal("expected the second Select to reuse the pooled score buffer")
	}
	if &kept.Scores[0] == &first.Scores[0] {
		t.Fatal("Clone must not alias the pooled score buffer")
	}
	for i := range kept.Winners {
		if &kept.Winners[i].Bid.Qualities[0] == &first.Winners[i].Bid.Qualities[0] {
			t.Fatal("Clone must deep-copy winner qualities")
		}
	}
}

// TestSelectorZeroAllocSteadyState locks in the acceptance criterion: once
// the buffers are warm, one Select on the deterministic top-K path performs
// zero allocations.
func TestSelectorZeroAllocSteadyState(t *testing.T) {
	rule := selTestRule(t)
	bids := selTestBids(512, 9)
	var sel Selector
	rng := rand.New(rand.NewSource(1))
	req := SelectionRequest{Rule: rule, Bids: bids, K: 8, Payment: SecondPrice}
	if _, err := sel.Select(req, rng); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sel.Select(req, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Select allocates %v objects per run, want 0", allocs)
	}

	// The ψ and budget walks share the pooled buffers too.
	for name, req := range map[string]SelectionRequest{
		"psi":    {Rule: rule, Bids: bids, K: 8, Psi: 0.5},
		"budget": {Rule: rule, Bids: bids, K: 8, Budget: 1.5},
	} {
		req := req
		if _, err := sel.Select(req, rng); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := sel.Select(req, rng); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state %s Select allocates %v objects per run, want 0", name, allocs)
		}
	}
}

// TestSelectRequestValidation covers the new-API combination checks the
// legacy wrappers can never reach.
func TestSelectRequestValidation(t *testing.T) {
	rule := selTestRule(t)
	bids := selTestBids(4, 1)
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		req  SelectionRequest
		want string
	}{
		{"k", SelectionRequest{Rule: rule, Bids: bids}, "K must be >= 1"},
		{"psi", SelectionRequest{Rule: rule, Bids: bids, K: 2, Psi: 1.5}, "psi must be in (0, 1]"},
		{"budget", SelectionRequest{Rule: rule, Bids: bids, K: 2, Budget: -1}, "budget must be positive"},
		{"psi+psiOf", SelectionRequest{Rule: rule, Bids: bids, K: 2, Psi: 0.5, PsiOf: func(int) float64 { return 1 }}, "mutually exclusive"},
		{"budget+psi", SelectionRequest{Rule: rule, Bids: bids, K: 2, Psi: 0.5, Budget: 1}, "cannot be combined"},
		{"no bids", SelectionRequest{Rule: rule, K: 2}, "no bids"},
		{"scores len", SelectionRequest{Rule: rule, Bids: bids, Scores: []float64{1}, K: 2}, "precomputed scores"},
	}
	for _, tc := range cases {
		if _, err := Select(tc.req, rng); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

// TestSelectOwnsItsMemory verifies the package-level Select decouples from
// both the throwaway selector and the caller's bid slate.
func TestSelectOwnsItsMemory(t *testing.T) {
	rule := selTestRule(t)
	bids := selTestBids(16, 5)
	out, err := Select(SelectionRequest{Rule: rule, Bids: bids, K: 4}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	winner0 := out.Winners[0].Bid.NodeID
	q0 := out.Winners[0].Bid.Qualities[0]
	bids[winner0].Qualities[0] = -99 // caller mutates its slate afterwards
	if out.Winners[0].Bid.Qualities[0] != q0 {
		t.Fatal("Select outcome must not alias the caller's bid qualities")
	}
}

// Package data provides the dataset substrate for the FMore reproduction.
//
// The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and the HuffPost
// news-category corpus. None of those are shippable in an offline,
// stdlib-only module, so this package generates synthetic stand-ins with the
// same task shape (10-class image classification at three difficulty tiers,
// plus a 10-class token-sequence task) and the same difficulty ordering:
// MNIST-O < MNIST-F < CIFAR-10, with HPNews as the text task. Difficulty is
// controlled by prototype similarity, noise level, and random translations.
//
// It also implements the non-IID partitioning of training data across edge
// nodes (shard-based as in McMahan et al., and Dirichlet), which produces
// exactly the two resource dimensions the paper's simulator bids with: data
// size q₁ and data-category proportion q₂.
package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fmore/internal/ml"
)

// TaskKind identifies one of the paper's four workloads.
type TaskKind int

const (
	// MNISTO stands in for MNIST: well-separated digit-like prototypes.
	MNISTO TaskKind = iota + 1
	// MNISTF stands in for Fashion-MNIST: closer prototypes, more noise.
	MNISTF
	// CIFAR10 stands in for CIFAR-10: 3-channel, translated, noisy.
	CIFAR10
	// HPNews stands in for the HuffPost headlines corpus: 10-topic token
	// sequences.
	HPNews
)

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	switch k {
	case MNISTO:
		return "mnist-o"
	case MNISTF:
		return "mnist-f"
	case CIFAR10:
		return "cifar-10"
	case HPNews:
		return "hpnews"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// IsImage reports whether the task uses image features (vs token sequences).
func (k TaskKind) IsImage() bool { return k != HPNews }

// Task dimensions shared by generators and model constructors.
const (
	// ImageSize is the height and width of synthetic images.
	ImageSize = 12
	// NumClasses is the class count of every task, matching the paper.
	NumClasses = 10
	// TextVocab is the token id space of the synthetic news corpus.
	TextVocab = 48
	// TextSeqLen is the length of each synthetic headline.
	TextSeqLen = 10
)

// Corpus is a generated dataset split into train and test sets.
type Corpus struct {
	Kind  TaskKind
	Train []ml.Sample
	Test  []ml.Sample
	// Classes is the label arity (always NumClasses for built-in tasks).
	Classes int
	// FeatureDim is the per-sample feature length for image tasks (0 for
	// text).
	FeatureDim int
}

// imageTaskSpec are the difficulty knobs per tier.
type imageTaskSpec struct {
	channels    int
	noise       float64 // additive Gaussian noise σ
	shared      float64 // fraction of a class-agnostic shared pattern
	maxShift    int     // random translation in pixels
	protoSmooth int     // box-blur passes over prototypes (spatial structure)
}

func specFor(kind TaskKind) (imageTaskSpec, error) {
	switch kind {
	case MNISTO:
		return imageTaskSpec{channels: 1, noise: 0.85, shared: 0.35, maxShift: 0, protoSmooth: 2}, nil
	case MNISTF:
		return imageTaskSpec{channels: 1, noise: 0.95, shared: 0.45, maxShift: 1, protoSmooth: 2}, nil
	case CIFAR10:
		return imageTaskSpec{channels: 3, noise: 1.0, shared: 0.5, maxShift: 2, protoSmooth: 1}, nil
	default:
		return imageTaskSpec{}, fmt.Errorf("data: %v is not an image task", kind)
	}
}

// GenerateTask produces the synthetic corpus for the given workload.
func GenerateTask(kind TaskKind, trainN, testN int, seed int64) (*Corpus, error) {
	if trainN < NumClasses || testN < NumClasses {
		return nil, fmt.Errorf("data: need at least %d train and test samples, got %d/%d", NumClasses, trainN, testN)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case MNISTO, MNISTF, CIFAR10:
		return generateImages(kind, trainN, testN, rng)
	case HPNews:
		return generateText(trainN, testN, rng)
	default:
		return nil, fmt.Errorf("data: unknown task %v", kind)
	}
}

func generateImages(kind TaskKind, trainN, testN int, rng *rand.Rand) (*Corpus, error) {
	spec, err := specFor(kind)
	if err != nil {
		return nil, err
	}
	dim := spec.channels * ImageSize * ImageSize
	// Class prototypes: smooth random fields, partially blended with one
	// shared background field so classes overlap (raising difficulty).
	shared := smoothField(dim, spec.protoSmooth, spec.channels, rng)
	protos := make([][]float64, NumClasses)
	for c := range protos {
		own := smoothField(dim, spec.protoSmooth, spec.channels, rng)
		p := make([]float64, dim)
		for d := range p {
			p[d] = (1-spec.shared)*own[d] + spec.shared*shared[d]
		}
		protos[c] = p
	}
	mk := func(n int) []ml.Sample {
		out := make([]ml.Sample, n)
		for i := range out {
			c := i % NumClasses
			x := make([]float64, dim)
			src := protos[c]
			if spec.maxShift > 0 {
				src = shift(src, spec.channels, rng.Intn(2*spec.maxShift+1)-spec.maxShift, rng.Intn(2*spec.maxShift+1)-spec.maxShift)
			}
			for d := range x {
				x[d] = src[d] + rng.NormFloat64()*spec.noise
			}
			out[i] = ml.Sample{Features: x, Label: c}
		}
		rng.Shuffle(n, func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	return &Corpus{
		Kind:       kind,
		Train:      mk(trainN),
		Test:       mk(testN),
		Classes:    NumClasses,
		FeatureDim: dim,
	}, nil
}

// smoothField samples a zero-mean random field with spatial correlation, per
// channel, by box-blurring white noise.
func smoothField(dim, passes, channels int, rng *rand.Rand) []float64 {
	f := make([]float64, dim)
	for d := range f {
		f[d] = rng.NormFloat64()
	}
	per := ImageSize * ImageSize
	for p := 0; p < passes; p++ {
		for c := 0; c < channels; c++ {
			blurChannel(f[c*per : (c+1)*per])
		}
	}
	// Renormalize to unit variance so difficulty knobs stay comparable.
	var sumSq float64
	for _, v := range f {
		sumSq += v * v
	}
	if sumSq > 0 {
		scale := math.Sqrt(float64(dim) / sumSq)
		for d := range f {
			f[d] *= scale
		}
	}
	return f
}

// blurChannel applies one 3×3 box blur in place over an ImageSize² plane.
func blurChannel(p []float64) {
	out := make([]float64, len(p))
	for h := 0; h < ImageSize; h++ {
		for w := 0; w < ImageSize; w++ {
			sum, cnt := 0.0, 0
			for dh := -1; dh <= 1; dh++ {
				for dw := -1; dw <= 1; dw++ {
					hh, ww := h+dh, w+dw
					if hh < 0 || hh >= ImageSize || ww < 0 || ww >= ImageSize {
						continue
					}
					sum += p[hh*ImageSize+ww]
					cnt++
				}
			}
			out[h*ImageSize+w] = sum / float64(cnt)
		}
	}
	copy(p, out)
}

// shift translates each channel plane by (dh, dw), zero-filling exposed
// borders.
func shift(src []float64, channels, dh, dw int) []float64 {
	out := make([]float64, len(src))
	per := ImageSize * ImageSize
	for c := 0; c < channels; c++ {
		for h := 0; h < ImageSize; h++ {
			for w := 0; w < ImageSize; w++ {
				sh, sw := h-dh, w-dw
				if sh < 0 || sh >= ImageSize || sw < 0 || sw >= ImageSize {
					continue
				}
				out[c*per+h*ImageSize+w] = src[c*per+sh*ImageSize+sw]
			}
		}
	}
	return out
}

// generateText builds the HPNews stand-in: each class (topic) has a
// characteristic token distribution; headlines mix topic tokens with common
// filler tokens.
func generateText(trainN, testN int, rng *rand.Rand) (*Corpus, error) {
	// Each topic owns a band of tokens; fillers are drawn from the top of
	// the vocab range and shared by all topics.
	const topicTokens = 3
	const fillerStart = NumClasses * topicTokens // 30..47 are fillers
	if fillerStart >= TextVocab {
		return nil, errors.New("data: vocabulary too small for topic bands")
	}
	mk := func(n int) []ml.Sample {
		out := make([]ml.Sample, n)
		for i := range out {
			c := i % NumClasses
			toks := make([]int, TextSeqLen)
			for j := range toks {
				switch {
				case rng.Float64() < 0.42:
					toks[j] = c*topicTokens + rng.Intn(topicTokens)
				case rng.Float64() < 0.45:
					// Confuser: token from a random other topic.
					other := rng.Intn(NumClasses)
					toks[j] = other*topicTokens + rng.Intn(topicTokens)
				default:
					toks[j] = fillerStart + rng.Intn(TextVocab-fillerStart)
				}
			}
			out[i] = ml.Sample{Tokens: toks, Label: c}
		}
		rng.Shuffle(n, func(a, b int) { out[a], out[b] = out[b], out[a] })
		return out
	}
	return &Corpus{
		Kind:    HPNews,
		Train:   mk(trainN),
		Test:    mk(testN),
		Classes: NumClasses,
	}, nil
}

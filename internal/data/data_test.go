package data

import (
	"math/rand"
	"testing"

	"fmore/internal/ml"
)

func TestGenerateTaskShapes(t *testing.T) {
	cases := []struct {
		kind    TaskKind
		wantDim int
		isImage bool
	}{
		{MNISTO, 1 * ImageSize * ImageSize, true},
		{MNISTF, 1 * ImageSize * ImageSize, true},
		{CIFAR10, 3 * ImageSize * ImageSize, true},
		{HPNews, 0, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kind.String(), func(t *testing.T) {
			corpus, err := GenerateTask(c.kind, 200, 100, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(corpus.Train) != 200 || len(corpus.Test) != 100 {
				t.Fatalf("sizes %d/%d, want 200/100", len(corpus.Train), len(corpus.Test))
			}
			if corpus.Classes != NumClasses {
				t.Errorf("Classes = %d, want %d", corpus.Classes, NumClasses)
			}
			if corpus.FeatureDim != c.wantDim {
				t.Errorf("FeatureDim = %d, want %d", corpus.FeatureDim, c.wantDim)
			}
			if c.kind.IsImage() != c.isImage {
				t.Errorf("IsImage = %v, want %v", c.kind.IsImage(), c.isImage)
			}
			labels := map[int]int{}
			for _, s := range corpus.Train {
				if c.isImage {
					if len(s.Features) != c.wantDim {
						t.Fatalf("feature len %d, want %d", len(s.Features), c.wantDim)
					}
				} else {
					if len(s.Tokens) != TextSeqLen {
						t.Fatalf("token len %d, want %d", len(s.Tokens), TextSeqLen)
					}
					for _, tok := range s.Tokens {
						if tok < 0 || tok >= TextVocab {
							t.Fatalf("token %d outside vocab", tok)
						}
					}
				}
				if s.Label < 0 || s.Label >= NumClasses {
					t.Fatalf("label %d outside range", s.Label)
				}
				labels[s.Label]++
			}
			if len(labels) != NumClasses {
				t.Errorf("train set covers %d classes, want %d", len(labels), NumClasses)
			}
		})
	}
}

func TestGenerateTaskErrors(t *testing.T) {
	if _, err := GenerateTask(MNISTO, 5, 100, 1); err == nil {
		t.Error("tiny train set: want error")
	}
	if _, err := GenerateTask(TaskKind(99), 100, 100, 1); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestGenerateTaskDeterministic(t *testing.T) {
	a, err := GenerateTask(CIFAR10, 50, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTask(CIFAR10, 50, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if a.Train[i].Label != b.Train[i].Label {
			t.Fatal("same seed produced different labels")
		}
		for d := range a.Train[i].Features {
			if a.Train[i].Features[d] != b.Train[i].Features[d] {
				t.Fatal("same seed produced different features")
			}
		}
	}
}

// TestDifficultyOrdering trains the same small model on each image tier and
// checks the paper's ordering: MNIST-O easiest, CIFAR-10 hardest.
func TestDifficultyOrdering(t *testing.T) {
	accOf := func(kind TaskKind) float64 {
		corpus, err := GenerateTask(kind, 400, 200, 11)
		if err != nil {
			t.Fatal(err)
		}
		ch := 1
		if kind == CIFAR10 {
			ch = 3
		}
		m, err := ml.NewImageCNN(ml.ImageModelConfig{
			Channels: ch, Height: ImageSize, Width: ImageSize, Classes: NumClasses,
			ConvChannels: []int{6}, Hidden: 24, DropoutRate: 0, Momentum: 0.9,
		}, rand.New(rand.NewSource(13)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(14))
		for epoch := 0; epoch < 4; epoch++ {
			if _, err := m.TrainEpoch(corpus.Train, 16, 0.02, rng); err != nil {
				t.Fatal(err)
			}
		}
		_, acc, err := m.Evaluate(corpus.Test)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	easy, mid, hard := accOf(MNISTO), accOf(MNISTF), accOf(CIFAR10)
	t.Logf("accuracy after 4 epochs: mnist-o=%.3f mnist-f=%.3f cifar=%.3f", easy, mid, hard)
	if easy < mid-0.05 {
		t.Errorf("MNIST-O (%.3f) should be no harder than MNIST-F (%.3f)", easy, mid)
	}
	if mid < hard-0.05 {
		t.Errorf("MNIST-F (%.3f) should be no harder than CIFAR-10 (%.3f)", mid, hard)
	}
	if easy < 0.6 {
		t.Errorf("MNIST-O accuracy %.3f too low; generator may be broken", easy)
	}
}

func TestPartitionShardsInvariants(t *testing.T) {
	corpus, err := GenerateTask(MNISTO, 400, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionShards(corpus.Train, NumClasses, 20, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 20 {
		t.Fatalf("nodes = %d, want 20", len(p.Nodes))
	}
	// No sample lost or duplicated.
	if p.TotalSamples() != len(corpus.Train) {
		t.Errorf("total = %d, want %d", p.TotalSamples(), len(corpus.Train))
	}
	// Shard partition limits per-node label diversity: with 2 shards a node
	// sees at most a handful of classes.
	for i := range p.Nodes {
		if prop := p.CategoryProportion(i); prop > 0.5 {
			t.Errorf("node %d category proportion %v; shards should limit diversity", i, prop)
		}
		if p.NodeSize(i) == 0 {
			t.Errorf("node %d received no data", i)
		}
	}
}

func TestPartitionDirichletInvariants(t *testing.T) {
	corpus, err := GenerateTask(MNISTO, 500, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionDirichlet(corpus.Train, NumClasses, 10, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() != len(corpus.Train) {
		t.Errorf("total = %d, want %d", p.TotalSamples(), len(corpus.Train))
	}
	// Severe skew (alpha=0.5) should leave at least one node without full
	// class coverage.
	full := 0
	for i := range p.Nodes {
		if p.CategoryProportion(i) == 1 {
			full++
		}
	}
	if full == len(p.Nodes) {
		t.Error("alpha=0.5 should produce label skew, but every node has all classes")
	}
}

func TestPartitionDirichletAlphaControlsSkew(t *testing.T) {
	corpus, err := GenerateTask(MNISTO, 1000, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	meanProp := func(alpha float64) float64 {
		p, err := PartitionDirichlet(corpus.Train, NumClasses, 10, alpha, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := range p.Nodes {
			sum += p.CategoryProportion(i)
		}
		return sum / float64(len(p.Nodes))
	}
	skewed := meanProp(0.1)
	iid := meanProp(100)
	if skewed >= iid {
		t.Errorf("category coverage at alpha=0.1 (%v) should be below alpha=100 (%v)", skewed, iid)
	}
}

func TestPartitionHeterogeneous(t *testing.T) {
	corpus, err := GenerateTask(MNISTF, 600, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	const nodes, minSize, maxSize = 25, 20, 120
	p, err := PartitionHeterogeneous(corpus.Train, NumClasses, nodes, minSize, maxSize, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	sawSmall, sawLarge := false, false
	for i := 0; i < nodes; i++ {
		size := p.NodeSize(i)
		if size < minSize || size > maxSize {
			t.Errorf("node %d size %d outside [%d, %d]", i, size, minSize, maxSize)
		}
		if size < minSize+(maxSize-minSize)/4 {
			sawSmall = true
		}
		if size > maxSize-(maxSize-minSize)/4 {
			sawLarge = true
		}
		if prop := p.CategoryProportion(i); prop <= 0 || prop > 1 {
			t.Errorf("node %d category proportion %v outside (0, 1]", i, prop)
		}
	}
	if !sawSmall || !sawLarge {
		t.Error("heterogeneous partition should produce a wide size spread")
	}
}

func TestPartitionErrors(t *testing.T) {
	corpus, err := GenerateTask(MNISTO, 100, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := PartitionShards(corpus.Train, NumClasses, 0, 1, rng); err == nil {
		t.Error("zero nodes: want error")
	}
	if _, err := PartitionShards(corpus.Train, NumClasses, 200, 2, rng); err == nil {
		t.Error("more shards than samples: want error")
	}
	if _, err := PartitionDirichlet(corpus.Train, NumClasses, 5, 0, rng); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := PartitionDirichlet(nil, NumClasses, 5, 1, rng); err == nil {
		t.Error("no samples: want error")
	}
	if _, err := PartitionHeterogeneous(corpus.Train, NumClasses, 5, 10, 5, 1, rng); err == nil {
		t.Error("maxSize < minSize: want error")
	}
	if _, err := PartitionHeterogeneous(corpus.Train, NumClasses, 5, 10, 20, 99, rng); err == nil {
		t.Error("minClasses > classes: want error")
	}
	bad := []ml.Sample{{Features: []float64{1}, Label: 99}}
	if _, err := PartitionDirichlet(bad, NumClasses, 5, 1, rng); err == nil {
		t.Error("out-of-range label: want error")
	}
	if _, err := PartitionHeterogeneous(bad, NumClasses, 5, 1, 2, 1, rng); err == nil {
		t.Error("out-of-range label: want error")
	}
}

func TestDirichletSamplesAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, alpha := range []float64{0.1, 1, 10} {
		w := dirichlet(8, alpha, rng)
		sum := 0.0
		for _, v := range w {
			if v < 0 {
				t.Fatalf("alpha=%v: negative weight %v", alpha, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("alpha=%v: weights sum to %v", alpha, sum)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	if MNISTO.String() != "mnist-o" || HPNews.String() != "hpnews" {
		t.Error("TaskKind.String mismatch")
	}
	if TaskKind(42).String() == "" {
		t.Error("unknown kind should still format")
	}
}

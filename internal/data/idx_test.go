package data

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeIDX writes a synthetic IDX file for tests.
func writeIDX(t *testing.T, path string, elemType byte, dims []int, payload []byte) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, elemType, byte(len(dims))})
	for _, d := range dims {
		if err := binary.Write(&buf, binary.BigEndian, uint32(d)); err != nil {
			t.Fatal(err)
		}
	}
	buf.Write(payload)
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIDXImagesAndLabels(t *testing.T) {
	dir := t.TempDir()
	imgPath := filepath.Join(dir, "images")
	lblPath := filepath.Join(dir, "labels")

	// Two 2x3 images.
	writeIDX(t, imgPath, idxMagicUByte, []int{2, 2, 3}, []byte{
		0, 51, 102, 153, 204, 255,
		255, 204, 153, 102, 51, 0,
	})
	writeIDX(t, lblPath, idxMagicUByte, []int{2}, []byte{3, 7})

	features, h, w, err := LoadIDXImages(imgPath)
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 || w != 3 || len(features) != 2 {
		t.Fatalf("got %d images of %dx%d, want 2 of 2x3", len(features), h, w)
	}
	if features[0][0] != 0 || features[0][5] != 1 {
		t.Errorf("pixel scaling wrong: %v", features[0])
	}
	if got := features[1][0]; got != 1 {
		t.Errorf("second image first pixel = %v, want 1", got)
	}

	labels, err := LoadIDXLabels(lblPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != 3 || labels[1] != 7 {
		t.Errorf("labels = %v, want [3 7]", labels)
	}
}

func TestLoadIDXCorpus(t *testing.T) {
	dir := t.TempDir()
	paths := IDXPaths{
		TrainImages: filepath.Join(dir, "train-img"),
		TrainLabels: filepath.Join(dir, "train-lbl"),
		TestImages:  filepath.Join(dir, "test-img"),
		TestLabels:  filepath.Join(dir, "test-lbl"),
	}
	mk := func(imgPath, lblPath string, n int) {
		img := make([]byte, n*4)
		lbl := make([]byte, n)
		for i := range lbl {
			lbl[i] = byte(i % NumClasses)
			for j := 0; j < 4; j++ {
				img[i*4+j] = byte(i + j)
			}
		}
		writeIDX(t, imgPath, idxMagicUByte, []int{n, 2, 2}, img)
		writeIDX(t, lblPath, idxMagicUByte, []int{n}, lbl)
	}
	mk(paths.TrainImages, paths.TrainLabels, 12)
	mk(paths.TestImages, paths.TestLabels, 5)

	corpus, err := LoadIDXCorpus(paths, MNISTO)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Train) != 12 || len(corpus.Test) != 5 {
		t.Fatalf("sizes %d/%d, want 12/5", len(corpus.Train), len(corpus.Test))
	}
	if corpus.FeatureDim != 4 {
		t.Errorf("FeatureDim = %d, want 4", corpus.FeatureDim)
	}
	if corpus.Kind != MNISTO {
		t.Errorf("Kind = %v", corpus.Kind)
	}
}

func TestLoadIDXCorpusRejectsTextTask(t *testing.T) {
	if _, err := LoadIDXCorpus(IDXPaths{}, HPNews); err == nil {
		t.Error("text task: want error")
	}
}

func TestLoadIDXErrors(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")

	// Missing file.
	if _, _, _, err := LoadIDXImages(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file: want error")
	}
	// Bad magic prefix.
	if err := os.WriteFile(p, []byte{1, 2, 3, 4, 5}, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDXLabels(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("bad magic: got %v, want ErrIDXFormat", err)
	}
	// Unsupported element type (float 0x0D).
	writeIDX(t, p, 0x0D, []int{1}, []byte{0, 0, 0, 0})
	if _, err := LoadIDXLabels(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("bad elem type: got %v, want ErrIDXFormat", err)
	}
	// Truncated payload.
	writeIDX(t, p, idxMagicUByte, []int{10}, []byte{1, 2})
	if _, err := LoadIDXLabels(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("truncated: got %v, want ErrIDXFormat", err)
	}
	// Wrong dimensionality for images.
	writeIDX(t, p, idxMagicUByte, []int{2, 2}, []byte{1, 2, 3, 4})
	if _, _, _, err := LoadIDXImages(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("2-dim images: got %v, want ErrIDXFormat", err)
	}
	// Wrong dimensionality for labels.
	writeIDX(t, p, idxMagicUByte, []int{2, 2}, []byte{1, 2, 3, 4})
	if _, err := LoadIDXLabels(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("2-dim labels: got %v, want ErrIDXFormat", err)
	}
	// Implausible dimension (overflow guard).
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, idxMagicUByte, 2})
	if err := binary.Write(&buf, binary.BigEndian, uint32(1<<31-1)); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, binary.BigEndian, uint32(1<<31-1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDXLabels(p); !errors.Is(err, ErrIDXFormat) {
		t.Errorf("huge dims: got %v, want ErrIDXFormat", err)
	}
}

func TestLoadIDXCorpusMismatchedCounts(t *testing.T) {
	dir := t.TempDir()
	paths := IDXPaths{
		TrainImages: filepath.Join(dir, "ti"),
		TrainLabels: filepath.Join(dir, "tl"),
		TestImages:  filepath.Join(dir, "si"),
		TestLabels:  filepath.Join(dir, "sl"),
	}
	writeIDX(t, paths.TrainImages, idxMagicUByte, []int{2, 2, 2}, make([]byte, 8))
	writeIDX(t, paths.TrainLabels, idxMagicUByte, []int{3}, []byte{0, 1, 2}) // mismatch
	writeIDX(t, paths.TestImages, idxMagicUByte, []int{1, 2, 2}, make([]byte, 4))
	writeIDX(t, paths.TestLabels, idxMagicUByte, []int{1}, []byte{0})
	if _, err := LoadIDXCorpus(paths, MNISTO); err == nil {
		t.Error("mismatched counts: want error")
	}
}

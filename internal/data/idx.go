package data

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"fmore/internal/ml"
)

// This file loads datasets in the IDX format used by the real MNIST and
// Fashion-MNIST distributions (http://yann.lecun.com/exdb/mnist/). The
// reproduction ships synthetic stand-ins because the module is offline, but
// a user holding the actual files can run the paper's true workloads:
//
//	corpus, err := data.LoadIDXCorpus(data.IDXPaths{
//		TrainImages: "train-images-idx3-ubyte",
//		TrainLabels: "train-labels-idx1-ubyte",
//		TestImages:  "t10k-images-idx3-ubyte",
//		TestLabels:  "t10k-labels-idx1-ubyte",
//	}, data.MNISTO)
//
// Pixels are scaled to [0, 1] and kept at native resolution; models accept
// any height/width via ml.ImageModelConfig.

const (
	idxMagicUByte = 0x08
	idxMaxDims    = 4
	// idxMaxElements caps allocations against corrupt headers (enough for
	// MNIST-scale files: 60000 × 28 × 28 ≈ 47M).
	idxMaxElements = 1 << 27
)

// ErrIDXFormat reports a malformed IDX file.
var ErrIDXFormat = errors.New("data: malformed IDX file")

// readIDX parses one IDX file: magic (0x00 0x00 type dims), big-endian
// dimension sizes, then raw unsigned bytes.
func readIDX(r io.Reader) (dims []int, payload []byte, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("%w: reading magic: %v", ErrIDXFormat, err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, nil, fmt.Errorf("%w: bad magic prefix %x", ErrIDXFormat, magic)
	}
	if magic[2] != idxMagicUByte {
		return nil, nil, fmt.Errorf("%w: element type 0x%02x unsupported (want unsigned byte 0x08)", ErrIDXFormat, magic[2])
	}
	nDims := int(magic[3])
	if nDims < 1 || nDims > idxMaxDims {
		return nil, nil, fmt.Errorf("%w: %d dimensions unsupported", ErrIDXFormat, nDims)
	}
	dims = make([]int, nDims)
	total := 1
	for i := 0; i < nDims; i++ {
		var sz uint32
		if err := binary.Read(r, binary.BigEndian, &sz); err != nil {
			return nil, nil, fmt.Errorf("%w: reading dimension %d: %v", ErrIDXFormat, i, err)
		}
		dims[i] = int(sz)
		if dims[i] <= 0 || total > idxMaxElements/maxInt(dims[i], 1) {
			return nil, nil, fmt.Errorf("%w: implausible dimension %d = %d", ErrIDXFormat, i, dims[i])
		}
		total *= dims[i]
	}
	payload = make([]byte, total)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, fmt.Errorf("%w: reading %d payload bytes: %v", ErrIDXFormat, total, err)
	}
	return dims, payload, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LoadIDXImages reads an idx3-ubyte image file into per-sample [0, 1]
// feature vectors, returning the image height and width.
func LoadIDXImages(path string) (features [][]float64, h, w int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close() //nolint:errcheck // read-only

	dims, payload, err := readIDX(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	if len(dims) != 3 {
		return nil, 0, 0, fmt.Errorf("%s: %w: want 3 dims (n, h, w), got %d", path, ErrIDXFormat, len(dims))
	}
	n, h, w := dims[0], dims[1], dims[2]
	per := h * w
	features = make([][]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, per)
		row := payload[i*per : (i+1)*per]
		for j, b := range row {
			x[j] = float64(b) / 255
		}
		features[i] = x
	}
	return features, h, w, nil
}

// LoadIDXLabels reads an idx1-ubyte label file.
func LoadIDXLabels(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // read-only

	dims, payload, err := readIDX(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(dims) != 1 {
		return nil, fmt.Errorf("%s: %w: want 1 dim, got %d", path, ErrIDXFormat, len(dims))
	}
	labels := make([]int, dims[0])
	for i, b := range payload {
		labels[i] = int(b)
	}
	return labels, nil
}

// IDXPaths names the four files of a standard MNIST-layout distribution.
type IDXPaths struct {
	TrainImages, TrainLabels string
	TestImages, TestLabels   string
}

// LoadIDXCorpus assembles a Corpus from real IDX files, tagged with the
// given task kind so the experiment harness treats it like the matching
// synthetic workload.
func LoadIDXCorpus(paths IDXPaths, kind TaskKind) (*Corpus, error) {
	if !kind.IsImage() {
		return nil, fmt.Errorf("data: IDX loading is for image tasks, got %v", kind)
	}
	build := func(imgPath, lblPath string) ([]ml.Sample, int, error) {
		features, h, w, err := LoadIDXImages(imgPath)
		if err != nil {
			return nil, 0, err
		}
		labels, err := LoadIDXLabels(lblPath)
		if err != nil {
			return nil, 0, err
		}
		if len(features) != len(labels) {
			return nil, 0, fmt.Errorf("data: %d images vs %d labels", len(features), len(labels))
		}
		samples := make([]ml.Sample, len(features))
		for i := range features {
			if labels[i] < 0 || labels[i] >= NumClasses {
				return nil, 0, fmt.Errorf("data: label %d outside [0, %d)", labels[i], NumClasses)
			}
			samples[i] = ml.Sample{Features: features[i], Label: labels[i]}
		}
		return samples, h * w, nil
	}
	train, dim, err := build(paths.TrainImages, paths.TrainLabels)
	if err != nil {
		return nil, err
	}
	test, testDim, err := build(paths.TestImages, paths.TestLabels)
	if err != nil {
		return nil, err
	}
	if dim != testDim {
		return nil, fmt.Errorf("data: train dim %d != test dim %d", dim, testDim)
	}
	return &Corpus{
		Kind:       kind,
		Train:      train,
		Test:       test,
		Classes:    NumClasses,
		FeatureDim: dim,
	}, nil
}

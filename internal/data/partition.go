package data

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fmore/internal/ml"
)

// Partition is the assignment of training samples to edge nodes. It exposes
// the two resource dimensions the paper's simulator bids with: per-node data
// size (q₁) and data-category proportion (q₂ ∈ (0, 1]).
type Partition struct {
	// Nodes holds each node's local training samples.
	Nodes [][]ml.Sample
	// Classes is the label arity of the underlying task.
	Classes int
}

// NodeSize returns the number of local samples at node i (q₁).
func (p *Partition) NodeSize(i int) int { return len(p.Nodes[i]) }

// CategoryProportion returns the fraction of all classes present in node
// i's local data (q₂), the second resource dimension of the paper's
// simulator.
func (p *Partition) CategoryProportion(i int) float64 {
	if p.Classes == 0 {
		return 0
	}
	seen := make(map[int]bool, p.Classes)
	for _, s := range p.Nodes[i] {
		seen[s.Label] = true
	}
	return float64(len(seen)) / float64(p.Classes)
}

// TotalSamples returns the number of samples across all nodes.
func (p *Partition) TotalSamples() int {
	total := 0
	for _, n := range p.Nodes {
		total += len(n)
	}
	return total
}

// ErrPartition reports invalid partitioning arguments.
var ErrPartition = errors.New("data: invalid partition arguments")

// PartitionShards implements the McMahan-style pathological non-IID split:
// samples are sorted by label, cut into equal shards, and each node receives
// shardsPerNode shards — so each node sees only a few classes. All samples
// are assigned (trailing remainder joins the last shard).
func PartitionShards(samples []ml.Sample, classes, nodes, shardsPerNode int, rng *rand.Rand) (*Partition, error) {
	if nodes < 1 || shardsPerNode < 1 {
		return nil, fmt.Errorf("%w: nodes=%d shardsPerNode=%d", ErrPartition, nodes, shardsPerNode)
	}
	if len(samples) < nodes*shardsPerNode {
		return nil, fmt.Errorf("%w: %d samples cannot fill %d shards", ErrPartition, len(samples), nodes*shardsPerNode)
	}
	bylabel := append([]ml.Sample(nil), samples...)
	sort.SliceStable(bylabel, func(a, b int) bool { return bylabel[a].Label < bylabel[b].Label })

	numShards := nodes * shardsPerNode
	shardSize := len(bylabel) / numShards
	shards := make([][]ml.Sample, numShards)
	for i := 0; i < numShards; i++ {
		lo := i * shardSize
		hi := lo + shardSize
		if i == numShards-1 {
			hi = len(bylabel)
		}
		shards[i] = bylabel[lo:hi]
	}
	order := rng.Perm(numShards)
	p := &Partition{Nodes: make([][]ml.Sample, nodes), Classes: classes}
	for n := 0; n < nodes; n++ {
		for s := 0; s < shardsPerNode; s++ {
			shard := shards[order[n*shardsPerNode+s]]
			p.Nodes[n] = append(p.Nodes[n], shard...)
		}
	}
	return p, nil
}

// PartitionDirichlet assigns each sample to a node according to per-class
// node weights drawn from a symmetric Dirichlet(alpha). Small alpha yields
// severe label skew; large alpha approaches IID.
func PartitionDirichlet(samples []ml.Sample, classes, nodes int, alpha float64, rng *rand.Rand) (*Partition, error) {
	if nodes < 1 || alpha <= 0 {
		return nil, fmt.Errorf("%w: nodes=%d alpha=%v", ErrPartition, nodes, alpha)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrPartition)
	}
	// Per class, draw node weights ~ Dir(alpha).
	weights := make([][]float64, classes)
	for c := range weights {
		weights[c] = dirichlet(nodes, alpha, rng)
	}
	p := &Partition{Nodes: make([][]ml.Sample, nodes), Classes: classes}
	for _, s := range samples {
		if s.Label < 0 || s.Label >= classes {
			return nil, fmt.Errorf("%w: label %d outside [0, %d)", ErrPartition, s.Label, classes)
		}
		n := sampleCategorical(weights[s.Label], rng)
		p.Nodes[n] = append(p.Nodes[n], s)
	}
	return p, nil
}

// PartitionHeterogeneous models the MEC population of the paper's
// simulator: node data sizes vary widely (uniform in [minSize, maxSize])
// and label diversity varies per node (each node draws a random subset of
// classes, between minClasses and the full set). Samples are drawn with
// replacement from the per-class pools, mimicking independent local data
// collection at each edge device.
func PartitionHeterogeneous(samples []ml.Sample, classes, nodes, minSize, maxSize, minClasses int, rng *rand.Rand) (*Partition, error) {
	if nodes < 1 || minSize < 1 || maxSize < minSize || minClasses < 1 || minClasses > classes {
		return nil, fmt.Errorf("%w: nodes=%d size=[%d,%d] minClasses=%d", ErrPartition, nodes, minSize, maxSize, minClasses)
	}
	pools := make([][]ml.Sample, classes)
	for _, s := range samples {
		if s.Label < 0 || s.Label >= classes {
			return nil, fmt.Errorf("%w: label %d outside [0, %d)", ErrPartition, s.Label, classes)
		}
		pools[s.Label] = append(pools[s.Label], s)
	}
	for c, pool := range pools {
		if len(pool) == 0 {
			return nil, fmt.Errorf("%w: class %d has no samples", ErrPartition, c)
		}
	}
	p := &Partition{Nodes: make([][]ml.Sample, nodes), Classes: classes}
	for n := 0; n < nodes; n++ {
		size := minSize + rng.Intn(maxSize-minSize+1)
		numClasses := minClasses + rng.Intn(classes-minClasses+1)
		classPick := rng.Perm(classes)[:numClasses]
		local := make([]ml.Sample, 0, size)
		for len(local) < size {
			c := classPick[rng.Intn(len(classPick))]
			pool := pools[c]
			local = append(local, pool[rng.Intn(len(pool))])
		}
		p.Nodes[n] = local
	}
	return p, nil
}

// dirichlet draws one symmetric Dirichlet(alpha) sample of length n using
// Gamma(alpha, 1) marginals (Marsaglia–Tsang).
func dirichlet(n int, alpha float64, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = gammaSample(alpha, rng)
		sum += w[i]
	}
	if sum <= 0 {
		// Numerically possible for tiny alpha; fall back to uniform.
		for i := range w {
			w[i] = 1 / float64(n)
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the boost
// trick for shape < 1.
func gammaSample(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / (3 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// sampleCategorical draws an index proportional to weights.
func sampleCategorical(weights []float64, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

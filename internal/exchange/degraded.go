package exchange

import (
	"fmt"
	"log"
	"os"
	"time"
)

// WALFailurePolicy selects what a durable exchange does when its outcome
// log takes its first sticky error (write, fsync, rotation or encode);
// see Options.OnWALFailure.
type WALFailurePolicy int

const (
	// WALDegrade (the default) keeps the replica up in degraded mode: bid
	// submits, round closes and job mutations are refused with
	// *DegradedError (503 durability_lost over HTTP) while reads, outcome
	// pages and SSE keep serving what memory already holds. /v1/healthz
	// reports the condition so a router steers new bid traffic to healthy
	// replicas.
	WALDegrade WALFailurePolicy = iota
	// WALFailstop terminates the process on the first sticky WAL error,
	// for operators who prefer a crash-and-restart (or failover) to a
	// read-only survivor.
	WALFailstop
)

// DegradedError reports a durable operation refused because the replica
// has lost durability: the outcome log took a sticky error and accepting
// the operation would acknowledge state a restart cannot recover. Clients
// should retry against a healthy replica (HTTP: 503 durability_lost with
// a retry hint).
type DegradedError struct {
	// Err is the WAL's first sticky error — the root cause.
	Err error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("exchange: durability lost, refusing durable writes (degraded): %v", e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// failstopExit is swapped by tests; production failstop really exits.
var failstopExit = func(code int) { os.Exit(code) }

// walFailure is the persister's onFail callback: it runs exactly once,
// from whichever goroutine publishes the WAL's first sticky error, and
// must never block (the writer goroutine calls it with appenders possibly
// parked on a full channel). Store order matters: the cause and timestamp
// land before the flag, so any reader that observes walFailed also
// observes both.
func (ex *Exchange) walFailure(err error) {
	ex.walLastErr.Store(&err)
	ex.walFailedUnix.Store(time.Now().Unix())
	ex.walFailed.Store(true)
	if ex.opts.OnWALFailure == WALFailstop {
		log.Printf("exchange: outcome log failed, failstop policy: %v", err)
		failstopExit(1)
		return
	}
	log.Printf("exchange: outcome log failed, entering degraded mode (refusing durable writes): %v", err)
}

// Degraded reports whether the replica has lost durability (the outcome
// log took a sticky error under the degrade policy). Always false on an
// in-memory exchange.
func (ex *Exchange) Degraded() bool { return ex.walFailed.Load() }

// DegradedSince returns when durability was lost (Unix seconds), 0 while
// healthy.
func (ex *Exchange) DegradedSince() int64 { return ex.walFailedUnix.Load() }

// degradedErr gates the durable write paths: nil while healthy (one
// atomic load on the hot path), a *DegradedError carrying the root cause
// once the WAL has failed.
func (ex *Exchange) degradedErr() error {
	if !ex.walFailed.Load() {
		return nil
	}
	var cause error
	if e := ex.walLastErr.Load(); e != nil {
		cause = *e
	}
	return &DegradedError{Err: cause}
}

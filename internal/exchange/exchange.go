package exchange

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fmore/internal/admission"
	"fmore/internal/auction"
	"fmore/internal/partition"
)

// ErrExchangeClosed reports an operation on a shut-down exchange.
var ErrExchangeClosed = errors.New("exchange: closed")

// CommitPolicy selects how the outcome log's writer groups records per
// fsync; see Options.Commit.
type CommitPolicy int

const (
	// CommitAdaptive syncs as soon as the writer's queue drains once a
	// durability waiter is pending; with no waiter it holds the full
	// SyncInterval (default).
	CommitAdaptive CommitPolicy = iota
	// CommitFixed holds each group commit open for the full SyncInterval.
	CommitFixed
)

// Options configures an Exchange.
type Options struct {
	// Workers sizes the shared scoring pool (default GOMAXPROCS).
	Workers int
	// ScoreChunk is the bids-per-task granularity of the pool (default 128).
	ScoreChunk int
	// IntakeShards overrides the per-job bid-intake stripe count (rounded up
	// to a power of two; default: GOMAXPROCS rounded up, capped at 32).
	// Bidders serialize only when they hash to the same stripe, so more
	// stripes buy less contention at the cost of a longer drain at close.
	IntakeShards int
	// RequireRegistration rejects bids from nodes that have not been
	// registered (the deployment posture of the TCP harness, where nodes
	// register over the wire before bidding). When false, first contact
	// auto-registers — the open posture of the HTTP front end.
	RequireRegistration bool
	// SyncInterval is the outcome log's group-commit window (default 2ms):
	// the log writer coalesces records for up to this long before each
	// fsync while nothing waits on durability, so it caps the crash-loss
	// window. Smaller tightens the durability lag; larger trades lag for
	// fewer flushes. Only meaningful with Open.
	SyncInterval time.Duration
	// Commit selects the outcome log's group-commit policy (only
	// meaningful with Open). Appends are fire-and-forget, so holding a
	// commit delays nobody until someone calls Sync or Close; the policies
	// differ in what happens then. CommitAdaptive (the zero value) commits
	// the moment the writer's queue drains once a waiter is pending —
	// records racing in behind the waiter still share its fsync, and the
	// waiter never idles out the rest of the window. CommitFixed always
	// holds the full SyncInterval — fewest flushes (battery, shared disks,
	// fsync-heavy co-tenants), but a waiter eats the whole window as
	// latency. The achieved batching is observable as wal_fsync_total vs
	// wal_fsync_batched_records.
	Commit CommitPolicy
	// SnapshotBytes triggers WAL compaction (snapshot + segment rotation)
	// once the active segment exceeds this many bytes (default 8 MiB;
	// negative disables the size trigger). Only meaningful with Open.
	SnapshotBytes int64
	// SnapshotInterval additionally compacts the WAL on a fixed period
	// (0 disables the timer; the size trigger still applies). Only
	// meaningful with Open.
	SnapshotInterval time.Duration
	// FirehoseRing sizes the event tap's ring (rounded up to a power of
	// two; default 4096 slots). The ring is the slack between the bid and
	// round-close producers and the slowest attached sink: a sink that
	// falls more than a ring behind loses the overrun and the loss is
	// counted. Memory is only committed on the first Firehose().Attach.
	FirehoseRing int
	// Partition scopes the exchange to one partition of a multi-replica
	// cluster: Local names the partition this replica owns and Map is the
	// live cluster map (swappable through its atomic handle without a
	// restart). A partitioned replica refuses to create jobs whose IDs
	// rendezvous-hash to another partition and answers job-scoped requests
	// for jobs it does not host with wrong_partition + the owner's URL;
	// with Open, its WAL/snapshot directory is additionally namespaced
	// per replica (<dir>/replica-<partition>) so several replicas can
	// share one data-dir parent. Nil (the default) is the unpartitioned
	// single-process posture with zero added cost on any path.
	Partition *partition.Assignment
	// OnWALFailure selects the storage failure policy of a durable
	// exchange: WALDegrade (the default) keeps serving reads while
	// refusing durable writes with *DegradedError after the outcome log's
	// first sticky error; WALFailstop terminates the process instead. Only
	// meaningful with Open. See the "Failure model & degraded mode"
	// section of the package documentation.
	OnWALFailure WALFailurePolicy
	// Admission enables overload protection: hierarchical token-bucket
	// rate limits on bid intake (global/per-node/per-job), an in-flight
	// request gate, and SSE subscriber caps, all with shed accounting
	// surfaced via Metrics and GET /v1/healthz. Shed bids fail with
	// *OverloadError (429 + retry_after_ms over HTTP); round closes, WAL
	// commits and SSE heartbeats are never shed. Nil (the default)
	// disables admission with zero added cost on the hot path.
	Admission *admission.Controller
}

// jobTable is the exchange's epoch-published job set: an immutable map
// plus its sorted ID list, swapped whole behind Exchange.table. Readers
// (submit, outcome reads, SSE attach, stats, scrapes) resolve a job with
// one atomic load and zero locks; the map behind a published table is
// never mutated again. Writers copy, mutate the copy, and publish a new
// table with the next epoch under ex.mu — the atomic store is the release
// barrier that makes a new job's fields visible to lock-free readers.
//
// The epoch is a plain monotone generation counter (one bump per publish
// under ex.mu). Round closes never republish — a *Job resolved from any
// table stays valid after eviction, and RemoveJob's closeMu barrier
// orders an in-flight close's WAL record before the removal record — so
// the epoch's job is observability: tests and debuggers can pin a table
// and assert publication order without locking the world.
type jobTable struct {
	epoch int64
	jobs  map[string]*Job
	ids   []string // lexically sorted; shared — callers copy before returning
}

// publishJobs copies the current table, applies mutate to the copy, and
// publishes the result under the next epoch. Callers hold ex.mu (or are
// the single-threaded replay in Open, which runs before any reader can
// exist). Job churn is rare, so the O(jobs) copy is off every hot path.
func (ex *Exchange) publishJobs(mutate func(jobs map[string]*Job)) {
	cur := ex.table.Load()
	next := make(map[string]*Job, len(cur.jobs)+1)
	for id, j := range cur.jobs {
		next[id] = j
	}
	mutate(next)
	ids := make([]string, 0, len(next))
	for id := range next {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ex.table.Store(&jobTable{epoch: cur.epoch + 1, jobs: next, ids: ids})
}

// Exchange hosts many concurrent FL auction jobs over one shared node
// registry, scoring pool and metrics sink. All methods are safe for
// concurrent use.
type Exchange struct {
	opts    Options
	reg     *Registry
	pool    *scorePool
	metrics *Metrics
	fh      *Firehose
	part    *partition.Assignment
	adm     *admission.Controller

	// WAL gauges, mirrored atomically out of the compaction machinery so a
	// metrics scrape never touches compactMu (or the writer goroutine):
	// walSegs is the live (replay-relevant) segment count and
	// walSealedBytes the bytes in sealed live segments — the active
	// segment's size lives in the persister. Both stay 0 in-memory.
	walSegs        atomic.Int64
	walSealedBytes atomic.Int64

	// Degraded-mode state, written once by walFailure (the persister's
	// onFail callback) and read lock-free by every durable write path,
	// healthz and the metrics snapshot. walFailed is stored last so a
	// reader that observes it also observes the cause and timestamp.
	walFailed     atomic.Bool
	walFailedUnix atomic.Int64
	walLastErr    atomic.Pointer[error]

	ctx    context.Context
	cancel context.CancelFunc

	// mu serializes job-set mutation (create/remove/close) and the
	// republish of table; it is never taken to read. table is the
	// epoch-published job set every read path loads lock-free.
	mu     sync.Mutex
	table  atomic.Pointer[jobTable]
	closed bool
	seq    atomic.Int64

	// wal is the write-ahead outcome log; nil on an in-memory exchange
	// (New). Open attaches it after replay, along with the compaction
	// machinery: dir/walLock identify and guard the data dir, walSeq is the
	// active segment (guarded by compactMu, which also serializes Compact),
	// and compactCh/compactDone drive the background compaction goroutine.
	// See persist.go.
	wal         *persister
	dir         string
	walLock     *os.File
	walSeq      int64 // active (highest) segment
	walFloor    int64 // lowest live segment (deletion floor)
	compactMu   sync.Mutex
	compactCh   chan struct{}
	compactDone chan struct{}
}

// New starts an exchange (its scoring workers launch immediately).
func New(opts Options) *Exchange {
	ctx, cancel := context.WithCancel(context.Background())
	ex := &Exchange{
		opts:    opts,
		reg:     NewRegistry(),
		pool:    newScorePool(opts.Workers, opts.ScoreChunk),
		metrics: newMetrics(),
		fh:      newFirehose(opts.FirehoseRing),
		part:    opts.Partition,
		adm:     opts.Admission,
		ctx:     ctx,
		cancel:  cancel,
	}
	ex.table.Store(&jobTable{jobs: make(map[string]*Job)})
	return ex
}

// CreateJob validates spec, hosts the job, and (in timer mode) starts its
// bid-window goroutine. Job creation is rare, so the whole path runs under
// the jobs mutex: ID resolution, validation and publication are atomic
// (auto-assigned IDs skip past names callers have taken, and a failed
// validation leaks nothing).
func (ex *Exchange) CreateJob(spec JobSpec) (*Job, error) {
	spec.setDefaults()
	if err := ex.checkCreateOwnership(spec.ID); err != nil {
		return nil, err
	}

	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.closed {
		return nil, ErrExchangeClosed
	}
	// A degraded replica must not host new jobs: their created records
	// would never reach disk, so a restart would forget them entirely.
	if err := ex.degradedErr(); err != nil {
		return nil, err
	}
	hosted := ex.table.Load().jobs
	id := spec.ID
	if id == "" {
		// A partitioned replica keeps drawing sequence IDs until one
		// rendezvous-hashes to its own partition, so a create without an
		// explicit ID always lands locally (expected ~P draws for P
		// partitions).
		for {
			id = fmt.Sprintf("job-%d", ex.seq.Add(1))
			if _, taken := hosted[id]; !taken && ex.part.Owns(id) {
				break
			}
		}
	} else if _, dup := hosted[id]; dup {
		return nil, fmt.Errorf("exchange: job %q already exists", id)
	}
	spec.ID = id

	j, err := newJob(ex, id, spec)
	if err != nil {
		return nil, err
	}
	if err := ex.logJobCreated(j.spec); err != nil {
		return nil, err
	}
	// loopDone must be in place before the job is published: the table
	// store is the release barrier lock-free readers (and Close's table
	// snapshot) synchronize on, so every job field write must precede it.
	if spec.BidWindow > 0 {
		j.loopDone = make(chan struct{})
	}
	ex.publishJobs(func(jobs map[string]*Job) { jobs[id] = j })
	ex.metrics.jobsCreated.Add(1)
	if j.loopDone != nil {
		go j.loop()
	}
	return j, nil
}

// RemoveJob closes the job and evicts it from the exchange, releasing its
// auctioneer, buffers and retained outcome history. Without eviction a
// long-lived service would grow without bound as FL tasks finish. Outcome
// reads for the job fail afterwards.
func (ex *Exchange) RemoveJob(id string) error {
	j, ok := ex.table.Load().jobs[id]
	if !ok {
		return ex.missingJob(id)
	}
	// Removal is a durable mutation (the removal record is what keeps the
	// job gone after recovery), so a degraded replica refuses it before
	// touching the job.
	if err := ex.degradedErr(); err != nil {
		return err
	}
	j.close(false)
	if j.loopDone != nil {
		<-j.loopDone
	}
	// Same barrier Exchange.Close uses: wait out any in-flight closeRound
	// before eviction. Ordering matters twice over: (1) a round mid-close
	// when removal starts must append its round record before the removal
	// record, or replay meets a round for a deleted job; (2) the job stays
	// visible to Close's jobs snapshot until fully drained, so a shutdown
	// racing the unfinished round cannot close the scoring pool under it.
	j.closeMu.Lock()
	j.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier

	// Evict and log under the jobs mutex: CreateJob may only reuse the ID
	// once the published table is without the slot, and it logs its created
	// record under the same mutex, so the log can never read created →
	// created or removed after the successor's records. The removal record
	// alone keeps the job gone after recovery; no job-closed record is
	// needed alongside.
	ex.mu.Lock()
	if cur, present := ex.table.Load().jobs[id]; !present || cur != j {
		// A concurrent RemoveJob won the eviction (and the slot may already
		// host a successor job, which must not be torn down here).
		ex.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	ex.publishJobs(func(jobs map[string]*Job) { delete(jobs, id) })
	ex.logJobRemoved(id)
	ex.mu.Unlock()
	return nil
}

// Job resolves a hosted job by ID: one atomic table load, no locks. This
// is the resolve on every submit, outcome read, SSE attach and stats
// lookup, so it must never contend with job churn or round closes.
func (ex *Exchange) Job(id string) (*Job, bool) {
	j, ok := ex.table.Load().jobs[id]
	return j, ok
}

// JobIDs lists hosted jobs in lexical order (the table keeps its ID list
// pre-sorted; only the caller-owned copy is paid here).
func (ex *Exchange) JobIDs() []string {
	t := ex.table.Load()
	ids := make([]string, len(t.ids))
	copy(ids, t.ids)
	return ids
}

// RegisterNode adds a node to the shared registry (idempotent). A no-op
// re-registration (node known, meta unchanged) writes nothing to the
// outcome log, so heartbeat-style re-registration does not grow it.
func (ex *Exchange) RegisterNode(id int, meta string) *NodeInfo {
	if meta != "" {
		if info, ok := ex.reg.Lookup(id); ok && info.Meta() == meta {
			return info
		}
	}
	info, created := ex.reg.Register(id, meta)
	if created || meta != "" {
		ex.logNode(id, meta)
	}
	return info
}

// BlacklistNode bans the node from all future rounds and records the ban in
// the outcome log, so a restarted exchange still refuses its bids. It
// reports whether the node was registered.
func (ex *Exchange) BlacklistNode(id int) bool {
	if !ex.reg.Blacklist(id) {
		return false
	}
	ex.logNodeBan(id)
	return true
}

// Registry exposes the node directory. Note that bans applied directly via
// Registry().Blacklist bypass the outcome log; use BlacklistNode on a
// persistent exchange.
func (ex *Exchange) Registry() *Registry { return ex.reg }

// SubmitBid admits one sealed bid into the job's current round, enforcing
// the registry policy (registration requirement, blacklist). It returns the
// round the bid was entered into. The exchange takes ownership of the bid.
func (ex *Exchange) SubmitBid(jobID string, bid auction.Bid) (round int, err error) {
	j, ok := ex.Job(jobID)
	if !ok {
		ex.metrics.bidsRejected.Add(1)
		return 0, ex.missingJob(jobID)
	}
	// Degraded gate, ahead of all intake work: an accepted bid is a
	// durability promise (its round's record must survive a restart),
	// which a failed WAL can no longer keep. One atomic load while
	// healthy.
	if err := ex.degradedErr(); err != nil {
		ex.metrics.bidsRejected.Add(1)
		return 0, err
	}
	info, registered := ex.reg.Lookup(bid.NodeID)
	if !registered && ex.opts.RequireRegistration {
		ex.metrics.bidsRejected.Add(1)
		return 0, fmt.Errorf("%w: node %d", ErrNotRegistered, bid.NodeID)
	}
	if registered && info.Blacklisted() {
		ex.metrics.bidsRejected.Add(1)
		return 0, fmt.Errorf("%w: node %d", ErrBlacklisted, bid.NodeID)
	}
	// Admission runs after the cheap policy checks and before any intake
	// work: a shed bid touches no stripe, no buffer and no log. Registered
	// nodes carry their private bucket on the registry entry (one lazy CAS
	// per node lifetime, then a lock-free pointer load); unregistered nodes
	// share one bucket so a registration spray cannot dodge the node level.
	if ex.adm != nil {
		var nodeBucket *admission.Bucket
		if registered {
			nodeBucket = info.admitBucket(ex.adm)
		} else {
			nodeBucket = ex.adm.UnregisteredBucket()
		}
		if ok, scope, retry := ex.adm.AdmitBid(nodeBucket, j.admit); !ok {
			ex.metrics.bidsRejected.Add(1)
			return 0, &OverloadError{Scope: scope, RetryAfter: retry}
		}
	}
	// Acceptance side effects run inside the intake shard's critical
	// section, atomically with the buffer insert — the invariant the WAL
	// snapshot's pending-bid accounting relies on. Registered nodes pass
	// their counter directly (no allocation on the hot path); an unknown
	// node's first bid registers-and-counts via the once-per-node-lifetime
	// closure. Only an accepted bid auto-registers (open posture): rejected
	// requests must not grow the registry, and the log write happens once
	// per node lifetime, not per bid, so the hot path stays append-free.
	var accepted *atomic.Int64
	var onAccept func()
	if registered {
		accepted = &info.bids
	} else {
		onAccept = func() {
			info, created := ex.reg.Register(bid.NodeID, "")
			if created {
				ex.logNode(bid.NodeID, "")
			}
			info.bids.Add(1)
		}
	}
	round, err = j.submit(bid, accepted, onAccept)
	if err != nil {
		ex.metrics.bidsRejected.Add(1)
		return 0, err
	}
	ex.metrics.bidsAccepted.Add(1)
	ex.fh.bidAccepted(j, round, bid.NodeID, bid.Payment)
	return round, nil
}

// Firehose exposes the exchange's lock-free event tap. Attaching a sink
// starts recording; until then the tap costs producers a single atomic
// load.
func (ex *Exchange) Firehose() *Firehose { return ex.fh }

// CloseRound closes the job's current round synchronously and returns its
// outcome. This is the manual drive used by the transport engine adapter;
// on timer-mode jobs it simply closes the window early. The returned
// outcome owns all of its memory (the copy is made before the close lock
// releases, so it can never observe a later round recycling the job's
// pooled buffers); in-process embedders that want the zero-copy pooled
// form use Job.CloseRound instead.
func (ex *Exchange) CloseRound(jobID string) (RoundOutcome, error) {
	j, ok := ex.Job(jobID)
	if !ok {
		return RoundOutcome{}, ex.missingJob(jobID)
	}
	return j.closeRoundOwned()
}

// WaitOutcome blocks until the job's round completes.
func (ex *Exchange) WaitOutcome(ctx context.Context, jobID string, round int) (RoundOutcome, error) {
	j, ok := ex.Job(jobID)
	if !ok {
		return RoundOutcome{}, ex.missingJob(jobID)
	}
	return j.WaitOutcome(ctx, round)
}

// Metrics returns a point-in-time health snapshot. jobs_active is derived
// from the published job table at scrape time — not a created-minus-closed
// counter delta, which would go stale across a restart (replay recounts
// creations but closed-and-removed jobs leave no counted trace). The scan
// walks one immutable table, so a scrape never blocks (or is blocked by)
// job churn; a half-created job is unreachable by construction because
// publication is a single pointer store.
func (ex *Exchange) Metrics() Snapshot {
	active := 0
	for _, j := range ex.table.Load().jobs {
		if !j.closed.Load() {
			active++
		}
	}
	s := ex.metrics.snapshot(ex.reg.Len(), active)
	s.WalSegmentCount = ex.walSegs.Load()
	s.WalBytes = ex.walSealedBytes.Load()
	if ex.wal != nil {
		s.WalBytes += ex.wal.size.Load()
		s.WalFsyncTotal = ex.wal.fsyncs.Load()
		s.WalFsyncBatchedRecords = ex.wal.fsyncRecs.Load()
	}
	s.WalFailed = ex.walFailed.Load()
	s.WalLastErrorUnix = ex.walFailedUnix.Load()
	s.FirehoseEvents, s.FirehoseDropped = fhStats(ex.fh)
	if ex.adm != nil {
		st := ex.adm.Stats()
		s.AdmissionEnabled = true
		s.AdmissionOverloaded = st.Overloaded
		s.AdmissionInflight = st.Inflight
		s.AdmissionShedTotal = st.ShedTotal()
		s.AdmissionShedGlobal = st.ShedGlobal
		s.AdmissionShedNode = st.ShedNode
		s.AdmissionShedJob = st.ShedJob
		s.AdmissionShedInflight = st.ShedInflight
		s.AdmissionSSEActive = st.SSEActive
		s.AdmissionSSEEvicted = st.SSEEvicted
	}
	return s
}

// fhStats adapts the firehose counters to the snapshot's signed fields.
func fhStats(f *Firehose) (published, dropped int64) {
	p, d := f.Stats()
	return int64(p), int64(d)
}

// Sync blocks until every record appended to the outcome log so far is
// durable on disk and returns the log's first sticky error (encode, write
// or fsync). On an in-memory exchange it is a no-op.
func (ex *Exchange) Sync() error {
	if ex.wal == nil {
		return nil
	}
	return ex.wal.sync()
}

// Close shuts the exchange down: every job is closed, in-flight round
// closes are drained, background compaction stops, the scoring pool is
// stopped, and the outcome log (if any) is flushed and closed. Shutdown
// does not write job-closed records — a restart via Open resumes every
// unfinished job. Idempotent; the error is the outcome log's first sticky
// error (a failed final write, fsync or file close — records that never
// became durable), nil on an in-memory exchange or a clean shutdown.
func (ex *Exchange) Close() error {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		if ex.wal != nil {
			return ex.wal.close() // idempotent: waits out the first close, reports its error
		}
		return nil
	}
	ex.closed = true
	t := ex.table.Load()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	ex.mu.Unlock()

	ex.cancel()
	// Wait out the compaction goroutine (an in-flight Compact finishes or
	// aborts on the closed flag; the writer it may be waiting on is still
	// running here).
	if ex.compactDone != nil {
		<-ex.compactDone
	}
	for _, j := range jobs {
		j.close(false)
		if j.loopDone != nil {
			<-j.loopDone
		}
	}
	// Barrier: a manual CloseRound that passed the closed-check is still
	// scoring on the pool; taking each job's closeMu waits it out before
	// the pool goes away.
	for _, j := range jobs {
		j.closeMu.Lock()
		j.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
	ex.pool.close()
	// Signal-only: a sink wedged inside ConsumeTap must not wedge shutdown
	// (callers that want delivery guarantees Drain the firehose first).
	ex.fh.stopAll()
	// After the barrier no append can be in flight, so the final flush sees
	// every record.
	var err error
	if ex.wal != nil {
		err = ex.wal.close()
	}
	if ex.walLock != nil {
		ex.walLock.Close() //nolint:errcheck // advisory lock dies with the fd either way
	}
	return err
}

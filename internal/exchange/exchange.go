package exchange

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fmore/internal/auction"
)

// ErrExchangeClosed reports an operation on a shut-down exchange.
var ErrExchangeClosed = errors.New("exchange: closed")

// Options configures an Exchange.
type Options struct {
	// Workers sizes the shared scoring pool (default GOMAXPROCS).
	Workers int
	// ScoreChunk is the bids-per-task granularity of the pool (default 128).
	ScoreChunk int
	// RequireRegistration rejects bids from nodes that have not been
	// registered (the deployment posture of the TCP harness, where nodes
	// register over the wire before bidding). When false, first contact
	// auto-registers — the open posture of the HTTP front end.
	RequireRegistration bool
}

// Exchange hosts many concurrent FL auction jobs over one shared node
// registry, scoring pool and metrics sink. All methods are safe for
// concurrent use.
type Exchange struct {
	opts    Options
	reg     *Registry
	pool    *scorePool
	metrics *Metrics

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex
	jobs   map[string]*Job
	closed bool
	seq    atomic.Int64
}

// New starts an exchange (its scoring workers launch immediately).
func New(opts Options) *Exchange {
	ctx, cancel := context.WithCancel(context.Background())
	return &Exchange{
		opts:    opts,
		reg:     NewRegistry(),
		pool:    newScorePool(opts.Workers, opts.ScoreChunk),
		metrics: newMetrics(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*Job),
	}
}

// CreateJob validates spec, hosts the job, and (in timer mode) starts its
// bid-window goroutine. Job creation is rare, so the whole path runs under
// the jobs mutex: ID resolution, validation and publication are atomic
// (auto-assigned IDs skip past names callers have taken, and a failed
// validation leaks nothing).
func (ex *Exchange) CreateJob(spec JobSpec) (*Job, error) {
	spec.setDefaults()

	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.closed {
		return nil, ErrExchangeClosed
	}
	id := spec.ID
	if id == "" {
		for {
			id = fmt.Sprintf("job-%d", ex.seq.Add(1))
			if _, taken := ex.jobs[id]; !taken {
				break
			}
		}
	} else if _, dup := ex.jobs[id]; dup {
		return nil, fmt.Errorf("exchange: job %q already exists", id)
	}
	spec.ID = id

	j, err := newJob(ex, id, spec)
	if err != nil {
		return nil, err
	}
	// loopDone must be in place before the job is published: Close snapshots
	// ex.jobs and reads loopDone, so the write has to happen-before the
	// mutex-guarded publication.
	if spec.BidWindow > 0 {
		j.loopDone = make(chan struct{})
	}
	ex.jobs[id] = j
	ex.metrics.jobsCreated.Add(1)
	if j.loopDone != nil {
		go j.loop()
	}
	return j, nil
}

// RemoveJob closes the job and evicts it from the exchange, releasing its
// auctioneer, buffers and retained outcome history. Without eviction a
// long-lived service would grow without bound as FL tasks finish. Outcome
// reads for the job fail afterwards.
func (ex *Exchange) RemoveJob(id string) error {
	ex.mu.Lock()
	j, ok := ex.jobs[id]
	if ok {
		delete(ex.jobs, id)
	}
	ex.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.Close()
	if j.loopDone != nil {
		<-j.loopDone
	}
	// Same barrier Exchange.Close uses: wait out any in-flight closeRound.
	// Once evicted, this job is invisible to Close's jobs snapshot, so a
	// shutdown racing an unfinished round could otherwise close the scoring
	// pool under it.
	j.closeMu.Lock()
	j.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	return nil
}

// Job resolves a hosted job by ID.
func (ex *Exchange) Job(id string) (*Job, bool) {
	ex.mu.RLock()
	j, ok := ex.jobs[id]
	ex.mu.RUnlock()
	return j, ok
}

// JobIDs lists hosted jobs in lexical order.
func (ex *Exchange) JobIDs() []string {
	ex.mu.RLock()
	ids := make([]string, 0, len(ex.jobs))
	for id := range ex.jobs {
		ids = append(ids, id)
	}
	ex.mu.RUnlock()
	sort.Strings(ids)
	return ids
}

// RegisterNode adds a node to the shared registry (idempotent).
func (ex *Exchange) RegisterNode(id int, meta string) *NodeInfo {
	info, _ := ex.reg.Register(id, meta)
	return info
}

// Registry exposes the node directory.
func (ex *Exchange) Registry() *Registry { return ex.reg }

// SubmitBid admits one sealed bid into the job's current round, enforcing
// the registry policy (registration requirement, blacklist). It returns the
// round the bid was entered into. The exchange takes ownership of the bid.
func (ex *Exchange) SubmitBid(jobID string, bid auction.Bid) (round int, err error) {
	j, ok := ex.Job(jobID)
	if !ok {
		ex.metrics.bidsRejected.Add(1)
		return 0, fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
	}
	info, registered := ex.reg.Lookup(bid.NodeID)
	if !registered && ex.opts.RequireRegistration {
		ex.metrics.bidsRejected.Add(1)
		return 0, fmt.Errorf("%w: node %d", ErrNotRegistered, bid.NodeID)
	}
	if registered && info.Blacklisted() {
		ex.metrics.bidsRejected.Add(1)
		return 0, fmt.Errorf("%w: node %d", ErrBlacklisted, bid.NodeID)
	}
	round, err = j.submit(bid)
	if err != nil {
		ex.metrics.bidsRejected.Add(1)
		return 0, err
	}
	// Only an accepted bid auto-registers its node (open posture): rejected
	// requests must not grow the registry.
	if !registered {
		info, _ = ex.reg.Register(bid.NodeID, "")
	}
	info.bids.Add(1)
	ex.metrics.bidsAccepted.Add(1)
	return round, nil
}

// CloseRound closes the job's current round synchronously and returns its
// outcome. This is the manual drive used by the transport engine adapter;
// on timer-mode jobs it simply closes the window early.
func (ex *Exchange) CloseRound(jobID string) (RoundOutcome, error) {
	j, ok := ex.Job(jobID)
	if !ok {
		return RoundOutcome{}, fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
	}
	return j.closeRound()
}

// WaitOutcome blocks until the job's round completes.
func (ex *Exchange) WaitOutcome(ctx context.Context, jobID string, round int) (RoundOutcome, error) {
	j, ok := ex.Job(jobID)
	if !ok {
		return RoundOutcome{}, fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
	}
	return j.WaitOutcome(ctx, round)
}

// Metrics returns a point-in-time health snapshot.
func (ex *Exchange) Metrics() Snapshot {
	return ex.metrics.snapshot(ex.reg.Len())
}

// Close shuts the exchange down: every job is closed, in-flight round
// closes are drained, and the scoring pool is stopped. Idempotent.
func (ex *Exchange) Close() {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return
	}
	ex.closed = true
	jobs := make([]*Job, 0, len(ex.jobs))
	for _, j := range ex.jobs {
		jobs = append(jobs, j)
	}
	ex.mu.Unlock()

	ex.cancel()
	for _, j := range jobs {
		j.Close()
		if j.loopDone != nil {
			<-j.loopDone
		}
	}
	// Barrier: a manual CloseRound that passed the closed-check is still
	// scoring on the pool; taking each job's closeMu waits it out before
	// the pool goes away.
	for _, j := range jobs {
		j.closeMu.Lock()
		j.closeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
	ex.pool.close()
}

package exchange

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"fmore/internal/auction"
	"fmore/internal/partition"
	"fmore/internal/promtext"
)

// twoPartitionMap builds a v1 map over p0/p1 with placeholder URLs (core
// tests never dial them; ownership ignores URLs entirely).
func twoPartitionMap(version int64) *partition.Map {
	return &partition.Map{Version: version, Partitions: []partition.Replica{
		{Partition: "p0", URL: "http://127.0.0.1:18780"},
		{Partition: "p1", URL: "http://127.0.0.1:18781"},
	}}
}

// jobOwnedBy finds a job ID the map assigns to the wanted partition.
func jobOwnedBy(t *testing.T, m *partition.Map, want string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("pjob-%d", i)
		if owner, ok := m.Owner(id); ok && owner.Partition == want {
			return id
		}
	}
	t.Fatalf("no job id hashes to partition %s", want)
	return ""
}

// TestPartitionedCreateRejectsForeignJob: an explicit job ID belonging to
// the other partition is refused at create time with the owner in the
// error, while an owned ID and auto-assigned IDs land normally.
func TestPartitionedCreateRejectsForeignJob(t *testing.T) {
	m := twoPartitionMap(1)
	ex := New(Options{Partition: &partition.Assignment{Local: "p0", Map: partition.NewHandle(m)}})
	defer ex.Close()

	foreign := jobOwnedBy(t, m, "p1")
	_, err := ex.CreateJob(JobSpec{ID: foreign, Auction: auction.Config{Rule: testRule(t, 0), K: 2}})
	var wp *WrongPartitionError
	if !errors.As(err, &wp) {
		t.Fatalf("foreign create err = %v, want WrongPartitionError", err)
	}
	if wp.Partition != "p1" || wp.ReplicaURL != "http://127.0.0.1:18781" || wp.MapVersion != 1 {
		t.Fatalf("wrong-partition error detail = %+v", wp)
	}

	owned := jobOwnedBy(t, m, "p0")
	if _, err := ex.CreateJob(JobSpec{ID: owned, Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatalf("owned create: %v", err)
	}
	// Auto-assigned IDs are drawn until one is owned locally.
	for i := 0; i < 8; i++ {
		j, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 0), K: 2}})
		if err != nil {
			t.Fatalf("auto create %d: %v", i, err)
		}
		if !m.Owns("p0", j.ID()) {
			t.Fatalf("auto-assigned job %q is not owned by p0", j.ID())
		}
	}
	if got := ex.Metrics().WrongPartition; got != 1 {
		t.Errorf("wrong_partition counter = %d, want 1", got)
	}
}

// TestPartitionedMissClassification pins host-based serving: a hosted job is
// always served, a non-hosted job the map places elsewhere answers
// wrong_partition, and a non-hosted job the map places here stays
// unknown_job.
func TestPartitionedMissClassification(t *testing.T) {
	m := twoPartitionMap(1)
	ex := New(Options{Partition: &partition.Assignment{Local: "p0", Map: partition.NewHandle(m)}})
	defer ex.Close()

	hosted := jobOwnedBy(t, m, "p0")
	if _, err := ex.CreateJob(JobSpec{ID: hosted, Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	runRound(t, ex, hosted, 1)

	foreign := jobOwnedBy(t, m, "p1")
	var wp *WrongPartitionError
	if _, err := ex.SubmitBid(foreign, auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.As(err, &wp) {
		t.Fatalf("foreign bid err = %v, want WrongPartitionError", err)
	}
	if _, err := ex.CloseRound(foreign); !errors.As(err, &wp) {
		t.Fatalf("foreign close err = %v, want WrongPartitionError", err)
	}

	// Owned by p0 under the map but never created: plain unknown_job — a
	// redirect would bounce the client between replicas forever.
	ghost := ""
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("ghost-%d", i)
		if m.Owns("p0", id) {
			ghost = id
			break
		}
	}
	if _, err := ex.CloseRound(ghost); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("ghost close err = %v, want ErrUnknownJob", err)
	}
}

// TestPartitionedMapVersionBump: after a newer map moves a job's ownership,
// the hosting replica keeps serving it (host-based reads — migration is
// future work), and a replica that never hosted it reports the new owner at
// the new version.
func TestPartitionedMapVersionBump(t *testing.T) {
	v1 := twoPartitionMap(1)
	h0 := partition.NewHandle(v1)
	ex0 := New(Options{Partition: &partition.Assignment{Local: "p0", Map: h0}})
	defer ex0.Close()
	h1 := partition.NewHandle(v1)
	ex1 := New(Options{Partition: &partition.Assignment{Local: "p1", Map: h1}})
	defer ex1.Close()

	// v2 renames p0 to p2 served by a third replica. Pick a job owned by p0
	// under v1 that lands on p2 under v2, so the bump demonstrably moves it.
	v2 := &partition.Map{Version: 2, Partitions: []partition.Replica{
		{Partition: "p2", URL: "http://127.0.0.1:18782"},
		{Partition: "p1", URL: "http://127.0.0.1:18781"},
	}}
	job := ""
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("pjob-%d", i)
		if v1.Owns("p0", id) && v2.Owns("p2", id) {
			job = id
			break
		}
	}
	if job == "" {
		t.Fatal("no job id moves p0 -> p2 across the map bump")
	}
	if _, err := ex0.CreateJob(JobSpec{ID: job, Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	if !h0.Advance(v2) || !h1.Advance(v2) {
		t.Fatal("Advance rejected a newer map")
	}

	// The hosting replica still serves its job.
	runRound(t, ex0, job, 1)

	// A replica that never hosted it reports the v2 owner.
	_, err := ex1.SubmitBid(job, auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
	var wp *WrongPartitionError
	if !errors.As(err, &wp) {
		t.Fatalf("post-bump bid err = %v, want WrongPartitionError", err)
	}
	if wp.Partition != "p2" || wp.MapVersion != 2 {
		t.Fatalf("post-bump owner = %+v, want p2 at map v2", wp)
	}
}

// TestPartitionedWALNamespaces: two replicas share one data dir parent; each
// namespaces its WAL under replica-<partition>, so locks and segments never
// collide and each recovers only its own jobs.
func TestPartitionedWALNamespaces(t *testing.T) {
	parent := t.TempDir()
	m := twoPartitionMap(1)
	open := func(local string) *Exchange {
		t.Helper()
		ex, err := Open(parent, Options{Partition: &partition.Assignment{Local: local, Map: partition.NewHandle(m)}})
		if err != nil {
			t.Fatalf("open %s: %v", local, err)
		}
		return ex
	}
	ex0, ex1 := open("p0"), open("p1")

	job0, job1 := jobOwnedBy(t, m, "p0"), jobOwnedBy(t, m, "p1")
	if _, err := ex0.CreateJob(JobSpec{ID: job0, Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex1.CreateJob(JobSpec{ID: job1, Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	runRound(t, ex0, job0, 1)
	runRound(t, ex1, job1, 1)
	ex0.Close()
	ex1.Close()

	for _, sub := range []string{"replica-p0", "replica-p1"} {
		if st, err := os.Stat(filepath.Join(parent, sub)); err != nil || !st.IsDir() {
			t.Fatalf("expected WAL namespace %s: %v", sub, err)
		}
	}

	// Each replica recovers its own job and only its own job.
	re0, re1 := open("p0"), open("p1")
	defer re0.Close()
	defer re1.Close()
	if _, ok := re0.Job(job0); !ok {
		t.Errorf("p0 lost %s across restart", job0)
	}
	if _, ok := re0.Job(job1); ok {
		t.Errorf("p0 recovered p1's job %s", job1)
	}
	if _, ok := re1.Job(job1); !ok {
		t.Errorf("p1 lost %s across restart", job1)
	}
}

// TestPartitionHTTPSurface covers the wire contract: 421 wrong_partition
// with the owner in the envelope, GET /v1/cluster/partitions, and the
// partition entries in the Prometheus exposition (validated by promtext).
func TestPartitionHTTPSurface(t *testing.T) {
	m := twoPartitionMap(3)
	ex := New(Options{Partition: &partition.Assignment{Local: "p0", Map: partition.NewHandle(m)}})
	defer ex.Close()
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	foreign := jobOwnedBy(t, m, "p1")
	resp, body := postJSON(t, srv.URL+"/v1/jobs/"+foreign+"/bids", map[string]any{
		"node_id": 1, "qualities": []float64{0.5, 0.5}, "payment": 0.1,
	})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign bid status = %d body %v, want 421", resp.StatusCode, body)
	}
	if body["code"] != "wrong_partition" || body["partition"] != "p1" ||
		body["replica_url"] != "http://127.0.0.1:18781" || body["map_version"].(float64) != 3 {
		t.Fatalf("wrong_partition envelope = %v", body)
	}

	resp, body = getJSON(t, srv.URL+"/v1/cluster/partitions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster partitions status = %d body %v", resp.StatusCode, body)
	}
	if body["version"].(float64) != 3 || body["local"] != "p0" || len(body["partitions"].([]any)) != 2 {
		t.Fatalf("cluster partitions body = %v", body)
	}

	// An unpartitioned exchange 404s the endpoint (the SDK's routing-off
	// signal) and never answers wrong_partition.
	plain := New(Options{})
	defer plain.Close()
	psrv := httptest.NewServer(NewHandler(plain))
	defer psrv.Close()
	if resp, _ := getJSON(t, psrv.URL+"/v1/cluster/partitions"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unpartitioned cluster endpoint status = %d, want 404", resp.StatusCode)
	}
	if resp, body := getJSON(t, psrv.URL+"/v1/jobs/"+foreign); resp.StatusCode != http.StatusNotFound || body["code"] != "unknown_job" {
		t.Fatalf("unpartitioned miss = %d %v, want 404 unknown_job", resp.StatusCode, body)
	}

	// Prometheus entries: info gauge with the partition label, map version,
	// misroute counter — all through the validating parser.
	var buf bytes.Buffer
	if err := writePrometheus(&buf, ex); err != nil {
		t.Fatal(err)
	}
	page, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("partitioned exposition does not parse: %v\n%s", err, buf.String())
	}
	info := page.Families["fmore_exchange_partition_id"]
	if info == nil || info.Type != "gauge" || len(info.Samples) != 1 ||
		info.Samples[0].Labels["partition"] != "p0" || info.Samples[0].Value != 1 {
		t.Fatalf("partition_id family = %+v", info)
	}
	if v, err := page.Value("fmore_exchange_partition_map_version"); err != nil || v != 3 {
		t.Fatalf("partition_map_version = %v err %v, want 3", v, err)
	}
	if v, err := page.Value("fmore_exchange_wrong_partition_total"); err != nil || v != 1 {
		t.Fatalf("wrong_partition_total = %v err %v, want 1", v, err)
	}
}

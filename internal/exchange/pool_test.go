package exchange

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fmore/internal/auction"
)

func TestScorePoolMatchesInlineScoring(t *testing.T) {
	rule, err := auction.NewAdditive(0.4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := newScorePool(4, 16) // small chunk: force multi-task batches
	defer p.close()

	rng := rand.New(rand.NewSource(3))
	bids := make([]auction.Bid, 301) // deliberately not a chunk multiple
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   rng.Float64() * 0.3,
		}
	}
	scores := make([]float64, len(bids))
	var batch batchState
	if err := p.score(rule, bids, scores, &batch); err != nil {
		t.Fatal(err)
	}
	for i, b := range bids {
		want, err := auction.Score(rule, b.Qualities, b.Payment)
		if err != nil {
			t.Fatal(err)
		}
		if scores[i] != want {
			t.Fatalf("scores[%d] = %v, want %v", i, scores[i], want)
		}
	}
}

func TestScorePoolPropagatesErrors(t *testing.T) {
	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := newScorePool(2, 8)
	defer p.close()

	bids := make([]auction.Bid, 20)
	for i := range bids {
		bids[i] = auction.Bid{NodeID: i, Qualities: []float64{0.5, 0.5}, Payment: 0.1}
	}
	bids[13].Qualities = []float64{math.NaN(), 0.5}
	scores := make([]float64, len(bids))
	var batch batchState
	if err := p.score(rule, bids, scores, &batch); err == nil {
		t.Fatal("NaN quality scored without error")
	}
	// The batch state must be reusable after a failure.
	bids[13].Qualities = []float64{0.5, 0.5}
	if err := p.score(rule, bids, scores, &batch); err != nil {
		t.Fatalf("reused batch after failure: %v", err)
	}
}

// TestScoreInlineEquivalence pins the inline fast path: a slate scored
// inline (N <= chunk) is identical — values and order — to the same slate
// forced through the worker hand-off, and a full round produces
// byte-identical outcomes under either chunk setting (scoring draws nothing
// from the round rng, so the draw sequence cannot diverge).
func TestScoreInlineEquivalence(t *testing.T) {
	rule, err := auction.NewAdditive(0.4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	bids := testBids(2, 1, 100)
	inlinePool := newScorePool(4, 128) // N <= chunk: inline path
	defer inlinePool.close()
	handoffPool := newScorePool(4, 7) // N > chunk: pooled path, odd chunk
	defer handoffPool.close()

	inlineScores := make([]float64, len(bids))
	pooledScores := make([]float64, len(bids))
	var batch batchState
	if err := inlinePool.score(rule, bids, inlineScores, &batch); err != nil {
		t.Fatal(err)
	}
	if err := handoffPool.score(rule, bids, pooledScores, &batch); err != nil {
		t.Fatal(err)
	}
	for i := range inlineScores {
		if inlineScores[i] != pooledScores[i] {
			t.Fatalf("scores[%d]: inline %v != pooled %v", i, inlineScores[i], pooledScores[i])
		}
	}

	// Errors surface identically on the inline path.
	bad := testBids(2, 1, 10)
	bad[3].Qualities = []float64{math.NaN(), 0.5}
	if err := inlinePool.score(rule, bad, make([]float64, len(bad)), &batch); err == nil {
		t.Fatal("inline path scored a NaN quality without error")
	}

	// Whole-round equivalence: same seed, same bids, chunk sizes on either
	// side of the slate size — identical outcomes.
	outcome := func(chunk int) RoundOutcome {
		t.Helper()
		ex := New(Options{ScoreChunk: chunk})
		defer ex.Close()
		if _, err := ex.CreateJob(JobSpec{ID: "eq", Auction: auction.Config{Rule: rule, K: 3}, Seed: 11}); err != nil {
			t.Fatal(err)
		}
		for _, b := range testBids(2, 1, 24) {
			if _, err := ex.SubmitBid("eq", b); err != nil {
				t.Fatal(err)
			}
		}
		ro, err := ex.CloseRound("eq")
		if err != nil {
			t.Fatal(err)
		}
		return ro
	}
	inlineRO, pooledRO := outcome(128), outcome(5)
	if !reflect.DeepEqual(inlineRO.Outcome, pooledRO.Outcome) {
		t.Fatalf("round outcome diverged:\ninline: %+v\npooled: %+v", inlineRO.Outcome, pooledRO.Outcome)
	}
}

// BenchmarkScorePool_SmallSlate is the threshold evidence for the inline
// fast path: the same N-bid slate scored inline (chunk >= N) versus through
// the worker hand-off (chunk 1 forces one task per bid; chunk N/2 a
// two-task split). Inline wins for every N up to one chunk because a
// single-chunk batch is serial either way — the pooled variant only adds
// channel transfer, a worker wakeup, and the batch wait.
func BenchmarkScorePool_SmallSlate(b *testing.B) {
	rule, err := auction.NewAdditive(0.4, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{2, 8, 32, 128} {
		bids := testBids(1, 1, n)
		scores := make([]float64, n)
		b.Run(fmt.Sprintf("inline/n=%d", n), func(b *testing.B) {
			p := newScorePool(4, defaultScoreChunk)
			defer p.close()
			var batch batchState
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := p.score(rule, bids, scores, &batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("handoff/n=%d", n), func(b *testing.B) {
			// chunk n/2 (min 1) forces the channel path with a realistic
			// split instead of degenerate 1-bid tasks.
			chunk := n / 2
			if chunk < 1 {
				chunk = 1
			}
			p := newScorePool(4, chunk)
			defer p.close()
			var batch batchState
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := p.score(rule, bids, scores, &batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

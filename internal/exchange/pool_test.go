package exchange

import (
	"math"
	"math/rand"
	"testing"

	"fmore/internal/auction"
)

func TestScorePoolMatchesInlineScoring(t *testing.T) {
	rule, err := auction.NewAdditive(0.4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := newScorePool(4, 16) // small chunk: force multi-task batches
	defer p.close()

	rng := rand.New(rand.NewSource(3))
	bids := make([]auction.Bid, 301) // deliberately not a chunk multiple
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   rng.Float64() * 0.3,
		}
	}
	scores := make([]float64, len(bids))
	var batch batchState
	if err := p.score(rule, bids, scores, &batch); err != nil {
		t.Fatal(err)
	}
	for i, b := range bids {
		want, err := auction.Score(rule, b.Qualities, b.Payment)
		if err != nil {
			t.Fatal(err)
		}
		if scores[i] != want {
			t.Fatalf("scores[%d] = %v, want %v", i, scores[i], want)
		}
	}
}

func TestScorePoolPropagatesErrors(t *testing.T) {
	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := newScorePool(2, 8)
	defer p.close()

	bids := make([]auction.Bid, 20)
	for i := range bids {
		bids[i] = auction.Bid{NodeID: i, Qualities: []float64{0.5, 0.5}, Payment: 0.1}
	}
	bids[13].Qualities = []float64{math.NaN(), 0.5}
	scores := make([]float64, len(bids))
	var batch batchState
	if err := p.score(rule, bids, scores, &batch); err == nil {
		t.Fatal("NaN quality scored without error")
	}
	// The batch state must be reusable after a failure.
	bids[13].Qualities = []float64{0.5, 0.5}
	if err := p.score(rule, bids, scores, &batch); err != nil {
		t.Fatalf("reused batch after failure: %v", err)
	}
}

package exchange

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fmore/internal/admission"
	"fmore/internal/auction"
	"fmore/internal/partition"
	"fmore/internal/transport"
)

// maxWait caps how long GET /v1/jobs/{id}/outcome?wait=1 blocks.
const maxWait = 30 * time.Second

// sseHeartbeat is the event stream's keep-alive comment interval; proxies
// and idle-connection reapers see traffic even on a quiet job. Tests shorten
// it.
var sseHeartbeat = 15 * time.Second

// Error codes of the v1 error envelope. Every error response is
//
//	{"code": "...", "message": "...", "retry_after_ms": N?}
//
// with Content-Type application/json; code is stable API surface, message is
// human-readable detail.
const (
	codeInvalidRequest = "invalid_request"
	codeNotFound       = "not_found"
	codeNotAllowed     = "method_not_allowed"
	codeUnknownJob     = "unknown_job"
	codeRoundPending   = "round_pending"
	codeNoStrategy     = "no_strategy"
	codeOutcomeEvicted = "outcome_evicted"
	codeDuplicateBid   = "duplicate_bid"
	codeJobClosed      = "job_closed"
	codeBelowQuorum    = "below_quorum"
	codeExchangeClosed = "exchange_closed"
	codeNotRegistered  = "not_registered"
	codeBlacklisted    = "blacklisted"
	codeTimeout        = "timeout"
	codeInternal       = "internal_error"
	// codeOverloaded (429) means the admission controller shed the request
	// (rate limit or in-flight cap); the envelope's retry_after_ms says when
	// to try again. Deliberate backpressure — retryable by contract.
	codeOverloaded = "overloaded"
	// codeWrongPartition (421 Misdirected Request) means the cluster map
	// places the job on another replica; the envelope carries that replica's
	// base URL so the caller can re-aim in one hop.
	codeWrongPartition = "wrong_partition"
	// codeDurabilityLost (503) means the replica's outcome log took a
	// sticky error and it refuses durable writes (degraded mode). Reads
	// keep serving; clients should retry the write against a healthy
	// replica after refreshing the partition map.
	codeDurabilityLost = "durability_lost"
)

// errorEnvelope is the uniform v1 error shape. The partition fields are set
// only on wrong_partition responses: they name the owning replica under the
// responding replica's map so routers and SDKs retry against the right box
// without a second map fetch.
type errorEnvelope struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Partition    string `json:"partition,omitempty"`
	ReplicaURL   string `json:"replica_url,omitempty"`
	MapVersion   int64  `json:"map_version,omitempty"`
}

// NewHandler returns the exchange's HTTP front end. The versioned surface
// lives under /v1:
//
//	POST   /v1/jobs                  create a job (Idempotency-Key honored)
//	GET    /v1/jobs                  list jobs (cursor pagination)
//	GET    /v1/jobs/{id}             job status
//	DELETE /v1/jobs/{id}             close and evict a job
//	POST   /v1/jobs/{id}/bids        submit one sealed bid (Idempotency-Key)
//	POST   /v1/jobs/{id}/close       close the current round now
//	GET    /v1/jobs/{id}/outcome     fetch a round outcome (?round=N, ?wait=1)
//	GET    /v1/jobs/{id}/outcomes    list retained outcomes (cursor pagination)
//	GET    /v1/jobs/{id}/events      SSE round stream (Last-Event-ID resume)
//	GET    /v1/jobs/{id}/strategy    solved equilibrium bid curve (?samples=N)
//	POST   /v1/nodes                 register a node
//	POST   /v1/nodes/{id}/blacklist  ban a node
//	GET    /v1/metrics               throughput and latency snapshot (JSON)
//	GET    /v1/metrics/prometheus    the same counters in Prometheus text format
//	GET    /v1/cluster/partitions    the replica's cluster map (404 unpartitioned)
//	GET    /v1/healthz               overload state (503 + retry_after_ms when shedding)
//
// The pre-v1 unversioned aliases from the original API were removed after
// their one-release deprecation window; pre-v1 paths now 404 with the v1
// JSON envelope. All errors use the {code, message, retry_after_ms?}
// envelope; wrong_partition (421) additionally names the owning replica. The
// per-job and per-node rollup endpoints (GET /v1/jobs/{id}/stats,
// GET /v1/nodes/{id}/stats) are served by the internal/analytics wrapper
// handler, which embeds this one.
func NewHandler(ex *Exchange) http.Handler {
	h := &handler{ex: ex, idem: newIdemCache(idemCacheCap)}
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		fn           http.HandlerFunc
	}{
		{http.MethodPost, "/jobs", h.createJob},
		{http.MethodGet, "/jobs", h.listJobs},
		{http.MethodGet, "/jobs/{id}", h.jobStatus},
		{http.MethodDelete, "/jobs/{id}", h.removeJob},
		{http.MethodPost, "/jobs/{id}/bids", h.submitBid},
		{http.MethodPost, "/jobs/{id}/close", h.closeRound},
		{http.MethodGet, "/jobs/{id}/outcome", h.outcome},
		{http.MethodGet, "/jobs/{id}/outcomes", h.listOutcomes},
		{http.MethodGet, "/jobs/{id}/events", h.events},
		{http.MethodGet, "/jobs/{id}/strategy", h.strategy},
		{http.MethodPost, "/nodes", h.registerNode},
		{http.MethodPost, "/nodes/{id}/blacklist", h.blacklistNode},
		{http.MethodGet, "/metrics", h.metrics},
		{http.MethodGet, "/metrics/prometheus", h.metricsPrometheus},
		{http.MethodGet, "/cluster/partitions", h.clusterPartitions},
		{http.MethodGet, "/healthz", h.healthz},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" /v1"+rt.path, rt.fn)
	}
	// Fallback for everything the typed routes miss. The method-less "/"
	// pattern outranks the mux's built-in 405 handling, so wrong-method
	// requests land here too: re-probe the mux per method to tell "no such
	// route" (404) from "route exists under another method" (405 with
	// Allow) — both in the JSON envelope, never the mux's text/plain.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if allowed := allowedMethods(mux, r); len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeError(w, http.StatusMethodNotAllowed, codeNotAllowed,
				fmt.Sprintf("%s not allowed for %s (allow: %s)", r.Method, r.URL.Path, strings.Join(allowed, ", ")))
			return
		}
		writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Sprintf("no route for %s %s (the versioned API lives under /v1)", r.Method, r.URL.Path))
	})
	return mux
}

// allowedMethods returns the methods under which the request's path matches
// a specific route (the catch-all excluded).
func allowedMethods(mux *http.ServeMux, r *http.Request) []string {
	var allowed []string
	for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodDelete} {
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := mux.Handler(probe); pattern != "" && pattern != "/" {
			allowed = append(allowed, m)
		}
	}
	return allowed
}

type handler struct {
	ex   *Exchange
	idem *idemCache
}

// --- idempotency ------------------------------------------------------------

// idemCacheCap bounds the recorded-response cache; entries beyond it evict
// FIFO. Keys live as long as the process (replays are best-effort, not
// durable across restarts).
const idemCacheCap = 4096

// maxIdempotentBody bounds the request payloads read for fingerprinting.
const maxIdempotentBody = 8 << 20

// idemEntry is one idempotency-key slot. done closes when the first request
// carrying the key settles; status 0 afterwards means it failed without
// recording a response (the key is released for a clean retry).
type idemEntry struct {
	done   chan struct{}
	status int
	body   []byte
}

// idemCache replays recorded responses for repeated Idempotency-Key values,
// so a client retrying POST /v1/jobs or a bid submission after a network
// failure gets the original result instead of a duplicate-side-effect
// error. Entries are claimed before the operation executes, so a retry
// racing its own in-flight first attempt waits for that attempt's recorded
// response instead of executing twice.
type idemCache struct {
	cap   int
	mu    sync.Mutex
	m     map[string]*idemEntry
	order []string
}

func newIdemCache(cap int) *idemCache {
	return &idemCache{cap: cap, m: make(map[string]*idemEntry)}
}

// begin claims the key. owner reports whether the caller runs the operation
// (and must settle the entry via finish or abort); otherwise the returned
// entry belongs to an earlier request — wait on done and replay.
func (c *idemCache) begin(key string) (e *idemEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		return e, false
	}
	if len(c.m) >= c.cap {
		c.evictOneLocked()
	}
	e = &idemEntry{done: make(chan struct{})}
	c.m[key] = e
	c.order = append(c.order, key)
	return e, true
}

// evictOneLocked drops the oldest *settled* entry. In-flight entries are
// never evicted — losing one would let a racing duplicate become a second
// owner and execute the operation twice; if every entry is in flight the
// cache temporarily exceeds cap (bounded by concurrent keyed requests).
func (c *idemCache) evictOneLocked() {
	for i, k := range c.order {
		e := c.m[k]
		select {
		case <-e.done:
			delete(c.m, k)
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		default:
		}
	}
}

// finish records the response and releases waiters.
func (c *idemCache) finish(e *idemEntry, status int, body []byte) {
	e.status = status
	e.body = body
	close(e.done)
}

// abort releases the key after a failed attempt: waiters (and future
// requests) get a clean slate instead of a recorded error. The key leaves
// the eviction order too — otherwise error-dominated keyed traffic would
// grow it without bound (and a later re-begin of the same key would appear
// twice, letting an eviction of the stale occurrence delete the live one).
func (c *idemCache) abort(key string, e *idemEntry) {
	c.mu.Lock()
	if cur, ok := c.m[key]; ok && cur == e {
		delete(c.m, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	close(e.done)
}

// idemToken is one handler's claim on an idempotency key. A zero token
// (no Idempotency-Key header) is inert.
type idemToken struct {
	c       *idemCache
	key     string
	e       *idemEntry
	settled bool
}

// finish records a successful response; abort (deferred) becomes a no-op.
func (t *idemToken) finish(status int, body []byte) {
	if t.e == nil || t.settled {
		return
	}
	t.settled = true
	t.c.finish(t.e, status, body)
}

// abort releases an unsettled claim; deferred on every handler exit path.
func (t *idemToken) abort() {
	if t.e == nil || t.settled {
		return
	}
	t.settled = true
	t.c.abort(t.key, t.e)
}

// idemBegin implements the Idempotency-Key contract for one request. The
// key is scoped to the operation and fingerprinted with the payload, so a
// reused key with a different body does not replay the old response — it
// misses the cache and runs normally (typically into the underlying
// conflict). handled reports that a recorded response was replayed (or an
// in-flight twin's response was awaited) and the caller must return.
func (h *handler) idemBegin(w http.ResponseWriter, r *http.Request, op, scope string, body []byte) (tok idemToken, handled bool) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		return idemToken{}, false
	}
	sum := sha256.Sum256(body)
	full := op + "\x00" + scope + "\x00" + key + "\x00" + string(sum[:])
	for {
		e, owner := h.idem.begin(full)
		if owner {
			return idemToken{c: h.idem, key: full, e: e}, false
		}
		select {
		case <-e.done:
		case <-r.Context().Done():
			return idemToken{}, true // client gone; nothing to write
		}
		if e.status == 0 {
			// The first attempt aborted without a recorded response; race
			// for ownership of a fresh slot.
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Idempotent-Replay", "true")
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body)
		return idemToken{}, true
	}
}

// --- request/response shapes ------------------------------------------------

// jobRequest is the POST /v1/jobs payload.
type jobRequest struct {
	ID          string             `json:"id,omitempty"`
	Rule        transport.RuleSpec `json:"rule"`
	K           int                `json:"k"`
	Payment     string             `json:"payment,omitempty"` // "first-price" (default) | "second-price"
	Psi         float64            `json:"psi,omitempty"`
	Seed        int64              `json:"seed,omitempty"`
	BidWindowMS int64              `json:"bid_window_ms,omitempty"` // 0 = manual rounds
	MaxRounds   int                `json:"max_rounds,omitempty"`
	MinBids     int                `json:"min_bids,omitempty"`
	// KeepOutcomes bounds the job's retained outcome history (0 = server
	// default of 128); older rounds answer 410 Gone.
	KeepOutcomes int `json:"keep_outcomes,omitempty"`
	// Equilibrium optionally describes the bidder-side game; with it the
	// job serves GET /v1/jobs/{id}/strategy so clients can bid the Theorem 1
	// equilibrium without solving it locally.
	Equilibrium *transport.EquilibriumSpec `json:"equilibrium,omitempty"`
}

// jobResponse describes a hosted job, spec and window behavior included so
// clients can see how much history is retained and how rounds are driven.
type jobResponse struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	Round        int    `json:"round"`
	PendingBids  int    `json:"pending_bids"`
	Rule         string `json:"rule"`
	K            int    `json:"k"`
	BidWindowMS  int64  `json:"bid_window_ms"` // 0 = manual rounds
	MaxRounds    int    `json:"max_rounds"`
	MinBids      int    `json:"min_bids"`
	KeepOutcomes int    `json:"keep_outcomes"`
	// HasStrategy reports whether GET /v1/jobs/{id}/strategy is available.
	HasStrategy bool `json:"has_strategy"`
}

// jobListResponse is the GET /v1/jobs page.
type jobListResponse struct {
	Jobs []jobResponse `json:"jobs"`
	// NextCursor, when non-empty, fetches the next page via ?cursor=.
	NextCursor string `json:"next_cursor,omitempty"`
}

// bidRequest is the POST /v1/jobs/{id}/bids payload.
type bidRequest struct {
	NodeID    int       `json:"node_id"`
	Qualities []float64 `json:"qualities"`
	Payment   float64   `json:"payment"`
	Meta      string    `json:"meta,omitempty"`
}

// winnerJSON is one selected bid in an outcome response. BidPayment is the
// payment the bid asked for; Payment is what the aggregator pays (they
// differ under the second-price rule).
type winnerJSON struct {
	NodeID     int       `json:"node_id"`
	Score      float64   `json:"score"`
	Payment    float64   `json:"payment"`
	BidPayment float64   `json:"bid_payment"`
	Qualities  []float64 `json:"qualities"`
}

// outcomeResponse is the GET /v1/jobs/{id}/outcome payload, and the data of
// round_closed events. Error is set (and the winner fields zero) when the
// round failed.
type outcomeResponse struct {
	Job              string       `json:"job"`
	Round            int          `json:"round"`
	NumBids          int          `json:"num_bids"`
	LatencyMS        float64      `json:"latency_ms"`
	Winners          []winnerJSON `json:"winners"`
	TotalPayment     float64      `json:"total_payment"`
	AggregatorProfit float64      `json:"aggregator_profit"`
	// Scores is indexed by the round's bids in ascending node-ID order.
	Scores []float64 `json:"scores"`
	Error  string    `json:"error,omitempty"`
}

// outcomeListResponse is the GET /v1/jobs/{id}/outcomes page.
type outcomeListResponse struct {
	Outcomes []outcomeResponse `json:"outcomes"`
	// NextCursor, when non-empty, is the round number to pass as ?cursor=
	// for the next page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// --- handlers ---------------------------------------------------------------

func (h *handler) createJob(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxIdempotentBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("reading job spec: %v", err))
		return
	}
	tok, handled := h.idemBegin(w, r, "create-job", "", raw)
	if handled {
		return
	}
	defer tok.abort()
	var req jobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	rule, err := req.Rule.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	var payment auction.PaymentRule
	switch req.Payment {
	case "", "first-price":
		payment = auction.FirstPrice
	case "second-price":
		payment = auction.SecondPrice
	default:
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("unknown payment rule %q", req.Payment))
		return
	}
	job, err := h.ex.CreateJob(JobSpec{
		ID:           req.ID,
		Auction:      auction.Config{Rule: rule, K: req.K, Payment: payment, Psi: req.Psi},
		Seed:         req.Seed,
		BidWindow:    time.Duration(req.BidWindowMS) * time.Millisecond,
		MaxRounds:    req.MaxRounds,
		MinBids:      req.MinBids,
		KeepOutcomes: req.KeepOutcomes,
		Equilibrium:  req.Equilibrium,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	h.writeJSONIdempotent(w, http.StatusCreated, jobView(job), &tok)
}

// listJobs serves the v1 paginated listing: jobs in lexical ID order,
// ?cursor= the last ID of the previous page, ?limit= page size.
func (h *handler) listJobs(w http.ResponseWriter, r *http.Request) {
	limit, err := parseLimit(r.URL.Query().Get("limit"), 100, 1000)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	cursor := r.URL.Query().Get("cursor")
	ids := h.ex.JobIDs()
	if cursor != "" {
		for len(ids) > 0 && ids[0] <= cursor {
			ids = ids[1:]
		}
	}
	var resp jobListResponse
	resp.Jobs = make([]jobResponse, 0, min(limit, len(ids)))
	for _, id := range ids {
		if len(resp.Jobs) == limit {
			resp.NextCursor = resp.Jobs[len(resp.Jobs)-1].ID
			break
		}
		if job, ok := h.ex.Job(id); ok {
			resp.Jobs = append(resp.Jobs, jobView(job))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveJob looks up a hosted job; on a miss it writes unknown_job — or
// wrong_partition with the owner's URL when the cluster map places the job
// on another replica — and returns ok=false.
func (h *handler) resolveJob(w http.ResponseWriter, id string) (*Job, bool) {
	job, ok := h.ex.Job(id)
	if !ok {
		writeErr(w, h.ex.missingJob(id))
		return nil, false
	}
	return job, true
}

func (h *handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := h.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobView(job))
}

func (h *handler) submitBid(w http.ResponseWriter, r *http.Request) {
	// The in-flight gate runs before the body read and before the
	// idempotency claim: a shed request is the cheapest possible 429 and
	// never burns its Idempotency-Key, so the client's retry replays
	// nothing stale.
	adm := h.ex.Admission()
	if ok, retry := adm.BeginRequest(); !ok {
		writeOverloaded(w, admission.ScopeInflight, retry)
		return
	}
	defer adm.EndRequest()
	jobID := r.PathValue("id")
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxIdempotentBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("reading bid: %v", err))
		return
	}
	tok, handled := h.idemBegin(w, r, "submit-bid", jobID, raw)
	if handled {
		return
	}
	defer tok.abort()
	var req bidRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("decoding bid: %v", err))
		return
	}
	round, err := h.ex.SubmitBid(jobID, auction.Bid{
		NodeID:    req.NodeID,
		Qualities: req.Qualities,
		Payment:   req.Payment,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	// Meta-on-bid is a labeling convenience of the open posture only, and
	// only an accepted bid earns it: rejected requests must not mutate the
	// registry, and on a gated exchange registration happens exclusively
	// through POST /v1/nodes.
	if req.Meta != "" && !h.ex.opts.RequireRegistration {
		h.ex.RegisterNode(req.NodeID, req.Meta)
	}
	h.writeJSONIdempotent(w, http.StatusAccepted, map[string]any{"job": jobID, "round": round}, &tok)
}

func (h *handler) removeJob(w http.ResponseWriter, r *http.Request) {
	if err := h.ex.RemoveJob(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": r.PathValue("id"), "removed": true})
}

// closeRound closes the collecting round now. An already-closed job answers
// 409 job_closed (the job exists — the operation conflicts with its state);
// only a job the exchange does not host answers 404.
func (h *handler) closeRound(w http.ResponseWriter, r *http.Request) {
	ro, err := h.ex.CloseRound(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, outcomeView(ro))
}

func (h *handler) outcome(w http.ResponseWriter, r *http.Request) {
	job, ok := h.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	q := r.URL.Query()
	wait := false
	if s := q.Get("wait"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad wait %q (want a boolean)", s))
			return
		}
		wait = v
	}
	if q.Get("round") == "" && !wait {
		ro, ok := job.Latest()
		if !ok {
			writeError(w, http.StatusNotFound, codeRoundPending, "no completed rounds yet")
			return
		}
		if ro.Err != nil {
			// A failed round must not read as a winnerless success; report
			// it exactly as the by-round path would.
			writeErr(w, ro.Err)
			return
		}
		writeJSON(w, http.StatusOK, outcomeView(ro))
		return
	}
	if wait {
		ctx, cancel := context.WithTimeout(r.Context(), maxWait)
		defer cancel()
		var (
			ro  RoundOutcome
			err error
		)
		if s := q.Get("round"); s != "" {
			n, perr := strconv.Atoi(s)
			if perr != nil {
				writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad round %q", s))
				return
			}
			ro, err = job.WaitOutcome(ctx, n)
		} else {
			// No round named: wait for the latest completed round. Waiting
			// on the collecting round number would race with the bid window
			// closing between a client's bid and its poll.
			ro, err = job.WaitLatest(ctx)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, outcomeView(ro))
		return
	}
	n, err := strconv.Atoi(q.Get("round"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad round %q", q.Get("round")))
		return
	}
	ro, err := job.Outcome(n)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, outcomeView(ro))
}

// listOutcomes serves the v1 paginated outcome listing: retained rounds with
// numbers strictly greater than ?cursor=, oldest first. Failed rounds appear
// with their error set so pages stay contiguous.
func (h *handler) listOutcomes(w http.ResponseWriter, r *http.Request) {
	job, ok := h.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	limit, err := parseLimit(r.URL.Query().Get("limit"), 100, 1000)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error())
		return
	}
	after := 0
	if s := r.URL.Query().Get("cursor"); s != "" {
		after, err = strconv.Atoi(s)
		if err != nil || after < 0 {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad cursor %q (want a round number)", s))
			return
		}
	}
	page, more := job.OutcomesAfter(after, limit)
	resp := outcomeListResponse{Outcomes: make([]outcomeResponse, len(page))}
	for i, ro := range page {
		resp.Outcomes[i] = outcomeView(ro)
	}
	if more {
		resp.NextCursor = strconv.Itoa(page[len(page)-1].Round)
	}
	writeJSON(w, http.StatusOK, resp)
}

// events streams the job's round lifecycle as Server-Sent Events:
//
//	event: round_open    data: {"job": "...", "round": N}
//	event: round_closed  data: <outcomeResponse>   (id: round number)
//	event: job_closed    data: {"job": "..."}
//
// round_closed events carry the outcome inline and an SSE id equal to the
// round number; a reconnecting client sends Last-Event-ID (or ?after=) and
// every retained round it missed is replayed before live events resume, so
// a dropped subscriber loses nothing within the job's KeepOutcomes window.
// Heartbeat comments flow every sseHeartbeat while the stream idles. The
// stream ends after job_closed, or when the subscriber falls too far behind
// (reconnect to resume).
func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	job, ok := h.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "response writer does not support streaming")
		return
	}
	after := 0
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after")
	}
	if lastID != "" {
		n, err := strconv.Atoi(lastID)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad Last-Event-ID %q (want a round number)", lastID))
			return
		}
		after = n
	}

	// SSE subscriber cap: register the stream with the admission controller
	// before subscribing. At the cap the controller cancels the OLDEST
	// stream's context to make room — new subscribers always get in, and
	// the victim's select loop unwinds through its normal Unsubscribe path.
	// Heartbeats of admitted streams are never shed.
	if adm := h.ex.Admission(); adm != nil {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		release := adm.AcquireStream(cancel)
		defer release()
		r = r.WithContext(ctx)
	}

	past, cur, sub := job.Subscribe(after)
	if sub != nil {
		defer job.Unsubscribe(sub)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ro := range past {
		writeSSE(w, strconv.Itoa(ro.Round), EventRoundClosed, outcomeView(ro))
	}
	if sub == nil {
		writeSSE(w, "", EventJobClosed, map[string]string{"job": job.ID()})
		flusher.Flush()
		return
	}
	writeSSE(w, "", EventRoundOpen, map[string]any{"job": job.ID(), "round": cur})
	flusher.Flush()

	ticker := time.NewTicker(sseHeartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			_, _ = fmt.Fprint(w, ": hb\n\n")
			flusher.Flush()
		case ev, ok := <-sub.C:
			if !ok {
				// Dropped for falling behind; the client reconnects with
				// Last-Event-ID and replays what it missed.
				return
			}
			switch ev.Type {
			case EventRoundClosed:
				writeSSE(w, strconv.Itoa(ev.Round), EventRoundClosed, outcomeView(*ev.Outcome))
			case EventRoundOpen:
				writeSSE(w, "", EventRoundOpen, map[string]any{"job": ev.Job, "round": ev.Round})
			case EventJobClosed:
				writeSSE(w, "", EventJobClosed, map[string]string{"job": ev.Job})
				flusher.Flush()
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE emits one SSE frame. data is JSON-marshaled; json.Marshal output
// is single-line, so no data-field splitting is needed.
func writeSSE(w http.ResponseWriter, id, event string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	if id != "" {
		_, _ = fmt.Fprintf(w, "id: %s\n", id)
	}
	_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// strategyResponse is the GET /v1/jobs/{id}/strategy payload: the
// equilibrium bid curve sampled over the θ support. Clients interpolate
// linearly between points to obtain their own (quality, payment) bid.
type strategyResponse struct {
	Job     string                  `json:"job"`
	Rule    string                  `json:"rule"`
	N       int                     `json:"n"`
	K       int                     `json:"k"`
	ThetaLo float64                 `json:"theta_lo"`
	ThetaHi float64                 `json:"theta_hi"`
	Points  []auction.StrategyPoint `json:"points"`
}

// defaultStrategySamples balances curve fidelity against payload size; the
// solver's own θ grid has 129 points, so more than that adds nothing.
const defaultStrategySamples = 33

func (h *handler) strategy(w http.ResponseWriter, r *http.Request) {
	job, ok := h.resolveJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	samples := defaultStrategySamples
	if s := r.URL.Query().Get("samples"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 || n > 1024 {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad samples %q (want an integer in [2, 1024])", s))
			return
		}
		samples = n
	}
	strat, err := job.Strategy()
	if err != nil {
		writeErr(w, err)
		return
	}
	spec := job.Spec()
	lo, hi := strat.ThetaSupport()
	writeJSON(w, http.StatusOK, strategyResponse{
		Job:     job.ID(),
		Rule:    spec.Auction.Rule.Name(),
		N:       spec.Equilibrium.N,
		K:       spec.Auction.K,
		ThetaLo: lo,
		ThetaHi: hi,
		Points:  strat.SampleCurve(samples),
	})
}

func (h *handler) registerNode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		NodeID int    `json:"node_id"`
		Meta   string `json:"meta,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("decoding node: %v", err))
		return
	}
	info := h.ex.RegisterNode(req.NodeID, req.Meta)
	writeJSON(w, http.StatusOK, map[string]any{"node_id": info.ID, "bids": info.Bids()})
}

func (h *handler) blacklistNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Sprintf("bad node id %q", r.PathValue("id")))
		return
	}
	// BlacklistNode (not Registry().Blacklist) so the ban lands in the
	// outcome log and survives a restart.
	if !h.ex.BlacklistNode(id) {
		writeError(w, http.StatusNotFound, codeNotFound, fmt.Sprintf("node %d is not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node_id": id, "blacklisted": true})
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.ex.Metrics())
}

// clusterPartitionsResponse is the GET /v1/cluster/partitions payload: the
// replica's current cluster map plus its own partition. Routers and SDKs
// poll this (any replica serves the same map) and advance their local handle
// when version increases.
type clusterPartitionsResponse struct {
	Version    int64               `json:"version"`
	Local      string              `json:"local"`
	Partitions []partition.Replica `json:"partitions"`
}

// clusterPartitions serves the replica's cluster map. An unpartitioned
// exchange answers 404 not_found — the SDK treats that as "routing off".
func (h *handler) clusterPartitions(w http.ResponseWriter, _ *http.Request) {
	p := h.ex.Partition()
	var m *partition.Map
	if p != nil {
		m = p.Map.Load()
	}
	if m == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "exchange is not partitioned")
		return
	}
	writeJSON(w, http.StatusOK, clusterPartitionsResponse{
		Version:    m.Version,
		Local:      p.Local,
		Partitions: m.Partitions,
	})
}

// healthzResponse is the GET /v1/healthz payload. status is "ok",
// "overloaded" (admission backpressure, clears on its own) or "degraded"
// (durability lost, clears only on restart/failover); the admission_*
// fields mirror the controller's accounting (all zero when admission is
// disabled).
type healthzResponse struct {
	Status        string `json:"status"`
	RetryAfterMS  int64  `json:"retry_after_ms,omitempty"`
	WalFailedUnix int64  `json:"wal_failed_unix,omitempty"`
	Inflight      int64  `json:"admission_inflight"`
	ShedTotal     int64  `json:"admission_shed_total"`
	SSEActive     int64  `json:"admission_sse_active"`
}

// healthz is the health probe for routers and load balancers: 200 while
// the exchange accepts work, 503 + retry_after_ms while the admission
// controller reports overload (in-flight gate saturated, or a shed within
// the overload window) or the replica is degraded (outcome log failed —
// see the failure-model section in the package docs). Degraded wins over
// overloaded: it is the stronger condition, never clears on its own, and
// is reported with or without an admission controller installed. The
// handler itself is never shed — a prober must always get an answer.
func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	resp := healthzResponse{Status: "ok"}
	if adm := h.ex.Admission(); adm != nil {
		st := adm.Stats()
		resp.Inflight = st.Inflight
		resp.ShedTotal = st.ShedTotal()
		resp.SSEActive = st.SSEActive
		if st.Overloaded {
			resp.Status = "overloaded"
			resp.RetryAfterMS = retryMS(st.RetryAfter)
		}
	}
	if h.ex.Degraded() {
		resp.Status = "degraded"
		resp.WalFailedUnix = h.ex.DegradedSince()
		resp.RetryAfterMS = retryMS(time.Second)
	}
	status := http.StatusOK
	if resp.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// metricsPrometheus serves the same health counters in the Prometheus text
// exposition format (see prometheus.go and the catalog in doc.go).
func (h *handler) metricsPrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = writePrometheus(w, h.ex)
}

func jobView(j *Job) jobResponse {
	spec := j.Spec()
	return jobResponse{
		ID:           j.ID(),
		State:        j.State(),
		Round:        j.Round(),
		PendingBids:  j.PendingBids(),
		Rule:         spec.Auction.Rule.Name(),
		K:            spec.Auction.K,
		BidWindowMS:  int64(spec.BidWindow / time.Millisecond),
		MaxRounds:    spec.MaxRounds,
		MinBids:      spec.MinBids,
		KeepOutcomes: spec.KeepOutcomes,
		HasStrategy:  spec.Equilibrium != nil,
	}
}

// outcomeView renders a round for the wire. Failed rounds carry their error
// string (events and the outcome listing must represent them); the scalar
// outcome endpoints never reach this path with a failed round.
func outcomeView(ro RoundOutcome) outcomeResponse {
	resp := outcomeResponse{
		Job:       ro.JobID,
		Round:     ro.Round,
		NumBids:   ro.NumBids,
		LatencyMS: float64(ro.Latency) / float64(time.Millisecond),
	}
	if ro.Err != nil {
		resp.Error = ro.Err.Error()
		return resp
	}
	winners := make([]winnerJSON, len(ro.Outcome.Winners))
	for i, win := range ro.Outcome.Winners {
		winners[i] = winnerJSON{
			NodeID:     win.Bid.NodeID,
			Score:      win.Score,
			Payment:    win.Payment,
			BidPayment: win.Bid.Payment,
			Qualities:  win.Bid.Qualities,
		}
	}
	resp.Winners = winners
	resp.TotalPayment = ro.Outcome.TotalPayment()
	resp.AggregatorProfit = ro.Outcome.AggregatorProfit
	resp.Scores = ro.Outcome.Scores
	return resp
}

// parseLimit parses a ?limit= value with a default and an upper bound.
func parseLimit(s string, def, max int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad limit %q (want a positive integer)", s)
	}
	if n > max {
		n = max
	}
	return n, nil
}

// classify maps an exchange error onto its HTTP status and envelope code.
func classify(err error) (status int, code string) {
	var wp *WrongPartitionError
	var ov *OverloadError
	var dg *DegradedError
	switch {
	case errors.As(err, &wp):
		return http.StatusMisdirectedRequest, codeWrongPartition
	case errors.As(err, &ov):
		return http.StatusTooManyRequests, codeOverloaded
	case errors.As(err, &dg):
		return http.StatusServiceUnavailable, codeDurabilityLost
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, codeUnknownJob
	case errors.Is(err, ErrRoundPending):
		return http.StatusNotFound, codeRoundPending
	case errors.Is(err, ErrNoStrategy):
		return http.StatusNotFound, codeNoStrategy
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// A long-poll (?wait=1) that ran out of time: the request was fine,
		// the outcome just is not there yet — retryable, not a client error.
		return http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, ErrOutcomeEvicted):
		return http.StatusGone, codeOutcomeEvicted
	case errors.Is(err, ErrDuplicateBid):
		return http.StatusConflict, codeDuplicateBid
	case errors.Is(err, ErrJobClosed):
		return http.StatusConflict, codeJobClosed
	case errors.Is(err, ErrBelowQuorum):
		return http.StatusConflict, codeBelowQuorum
	case errors.Is(err, ErrExchangeClosed):
		return http.StatusConflict, codeExchangeClosed
	case errors.Is(err, ErrNotRegistered):
		return http.StatusForbidden, codeNotRegistered
	case errors.Is(err, ErrBlacklisted):
		return http.StatusForbidden, codeBlacklisted
	default:
		return http.StatusBadRequest, codeInvalidRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONIdempotent writes a success response and, when the request
// carried an Idempotency-Key, records the exact bytes for replay.
func (h *handler) writeJSONIdempotent(w http.ResponseWriter, status int, v any, tok *idemToken) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
	tok.finish(status, body)
}

// writeErr renders an exchange error in the uniform envelope. Timeouts
// advertise a retry delay; everything else is either permanent or resolved
// by the next round.
func writeErr(w http.ResponseWriter, err error) {
	status, code := classify(err)
	env := errorEnvelope{Code: code, Message: err.Error()}
	if status == http.StatusGatewayTimeout {
		env.RetryAfterMS = int64(time.Second / time.Millisecond)
	}
	var wp *WrongPartitionError
	if errors.As(err, &wp) {
		env.Partition = wp.Partition
		env.ReplicaURL = wp.ReplicaURL
		env.MapVersion = wp.MapVersion
	}
	var ov *OverloadError
	if errors.As(err, &ov) {
		env.RetryAfterMS = retryMS(ov.RetryAfter)
	}
	var dg *DegradedError
	if errors.As(err, &dg) {
		// The condition clears only on replica restart (or failover), so
		// the hint is "soon, elsewhere": long enough for a router probe
		// cycle to steer traffic away, short enough that clients holding a
		// stale map re-resolve quickly.
		env.RetryAfterMS = retryMS(time.Second)
	}
	writeJSON(w, status, env)
}

// retryMS renders a retry hint as whole milliseconds, clamped to ≥ 1 so a
// sub-millisecond hint still tells the client to back off.
func retryMS(d time.Duration) int64 {
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// writeOverloaded renders an admission shed that never reached the
// exchange core (the in-flight gate) in the same envelope SubmitBid sheds
// use.
func writeOverloaded(w http.ResponseWriter, scope admission.Scope, retry time.Duration) {
	writeJSON(w, http.StatusTooManyRequests, errorEnvelope{
		Code:         codeOverloaded,
		Message:      fmt.Sprintf("exchange: overloaded (%s limit), retry advised", scope),
		RetryAfterMS: retryMS(retry),
	})
}

// writeError renders an explicit status/code pair (request validation and
// routing failures that never reach the exchange core).
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Code: code, Message: message})
}

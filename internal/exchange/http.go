package exchange

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"fmore/internal/auction"
	"fmore/internal/transport"
)

// maxWait caps how long GET /jobs/{id}/outcome?wait=1 blocks.
const maxWait = 30 * time.Second

// NewHandler returns the exchange's HTTP/JSON front end:
//
//	POST /jobs                create a job
//	GET  /jobs                list hosted job IDs
//	GET  /jobs/{id}           job status
//	DELETE /jobs/{id}         close and evict a job
//	POST /jobs/{id}/bids      submit one sealed bid
//	POST /jobs/{id}/close     close the current round now
//	GET  /jobs/{id}/outcome   fetch a round outcome (?round=N, ?wait=1)
//	GET  /jobs/{id}/strategy  fetch the solved equilibrium bid curve (?samples=N)
//	POST /nodes               register a node
//	POST /nodes/{id}/blacklist ban a node
//	GET  /metrics             throughput and latency snapshot
func NewHandler(ex *Exchange) http.Handler {
	h := &handler{ex: ex}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.createJob)
	mux.HandleFunc("GET /jobs", h.listJobs)
	mux.HandleFunc("GET /jobs/{id}", h.jobStatus)
	mux.HandleFunc("DELETE /jobs/{id}", h.removeJob)
	mux.HandleFunc("POST /jobs/{id}/bids", h.submitBid)
	mux.HandleFunc("POST /jobs/{id}/close", h.closeRound)
	mux.HandleFunc("GET /jobs/{id}/outcome", h.outcome)
	mux.HandleFunc("GET /jobs/{id}/strategy", h.strategy)
	mux.HandleFunc("POST /nodes", h.registerNode)
	mux.HandleFunc("POST /nodes/{id}/blacklist", h.blacklistNode)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

type handler struct {
	ex *Exchange
}

// jobRequest is the POST /jobs payload.
type jobRequest struct {
	ID          string             `json:"id,omitempty"`
	Rule        transport.RuleSpec `json:"rule"`
	K           int                `json:"k"`
	Payment     string             `json:"payment,omitempty"` // "first-price" (default) | "second-price"
	Psi         float64            `json:"psi,omitempty"`
	Seed        int64              `json:"seed,omitempty"`
	BidWindowMS int64              `json:"bid_window_ms,omitempty"` // 0 = manual rounds
	MaxRounds   int                `json:"max_rounds,omitempty"`
	MinBids     int                `json:"min_bids,omitempty"`
	// KeepOutcomes bounds the job's retained outcome history (0 = server
	// default of 128); older rounds answer 410 Gone.
	KeepOutcomes int `json:"keep_outcomes,omitempty"`
	// Equilibrium optionally describes the bidder-side game; with it the
	// job serves GET /jobs/{id}/strategy so clients can bid the Theorem 1
	// equilibrium without solving it locally.
	Equilibrium *transport.EquilibriumSpec `json:"equilibrium,omitempty"`
}

// jobResponse describes a hosted job, spec and window behavior included so
// clients can see how much history is retained and how rounds are driven.
type jobResponse struct {
	ID           string `json:"id"`
	State        string `json:"state"`
	Round        int    `json:"round"`
	PendingBids  int    `json:"pending_bids"`
	Rule         string `json:"rule"`
	K            int    `json:"k"`
	BidWindowMS  int64  `json:"bid_window_ms"` // 0 = manual rounds
	MaxRounds    int    `json:"max_rounds"`
	MinBids      int    `json:"min_bids"`
	KeepOutcomes int    `json:"keep_outcomes"`
	// HasStrategy reports whether GET /jobs/{id}/strategy is available.
	HasStrategy bool `json:"has_strategy"`
}

// bidRequest is the POST /jobs/{id}/bids payload.
type bidRequest struct {
	NodeID    int       `json:"node_id"`
	Qualities []float64 `json:"qualities"`
	Payment   float64   `json:"payment"`
	Meta      string    `json:"meta,omitempty"`
}

// winnerJSON is one selected bid in an outcome response.
type winnerJSON struct {
	NodeID    int       `json:"node_id"`
	Score     float64   `json:"score"`
	Payment   float64   `json:"payment"`
	Qualities []float64 `json:"qualities"`
}

// outcomeResponse is the GET /jobs/{id}/outcome payload.
type outcomeResponse struct {
	Job              string       `json:"job"`
	Round            int          `json:"round"`
	NumBids          int          `json:"num_bids"`
	LatencyMS        float64      `json:"latency_ms"`
	Winners          []winnerJSON `json:"winners"`
	TotalPayment     float64      `json:"total_payment"`
	AggregatorProfit float64      `json:"aggregator_profit"`
	// Scores is indexed by the round's bids in ascending node-ID order.
	Scores []float64 `json:"scores"`
}

func (h *handler) createJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	rule, err := req.Rule.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var payment auction.PaymentRule
	switch req.Payment {
	case "", "first-price":
		payment = auction.FirstPrice
	case "second-price":
		payment = auction.SecondPrice
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown payment rule %q", req.Payment))
		return
	}
	job, err := h.ex.CreateJob(JobSpec{
		ID:           req.ID,
		Auction:      auction.Config{Rule: rule, K: req.K, Payment: payment, Psi: req.Psi},
		Seed:         req.Seed,
		BidWindow:    time.Duration(req.BidWindowMS) * time.Millisecond,
		MaxRounds:    req.MaxRounds,
		MinBids:      req.MinBids,
		KeepOutcomes: req.KeepOutcomes,
		Equilibrium:  req.Equilibrium,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, jobView(job))
}

func (h *handler) listJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"jobs": h.ex.JobIDs()})
}

func (h *handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := h.ex.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownJob, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, jobView(job))
}

func (h *handler) submitBid(w http.ResponseWriter, r *http.Request) {
	var req bidRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding bid: %w", err))
		return
	}
	round, err := h.ex.SubmitBid(r.PathValue("id"), auction.Bid{
		NodeID:    req.NodeID,
		Qualities: req.Qualities,
		Payment:   req.Payment,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	// Meta-on-bid is a labeling convenience of the open posture only, and
	// only an accepted bid earns it: rejected requests must not mutate the
	// registry, and on a gated exchange registration happens exclusively
	// through POST /nodes.
	if req.Meta != "" && !h.ex.opts.RequireRegistration {
		h.ex.RegisterNode(req.NodeID, req.Meta)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"job": r.PathValue("id"), "round": round})
}

func (h *handler) removeJob(w http.ResponseWriter, r *http.Request) {
	if err := h.ex.RemoveJob(r.PathValue("id")); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": r.PathValue("id"), "removed": true})
}

func (h *handler) closeRound(w http.ResponseWriter, r *http.Request) {
	ro, err := h.ex.CloseRound(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, outcomeView(ro))
}

func (h *handler) outcome(w http.ResponseWriter, r *http.Request) {
	job, ok := h.ex.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownJob, r.PathValue("id")))
		return
	}
	q := r.URL.Query()
	wait := false
	if s := q.Get("wait"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait %q (want a boolean)", s))
			return
		}
		wait = v
	}
	if q.Get("round") == "" && !wait {
		ro, ok := job.Latest()
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("exchange: no completed rounds yet"))
			return
		}
		if ro.Err != nil {
			// A failed round must not read as a winnerless success; report
			// it exactly as the by-round path would.
			writeErr(w, statusFor(ro.Err), ro.Err)
			return
		}
		writeJSON(w, http.StatusOK, outcomeView(ro))
		return
	}
	if wait {
		ctx, cancel := context.WithTimeout(r.Context(), maxWait)
		defer cancel()
		var (
			ro  RoundOutcome
			err error
		)
		if s := q.Get("round"); s != "" {
			n, perr := strconv.Atoi(s)
			if perr != nil {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("bad round %q", s))
				return
			}
			ro, err = job.WaitOutcome(ctx, n)
		} else {
			// No round named: wait for the latest completed round. Waiting
			// on the collecting round number would race with the bid window
			// closing between a client's bid and its poll.
			ro, err = job.WaitLatest(ctx)
		}
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, outcomeView(ro))
		return
	}
	n, err := strconv.Atoi(q.Get("round"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad round %q", q.Get("round")))
		return
	}
	ro, err := job.Outcome(n)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, outcomeView(ro))
}

// strategyResponse is the GET /jobs/{id}/strategy payload: the equilibrium
// bid curve sampled over the θ support. Clients interpolate linearly
// between points to obtain their own (quality, payment) bid.
type strategyResponse struct {
	Job     string                  `json:"job"`
	Rule    string                  `json:"rule"`
	N       int                     `json:"n"`
	K       int                     `json:"k"`
	ThetaLo float64                 `json:"theta_lo"`
	ThetaHi float64                 `json:"theta_hi"`
	Points  []auction.StrategyPoint `json:"points"`
}

// defaultStrategySamples balances curve fidelity against payload size; the
// solver's own θ grid has 129 points, so more than that adds nothing.
const defaultStrategySamples = 33

func (h *handler) strategy(w http.ResponseWriter, r *http.Request) {
	job, ok := h.ex.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownJob, r.PathValue("id")))
		return
	}
	samples := defaultStrategySamples
	if s := r.URL.Query().Get("samples"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 || n > 1024 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad samples %q (want an integer in [2, 1024])", s))
			return
		}
		samples = n
	}
	strat, err := job.Strategy()
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	spec := job.Spec()
	lo, hi := strat.ThetaSupport()
	writeJSON(w, http.StatusOK, strategyResponse{
		Job:     job.ID(),
		Rule:    spec.Auction.Rule.Name(),
		N:       spec.Equilibrium.N,
		K:       spec.Auction.K,
		ThetaLo: lo,
		ThetaHi: hi,
		Points:  strat.SampleCurve(samples),
	})
}

func (h *handler) registerNode(w http.ResponseWriter, r *http.Request) {
	var req struct {
		NodeID int    `json:"node_id"`
		Meta   string `json:"meta,omitempty"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding node: %w", err))
		return
	}
	info := h.ex.RegisterNode(req.NodeID, req.Meta)
	writeJSON(w, http.StatusOK, map[string]any{"node_id": info.ID, "bids": info.Bids()})
}

func (h *handler) blacklistNode(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad node id %q", r.PathValue("id")))
		return
	}
	// BlacklistNode (not Registry().Blacklist) so the ban lands in the
	// outcome log and survives a restart.
	if !h.ex.BlacklistNode(id) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("node %d is not registered", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node_id": id, "blacklisted": true})
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.ex.Metrics())
}

func jobView(j *Job) jobResponse {
	spec := j.Spec()
	return jobResponse{
		ID:           j.ID(),
		State:        j.State(),
		Round:        j.Round(),
		PendingBids:  j.PendingBids(),
		Rule:         spec.Auction.Rule.Name(),
		K:            spec.Auction.K,
		BidWindowMS:  int64(spec.BidWindow / time.Millisecond),
		MaxRounds:    spec.MaxRounds,
		MinBids:      spec.MinBids,
		KeepOutcomes: spec.KeepOutcomes,
		HasStrategy:  spec.Equilibrium != nil,
	}
}

func outcomeView(ro RoundOutcome) outcomeResponse {
	winners := make([]winnerJSON, len(ro.Outcome.Winners))
	for i, win := range ro.Outcome.Winners {
		winners[i] = winnerJSON{
			NodeID:    win.Bid.NodeID,
			Score:     win.Score,
			Payment:   win.Payment,
			Qualities: win.Bid.Qualities,
		}
	}
	return outcomeResponse{
		Job:              ro.JobID,
		Round:            ro.Round,
		NumBids:          ro.NumBids,
		LatencyMS:        float64(ro.Latency) / float64(time.Millisecond),
		Winners:          winners,
		TotalPayment:     ro.Outcome.TotalPayment(),
		AggregatorProfit: ro.Outcome.AggregatorProfit,
		Scores:           ro.Outcome.Scores,
	}
}

// statusFor maps exchange errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrRoundPending),
		errors.Is(err, ErrNoStrategy):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// A long-poll (?wait=1) that ran out of time: the request was fine,
		// the outcome just is not there yet — retryable, not a client error.
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOutcomeEvicted):
		return http.StatusGone
	case errors.Is(err, ErrDuplicateBid), errors.Is(err, ErrJobClosed),
		errors.Is(err, ErrBelowQuorum), errors.Is(err, ErrExchangeClosed):
		return http.StatusConflict
	case errors.Is(err, ErrNotRegistered), errors.Is(err, ErrBlacklisted):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

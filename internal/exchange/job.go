package exchange

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"fmore/internal/admission"
	"fmore/internal/auction"
	"fmore/internal/transport"
)

// Sentinel errors of the job lifecycle.
var (
	// ErrUnknownJob reports a job ID the exchange does not host.
	ErrUnknownJob = errors.New("exchange: unknown job")
	// ErrJobClosed reports an operation on a finished job.
	ErrJobClosed = errors.New("exchange: job is closed")
	// ErrDuplicateBid reports a second bid from the same node in one round
	// (sealed-bid auctions admit one bid per bidder per round).
	ErrDuplicateBid = errors.New("exchange: node already bid this round")
	// ErrBelowQuorum reports a round-close attempt with fewer bids than the
	// job's quorum; the round stays open and collecting.
	ErrBelowQuorum = errors.New("exchange: not enough bids to close the round")
	// ErrRoundPending reports a round that has not completed yet.
	ErrRoundPending = errors.New("exchange: round not completed yet")
	// ErrOutcomeEvicted reports a round older than the job's retained
	// outcome window.
	ErrOutcomeEvicted = errors.New("exchange: outcome evicted from history")
	// ErrNotRegistered reports a bid from an unknown node on an exchange
	// requiring registration.
	ErrNotRegistered = errors.New("exchange: node is not registered")
	// ErrNoStrategy reports a strategy request against a job whose spec
	// carries no equilibrium game description.
	ErrNoStrategy = errors.New("exchange: job has no equilibrium game configured")
	// ErrBlacklisted reports a bid from a banned node.
	ErrBlacklisted = errors.New("exchange: node is blacklisted")
)

// JobSpec configures one hosted FL task.
type JobSpec struct {
	// ID names the job; when empty the exchange assigns "job-<n>".
	ID string
	// Auction is the per-job auction configuration (rule, K, payment, ψ),
	// validated by auction.NewAuctioneer.
	Auction auction.Config
	// Seed drives the job's private auctioneer rng, making per-job outcomes
	// deterministic for a fixed bid set.
	Seed int64
	// BidWindow is the per-round bid-collection window. When positive, a
	// job goroutine closes the round at each context deadline; when zero
	// the job is manually driven (CloseRound), which is how the transport
	// harness delegates its synchronous rounds.
	BidWindow time.Duration
	// MaxRounds closes the job after that many completed rounds
	// (0 = unlimited).
	MaxRounds int
	// MinBids is the round quorum: a window that expires with fewer bids is
	// an idle tick and the round keeps collecting (default 1).
	MinBids int
	// KeepOutcomes bounds the retained outcome history per job
	// (default 128); older rounds are evicted.
	KeepOutcomes int
	// Equilibrium optionally describes the bidder-side game (cost family, θ
	// distribution, population size, quality box). When set, the exchange
	// solves Theorem 1's symmetric equilibrium lazily and serves the bid
	// curve from GET /jobs/{id}/strategy, so edge clients need not run the
	// solver locally. Validated (not solved) at job creation.
	Equilibrium *transport.EquilibriumSpec
}

func (s *JobSpec) setDefaults() {
	if s.MinBids < 1 {
		s.MinBids = 1
	}
	if s.KeepOutcomes <= 0 {
		s.KeepOutcomes = 128
	}
}

// RoundOutcome is one completed auction round of a job.
type RoundOutcome struct {
	// JobID and Round identify the round (rounds are 1-based).
	JobID string
	Round int
	// NumBids is the size of the scored bid set. Outcome.Scores is indexed
	// by the round's bids in ascending NodeID order (the exchange's
	// canonical ordering).
	NumBids int
	// Outcome is the auction engine's result; zero when Err is set.
	Outcome auction.Outcome
	// Latency is the close-to-outcome duration (scoring + winner
	// determination), the quantity behind the p99 metric.
	Latency time.Duration
	// Err records a failed round (a poisoned bid set). Failed rounds stay
	// in history so round numbering remains contiguous.
	Err error
}

// clone returns a RoundOutcome that owns all of its memory. The read-side
// accessors hand these out so callers never alias the job's pooled history
// buffers (see the ownership rules on closeRound).
func (ro RoundOutcome) clone() RoundOutcome {
	ro.Outcome = ro.Outcome.Clone()
	return ro
}

// outcomeHold pairs a retained history entry with the pooled buffer backing
// its Outcome. buf is nil when the entry owns its memory (failed rounds,
// WAL-replayed rounds); gen is the buffer generation the entry was built
// under, checked before the buffer is recycled on eviction.
type outcomeHold struct {
	buf *auction.OutcomeBuffer
	gen uint64
}

// Job is one hosted FL task: an auctioneer plus a round state machine. All
// exported methods are safe for concurrent use.
type Job struct {
	id   string
	spec JobSpec
	ex   *Exchange

	ctx    context.Context
	cancel context.CancelFunc

	// closed is the job's lifecycle flag. It is written inside j.mu critical
	// sections (and by single-threaded WAL replay) but read lock-free on the
	// bid-intake fast path, so bidders never touch j.mu.
	closed atomic.Bool

	// tapIdx caches the job's interned firehose index plus one (0 =
	// unassigned); ring slots are atomic words and cannot carry the ID
	// string itself. See Firehose.intern.
	tapIdx atomic.Uint32

	// intake is the striped bid-ingestion front: P shards, each with its own
	// lock, buffer, dedup set and round label. Bid submission touches only
	// its shard; the round close drains all shards once. See intake.go.
	intake *intake

	// admit is the job's admission bucket (nil when admission is off or the
	// job level is unlimited). Immutable after newJob, so the submit path
	// reads it without synchronization.
	admit *admission.Bucket

	// mu guards the round/history state: the round counter, outcome history
	// (and its pooled-buffer holds), the scoring flag, the round-completion
	// broadcast channel, and the event-stream subscriber set.
	mu       sync.Mutex
	scoring  bool
	round    int // current collecting round, 1-based
	baseRnd  int // outcomes[0] holds round baseRnd+1
	outcomes []RoundOutcome
	holds    []outcomeHold
	doneCh   chan struct{} // lazily armed; closed (and cleared) on every state change
	subs     map[*Subscription]struct{}

	// closeMu serializes round closes; everything below it is reused across
	// rounds so the steady-state close path allocates nothing: gather
	// collects the drained shard buffers, scores is the pooled score vector,
	// freeBufs recycles outcome buffers evicted from history, and walScratch
	// is the reusable WAL round record (safe because the log appender
	// encodes synchronously before returning). The auctioneer carries the
	// job's pooled auction.Selector, so winner determination itself reuses
	// its buffers round after round.
	closeMu    sync.Mutex
	gather     []auction.Bid
	sorted     []auction.Bid
	sortKeys   []int64
	scores     []float64
	batch      batchState
	freeBufs   []*auction.OutcomeBuffer
	auct       *auction.Auctioneer
	src        *countingSource
	loopDone   chan struct{} // non-nil iff a bid-window goroutine runs
	walScratch struct {
		rec     walRound
		winners []walWinner
		bidders []int
	}

	// strategyOnce guards the lazy equilibrium solve; concurrent strategy
	// requests share one solve and its cached result. strategyCfg is the
	// game configuration validated at job creation — solving always uses
	// exactly what was validated.
	strategyOnce sync.Once
	strategyCfg  *auction.EquilibriumConfig
	strategy     *auction.Strategy
	strategyErr  error
}

// countingSource wraps the job's seeded rng source and counts every step it
// takes. The count is written into each round's outcome-log record, and
// recovery fast-forwards a fresh source by exactly that many steps — so the
// post-restart draw sequence (tiebreaks, ψ-admissions, Float64 retries
// alike) is bit-for-bit the sequence the uncrashed process would have
// produced, no matter how many draws each round consumed.
type countingSource struct {
	src rand.Source64
	n   int64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// fastForwardTo advances the source to the given cumulative step count
// (no-op if already there or past).
func (c *countingSource) fastForwardTo(target int64) {
	for c.n < target {
		c.Int63()
	}
}

// ID returns the job's exchange-wide identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's normalized configuration.
func (j *Job) Spec() JobSpec { return j.spec }

// Round returns the currently collecting round (1-based).
func (j *Job) Round() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.round
}

// PendingBids returns the size of the current round's bid buffer.
func (j *Job) PendingBids() int {
	if n := j.intake.pending.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// State describes the job for monitoring: "collecting", "scoring" or
// "closed".
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.closed.Load():
		return "closed"
	case j.scoring:
		return "scoring"
	default:
		return "collecting"
	}
}

// submit appends one sealed bid to the current round. The job takes
// ownership of the bid (the caller must not mutate Qualities afterwards).
// The fast path touches only the node's intake shard — never j.mu — so
// concurrent bidders serialize only on stripe collisions. accepted and
// onAccept are the acceptance side effects, run inside the shard critical
// section (see intake.submit).
func (j *Job) submit(b auction.Bid, accepted *atomic.Int64, onAccept func()) (round int, err error) {
	if err := b.Validate(j.spec.Auction.Rule.Dims()); err != nil {
		return 0, err
	}
	return j.intake.submit(b, &j.closed, accepted, onAccept)
}

// canonicalize orders a round's bid set ascending by NodeID. Node IDs that
// fit in 31 bits — every realistic population — sort as packed
// (NodeID, position) int64 keys: no per-compare closure, 8-byte element
// moves instead of 40, then one permutation pass into a reused scratch
// buffer. Out-of-range IDs fall back to sorting the records in place; both
// paths produce the identical (total, dedup-guaranteed) order. Callers
// hold closeMu; the returned slice is valid until the next close.
func (j *Job) canonicalize(bids []auction.Bid) []auction.Bid {
	if cap(j.sortKeys) < len(bids) {
		j.sortKeys = make([]int64, 0, cap(bids))
	}
	keys := j.sortKeys[:0]
	for i := range bids {
		if uint64(bids[i].NodeID) >= 1<<31 { // negative IDs wrap past the bound too
			slices.SortFunc(bids, func(a, b auction.Bid) int { return cmp.Compare(a.NodeID, b.NodeID) })
			return bids
		}
		keys = append(keys, int64(bids[i].NodeID)<<32|int64(i))
	}
	j.sortKeys = keys
	slices.Sort(keys)
	if cap(j.sorted) < len(bids) {
		j.sorted = make([]auction.Bid, 0, cap(bids))
	}
	out := j.sorted[:len(bids)]
	for i, k := range keys {
		out[i] = bids[uint32(k)]
	}
	j.sorted = out
	return out
}

// takeBuf pops a pooled outcome buffer (or makes the pool's next one).
// Callers hold closeMu, the only context that touches freeBufs.
func (j *Job) takeBuf() *auction.OutcomeBuffer {
	if n := len(j.freeBufs); n > 0 {
		buf := j.freeBufs[n-1]
		j.freeBufs = j.freeBufs[:n-1]
		return buf
	}
	return new(auction.OutcomeBuffer)
}

// releaseBuf recycles a buffer back to the pool, invalidating any outcome
// built in it. Callers hold closeMu.
func (j *Job) releaseBuf(buf *auction.OutcomeBuffer) {
	buf.Recycle()
	j.freeBufs = append(j.freeBufs, buf)
}

// CloseRound closes the job's current collecting round now and returns the
// outcome in the job's pooled form: zero-copy for in-process embedders that
// consume the result before the round leaves the KeepOutcomes window (see
// closeRound's ownership note; Outcome.Clone to retain longer). Callers
// that hold the result across rounds — or hand it to another goroutine —
// should use Exchange.CloseRound, which returns an owned copy.
func (j *Job) CloseRound() (RoundOutcome, error) {
	return j.closeRound()
}

// closeRoundOwned is closeRound returning an owned copy. The clone runs
// while closeMu is still held: buffer recycling happens only inside
// closeRound (eviction) and takeBuf, both under closeMu, so a copy made
// here can never race a later round reusing the buffer.
func (j *Job) closeRoundOwned() (RoundOutcome, error) {
	j.closeMu.Lock()
	defer j.closeMu.Unlock()
	ro, err := j.closeRoundLocked()
	return ro.clone(), err
}

// closeRound runs one round close in the pooled form.
func (j *Job) closeRound() (RoundOutcome, error) {
	j.closeMu.Lock()
	defer j.closeMu.Unlock()
	return j.closeRoundLocked()
}

// closeRoundLocked drains the intake shards, scores the round on the shared
// pool, runs winner determination, and publishes the outcome. It returns
// ErrBelowQuorum (round keeps collecting) when the intake is under quorum.
// Callers hold closeMu.
//
// Ownership: the returned RoundOutcome (and the history entry behind it)
// references the job's pooled outcome memory. It is immutable until the
// round leaves the retained history window — KeepOutcomes closes later —
// at which point the buffer is recycled for a future round. Callers that
// outlive the window (or hand the data to another goroutine) must copy out
// with Outcome.Clone; the exported read accessors and the event stream
// already do.
func (j *Job) closeRoundLocked() (RoundOutcome, error) {

	start := time.Now()
	if j.closed.Load() {
		return RoundOutcome{}, ErrJobClosed
	}
	// A degraded replica must not close rounds: the outcome would be
	// acknowledged to clients but its record can no longer reach disk, and
	// a lost acknowledged outcome is the one thing this system promises
	// never to produce. The collected bids stay in the intake, so a
	// recovered (restarted) replica closes the round with nothing lost.
	if err := j.ex.degradedErr(); err != nil {
		return RoundOutcome{}, err
	}
	if got := int(j.intake.pending.Load()); got < j.spec.MinBids {
		j.ex.metrics.idleTicks.Add(1)
		return RoundOutcome{}, fmt.Errorf("%w: %d/%d", ErrBelowQuorum, got, j.spec.MinBids)
	}
	bids := j.intake.drain(j.gather[:0])
	j.gather = bids

	j.mu.Lock()
	round := j.round
	// Advance the collecting round at drain time: bids accepted after their
	// shard was drained belong to — and were labeled as — the next round.
	j.round++
	j.scoring = true
	j.mu.Unlock()

	// Canonical order: the outcome must not depend on concurrent arrival
	// order, only on the bid set — that is what makes seeded runs
	// deterministic under concurrency. Node IDs are unique within a round
	// (dedup), so the unstable sort is total.
	bids = j.canonicalize(bids)

	var bidders []int
	if j.ex.wal != nil {
		bidders = j.walScratch.bidders[:0]
		for i := range bids {
			bidders = append(bidders, bids[i].NodeID)
		}
		j.walScratch.bidders = bidders
	}

	if cap(j.scores) < len(bids) {
		j.scores = make([]float64, len(bids))
	}
	scores := j.scores[:len(bids)]
	buf := j.takeBuf()
	var outcome auction.Outcome
	err := j.ex.pool.score(j.spec.Auction.Rule, bids, scores, &j.batch)
	if err == nil {
		// RunScoredInto copies the result into buf, so the bid buffer is
		// free to reuse and the outcome lives in pooled job-owned memory.
		outcome, err = j.auct.RunScoredInto(bids, scores, buf)
	}

	ro := RoundOutcome{
		JobID:   j.id,
		Round:   round,
		NumBids: len(bids),
		Outcome: outcome,
		Latency: time.Since(start),
	}
	hold := outcomeHold{buf: buf, gen: buf.Generation()}
	if err != nil {
		// The round's bids are consumed either way: a poisoned bid set must
		// not wedge the job forever. The failed round is recorded so the
		// history stays contiguous.
		ro.Outcome = auction.Outcome{}
		ro.Err = fmt.Errorf("exchange: job %s round %d: %w", j.id, round, err)
		j.releaseBuf(buf)
		hold = outcomeHold{}
	}
	// Persist before publishing; the append is a channel hand-off to the log
	// writer (the record bytes are encoded before it returns, so the scratch
	// record and the pooled outcome it aliases are free to reuse). j.src.n
	// is stable here: only RunScoredInto draws from it, and closeMu is held.
	j.ex.logRound(&j.walScratch.rec, &j.walScratch.winners, ro, bidders, j.src.n)

	j.mu.Lock()
	j.scoring = false
	j.outcomes = append(j.outcomes, ro)
	j.holds = append(j.holds, hold)
	if excess := len(j.outcomes) - j.spec.KeepOutcomes; excess > 0 {
		// Recycle the pooled buffers leaving the window before shifting it.
		for i := 0; i < excess; i++ {
			if h := j.holds[i]; h.buf != nil && h.buf.Generation() == h.gen {
				j.releaseBuf(h.buf)
			}
		}
		j.outcomes = append(j.outcomes[:0], j.outcomes[excess:]...)
		j.holds = append(j.holds[:0], j.holds[excess:]...)
		j.baseRnd += excess
	}
	// !closed: a concurrent Close/RemoveJob may have already finished the
	// job while we were scoring, and its close must not be redone here.
	maxed := !j.closed.Load() && j.spec.MaxRounds > 0 && j.round > j.spec.MaxRounds
	if maxed {
		j.closed.Store(true)
	}
	j.broadcastLocked()
	// Push the transition to event-stream subscribers inside the same
	// critical section that appended the outcome, so a Subscribe can never
	// observe the history without either seeing this round in it or
	// receiving this event. Events escape to subscriber goroutines that
	// render them after this section ends, so the outcome they carry is an
	// owned copy, never the pooled form (skipped when nobody is watching —
	// the steady-state close stays allocation-free).
	if len(j.subs) > 0 {
		evRo := ro.clone()
		j.publishLocked(Event{Type: EventRoundClosed, Job: j.id, Round: ro.Round, Outcome: &evRo})
	}
	switch {
	case maxed:
		j.publishLocked(Event{Type: EventJobClosed, Job: j.id})
	case !j.closed.Load():
		j.publishLocked(Event{Type: EventRoundOpen, Job: j.id, Round: j.round})
	}
	j.mu.Unlock()

	// Tap the completed round while closeMu still pins the pooled outcome
	// memory; only scalars are copied into the ring.
	j.ex.fh.roundClosed(j, &ro)
	if maxed {
		j.cancel()
		j.ex.logJobClosed(j.id)
	}
	if ro.Err == nil {
		j.ex.metrics.observeRound(ro.Latency)
	} else {
		j.ex.metrics.roundsFailed.Add(1)
	}
	return ro, ro.Err
}

// broadcastLocked wakes every outcome waiter; callers hold j.mu. The
// channel is armed lazily by waitChLocked, so rounds with no waiters don't
// allocate a fresh channel per close.
func (j *Job) broadcastLocked() {
	if j.doneCh != nil {
		close(j.doneCh)
		j.doneCh = nil
	}
}

// waitChLocked returns the channel the next broadcast will close, arming it
// if needed; callers hold j.mu.
func (j *Job) waitChLocked() chan struct{} {
	if j.doneCh == nil {
		j.doneCh = make(chan struct{})
	}
	return j.doneCh
}

// loop drives timer-mode jobs: one context deadline per bid window.
// Deadlines are anchored to a fixed schedule (next = previous deadline +
// window) rather than re-derived from "now" after each close, so scoring
// latency does not stretch the effective period and windows never drift
// under load.
func (j *Job) loop() {
	defer close(j.loopDone)
	next := time.Now().Add(j.spec.BidWindow)
	for {
		windowCtx, cancel := context.WithDeadline(j.ctx, next)
		<-windowCtx.Done()
		cancel()
		if j.ctx.Err() != nil {
			return
		}
		if _, err := j.closeRound(); errors.Is(err, ErrJobClosed) {
			return
		}
		next = nextWindowDeadline(next, time.Now(), j.spec.BidWindow)
	}
}

// nextWindowDeadline returns the deadline one window after prev, skipping
// to the first grid point strictly after now when a round close overran one
// or more whole windows — the schedule stays on the original grid instead
// of firing a burst of catch-up closes.
func nextWindowDeadline(prev, now time.Time, window time.Duration) time.Time {
	next := prev.Add(window)
	if !next.After(now) {
		behind := now.Sub(next)
		next = next.Add(behind - behind%window + window)
	}
	return next
}

// Close finishes the job: pending and future bids are rejected, waiters are
// woken, and (in timer mode) the window goroutine stops. Idempotent.
func (j *Job) Close() {
	j.close(true)
}

// close implements Close. record says whether a job-closed record belongs
// in the outcome log: a deliberate finish (MaxRounds, caller Close, DELETE)
// is logged so the job stays closed after recovery, while exchange shutdown
// is not — stopping the process must not close every job forever.
func (j *Job) close(record bool) {
	j.mu.Lock()
	if j.closed.Load() {
		j.mu.Unlock()
		return
	}
	j.closed.Store(true)
	j.broadcastLocked()
	j.publishLocked(Event{Type: EventJobClosed, Job: j.id})
	j.mu.Unlock()
	j.cancel()
	if record {
		j.ex.logJobClosed(j.id)
	}
}

// Outcome returns the completed round without blocking. For a failed round
// the stored error is returned alongside the record. The result owns its
// memory (see closeRound's ownership note).
func (j *Job) Outcome(round int) (RoundOutcome, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ro, err, _ := j.outcomeLocked(round)
	return ro.clone(), err
}

// outcomeLocked resolves a round; pending reports "not completed yet" (the
// only state WaitOutcome keeps waiting on). The returned record aliases the
// pooled history; exported callers clone before releasing j.mu.
func (j *Job) outcomeLocked(round int) (ro RoundOutcome, err error, pending bool) {
	idx := round - 1 - j.baseRnd
	switch {
	case round < 1:
		return RoundOutcome{}, fmt.Errorf("exchange: round %d out of range", round), false
	case idx < 0:
		return RoundOutcome{}, fmt.Errorf("%w: round %d (retained: %d+)", ErrOutcomeEvicted, round, j.baseRnd+1), false
	case idx < len(j.outcomes):
		ro = j.outcomes[idx]
		return ro, ro.Err, false
	case j.closed.Load():
		return RoundOutcome{}, ErrJobClosed, false
	}
	return RoundOutcome{}, fmt.Errorf("%w: round %d", ErrRoundPending, round), true
}

// OutcomesAfter returns up to limit retained rounds with numbers strictly
// greater than after, oldest first, and reports whether more retained
// rounds remain past the returned page. It backs the v1 cursor-paginated
// outcome listing; failed rounds are included (their Err set) so pages stay
// contiguous. The page owns its memory.
func (j *Job) OutcomesAfter(after, limit int) (page []RoundOutcome, more bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := after - j.baseRnd
	if start < 0 {
		start = 0
	}
	if start >= len(j.outcomes) {
		return nil, false
	}
	rest := j.outcomes[start:]
	if limit > 0 && len(rest) > limit {
		rest, more = rest[:limit], true
	}
	page = make([]RoundOutcome, len(rest))
	for i, ro := range rest {
		page[i] = ro.clone()
	}
	return page, more
}

// Latest returns the most recent completed round, if any. The result owns
// its memory.
func (j *Job) Latest() (RoundOutcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.outcomes) == 0 {
		return RoundOutcome{}, false
	}
	return j.outcomes[len(j.outcomes)-1].clone(), true
}

// WaitLatest blocks until at least one round has completed and returns the
// most recent one (with its stored error, if the round failed). This is the
// race-free "give me an outcome" default of the HTTP front end: waiting on
// the currently-collecting round number instead would race with the bid
// window closing.
func (j *Job) WaitLatest(ctx context.Context) (RoundOutcome, error) {
	for {
		j.mu.Lock()
		if n := len(j.outcomes); n > 0 {
			ro := j.outcomes[n-1].clone()
			j.mu.Unlock()
			return ro, ro.Err
		}
		if j.closed.Load() {
			j.mu.Unlock()
			return RoundOutcome{}, ErrJobClosed
		}
		ch := j.waitChLocked()
		j.mu.Unlock()
		select {
		case <-ctx.Done():
			return RoundOutcome{}, ctx.Err()
		case <-ch:
		}
	}
}

// WaitOutcome blocks until the round completes, the job closes, or ctx
// expires.
func (j *Job) WaitOutcome(ctx context.Context, round int) (RoundOutcome, error) {
	for {
		j.mu.Lock()
		ro, err, pending := j.outcomeLocked(round)
		if !pending {
			ro = ro.clone()
			j.mu.Unlock()
			return ro, err
		}
		ch := j.waitChLocked()
		j.mu.Unlock()
		select {
		case <-ctx.Done():
			return RoundOutcome{}, ctx.Err()
		case <-ch:
		}
	}
}

// Strategy returns the job's solved equilibrium strategy (Theorem 1),
// solving it on first use. The solve runs once per job lifetime; its result
// (or error) is cached. Jobs without an Equilibrium spec report
// ErrNoStrategy.
func (j *Job) Strategy() (*auction.Strategy, error) {
	if j.strategyCfg == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoStrategy, j.id)
	}
	j.strategyOnce.Do(func() {
		j.strategy, j.strategyErr = auction.SolveEquilibrium(*j.strategyCfg)
	})
	return j.strategy, j.strategyErr
}

// restoreRound reinstates one persisted round during log replay. Replay is
// single-threaded and happens before the exchange is reachable, so no locks
// are taken (finishReplay aligns the intake shards afterwards). A gap in
// the replayed numbering (a record lost to a torn tail mid-history cannot
// happen, but defend anyway) resets the retained window so outcomeLocked's
// contiguous indexing stays valid. Replayed outcomes own their memory, so
// their holds carry no pooled buffer.
func (j *Job) restoreRound(ro RoundOutcome) {
	if want := j.baseRnd + len(j.outcomes) + 1; ro.Round != want {
		j.outcomes = j.outcomes[:0]
		j.holds = j.holds[:0]
		j.baseRnd = ro.Round - 1
	}
	j.outcomes = append(j.outcomes, ro)
	j.holds = append(j.holds, outcomeHold{})
	j.round = ro.Round + 1
	if excess := len(j.outcomes) - j.spec.KeepOutcomes; excess > 0 {
		j.outcomes = append(j.outcomes[:0], j.outcomes[excess:]...)
		j.holds = append(j.holds[:0], j.holds[excess:]...)
		j.baseRnd += excess
	}
}

// newJob wires a job into the exchange; callers hold no locks.
func newJob(ex *Exchange, id string, spec JobSpec) (*Job, error) {
	src := newCountingSource(spec.Seed)
	auct, err := auction.NewAuctioneer(spec.Auction, rand.New(src))
	if err != nil {
		return nil, err
	}
	spec.Auction = auct.Config() // normalized (defaults applied)
	var eqCfg *auction.EquilibriumConfig
	if spec.Equilibrium != nil {
		// Fail fast on an unsolvable game description and keep the validated
		// configuration; the (expensive) solve itself stays lazy until the
		// first strategy request, and always runs on exactly this config.
		cfg, err := spec.Equilibrium.Config(spec.Auction.Rule, spec.Auction.K)
		if err != nil {
			return nil, fmt.Errorf("exchange: equilibrium spec for job %s: %w", id, err)
		}
		eqCfg = &cfg
	}
	ctx, cancel := context.WithCancel(ex.ctx)
	return &Job{
		id:          id,
		spec:        spec,
		ex:          ex,
		ctx:         ctx,
		cancel:      cancel,
		intake:      newIntake(ex.opts.IntakeShards),
		admit:       ex.adm.NewJobBucket(),
		round:       1,
		subs:        make(map[*Subscription]struct{}),
		auct:        auct,
		src:         src,
		strategyCfg: eqCfg,
	}, nil
}

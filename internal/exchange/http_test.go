package exchange

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// httpFixture spins up the JSON front end over a fresh exchange.
func httpFixture(t *testing.T) (*httptest.Server, *Exchange) {
	t.Helper()
	ex := New(Options{})
	srv := httptest.NewServer(NewHandler(ex))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	return srv, ex
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close() //nolint:errcheck // test teardown
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return m
}

func TestHTTPJobLifecycle(t *testing.T) {
	srv, _ := httpFixture(t)

	// Create a manual-mode job.
	resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":   "cv-task",
		"rule": map[string]any{"kind": "additive", "alpha": []float64{0.5, 0.5}},
		"k":    2,
		"seed": 17,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: status %d, body %v", resp.StatusCode, body)
	}
	if body["id"] != "cv-task" || body["state"] != "collecting" {
		t.Fatalf("create job body: %v", body)
	}

	// Submit five bids.
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/jobs/cv-task/bids", map[string]any{
			"node_id":   i,
			"qualities": []float64{0.2 * float64(i+1), 0.9 - 0.1*float64(i)},
			"payment":   0.1,
			"meta":      fmt.Sprintf("edge-%d", i),
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("bid %d: status %d, body %v", i, resp.StatusCode, body)
		}
	}

	// A duplicate bid conflicts.
	resp, _ = postJSON(t, srv.URL+"/v1/jobs/cv-task/bids", map[string]any{
		"node_id": 0, "qualities": []float64{0.1, 0.1}, "payment": 0.1,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate bid: status %d, want 409", resp.StatusCode)
	}

	// Close the round and read the outcome both ways.
	resp, closeBody := postJSON(t, srv.URL+"/v1/jobs/cv-task/close", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d, body %v", resp.StatusCode, closeBody)
	}
	if n := closeBody["num_bids"].(float64); n != 5 {
		t.Errorf("close outcome num_bids = %v, want 5", n)
	}
	resp, outBody := getJSON(t, srv.URL+"/v1/jobs/cv-task/outcome?round=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcome: status %d, body %v", resp.StatusCode, outBody)
	}
	// ?wait=1 with no round returns the latest completed round immediately —
	// it must not block on the now-collecting round 2.
	resp, waitBody := getJSON(t, srv.URL+"/v1/jobs/cv-task/outcome?wait=1")
	if resp.StatusCode != http.StatusOK || waitBody["round"].(float64) != 1 {
		t.Fatalf("wait latest: status %d, body %v", resp.StatusCode, waitBody)
	}
	winners := outBody["winners"].([]any)
	if len(winners) != 2 {
		t.Fatalf("outcome winners = %d, want 2", len(winners))
	}

	// Status and job listing reflect the completed round.
	_, status := getJSON(t, srv.URL+"/v1/jobs/cv-task")
	if status["round"].(float64) != 2 {
		t.Errorf("job round = %v, want 2", status["round"])
	}
	_, list := getJSON(t, srv.URL+"/v1/jobs")
	if jobs := list["jobs"].([]any); len(jobs) != 1 || jobs[0].(map[string]any)["id"] != "cv-task" {
		t.Errorf("job list = %v", jobs)
	}

	// DELETE evicts the job: the listing empties and further reads 404.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/cv-task", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if decodeBody(t, delResp); delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete job: status %d", delResp.StatusCode)
	}
	resp, _ = getJSON(t, srv.URL+"/v1/jobs/cv-task")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status after delete: %d, want 404", resp.StatusCode)
	}
	_, list = getJSON(t, srv.URL+"/v1/jobs")
	if jobs := list["jobs"].([]any); len(jobs) != 0 {
		t.Errorf("job list after delete = %v, want empty", jobs)
	}

	// Metrics report the traffic.
	_, metrics := getJSON(t, srv.URL+"/v1/metrics")
	if metrics["rounds_total"].(float64) != 1 {
		t.Errorf("rounds_total = %v, want 1", metrics["rounds_total"])
	}
	if metrics["bids_accepted"].(float64) != 5 {
		t.Errorf("bids_accepted = %v, want 5", metrics["bids_accepted"])
	}
	if metrics["nodes_known"].(float64) != 5 {
		t.Errorf("nodes_known = %v, want 5", metrics["nodes_known"])
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	srv, ex := httpFixture(t)

	resp, _ := getJSON(t, srv.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"rule": map[string]any{"kind": "martian", "alpha": []float64{1}},
		"k":    1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rule kind status: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/nodes/abc/blacklist", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad node id status: %d, want 400", resp.StatusCode)
	}
	// A pending round is "not there yet", not a malformed request.
	_, createBody := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
		"k":    1,
	})
	jobID := createBody["id"].(string)
	resp, _ = getJSON(t, srv.URL+"/v1/jobs/"+jobID+"/outcome?round=99")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pending round status: %d, want 404", resp.StatusCode)
	}
	// A rejected bid must not register its node, even with meta attached.
	resp, _ = postJSON(t, srv.URL+"/v1/jobs/"+jobID+"/bids", map[string]any{
		"node_id": 77, "qualities": []float64{0.5}, "payment": 0.1, "meta": "edge-77",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-dims bid status: %d, want 400", resp.StatusCode)
	}
	if _, ok := ex.Registry().Lookup(77); ok {
		t.Error("rejected bid registered node 77 via meta")
	}
}

// TestHTTPMetaDoesNotBypassRegistration guards the -require-registration
// gate: attaching meta to a bid must not implicitly register the node.
func TestHTTPMetaDoesNotBypassRegistration(t *testing.T) {
	ex := New(Options{RequireRegistration: true})
	srv := httptest.NewServer(NewHandler(ex))
	t.Cleanup(func() {
		srv.Close()
		ex.Close()
	})
	_, createBody := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":   "gated",
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
		"k":    1,
	})
	if createBody["id"] != "gated" {
		t.Fatalf("create job: %v", createBody)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/jobs/gated/bids", map[string]any{
		"node_id": 5, "qualities": []float64{0.5, 0.5}, "payment": 0.1,
		"meta": "sneaky-self-registration",
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("bid with meta on gated exchange: status %d, want 403", resp.StatusCode)
	}
	if _, ok := ex.Registry().Lookup(5); ok {
		t.Error("meta on a rejected bid registered the node anyway")
	}
}

// TestHTTPKeepOutcomesExposed guards the keep_outcomes plumbing: the field
// must round-trip through POST /jobs, surface in GET /jobs/{id} alongside
// the window behavior, and actually bound the retained history.
func TestHTTPKeepOutcomesExposed(t *testing.T) {
	srv, _ := httpFixture(t)
	resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":            "hist",
		"rule":          map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
		"k":             1,
		"min_bids":      2,
		"keep_outcomes": 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	if body["keep_outcomes"].(float64) != 2 {
		t.Fatalf("create response keep_outcomes = %v, want 2", body["keep_outcomes"])
	}
	_, view := getJSON(t, srv.URL+"/v1/jobs/hist")
	if view["keep_outcomes"].(float64) != 2 || view["min_bids"].(float64) != 2 || view["bid_window_ms"].(float64) != 0 {
		t.Fatalf("job view = %v, want keep_outcomes 2, min_bids 2, bid_window_ms 0", view)
	}
	for round := 1; round <= 3; round++ {
		for node := 0; node < 2; node++ {
			if resp, body := postJSON(t, srv.URL+"/v1/jobs/hist/bids", map[string]any{
				"node_id": node, "qualities": []float64{0.4, 0.4 + 0.1*float64(round)}, "payment": 0.1,
			}); resp.StatusCode != http.StatusAccepted {
				t.Fatalf("round %d bid: %d %v", round, resp.StatusCode, body)
			}
		}
		if resp, body := postJSON(t, srv.URL+"/v1/jobs/hist/close", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d close: %d %v", round, resp.StatusCode, body)
		}
	}
	// With keep_outcomes=2, round 1 has aged out (410) and rounds 2-3 serve.
	if resp, _ := getJSON(t, srv.URL+"/v1/jobs/hist/outcome?round=1"); resp.StatusCode != http.StatusGone {
		t.Errorf("evicted round status: %d, want 410", resp.StatusCode)
	}
	if resp, _ := getJSON(t, srv.URL+"/v1/jobs/hist/outcome?round=3"); resp.StatusCode != http.StatusOK {
		t.Errorf("retained round status: %d, want 200", resp.StatusCode)
	}
	// Unset keep_outcomes falls back to the server default.
	_, defBody := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
		"k":    1,
	})
	if defBody["keep_outcomes"].(float64) != 128 {
		t.Errorf("default keep_outcomes = %v, want 128", defBody["keep_outcomes"])
	}
}

func TestHTTPBlacklistFlow(t *testing.T) {
	srv, _ := httpFixture(t)
	if _, body := postJSON(t, srv.URL+"/v1/nodes", map[string]any{"node_id": 3, "meta": "edge-3"}); body["node_id"].(float64) != 3 {
		t.Fatalf("register node body: %v", body)
	}
	resp, _ := postJSON(t, srv.URL+"/v1/nodes/3/blacklist", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blacklist status: %d", resp.StatusCode)
	}
	_, createBody := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
		"k":    1,
	})
	jobID := createBody["id"].(string)
	resp, _ = postJSON(t, srv.URL+"/v1/jobs/"+jobID+"/bids", map[string]any{
		"node_id": 3, "qualities": []float64{0.5, 0.5}, "payment": 0.1,
	})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("blacklisted bid status: %d, want 403", resp.StatusCode)
	}
}

package exchange

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fmore/internal/auction"
	"fmore/internal/fault"
)

// ackedOutcomes marshals every retained round outcome per job — the
// acknowledged state a crash must never lose. Keyed "job/round".
func ackedOutcomes(t *testing.T, ex *Exchange, ids []string, rounds int) map[string][]byte {
	t.Helper()
	acked := make(map[string][]byte)
	for _, id := range ids {
		job, ok := ex.Job(id)
		if !ok {
			t.Fatalf("job %s missing", id)
		}
		for r := 1; r <= rounds; r++ {
			ro, err := job.Outcome(r)
			if err != nil {
				t.Fatalf("job %s round %d: %v", id, r, err)
			}
			raw, err := json.Marshal(ro)
			if err != nil {
				t.Fatal(err)
			}
			acked[id+"/"+fmt.Sprint(r)] = raw
		}
	}
	return acked
}

// assertAcked re-marshals each recorded outcome from ex and compares
// byte-for-byte.
func assertAcked(t *testing.T, ex *Exchange, acked map[string][]byte) {
	t.Helper()
	for key, want := range acked {
		id, rs, _ := strings.Cut(key, "/")
		var r int
		fmt.Sscanf(rs, "%d", &r) //nolint:errcheck // test key format is fixed
		job, ok := ex.Job(id)
		if !ok {
			t.Errorf("job %s lost in recovery", id)
			continue
		}
		ro, err := job.Outcome(r)
		if err != nil {
			t.Errorf("job %s round %d lost in recovery: %v", id, r, err)
			continue
		}
		got, err := json.Marshal(ro)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("job %s round %d diverged across crash", id, r)
		}
	}
}

// degradeViaFsync arms a sticky fsync EIO, drives one more round so a dirty
// batch hits the failing fsync, and waits for the exchange to flip into
// degraded mode. The round's CloseRound may itself succeed (appends are
// fire-and-forget); Sync is the durability check that surfaces the error.
func degradeViaFsync(t *testing.T, ex *Exchange, jobID string, bidders int) {
	t.Helper()
	if err := fault.Enable("wal/fsync", fault.Config{Err: fault.ErrIO, Nth: 1, Sticky: true}); err != nil {
		t.Fatal(err)
	}
	job, ok := ex.Job(jobID)
	if !ok {
		t.Fatalf("job %s missing", jobID)
	}
	for _, b := range testBids(0, job.Round(), bidders) {
		if _, err := ex.SubmitBid(jobID, b); err != nil {
			t.Fatal(err)
		}
	}
	ex.CloseRound(jobID) //nolint:errcheck // may fail if degradation already landed
	if err := ex.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync after injected fsync EIO = %v, want EIO", err)
	}
	if !ex.Degraded() {
		t.Fatal("exchange not degraded after sticky fsync failure")
	}
}

// TestDegradedModeAfterFsyncFailure is the end-to-end contract of the
// degrade policy: after the WAL's first sticky error every durable write is
// refused with *DegradedError (503 durability_lost over HTTP), reads and
// metrics keep serving, healthz flips to degraded, the Prometheus
// exposition reports wal_failed 1, and Close surfaces the root cause.
func TestDegradedModeAfterFsyncFailure(t *testing.T) {
	t.Cleanup(fault.DisableAll)
	const jobs, bidders, rounds = 2, 6, 2
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	acked := ackedOutcomes(t, ex, ids, rounds)

	degradeViaFsync(t, ex, ids[0], bidders)
	if ex.DegradedSince() == 0 {
		t.Error("DegradedSince = 0 after failure")
	}

	// Every durable write path refuses with *DegradedError unwrapping to
	// the injected EIO.
	var dg *DegradedError
	if _, err := ex.SubmitBid(ids[0], testBids(0, 99, 1)[0]); !errors.As(err, &dg) || !errors.Is(err, syscall.EIO) {
		t.Errorf("degraded SubmitBid = %v, want *DegradedError wrapping EIO", err)
	}
	if _, err := ex.CloseRound(ids[0]); !errors.As(err, &dg) {
		t.Errorf("degraded CloseRound = %v, want *DegradedError", err)
	}
	if _, err := ex.CreateJob(JobSpec{
		ID:      "degraded-create",
		Auction: auction.Config{Rule: testRule(t, 0), K: 2},
	}); !errors.As(err, &dg) {
		t.Errorf("degraded CreateJob = %v, want *DegradedError", err)
	}
	if err := ex.RemoveJob(ids[1]); !errors.As(err, &dg) {
		t.Errorf("degraded RemoveJob = %v, want *DegradedError", err)
	}

	// Reads keep serving what memory holds: acked outcomes are intact.
	assertAcked(t, ex, acked)

	s := ex.Metrics()
	if !s.WalFailed || s.WalLastErrorUnix == 0 {
		t.Errorf("metrics: wal_failed=%v wal_last_error_unix=%d, want true/nonzero", s.WalFailed, s.WalLastErrorUnix)
	}

	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()
	// healthz flips to degraded with a retry hint so the router steers.
	resp, body := getJSON(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Errorf("degraded healthz: status %d body %v, want 503 degraded", resp.StatusCode, body)
	}
	if v, _ := body["wal_failed_unix"].(float64); v == 0 {
		t.Errorf("degraded healthz wal_failed_unix = %v, want nonzero", body["wal_failed_unix"])
	}
	if v, _ := body["retry_after_ms"].(float64); v <= 0 {
		t.Errorf("degraded healthz retry_after_ms = %v, want positive", body["retry_after_ms"])
	}
	// Durable writes over HTTP: 503 durability_lost with a retry hint.
	resp, body = postJSON(t, srv.URL+"/v1/jobs/"+ids[0]+"/bids", map[string]any{
		"node_id": 3, "qualities": []float64{0.5, 0.5}, "payment": 0.1,
	})
	if resp.StatusCode != http.StatusServiceUnavailable || body["code"] != "durability_lost" {
		t.Errorf("degraded bid POST: status %d body %v, want 503 durability_lost", resp.StatusCode, body)
	}
	if v, _ := body["retry_after_ms"].(float64); v <= 0 {
		t.Errorf("durability_lost retry_after_ms = %v, want positive", body["retry_after_ms"])
	}
	// Reads over HTTP still 200.
	if resp, _ := getJSON(t, srv.URL+"/v1/jobs/"+ids[0]+"/outcomes"); resp.StatusCode != http.StatusOK {
		t.Errorf("degraded outcomes read: status %d, want 200", resp.StatusCode)
	}
	promResp, err := http.Get(srv.URL + "/v1/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom := readAll(t, promResp)
	if !strings.Contains(prom, "fmore_exchange_wal_failed 1") {
		t.Error("prometheus exposition missing fmore_exchange_wal_failed 1")
	}

	// Close surfaces the sticky WAL error instead of swallowing it.
	if err := ex.Close(); !errors.Is(err, syscall.EIO) {
		t.Errorf("Close after WAL failure = %v, want the sticky EIO", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close() //nolint:errcheck // test teardown
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestCrashMatrixFsyncErrorThenKill: the device starts failing fsyncs, the
// replica degrades, then the process is killed. Recovery must serve every
// outcome that was durable before the failure byte-identically and keep
// working. (Frames written but never fsynced may also survive the
// page-cache clone — complete valid frames replaying is allowed; losing
// acknowledged ones is not.)
func TestCrashMatrixFsyncErrorThenKill(t *testing.T) {
	t.Cleanup(fault.DisableAll)
	const jobs, bidders, rounds = 2, 6, 2
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	acked := ackedOutcomes(t, ex, ids, rounds)

	degradeViaFsync(t, ex, ids[0], bidders)

	crashDir := cloneDataDir(t, dir) // kill -9
	fault.DisableAll()               // the restarted process has a healthy disk

	ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("reopen after fsync-error crash: %v", err)
	}
	defer ex2.Close()
	if ex2.Degraded() {
		t.Error("recovered replica still degraded")
	}
	assertAcked(t, ex2, acked)
	compactWorkload(t, ex2, jobs, bidders, 1, false) // keeps serving durably
}

// TestCrashMatrixTornWriteInPreallocatedTail: a frame write tears after a
// few bytes inside the preallocated (zero-filled) region, the error sticks,
// the process dies. Recovery must truncate the torn prefix — distinguishing
// it from clean preallocated zero-fill — and serve the durable prefix
// byte-identically at the HTTP surface.
func TestCrashMatrixTornWriteInPreallocatedTail(t *testing.T) {
	t.Cleanup(fault.DisableAll)
	const jobs, bidders, rounds = 2, 6, 2
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	// The tear must land inside a preallocated tail, not at EOF.
	logical := ex.Metrics().WalBytes
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() <= logical {
		t.Fatalf("tail not preallocated (err=%v)", err)
	}
	pages := make(map[string][]byte, jobs)
	for _, id := range ids {
		pages[id] = outcomesPageBytes(t, ex, id)
	}

	firedBefore := fpWalWrite.Fired()
	if err := fault.Enable("wal/write", fault.Config{Err: fault.ErrIO, Nth: 1, Torn: 7}); err != nil {
		t.Fatal(err)
	}
	job, _ := ex.Job(ids[0])
	for _, b := range testBids(0, job.Round(), bidders) {
		if _, err := ex.SubmitBid(ids[0], b); err != nil {
			t.Fatal(err)
		}
	}
	ex.CloseRound(ids[0]) //nolint:errcheck // its record is the one torn below
	if err := ex.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync after torn write = %v, want EIO", err)
	}
	if fpWalWrite.Fired() == firedBefore {
		t.Fatal("wal/write failpoint never fired")
	}
	if !ex.Degraded() {
		t.Fatal("exchange not degraded after torn write")
	}

	crashDir := cloneDataDir(t, dir) // kill -9: torn prefix + zero-fill and all
	fault.DisableAll()

	ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("reopen over torn preallocated tail: %v", err)
	}
	defer ex2.Close()
	// The torn round was never durable; the durable prefix must be exact.
	for _, id := range ids {
		if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
			t.Errorf("job %s: outcomes diverged after torn-write crash", id)
		}
	}
	compactWorkload(t, ex2, jobs, bidders, 1, false)
}

// TestCrashMatrixENOSPCMidCompaction drives disk-full through both
// compaction failpoints: a preallocation ENOSPC aborts the compaction
// cleanly (trigger re-armed, replica healthy, no orphan segment), while an
// error sealing the retiring segment during rotation is a real WAL failure
// — the replica degrades, and a crash there recovers byte-identically.
func TestCrashMatrixENOSPCMidCompaction(t *testing.T) {
	const jobs, bidders, rounds = 2, 6, 2

	t.Run("prealloc enospc aborts cleanly", func(t *testing.T) {
		t.Cleanup(fault.DisableAll)
		dir := t.TempDir()
		ex, err := Open(dir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
		if err := ex.Sync(); err != nil {
			t.Fatal(err)
		}
		pages := make(map[string][]byte, jobs)
		for _, id := range ids {
			pages[id] = outcomesPageBytes(t, ex, id)
		}

		if err := fault.Enable("wal/prealloc", fault.Config{Err: fault.ErrNoSpace, Nth: 1}); err != nil {
			t.Fatal(err)
		}
		if err := ex.Compact(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("Compact under ENOSPC = %v, want ENOSPC", err)
		}
		if ex.Degraded() {
			t.Fatal("clean compaction abort degraded the replica")
		}
		if _, err := os.Stat(filepath.Join(dir, segName(2))); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("aborted compaction left orphan segment (err=%v)", err)
		}

		// A crash in this state recovers byte-identically…
		crashDir := cloneDataDir(t, dir)
		ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("reopen after aborted compaction: %v", err)
		}
		defer ex2.Close()
		for _, id := range ids {
			if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
				t.Errorf("job %s: outcomes diverged after aborted compaction", id)
			}
		}
		// …and the live replica retries successfully once space is back
		// (the Nth:1 trigger has been consumed).
		if err := ex.Compact(); err != nil {
			t.Fatalf("retried Compact: %v", err)
		}
		for _, id := range ids {
			if got := outcomesPageBytes(t, ex, id); string(got) != string(pages[id]) {
				t.Errorf("job %s: outcomes changed across successful compaction", id)
			}
		}
	})

	t.Run("rotation seal error degrades then recovers", func(t *testing.T) {
		t.Cleanup(fault.DisableAll)
		dir := t.TempDir()
		ex, err := Open(dir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
		if err := ex.Sync(); err != nil {
			t.Fatal(err)
		}
		acked := ackedOutcomes(t, ex, ids, rounds)

		if err := fault.Enable("wal/rotate", fault.Config{Err: fault.ErrNoSpace, Nth: 1}); err != nil {
			t.Fatal(err)
		}
		// The seal error surfaces through the writer, not Compact's own
		// return (the snapshot itself may still commit — it only covers
		// records that were already durable before the rotation barrier).
		ex.Compact() //nolint:errcheck // error path under test is the writer's
		if !ex.Degraded() {
			t.Fatal("exchange not degraded after rotation seal failure")
		}

		crashDir := cloneDataDir(t, dir)
		fault.DisableAll()
		ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("reopen after mid-rotation failure crash: %v", err)
		}
		defer ex2.Close()
		assertAcked(t, ex2, acked)
		compactWorkload(t, ex2, jobs, bidders, 1, false)
	})
}

// TestWALFailstopPolicy: with OnWALFailure set to WALFailstop the first
// sticky WAL error terminates the process (exit code 1) instead of
// degrading — pinned through the swappable exit hook.
func TestWALFailstopPolicy(t *testing.T) {
	t.Cleanup(fault.DisableAll)
	exited := make(chan int, 1)
	old := failstopExit
	failstopExit = func(code int) {
		select {
		case exited <- code:
		default:
		}
	}
	defer func() { failstopExit = old }()

	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1, OnWALFailure: WALFailstop})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, 1, 4, 1, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}

	degradeViaFsync(t, ex, ids[0], 4)
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("failstop exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failstop policy never invoked the exit hook")
	}
}

package exchange

import (
	"sync"
	"testing"
)

func TestRegistryRegisterLookup(t *testing.T) {
	r := NewRegistry()
	info, created := r.Register(7, "edge-7")
	if !created || info.ID != 7 || info.Meta() != "edge-7" {
		t.Fatalf("first Register = (%+v, %v)", info, created)
	}
	again, created := r.Register(7, "")
	if created || again != info || info.Meta() != "edge-7" {
		t.Error("re-registration with empty meta must keep the record and its label")
	}
	if _, created := r.Register(7, "10.0.0.7:9000"); created || info.Meta() != "10.0.0.7:9000" {
		t.Error("re-registration with non-empty meta must relabel the existing record")
	}
	if _, ok := r.Lookup(8); ok {
		t.Error("Lookup(8) found an unregistered node")
	}
	if r.Len() != 1 {
		t.Errorf("Len() = %d, want 1", r.Len())
	}
	if r.Blacklist(8) {
		t.Error("Blacklist(8) succeeded on an unregistered node")
	}
	if !r.Blacklist(7) || !info.Blacklisted() {
		t.Error("Blacklist(7) did not stick")
	}
}

// TestRegistryConcurrent hammers every shard from many goroutines under
// -race: concurrent registration, lookup and stat updates must be safe and
// lose no registrations.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		nodes   = 2048
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := 0; id < nodes; id++ {
				info, _ := r.Register(id, "")
				info.bids.Add(1)
				if got, ok := r.Lookup(id); !ok || got.ID != id {
					t.Errorf("worker %d: Lookup(%d) = (%v, %v)", w, id, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != nodes {
		t.Fatalf("Len() = %d, want %d", r.Len(), nodes)
	}
	seen := 0
	var totalBids int64
	r.Range(func(info *NodeInfo) bool {
		seen++
		totalBids += info.Bids()
		return true
	})
	if seen != nodes {
		t.Errorf("Range visited %d nodes, want %d", seen, nodes)
	}
	if totalBids != int64(workers*nodes) {
		t.Errorf("total bid count = %d, want %d", totalBids, workers*nodes)
	}
}

func TestRegistryRangeEarlyStop(t *testing.T) {
	r := NewRegistry()
	for id := 0; id < 100; id++ {
		r.Register(id, "")
	}
	visited := 0
	r.Range(func(*NodeInfo) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Errorf("Range visited %d after early stop, want 10", visited)
	}
}

// TestRegistryShardSpread checks that sequential IDs do not pile into a few
// stripes (the whole point of hashing the shard index).
func TestRegistryShardSpread(t *testing.T) {
	r := NewRegistry()
	for id := 0; id < 64*64; id++ {
		r.Register(id, "")
	}
	max := 0
	for i := range r.shards {
		if n := len(r.shards[i].nodes); n > max {
			max = n
		}
	}
	// Perfect balance would be 64 per shard; allow generous slack.
	if max > 3*64 {
		t.Errorf("worst shard holds %d of %d nodes — hashing is not spreading", max, 64*64)
	}
}

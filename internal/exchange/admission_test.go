package exchange

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fmore/internal/admission"
	"fmore/internal/auction"
	"fmore/internal/promtext"
)

// admittedFixture builds an exchange with the given admission config plus
// one manual-round job.
func admittedFixture(t *testing.T, cfg admission.Config) *Exchange {
	t.Helper()
	ex := New(Options{Admission: admission.NewController(cfg)})
	t.Cleanup(func() { ex.Close() })
	if _, err := ex.CreateJob(JobSpec{ID: "adm", Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestAdmissionShedNeverDropsRoundClose is the core overload invariant
// under -race: 64 bidders flood a rate-limited job while a closer hammers
// round closes; every close succeeds with exactly the bids that were
// admitted (accepted bids are never lost, shed bids never appear), and no
// close is ever refused for overload.
func TestAdmissionShedNeverDropsRoundClose(t *testing.T) {
	ex := admittedFixture(t, admission.Config{GlobalRate: 20000, GlobalBurst: 100})

	const (
		bidders   = 64
		perBidder = 400
	)
	var (
		accepted atomic.Int64
		shed     atomic.Int64
		nextID   atomic.Int64
		wg       sync.WaitGroup
	)
	stop := make(chan struct{})
	closedBids := atomic.Int64{}
	closes := atomic.Int64{}
	var closerErr atomic.Value
	closerDone := make(chan struct{})
	go func() {
		defer close(closerDone)
		for {
			ro, err := ex.CloseRound("adm")
			switch {
			case err == nil:
				closes.Add(1)
				closedBids.Add(int64(ro.NumBids))
			case errors.Is(err, ErrBelowQuorum):
				// Nothing admitted since the last close; keep going.
			default:
				var ov *OverloadError
				if errors.As(err, &ov) {
					closerErr.Store("round close was shed: " + err.Error())
					return
				}
				closerErr.Store(err.Error())
				return
			}
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perBidder; i++ {
				id := int(nextID.Add(1))
				_, err := ex.SubmitBid("adm", auction.Bid{
					NodeID: id, Qualities: []float64{0.5, 0.5}, Payment: 0.1,
				})
				var ov *OverloadError
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.As(err, &ov):
					if ov.RetryAfter <= 0 {
						t.Error("shed without a retry hint")
					}
					shed.Add(1)
				default:
					t.Errorf("unexpected submit error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-closerDone
	if msg := closerErr.Load(); msg != nil {
		t.Fatalf("closer: %v", msg)
	}
	// Drain the final collecting round so every admitted bid is in an
	// outcome.
	if ro, err := ex.CloseRound("adm"); err == nil {
		closes.Add(1)
		closedBids.Add(int64(ro.NumBids))
	} else if !errors.Is(err, ErrBelowQuorum) {
		t.Fatalf("final close: %v", err)
	}

	if accepted.Load()+shed.Load() != bidders*perBidder {
		t.Fatalf("accepted %d + shed %d != %d attempts", accepted.Load(), shed.Load(), bidders*perBidder)
	}
	if shed.Load() == 0 {
		t.Fatal("the flood never tripped the rate limit; the test exercised nothing")
	}
	if got := closedBids.Load(); got != accepted.Load() {
		t.Fatalf("rounds closed with %d bids total, but %d were admitted", got, accepted.Load())
	}
	s := ex.Metrics()
	if !s.AdmissionEnabled || s.AdmissionShedTotal != shed.Load() || s.AdmissionShedGlobal != shed.Load() {
		t.Fatalf("snapshot admission accounting = %+v, want shed_total %d", s, shed.Load())
	}
	if s.BidsAccepted != accepted.Load() {
		t.Fatalf("bids_accepted %d != %d", s.BidsAccepted, accepted.Load())
	}
}

// TestAdmissionHTTP429 pins the wire shape of a shed bid: 429, code
// "overloaded", retry_after_ms ≥ 1 — and that the shed does not burn the
// request's Idempotency-Key (the retry with the same key executes fresh
// and succeeds rather than replaying the 429). The clock is injected so
// the single-token burst cannot refill from real test latency.
func TestAdmissionHTTP429(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Now().UnixNano())
	ex := admittedFixture(t, admission.Config{
		GlobalRate: 1000, GlobalBurst: 1,
		Now: func() time.Time { return time.Unix(0, clock.Load()) },
	})
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	bid := map[string]any{"node_id": 1, "qualities": []float64{0.5, 0.5}, "payment": 0.1}
	if resp, body := postJSON(t, srv.URL+"/v1/jobs/adm/bids", bid); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first bid: status %d body %v", resp.StatusCode, body)
	}

	post := func(nodeID int) (*http.Response, map[string]any) {
		buf, err := json.Marshal(map[string]any{"node_id": nodeID, "qualities": []float64{0.5, 0.5}, "payment": 0.1})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs/adm/bids", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", "retry-me")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp, decodeBody(t, resp)
	}
	resp, body := post(2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exceeded bid: status %d body %v", resp.StatusCode, body)
	}
	if body["code"] != "overloaded" {
		t.Fatalf("shed code = %v", body["code"])
	}
	if ra, ok := body["retry_after_ms"].(float64); !ok || ra < 1 {
		t.Fatalf("retry_after_ms = %v", body["retry_after_ms"])
	}
	if resp.Header.Get("Idempotent-Replay") != "" {
		t.Fatal("a shed must not come from the idempotency cache")
	}
	// The bucket refills one token per millisecond; advance the clock past
	// a refill and the same key executes fresh instead of replaying the
	// recorded 429.
	clock.Add(int64(20 * time.Millisecond))
	resp, body = post(2)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry after shed: status %d body %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Idempotent-Replay") != "" {
		t.Fatal("the shed 429 was recorded against the Idempotency-Key")
	}
}

// TestAdmissionSSECapEvictsOldest drives the subscriber cap through the
// real handler: with MaxStreams 2, a third subscriber evicts the first
// (oldest) stream — its response ends — while the second and third keep
// receiving events.
func TestAdmissionSSECapEvictsOldest(t *testing.T) {
	ex := admittedFixture(t, admission.Config{MaxStreams: 2})
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	r1, close1 := openStream(t, srv.URL+"/v1/jobs/adm/events", "")
	defer close1()
	r2, close2 := openStream(t, srv.URL+"/v1/jobs/adm/events", "")
	defer close2()
	// Both streams are live: each got its round_open frame.
	for i, r := range []*bufio.Reader{r1, r2} {
		if ev, err := readEvent(t, r); err != nil || ev.event != "round_open" {
			t.Fatalf("stream %d first event = %q err %v", i+1, ev.event, err)
		}
	}
	r3, close3 := openStream(t, srv.URL+"/v1/jobs/adm/events", "")
	defer close3()
	if ev, err := readEvent(t, r3); err != nil || ev.event != "round_open" {
		t.Fatalf("stream 3 first event = %q err %v", ev.event, err)
	}
	// Stream 1 (the oldest) was evicted: its body ends.
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(r1)
		done <- err
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("evicted stream did not terminate")
	}
	// Streams 2 and 3 still deliver: close a round and expect the event.
	driveRound(t, srv.URL, "adm", 3, 1)
	for i, r := range []*bufio.Reader{r2, r3} {
		if ev, err := readEvent(t, r); err != nil || ev.event != "round_closed" {
			t.Fatalf("surviving stream %d event = %q err %v, want round_closed", i+2, ev.event, err)
		}
	}
	s := ex.Metrics()
	if s.AdmissionSSEEvicted != 1 || s.AdmissionSSEActive != 2 {
		t.Fatalf("sse accounting: evicted %d active %d", s.AdmissionSSEEvicted, s.AdmissionSSEActive)
	}
}

// TestAdmissionHealthzFlip pins the prober contract: 200 ok while clean,
// 503 overloaded + retry_after_ms while within the overload window of a
// shed, and back to 200 once the window passes (driven by an injected
// clock, so no sleeps).
func TestAdmissionHealthzFlip(t *testing.T) {
	var clock atomic.Int64
	clock.Store(time.Now().UnixNano())
	ex := admittedFixture(t, admission.Config{
		GlobalRate: 1, GlobalBurst: 1,
		OverloadWindow: time.Second,
		Now:            func() time.Time { return time.Unix(0, clock.Load()) },
	})
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	resp, body := getJSON(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("clean healthz: status %d body %v", resp.StatusCode, body)
	}
	// Spend the burst, then shed once.
	if _, err := ex.SubmitBid("adm", auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	_, err := ex.SubmitBid("adm", auction.Bid{NodeID: 2, Qualities: []float64{0.5, 0.5}, Payment: 0.1})
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("second bid err = %v, want OverloadError", err)
	}
	resp, body = getJSON(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "overloaded" {
		t.Fatalf("overloaded healthz: status %d body %v", resp.StatusCode, body)
	}
	if ra, ok := body["retry_after_ms"].(float64); !ok || ra < 1 {
		t.Fatalf("overloaded healthz retry_after_ms = %v", body["retry_after_ms"])
	}
	if st, _ := body["admission_shed_total"].(float64); st != 1 {
		t.Fatalf("healthz shed_total = %v", body["admission_shed_total"])
	}
	// Past the window the signal clears.
	clock.Add(int64(2 * time.Second))
	resp, body = getJSON(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("recovered healthz: status %d body %v", resp.StatusCode, body)
	}
}

// TestAdmissionPrometheusCatalog: with admission installed the exposition
// still parses and carries the admission_* family — the labeled per-scope
// shed counter plus the SSE/inflight/overload series.
func TestAdmissionPrometheusCatalog(t *testing.T) {
	ex := admittedFixture(t, admission.Config{GlobalRate: 1000, GlobalBurst: 1, MaxStreams: 4})
	// One admit, one shed, so the counters are non-trivial.
	if _, err := ex.SubmitBid("adm", auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitBid("adm", auction.Bid{NodeID: 2, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err == nil {
		t.Fatal("second bid should shed")
	}

	var buf bytes.Buffer
	if err := writePrometheus(&buf, ex); err != nil {
		t.Fatal(err)
	}
	page, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	shed, ok := page.Families["fmore_exchange_admission_shed_total"]
	if !ok || shed.Type != "counter" {
		t.Fatalf("admission_shed_total family = %+v", shed)
	}
	byReason := map[string]float64{}
	for _, s := range shed.Samples {
		byReason[s.Labels["reason"]] = s.Value
	}
	for _, reason := range []string{"global", "node", "job", "inflight"} {
		if _, ok := byReason[reason]; !ok {
			t.Fatalf("admission_shed_total missing reason %q: %v", reason, byReason)
		}
	}
	if byReason["global"] != 1 {
		t.Fatalf("global sheds = %v, want 1", byReason["global"])
	}
	for name, typ := range map[string]string{
		"fmore_exchange_admission_sse_evicted_total": "counter",
		"fmore_exchange_admission_inflight":          "gauge",
		"fmore_exchange_admission_sse_active":        "gauge",
		"fmore_exchange_admission_overloaded":        "gauge",
	} {
		f, ok := page.Families[name]
		if !ok || f.Type != typ {
			t.Fatalf("family %s = %+v, want type %s", name, f, typ)
		}
	}
	if v, err := page.Value("fmore_exchange_admission_overloaded"); err != nil || v != 1 {
		t.Fatalf("admission_overloaded = %v err %v, want 1 right after a shed", v, err)
	}
}

// TestAdmissionDisabledZeroSurface: without a controller nothing admission-
// related appears — healthz says ok, the snapshot flags disabled, and the
// exposition omits the family.
func TestAdmissionDisabledZeroSurface(t *testing.T) {
	srv, ex := httpFixture(t)
	resp, body := getJSON(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz without admission: status %d body %v", resp.StatusCode, body)
	}
	if s := ex.Metrics(); s.AdmissionEnabled {
		t.Fatal("admission_enabled without a controller")
	}
	var buf bytes.Buffer
	if err := writePrometheus(&buf, ex); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("admission_")) {
		t.Fatal("admission metrics leak into the exposition when disabled")
	}
}

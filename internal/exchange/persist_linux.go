//go:build linux

package exchange

import (
	"os"
	"syscall"
)

// fdatasync flushes f's data (and the metadata needed to read it back —
// size, extent allocations) without forcing the inode's mtime/ctime into
// the journal the way File.Sync does. For a CRC-framed log the timestamps
// carry no recovery information, so journaling them on every group commit
// is pure overhead; combined with segment preallocation the common-case
// commit is a data-only flush.
func fdatasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}

// preallocate reserves size bytes for f up front so steady-state appends
// never extend the file. Fallocate keeps the reported file size AND
// reserves extents (writes only flip unwritten extents, no allocation in
// the fsync path); filesystems without it fall back to a sparse Truncate,
// which still pins the size so fdatasync skips i_size updates. Best-effort
// either way: recovery tolerates both exact-sized and zero-filled tails.
func preallocate(f *os.File, size int64) {
	if size <= 0 {
		return
	}
	if err := syscall.Fallocate(int(f.Fd()), 0, 0, size); err != nil {
		f.Truncate(size) //nolint:errcheck // best-effort fallback
	}
}

package exchange

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"fmore/internal/auction"
	"fmore/internal/promtext"
)

// TestPrometheusExposition scrapes a live exchange and validates the page
// with the promtext parser: legal syntax, the full metric catalog present
// with the right types, values agreeing with the JSON snapshot, and the
// latency histogram well-formed (cumulative buckets are promtext's own
// check) with _count tracking rounds_total.
func TestPrometheusExposition(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	sink := &collectSink{}
	defer ex.Firehose().Attach(sink)()

	if _, err := ex.CreateJob(JobSpec{ID: "prom", Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for r := 1; r <= rounds; r++ {
		runRound(t, ex, "prom", r)
	}

	var buf bytes.Buffer
	if err := writePrometheus(&buf, ex); err != nil {
		t.Fatal(err)
	}
	page, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}

	wantTypes := map[string]string{
		"fmore_exchange_uptime_seconds":            "gauge",
		"fmore_exchange_jobs_active":               "gauge",
		"fmore_exchange_jobs_created_total":        "counter",
		"fmore_exchange_nodes_known":               "gauge",
		"fmore_exchange_rounds_total":              "counter",
		"fmore_exchange_rounds_failed_total":       "counter",
		"fmore_exchange_idle_ticks_total":          "counter",
		"fmore_exchange_bids_accepted_total":       "counter",
		"fmore_exchange_bids_rejected_total":       "counter",
		"fmore_exchange_wal_snapshots_total":       "counter",
		"fmore_exchange_wal_snapshot_errors_total": "counter",
		"fmore_exchange_wal_segment_count":         "gauge",
		"fmore_exchange_wal_bytes":                 "gauge",
		"fmore_exchange_firehose_events_total":     "counter",
		"fmore_exchange_firehose_dropped_total":    "counter",
		"fmore_exchange_round_latency_p50_seconds": "gauge",
		"fmore_exchange_round_latency_p99_seconds": "gauge",
		"fmore_exchange_round_latency_seconds":     "histogram",
	}
	for name, typ := range wantTypes {
		f, ok := page.Families[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("metric %s type = %q, want %q", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("metric %s has no HELP", name)
		}
	}

	snap := ex.Metrics()
	for name, want := range map[string]float64{
		"fmore_exchange_jobs_active":            float64(snap.JobsActive),
		"fmore_exchange_rounds_total":           float64(snap.RoundsTotal),
		"fmore_exchange_bids_accepted_total":    float64(snap.BidsAccepted),
		"fmore_exchange_firehose_events_total":  float64(snap.FirehoseEvents),
		"fmore_exchange_firehose_dropped_total": 0,
		"fmore_exchange_wal_segment_count":      0, // in-memory exchange
		"fmore_exchange_wal_bytes":              0,
	} {
		got, err := page.Value(name)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	// Histogram: every round landed in some bucket, so _count (== the +Inf
	// bucket, promtext checks their agreement) equals rounds_total and the
	// sum is positive.
	hist := page.Families["fmore_exchange_round_latency_seconds"]
	var count, sum float64
	for _, s := range hist.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		}
	}
	if count != rounds {
		t.Errorf("latency histogram _count = %v, want %v", count, rounds)
	}
	if sum <= 0 {
		t.Errorf("latency histogram _sum = %v, want > 0", sum)
	}
}

// TestPrometheusEndpointMonotoneCounters scrapes /v1/metrics/prometheus
// twice across more work and requires every counter to be monotone.
func TestPrometheusEndpointMonotoneCounters(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	if _, err := ex.CreateJob(JobSpec{ID: "mono", Auction: auction.Config{Rule: testRule(t, 1), K: 2}}); err != nil {
		t.Fatal(err)
	}
	runRound(t, ex, "mono", 1)

	scrape := func() *promtext.Metrics {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/v1/metrics/prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scrape status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("scrape content-type = %q", ct)
		}
		page, err := promtext.Parse(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return page
	}

	first := scrape()
	runRound(t, ex, "mono", 2)
	runRound(t, ex, "mono", 3)
	second := scrape()

	for name, f := range first.Families {
		if f.Type != "counter" && f.Type != "histogram" {
			continue
		}
		for _, s := range f.Samples {
			was := s.Value
			for _, s2 := range second.Families[name].Samples {
				if s2.Name == s.Name && labelsEqual(s.Labels, s2.Labels) {
					if s2.Value < was {
						t.Errorf("%s%v went backwards: %v -> %v", s.Name, s.Labels, was, s2.Value)
					}
				}
			}
		}
	}
	r1, err := first.Value("fmore_exchange_rounds_total")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := second.Value("fmore_exchange_rounds_total")
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1+2 {
		t.Errorf("rounds_total %v -> %v across 2 rounds, want +2", r1, r2)
	}
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

package exchange

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"fmore/internal/auction"
)

// testRule builds an additive rule whose weights depend on the job index so
// every job has a distinct auction.
func testRule(t testing.TB, jobIdx int) auction.ScoringRule {
	t.Helper()
	w := 0.3 + 0.05*float64(jobIdx%8)
	rule, err := auction.NewAdditive(w, 1-w)
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

// testBids generates a deterministic bid set for (job, round): every bidder
// derives its qualities and payment from a seeded rng so reference runs can
// regenerate the exact same pool.
func testBids(jobIdx, round, bidders int) []auction.Bid {
	rng := rand.New(rand.NewSource(int64(1000*jobIdx + round)))
	bids := make([]auction.Bid, bidders)
	for i := range bids {
		bids[i] = auction.Bid{
			NodeID:    i,
			Qualities: []float64{rng.Float64(), rng.Float64()},
			Payment:   0.05 + 0.2*rng.Float64(),
		}
	}
	return bids
}

// TestExchangeConcurrentJobsDeterministic is the subsystem's core contract
// under -race: 8 jobs × 32 bidders submit concurrently through 3 full
// rounds each, and every job's outcome must match a reference single-job
// auctioneer run bit-for-bit (per-job isolation + seed determinism,
// regardless of arrival order).
func TestExchangeConcurrentJobsDeterministic(t *testing.T) {
	const (
		jobs    = 8
		bidders = 32
		rounds  = 3
	)
	ex := New(Options{})
	defer ex.Close()

	jobIDs := make([]string, jobs)
	for j := 0; j < jobs; j++ {
		job, err := ex.CreateJob(JobSpec{
			ID:      fmt.Sprintf("fl-task-%d", j),
			Auction: auction.Config{Rule: testRule(t, j), K: 3 + j%4},
			Seed:    int64(100 + j),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobIDs[j] = job.ID()
	}

	got := make([][]RoundOutcome, jobs)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				bids := testBids(j, round, bidders)
				// Shuffle submission order and fan out over goroutines so
				// arrival order is genuinely nondeterministic.
				var bw sync.WaitGroup
				for _, b := range bids {
					bw.Add(1)
					go func(b auction.Bid) {
						defer bw.Done()
						if _, err := ex.SubmitBid(jobIDs[j], b); err != nil {
							t.Errorf("job %d round %d: submit: %v", j, round, err)
						}
					}(b)
				}
				bw.Wait()
				ro, err := ex.CloseRound(jobIDs[j])
				if err != nil {
					t.Errorf("job %d round %d: close: %v", j, round, err)
					return
				}
				got[j] = append(got[j], ro)
			}
		}(j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Reference: a private auctioneer per job, fed the same bid sets in the
	// exchange's canonical (ascending node ID) order.
	for j := 0; j < jobs; j++ {
		ref, err := auction.NewAuctioneer(
			auction.Config{Rule: testRule(t, j), K: 3 + j%4},
			rand.New(rand.NewSource(int64(100+j))),
		)
		if err != nil {
			t.Fatal(err)
		}
		for round := 1; round <= rounds; round++ {
			bids := testBids(j, round, bidders)
			sort.Slice(bids, func(a, b int) bool { return bids[a].NodeID < bids[b].NodeID })
			want, err := ref.Run(bids)
			if err != nil {
				t.Fatal(err)
			}
			ro := got[j][round-1]
			if ro.Round != round || ro.JobID != jobIDs[j] {
				t.Errorf("job %d: outcome labeled (%s, round %d), want (%s, %d)",
					j, ro.JobID, ro.Round, jobIDs[j], round)
			}
			if ro.NumBids != bidders {
				t.Errorf("job %d round %d: scored %d bids, want %d", j, round, ro.NumBids, bidders)
			}
			if !reflect.DeepEqual(ro.Outcome, want) {
				t.Errorf("job %d round %d: exchange outcome diverges from reference auctioneer", j, round)
			}
		}
	}

	snap := ex.Metrics()
	if want := int64(jobs * rounds); snap.RoundsTotal != want {
		t.Errorf("rounds_total = %d, want %d", snap.RoundsTotal, want)
	}
	if want := int64(jobs * rounds * bidders); snap.BidsAccepted != want {
		t.Errorf("bids_accepted = %d, want %d", snap.BidsAccepted, want)
	}
	if ex.Registry().Len() != bidders {
		t.Errorf("registry has %d nodes, want %d (IDs shared across jobs)", ex.Registry().Len(), bidders)
	}
}

func TestJobTimerWindowClosesRounds(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		Auction:   auction.Config{Rule: testRule(t, 0), K: 2},
		Seed:      7,
		BidWindow: 20 * time.Millisecond,
		// Quorum of 6: windows that expire mid-submission are idle ticks, so
		// the assertion below cannot race the timer.
		MinBids: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBids(0, 1, 6) {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ro, err := job.WaitOutcome(ctx, 1)
	if err != nil {
		t.Fatalf("window never closed round 1: %v", err)
	}
	if ro.NumBids != 6 || len(ro.Outcome.Winners) != 2 {
		t.Errorf("round 1: %d bids, %d winners; want 6 and 2", ro.NumBids, len(ro.Outcome.Winners))
	}
	// Empty windows are idle ticks: the round must not advance without a
	// quorum of bids.
	time.Sleep(60 * time.Millisecond)
	if r := job.Round(); r != 2 {
		t.Errorf("round advanced to %d during idle windows, want 2", r)
	}
}

// TestNextWindowDeadline pins the anchored bid-window schedule: each
// deadline is the previous one plus the window (not "now" plus the window,
// which would stretch the effective period by the scoring latency), and an
// overrun skips to the next grid point instead of firing a catch-up burst.
func TestNextWindowDeadline(t *testing.T) {
	const w = 100 * time.Millisecond
	base := time.Unix(1000, 0)
	cases := []struct {
		name      string
		now, want time.Duration // offsets from base (= the previous deadline)
	}{
		{"fast close stays on grid", 5 * time.Millisecond, w},
		{"slow close within the window stays on grid", 60 * time.Millisecond, w},
		{"close landing exactly on the next deadline skips it", w, 2 * w},
		{"overrun of 2.5 windows skips to the next future grid point", 250 * time.Millisecond, 3 * w},
		{"overrun landing on a grid point moves strictly past it", 2 * w, 3 * w},
	}
	for _, tc := range cases {
		got := nextWindowDeadline(base, base.Add(tc.now), w)
		if want := base.Add(tc.want); !got.Equal(want) {
			t.Errorf("%s: next = base+%v, want base+%v", tc.name, got.Sub(base), tc.want)
		}
	}
}

func TestDuplicateBidRejected(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 0), K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bid := auction.Bid{NodeID: 4, Qualities: []float64{0.5, 0.5}, Payment: 0.1}
	if _, err := ex.SubmitBid(job.ID(), bid); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitBid(job.ID(), bid); !errors.Is(err, ErrDuplicateBid) {
		t.Errorf("second bid: err = %v, want ErrDuplicateBid", err)
	}
	if snap := ex.Metrics(); snap.BidsRejected != 1 {
		t.Errorf("bids_rejected = %d, want 1", snap.BidsRejected)
	}
}

func TestRegistrationPolicyAndBlacklist(t *testing.T) {
	ex := New(Options{RequireRegistration: true})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 0), K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bid := auction.Bid{NodeID: 9, Qualities: []float64{0.5, 0.5}, Payment: 0.1}
	if _, err := ex.SubmitBid(job.ID(), bid); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unregistered bid: err = %v, want ErrNotRegistered", err)
	}
	ex.RegisterNode(9, "edge-9")
	if _, err := ex.SubmitBid(job.ID(), bid); err != nil {
		t.Errorf("registered bid rejected: %v", err)
	}
	if !ex.Registry().Blacklist(9) {
		t.Fatal("blacklist of registered node failed")
	}
	bid.NodeID = 9
	if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 9, Qualities: []float64{0.1, 0.1}, Payment: 0.1}); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("blacklisted bid: err = %v, want ErrBlacklisted", err)
	}
}

func TestMaxRoundsClosesJob(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		Auction:   auction.Config{Rule: testRule(t, 1), K: 1},
		MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		for _, b := range testBids(1, round, 4) {
			if _, err := ex.SubmitBid(job.ID(), b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.CloseRound(job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if got := job.State(); got != "closed" {
		t.Errorf("state = %q, want closed", got)
	}
	if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 0, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.Is(err, ErrJobClosed) {
		t.Errorf("bid on maxed job: err = %v, want ErrJobClosed", err)
	}
	// Waiting on a round that will never come reports closure, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := job.WaitOutcome(ctx, 3); !errors.Is(err, ErrJobClosed) {
		t.Errorf("wait on closed job: err = %v, want ErrJobClosed", err)
	}
}

func TestOutcomeEviction(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		Auction:      auction.Config{Rule: testRule(t, 2), K: 1},
		KeepOutcomes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 4; round++ {
		for _, b := range testBids(2, round, 3) {
			if _, err := ex.SubmitBid(job.ID(), b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.CloseRound(job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := job.Outcome(1); !errors.Is(err, ErrOutcomeEvicted) {
		t.Errorf("round 1: err = %v, want ErrOutcomeEvicted", err)
	}
	for round := 3; round <= 4; round++ {
		if ro, err := job.Outcome(round); err != nil || ro.Round != round {
			t.Errorf("round %d: (%v, %v), want retained", round, ro.Round, err)
		}
	}
	if ro, ok := job.Latest(); !ok || ro.Round != 4 {
		t.Errorf("Latest() = (%v, %v), want round 4", ro.Round, ok)
	}
}

func TestCloseRoundBelowQuorum(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		Auction: auction.Config{Rule: testRule(t, 3), K: 1},
		MinBids: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CloseRound(job.ID()); !errors.Is(err, ErrBelowQuorum) {
		t.Fatalf("close below quorum: err = %v, want ErrBelowQuorum", err)
	}
	// The pending bid survives the failed close and counts toward the next
	// attempt.
	if n := job.PendingBids(); n != 1 {
		t.Errorf("pending bids after refused close = %d, want 1", n)
	}
	if r := job.Round(); r != 1 {
		t.Errorf("round advanced to %d on refused close, want 1", r)
	}
}

func TestEngineAdapterRunsTransportRounds(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		Auction: auction.Config{Rule: testRule(t, 4), K: 2},
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ex, job.ID())

	ref, err := auction.NewAuctioneer(
		auction.Config{Rule: testRule(t, 4), K: 2}, rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		bids := testBids(4, round, 10)
		got, err := eng.RunRound(round, bids)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(bids) // already in ascending NodeID order
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round %d: engine outcome diverges from private auctioneer", round)
		}
	}
	if _, err := eng.RunRound(3, nil); err == nil {
		t.Error("zero-bid engine round: want error")
	}
}

func TestExchangeCloseRejectsWork(t *testing.T) {
	ex := New(Options{})
	job, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 5), K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ex.Close()
	ex.Close() // idempotent
	if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 0, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.Is(err, ErrJobClosed) {
		t.Errorf("bid after Close: err = %v, want ErrJobClosed", err)
	}
	if _, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 5), K: 1}}); !errors.Is(err, ErrExchangeClosed) {
		t.Errorf("CreateJob after Close: err = %v, want ErrExchangeClosed", err)
	}
}

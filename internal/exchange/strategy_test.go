package exchange

import (
	"fmt"
	"net/http"
	"testing"

	"fmore/internal/auction"
	"fmore/internal/transport"
)

func equilibriumSpec() *transport.EquilibriumSpec {
	return &transport.EquilibriumSpec{
		Cost:  transport.CostSpec{Kind: "linear", Beta: []float64{0.5, 0.5}},
		Theta: transport.DistSpec{Kind: "uniform", Lo: 1, Hi: 2},
		N:     40,
		QLo:   []float64{0, 0},
		QHi:   []float64{1, 1},
	}
}

func strategyJobSpec(id string) JobSpec {
	rule, err := auction.NewCobbDouglas(25, 1, 1)
	if err != nil {
		panic(err)
	}
	return JobSpec{
		ID:          id,
		Auction:     auction.Config{Rule: rule, K: 5},
		Seed:        11,
		Equilibrium: equilibriumSpec(),
	}
}

func TestJobStrategyLazySolve(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()

	job, err := ex.CreateJob(strategyJobSpec("strat"))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := job.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	again, err := job.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	if strat != again {
		t.Fatal("Strategy must cache the solve, not re-run it")
	}
	// Equilibrium payments must cover the node's cost (individual
	// rationality, Theorem 2) across the support.
	for _, th := range []float64{1.0, 1.3, 1.7, 2.0} {
		if p, c := strat.Payment(th), strat.Cost(th); p < c {
			t.Fatalf("payment %v below cost %v at θ=%v", p, c, th)
		}
	}

	// A job without the spec reports ErrNoStrategy.
	plain, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: strategyJobSpec("x").Auction.Rule, K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Strategy(); err == nil {
		t.Fatal("want ErrNoStrategy for a job without an equilibrium spec")
	}
}

func TestCreateJobRejectsBadEquilibriumSpec(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()

	spec := strategyJobSpec("bad")
	spec.Equilibrium.N = 3 // K=5 >= N: unsolvable game
	if _, err := ex.CreateJob(spec); err == nil {
		t.Fatal("want job creation to fail fast on an unsolvable equilibrium spec")
	}
}

func TestHTTPStrategyEndpoint(t *testing.T) {
	srv, _ := httpFixture(t)

	resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":   "fl-mnist",
		"rule": map[string]any{"kind": "cobb-douglas", "alpha": []float64{1, 1}, "scale": 25},
		"k":    5,
		"equilibrium": map[string]any{
			"cost":  map[string]any{"kind": "linear", "beta": []float64{0.5, 0.5}},
			"theta": map[string]any{"kind": "uniform", "lo": 1, "hi": 2},
			"n":     40,
			"q_lo":  []float64{0, 0},
			"q_hi":  []float64{1, 1},
		},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: status %d, body %v", resp.StatusCode, body)
	}
	if body["has_strategy"] != true {
		t.Fatalf("job view should advertise the strategy endpoint: %v", body)
	}

	resp, body = getJSON(t, srv.URL+"/v1/jobs/fl-mnist/strategy?samples=17")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strategy: status %d, body %v", resp.StatusCode, body)
	}
	pts, ok := body["points"].([]any)
	if !ok || len(pts) != 17 {
		t.Fatalf("want 17 curve points, got %v", body["points"])
	}
	first, ok := pts[0].(map[string]any)
	if !ok {
		t.Fatalf("bad point payload: %v", pts[0])
	}
	if qs, ok := first["qualities"].([]any); !ok || len(qs) != 2 {
		t.Fatalf("point qualities should match the rule dimensions: %v", first)
	}
	if body["theta_lo"].(float64) != 1 || body["theta_hi"].(float64) != 2 {
		t.Fatalf("support mismatch: %v", body)
	}

	// Bad sample counts are rejected.
	resp, _ = getJSON(t, srv.URL+"/v1/jobs/fl-mnist/strategy?samples=1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("samples=1 should 400, got %d", resp.StatusCode)
	}

	// A job without an equilibrium spec answers 404.
	resp, body = postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":   "no-game",
		"rule": map[string]any{"kind": "additive", "alpha": []float64{0.5, 0.5}},
		"k":    2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create plain job: status %d body %v", resp.StatusCode, body)
	}
	resp, _ = getJSON(t, srv.URL+"/v1/jobs/no-game/strategy")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("strategy without spec should 404, got %d", resp.StatusCode)
	}
}

// TestStrategySpecSurvivesRecovery pins the WAL round trip: an equilibrium
// spec persisted at job creation must serve the strategy after a restart.
func TestStrategySpecSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(strategyJobSpec("durable")); err != nil {
		t.Fatal(err)
	}
	ex.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	job, ok := re.Job("durable")
	if !ok {
		t.Fatal("job lost across recovery")
	}
	if job.Spec().Equilibrium == nil {
		t.Fatal("equilibrium spec lost across recovery")
	}
	strat, err := job.Strategy()
	if err != nil {
		t.Fatal(err)
	}
	if pts := strat.SampleCurve(9); len(pts) != 9 {
		t.Fatalf("want 9 samples, got %d", len(pts))
	}
}

// TestHTTPOutcomeReportsEveryScore is the end-to-end regression for the
// partial top-K refactor: GET /jobs/{id}/outcome must still expose the
// score of every bidder in the round, not just the surviving top-K.
func TestHTTPOutcomeReportsEveryScore(t *testing.T) {
	srv, _ := httpFixture(t)

	resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":   "scored",
		"rule": map[string]any{"kind": "additive", "alpha": []float64{0.5, 0.5}},
		"k":    3,
		"seed": 5,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create job: status %d, body %v", resp.StatusCode, body)
	}
	const bidders = 24
	for i := 0; i < bidders; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/jobs/scored/bids", map[string]any{
			"node_id":   i,
			"qualities": []float64{float64(i) / bidders, 1 - float64(i)/bidders},
			"payment":   0.1,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("bid %d: status %d, body %v", i, resp.StatusCode, body)
		}
	}
	resp, body = postJSON(t, srv.URL+"/v1/jobs/scored/close", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d, body %v", resp.StatusCode, body)
	}
	winners, ok := body["winners"].([]any)
	if !ok || len(winners) != 3 {
		t.Fatalf("want 3 winners, got %v", body["winners"])
	}
	scores, ok := body["scores"].([]any)
	if !ok || len(scores) != bidders {
		t.Fatalf("outcome scores cover %d of %d bidders: %v", len(scores), bidders, body["scores"])
	}

	resp, body = getJSON(t, srv.URL+"/v1/jobs/scored/outcome?round=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcome: status %d, body %v", resp.StatusCode, body)
	}
	scores, ok = body["scores"].([]any)
	if !ok || len(scores) != bidders {
		t.Fatalf("GET outcome scores cover %d of %d bidders", len(scores), bidders)
	}
	if fmt.Sprint(body["num_bids"]) != fmt.Sprint(bidders) {
		t.Fatalf("num_bids %v, want %d", body["num_bids"], bidders)
	}
}

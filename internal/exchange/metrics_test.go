package exchange

import (
	"testing"
	"time"
)

// ms converts an observed latency to the milliseconds value the snapshot
// reports, through the exact float operations latencyPercentiles performs.
func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }

// TestLatencyPercentilesNearestRank is the regression test for the floored
// percentile rank: with 2 samples {1ms, 100ms} the old int(q*(n-1)) formula
// returned buf[int(0.99*1)] = buf[0] — reporting the *minimum* as p99. The
// nearest-rank formula (⌈q·n⌉−1) must return the maximum.
func TestLatencyPercentilesNearestRank(t *testing.T) {
	m := newMetrics()
	m.observeRound(1 * time.Millisecond)
	m.observeRound(100 * time.Millisecond)
	p50, p99 := m.latencyPercentiles()
	if want := ms(100 * time.Millisecond); p99 != want {
		t.Errorf("p99 over {1ms, 100ms} = %vms, want %vms (the max, not the min)", p99, want)
	}
	if want := ms(1 * time.Millisecond); p50 != want {
		t.Errorf("p50 over {1ms, 100ms} = %vms, want %vms", p50, want)
	}
}

func TestLatencyPercentilesSingleSample(t *testing.T) {
	m := newMetrics()
	m.observeRound(7 * time.Millisecond)
	p50, p99 := m.latencyPercentiles()
	if want := ms(7 * time.Millisecond); p50 != want || p99 != want {
		t.Errorf("(p50, p99) over one 7ms sample = (%v, %v), want both %v", p50, p99, want)
	}
}

func TestLatencyPercentilesLargeSample(t *testing.T) {
	m := newMetrics()
	for i := 1; i <= 100; i++ {
		m.observeRound(time.Duration(i) * time.Millisecond)
	}
	p50, p99 := m.latencyPercentiles()
	// Nearest rank over 1..100ms: p50 = 50th value, p99 = 99th value.
	if want := ms(50 * time.Millisecond); p50 != want {
		t.Errorf("p50 over 1..100ms = %vms, want %vms", p50, want)
	}
	if want := ms(99 * time.Millisecond); p99 != want {
		t.Errorf("p99 over 1..100ms = %vms, want %vms", p99, want)
	}
}

func TestLatencyPercentilesEmpty(t *testing.T) {
	m := newMetrics()
	if p50, p99 := m.latencyPercentiles(); p50 != 0 || p99 != 0 {
		t.Errorf("empty ring percentiles = (%v, %v), want zeros", p50, p99)
	}
}

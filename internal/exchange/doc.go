// Package exchange is the multi-job auction exchange: a long-running
// service that hosts many concurrent FMore FL tasks, each running its own
// sequence of procurement-auction rounds against a shared population of
// registered edge nodes.
//
// The single-job auctioneer of internal/auction (Algorithm 1) scores one
// round synchronously; the exchange scales that engine to service shape:
//
//   - Registry is a sharded node directory (striped locks, atomic per-node
//     counters) so a very large bidder population never contends on one
//     mutex.
//   - Each Job owns an auction.Auctioneer, a per-round bid buffer, and a
//     round state machine. Bid-collection windows are driven by
//     context.Context deadlines; jobs can also be driven manually with
//     CloseRound (that is how internal/transport delegates its rounds
//     here).
//   - A shared scoring worker pool batches S(q, p) evaluations across all
//     jobs and reuses per-job score buffers, keeping the scoring hot path
//     allocation-free. Winner determination then enters the auction engine
//     through Auctioneer.RunScored, so exchange outcomes are bit-for-bit
//     the outcomes the standalone auctioneer would produce.
//   - Bids within a round are canonically ordered by node ID before
//     scoring, so per-job outcomes are deterministic under a fixed seed no
//     matter the concurrent arrival order.
//   - Metrics tracks rounds/sec, bids/sec and a p99 round latency over a
//     sliding window (nearest-rank percentiles).
//
// # Durability
//
// Open(dir, opts) backs the exchange with a write-ahead outcome log at
// dir/exchange.wal, so a long-lived auctioneer's allocation history — the
// thing the incentive mechanism's credibility rests on — survives a crash.
// Every durable mutation appends one record: job created (full spec, rule
// serialized as its wire form), round completed (outcome verbatim), job
// closed or removed, node registered, node blacklisted. Records are framed
// as
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) | payload JSON
//
// and appended by a dedicated writer goroutine that group-commits: records
// arriving within the coalescing window (Options.SyncInterval, default 2ms)
// share one fsync. closeRound hands the record to a channel and never waits
// on disk. Sync flushes on demand; Close flushes on shutdown. A kill -9 can
// lose at most the unflushed window — never tear what a prior fsync wrote.
//
// On Open, the log is replayed: jobs are recreated with their specs and
// seeds, the retained outcome history (bounded by KeepOutcomes), round
// numbering, registry, per-node bid counters and blacklist are restored,
// and a torn tail from a crash mid-append (short frame or CRC mismatch) is
// truncated. Each round record carries the job's cumulative rng-source step
// count; replay fast-forwards a freshly seeded source by exactly that many
// steps, so a restarted exchange serves byte-identical outcome responses
// for all retained rounds and continues drawing the same tiebreak and
// ψ-admission sequence the uncrashed process would have drawn. Bids of a
// round that had not closed at the crash are lost (their round re-collects
// after restart), and process-local throughput counters (rounds/sec,
// bids/sec) restart from zero — only outcomes, specs and the registry are
// durable. The log is append-only and currently not compacted.
//
// # The /v1 API
//
// NewHandler exposes the service over a versioned HTTP/JSON surface; see
// its doc comment for the route table. The v1 contract, which the
// pkg/client SDK (the supported Go consumer) wraps:
//
//   - Uniform errors. Every failure is {code, message, retry_after_ms?}
//     with Content-Type application/json; code is stable API surface
//     (unknown_job, duplicate_bid, job_closed, below_quorum, timeout, …)
//     mapped from the package's sentinel errors by classify.
//   - Idempotency. POST /v1/jobs and POST /v1/jobs/{id}/bids honor an
//     Idempotency-Key header: a repeated key replays the recorded response
//     (Idempotent-Replay: true) instead of failing on the duplicate side
//     effect, making client retries safe. Keys are process-local.
//   - Pagination. GET /v1/jobs and GET /v1/jobs/{id}/outcomes page with
//     ?cursor= / ?limit= and return next_cursor while more remain.
//   - Server-push rounds. GET /v1/jobs/{id}/events is a Server-Sent Events
//     stream (round_open, round_closed with the outcome inline, job_closed,
//     heartbeat comments) backed by a per-job fan-out: closeRound publishes
//     to every subscriber inside the same critical section that appends the
//     outcome to history, so replay-then-live resumption (Last-Event-ID or
//     ?after=) can never lose or duplicate a round within the KeepOutcomes
//     retention window. Slow subscribers are dropped rather than ever
//     blocking the round pipeline — a dropped reader reconnects and
//     replays. This replaces outcome long-polling for edge clients
//     (GET .../outcome?wait=1 remains for one-shot waits).
//
// # Deprecation policy
//
// The pre-v1 unversioned paths (POST /jobs, GET /jobs/{id}/outcome, …)
// answer as thin aliases of their /v1 twins for one release, marked with
// Deprecation: true and a Link: successor-version header; the legacy
// GET /jobs keeps its original {"jobs": [ids]} shape. The events and
// outcomes-listing endpoints are v1-only. New consumers must use /v1 (or
// pkg/client, which only speaks /v1).
//
// cmd/fmore-exchange is the runnable front end (see its -data-dir flag),
// and examples/exchange is a full SDK-driven quickstart including a
// close-and-reopen pass. Engine adapts one job to the transport.Engine
// interface for in-process embedding; the cluster harness instead uses
// pkg/client's Engine over HTTP, exercising the same API surface a
// deployed exchange would serve.
package exchange

// Package exchange is the multi-job auction exchange: a long-running
// service that hosts many concurrent FMore FL tasks, each running its own
// sequence of procurement-auction rounds against a shared population of
// registered edge nodes.
//
// The single-job auctioneer of internal/auction (Algorithm 1) scores one
// round synchronously; the exchange scales that engine to service shape:
//
//   - Registry is a sharded node directory (striped locks, atomic per-node
//     counters) so a very large bidder population never contends on one
//     mutex.
//   - Each Job owns an auction.Auctioneer, a per-round bid buffer, and a
//     round state machine. Bid-collection windows are driven by
//     context.Context deadlines; jobs can also be driven manually with
//     CloseRound (that is how internal/transport delegates its rounds
//     here).
//   - A shared scoring worker pool batches S(q, p) evaluations across all
//     jobs and reuses per-job score buffers, keeping the scoring hot path
//     allocation-free. Winner determination then enters the auction engine
//     through Auctioneer.RunScored, so exchange outcomes are bit-for-bit
//     the outcomes the standalone auctioneer would produce.
//   - Bids within a round are canonically ordered by node ID before
//     scoring, so per-job outcomes are deterministic under a fixed seed no
//     matter the concurrent arrival order.
//   - Metrics tracks rounds/sec, bids/sec and a p99 round latency over a
//     sliding window.
//
// NewHandler exposes the service over HTTP/JSON (POST /jobs,
// POST /jobs/{id}/bids, GET /jobs/{id}/outcome, GET /metrics);
// cmd/fmore-exchange is the runnable front end, and examples/exchange is an
// in-process quickstart. Engine adapts one job to the transport.Engine
// interface so the TCP aggregator harness (internal/transport,
// internal/cluster) delegates winner determination to the exchange instead
// of a private auctioneer.
package exchange

// Package exchange is the multi-job auction exchange: a long-running
// service that hosts many concurrent FMore FL tasks, each running its own
// sequence of procurement-auction rounds against a shared population of
// registered edge nodes.
//
// The single-job auctioneer of internal/auction (Algorithm 1) scores one
// round synchronously; the exchange scales that engine to service shape.
//
// # Concurrency: the epoch-published job table, striped intake, round close
//
// The first step of every request is resolving a job ID, and it takes no
// lock at all. The exchange's job set lives in an immutable table (jobs
// map plus sorted ID list) published behind an atomic pointer:
//
//   - Readers — every submit, outcome read, SSE attach, stats lookup,
//     metrics scrape and the partition miss-check — load the pointer once
//     and index the map. The map behind a published table is never mutated
//     again, so a reader can hold it across arbitrary work; a *Job
//     resolved from any table stays valid even after a concurrent removal
//     evicts it (removal closes the job, it does not free it).
//   - Writers — CreateJob, RemoveJob, Close and WAL replay — are rare.
//     They serialize on ex.mu, copy the current map, mutate the copy and
//     publish a new table tagged with the next epoch (a monotone publish
//     generation; one bump per publish, useful to tests and debuggers).
//     ex.mu guards exactly this mutate-and-republish plus the closed flag
//     — it is never taken to read, and round closes never touch it.
//   - The atomic store is the release barrier: CreateJob finishes every
//     job field (spec, auctioneer, loop bookkeeping) and appends the WAL
//     created-record before the store, so a job visible to a lock-free
//     reader is always fully constructed and durable-ordered. RemoveJob
//     drains the job first (close, loop exit, the closeMu barrier below),
//     so an in-flight round close lands its record before the removal
//     record and replay never meets an outcome for a deleted job.
//
// Past the resolve, the hot path is bid ingestion, and it never touches a
// job-wide lock either:
//
//   - Each Job fronts its bid collection with P intake shards (next power
//     of two ≥ GOMAXPROCS, Options.IntakeShards to override). A node hashes
//     to one shard — its private mutex, append-only buffer and dedup set —
//     so concurrent POST /v1/jobs/{id}/bids serialize only on stripe
//     collisions, never against each other globally and never against a
//     round close in progress. The one-bid-per-node-per-round rule holds
//     exactly because a node always lands on the same shard.
//   - Each shard carries the round number its buffered bids belong to; the
//     close drains shards one by one, advancing each shard's round at its
//     drain. A submit racing the close is therefore labeled with the round
//     it actually joined: the closing round if it entered the buffer before
//     the drain, the next round otherwise. An atomic pending counter backs
//     the quorum check and PendingBids without touching any shard.
//   - closeRound (serialized per job by closeMu) drains the shards into a
//     reused gather buffer, sorts it into canonical ascending-NodeID order
//     (packed int64 (NodeID, position) keys — no per-compare closure), has
//     the shared worker pool score it, and runs winner determination
//     through the job's auction.Auctioneer, whose pooled Selector reuses
//     its scratch round after round. Outcomes are bit-for-bit what the
//     standalone auctioneer would produce, independent of arrival order.
//   - Registry is a sharded node directory (striped locks, atomic per-node
//     counters); the metrics and the event firehose are entirely lock-free
//     on the producer side, so a slow scrape or a wedged event consumer can
//     never stall a bid or a round close (see Observability below).
//
// # Ownership: the pooled outcome lifecycle
//
// The steady-state round close allocates nothing. Winner determination
// copies its result into a job-owned auction.OutcomeBuffer (generation
// tagged; see that type's rules), and the retained history holds that
// pooled form. The boundary:
//
//   - closeRound's return value and the history entries alias pooled
//     memory, immutable until the round leaves the KeepOutcomes window —
//     then the buffer is recycled for a future round.
//   - Everything that escapes the job copies out: the read accessors
//     (Outcome, Latest, WaitLatest, WaitOutcome, OutcomesAfter), the
//     replayed history handed to Subscribe, the round_closed events fanned
//     out to subscribers (cloned once per round, only when subscribers
//     exist), and the transport Engine adapter. HTTP and SSE rendering
//     therefore never reads job-pooled memory outside the job's lock.
//
// # Durability
//
// Open(dir, opts) backs the exchange with a write-ahead outcome log, so a
// long-lived auctioneer's allocation history — the thing the incentive
// mechanism's credibility rests on — survives a crash. Every durable
// mutation appends one record: job created (full spec, rule serialized as
// its wire form), round completed (outcome verbatim, cumulative rng draw
// count included), job closed or removed, node registered, node
// blacklisted. Records are framed as
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) | payload JSON
//
// and appended by a dedicated writer goroutine that group-commits.
// closeRound hands the record to a channel and never waits on disk (the
// frame is encoded before the hand-off, so the close path's record scratch
// is reusable immediately); the writer coalesces queued frames into one
// write syscall and settles them with fdatasync (data plus size, not
// timestamps — preallocation below keeps the size metadata stable anyway;
// plain Sync off Linux). Two commit policies (Options.Commit):
//
//   - CommitAdaptive (default): while nothing is waiting on durability the
//     writer holds the commit for up to Options.SyncInterval (default 2ms)
//     — the hold delays nobody, since appends are fire-and-forget, and is
//     the crash-loss cap. The moment a Sync/Close waiter is pending it
//     commits as soon as the queue drains, absorbing records that raced in
//     behind the waiter into the same fsync instead of idling out the
//     window.
//   - CommitFixed: always hold the full window. Fewest fsyncs, but a
//     durability waiter eats the whole window as latency.
//
// wal_fsync_total counts the commits and wal_fsync_batched_records the
// records they settled; their ratio is the achieved batch size. Sync
// flushes on demand; Close flushes on shutdown. A kill -9 can lose at most
// the unflushed window — never tear what a prior fsync wrote.
//
// # Snapshot + rotation (log compaction)
//
// The log is segmented: segment 1 is dir/exchange.wal (the historical
// name, so pre-rotation data dirs open unchanged), later segments are
// dir/exchange-NNNNNN.wal, and the record framing is identical in all of
// them. Compaction (Exchange.Compact, triggered automatically once the
// active segment passes Options.SnapshotBytes — default 8 MiB — and
// optionally every Options.SnapshotInterval) collapses everything before a
// cut into dir/exchange.snap: job specs, closed flags, round numbering,
// cumulative rng draw counts, the KeepOutcomes-bounded outcome history
// verbatim, and the registry with per-node bid counters, meta and bans.
//
// The protocol, in crash-safe order: (1) create, preallocate and fsync
// the next segment; (2) stop the world (the jobs mutex plus every job's
// closeMu — node records may still race, but replaying one is idempotent)
// and enqueue the rotation through the writer's own channel, making the
// cut exactly the enqueue order; (3) the writer fsyncs the old segment,
// trims its preallocated slack and retires it before touching the new
// one; (4) the snapshot commits via write-temp/fsync/rename; (5) old
// segments are deleted. A kill between any two steps leaves either the
// previous snapshot (or none) with every segment it needs, or the new
// snapshot with its tail; Open replays snapshot + tail bit-for-bit
// identically to a full-log replay — retained outcome responses are
// byte-identical and post-recovery rounds draw the same tiebreak and
// ψ-admission sequence — and deletes whatever garbage the crash left
// (covered segments, torn temp files). A torn tail in the active segment
// is truncated, exactly as before rotation existed.
//
// Segments are preallocated to the rotation threshold (Options.
// SnapshotBytes, or its default when unset/disabled) at creation —
// fallocate where available, truncate-extend elsewhere — so steady-state
// appends never extend the file and each fdatasync settles data blocks
// without an allocating size update. The reservation is trimmed back to
// the logical size when a segment rotates or the exchange closes cleanly;
// only a kill -9 leaves zero-fill on disk, and recovery knows the
// difference between reservation and damage: a run of zeroes past the
// last whole record (in the tail, or in a just-created successor segment)
// is clean end-of-log — truncated on reopen, never treated as a torn
// write — while nonzero garbage in a sealed segment stays a hard error. A
// crash-reopened tail runs unpreallocated until the next rotation, so
// recovered file sizes stay honest.
//
// Bids of a round that had not closed at the crash are lost (their round
// re-collects after restart), and process-local throughput counters
// (rounds/sec, bids/sec) restart from zero — only outcomes, specs and the
// registry are durable.
//
// # Failure model & degraded mode
//
// The storage faults the exchange is built to survive, and what each one
// costs, are explicit. A torn tail (power loss or kill -9 mid-write) is
// routine: recovery truncates the log to the last whole CRC-valid frame
// and replays; everything a completed fsync settled is intact, and a
// group-commit window's worth of fire-and-forget acks is the documented
// loss cap. An I/O error during snapshot preallocation is a clean abort:
// the orphan segment is removed, the rotation trigger re-arms, the
// attempt counts in wal_snapshot_errors and the next Compact simply
// retries — the replica never leaves healthy service.
//
// A sticky error on the live log — a failed frame write, fdatasync, or
// segment seal (EIO, ENOSPC) — is different: the writer freezes the log
// at the first failure (appending past a dropped record would leave a
// gap that replay mis-recovers from) and the error is permanent for the
// process. Options.OnWALFailure picks the policy:
//
//   - WALDegrade (default). The replica stays up but stops lying about
//     durability: every durable mutation (bid submit, round close, job
//     create/remove) refuses with a DegradedError — HTTP 503, code
//     durability_lost, retry_after_ms set — while reads, outcome pages,
//     SSE streams and metrics keep serving what was already won.
//     /v1/healthz flips to 503 {"status":"degraded","wal_failed_unix":…},
//     which the fmore-router's prober observes and steers sheddable bid
//     traffic away; the pkg/client SDK treats durability_lost as routing
//     feedback (refresh the map, re-aim once with the same
//     Idempotency-Key). wal_failed and wal_last_error_unix expose the
//     state in the JSON and Prometheus catalogs, Sync and Close return
//     the sticky error, and an operator resolves it with a restart on a
//     healthy disk — recovery replays to the last durable frame exactly
//     as after a crash.
//   - WALFailstop. The process exits (status 1) on the first sticky
//     error instead, for fleets that prefer a dead replica to a
//     read-only one.
//
// cmd/fmore-exchange exposes the choice as -on-wal-failure degrade|failstop.
// The failpoint framework (internal/fault, FMORE_FAILPOINTS) exists to
// prove all of the above deterministically: the crash-matrix tests and the
// chaos harness (fmore-loadgen -scenario chaos, TestE2EChaos) inject torn
// writes, EIO and ENOSPC at every stage and assert the contract, including
// byte-identical recovery of every acknowledged outcome outside the
// group-commit window.
//
// # Observability: metrics and the event firehose
//
// The exchange observes itself on three levels, all following the same
// never-block rule as the SSE broker — producers pay a bounded handful of
// atomic operations and nothing a consumer does can push back:
//
//   - Counters and gauges (Metrics/Snapshot). Counters are plain atomics
//     bumped inline; gauges are derived at scrape time from authoritative
//     state — jobs_active walks the epoch-published job table behind one
//     atomic load (so it cannot go stale across restarts or removals the
//     way counter arithmetic can, and cannot block or be blocked by churn),
//     wal_segment_count/wal_bytes mirror the segment scan and the log
//     writer's running size. The round-latency ring (P50/P99) and the
//     fixed-bucket latency histogram are atomic slots written once per
//     close.
//   - The firehose (Exchange.Firehose) is a lock-free tap of the bid and
//     round-close streams: a fixed ring of seqlock slots (Options.
//     FirehoseRing, default 4096) that attached Sinks consume through
//     per-sink pump goroutines. Producers never wait — a sink that cannot
//     keep up loses the oldest events and the loss is counted
//     (firehose_dropped), never smeared into close latency. Until the
//     first Attach the tap costs producers one atomic load.
//   - Rollups (internal/analytics) ride the firehose as a Sink and serve
//     windowed + lifetime per-job and per-node aggregates over
//     GET /v1/jobs/{id}/stats and /v1/nodes/{id}/stats; its NewHandler
//     wraps this package's handler.
//
// GET /v1/metrics serves the JSON snapshot; GET /v1/metrics/prometheus
// serves the same state in Prometheus text exposition format (0.0.4,
// hand-rolled — no client library). The catalog, all prefixed
// fmore_exchange_ and unlabeled except the histogram's le:
//
//	uptime_seconds              gauge      seconds since New/Open
//	jobs_active                 gauge      hosted jobs still accepting rounds (live map scan)
//	jobs_created_total          counter    jobs ever created (replay included)
//	nodes_known                 gauge      registry size
//	rounds_total                counter    completed round closes (failed included)
//	rounds_failed_total         counter    closes whose scoring/selection errored
//	idle_ticks_total            counter    timer windows skipped for an empty bid set
//	bids_accepted_total         counter    bids admitted into a round
//	bids_rejected_total         counter    bids refused (duplicate, policy, closed, …)
//	wal_snapshots_total         counter    completed WAL compactions
//	wal_snapshot_errors_total   counter    failed compaction attempts
//	wal_segment_count           gauge      live log segments on disk (0 in-memory)
//	wal_bytes                   gauge      logical bytes across live segments (reservation excluded)
//	wal_fsync_total             counter    group commits (fsyncs) of the outcome log
//	wal_fsync_batched_records   counter    records those commits settled (ratio = batch size)
//	wal_failed                  gauge      1 after the log's first sticky error (degraded), else 0
//	wal_last_error_unix         gauge      Unix time of that first sticky error, 0 while healthy
//	firehose_events_total       counter    events published to the firehose ring
//	firehose_dropped_total      counter    events slow sinks missed (all sinks, ever)
//	round_latency_p50_seconds   gauge      nearest-rank p50 close latency (sliding ring)
//	round_latency_p99_seconds   gauge      nearest-rank p99 close latency (sliding ring)
//	round_latency_seconds       histogram  cumulative close latency, le= 250µs..2.5s buckets
//
// With Options.Admission installed the admission family joins the catalog
// (absent otherwise, so an unprotected exchange exposes zero admission
// surface):
//
//	admission_shed_total        counter    requests shed, labeled reason= global|node|job|inflight
//	admission_sse_evicted_total counter    SSE streams evicted (oldest first) at the cap
//	admission_inflight          gauge      bid submits currently inside the in-flight gate
//	admission_sse_active        gauge      SSE streams currently registered
//	admission_overloaded        gauge      1 while /v1/healthz answers 503, else 0
//
// The histogram is bucketed at write time (one atomic add per close) and
// cumulated at scrape; its _count equals rounds_total, so the two read
// consistently under concurrent closes.
//
// # Admission & overload
//
// Options.Admission mounts an internal/admission.Controller in front of
// the bid-submit path (nil = no admission, zero overhead, no healthz
// overload state). The protection is layered, cheapest refusal first:
//
//   - In-flight gate. The HTTP handler claims a slot before reading the
//     request body or touching the Idempotency-Key, so a saturated
//     exchange sheds excess submits at the cost of a header parse.
//   - Hierarchical GCRA rate limits, global → per-node → per-job. Each
//     level is one lock-free CAS on a single int64 (the theoretical
//     arrival time); a rejected check is side-effect-free, so shed
//     traffic cannot push honest traffic's tokens out. The admit path
//     runs on a cached clock refreshed only when a level rejects —
//     steady-state headroom costs no clock reads — and allocates
//     nothing. Per-node buckets live on the registry entry (minted once
//     by CAS); unregistered nodes share one bucket, which also throttles
//     registration-spray abuse. Per-job buckets are minted at job
//     creation.
//   - SSE subscriber cap. At Config.MaxStreams the OLDEST stream is
//     evicted (its request context canceled) to admit the newcomer, so a
//     reconnect storm converges on the newest subscribers instead of
//     locking out fresh clients.
//
// Shed policy: only bid submits are ever shed. Round closes, WAL commits
// and SSE heartbeats are never admission-checked — load shedding exists
// to protect exactly those; a 429 on a close would be the failure mode,
// not the defense. A shed bid answers 429 {"code":"overloaded",
// "retry_after_ms":N}; because the shed happens before the idempotency
// claim (HTTP gate) or aborts it (rate gate), the request's
// Idempotency-Key is never burned — the pkg/client SDK sleeps the hint
// and retries with the same key.
//
// GET /v1/healthz is the overload signal for probers (the fmore-router
// polls it and fails fast on a replica's behalf): 200 {"status":"ok"}
// normally, 503 {"status":"overloaded","retry_after_ms":N} while the
// in-flight gate is saturated or within one OverloadWindow (default 1s)
// of the most recent shed, so the bit is stable rather than flapping
// per-request.
//
// # The /v1 API
//
// NewHandler exposes the service over a versioned HTTP/JSON surface; see
// its doc comment for the route table. The v1 contract, which the
// pkg/client SDK (the supported Go consumer) wraps:
//
//   - Uniform errors. Every failure is {code, message, retry_after_ms?}
//     with Content-Type application/json; code is stable API surface
//     (unknown_job, duplicate_bid, job_closed, below_quorum, timeout, …)
//     mapped from the package's sentinel errors by classify.
//   - Idempotency. POST /v1/jobs and POST /v1/jobs/{id}/bids honor an
//     Idempotency-Key header: a repeated key replays the recorded response
//     (Idempotent-Replay: true) instead of failing on the duplicate side
//     effect, making client retries safe. Keys are process-local.
//   - Pagination. GET /v1/jobs and GET /v1/jobs/{id}/outcomes page with
//     ?cursor= / ?limit= and return next_cursor while more remain.
//   - Server-push rounds. GET /v1/jobs/{id}/events is a Server-Sent Events
//     stream (round_open, round_closed with the outcome inline, job_closed,
//     heartbeat comments) backed by a per-job fan-out: closeRound publishes
//     to every subscriber inside the same critical section that appends the
//     outcome to history, so replay-then-live resumption (Last-Event-ID or
//     ?after=) can never lose or duplicate a round within the KeepOutcomes
//     retention window. Slow subscribers are dropped rather than ever
//     blocking the round pipeline — a dropped reader reconnects and
//     replays. This replaces outcome long-polling for edge clients
//     (GET .../outcome?wait=1 remains for one-shot waits).
//
// # Deprecation policy
//
// The pre-v1 unversioned paths (POST /jobs, GET /jobs/{id}/outcome, …)
// served as deprecated aliases for one release and have been removed: they
// now 404 with the standard JSON envelope, like any unknown route. The only
// HTTP surface is /v1 (or pkg/client, which only speaks /v1).
//
// # Topology: partitioned clusters
//
// A single exchange owns every job. Options.Partition scopes the process to
// one partition of a cluster instead: the internal/partition.Assignment
// names the partition this replica serves and carries a shared handle to
// the cluster map (partition → replica base URL, monotonically versioned).
// Jobs map to partitions by rendezvous (highest-random-weight) hashing of
// the job ID, so ownership depends only on the set of partition IDs — not
// on replica count or order — and a map change moves only the jobs whose
// owner actually changed.
//
// Ownership is enforced at the edges, never on the hot path:
//
//   - Creation is strict. CreateJob refuses a spec whose explicit ID
//     hashes to another partition with a WrongPartitionError; auto-drawn
//     IDs are redrawn until locally owned (≈P draws for P partitions).
//   - Every other operation is host-based. A job this replica hosts is
//     always served — even if a newer map assigns it elsewhere, so a map
//     version bump never strands live rounds. Only a miss consults the
//     map: unknown jobs owned elsewhere answer WrongPartitionError (HTTP
//     421 Misdirected Request, code wrong_partition) naming the owning
//     replica's URL, partition and map version in the error envelope;
//     unknown jobs owned here answer unknown_job as before. Correctly
//     routed requests therefore pay zero partition overhead — the check
//     rides the existing job-lookup miss.
//
// GET /v1/cluster/partitions serves the replica's current map (404 on an
// unpartitioned exchange). Consumers converge in at most one retry: the
// pkg/client SDK re-aims a refused request at the URL in the envelope
// (carrying the same Idempotency-Key, so redirected POSTs stay
// exactly-once) and refreshes its map; cmd/fmore-router does the same as a
// reverse proxy for clients that want a single endpoint. A partitioned
// replica opened with Open(dir, opts) keeps its WAL and snapshots under
// dir/replica-<partition>, so replicas may share a data-dir parent without
// interleaving logs. The partition surface shows up in the Prometheus
// catalog as fmore_exchange_partition_id{partition=...} (info gauge),
// fmore_exchange_partition_map_version and
// fmore_exchange_wrong_partition_total.
//
// cmd/fmore-exchange is the runnable front end (see its -data-dir,
// -snapshot-bytes, -sync-interval, -commit, -on-wal-failure and
// -pprof-addr flags), and
// examples/exchange is a full SDK-driven quickstart including a
// close-and-reopen pass. Engine adapts
// one job to the transport.Engine interface for in-process embedding; the
// cluster harness instead uses pkg/client's Engine over HTTP, exercising
// the same API surface a deployed exchange would serve.
package exchange

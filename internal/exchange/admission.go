package exchange

import (
	"fmt"
	"time"

	"fmore/internal/admission"
)

// OverloadError reports a bid shed by the admission controller (Options.
// Admission). The HTTP front end maps it to 429 `overloaded` and carries
// RetryAfter as retry_after_ms in the v1 envelope; Scope names the limit
// level that fired (global, node, job or inflight). Sheds are deliberate
// backpressure, not faults: the client SDK retries after the hint.
type OverloadError struct {
	Scope      admission.Scope
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("exchange: overloaded (%s limit), retry in %v", e.Scope, e.RetryAfter)
}

// Admission exposes the exchange's admission controller; nil when overload
// protection is disabled.
func (ex *Exchange) Admission() *admission.Controller { return ex.adm }

package exchange

import (
	"fmt"

	"fmore/internal/auction"
)

// Engine adapts one hosted job to the transport.Engine interface: each
// aggregator round becomes a manually driven exchange round (submit all
// collected bids, close, return the outcome). The adapter is how the TCP
// harness of internal/cluster delegates winner determination to the
// exchange while keeping its own wire protocol.
//
// The job should be created with BidWindow = 0 (manual rounds); the
// transport server owns the round cadence.
type Engine struct {
	ex    *Exchange
	jobID string
}

// NewEngine returns the adapter for jobID on ex.
func NewEngine(ex *Exchange, jobID string) *Engine {
	return &Engine{ex: ex, jobID: jobID}
}

// RunRound implements transport.Engine. The transport round number is
// informational; the job keeps its own contiguous round counter (the
// transport server skips rounds with zero bids, the exchange does not).
// Individually rejected bids (blacklisted or unregistered nodes) drop out
// of the round without failing it, mirroring the aggregator's tolerance of
// misbehaving nodes; the round errors only if no bid is admitted.
func (e *Engine) RunRound(round int, bids []auction.Bid) (auction.Outcome, error) {
	var lastErr error
	admitted := 0
	for _, b := range bids {
		if _, err := e.ex.SubmitBid(e.jobID, b); err != nil {
			lastErr = err
			continue
		}
		admitted++
	}
	if admitted == 0 {
		if lastErr == nil {
			lastErr = auction.ErrNoBids
		}
		return auction.Outcome{}, fmt.Errorf("exchange: engine admitted 0/%d bids (transport round %d): %w", len(bids), round, lastErr)
	}
	ro, err := e.ex.CloseRound(e.jobID)
	if err != nil {
		return auction.Outcome{}, fmt.Errorf("exchange: engine close (transport round %d): %w", round, err)
	}
	// Exchange.CloseRound returns an owned copy, which the transport server
	// is free to retain for its report.
	return ro.Outcome, nil
}

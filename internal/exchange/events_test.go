package exchange

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed test-side SSE frame.
type sseEvent struct {
	id    string
	event string
	data  map[string]any
}

// readEvent reads one SSE frame, skipping heartbeats. Safe to call from
// subscriber goroutines (errors are returned, never Fatal'd).
func readEvent(_ *testing.T, r *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	seen := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if seen {
				return ev, nil
			}
			continue
		}
		if strings.HasPrefix(line, ":") {
			continue
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			ev.id = value
			seen = true
		case "event":
			ev.event = value
			seen = true
		case "data":
			if err := json.Unmarshal([]byte(value), &ev.data); err != nil {
				return ev, fmt.Errorf("bad event data %q: %v", value, err)
			}
			seen = true
		}
	}
}

// openStream opens the SSE endpoint and returns a reader over it.
func openStream(t *testing.T, url, lastEventID string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck // error path
		t.Fatalf("events stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() } //nolint:errcheck // teardown
}

// driveRound submits `bids` bids and closes the round.
func driveRound(t *testing.T, base, jobID string, bids int, round int) {
	t.Helper()
	for node := 0; node < bids; node++ {
		resp, body := postJSON(t, base+"/v1/jobs/"+jobID+"/bids", map[string]any{
			"node_id": node, "qualities": []float64{0.3 + 0.1*float64(node), 0.5}, "payment": 0.1,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d bid %d: status %d body %v", round, node, resp.StatusCode, body)
		}
	}
	if resp, body := postJSON(t, base+"/v1/jobs/"+jobID+"/close", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("round %d close: status %d body %v", round, resp.StatusCode, body)
	}
}

// TestSSEFanout32Subscribers is the acceptance check for the event stream:
// 32 concurrent subscribers each receive every round_closed event with the
// outcome inline, in order, under -race.
func TestSSEFanout32Subscribers(t *testing.T) {
	srv, _ := httpFixture(t)
	const subscribers = 32
	const rounds = 3

	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "fan", "k": 2, "seed": 11,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{0.5, 0.5}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}

	ready := make(chan struct{}, subscribers)
	type result struct {
		got []sseEvent
		err error
	}
	results := make([]result, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No t.Fatal from subscriber goroutines: report through results.
			resp, err := http.Get(srv.URL + "/v1/jobs/fan/events")
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close() //nolint:errcheck // teardown
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("stream status %d", resp.StatusCode)
				return
			}
			r := bufio.NewReader(resp.Body)
			// The subscribe-time round_open marks the stream live.
			first, err := readEvent(t, r)
			if err != nil {
				results[i].err = err
				return
			}
			if first.event != EventRoundOpen {
				results[i].err = fmt.Errorf("first event %q, want round_open", first.event)
				return
			}
			ready <- struct{}{}
			for len(results[i].got) < rounds {
				ev, err := readEvent(t, r)
				if err != nil {
					results[i].err = err
					return
				}
				if ev.event == EventRoundClosed {
					results[i].got = append(results[i].got, ev)
				}
			}
		}(i)
	}
	for i := 0; i < subscribers; i++ {
		<-ready
	}
	for round := 1; round <= rounds; round++ {
		driveRound(t, srv.URL, "fan", 5, round)
	}
	wg.Wait()

	for i, res := range results {
		if res.err != nil {
			t.Fatalf("subscriber %d: %v", i, res.err)
		}
		if len(res.got) != rounds {
			t.Fatalf("subscriber %d saw %d rounds, want %d", i, len(res.got), rounds)
		}
		for n, ev := range res.got {
			if ev.id != fmt.Sprint(n+1) {
				t.Errorf("subscriber %d event %d id = %q, want %d", i, n, ev.id, n+1)
			}
			if got := ev.data["round"].(float64); int(got) != n+1 {
				t.Errorf("subscriber %d event %d round = %v", i, n, got)
			}
			winners, ok := ev.data["winners"].([]any)
			if !ok || len(winners) != 2 {
				t.Errorf("subscriber %d round %d winners = %v, want 2 inline", i, n+1, ev.data["winners"])
			}
			if nb := ev.data["num_bids"].(float64); nb != 5 {
				t.Errorf("subscriber %d round %d num_bids = %v", i, n+1, nb)
			}
		}
	}
}

// TestSSEResumeLastEventID pins lossless resumption: a subscriber
// reconnecting with Last-Event-ID replays every retained round it missed
// before going live.
func TestSSEResumeLastEventID(t *testing.T) {
	srv, _ := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "resume", "k": 1, "seed": 3,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	for round := 1; round <= 3; round++ {
		driveRound(t, srv.URL, "resume", 3, round)
	}

	// Resume after round 1: rounds 2 and 3 replay, then round_open(4).
	r, closeBody := openStream(t, srv.URL+"/v1/jobs/resume/events", "1")
	defer closeBody()
	for want := 2; want <= 3; want++ {
		ev, err := readEvent(t, r)
		if err != nil {
			t.Fatal(err)
		}
		if ev.event != EventRoundClosed || ev.id != fmt.Sprint(want) {
			t.Fatalf("replay event = %q id %q, want round_closed %d", ev.event, ev.id, want)
		}
	}
	ev, err := readEvent(t, r)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != EventRoundOpen || int(ev.data["round"].(float64)) != 4 {
		t.Fatalf("post-replay event = %q %v, want round_open 4", ev.event, ev.data)
	}
	// A round closing after resume arrives live.
	driveRound(t, srv.URL, "resume", 3, 4)
	ev, err = readEvent(t, r)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != EventRoundClosed || ev.id != "4" {
		t.Fatalf("live event = %q id %q, want round_closed 4", ev.event, ev.id)
	}
}

// TestSSEJobClosedEndsStream: a MaxRounds job emits job_closed and the
// stream terminates; a late subscriber to a closed job gets the retained
// history and job_closed immediately.
func TestSSEJobClosedEndsStream(t *testing.T) {
	srv, _ := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "short", "k": 1, "seed": 5, "max_rounds": 1,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	r, closeBody := openStream(t, srv.URL+"/v1/jobs/short/events", "")
	defer closeBody()
	if ev, err := readEvent(t, r); err != nil || ev.event != EventRoundOpen {
		t.Fatalf("first event %v err %v", ev.event, err)
	}
	driveRound(t, srv.URL, "short", 2, 1)
	ev, err := readEvent(t, r)
	if err != nil || ev.event != EventRoundClosed {
		t.Fatalf("event %q err %v, want round_closed", ev.event, err)
	}
	ev, err = readEvent(t, r)
	if err != nil || ev.event != EventJobClosed {
		t.Fatalf("event %q err %v, want job_closed", ev.event, err)
	}
	if _, err := readEvent(t, r); err == nil {
		t.Fatal("stream still open after job_closed")
	}

	// Late subscriber: history replays, then job_closed, no hang.
	r2, closeBody2 := openStream(t, srv.URL+"/v1/jobs/short/events", "")
	defer closeBody2()
	ev, err = readEvent(t, r2)
	if err != nil || ev.event != EventRoundClosed || ev.id != "1" {
		t.Fatalf("late replay = %q id %q err %v", ev.event, ev.id, err)
	}
	ev, err = readEvent(t, r2)
	if err != nil || ev.event != EventJobClosed {
		t.Fatalf("late final = %q err %v, want job_closed", ev.event, err)
	}
}

// TestSSEHeartbeat pins the keep-alive: an idle stream still emits comment
// frames so intermediaries do not reap the connection.
func TestSSEHeartbeat(t *testing.T) {
	old := sseHeartbeat
	sseHeartbeat = 20 * time.Millisecond
	defer func() { sseHeartbeat = old }()

	srv, _ := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "idle", "k": 1,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/idle/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // teardown
	r := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat within 5s")
		}
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		if bytes.HasPrefix(line, []byte(":")) {
			return // heartbeat observed
		}
	}
}

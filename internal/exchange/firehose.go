package exchange

import (
	"context"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Float packing for the atomic slot words.
func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// The firehose is the exchange's lock-free event tap: a fixed-size ring of
// seqlock slots written from the bid-intake and round-close hot paths and
// pumped to attached Sinks by per-sink goroutines. It follows the event
// stream's never-block rule end to end — a producer performs a bounded
// handful of atomic stores and moves on, no matter how slow (or wedged) a
// sink is; a sink that cannot keep up loses the oldest events and the loss
// is counted, never smeared into producer latency.
//
// Until the first Attach the ring is not even allocated and every tap call
// is a single atomic load, so an exchange nobody observes pays nothing.

// tapRingDefault is the ring capacity used when Options.FirehoseRing is 0.
const tapRingDefault = 4096

// tapBatch caps the events decoded and handed to a sink per ConsumeTap
// call; it bounds the pump's scratch buffer and how long a sink call can
// monopolize ring history.
const tapBatch = 256

// tapTick is the pump's fallback poll period, covering the benign race
// where a producer loads the pump set just before an Attach publishes it
// (that producer's wakeup is lost; the tick isn't).
const tapTick = 10 * time.Millisecond

// TapKind enumerates firehose event kinds.
type TapKind uint8

const (
	// TapBidAccepted is one accepted sealed bid entering a round.
	TapBidAccepted TapKind = 1 + iota
	// TapWinner is one selected bid of a completed round (one event per
	// winner, emitted before the round's TapRoundClosed).
	TapWinner
	// TapRoundClosed is one completed round close (Failed marks a round
	// whose scoring or winner determination errored).
	TapRoundClosed
)

// String returns the kind's wire-stable name.
func (k TapKind) String() string {
	switch k {
	case TapBidAccepted:
		return "bid_accepted"
	case TapWinner:
		return "winner"
	case TapRoundClosed:
		return "round_closed"
	default:
		return "unknown"
	}
}

// TapEvent is one decoded firehose event. Fields beyond Kind/Job/Round are
// populated per kind: bids carry Node and Price; winners carry Node, Price
// (asked), Payment (granted) and Score; round closes carry NumBids,
// Winners, Payment (round total), Profit, Latency and Failed.
type TapEvent struct {
	Kind  TapKind
	Job   string
	Round int
	// Node is the bidding (or winning) node.
	Node int
	// Price is the payment the bid asked for.
	Price float64
	// Payment is the payment granted to a winner, or a closed round's
	// total payment across its winners.
	Payment float64
	// Score is a winner's score under the job's rule.
	Score float64
	// NumBids and Winners size a closed round's bid and winner sets.
	NumBids int
	Winners int
	// Latency is the round's close-to-outcome duration.
	Latency time.Duration
	// Profit is the round's aggregator profit (Eq 6).
	Profit float64
	// Failed marks a round whose bid set poisoned scoring or selection.
	Failed bool
}

// Sink consumes firehose batches. ConsumeTap receives events in
// publication order plus the number of events lost to ring overrun since
// the previous delivery. The events slice is the pump's reused scratch —
// a sink that retains events beyond the call must copy them. A sink may
// block (the pump stalls, the producers don't), but a blocked sink drops
// everything that laps the ring while it sleeps.
type Sink interface {
	ConsumeTap(events []TapEvent, dropped uint64)
}

// tapWords is the per-slot payload size. Every event field packs into a
// fixed word so slots can be plain atomics — the seqlock stays clean under
// the race detector, and a torn read is detected by the version recheck
// instead of being undefined behavior.
const tapWords = 11

// Payload word layout (all stored as uint64 bit patterns).
const (
	twKind    = iota // TapKind | failed flag <<8
	twJob            // interned job index
	twRound          // round number
	twNode           // node ID
	twPrice          // asked payment (float64 bits)
	twPayment        // granted/total payment (float64 bits)
	twScore          // winner score (float64 bits)
	twNumBids        // closed round's bid count
	twWinners        // closed round's winner count
	twLatency        // close latency (nanoseconds)
	twProfit         // aggregator profit (float64 bits)
)

const tapFailedFlag = 1 << 8

// tapSlot is one seqlock slot. ver encodes both the write state and the
// claim the slot holds: a writer for claim index i stores 2i+1 (busy),
// then the payload, then 2i+2 (stable). A reader accepts the payload only
// when ver reads exactly 2i+2 before and after the copy, so a reader
// lapped mid-copy observes the version move and discards the torn words.
// The one theoretical hole — two producers claiming i and i+size
// concurrently, i.e. the whole ring published within one producer's
// ~nanoseconds-long store sequence — would require a ring many orders of
// magnitude smaller than the minimum enforced below.
type tapSlot struct {
	ver atomic.Uint64
	w   [tapWords]atomic.Uint64
}

// Firehose is the exchange's event tap; obtain it via Exchange.Firehose.
type Firehose struct {
	size uint64
	mask uint64

	// head counts events ever published; an event's claim index is
	// head-before-increment and its slot is claim & mask.
	head atomic.Uint64

	// ring is nil until the first Attach — the producer fast path when
	// nobody listens is the single pointer load.
	ring atomic.Pointer[[]tapSlot]

	// lookup is the interned job-ID table (append-only, copy-on-write).
	// Slots store job indices because strings cannot be stored atomically.
	lookup atomic.Pointer[[]string]

	// pumps is the attached sink set (copy-on-write under mu).
	pumps atomic.Pointer[[]*tapPump]

	// detachedDrops accumulates the drop counts of detached pumps so the
	// exchange-wide total never goes backwards.
	detachedDrops atomic.Uint64

	mu sync.Mutex // guards Attach/detach and the intern append
}

func newFirehose(ringSize int) *Firehose {
	if ringSize <= 0 {
		ringSize = tapRingDefault
	}
	if ringSize < 64 {
		ringSize = 64
	}
	size := uint64(1) << bits.Len64(uint64(ringSize-1)) // round up to 2^n
	f := &Firehose{size: size, mask: size - 1}
	empty := make([]string, 0)
	f.lookup.Store(&empty)
	return f
}

// enabled reports whether events are being recorded (some sink attached at
// least once). This is the producers' fast-path gate.
func (f *Firehose) enabled() bool { return f.ring.Load() != nil }

// intern maps the job to its index in the lookup table, assigning one on
// first use. The assignment allocates (once per job lifetime, never on the
// steady-state path) and publishes the grown table before returning, so an
// event carrying the new index can never be decoded against a table that
// lacks it by a reader that loads the table after reading the event.
func (f *Firehose) intern(j *Job) uint64 {
	if v := j.tapIdx.Load(); v != 0 {
		return uint64(v - 1)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if v := j.tapIdx.Load(); v != 0 { // lost the race to another producer
		return uint64(v - 1)
	}
	old := *f.lookup.Load()
	grown := make([]string, len(old)+1)
	copy(grown, old)
	idx := uint64(len(old))
	grown[idx] = j.id
	f.lookup.Store(&grown)
	j.tapIdx.Store(uint32(idx) + 1)
	return idx
}

// jobName resolves an interned index, reloading the table if the local
// snapshot predates the index's publication.
func (f *Firehose) jobName(idx uint64, names []string) string {
	if idx < uint64(len(names)) {
		return names[idx]
	}
	if fresh := *f.lookup.Load(); idx < uint64(len(fresh)) {
		return fresh[idx]
	}
	return "" // unreachable by the intern ordering; defend anyway
}

// emit claims the next slot and publishes the payload words. Producers
// never loop, lock or wait: the cost is one fetch-add, 13 plain atomic
// stores, and one non-blocking wakeup per pump.
func (f *Firehose) emit(w *[tapWords]uint64) {
	ring := f.ring.Load()
	if ring == nil {
		return
	}
	i := f.head.Add(1) - 1
	s := &(*ring)[i&f.mask]
	s.ver.Store(2*i + 1)
	for k := range w {
		s.w[k].Store(w[k])
	}
	s.ver.Store(2*i + 2)
	if pumps := f.pumps.Load(); pumps != nil {
		for _, p := range *pumps {
			select {
			case p.notify <- struct{}{}:
			default:
			}
		}
	}
}

// bidAccepted taps one accepted bid.
func (f *Firehose) bidAccepted(j *Job, round, node int, price float64) {
	if !f.enabled() {
		return
	}
	var w [tapWords]uint64
	w[twKind] = uint64(TapBidAccepted)
	w[twJob] = f.intern(j)
	w[twRound] = uint64(round)
	w[twNode] = uint64(int64(node))
	w[twPrice] = f64bits(price)
	f.emit(&w)
}

// roundClosed taps one completed round: a TapWinner per selected bid, then
// the TapRoundClosed summary. Callers hold the job's closeMu, so the
// pooled outcome memory read here is stable; only scalars are copied out.
func (f *Firehose) roundClosed(j *Job, ro *RoundOutcome) {
	if !f.enabled() {
		return
	}
	idx := f.intern(j)
	var w [tapWords]uint64
	for i := range ro.Outcome.Winners {
		win := &ro.Outcome.Winners[i]
		w = [tapWords]uint64{}
		w[twKind] = uint64(TapWinner)
		w[twJob] = idx
		w[twRound] = uint64(ro.Round)
		w[twNode] = uint64(int64(win.Bid.NodeID))
		w[twPrice] = f64bits(win.Bid.Payment)
		w[twPayment] = f64bits(win.Payment)
		w[twScore] = f64bits(win.Score)
		f.emit(&w)
	}
	w = [tapWords]uint64{}
	w[twKind] = uint64(TapRoundClosed)
	if ro.Err != nil {
		w[twKind] |= tapFailedFlag
	}
	w[twJob] = idx
	w[twRound] = uint64(ro.Round)
	w[twNumBids] = uint64(ro.NumBids)
	w[twWinners] = uint64(len(ro.Outcome.Winners))
	w[twPayment] = f64bits(ro.Outcome.TotalPayment())
	w[twProfit] = f64bits(ro.Outcome.AggregatorProfit)
	w[twLatency] = uint64(ro.Latency.Nanoseconds())
	f.emit(&w)
}

// decode expands slot words into the event form.
func (f *Firehose) decode(w *[tapWords]uint64, names []string) TapEvent {
	return TapEvent{
		Kind:    TapKind(w[twKind] &^ tapFailedFlag),
		Failed:  w[twKind]&tapFailedFlag != 0,
		Job:     f.jobName(w[twJob], names),
		Round:   int(int64(w[twRound])),
		Node:    int(int64(w[twNode])),
		Price:   f64frombits(w[twPrice]),
		Payment: f64frombits(w[twPayment]),
		Score:   f64frombits(w[twScore]),
		NumBids: int(int64(w[twNumBids])),
		Winners: int(int64(w[twWinners])),
		Latency: time.Duration(w[twLatency]),
		Profit:  f64frombits(w[twProfit]),
	}
}

// Attach subscribes a sink from the current position of the stream (no
// replay) and returns its detach function. The first Attach allocates the
// ring and turns recording on; recording stays on afterwards (the tap is
// a bounded handful of atomic stores, not worth a producer-visible toggle).
// Detach is signal-only and idempotent: it never waits on the pump, so a
// sink wedged inside ConsumeTap cannot wedge the caller.
func (f *Firehose) Attach(s Sink) (detach func()) {
	f.mu.Lock()
	if f.ring.Load() == nil {
		ring := make([]tapSlot, f.size)
		f.ring.Store(&ring)
	}
	p := &tapPump{
		sink:   s,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		buf:    make([]TapEvent, 0, tapBatch),
	}
	p.read.Store(f.head.Load())
	p.consumed.Store(p.read.Load())
	f.addPump(p)
	f.mu.Unlock()
	go p.run(f)

	var once sync.Once
	return func() {
		once.Do(func() {
			f.mu.Lock()
			f.removePump(p)
			// Freeze the pump's loss into the exchange-wide total; drops
			// after this point have no audience.
			f.detachedDrops.Add(p.dropped.Load() + f.lag(p))
			f.mu.Unlock()
			close(p.stop)
		})
	}
}

// addPump and removePump maintain the copy-on-write pump set; callers hold
// f.mu.
func (f *Firehose) addPump(p *tapPump) {
	old := f.pumps.Load()
	var grown []*tapPump
	if old != nil {
		grown = append(grown, *old...)
	}
	grown = append(grown, p)
	f.pumps.Store(&grown)
}

func (f *Firehose) removePump(p *tapPump) {
	old := f.pumps.Load()
	if old == nil {
		return
	}
	kept := make([]*tapPump, 0, len(*old))
	for _, q := range *old {
		if q != p {
			kept = append(kept, q)
		}
	}
	f.pumps.Store(&kept)
}

// lag is how many published events the pump can no longer deliver because
// the ring has lapped past its cursor — the live component of its drop
// count (a wedged sink's loss keeps growing here while the pump is stuck
// inside ConsumeTap and cannot update its own counter).
func (f *Firehose) lag(p *tapPump) uint64 {
	if behind := f.head.Load() - p.read.Load(); behind > f.size {
		return behind - f.size
	}
	return 0
}

// Stats returns the events published since recording began and the total
// events dropped across all sinks, past and present.
func (f *Firehose) Stats() (published, dropped uint64) {
	published = f.head.Load()
	dropped = f.detachedDrops.Load()
	if pumps := f.pumps.Load(); pumps != nil {
		for _, p := range *pumps {
			dropped += p.dropped.Load() + f.lag(p)
		}
	}
	return published, dropped
}

// Drain blocks until every currently attached sink has been offered all
// events published before the call (delivered or counted dropped), or ctx
// expires. It is a test and shutdown aid — producers never call it.
func (f *Firehose) Drain(ctx context.Context) error {
	target := f.head.Load()
	for {
		settled := true
		if pumps := f.pumps.Load(); pumps != nil {
			for _, p := range *pumps {
				if p.consumed.Load() < target {
					settled = false
					break
				}
			}
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// stopAll signals every pump to exit without waiting for any of them (a
// wedged sink must not wedge Exchange.Close).
func (f *Firehose) stopAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if pumps := f.pumps.Load(); pumps != nil {
		for _, p := range *pumps {
			select {
			case <-p.stop:
			default:
				close(p.stop)
			}
		}
	}
}

// tapPump drives one sink: it chases the ring's head, decodes batches into
// a reused buffer, and calls ConsumeTap. All ring consumption state lives
// here, so sinks compose without sharing cursors.
type tapPump struct {
	sink   Sink
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}

	// read is the next claim index to decode; consumed trails it, advancing
	// only after ConsumeTap returns (Drain's progress witness). dropped
	// accumulates overrun losses already reported (or about to be) to the
	// sink; the still-growing loss of a currently stuck sink is the live
	// lag, computed against read by Firehose.lag.
	read     atomic.Uint64
	consumed atomic.Uint64
	dropped  atomic.Uint64

	buf []TapEvent
}

func (p *tapPump) run(f *Firehose) {
	defer close(p.done)
	tick := time.NewTicker(tapTick)
	defer tick.Stop()
	var pendingDrop uint64
	for {
		head := f.head.Load()
		read := p.read.Load()
		if read == head {
			select {
			case <-p.stop:
				return
			case <-p.notify:
			case <-tick.C:
			}
			continue
		}
		// Overrun: the ring lapped the cursor; everything older than one
		// ring of history is gone. Count it and jump forward.
		if behind := head - read; behind > f.size {
			p.dropped.Add(behind - f.size)
			pendingDrop += behind - f.size
			read = head - f.size
		}
		ring := *f.ring.Load()
		names := *f.lookup.Load()
		p.buf = p.buf[:0]
		for len(p.buf) < tapBatch && read < head {
			s := &ring[read&f.mask]
			want := 2*read + 2
			if s.ver.Load() < want {
				// The claim exists (read < head) but its writer has not
				// finished publishing; take what we have and come back.
				break
			}
			var w [tapWords]uint64
			for k := range w {
				w[k] = s.w[k].Load()
			}
			if s.ver.Load() != want {
				// Lapped mid-copy: the words are torn, the event is lost.
				p.dropped.Add(1)
				pendingDrop++
				read++
				continue
			}
			p.buf = append(p.buf, f.decode(&w, names))
			read++
		}
		p.read.Store(read)
		if len(p.buf) > 0 {
			p.sink.ConsumeTap(p.buf, pendingDrop)
			pendingDrop = 0
		}
		p.consumed.Store(read)
		select {
		case <-p.stop:
			return
		default:
		}
	}
}

package exchange

import (
	"bufio"
	"io"
	"strconv"
)

// Prometheus text exposition (format 0.0.4), hand-rolled so the exchange
// stays dependency-free. Every metric is prefixed fmore_exchange_ and
// derives from the same atomics the JSON snapshot reads, so a scrape takes
// no lock in the exchange core at all — jobs_active walks the
// epoch-published job table behind one atomic load, never blocking (or
// blocked by) job churn. See doc.go for the full metric catalog.

// writePrometheus renders the exchange's metrics in the exposition format.
func writePrometheus(w io.Writer, ex *Exchange) error {
	s := ex.Metrics()
	b := bufio.NewWriter(w)

	gauge := func(name, help string, v float64) {
		b.WriteString("# HELP fmore_exchange_" + name + " " + help + "\n")
		b.WriteString("# TYPE fmore_exchange_" + name + " gauge\n")
		b.WriteString("fmore_exchange_" + name + " " + formatFloat(v) + "\n")
	}
	counter := func(name, help string, v int64) {
		b.WriteString("# HELP fmore_exchange_" + name + " " + help + "\n")
		b.WriteString("# TYPE fmore_exchange_" + name + " counter\n")
		b.WriteString("fmore_exchange_" + name + " " + strconv.FormatInt(v, 10) + "\n")
	}

	gauge("uptime_seconds", "Seconds since the exchange started.", s.UptimeSec)
	gauge("jobs_active", "Hosted jobs currently accepting or scoring bids (derived from the live job map).", float64(s.JobsActive))
	counter("jobs_created_total", "Jobs created over this process lifetime (includes WAL-replayed creations).", s.JobsCreated)
	gauge("nodes_known", "Nodes in the shared registry.", float64(s.NodesKnown))
	counter("rounds_total", "Completed auction rounds.", s.RoundsTotal)
	counter("rounds_failed_total", "Rounds whose scoring or winner determination errored.", s.RoundsFailed)
	counter("idle_ticks_total", "Bid windows that expired below the round quorum.", s.IdleTicks)
	counter("bids_accepted_total", "Sealed bids admitted into a round.", s.BidsAccepted)
	counter("bids_rejected_total", "Bids refused (validation, policy, duplicate, closed job).", s.BidsRejected)
	counter("wal_snapshots_total", "Completed WAL compactions (snapshot + segment rotation).", s.WalSnapshots)
	counter("wal_snapshot_errors_total", "WAL compaction attempts that failed and will be retried.", s.WalSnapshotErrors)
	gauge("wal_segment_count", "Live WAL segments a restart would replay.", float64(s.WalSegmentCount))
	gauge("wal_bytes", "Logical bytes across live WAL segments (sealed plus active tail; preallocated-but-unwritten space is excluded).", float64(s.WalBytes))
	counter("wal_fsync_total", "Group commits (fsyncs) of the outcome log.", s.WalFsyncTotal)
	counter("wal_fsync_batched_records", "Records made durable by those group commits; the ratio to wal_fsync_total is the achieved batch size.", s.WalFsyncBatchedRecords)
	walFailed := 0.0
	if s.WalFailed {
		walFailed = 1
	}
	gauge("wal_failed", "1 after the outcome log's first sticky error (replica degraded, refusing durable writes), else 0.", walFailed)
	gauge("wal_last_error_unix", "Unix time of the outcome log's first sticky error, 0 while healthy.", float64(s.WalLastErrorUnix))
	counter("firehose_events_total", "Events published into the firehose tap since a sink first attached.", s.FirehoseEvents)
	counter("firehose_dropped_total", "Firehose events lost to ring overrun across all sinks.", s.FirehoseDropped)
	// Partition metrics appear only on a partitioned replica: an info-style
	// gauge carrying the partition as a label (constant 1, the idiomatic way
	// to join other series onto topology), the map version, and the
	// misroute counter.
	if p := ex.Partition(); p != nil {
		if m := p.Map.Load(); m != nil {
			b.WriteString("# HELP fmore_exchange_partition_id Partition served by this replica (info-style: constant 1, partition in the label).\n")
			b.WriteString("# TYPE fmore_exchange_partition_id gauge\n")
			b.WriteString(`fmore_exchange_partition_id{partition="` + p.Local + `"} 1` + "\n")
			gauge("partition_map_version", "Version of the cluster partition map this replica routes by.", float64(m.Version))
			counter("wrong_partition_total", "Job-scoped requests refused because the map places the job on another replica.", s.WrongPartition)
		}
	}
	// Admission metrics appear only when overload protection is installed:
	// sheds by scope on one labeled counter, SSE occupancy and evictions,
	// the in-flight gauge, and the boolean overload state health probers
	// read.
	if s.AdmissionEnabled {
		b.WriteString("# HELP fmore_exchange_admission_shed_total Requests shed by the admission controller, by limit scope.\n")
		b.WriteString("# TYPE fmore_exchange_admission_shed_total counter\n")
		for _, sc := range [...]struct {
			reason string
			v      int64
		}{
			{"global", s.AdmissionShedGlobal},
			{"node", s.AdmissionShedNode},
			{"job", s.AdmissionShedJob},
			{"inflight", s.AdmissionShedInflight},
		} {
			b.WriteString(`fmore_exchange_admission_shed_total{reason="` + sc.reason + `"} ` +
				strconv.FormatInt(sc.v, 10) + "\n")
		}
		counter("admission_sse_evicted_total", "SSE streams evicted (oldest first) to admit new subscribers at the cap.", s.AdmissionSSEEvicted)
		gauge("admission_inflight", "Bid-submit requests currently inside the in-flight gate.", float64(s.AdmissionInflight))
		gauge("admission_sse_active", "SSE streams currently registered with the admission controller.", float64(s.AdmissionSSEActive))
		overloaded := 0.0
		if s.AdmissionOverloaded {
			overloaded = 1
		}
		gauge("admission_overloaded", "1 while the exchange advertises overload on /v1/healthz, else 0.", overloaded)
	}
	gauge("round_latency_p50_seconds", "Median close-to-outcome latency over the sliding percentile window.", s.RoundLatencyP50Ms/1e3)
	gauge("round_latency_p99_seconds", "99th-percentile close-to-outcome latency over the sliding percentile window.", s.RoundLatencyP99Ms/1e3)

	// The cumulative round-latency histogram, bucketed at write time by
	// observeRound — a scrape only loads the bucket counters.
	cum, count, sumSec := ex.metrics.latencyHistogram()
	b.WriteString("# HELP fmore_exchange_round_latency_seconds Close-to-outcome latency of completed rounds.\n")
	b.WriteString("# TYPE fmore_exchange_round_latency_seconds histogram\n")
	for i, bound := range latencyBuckets {
		b.WriteString(`fmore_exchange_round_latency_seconds_bucket{le="` + formatFloat(bound) + `"} ` +
			strconv.FormatInt(cum[i], 10) + "\n")
	}
	b.WriteString(`fmore_exchange_round_latency_seconds_bucket{le="+Inf"} ` + strconv.FormatInt(count, 10) + "\n")
	b.WriteString("fmore_exchange_round_latency_seconds_sum " + formatFloat(sumSec) + "\n")
	b.WriteString("fmore_exchange_round_latency_seconds_count " + strconv.FormatInt(count, 10) + "\n")
	return b.Flush()
}

// formatFloat renders a float the way the exposition format expects:
// shortest exact decimal, no exponent surprises for the magnitudes the
// exchange produces.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

package exchange

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fmore/internal/auction"
)

// TestIntakeDedupUnderConcurrency hammers one job with many goroutines all
// trying to submit for the SAME small node population: exactly one bid per
// node per round may be accepted, every other attempt must fail
// ErrDuplicateBid, across several rounds. This pins the striped intake's
// dedup exactly where the old single-mutex buffer enforced it.
func TestIntakeDedupUnderConcurrency(t *testing.T) {
	const (
		nodes      = 16
		submitters = 4 // goroutines racing per node
		rounds     = 5
	)
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		ID:      "dedup",
		Auction: auction.Config{Rule: testRule(t, 0), K: 4},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= rounds; round++ {
		var accepted, dup, other atomic64
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for id := 0; id < nodes; id++ {
					_, err := ex.SubmitBid(job.ID(), auction.Bid{
						NodeID:    id,
						Qualities: []float64{0.5, 0.5},
						Payment:   0.1,
					})
					switch {
					case err == nil:
						accepted.add(1)
					case errors.Is(err, ErrDuplicateBid):
						dup.add(1)
					default:
						other.add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		if got := accepted.load(); got != nodes {
			t.Fatalf("round %d: %d accepted bids, want exactly %d", round, got, nodes)
		}
		if got := dup.load(); got != nodes*(submitters-1) {
			t.Fatalf("round %d: %d duplicate rejections, want %d", round, got, nodes*(submitters-1))
		}
		if got := other.load(); got != 0 {
			t.Fatalf("round %d: %d unexpected errors", round, got)
		}
		ro, err := ex.CloseRound(job.ID())
		if err != nil {
			t.Fatal(err)
		}
		if ro.NumBids != nodes {
			t.Fatalf("round %d scored %d bids, want %d", round, ro.NumBids, nodes)
		}
	}
}

// atomic64 is a tiny test counter (sync/atomic.Int64 spelled short).
type atomic64 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic64) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// TestIntakeRoundLabelingDuringClose pins the round-labeling contract under
// submit/close races: the round number submit returns is exactly the round
// the bid is scored in. K is set above the population so every accepted bid
// is a winner, making membership observable per round.
func TestIntakeRoundLabelingDuringClose(t *testing.T) {
	const (
		bidders = 24
		rounds  = 8
	)
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		ID:      "labeling",
		Auction: auction.Config{Rule: testRule(t, 1), K: bidders + 1},
		Seed:    2,
		MinBids: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every bidder keeps submitting (one bid per round per node — retry on
	// duplicate until the round advances) while the main goroutine closes
	// rounds concurrently. claimed[node][round] records what submit returned.
	var mu sync.Mutex
	claimed := make(map[int]map[int]bool)
	for id := 0; id < bidders; id++ {
		claimed[id] = make(map[int]bool)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < bidders; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				round, err := ex.SubmitBid(job.ID(), auction.Bid{
					NodeID:    id,
					Qualities: []float64{0.5, 0.5},
					Payment:   0.1,
				})
				if errors.Is(err, ErrDuplicateBid) {
					continue // this round already has our bid; wait for the close
				}
				if errors.Is(err, ErrJobClosed) {
					return
				}
				if err != nil {
					t.Errorf("node %d: %v", id, err)
					return
				}
				mu.Lock()
				if claimed[id][round] {
					mu.Unlock()
					t.Errorf("node %d accepted twice into round %d", id, round)
					return
				}
				claimed[id][round] = true
				mu.Unlock()
			}
		}(id)
	}

	outcomes := make([]RoundOutcome, 0, rounds)
	for len(outcomes) < rounds {
		ro, err := ex.CloseRound(job.ID())
		if errors.Is(err, ErrBelowQuorum) {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, ro)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Each closed round's winner set must be exactly the nodes whose submit
	// reported that round.
	mu.Lock()
	defer mu.Unlock()
	for _, ro := range outcomes {
		if ro.Err != nil {
			t.Fatalf("round %d failed: %v", ro.Round, ro.Err)
		}
		inRound := make(map[int]bool, ro.NumBids)
		for _, w := range ro.Outcome.Winners {
			inRound[w.Bid.NodeID] = true
		}
		if len(inRound) != ro.NumBids {
			t.Fatalf("round %d: %d winners for %d bids (K exceeds population, so they must match)",
				ro.Round, len(inRound), ro.NumBids)
		}
		for id := range inRound {
			if !claimed[id][ro.Round] {
				t.Errorf("round %d scored node %d, but its submit reported a different round", ro.Round, id)
			}
		}
		for id, perRound := range claimed {
			if perRound[ro.Round] && !inRound[id] {
				t.Errorf("node %d's submit reported round %d, but the round did not score it", id, ro.Round)
			}
		}
	}
}

// TestIntakeShardOverride pins the IntakeShards option: stripe counts round
// up to a power of two and the dedup/labeling semantics hold at any count.
func TestIntakeShardOverride(t *testing.T) {
	for _, override := range []int{1, 3, 8} {
		ex := New(Options{IntakeShards: override})
		job, err := ex.CreateJob(JobSpec{
			ID:      fmt.Sprintf("shards-%d", override),
			Auction: auction.Config{Rule: testRule(t, 0), K: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(job.intake.shards); got&(got-1) != 0 || got < override {
			t.Errorf("override %d: %d shards, want a power of two >= it", override, got)
		}
		for _, b := range testBids(0, 1, 8) {
			if _, err := ex.SubmitBid(job.ID(), b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 3, Qualities: []float64{0.1, 0.1}, Payment: 0.1}); !errors.Is(err, ErrDuplicateBid) {
			t.Errorf("override %d: duplicate accepted (err=%v)", override, err)
		}
		if ro, err := ex.CloseRound(job.ID()); err != nil || ro.NumBids != 8 {
			t.Errorf("override %d: close = (%d bids, %v), want 8", override, ro.NumBids, err)
		}
		ex.Close()
	}
}

// TestIntakeWindowDeadlineSemantics pins timer-mode behavior on the striped
// intake: windows close on their anchored schedule, bids landing during a
// close are scored in the next round, and a below-quorum window is an idle
// tick that keeps collecting (dedup retained across the tick).
func TestIntakeWindowDeadlineSemantics(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{
		ID:        "window",
		Auction:   auction.Config{Rule: testRule(t, 0), K: 2},
		Seed:      3,
		BidWindow: 20 * time.Millisecond,
		MinBids:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two bids: below quorum — the window must tick idle, keep them
	// buffered, and still refuse a duplicate.
	for id := 0; id < 2; id++ {
		if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: id, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // at least one idle tick
	if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.Is(err, ErrDuplicateBid) {
		t.Fatalf("duplicate across an idle tick: err = %v, want ErrDuplicateBid", err)
	}
	if got := job.Round(); got != 1 {
		t.Fatalf("round advanced to %d on idle ticks", got)
	}
	if ex.Metrics().IdleTicks == 0 {
		t.Error("no idle ticks recorded for below-quorum windows")
	}
	// Reach quorum; the next window must close round 1 with exactly 4 bids.
	for id := 2; id < 4; id++ {
		if _, err := ex.SubmitBid(job.ID(), auction.Bid{NodeID: id, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ro, err := job.WaitOutcome(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ro.NumBids != 4 {
		t.Fatalf("window closed with %d bids, want 4", ro.NumBids)
	}
}

package exchange

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// latWindow is the sliding-window size of retained round latencies for the
// percentile estimates. Rounds are rare events (one per job per bid window),
// so 1024 samples cover minutes of heavy traffic.
const latWindow = 1024

// latencyBuckets are the cumulative histogram's upper bounds in seconds
// (a final implicit +Inf bucket catches the rest). They span 250µs to
// 2.5s: the round close is a sub-millisecond operation at bench scale, and
// anything past seconds is pathological. Exposed verbatim as the
// Prometheus `le` labels, so changing them changes scrape output.
var latencyBuckets = [...]float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Metrics aggregates exchange-wide throughput counters. Every update is
// lock-free — including the latency ring, whose slots are atomic bit
// patterns — so a slow /metrics scrape can never stall bid submission or a
// round close, and the round-close path never takes a metrics lock.
type Metrics struct {
	start time.Time

	jobsCreated  atomic.Int64
	roundsTotal  atomic.Int64
	roundsFailed atomic.Int64
	idleTicks    atomic.Int64
	bidsAccepted atomic.Int64
	bidsRejected atomic.Int64
	snapshots    atomic.Int64
	snapshotErrs atomic.Int64

	// wrongPartition counts job-scoped requests refused because the cluster
	// map places the job on another replica — sustained growth means a stale
	// router or SDK map.
	wrongPartition atomic.Int64

	// latRing holds the last latWindow round latencies as float64 bit
	// patterns. Writers claim a slot by incrementing latCount; a percentile
	// scrape loads the slots without any lock, so a sample racing the copy
	// is read as either the old or the new round's latency — both valid
	// members of the sliding window.
	latRing  [latWindow]atomic.Uint64
	latCount atomic.Int64

	// latHist/latSumNs are the round-latency histogram behind the
	// Prometheus exposition, bucketed at write time alongside the
	// percentile ring (one extra atomic add per round — a scrape never
	// rescans history). latHist[i] counts rounds whose first fitting
	// bucket is latencyBuckets[i] (non-cumulative; the exposition
	// accumulates), rounds beyond the last bound count only in the
	// histogram total, which is roundsTotal itself.
	latHist  [len(latencyBuckets)]atomic.Int64
	latSumNs atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// observeRound records one completed round and its close-to-outcome latency.
func (m *Metrics) observeRound(latency time.Duration) {
	m.roundsTotal.Add(1)
	i := m.latCount.Add(1) - 1
	secs := latency.Seconds()
	m.latRing[i%latWindow].Store(math.Float64bits(secs))
	m.latSumNs.Add(latency.Nanoseconds())
	for b := range latencyBuckets {
		if secs <= latencyBuckets[b] {
			m.latHist[b].Add(1)
			break
		}
	}
}

// Snapshot is a point-in-time view of the exchange's health, the payload of
// GET /metrics.
type Snapshot struct {
	UptimeSec    float64 `json:"uptime_sec"`
	JobsActive   int64   `json:"jobs_active"`
	JobsCreated  int64   `json:"jobs_created"`
	NodesKnown   int     `json:"nodes_known"`
	RoundsTotal  int64   `json:"rounds_total"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// RoundsFailed counts rounds whose scoring or winner determination
	// errored (a poisoned bid set); a healthy exchange keeps this at 0.
	RoundsFailed int64 `json:"rounds_failed"`
	// IdleTicks counts bid windows that expired below the bid quorum.
	IdleTicks    int64   `json:"idle_ticks"`
	BidsAccepted int64   `json:"bids_accepted"`
	BidsRejected int64   `json:"bids_rejected"`
	BidsPerSec   float64 `json:"bids_per_sec"`
	// WalSnapshots counts completed WAL compactions (snapshot + rotation);
	// WalSnapshotErrors counts attempts that failed and will be retried.
	// Both stay 0 on an in-memory exchange.
	WalSnapshots      int64 `json:"wal_snapshots"`
	WalSnapshotErrors int64 `json:"wal_snapshot_errors"`
	// WalSegmentCount and WalBytes gauge compaction pressure live: the
	// number of log segments replay would read and their total bytes
	// (sealed segments plus the active tail). Both 0 in-memory.
	WalSegmentCount int64 `json:"wal_segment_count"`
	WalBytes        int64 `json:"wal_bytes"`
	// WalFsyncTotal counts the log's group commits (fsyncs) and
	// WalFsyncBatchedRecords the records those commits made durable;
	// their ratio is the achieved group-commit batch size — the
	// observable behind the adaptive/fixed commit-policy tradeoff
	// (Options.Commit). Both 0 in-memory.
	WalFsyncTotal          int64 `json:"wal_fsync_total"`
	WalFsyncBatchedRecords int64 `json:"wal_fsync_batched_records"`
	// WalFailed reports durability loss: the outcome log took a sticky
	// error and the replica is refusing durable writes (degraded mode).
	// WalLastErrorUnix is when (Unix seconds), 0 while healthy. Both stay
	// healthy-valued in-memory.
	WalFailed        bool  `json:"wal_failed"`
	WalLastErrorUnix int64 `json:"wal_last_error_unix"`
	// WrongPartition counts requests refused with wrong_partition — jobs
	// the cluster map assigns to a different replica. Stays 0 unpartitioned.
	WrongPartition int64 `json:"wrong_partition"`
	// FirehoseEvents counts events published into the event tap since a
	// sink first attached; FirehoseDropped counts events sinks lost to
	// ring overrun (all sinks, past and present).
	FirehoseEvents  int64 `json:"firehose_events"`
	FirehoseDropped int64 `json:"firehose_dropped"`
	// Round-close latency percentiles over the last latWindow rounds.
	RoundLatencyP50Ms float64 `json:"round_latency_p50_ms"`
	RoundLatencyP99Ms float64 `json:"round_latency_p99_ms"`
	// Admission* mirror the overload-protection accounting (Options.
	// Admission): whether the controller is installed, whether it currently
	// reports overload, the in-flight bid-submit gauge, sheds by scope, and
	// SSE subscriber occupancy/evictions. All zero (and Enabled false) when
	// admission is disabled.
	AdmissionEnabled      bool  `json:"admission_enabled"`
	AdmissionOverloaded   bool  `json:"admission_overloaded"`
	AdmissionInflight     int64 `json:"admission_inflight"`
	AdmissionShedTotal    int64 `json:"admission_shed_total"`
	AdmissionShedGlobal   int64 `json:"admission_shed_global"`
	AdmissionShedNode     int64 `json:"admission_shed_node"`
	AdmissionShedJob      int64 `json:"admission_shed_job"`
	AdmissionShedInflight int64 `json:"admission_shed_inflight"`
	AdmissionSSEActive    int64 `json:"admission_sse_active"`
	AdmissionSSEEvicted   int64 `json:"admission_sse_evicted"`
}

// snapshot assembles the exported view. nodes and activeJobs are supplied
// by the caller (the registry and the live job map own those counts;
// deriving jobs_active at scrape time is what keeps it truthful across a
// restart, where counter deltas go stale).
func (m *Metrics) snapshot(nodes, activeJobs int) Snapshot {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	s := Snapshot{
		UptimeSec:         elapsed,
		JobsActive:        int64(activeJobs),
		JobsCreated:       m.jobsCreated.Load(),
		NodesKnown:        nodes,
		RoundsTotal:       m.roundsTotal.Load(),
		RoundsFailed:      m.roundsFailed.Load(),
		IdleTicks:         m.idleTicks.Load(),
		BidsAccepted:      m.bidsAccepted.Load(),
		BidsRejected:      m.bidsRejected.Load(),
		WalSnapshots:      m.snapshots.Load(),
		WalSnapshotErrors: m.snapshotErrs.Load(),
		WrongPartition:    m.wrongPartition.Load(),
	}
	s.RoundsPerSec = float64(s.RoundsTotal) / elapsed
	s.BidsPerSec = float64(s.BidsAccepted) / elapsed
	s.RoundLatencyP50Ms, s.RoundLatencyP99Ms = m.latencyPercentiles()
	return s
}

// latencyHistogram reads the write-time histogram in the cumulative form
// the Prometheus exposition wants: cum[i] counts rounds <= the i-th
// bucket bound, count is the total observations (the +Inf bucket) and
// sumSec the latency sum in seconds. Buckets are loaded before the total,
// and observeRound increments the total first — so count can only be >=
// the loaded cumulative tail and the scraped histogram stays monotone.
func (m *Metrics) latencyHistogram() (cum [len(latencyBuckets)]int64, count int64, sumSec float64) {
	run := int64(0)
	for i := range m.latHist {
		run += m.latHist[i].Load()
		cum[i] = run
	}
	return cum, m.roundsTotal.Load(), float64(m.latSumNs.Load()) / 1e9
}

// latencyPercentiles returns (p50, p99) in milliseconds over the ring. The
// copy takes no lock at all: each slot is an atomic load, so the scrape
// can be arbitrarily slow without ever blocking observeRound. A slot whose
// writer claimed it (latCount incremented) but has not stored yet reads as
// the zero bit pattern; real latencies are strictly positive, so zero
// slots are unambiguously unwritten and skipped rather than polluting the
// percentiles with phantom 0ms samples during the first window fill.
func (m *Metrics) latencyPercentiles() (p50, p99 float64) {
	claimed := m.latCount.Load()
	if claimed > latWindow {
		claimed = latWindow
	}
	if claimed == 0 {
		return 0, 0
	}
	buf := make([]float64, 0, claimed)
	for i := int64(0); i < claimed; i++ {
		if bits := m.latRing[i].Load(); bits != 0 {
			buf = append(buf, math.Float64frombits(bits))
		}
	}
	n := int64(len(buf))
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	pick := func(q float64) float64 {
		// Nearest-rank: ⌈q·n⌉−1. Flooring q·(n−1) instead under-reports
		// badly at small n — with 2 samples the "p99" would be the minimum.
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= int(n) {
			i = int(n) - 1
		}
		return buf[i] * 1e3
	}
	return pick(0.50), pick(0.99)
}

package exchange

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"fmore/internal/auction"
)

// churnSpec builds a minimal manual-close job spec for the COW-table tests.
func churnSpec(t *testing.T, id string, seed int64) JobSpec {
	t.Helper()
	return JobSpec{
		ID:      id,
		Auction: auction.Config{Rule: testRule(t, int(seed)), K: 2},
		Seed:    seed,
	}
}

// TestJobTableChurnUnderLoad is the COW job table's contract under -race:
// 64 submitters resolve jobs lock-free while one goroutine churns a job
// slot through create→remove cycles and two more scrape metrics and watch
// the published table directly. The race detector proves no torn reads;
// the inline assertions pin the semantic invariants — jobs_active never
// counts a half-published job (it is bounded by the jobs that exist at any
// instant), and the table's epoch only ever moves forward.
func TestJobTableChurnUnderLoad(t *testing.T) {
	const (
		submitters = 64
		churns     = 100
	)
	ex := New(Options{})
	defer ex.Close()

	// One stable job so submitters always have a live target; the "churn"
	// slot flickers in and out of the published table the whole time.
	if _, err := ex.CreateJob(churnSpec(t, "stable", 1)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Submitters hammer both slots. Errors are expected and uninteresting
	// here (unknown job while the churn slot is out, duplicate node within
	// a round, job closed mid-removal) — the test's subject is that the
	// lock-free resolve never observes a torn table, which the race
	// detector and the invariant goroutines below judge.
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := "stable"
			if i%2 == 0 {
				id = "churn"
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				bid := auction.Bid{NodeID: i, Qualities: []float64{0.4, 0.6}, Payment: 0.1}
				ex.SubmitBid(id, bid) //nolint:errcheck // expected churn errors
				if n%8 == 0 {
					ex.CloseRound(id) //nolint:errcheck // below-quorum/unknown are fine
				}
			}
		}(i)
	}

	// Scraper: the snapshot and the Prometheus exposition both walk the
	// published table. With exactly this test mutating the job set,
	// jobs_active must always be 1 (stable) or 2 (stable + churn) — a 0 or
	// 3 would mean a scrape saw a half-published or double-published table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := ex.Metrics().JobsActive; n < 1 || n > 2 {
				t.Errorf("jobs_active = %d, want 1 or 2", n)
				return
			}
			buf.Reset()
			if err := writePrometheus(&buf, ex); err != nil {
				t.Errorf("scrape during churn: %v", err)
				return
			}
		}
	}()

	// Epoch watcher: each publish bumps the generation by exactly one
	// under ex.mu, so a reader polling the table must see a non-decreasing
	// epoch and a consistent (epoch, jobs) pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tab := ex.table.Load()
			if tab.epoch < last {
				t.Errorf("table epoch went backwards: %d after %d", tab.epoch, last)
				return
			}
			last = tab.epoch
			if len(tab.ids) != len(tab.jobs) {
				t.Errorf("published table torn: %d ids vs %d jobs", len(tab.ids), len(tab.jobs))
				return
			}
		}
	}()

	for k := 0; k < churns; k++ {
		if _, err := ex.CreateJob(churnSpec(t, "churn", int64(k))); err != nil {
			t.Fatal(err)
		}
		if err := ex.RemoveJob("churn"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The stable job survived the churn storm intact: a fresh round still
	// runs end to end.
	if _, ok := ex.Job("stable"); !ok {
		t.Fatal("stable job lost during churn")
	}
	for _, b := range testBids(1, 99, 4) {
		if _, err := ex.SubmitBid("stable", b); err != nil {
			t.Fatalf("post-churn submit: %v", err)
		}
	}
	if _, err := ex.CloseRound("stable"); err != nil {
		t.Fatalf("post-churn close: %v", err)
	}
}

// TestJobTablePublishOrdering pins the release-barrier contract: a job
// resolved lock-free from the published table is always fully constructed
// (spec applied, auctioneer live), because CreateJob publishes only after
// every field write. A resolver polling for each new ID must never observe
// a partially initialized job.
func TestJobTablePublishOrdering(t *testing.T) {
	const jobs = 64
	ex := New(Options{})
	defer ex.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < jobs; k++ {
			id := fmt.Sprintf("pub-%d", k)
			for {
				j, ok := ex.Job(id)
				if !ok {
					continue
				}
				// Visible implies constructed: the spec round-trips and the
				// job answers stats without a lock on the exchange.
				if j.ID() != id {
					t.Errorf("job %s resolved with ID %s", id, j.ID())
				}
				if j.Round() < 1 {
					t.Errorf("job %s visible with round %d", id, j.Round())
				}
				break
			}
		}
	}()
	for k := 0; k < jobs; k++ {
		if _, err := ex.CreateJob(churnSpec(t, fmt.Sprintf("pub-%d", k), int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

package exchange

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"fmore/internal/auction"
)

// cloneWALDir simulates a kill -9: the wal file is copied byte-for-byte
// into a fresh data dir while the source exchange is still running, exactly
// the on-disk state a crashed process would leave behind (after its last
// fsync). The copy is then reopened as the "restarted" exchange.
func cloneWALDir(t *testing.T, srcDir string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(srcDir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// nodeState is the registry view the recovery tests compare.
type nodeState struct {
	meta        string
	bids        int64
	blacklisted bool
}

func registrySnapshot(ex *Exchange, nodes int) []nodeState {
	out := make([]nodeState, nodes)
	for id := 0; id < nodes; id++ {
		if info, ok := ex.Registry().Lookup(id); ok {
			out[id] = nodeState{meta: info.Meta(), bids: info.Bids(), blacklisted: info.Blacklisted()}
		}
	}
	return out
}

// TestCrashRecoveryIdenticalHistoryAndContinuation is the acceptance test
// of the outcome log: kill an exchange after 3 rounds of an 8-job workload
// (second-price and ψ-FMore jobs included, so the per-round rng draw count
// varies), reopen the data dir, and require (a) identical retained history,
// (b) identical registry and blacklist state, (c) contiguous round
// numbering, and (d) bit-for-bit identical outcomes for the rounds run
// after recovery — the reconstructed rng must sit exactly where the
// uncrashed process's rng sits.
func TestCrashRecoveryIdenticalHistoryAndContinuation(t *testing.T) {
	const (
		jobs      = 8
		bidders   = 32
		preRounds = 3 // rounds before the crash
		postRound = 5 // rounds 4..5 run on both sides after the fork
	)
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	jobIDs := make([]string, jobs)
	for j := 0; j < jobs; j++ {
		spec := JobSpec{
			ID:      fmt.Sprintf("fl-task-%d", j),
			Auction: auction.Config{Rule: testRule(t, j), K: 2 + j%3},
			Seed:    int64(1000 + j),
		}
		if j%2 == 1 {
			spec.Auction.Payment = auction.SecondPrice
		}
		if j == 7 {
			spec.Auction.Psi = 0.7 // variable admission draws per round
		}
		job, err := ex.CreateJob(spec)
		if err != nil {
			t.Fatal(err)
		}
		jobIDs[j] = job.ID()
	}
	ex.RegisterNode(5, "edge-05")

	runRound := func(target *Exchange, round, nBidders int) map[string]RoundOutcome {
		t.Helper()
		outs := make(map[string]RoundOutcome, jobs)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				var bw sync.WaitGroup
				for _, b := range testBids(j, round, nBidders) {
					bw.Add(1)
					go func(b auction.Bid) {
						defer bw.Done()
						if _, err := target.SubmitBid(jobIDs[j], b); err != nil {
							t.Errorf("job %d round %d: submit: %v", j, round, err)
						}
					}(b)
				}
				bw.Wait()
				ro, err := target.CloseRound(jobIDs[j])
				if err != nil {
					t.Errorf("job %d round %d: close: %v", j, round, err)
					return
				}
				mu.Lock()
				outs[jobIDs[j]] = ro
				mu.Unlock()
			}(j)
		}
		wg.Wait()
		return outs
	}

	history := make([]map[string]RoundOutcome, 0, preRounds)
	for round := 1; round <= preRounds; round++ {
		history = append(history, runRound(ex, round, bidders))
	}
	if !ex.BlacklistNode(31) {
		t.Fatal("blacklist of node 31 failed")
	}
	if err := ex.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}
	crashReg := registrySnapshot(ex, bidders)
	crashDir := cloneWALDir(t, dir) // <-- the kill -9 point

	// The uncrashed exchange keeps going (node 31 is banned, so rounds 4..5
	// run with 31 bidders).
	reference := make([]map[string]RoundOutcome, 0, postRound-preRounds)
	for round := preRounds + 1; round <= postRound; round++ {
		reference = append(reference, runRound(ex, round, bidders-1))
	}
	if t.Failed() {
		t.FailNow()
	}

	ex2, err := Open(crashDir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ex2.Close()

	// (a) identical retained history.
	if got, want := ex2.JobIDs(), ex.JobIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("job list after reopen = %v, want %v", got, want)
	}
	for round := 1; round <= preRounds; round++ {
		for _, id := range jobIDs {
			job, ok := ex2.Job(id)
			if !ok {
				t.Fatalf("job %s missing after reopen", id)
			}
			got, err := job.Outcome(round)
			if err != nil {
				t.Fatalf("job %s round %d after reopen: %v", id, round, err)
			}
			if want := history[round-1][id]; !reflect.DeepEqual(got, want) {
				t.Errorf("job %s round %d: replayed outcome diverges from live outcome", id, round)
			}
		}
	}

	// (b) identical registry and blacklist state as of the crash.
	if got := registrySnapshot(ex2, bidders); !reflect.DeepEqual(got, crashReg) {
		t.Errorf("registry after reopen = %+v,\nwant %+v", got, crashReg)
	}
	if _, err := ex2.SubmitBid(jobIDs[0], auction.Bid{NodeID: 31, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.Is(err, ErrBlacklisted) {
		t.Errorf("bid from banned node after reopen: err = %v, want ErrBlacklisted", err)
	}

	// (c) contiguous round numbering.
	for _, id := range jobIDs {
		job, _ := ex2.Job(id)
		if r := job.Round(); r != preRounds+1 {
			t.Errorf("job %s collecting round = %d after reopen, want %d", id, r, preRounds+1)
		}
	}

	// (d) post-recovery rounds match the uncrashed process bit-for-bit.
	for round := preRounds + 1; round <= postRound; round++ {
		outs := runRound(ex2, round, bidders-1)
		for _, id := range jobIDs {
			got, want := outs[id], reference[round-preRounds-1][id]
			if got.Round != want.Round || got.NumBids != want.NumBids {
				t.Errorf("job %s round %d: labeled (%d, %d bids), want (%d, %d)",
					id, round, got.Round, got.NumBids, want.Round, want.NumBids)
			}
			if !reflect.DeepEqual(got.Outcome, want.Outcome) {
				t.Errorf("job %s round %d: post-recovery outcome diverges from uncrashed run", id, round)
			}
		}
	}
}

// TestRecoveryTruncatesTornTail covers the three corruption shapes a crash
// mid-append can leave: a torn header, a frame whose payload is cut short,
// and a bit-flipped payload failing its CRC. In every case the log must
// reopen with all complete records intact and the file physically truncated
// back to the last valid frame.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	buildLog := func(t *testing.T) (dir string, cleanSize int64) {
		t.Helper()
		dir = t.TempDir()
		ex, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		job, err := ex.CreateJob(JobSpec{ID: "tail", Auction: auction.Config{Rule: testRule(t, 0), K: 2}, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for round := 1; round <= 2; round++ {
			for _, b := range testBids(0, round, 8) {
				if _, err := ex.SubmitBid(job.ID(), b); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := ex.CloseRound(job.ID()); err != nil {
				t.Fatal(err)
			}
		}
		ex.Close()
		st, err := os.Stat(filepath.Join(dir, walFileName))
		if err != nil {
			t.Fatal(err)
		}
		return dir, st.Size()
	}

	corruptions := map[string]func(t *testing.T, path string, size int64){
		"torn header": func(t *testing.T, path string, _ int64) {
			appendBytes(t, path, []byte{0x20, 0, 0}) // 3 of 8 header bytes
		},
		"torn payload": func(t *testing.T, path string, _ int64) {
			appendBytes(t, path, []byte{0x40, 0, 0, 0, 1, 2, 3, 4, 'p', 'a', 'r', 't'}) // promises 64 bytes, has 4
		},
		"crc mismatch": func(t *testing.T, path string, _ int64) {
			appendBytes(t, path, []byte{4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, '{', '}', '{', '}'})
		},
		"cut mid-record": func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-5); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir, cleanSize := buildLog(t)
			path := filepath.Join(dir, walFileName)
			corrupt(t, path, cleanSize)

			ex, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen over torn tail: %v", err)
			}
			defer ex.Close()
			job, ok := ex.Job("tail")
			if !ok {
				t.Fatal("job lost with the torn tail")
			}
			wantRounds := 2
			if name == "cut mid-record" {
				wantRounds = 1 // the cut destroyed round 2's record
			}
			if _, err := job.Outcome(wantRounds); err != nil {
				t.Errorf("round %d: %v, want retained", wantRounds, err)
			}
			if r := job.Round(); r != wantRounds+1 {
				t.Errorf("collecting round = %d, want %d", r, wantRounds+1)
			}
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() > cleanSize {
				t.Errorf("torn tail not truncated: %d bytes, want <= %d", st.Size(), cleanSize)
			}
		})
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPOutcomesByteIdenticalAfterRestart drives the service through its
// JSON front end, restarts it from a crash copy, and requires the retained
// outcome responses to be byte-identical — the externally visible form of
// the recovery guarantee.
func TestHTTPOutcomesByteIdenticalAfterRestart(t *testing.T) {
	const rounds = 3
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()

	resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id":            "wire",
		"rule":          map[string]any{"kind": "additive", "alpha": []float64{0.55, 0.45}},
		"k":             3,
		"seed":          41,
		"payment":       "second-price",
		"keep_outcomes": 16,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	for round := 1; round <= rounds; round++ {
		for _, b := range testBids(3, round, 12) {
			if resp, body := postJSON(t, srv.URL+"/v1/jobs/wire/bids", map[string]any{
				"node_id": b.NodeID, "qualities": b.Qualities, "payment": b.Payment,
			}); resp.StatusCode != http.StatusAccepted {
				t.Fatalf("round %d bid: %d %v", round, resp.StatusCode, body)
			}
		}
		if resp, body := postJSON(t, srv.URL+"/v1/jobs/wire/close", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d close: %d %v", round, resp.StatusCode, body)
		}
	}

	rawOutcome := func(base string, round int) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/wire/outcome?round=%d", base, round))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //nolint:errcheck // test teardown
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d", round, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	before := make([][]byte, rounds)
	for round := 1; round <= rounds; round++ {
		before[round-1] = rawOutcome(srv.URL, round)
	}

	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	ex2, err := Open(cloneWALDir(t, dir), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	srv2 := httptest.NewServer(NewHandler(ex2))
	defer srv2.Close()

	for round := 1; round <= rounds; round++ {
		if got := rawOutcome(srv2.URL, round); string(got) != string(before[round-1]) {
			t.Errorf("round %d response diverged after restart:\n got: %s\nwant: %s", round, got, before[round-1])
		}
	}
	// The job view (spec fields included) survives too.
	_, view := getJSON(t, srv2.URL+"/v1/jobs/wire")
	if view["keep_outcomes"].(float64) != 16 || view["round"].(float64) != rounds+1 {
		t.Errorf("job view after restart: %v", view)
	}
}

// TestRecoveryRespectsKeepOutcomes: replay must rebuild the bounded history
// window, not the whole log — old rounds stay evicted and numbering
// continues past them.
func TestRecoveryRespectsKeepOutcomes(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job, err := ex.CreateJob(JobSpec{
		ID:           "bounded",
		Auction:      auction.Config{Rule: testRule(t, 2), K: 1},
		KeepOutcomes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		for _, b := range testBids(2, round, 4) {
			if _, err := ex.SubmitBid(job.ID(), b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.CloseRound(job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	ex.Close()

	ex2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	job2, ok := ex2.Job("bounded")
	if !ok {
		t.Fatal("job missing after reopen")
	}
	if _, err := job2.Outcome(3); !errors.Is(err, ErrOutcomeEvicted) {
		t.Errorf("round 3 after reopen: err = %v, want ErrOutcomeEvicted", err)
	}
	for round := 4; round <= 5; round++ {
		if ro, err := job2.Outcome(round); err != nil || ro.Round != round {
			t.Errorf("round %d after reopen: (%v, %v), want retained", round, ro.Round, err)
		}
	}
	if r := job2.Round(); r != 6 {
		t.Errorf("collecting round after reopen = %d, want 6", r)
	}
}

// TestRecoveryRestoresClosedAndRemovedJobs: a MaxRounds-finished job stays
// closed (history served, bids refused) and a removed job stays gone.
func TestRecoveryRestoresClosedAndRemovedJobs(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	finished, err := ex.CreateJob(JobSpec{
		ID:        "finished",
		Auction:   auction.Config{Rule: testRule(t, 1), K: 1},
		MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(JobSpec{ID: "doomed", Auction: auction.Config{Rule: testRule(t, 1), K: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, b := range testBids(1, 1, 4) {
		if _, err := ex.SubmitBid(finished.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound(finished.ID()); err != nil {
		t.Fatal(err)
	}
	if err := ex.RemoveJob("doomed"); err != nil {
		t.Fatal(err)
	}
	ex.Close()

	ex2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	if _, ok := ex2.Job("doomed"); ok {
		t.Error("removed job resurrected by replay")
	}
	job, ok := ex2.Job("finished")
	if !ok {
		t.Fatal("finished job missing after reopen")
	}
	if got := job.State(); got != "closed" {
		t.Errorf("finished job state after reopen = %q, want closed", got)
	}
	if _, err := job.Outcome(1); err != nil {
		t.Errorf("finished job history after reopen: %v", err)
	}
	if _, err := ex2.SubmitBid("finished", auction.Bid{NodeID: 1, Qualities: []float64{0.5, 0.5}, Payment: 0.1}); !errors.Is(err, ErrJobClosed) {
		t.Errorf("bid on finished job after reopen: err = %v, want ErrJobClosed", err)
	}
}

// TestRecoveryResumesTimerJobs: a timer-mode job's bid window goroutine
// restarts after reopen and keeps the round numbering going.
func TestRecoveryResumesTimerJobs(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job, err := ex.CreateJob(JobSpec{
		ID:        "ticking",
		Auction:   auction.Config{Rule: testRule(t, 0), K: 2},
		Seed:      3,
		BidWindow: 15 * time.Millisecond,
		MinBids:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBids(0, 1, 4) {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := job.WaitOutcome(ctx, 1); err != nil {
		t.Fatalf("round 1 never closed: %v", err)
	}
	ex.Close()

	ex2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	job2, ok := ex2.Job("ticking")
	if !ok {
		t.Fatal("timer job missing after reopen")
	}
	for _, b := range testBids(0, 2, 4) {
		if _, err := ex2.SubmitBid(job2.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := job2.WaitOutcome(ctx, 2); err != nil {
		t.Fatalf("window did not resume after reopen: %v", err)
	}
}

// TestRecoveryAfterRemoveAndRecreateSameID: the log must replay a removed
// job's lifecycle and its successor's in order — created → rounds →
// removed → created → rounds — leaving only the successor, with its own
// spec and history.
func TestRecoveryAfterRemoveAndRecreateSameID(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runOne := func(jobIdx, round int) {
		t.Helper()
		for _, b := range testBids(jobIdx, round, 4) {
			if _, err := ex.SubmitBid("reused", b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := ex.CloseRound("reused"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CreateJob(JobSpec{ID: "reused", Auction: auction.Config{Rule: testRule(t, 0), K: 1}, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	runOne(0, 1)
	if err := ex.RemoveJob("reused"); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(JobSpec{ID: "reused", Auction: auction.Config{Rule: testRule(t, 5), K: 2}, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	runOne(5, 1)
	runOne(5, 2)
	ex.Close()

	ex2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	job, ok := ex2.Job("reused")
	if !ok {
		t.Fatal("recreated job missing after reopen")
	}
	if spec := job.Spec(); spec.Auction.K != 2 || spec.Seed != 2 {
		t.Errorf("replayed spec (K=%d, seed=%d), want the successor's (K=2, seed=2)", spec.Auction.K, spec.Seed)
	}
	if r := job.Round(); r != 3 {
		t.Errorf("collecting round = %d, want 3 (the successor's history, not the predecessor's)", r)
	}
	if ro, err := job.Outcome(2); err != nil || len(ro.Outcome.Winners) != 2 {
		t.Errorf("successor round 2: (%d winners, %v), want 2 winners", len(ro.Outcome.Winners), err)
	}
}

// cloneDataDir simulates a kill -9 against the full data dir: every file
// (segments, snapshot, lock file) is copied byte-for-byte into a fresh dir
// while the source exchange is still running.
func cloneDataDir(t *testing.T, srcDir string) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// compactWorkload drives a deterministic mixed workload (second-price and
// ψ jobs included) for the compaction tests and returns the job IDs.
func compactWorkload(t *testing.T, ex *Exchange, jobs, bidders, rounds int, create bool) []string {
	t.Helper()
	ids := make([]string, jobs)
	for j := 0; j < jobs; j++ {
		ids[j] = fmt.Sprintf("snap-job-%d", j)
		if !create {
			continue
		}
		spec := JobSpec{
			ID:           ids[j],
			Auction:      auction.Config{Rule: testRule(t, j), K: 2 + j%3},
			Seed:         int64(77 + j),
			KeepOutcomes: 4, // small window: eviction + snapshot interplay covered
		}
		if j%2 == 1 {
			spec.Auction.Payment = auction.SecondPrice
		}
		if j == jobs-1 {
			spec.Auction.Psi = 0.7
		}
		if _, err := ex.CreateJob(spec); err != nil {
			t.Fatal(err)
		}
	}
	for round := 1; round <= rounds; round++ {
		for j := 0; j < jobs; j++ {
			job, ok := ex.Job(ids[j])
			if !ok {
				t.Fatalf("job %s missing", ids[j])
			}
			base := job.Round()
			for _, b := range testBids(j, base, bidders) {
				if _, err := ex.SubmitBid(ids[j], b); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := ex.CloseRound(ids[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ids
}

// outcomesPageBytes fetches the raw GET /v1/jobs/{id}/outcomes page — the
// externally visible bytes the recovery guarantee is stated in.
func outcomesPageBytes(t *testing.T, ex *Exchange, jobID string) []byte {
	t.Helper()
	srv := httptest.NewServer(NewHandler(ex))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + jobID + "/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test teardown
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("outcomes page for %s: status %d", jobID, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCompactionSnapshotReplayIdentical is the acceptance test of WAL
// compaction: run a mixed workload, compact (snapshot + rotation + old
// segment deletion), run more rounds on the tail, kill, reopen — the
// reopened exchange must serve byte-identical outcome pages and continue
// rounds bit-for-bit with the uncrashed process (rng fast-forward across
// the snapshot included).
func TestCompactionSnapshotReplayIdentical(t *testing.T) {
	const (
		jobs, bidders = 4, 16
		preRounds     = 6 // > KeepOutcomes: eviction happened before the snapshot
		tailRounds    = 2 // rounds after compaction, replayed from the tail segment
		postRounds    = 2 // rounds run on both sides after the crash fork
	)
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ex.RegisterNode(3, "edge-03")
	ids := compactWorkload(t, ex, jobs, bidders, preRounds, true)
	if !ex.BlacklistNode(bidders - 1) {
		t.Fatal("blacklist failed")
	}

	if err := ex.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("segment 1 survived compaction (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Errorf("snapshot missing after compaction: %v", err)
	}

	compactWorkload(t, ex, jobs, bidders-1, tailRounds, false) // banned node sits out
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	crashReg := registrySnapshot(ex, bidders)
	pages := make(map[string][]byte, jobs)
	for _, id := range ids {
		pages[id] = outcomesPageBytes(t, ex, id)
	}
	crashDir := cloneDataDir(t, dir) // <-- kill -9

	// The uncrashed exchange keeps going.
	compactWorkload(t, ex, jobs, bidders-1, postRounds, false)
	reference := make(map[string][]RoundOutcome, jobs)
	for _, id := range ids {
		job, _ := ex.Job(id)
		ros, _ := job.OutcomesAfter(0, 0)
		reference[id] = ros
	}

	ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer ex2.Close()
	for _, id := range ids {
		if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
			t.Errorf("job %s: outcomes page diverged after snapshot replay:\n got: %s\nwant: %s", id, got, pages[id])
		}
	}
	if got := registrySnapshot(ex2, bidders); !reflect.DeepEqual(got, crashReg) {
		t.Errorf("registry after snapshot replay = %+v,\nwant %+v", got, crashReg)
	}
	compactWorkload(t, ex2, jobs, bidders-1, postRounds, false)
	for _, id := range ids {
		job, _ := ex2.Job(id)
		got, _ := job.OutcomesAfter(0, 0)
		want := reference[id]
		if len(got) != len(want) {
			t.Errorf("job %s: %d retained rounds after recovery, want %d", id, len(got), len(want))
			continue
		}
		for i := range got {
			// Latency is wall-clock on the rounds each side ran live;
			// everything deterministic must match bit-for-bit.
			if got[i].Round != want[i].Round || got[i].NumBids != want[i].NumBids ||
				!reflect.DeepEqual(got[i].Outcome, want[i].Outcome) ||
				!reflect.DeepEqual(got[i].Err, want[i].Err) {
				t.Errorf("job %s round %d: post-recovery outcome diverges from the uncrashed run", id, want[i].Round)
			}
		}
	}
}

// TestCompactionCrashMatrix kills the process at every dangerous point of
// the compaction protocol — after rotation (snapshot not yet written),
// mid-snapshot-write (torn temp file), after the snapshot commit (old
// segments not yet deleted), and mid-deletion — and requires every reopened
// copy to serve the identical outcome pages.
func TestCompactionCrashMatrix(t *testing.T) {
	const jobs, bidders, rounds = 3, 12, 5
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}

	crashDirs := map[string]string{}
	testHookAfterRotate = func() {
		d := cloneDataDir(t, dir)
		// Also model a crash mid-snapshot-write: rotation done, temp file
		// torn on disk.
		torn := cloneDataDir(t, dir)
		if err := os.WriteFile(filepath.Join(torn, snapTmpName), []byte{0x10, 0, 0}, 0o644); err != nil {
			t.Error(err)
		}
		crashDirs["after-rotate"] = d
		crashDirs["torn-snapshot-tmp"] = torn
	}
	testHookAfterSnapshot = func() {
		crashDirs["after-snapshot"] = cloneDataDir(t, dir)
	}
	defer func() {
		testHookAfterRotate = nil
		testHookAfterSnapshot = nil
	}()

	pages := make(map[string][]byte, jobs)
	for _, id := range ids {
		pages[id] = outcomesPageBytes(t, ex, id)
	}
	if err := ex.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if len(crashDirs) != 3 {
		t.Fatalf("crash hooks fired %d times, want 3", len(crashDirs))
	}
	// Mid-deletion: the after-snapshot state minus one (but not all) old
	// segments. With a single old segment the closest state is "deletion
	// done", which the post-compaction dir itself covers below.
	crashDirs["after-deletion"] = cloneDataDir(t, dir)

	for name, crashDir := range crashDirs {
		t.Run(name, func(t *testing.T) {
			ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer ex2.Close()
			for _, id := range ids {
				if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
					t.Errorf("job %s: outcomes diverged after %s crash", id, name)
				}
			}
			// The copy must keep working: one more round per job.
			compactWorkload(t, ex2, jobs, bidders, 1, false)
		})
	}

	// One more matrix point: kill -9 after records landed inside the
	// rotated segment's preallocated region. The after-rotate entry covers
	// a successor that is pure reservation; this one has a logical record
	// prefix followed by zero-fill, which replay must split at exactly the
	// last record — truncating the reservation, never mistaking it for a
	// torn write.
	compactWorkload(t, ex, jobs, bidders, 1, false)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		pages[id] = outcomesPageBytes(t, ex, id)
	}
	t.Run("preallocated-tail-partial", func(t *testing.T) {
		crashDir := cloneDataDir(t, dir)
		ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer ex2.Close()
		for _, id := range ids {
			if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
				t.Errorf("job %s: outcomes diverged after preallocated-tail crash", id)
			}
		}
		compactWorkload(t, ex2, jobs, bidders, 1, false)
	})
}

// TestRecoveryTornTailMidRotation models a power loss in the rotation
// window: the successor segment was created (empty, durable) before the
// writer's barrier fsynced the retiring one, so the retiring segment has a
// torn tail while no longer being the last file. Open must treat the torn
// segment as the effective tail — truncate it, delete the orphaned empty
// successor — and keep serving. A torn non-last segment followed by a
// WRITTEN successor is impossible by the barrier ordering and must stay a
// hard error.
func TestRecoveryTornTailMidRotation(t *testing.T) {
	build := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		ex, err := Open(dir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		compactWorkload(t, ex, 1, 8, 2, true)
		ex.Close()
		// Torn tail on segment 1 + the empty successor the crash left.
		appendBytes(t, filepath.Join(dir, walFileName), []byte{0x30, 0, 0, 0, 1, 2})
		if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("empty successor recovers", func(t *testing.T) {
		dir := build(t)
		ex, err := Open(dir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("reopen over mid-rotation crash: %v", err)
		}
		defer ex.Close()
		job, ok := ex.Job("snap-job-0")
		if !ok {
			t.Fatal("job lost")
		}
		if _, err := job.Outcome(2); err != nil {
			t.Errorf("round 2: %v, want retained", err)
		}
		if _, err := os.Stat(filepath.Join(dir, segName(2))); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphaned empty successor not deleted (err=%v)", err)
		}
		compactWorkload(t, ex, 1, 8, 1, false) // keeps closing rounds
	})

	t.Run("zero-filled successor recovers", func(t *testing.T) {
		dir := build(t)
		// With preallocation the successor the crash leaves behind is not
		// empty but reserved: a run of zeroes fallocate/truncate put there
		// before any record was written. Zero-fill carries no records, so
		// recovery must treat it exactly like the empty successor — not as
		// a written segment contradicting the rotation barrier.
		if err := os.WriteFile(filepath.Join(dir, segName(2)), make([]byte, 4096), 0o644); err != nil {
			t.Fatal(err)
		}
		ex, err := Open(dir, Options{SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("reopen over zero-filled successor: %v", err)
		}
		defer ex.Close()
		if _, err := os.Stat(filepath.Join(dir, segName(2))); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphaned zero-filled successor not deleted (err=%v)", err)
		}
		compactWorkload(t, ex, 1, 8, 1, false)
	})

	t.Run("written successor stays fatal", func(t *testing.T) {
		dir := build(t)
		// A successor with real bytes contradicts the barrier ordering.
		if err := os.WriteFile(filepath.Join(dir, segName(2)), []byte{1, 2, 3}, 0o644); err != nil {
			t.Fatal(err)
		}
		if ex, err := Open(dir, Options{SnapshotBytes: -1}); err == nil {
			ex.Close()
			t.Fatal("Open accepted a torn mid-chain segment with a written successor")
		}
	})
}

// TestRecoveryPreallocatedTailZeroFill is the kill -9 inside a
// preallocated-but-unwritten tail region: the active segment's physical
// size is the fallocate reservation, records occupy a logical prefix, and
// everything past them is zero-fill. Replay must read the records, treat
// the zero tail as clean end-of-log (not a torn record), truncate the file
// back to its logical size, and serve byte-identical outcome pages.
func TestRecoveryPreallocatedTailZeroFill(t *testing.T) {
	const jobs, bidders, rounds = 2, 8, 3
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, rounds, true)
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}

	logical := ex.Metrics().WalBytes
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= logical {
		t.Fatalf("tail not preallocated: physical %d <= logical %d bytes", fi.Size(), logical)
	}

	pages := make(map[string][]byte, jobs)
	for _, id := range ids {
		pages[id] = outcomesPageBytes(t, ex, id)
	}
	crashDir := cloneDataDir(t, dir) // <-- kill -9: zero-fill and all

	ex2, err := Open(crashDir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("reopen over preallocated tail: %v", err)
	}
	defer ex2.Close()
	for _, id := range ids {
		if got := outcomesPageBytes(t, ex2, id); string(got) != string(pages[id]) {
			t.Errorf("job %s: outcomes diverged across preallocated-tail crash", id)
		}
	}
	// Recovery trims the reservation: a crash-reopened tail runs at its
	// logical size (no re-preallocation) so recovered file sizes stay
	// honest and a later rotation re-reserves.
	fi2, err := os.Stat(filepath.Join(crashDir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != logical {
		t.Errorf("recovered tail = %d bytes, want truncated to logical %d", fi2.Size(), logical)
	}
	compactWorkload(t, ex2, jobs, bidders, 1, false) // keeps serving
}

// TestRemoveJobRacingCloseReplays: a round close in flight when RemoveJob
// starts must land its round record before the removal record (the closeMu
// barrier), or replay would meet an outcome for a job the log already
// deleted. Racing the two repeatedly and replaying the result proves the
// ordering holds on disk, not just in memory.
func TestRemoveJobRacingCloseReplays(t *testing.T) {
	const iters = 32
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < iters; k++ {
		id := fmt.Sprintf("race-%d", k)
		if _, err := ex.CreateJob(JobSpec{
			ID:      id,
			Auction: auction.Config{Rule: testRule(t, k), K: 2},
			Seed:    int64(k),
		}); err != nil {
			t.Fatal(err)
		}
		for _, b := range testBids(k, 1, 8) {
			if _, err := ex.SubmitBid(id, b); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			// May succeed (record precedes removal) or lose the race to
			// j.close and fail — both are valid histories; replay judges.
			ex.CloseRound(id) //nolint:errcheck
		}()
		if err := ex.RemoveJob(id); err != nil {
			t.Fatal(err)
		}
		<-done
	}
	ex.Close()

	ex2, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("replay after close/remove races: %v", err)
	}
	defer ex2.Close()
	if ids := ex2.JobIDs(); len(ids) != 0 {
		t.Errorf("replay revived %d removed jobs: %v", len(ids), ids)
	}
}

// TestCompactionPendingBidCounters: a bid buffered (but not yet closed) at
// the snapshot cut must not be double-counted — its round record lands in
// the tail, which replay re-counts, so the snapshot captures per-node
// counters net of pending. The recovered registry must match the uncrashed
// process exactly.
func TestCompactionPendingBidCounters(t *testing.T) {
	const bidders = 6
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, 1, bidders, 2, true) // two closed rounds
	// Round 3 collects but does NOT close before the snapshot.
	for _, b := range testBids(0, 3, bidders) {
		if _, err := ex.SubmitBid(ids[0], b); err != nil {
			t.Fatal(err)
		}
	}
	if err := ex.Compact(); err != nil {
		t.Fatal(err)
	}
	// The pending round closes after the cut: its record is in the tail.
	if _, err := ex.CloseRound(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	want := registrySnapshot(ex, bidders)
	for id := 0; id < bidders; id++ {
		if want[id].bids != 3 {
			t.Fatalf("live node %d counter = %d, want 3", id, want[id].bids)
		}
	}
	ex2, err := Open(cloneDataDir(t, dir), Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	if got := registrySnapshot(ex2, bidders); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered counters %+v,\nwant %+v (pending bid double-counted across the cut?)", got, want)
	}
}

// TestSizeTriggeredCompaction: with a tiny SnapshotBytes threshold the
// exchange must compact on its own — snapshot written, log rotated, old
// segments deleted — while rounds keep flowing, and a reopen of the
// compacted dir must serve the same retained outcomes.
func TestSizeTriggeredCompaction(t *testing.T) {
	const jobs, bidders = 2, 8
	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	ids := compactWorkload(t, ex, jobs, bidders, 3, true)
	deadline := time.Now().Add(10 * time.Second)
	for ex.Metrics().WalSnapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatal("size trigger never compacted the log")
		}
		compactWorkload(t, ex, jobs, bidders, 1, false)
	}
	if n := ex.Metrics().WalSnapshotErrors; n != 0 {
		t.Fatalf("%d compaction errors", n)
	}
	// Quiesce, then compare across a clean reopen.
	var before map[string][]RoundOutcome
	waitIdle := func(target *Exchange) map[string][]RoundOutcome {
		out := make(map[string][]RoundOutcome, jobs)
		for _, id := range ids {
			job, _ := target.Job(id)
			ros, _ := job.OutcomesAfter(0, 0)
			out[id] = ros
		}
		return out
	}
	before = waitIdle(ex)
	ex.Close()
	ex2, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("reopen of auto-compacted dir: %v", err)
	}
	defer ex2.Close()
	if got := waitIdle(ex2); !reflect.DeepEqual(got, before) {
		t.Error("retained outcomes diverged across the auto-compacted reopen")
	}
}

// TestOpenRefusesSecondProcess: the wal carries an exclusive advisory lock;
// a second Open on a live data dir must fail fast instead of interleaving
// appends with the first.
func TestOpenRefusesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ex2, err := Open(dir, Options{}); err == nil {
		ex2.Close()
		t.Fatal("second Open on a live data dir succeeded; want a lock error")
	}
	// After the first exchange closes, the dir opens again.
	ex.Close()
	ex3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	ex3.Close()
}

// TestOpenFreshDirIsEmptyExchange: Open on a new directory behaves exactly
// like New, plus a durable log.
func TestOpenFreshDirIsEmptyExchange(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if ids := ex.JobIDs(); len(ids) != 0 {
		t.Errorf("fresh exchange hosts %v", ids)
	}
	if err := ex.Sync(); err != nil {
		t.Errorf("sync on fresh exchange: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName)); err != nil {
		t.Errorf("wal file not created: %v", err)
	}
}

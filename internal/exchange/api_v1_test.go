package exchange

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

// postJSONKeyed is postJSON with an Idempotency-Key header.
func postJSONKeyed(t *testing.T, url, key string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

// TestV1ErrorEnvelope pins the uniform error shape: every error response is
// {code, message} JSON with the right Content-Type.
func TestV1ErrorEnvelope(t *testing.T) {
	srv, _ := httpFixture(t)
	resp, err := http.Get(srv.URL + "/v1/jobs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	if body["code"] != "unknown_job" || body["message"] == "" {
		t.Errorf("envelope = %v, want code unknown_job with message", body)
	}
	// Unrouted paths answer the JSON envelope too, not the mux's text 404.
	resp, err = http.Get(srv.URL + "/v2/nothing")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("unrouted Content-Type = %q", ct)
	}
	if body := decodeBody(t, resp); body["code"] != "not_found" {
		t.Errorf("unrouted envelope = %v", body)
	}
	// A wrong method on a registered path is also the envelope (the mux's
	// own 405 is rewritten), with the Allow header preserved.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs status = %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("405 Content-Type = %q, want application/json", ct)
	}
	if resp.Header.Get("Allow") == "" {
		t.Error("405 lost the Allow header")
	}
	if body := decodeBody(t, resp); body["code"] != "method_not_allowed" {
		t.Errorf("405 envelope = %v", body)
	}
}

// TestCloseRoundStatusRegression pins the 404-vs-409 split on close: a job
// the exchange hosts but whose lifecycle conflicts (already closed, below
// quorum) answers 409 with a code naming the conflict; only a job the
// exchange does not host answers 404.
func TestCloseRoundStatusRegression(t *testing.T) {
	srv, ex := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "reg", "k": 1,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}

	// Below quorum (no bids): 409 below_quorum, round keeps collecting.
	resp, body := postJSON(t, srv.URL+"/v1/jobs/reg/close", nil)
	if resp.StatusCode != http.StatusConflict || body["code"] != "below_quorum" {
		t.Fatalf("empty close: status %d body %v, want 409 below_quorum", resp.StatusCode, body)
	}

	// Closed job: 409 job_closed — the job exists, the operation conflicts.
	job, _ := ex.Job("reg")
	job.Close()
	resp, body = postJSON(t, srv.URL+"/v1/jobs/reg/close", nil)
	if resp.StatusCode != http.StatusConflict || body["code"] != "job_closed" {
		t.Fatalf("closed-job close: status %d body %v, want 409 job_closed", resp.StatusCode, body)
	}

	// Unknown job: 404 unknown_job.
	resp, body = postJSON(t, srv.URL+"/v1/jobs/ghost/close", nil)
	if resp.StatusCode != http.StatusNotFound || body["code"] != "unknown_job" {
		t.Fatalf("unknown close: status %d body %v, want 404 unknown_job", resp.StatusCode, body)
	}
}

// TestLegacyPathsRemoved: the pre-v1 unversioned aliases were deleted after
// their deprecation window. Every former alias now answers 404 with the v1
// JSON envelope (not the mux's text/plain), and carries no deprecation
// headers — there is nothing left to deprecate.
func TestLegacyPathsRemoved(t *testing.T) {
	srv, _ := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "alias", "k": 1, "seed": 9,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	driveRound(t, srv.URL, "alias", 2, 1)

	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/jobs"},
		{http.MethodGet, "/jobs"},
		{http.MethodGet, "/jobs/alias"},
		{http.MethodGet, "/jobs/alias/outcome?round=1"},
		{http.MethodPost, "/jobs/alias/bids"},
		{http.MethodPost, "/jobs/alias/close"},
		{http.MethodPost, "/nodes"},
		{http.MethodGet, "/metrics"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s status = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s Content-Type = %q, want application/json", probe.method, probe.path, ct)
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("%s %s still carries a Deprecation header", probe.method, probe.path)
		}
		if body := decodeBody(t, resp); body["code"] != "not_found" || body["message"] == "" {
			t.Errorf("%s %s envelope = %v, want code not_found with message", probe.method, probe.path, body)
		}
	}

	// The /v1 twin still serves.
	resp, err := http.Get(srv.URL + "/v1/jobs/alias/outcome?round=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // read
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("v1 outcome after alias removal: status %d body %q", resp.StatusCode, body)
	}
}

// TestV1JobsPagination walks GET /v1/jobs with a page size smaller than the
// job count.
func TestV1JobsPagination(t *testing.T) {
	srv, _ := httpFixture(t)
	for i := 0; i < 5; i++ {
		if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
			"id": fmt.Sprintf("page-%d", i), "k": 1,
			"rule": map[string]any{"kind": "additive", "alpha": []float64{1}},
		}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: %d %v", i, resp.StatusCode, body)
		}
	}
	var ids []string
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/v1/jobs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, body := getJSON(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list: %d %v", resp.StatusCode, body)
		}
		pages++
		for _, j := range body["jobs"].([]any) {
			ids = append(ids, j.(map[string]any)["id"].(string))
		}
		nc, _ := body["next_cursor"].(string)
		if nc == "" {
			break
		}
		cursor = nc
	}
	if pages != 3 || len(ids) != 5 {
		t.Fatalf("pages = %d ids = %v, want 3 pages / 5 ids", pages, ids)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("page-%d", i); id != want {
			t.Errorf("ids[%d] = %q, want %q (lexical order)", i, id, want)
		}
	}
}

// TestV1OutcomesPagination walks GET /v1/jobs/{id}/outcomes by cursor.
func TestV1OutcomesPagination(t *testing.T) {
	srv, _ := httpFixture(t)
	if resp, body := postJSON(t, srv.URL+"/v1/jobs", map[string]any{
		"id": "hist2", "k": 1, "seed": 2,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	for round := 1; round <= 5; round++ {
		driveRound(t, srv.URL, "hist2", 2, round)
	}
	var rounds []int
	cursor := 0
	for {
		resp, body := getJSON(t, fmt.Sprintf("%s/v1/jobs/hist2/outcomes?limit=2&cursor=%d", srv.URL, cursor))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("outcomes: %d %v", resp.StatusCode, body)
		}
		outs := body["outcomes"].([]any)
		for _, o := range outs {
			om := o.(map[string]any)
			rounds = append(rounds, int(om["round"].(float64)))
			if om["winners"] == nil {
				t.Errorf("round %v listing has no winners", om["round"])
			}
		}
		nc, _ := body["next_cursor"].(string)
		if nc == "" {
			break
		}
		cursor = rounds[len(rounds)-1]
	}
	if len(rounds) != 5 {
		t.Fatalf("rounds = %v, want 1..5", rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("rounds = %v, want contiguous 1..5", rounds)
		}
	}
	// A cursor past the history is an empty page, not an error.
	resp, body := getJSON(t, srv.URL+"/v1/jobs/hist2/outcomes?cursor=99")
	if resp.StatusCode != http.StatusOK || len(body["outcomes"].([]any)) != 0 {
		t.Errorf("past-end page: %d %v", resp.StatusCode, body)
	}
}

// TestV1IdempotencyReplay pins the Idempotency-Key contract on job creation
// and bid submission: the second request with the same key replays the
// recorded response byte-for-byte instead of conflicting.
func TestV1IdempotencyReplay(t *testing.T) {
	srv, _ := httpFixture(t)
	spec := map[string]any{
		"id": "idem", "k": 1, "seed": 4,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}
	resp1, body1 := postJSONKeyed(t, srv.URL+"/v1/jobs", "create-1", spec)
	if resp1.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp1.StatusCode, body1)
	}
	resp2, body2 := postJSONKeyed(t, srv.URL+"/v1/jobs", "create-1", spec)
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("replayed create: %d %v, want original 201", resp2.StatusCode, body2)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Error("replayed create missing Idempotent-Replay header")
	}
	if fmt.Sprint(body1) != fmt.Sprint(body2) {
		t.Errorf("replayed body differs: %v vs %v", body1, body2)
	}
	// Without the header, the duplicate ID conflicts as before.
	resp3, body3 := postJSON(t, srv.URL+"/v1/jobs", spec)
	if resp3.StatusCode != http.StatusBadRequest && resp3.StatusCode != http.StatusConflict {
		t.Fatalf("unkeyed duplicate: %d %v", resp3.StatusCode, body3)
	}
	// The same key with a *different* payload must not replay the old
	// response — the fingerprinted key misses and the request runs into the
	// genuine duplicate-ID failure.
	other := map[string]any{
		"id": "idem", "k": 2, "seed": 5,
		"rule": map[string]any{"kind": "additive", "alpha": []float64{1, 1}},
	}
	resp4, body4 := postJSONKeyed(t, srv.URL+"/v1/jobs", "create-1", other)
	if resp4.Header.Get("Idempotent-Replay") == "true" {
		t.Fatal("reused key with a different payload replayed the old response")
	}
	if resp4.StatusCode == http.StatusCreated {
		t.Fatalf("mismatched re-create: %d %v, want a failure", resp4.StatusCode, body4)
	}

	// Bid: same key replays the acceptance; a fresh key is a duplicate bid.
	bid := map[string]any{"node_id": 7, "qualities": []float64{0.5, 0.5}, "payment": 0.1}
	respA, bodyA := postJSONKeyed(t, srv.URL+"/v1/jobs/idem/bids", "bid-1", bid)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("bid: %d %v", respA.StatusCode, bodyA)
	}
	respB, bodyB := postJSONKeyed(t, srv.URL+"/v1/jobs/idem/bids", "bid-1", bid)
	if respB.StatusCode != http.StatusAccepted || fmt.Sprint(bodyA) != fmt.Sprint(bodyB) {
		t.Fatalf("replayed bid: %d %v, want replay of %v", respB.StatusCode, bodyB, bodyA)
	}
	respC, bodyC := postJSONKeyed(t, srv.URL+"/v1/jobs/idem/bids", "bid-2", bid)
	if respC.StatusCode != http.StatusConflict || bodyC["code"] != "duplicate_bid" {
		t.Fatalf("fresh-key duplicate: %d %v, want 409 duplicate_bid", respC.StatusCode, bodyC)
	}
}

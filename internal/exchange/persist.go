package exchange

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fmore/internal/auction"
	"fmore/internal/transport"
)

// The write-ahead log is a sequence of numbered segments plus at most one
// snapshot. Segment 1 keeps the historical single-file name (exchange.wal),
// so data dirs written before rotation existed open unchanged; rotated
// segments are exchange-NNNNNN.wal. The snapshot (exchange.snap) captures
// the full durable state as of a rotation cut: replay is snapshot + every
// segment with seq >= the snapshot's cut, and segments below the cut are
// garbage (deleted after the snapshot is durable, or at the next Open).
const (
	walFileName  = "exchange.wal"
	walSegPrefix = "exchange-"
	walSegSuffix = ".wal"
	snapFileName = "exchange.snap"
	snapTmpName  = "exchange.snap.tmp"
	lockFileName = "exchange.lock"
)

// maxWalRecord bounds one record's payload. It exists to keep a corrupted
// length prefix from triggering an enormous allocation during replay; real
// records (even a round with 10⁵ bidders) stay far below it.
const maxWalRecord = 64 << 20

// walBuffer is the appender channel depth. Appends never wait for disk;
// they only block if this many records are already queued behind a slow
// device, which bounds memory instead of growing an unbounded queue.
const walBuffer = 1024

// defaultSyncDelay is the fixed group-commit window (CommitFixed, or any
// explicit SyncInterval): after writing a batch the writer keeps
// collecting records for up to this long before the fsync, so a storm of
// round closes shares one disk flush instead of paying one each.
// (Back-to-back fsyncs are not just slow — each blocking syscall also
// steals the writer's scheduler slot, which on small machines stalls the
// scoring goroutines too.) A crash can lose at most this window plus one
// fsync of acknowledged-but-unflushed records, the standard contract of
// an asynchronous WAL; Sync bypasses the wait entirely. The default
// CommitAdaptive policy replaces the fixed hold with a drain-and-commit
// loop — see persister.run.
const defaultSyncDelay = 2 * time.Millisecond

// walWriteBuffer bounds the writer-local batch buffer: queued frames are
// coalesced into one write syscall per group commit instead of one per
// record, spilling early if a batch outgrows this.
const walWriteBuffer = 1 << 20

// defaultSnapshotBytes is the size trigger for snapshot + rotation: once
// the active segment grows past it, the exchange compacts in the
// background. Large enough that compaction is rare, small enough that
// replay and disk usage stay bounded for long-lived jobs.
const defaultSnapshotBytes = 8 << 20

// Record kinds of the write-ahead log.
const (
	recJobCreated = "job"     // a job was created (full spec)
	recRound      = "round"   // a round completed (outcome verbatim)
	recJobClosed  = "closed"  // a job finished (MaxRounds or explicit Close)
	recJobRemoved = "removed" // a job was evicted with RemoveJob
	recNode       = "node"    // a node registered (or its meta changed)
	recNodeBan    = "ban"     // a node was blacklisted
)

// walRecord is the union payload of one log record; Kind selects which
// field is populated.
type walRecord struct {
	Kind  string    `json:"k"`
	Job   *walJob   `json:"job,omitempty"`
	Round *walRound `json:"round,omitempty"`
	Node  *walNode  `json:"node,omitempty"`
	// ID names the job of a closed/removed record.
	ID string `json:"id,omitempty"`
}

// walJob is a serialized JobSpec. The scoring rule travels as the wire-form
// transport.RuleSpec, the same encoding the HTTP front end accepts.
type walJob struct {
	ID           string             `json:"id"`
	Rule         transport.RuleSpec `json:"rule"`
	K            int                `json:"k"`
	Payment      int                `json:"payment"`
	Psi          float64            `json:"psi"`
	Seed         int64              `json:"seed"`
	BidWindowNS  int64              `json:"bid_window_ns,omitempty"`
	MaxRounds    int                `json:"max_rounds,omitempty"`
	MinBids      int                `json:"min_bids"`
	KeepOutcomes int                `json:"keep_outcomes"`
	// Equilibrium is the optional bidder-side game description; it is
	// already a JSON wire form, so it persists verbatim. Absent on records
	// written before the strategy endpoint existed.
	Equilibrium *transport.EquilibriumSpec `json:"eq,omitempty"`
}

// walWinner is one selected bid of a persisted outcome.
type walWinner struct {
	NodeID     int       `json:"n"`
	Qualities  []float64 `json:"q"`
	BidPayment float64   `json:"bp"`
	Score      float64   `json:"s"`
	Payment    float64   `json:"p"`
}

// walRound is one completed round, stored verbatim so a replayed exchange
// serves byte-identical outcome responses. Draws is the job's cumulative
// rng-source step count after this round: replay fast-forwards the seeded
// source by exactly that many steps, so post-recovery rounds draw the same
// tiebreaks (and ψ-admissions) the uncrashed process would have drawn.
type walRound struct {
	Job     string `json:"job"`
	Round   int    `json:"r"`
	NumBids int    `json:"nb"`
	// Bidders lists the round's node IDs (canonical ascending order); replay
	// uses it to restore per-node accepted-bid counters.
	Bidders   []int       `json:"bidders,omitempty"`
	Draws     int64       `json:"draws"`
	LatencyNS int64       `json:"lat"`
	Err       string      `json:"err,omitempty"`
	Winners   []walWinner `json:"w"`
	Scores    []float64   `json:"sc"`
	Profit    float64     `json:"profit"`
}

// walNode is a registry entry.
type walNode struct {
	ID   int    `json:"id"`
	Meta string `json:"meta,omitempty"`
}

// walSnapshot is the exchange's full durable state as of a rotation cut.
// Replaying it and then the segments with seq >= CutSeq reproduces exactly
// the state a record-by-record replay of the deleted segments plus the tail
// would have produced: job specs, the KeepOutcomes-bounded outcome history
// (so retained outcome responses stay byte-identical), round numbering,
// cumulative rng draw counts (so post-recovery rounds continue bit-for-bit)
// and the registry with per-node bid counters, meta and bans.
type walSnapshot struct {
	// CutSeq is the first segment the snapshot does NOT cover.
	CutSeq int64         `json:"cut_seq"`
	Jobs   []walSnapJob  `json:"jobs,omitempty"`
	Nodes  []walSnapNode `json:"nodes,omitempty"`
}

// walSnapJob is one job's snapshotted state. History reuses the walRound
// form (Bidders and Draws zero — counters and the cumulative draw count are
// snapshotted once, not per retained round).
type walSnapJob struct {
	Spec      walJob     `json:"spec"`
	Closed    bool       `json:"closed,omitempty"`
	Round     int        `json:"round"`
	BaseRound int        `json:"base_round"`
	Draws     int64      `json:"draws"`
	AuctRound int        `json:"auct_round"`
	History   []walRound `json:"history,omitempty"`
}

// walSnapNode is one registry entry with its counters.
type walSnapNode struct {
	ID     int    `json:"id"`
	Meta   string `json:"meta,omitempty"`
	Bids   int64  `json:"bids,omitempty"`
	Banned bool   `json:"banned,omitempty"`
}

// persister owns the active log segment and its dedicated writer goroutine.
// Appends are a channel send (never a disk wait); the writer drains
// whatever is queued, writes it, and fsyncs once per batch, so a burst of
// round closes costs one fsync, off every hot path. Rotation requests flow
// through the same channel, so the record/segment assignment is exactly the
// enqueue order — the invariant the snapshot cut relies on.
type persister struct {
	f         *os.File
	syncDelay time.Duration
	// adaptive selects the group-commit policy: true (CommitAdaptive)
	// commits as soon as the queue momentarily drains — the fsync's own
	// latency is the batching window — false (CommitFixed) holds each
	// commit open for the full syncDelay.
	adaptive bool

	// Commit telemetry, read by metrics scrapes: fsyncs counts group
	// commits (wal_fsync_total), fsyncRecs the records those commits made
	// durable (wal_fsync_batched_records) — their ratio is the achieved
	// batch size, the observable of the adaptive/fixed tradeoff.
	fsyncs    atomic.Int64
	fsyncRecs atomic.Int64

	// Writer-goroutine state: the active segment's seq and byte size, plus
	// the snapshot size trigger. notified latches the trigger per segment
	// (atomic: a failed compaction re-arms it from outside the writer so
	// the next commit retries instead of silently never compacting again).
	// size is atomic only so the wal_bytes gauge can read it from a
	// metrics scrape; the writer goroutine remains its sole writer.
	seq       int64
	size      atomic.Int64
	threshold int64
	notified  atomic.Bool
	onFull    func() // must not block; called once per over-threshold segment

	// bufs recycles frame buffers between the appenders (which encode into
	// one) and the writer goroutine (which returns it after the disk write).
	// Record encoding used to be the durable close path's largest
	// allocation; pooling it keeps the steady state allocation-free.
	bufs sync.Pool

	// err is the first sticky failure (encode, write, fsync or close). It
	// is deliberately NOT guarded by mu: appenders hold mu while blocked
	// sending into a full channel, so the writer goroutine must be able to
	// record an error without ever waiting on mu — taking it there would
	// deadlock the writer against a blocked appender exactly when the disk
	// misbehaves under load.
	err atomic.Pointer[error]

	// onFail, when set, is invoked exactly once — by whichever goroutine
	// wins the sticky-error CAS — with the first error. It runs lock-free
	// from arbitrary contexts (including the writer goroutine), so it must
	// never block; the exchange uses it to flip into degraded mode.
	onFail func(error)

	mu     sync.Mutex // guards ch against send-after-close
	closed bool

	ch   chan persistMsg
	done chan struct{}
}

// persistMsg is a framed record to append, a flush barrier, a segment
// rotation, or a combination.
type persistMsg struct {
	rec    *frameBuf
	flush  chan struct{}
	rotate *rotateMsg
}

// rotateMsg switches the writer onto a fresh segment. done closes once the
// old segment is durable and the switch happened; retired (written by the
// writer before the close, read by the rotator after it) reports the
// sealed segment's final byte size for the wal_bytes gauge.
type rotateMsg struct {
	f       *os.File
	seq     int64
	retired int64
	done    chan struct{}
}

// frameBuf is one pooled frame: an 8-byte length+CRC header followed by the
// JSON payload, built in place by frameRecord. The bound json.Encoder
// writes straight into the buffer, so one encode costs zero steady-state
// allocations once the pool is warm.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func newFrameBuf() *frameBuf {
	fb := &frameBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}

func newPersister(f *os.File, seq, size int64, syncDelay time.Duration, adaptive bool, threshold int64, onFull func(), onFail func(error)) *persister {
	if syncDelay <= 0 {
		syncDelay = defaultSyncDelay
	}
	p := &persister{
		f:         f,
		syncDelay: syncDelay,
		adaptive:  adaptive,
		seq:       seq,
		threshold: threshold,
		onFull:    onFull,
		onFail:    onFail,
		ch:        make(chan persistMsg, walBuffer),
		done:      make(chan struct{}),
	}
	p.size.Store(size)
	p.bufs.New = func() any { return newFrameBuf() }
	go p.run()
	return p
}

// append frames rec into a pooled buffer and queues it for the writer,
// which returns the buffer to the pool once the bytes are on their way to
// disk. The record (and every slice it references) is fully encoded before
// append returns, so callers may reuse record scratch immediately. Errors
// (encode or disk) are sticky and surfaced through Err/Sync; the exchange
// keeps serving from memory either way, mirroring how a database treats a
// failing WAL device.
func (p *persister) append(rec walRecord) {
	fb := p.bufs.Get().(*frameBuf)
	if err := frameRecord(fb, rec); err != nil {
		p.bufs.Put(fb)
		p.fail(err)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.bufs.Put(fb)
		return
	}
	// The send happens under mu so close() can never close the channel
	// between the closed-check and the send.
	p.ch <- persistMsg{rec: fb}
}

// sync blocks until every record appended so far is on disk and returns the
// first sticky error.
func (p *persister) sync() error {
	flushed := make(chan struct{})
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.Err()
	}
	p.ch <- persistMsg{flush: flushed}
	p.mu.Unlock()
	<-flushed
	return p.Err()
}

// rearmSizeTrigger lets a failed compaction re-enable the size trigger so
// the next over-threshold commit signals again; without it one transient
// failure would disable automatic compaction for the segment's lifetime.
func (p *persister) rearmSizeTrigger() {
	p.notified.Store(false)
}

// rotate queues a switch onto segment (f, seq) and returns the rotation
// message, whose done channel closes once the retiring segment is durable
// and the switch happened (retired then holds its final size); ok is
// false (and done closed) when the persister already shut down, in which
// case the caller still owns f.
func (p *persister) rotate(f *os.File, seq int64) (msg *rotateMsg, ok bool) {
	msg = &rotateMsg{f: f, seq: seq, done: make(chan struct{})}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		close(msg.done)
		return msg, false
	}
	p.ch <- persistMsg{rotate: msg}
	return msg, true
}

// Err returns the first append, write or fsync error, if any.
func (p *persister) Err() error {
	if e := p.err.Load(); e != nil {
		return *e
	}
	return nil
}

// fail records the first sticky error, lock-free (see the err field's
// comment for why the writer goroutine must never block here). The CAS
// winner also fires onFail, so the degraded-mode transition happens exactly
// once and carries the first error, never a later one.
func (p *persister) fail(err error) {
	if p.err.CompareAndSwap(nil, &err) && p.onFail != nil {
		p.onFail(err)
	}
}

// close drains the queue, fsyncs, trims the segment's preallocated tail
// back to its logical size and closes the file. Idempotent.
func (p *persister) close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.Err()
	}
	p.closed = true
	close(p.ch)
	p.mu.Unlock()
	<-p.done
	// A cleanly closed segment is exactly its logical size — crash-only
	// zero-fill is what replay's preallocation tolerance is for, and tests
	// (and operators) get to read "file size == bytes logged" on a clean
	// shutdown. Best-effort: a failed trim just leaves a zero tail.
	p.f.Truncate(p.size.Load()) //nolint:errcheck // zero tails are tolerated by replay
	if err := p.f.Close(); err != nil {
		p.fail(err)
	}
	return p.Err()
}

// run is the writer goroutine: coalesce every queued record into a
// writer-local batch buffer, write the batch with one syscall, fsync once
// (fdatasync on Linux), release flush waiters. It never exits before the
// channel closes — on a disk error it keeps draining (and discarding) so
// appenders can never wedge on a full channel.
//
// Group commit is adaptive by default: after the first record the writer
// drains whatever is already queued without blocking and commits the
// moment the queue is momentarily empty — the fsync's own latency (and
// the write syscall before it) is the batching window, so concurrent
// round closes still share one flush while a lone record is durable as
// fast as the disk allows instead of idling out a fixed timer. CommitFixed
// restores the timer: hold each commit open for up to syncDelay.
//
// The loop deliberately never takes p.mu: appenders hold it while sending
// (including blocking on a full channel), so a writer that needed the mutex
// — even once, to record an error — could wedge against a blocked appender
// exactly when the queue is at its fullest. Write/fsync failures live in
// the local failed flag and are published through the lock-free fail().
func (p *persister) run() {
	defer close(p.done)
	var flushes []chan struct{}
	var batch []byte  // frames coalesced since the last write syscall
	var pending int64 // records written or batched since the last fsync
	dirty := false
	failed := false
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		if !failed && p.Err() == nil {
			// The failpoint bounds the write like a failing device would: a
			// torn config lets a prefix reach the file before the error
			// sticks, leaving exactly the partial frame recovery must
			// truncate away.
			allowed, ferr := fpWalWrite.Cut(len(batch))
			if allowed > 0 {
				if _, werr := p.f.Write(batch[:allowed]); werr != nil {
					if ferr == nil {
						ferr = werr
					}
				} else {
					dirty = true // even a torn prefix is on its way to disk
				}
			}
			if ferr != nil {
				p.fail(ferr)
				failed = true
			}
		}
		batch = batch[:0]
	}
	settle := func() {
		flushBatch()
		if dirty {
			err := fpWalFsync.Fire()
			if err == nil {
				err = fdatasync(p.f)
			}
			if err != nil {
				p.fail(err)
				failed = true
			} else {
				p.fsyncs.Add(1)
				p.fsyncRecs.Add(pending)
			}
			dirty = false
		}
		pending = 0
		for _, c := range flushes {
			close(c)
		}
		flushes = flushes[:0]
	}
	write := func(msg persistMsg) {
		if msg.rec != nil {
			// The p.Err() check (lock-free since the sticky error went
			// atomic) freezes the log at the FIRST failure, appender-side
			// encode errors included: writing records past a dropped one
			// would leave a gap that replay silently mis-recovers from,
			// which is worse than a log that simply ends early.
			if !failed && p.Err() == nil {
				b := msg.rec.buf.Bytes()
				if len(batch) > 0 && len(batch)+len(b) > walWriteBuffer {
					flushBatch() // spill early; the fsync still waits for settle
				}
				if !failed {
					// The frame is copied before the pooled buffer returns;
					// size counts logical bytes at batch time so the gauge
					// and the rotation trigger never lag the queue.
					batch = append(batch, b...)
					p.size.Add(int64(len(b)))
					pending++
				}
			}
			p.bufs.Put(msg.rec)
		}
		if msg.flush != nil {
			flushes = append(flushes, msg.flush)
		}
		if msg.rotate != nil {
			// Rotation barrier: the retiring segment must be fully durable
			// before any record lands in its successor — the crash window
			// between rotation and the snapshot replays old segments plus
			// the new tail, which only works if no old record was lost.
			settle()
			// Trim the preallocated zero tail so the sealed segment is
			// exactly its logical size. Best-effort and not re-fsynced: a
			// crash that loses the trim leaves zero-fill, which replay
			// recognizes as clean preallocated space.
			p.f.Truncate(p.size.Load()) //nolint:errcheck // zero tails are tolerated by replay
			err := fpWalRotate.Fire()
			if cerr := p.f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				p.fail(err)
				failed = true
			}
			p.f = msg.rotate.f
			p.seq = msg.rotate.seq
			msg.rotate.retired = p.size.Load()
			p.size.Store(0)
			p.notified.Store(false)
			close(msg.rotate.done)
		}
	}
	commit := func() {
		settle()
		if p.threshold > 0 && p.size.Load() >= p.threshold && p.notified.CompareAndSwap(false, true) {
			if p.onFull != nil {
				p.onFull()
			}
		}
	}
	for msg := range p.ch {
		write(msg)
		if len(flushes) == 0 {
			// No durability waiter: hold the fsync for up to syncDelay
			// while more records trickle in. The hold delays nobody
			// (appends are fire-and-forget) and is the crash-loss cap;
			// committing eagerly here would turn every trickled record
			// into its own fsync.
			timer := time.NewTimer(p.syncDelay)
		coalesce:
			for {
				select {
				case m, ok := <-p.ch:
					if !ok {
						break coalesce // outer range exits next; commit below
					}
					write(m)
					if len(flushes) > 0 {
						break coalesce // a Sync arrived: flush now
					}
				case <-timer.C:
					break coalesce
				}
			}
			timer.Stop()
		}
		if p.adaptive {
			// Adaptive: a waiter is (now) pending — absorb whatever else
			// is already queued before the flush, so the records racing
			// in behind the Sync share its fsync instead of forcing the
			// next one. The fixed policy commits with the queue as-is.
		drain:
			for len(flushes) > 0 {
				select {
				case m, ok := <-p.ch:
					if !ok {
						break drain // outer range exits next; commit below
					}
					write(m)
				default:
					break drain
				}
			}
		}
		commit()
	}
	commit()
}

// frameRecord encodes rec into fb as a length-prefixed, CRC-guarded frame:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload JSON
//
// The header is written as a placeholder first and patched once the payload
// size is known, so the whole frame lands in one reused buffer with no
// intermediate marshal allocation. The bound encoder produces exactly
// json.Marshal's bytes plus a trailing newline, which is truncated to keep
// the on-disk format byte-identical to pre-pooling logs.
func frameRecord(fb *frameBuf, rec walRecord) error {
	var pad [8]byte
	fb.buf.Reset()
	fb.buf.Write(pad[:]) // header placeholder; Write to a Buffer cannot fail
	if err := fb.enc.Encode(rec); err != nil {
		return fmt.Errorf("exchange: encoding wal record: %w", err)
	}
	fb.buf.Truncate(fb.buf.Len() - 1) // drop the encoder's trailing newline
	frame := fb.buf.Bytes()
	payload := frame[8:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return nil
}

// frameBytes frames an already-marshaled payload (the snapshot file shares
// the record framing, so torn or bit-flipped snapshots are detectable).
func frameBytes(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// scanWAL reads records until EOF or the first torn/corrupt frame and
// returns them with the byte offset of the last valid frame end. Everything
// past that offset is untrustworthy (a crash mid-append), so callers
// truncate there.
func scanWAL(f *os.File) (recs []walRecord, valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, valid, nil // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxWalRecord {
			return recs, valid, nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, nil // corrupt payload
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, nil // CRC passed but undecodable: treat as tail
		}
		recs = append(recs, rec)
		valid += 8 + int64(n)
	}
}

// zeroFrom reports whether every byte of f from off to EOF is zero — the
// signature of preallocated-but-unwritten segment space, as opposed to a
// torn frame's garbage.
func zeroFrom(f *os.File, off int64) (bool, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, err
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		for _, b := range buf[:n] {
			if b != 0 {
				return false, nil
			}
		}
		if err == io.EOF {
			return true, nil
		}
		if err != nil {
			return false, err
		}
	}
}

// walPreallocBytes is the segment preallocation size: the rotation
// threshold when the size trigger is on (a segment rotates right around
// the point it would first have to grow), the default threshold when the
// trigger is disabled (benchmarks, operator choice — appends should still
// never extend the file).
func walPreallocBytes(opts Options) int64 {
	if opts.SnapshotBytes > 0 {
		return opts.SnapshotBytes
	}
	return defaultSnapshotBytes
}

// --- segment and snapshot files ---------------------------------------------

// segName returns the file name of a log segment. Segment 1 keeps the
// pre-rotation single-file name for backward compatibility.
func segName(seq int64) string {
	if seq == 1 {
		return walFileName
	}
	return fmt.Sprintf("%s%06d%s", walSegPrefix, seq, walSegSuffix)
}

// parseSegName inverts segName; ok is false for non-segment files.
func parseSegName(name string) (seq int64, ok bool) {
	if name == walFileName {
		return 1, true
	}
	body, found := strings.CutPrefix(name, walSegPrefix)
	if !found {
		return 0, false
	}
	body, found = strings.CutSuffix(body, walSegSuffix)
	if !found {
		return 0, false
	}
	seq, err := strconv.ParseInt(body, 10, 64)
	if err != nil || seq < 2 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the data dir's segment sequence numbers, ascending.
func listSegments(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	slices.Sort(seqs)
	return seqs, nil
}

// fsyncDir flushes a directory's entry table — the step that makes file
// creations, renames and deletions durable, not just the file contents.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// lockDir takes the data dir's exclusive advisory lock for the exchange's
// lifetime (released when the fd closes): two processes appending to one
// log would interleave frames and read as corruption — exactly the history
// loss the log exists to prevent. Fail fast instead.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exchange: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("exchange: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// writeSnapshot makes snap durable: marshal, frame, write to a temp file,
// fsync, rename over the live snapshot, fsync the dir. The rename is the
// commit point — a crash anywhere before it leaves the previous snapshot
// (or none) in force, with every segment it needs still on disk.
func writeSnapshot(dir string, snap *walSnapshot) error {
	if err := fpWalSnapshot.Fire(); err != nil {
		return fmt.Errorf("exchange: writing snapshot: %w", err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("exchange: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("exchange: creating snapshot: %w", err)
	}
	_, werr := f.Write(frameBytes(payload))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("exchange: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapFileName)); err != nil {
		return fmt.Errorf("exchange: committing snapshot: %w", err)
	}
	return fsyncDir(dir)
}

// readSnapshot loads the data dir's snapshot; (nil, nil) when none exists.
// A present-but-corrupt snapshot is an error: segments it covered may
// already be deleted, so ignoring it silently would serve truncated
// history.
func readSnapshot(dir string) (*walSnapshot, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < 8 {
		return nil, errors.New("exchange: snapshot file is truncated")
	}
	n := binary.LittleEndian.Uint32(raw[0:4])
	sum := binary.LittleEndian.Uint32(raw[4:8])
	if int64(n) != int64(len(raw)-8) {
		return nil, errors.New("exchange: snapshot length mismatch")
	}
	payload := raw[8:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("exchange: snapshot failed its checksum")
	}
	var snap walSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("exchange: decoding snapshot: %w", err)
	}
	if snap.CutSeq < 1 {
		return nil, fmt.Errorf("exchange: snapshot has invalid cut %d", snap.CutSeq)
	}
	return &snap, nil
}

// Test hooks of the compaction crash matrix: persist_test simulates a
// kill -9 at each point by copying the data dir while the exchange runs.
var (
	testHookAfterRotate   func() // rotation durable, snapshot not yet written
	testHookAfterSnapshot func() // snapshot durable, old segments not yet deleted
)

// Compact writes a snapshot of the exchange's durable state, rotates the
// log onto a fresh segment, and deletes the segments the snapshot covers.
// The whole mutation history up to the cut collapses into one state
// capture, so replay cost and disk usage stay bounded by live state
// (KeepOutcomes history, registry size) instead of growing with every round
// ever closed. Durable exchanges trigger it automatically (size threshold
// and optional interval — see Options); calling it manually is also safe at
// any time. On an in-memory exchange it is a no-op.
//
// Crash safety, in write order: (1) the new segment is created and made
// durable, (2) the writer rotates onto it after fsyncing the old segment,
// (3) the snapshot commits via rename, (4) old segments are deleted. A kill
// at any point leaves either the old snapshot (or none) with every segment
// it needs, or the new snapshot with its tail — Open handles both, deleting
// whatever garbage the crash left.
func (ex *Exchange) Compact() error {
	if ex.wal == nil {
		return nil
	}
	ex.compactMu.Lock()
	defer ex.compactMu.Unlock()

	// Any failure re-arms the size trigger: the next over-threshold commit
	// (or the interval) retries, instead of one transient error disabling
	// automatic compaction for the rest of the segment's life.
	newSeq := ex.walSeq + 1
	segPath := filepath.Join(ex.dir, segName(newSeq))
	f, err := os.OpenFile(segPath, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		ex.metrics.snapshotErrs.Add(1)
		ex.wal.rearmSizeTrigger()
		return fmt.Errorf("exchange: creating segment: %w", err)
	}
	abort := func(err error) error {
		f.Close()          //nolint:errcheck // already failing
		os.Remove(segPath) //nolint:errcheck // best-effort cleanup
		ex.metrics.snapshotErrs.Add(1)
		ex.wal.rearmSizeTrigger()
		return err
	}
	// Preallocate before the durability fsync so the reservation itself is
	// durable with the file: steady-state appends then never extend the
	// segment and each group commit is a data-only flush.
	if err := fpWalPrealloc.Fire(); err != nil {
		return abort(fmt.Errorf("exchange: preallocating segment: %w", err))
	}
	preallocate(f, walPreallocBytes(ex.opts))
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("exchange: creating segment: %w", err))
	}
	if err := fsyncDir(ex.dir); err != nil {
		return abort(fmt.Errorf("exchange: creating segment: %w", err))
	}

	// Stop the world: ex.mu freezes the job set, each job's closeMu parks
	// its round closes (and therefore all round/job record appends; node
	// records may still race, but replaying one is idempotent). The cut is
	// the rotation message's position in the writer queue: every record
	// enqueued before it lands in the old segments the snapshot covers,
	// everything after lands in the tail the snapshot does not.
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return abort(ErrExchangeClosed)
	}
	// The published table's ID list is already sorted — the deterministic
	// closeMu lock order the capture relies on.
	t := ex.table.Load()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, id := range t.ids {
		jobs = append(jobs, t.jobs[id])
	}
	for _, j := range jobs {
		j.closeMu.Lock()
	}
	unlock := func() {
		for _, j := range jobs {
			j.closeMu.Unlock()
		}
		ex.mu.Unlock()
	}

	rot, ok := ex.wal.rotate(f, newSeq)
	if !ok {
		unlock()
		return abort(ErrExchangeClosed)
	}
	snap, serr := ex.captureSnapshot(jobs, newSeq)
	unlock()

	<-rot.done // old segments durable, writer switched
	ex.walSeq = newSeq
	// Gauge the rotation: one more live segment, and the retiring tail's
	// bytes move from the persister's active-size into the sealed total.
	ex.walSegs.Add(1)
	ex.walSealedBytes.Add(rot.retired)
	if serr != nil {
		// Rotation without a snapshot is harmless: replay still reads the
		// old snapshot (or none) plus every segment.
		ex.metrics.snapshotErrs.Add(1)
		ex.wal.rearmSizeTrigger()
		return serr
	}
	if hook := testHookAfterRotate; hook != nil {
		hook()
	}

	if err := writeSnapshot(ex.dir, snap); err != nil {
		ex.metrics.snapshotErrs.Add(1)
		ex.wal.rearmSizeTrigger()
		return err
	}
	if hook := testHookAfterSnapshot; hook != nil {
		hook()
	}
	// Old segments are garbage now; a crash mid-delete just leaves some for
	// the next Open to clear. walFloor (the lowest live segment) keeps the
	// loop from re-unlinking every seq since the dawn of the log on each
	// compaction.
	for seq := ex.walFloor; seq < newSeq; seq++ {
		os.Remove(filepath.Join(ex.dir, segName(seq))) //nolint:errcheck // covered by the snapshot either way
	}
	ex.walFloor = newSeq
	// Only the fresh active segment remains replay-relevant (lingering
	// files a failed Remove left behind are garbage the snapshot covers,
	// exactly like a crash mid-delete — the next Open clears them).
	ex.walSegs.Store(1)
	ex.walSealedBytes.Store(0)
	ex.metrics.snapshots.Add(1)
	return nil
}

// captureSnapshot assembles the snapshot under the compaction locks
// (ex.mu + every job's closeMu held by the caller; j.mu taken per job
// here). All outcome data is deep-copied — the snapshot is encoded after
// the locks drop, by which time the pooled history buffers may have been
// recycled by new rounds.
func (ex *Exchange) captureSnapshot(jobs []*Job, cutSeq int64) (*walSnapshot, error) {
	snap := &walSnapshot{CutSeq: cutSeq}
	for _, j := range jobs {
		wj, err := walJobFromSpec(j.spec)
		if err != nil {
			return nil, fmt.Errorf("exchange: snapshotting job %q: %w", j.id, err)
		}
		j.mu.Lock()
		sj := walSnapJob{
			Spec:      wj,
			Closed:    j.closed.Load(),
			Round:     j.round,
			BaseRound: j.baseRnd,
			Draws:     j.src.n,
			AuctRound: j.auct.Round(),
		}
		if len(j.outcomes) > 0 {
			sj.History = make([]walRound, len(j.outcomes))
			for i, ro := range j.outcomes {
				ro.Outcome = ro.Outcome.Clone()
				fillWalRound(&sj.History[i], ro, nil, 0)
			}
		}
		j.mu.Unlock()
		snap.Jobs = append(snap.Jobs, sj)
	}
	// Pending (buffered, unclosed) bids already incremented their node's
	// live counter, but their round record will land in the tail — which
	// replay re-counts. Capture counters net of pending so snapshot + tail
	// reproduces exactly what a record-by-record replay would. The whole
	// intake is frozen across both the pending scan AND the counter reads,
	// and every acceptance (registered counter and open-posture first-bid
	// registration alike) runs inside a shard critical section, so no bid
	// can slip between the two reads. The clamp below is pure defense.
	pending := make(map[int]int64)
	for _, j := range jobs {
		j.intake.lockAll()
	}
	for _, j := range jobs {
		j.intake.pendingByNodeLocked(pending)
	}
	ex.reg.Range(func(info *NodeInfo) bool {
		bids := info.Bids() - pending[info.ID]
		if bids < 0 {
			bids = 0
		}
		snap.Nodes = append(snap.Nodes, walSnapNode{
			ID:     info.ID,
			Meta:   info.Meta(),
			Bids:   bids,
			Banned: info.Blacklisted(),
		})
		return true
	})
	for _, j := range jobs {
		j.intake.unlockAll()
	}
	sort.Slice(snap.Nodes, func(a, b int) bool { return snap.Nodes[a].ID < snap.Nodes[b].ID })
	return snap, nil
}

// applySnapshot replays a snapshot into the (still private) exchange,
// exactly as if the deleted segments' records had been applied one by one.
// Replay runs before any reader exists, so the whole job set is built in
// one publish instead of a copy-per-job.
func (ex *Exchange) applySnapshot(snap *walSnapshot) error {
	for _, n := range snap.Nodes {
		ex.reg.restore(n.ID, n.Meta, n.Bids, n.Banned)
	}
	var ferr error
	ex.publishJobs(func(jobs map[string]*Job) {
		for i := range snap.Jobs {
			sj := &snap.Jobs[i]
			spec, err := sj.Spec.spec()
			if err != nil {
				ferr = fmt.Errorf("snapshot job %q: %w", sj.Spec.ID, err)
				return
			}
			if _, dup := jobs[spec.ID]; dup {
				ferr = fmt.Errorf("snapshot job %q duplicated", spec.ID)
				return
			}
			j, err := newJob(ex, spec.ID, spec)
			if err != nil {
				ferr = fmt.Errorf("snapshot job %q: %w", spec.ID, err)
				return
			}
			for _, wr := range sj.History {
				j.restoreRound(wr.outcome(j.id))
			}
			if len(sj.History) == 0 {
				j.round = sj.Round
				j.baseRnd = sj.BaseRound
			}
			j.src.fastForwardTo(sj.Draws)
			j.auct.Resume(sj.AuctRound)
			if sj.Closed {
				j.closed.Store(true)
			}
			jobs[spec.ID] = j
			ex.metrics.jobsCreated.Add(1)
		}
	})
	return ferr
}

// Open starts an exchange backed by a write-ahead outcome log in dir
// (created if absent). Recovery replays the snapshot (if one exists) and
// then every live segment in order: jobs come back with their specs,
// retained outcome history, contiguous round numbering and reconstructed
// rng position; the registry and blacklist are restored; a torn tail from a
// crash mid-append is truncated; segments and temp files orphaned by a
// crash mid-compaction are deleted. Timer-mode jobs resume their bid
// windows once replay completes.
func Open(dir string, opts Options) (*Exchange, error) {
	// A partitioned replica namespaces its WAL under the data dir so N
	// replicas can share one parent (one machine in tests, one volume in
	// small deployments) without their logs or dir locks colliding.
	if p := opts.Partition; p != nil && p.Local != "" {
		dir = filepath.Join(dir, "replica-"+p.Local)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exchange: creating data dir: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Exchange, error) {
		lock.Close() //nolint:errcheck // already failing
		return nil, err
	}
	// A leftover temp file is a snapshot that never committed.
	os.Remove(filepath.Join(dir, snapTmpName)) //nolint:errcheck // best-effort cleanup

	snap, err := readSnapshot(dir)
	if err != nil {
		return fail(err)
	}
	startSeq := int64(1)
	if snap != nil {
		startSeq = snap.CutSeq
	}
	segs, err := listSegments(dir)
	if err != nil {
		return fail(fmt.Errorf("exchange: listing wal segments: %w", err))
	}
	live := segs[:0]
	for _, seq := range segs {
		if seq < startSeq {
			// Covered by the snapshot: garbage from a crash between the
			// snapshot commit and the old-segment deletion.
			if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil {
				return fail(fmt.Errorf("exchange: removing stale segment: %w", err))
			}
			continue
		}
		live = append(live, seq)
	}
	if len(live) == 0 {
		// Fresh dir (or the snapshot's tail segment was never written to and
		// lost): start an empty tail at the cut.
		path := filepath.Join(dir, segName(startSeq))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fail(fmt.Errorf("exchange: creating wal: %w", err))
		}
		f.Close() //nolint:errcheck // reopened below
		live = append(live, startSeq)
	}
	for i, seq := range live {
		if want := startSeq + int64(i); seq != want {
			return fail(fmt.Errorf("exchange: wal segment %d missing (found %d)", want, seq))
		}
	}

	ex := New(opts)
	ex.dir = dir
	ex.walLock = lock
	closeFail := func(err error) (*Exchange, error) {
		ex.Close()
		lock.Close() //nolint:errcheck // already failing
		return nil, err
	}
	if snap != nil {
		if err := ex.applySnapshot(snap); err != nil {
			return closeFail(fmt.Errorf("exchange: replaying snapshot: %w", err))
		}
	}

	// Scan every live segment first, then decide where the effective tail
	// is. Segments are preallocated to the rotation threshold, so bytes
	// past the last valid frame come in two flavors: all-zero fill (clean
	// preallocated space whose trim was not yet durable — the zero length
	// prefix is exactly why scanWAL stops there) and garbage (a torn frame
	// from a crash mid-append). A torn tail is normally only legal in the
	// last segment — but the rotation protocol creates (and fsyncs) the
	// successor segment BEFORE the writer's barrier fsyncs the retiring
	// one, so a power loss in that window leaves a torn segment followed
	// by one record-free successor (empty or still pure zero-fill). That
	// state is recoverable, not corrupt: the rotation never happened, so
	// the torn segment is the effective tail (truncate it, delete the
	// orphaned successors). A torn non-last segment followed by any
	// WRITTEN segment is impossible by the barrier ordering and stays a
	// hard error rather than a guess.
	type segScan struct {
		seq      int64
		recs     []walRecord
		valid    int64
		size     int64
		zeroTail bool // every byte past valid is zero (preallocated fill)
	}
	scans := make([]segScan, 0, len(live))
	for _, seq := range live {
		f, err := os.Open(filepath.Join(dir, segName(seq)))
		if err != nil {
			return closeFail(fmt.Errorf("exchange: opening wal segment %d: %w", seq, err))
		}
		recs, valid, err := scanWAL(f)
		var size int64
		zeroTail := true
		if err == nil {
			var st os.FileInfo
			if st, err = f.Stat(); err == nil {
				size = st.Size()
			}
		}
		if err == nil && size > valid {
			zeroTail, err = zeroFrom(f, valid)
		}
		f.Close() //nolint:errcheck // read-only scan
		if err != nil {
			return closeFail(fmt.Errorf("exchange: reading wal segment %d: %w", seq, err))
		}
		scans = append(scans, segScan{seq: seq, recs: recs, valid: valid, size: size, zeroTail: zeroTail})
	}
	tailIdx := len(scans) - 1
	for i, s := range scans[:len(scans)-1] {
		if s.size == s.valid || s.zeroTail {
			continue // clean non-last segment (exact or zero-filled prealloc)
		}
		for _, later := range scans[i+1:] {
			if len(later.recs) != 0 || (later.size != 0 && !later.zeroTail) {
				return closeFail(fmt.Errorf("exchange: wal segment %d is corrupt before its end", s.seq))
			}
		}
		tailIdx = i // crash mid-rotation: torn segment + record-free successors
		break
	}
	for _, orphan := range scans[tailIdx+1:] {
		if err := os.Remove(filepath.Join(dir, segName(orphan.seq))); err != nil {
			return closeFail(fmt.Errorf("exchange: removing orphaned segment %d: %w", orphan.seq, err))
		}
	}
	scans = scans[:tailIdx+1]
	live = live[:tailIdx+1]
	for _, s := range scans {
		for ri, rec := range s.recs {
			if aerr := ex.applyRecord(rec); aerr != nil {
				return closeFail(fmt.Errorf("exchange: replaying wal segment %d record %d: %w", s.seq, ri, aerr))
			}
		}
	}

	// Reopen the effective tail for appending: truncate the torn bytes (if
	// any), park the write offset at the end of the last valid frame, and
	// flock the segment for the exchange's lifetime — pre-rotation binaries
	// lock exchange.wal itself rather than exchange.lock, and without this
	// a version-skewed pair of processes (rolling upgrade, rollback) could
	// append to the same segment concurrently, interleaving frames that
	// read as corruption on the next replay.
	tailScan := scans[len(scans)-1]
	tailValid := tailScan.valid
	fresh := tailScan.size == 0 && tailValid == 0
	tail, serr := os.OpenFile(filepath.Join(dir, segName(tailScan.seq)), os.O_RDWR, 0o644)
	if serr == nil {
		if tailScan.size > tailValid {
			// Cuts torn garbage AND preallocated zero-fill alike; a
			// crash-reopened tail runs unpreallocated until its next
			// rotation (re-extending it here would make recovered file
			// sizes lie about logged bytes for the segment's whole life).
			serr = tail.Truncate(tailValid)
		}
		if serr == nil && fresh {
			// A brand-new tail (fresh dir, or a post-cut segment that was
			// never written) gets the full preallocation, like every
			// segment Compact creates.
			preallocate(tail, walPreallocBytes(opts))
		}
		if serr == nil {
			_, serr = tail.Seek(tailValid, io.SeekStart)
		}
		if serr == nil {
			serr = syscall.Flock(int(tail.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		}
		if serr != nil {
			tail.Close() //nolint:errcheck // already failing
		}
	}
	if serr != nil {
		return closeFail(fmt.Errorf("exchange: preparing wal segment %d: %w", tailScan.seq, serr))
	}
	ex.finishReplay()

	threshold := opts.SnapshotBytes
	if threshold == 0 {
		threshold = defaultSnapshotBytes
	}
	ex.walSeq = live[len(live)-1]
	ex.walFloor = live[0]
	// Seed the WAL gauges from the scan: every live segment counts, the
	// sealed ones (all but the tail) by their valid bytes (size would
	// overcount a zero-filled preallocated tail) — the active tail's
	// valid prefix is the persister's starting size below.
	ex.walSegs.Store(int64(len(live)))
	sealed := int64(0)
	for _, s := range scans[:len(scans)-1] {
		sealed += s.valid
	}
	ex.walSealedBytes.Store(sealed)
	ex.compactCh = make(chan struct{}, 1)
	ex.compactDone = make(chan struct{})
	ex.wal = newPersister(tail, ex.walSeq, tailValid, opts.SyncInterval, opts.Commit == CommitAdaptive, threshold, func() {
		select {
		case ex.compactCh <- struct{}{}:
		default:
		}
	}, ex.walFailure)
	go ex.compactLoop()
	// Start the bid windows only now: a loop closing rounds mid-replay would
	// interleave fresh draws with the reconstruction of old ones.
	ex.mu.Lock()
	for _, j := range ex.table.Load().jobs {
		if j.spec.BidWindow > 0 && !j.closed.Load() {
			j.loopDone = make(chan struct{})
			go j.loop()
		}
	}
	ex.mu.Unlock()
	return ex, nil
}

// compactLoop runs background compaction for a durable exchange: the
// writer's size trigger and (when configured) the periodic interval both
// land here. Failures are counted in the metrics snapshot and retried on
// the next trigger; they never poison the log itself.
func (ex *Exchange) compactLoop() {
	defer close(ex.compactDone)
	var tick <-chan time.Time
	if ex.opts.SnapshotInterval > 0 {
		t := time.NewTicker(ex.opts.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ex.ctx.Done():
			return
		case <-ex.compactCh:
		case <-tick:
		}
		ex.Compact() //nolint:errcheck // counted in metrics; next trigger retries
	}
}

// applyRecord replays one log record into the (still private) exchange.
// Replay is single-threaded, before any client can reach the exchange, so
// it touches job state without locks.
func (ex *Exchange) applyRecord(rec walRecord) error {
	switch rec.Kind {
	case recJobCreated:
		if rec.Job == nil {
			return errors.New("job record without payload")
		}
		spec, err := rec.Job.spec()
		if err != nil {
			return err
		}
		j, err := newJob(ex, spec.ID, spec)
		if err != nil {
			return err
		}
		if _, dup := ex.table.Load().jobs[spec.ID]; dup {
			return fmt.Errorf("job %q created twice", spec.ID)
		}
		ex.publishJobs(func(jobs map[string]*Job) { jobs[spec.ID] = j })
		ex.metrics.jobsCreated.Add(1)
	case recRound:
		if rec.Round == nil {
			return errors.New("round record without payload")
		}
		j, ok := ex.table.Load().jobs[rec.Round.Job]
		if !ok {
			return fmt.Errorf("round for unknown job %q", rec.Round.Job)
		}
		j.restoreRound(rec.Round.outcome(j.id))
		j.src.fastForwardTo(rec.Round.Draws)
		j.auct.Resume(rec.Round.Round)
		for _, id := range rec.Round.Bidders {
			info, _ := ex.reg.Register(id, "")
			info.bids.Add(1)
		}
	case recJobClosed:
		j, ok := ex.table.Load().jobs[rec.ID]
		if !ok {
			return fmt.Errorf("close for unknown job %q", rec.ID)
		}
		j.closed.Store(true)
	case recJobRemoved:
		if _, ok := ex.table.Load().jobs[rec.ID]; !ok {
			return fmt.Errorf("removal of unknown job %q", rec.ID)
		}
		ex.publishJobs(func(jobs map[string]*Job) { delete(jobs, rec.ID) })
	case recNode:
		if rec.Node == nil {
			return errors.New("node record without payload")
		}
		ex.reg.Register(rec.Node.ID, rec.Node.Meta)
	case recNodeBan:
		if rec.Node == nil {
			return errors.New("ban record without payload")
		}
		ex.reg.Register(rec.Node.ID, rec.Node.Meta)
		ex.reg.Blacklist(rec.Node.ID)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// finishReplay settles derived state the log does not spell out: a job
// whose last persisted round hit MaxRounds crashed between its round record
// and its close record, so the close is reconstructed here; and every job's
// intake shards are aligned to its replayed collecting round.
func (ex *Exchange) finishReplay() {
	for _, j := range ex.table.Load().jobs {
		if !j.closed.Load() && j.spec.MaxRounds > 0 && j.round > j.spec.MaxRounds {
			j.closed.Store(true)
		}
		j.intake.setRound(j.round)
	}
}

// spec reconstructs the JobSpec (rule included) of a job record.
func (w *walJob) spec() (JobSpec, error) {
	rule, err := w.Rule.Build()
	if err != nil {
		return JobSpec{}, err
	}
	spec := JobSpec{
		ID: w.ID,
		Auction: auction.Config{
			Rule:    rule,
			K:       w.K,
			Payment: auction.PaymentRule(w.Payment),
			Psi:     w.Psi,
		},
		Seed:         w.Seed,
		BidWindow:    time.Duration(w.BidWindowNS),
		MaxRounds:    w.MaxRounds,
		MinBids:      w.MinBids,
		KeepOutcomes: w.KeepOutcomes,
		Equilibrium:  w.Equilibrium,
	}
	spec.setDefaults()
	return spec, nil
}

// walJobFromSpec serializes a JobSpec for a job record or a snapshot. An
// unserializable rule is refused (CreateJob rejects such jobs up front on a
// durable exchange, so this never fires for hosted jobs).
func walJobFromSpec(spec JobSpec) (walJob, error) {
	ruleSpec, err := transport.SpecForRule(spec.Auction.Rule)
	if err != nil {
		return walJob{}, err
	}
	return walJob{
		ID:           spec.ID,
		Rule:         ruleSpec,
		K:            spec.Auction.K,
		Payment:      int(spec.Auction.Payment),
		Psi:          spec.Auction.Psi,
		Seed:         spec.Seed,
		BidWindowNS:  int64(spec.BidWindow),
		MaxRounds:    spec.MaxRounds,
		MinBids:      spec.MinBids,
		KeepOutcomes: spec.KeepOutcomes,
		Equilibrium:  spec.Equilibrium,
	}, nil
}

// outcome reconstructs the RoundOutcome of a round record. Failed rounds
// keep a zero Outcome, exactly as closeRound published them.
func (w *walRound) outcome(jobID string) RoundOutcome {
	ro := RoundOutcome{
		JobID:   jobID,
		Round:   w.Round,
		NumBids: w.NumBids,
		Latency: time.Duration(w.LatencyNS),
	}
	if w.Err != "" {
		ro.Err = errors.New(w.Err)
		return ro
	}
	winners := make([]auction.Winner, len(w.Winners))
	for i, win := range w.Winners {
		winners[i] = auction.Winner{
			Bid: auction.Bid{
				NodeID:    win.NodeID,
				Qualities: win.Qualities,
				Payment:   win.BidPayment,
			},
			Score:   win.Score,
			Payment: win.Payment,
		}
	}
	if w.Winners == nil {
		winners = nil // ψ-FMore's zero-eligible outcome has nil Winners
	}
	ro.Outcome = auction.Outcome{
		Winners:          winners,
		Scores:           w.Scores,
		AggregatorProfit: w.Profit,
	}
	return ro
}

// fillWalRound populates one round record from a completed round. winners
// is an optional reusable buffer for the winner slice (the hot logRound
// path passes the job's scratch; the snapshot path passes nil and lets it
// allocate).
func fillWalRound(rec *walRound, ro RoundOutcome, bidders []int, draws int64) []walWinner {
	prev := rec.Winners
	*rec = walRound{
		Job:       ro.JobID,
		Round:     ro.Round,
		NumBids:   ro.NumBids,
		Bidders:   bidders,
		Draws:     draws,
		LatencyNS: int64(ro.Latency),
	}
	if ro.Err != nil {
		rec.Err = ro.Err.Error()
		return prev
	}
	rec.Scores = ro.Outcome.Scores
	rec.Profit = ro.Outcome.AggregatorProfit
	if ro.Outcome.Winners != nil {
		ws := prev[:0]
		for _, win := range ro.Outcome.Winners {
			ws = append(ws, walWinner{
				NodeID:     win.Bid.NodeID,
				Qualities:  win.Bid.Qualities,
				BidPayment: win.Bid.Payment,
				Score:      win.Score,
				Payment:    win.Payment,
			})
		}
		rec.Winners = ws
		return ws
	}
	return prev
}

// --- record hooks -----------------------------------------------------------
//
// Every mutation the exchange must survive goes through one of these. They
// no-op on an in-memory exchange (New); on a persistent one (Open) they
// enqueue a record for the writer goroutine, so none of them waits on disk.

func (ex *Exchange) logJobCreated(spec JobSpec) error {
	if ex.wal == nil {
		return nil
	}
	wj, err := walJobFromSpec(spec)
	if err != nil {
		// An unserializable rule cannot be recovered; refuse the job up
		// front rather than silently dropping it from the log.
		return fmt.Errorf("exchange: job %q is not persistable: %w", spec.ID, err)
	}
	ex.wal.append(walRecord{Kind: recJobCreated, Job: &wj})
	return nil
}

// logRound appends one round record built in the caller's scratch (rec and
// winners are reused across rounds — safe because append encodes the frame
// before returning; see persister.append).
func (ex *Exchange) logRound(rec *walRound, winners *[]walWinner, ro RoundOutcome, bidders []int, draws int64) {
	if ex.wal == nil {
		return
	}
	rec.Winners = *winners
	*winners = fillWalRound(rec, ro, bidders, draws)
	ex.wal.append(walRecord{Kind: recRound, Round: rec})
}

func (ex *Exchange) logJobClosed(id string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recJobClosed, ID: id})
}

func (ex *Exchange) logJobRemoved(id string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recJobRemoved, ID: id})
}

func (ex *Exchange) logNode(id int, meta string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recNode, Node: &walNode{ID: id, Meta: meta}})
}

func (ex *Exchange) logNodeBan(id int) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recNodeBan, Node: &walNode{ID: id}})
}

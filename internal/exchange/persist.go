package exchange

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"fmore/internal/auction"
	"fmore/internal/transport"
)

// walFileName is the write-ahead outcome log inside an exchange data dir.
const walFileName = "exchange.wal"

// maxWalRecord bounds one record's payload. It exists to keep a corrupted
// length prefix from triggering an enormous allocation during replay; real
// records (even a round with 10⁵ bidders) stay far below it.
const maxWalRecord = 64 << 20

// walBuffer is the appender channel depth. Appends never wait for disk;
// they only block if this many records are already queued behind a slow
// device, which bounds memory instead of growing an unbounded queue.
const walBuffer = 1024

// defaultSyncDelay is the group-commit window: after writing a batch the
// writer keeps collecting records for up to this long before the fsync, so
// a storm of round closes shares one disk flush instead of paying one
// each. (Back-to-back fsyncs are not just slow — each blocking syscall
// also steals the writer's scheduler slot, which on small machines stalls
// the scoring goroutines too.) A crash can lose at most this window plus
// one fsync of acknowledged-but-unflushed records, the standard contract
// of an asynchronous WAL; Sync bypasses the wait entirely.
const defaultSyncDelay = 2 * time.Millisecond

// Record kinds of the write-ahead log.
const (
	recJobCreated = "job"     // a job was created (full spec)
	recRound      = "round"   // a round completed (outcome verbatim)
	recJobClosed  = "closed"  // a job finished (MaxRounds or explicit Close)
	recJobRemoved = "removed" // a job was evicted with RemoveJob
	recNode       = "node"    // a node registered (or its meta changed)
	recNodeBan    = "ban"     // a node was blacklisted
)

// walRecord is the union payload of one log record; Kind selects which
// field is populated.
type walRecord struct {
	Kind  string    `json:"k"`
	Job   *walJob   `json:"job,omitempty"`
	Round *walRound `json:"round,omitempty"`
	Node  *walNode  `json:"node,omitempty"`
	// ID names the job of a closed/removed record.
	ID string `json:"id,omitempty"`
}

// walJob is a serialized JobSpec. The scoring rule travels as the wire-form
// transport.RuleSpec, the same encoding the HTTP front end accepts.
type walJob struct {
	ID           string             `json:"id"`
	Rule         transport.RuleSpec `json:"rule"`
	K            int                `json:"k"`
	Payment      int                `json:"payment"`
	Psi          float64            `json:"psi"`
	Seed         int64              `json:"seed"`
	BidWindowNS  int64              `json:"bid_window_ns,omitempty"`
	MaxRounds    int                `json:"max_rounds,omitempty"`
	MinBids      int                `json:"min_bids"`
	KeepOutcomes int                `json:"keep_outcomes"`
	// Equilibrium is the optional bidder-side game description; it is
	// already a JSON wire form, so it persists verbatim. Absent on records
	// written before the strategy endpoint existed.
	Equilibrium *transport.EquilibriumSpec `json:"eq,omitempty"`
}

// walWinner is one selected bid of a persisted outcome.
type walWinner struct {
	NodeID     int       `json:"n"`
	Qualities  []float64 `json:"q"`
	BidPayment float64   `json:"bp"`
	Score      float64   `json:"s"`
	Payment    float64   `json:"p"`
}

// walRound is one completed round, stored verbatim so a replayed exchange
// serves byte-identical outcome responses. Draws is the job's cumulative
// rng-source step count after this round: replay fast-forwards the seeded
// source by exactly that many steps, so post-recovery rounds draw the same
// tiebreaks (and ψ-admissions) the uncrashed process would have drawn.
type walRound struct {
	Job     string `json:"job"`
	Round   int    `json:"r"`
	NumBids int    `json:"nb"`
	// Bidders lists the round's node IDs (canonical ascending order); replay
	// uses it to restore per-node accepted-bid counters.
	Bidders   []int       `json:"bidders,omitempty"`
	Draws     int64       `json:"draws"`
	LatencyNS int64       `json:"lat"`
	Err       string      `json:"err,omitempty"`
	Winners   []walWinner `json:"w"`
	Scores    []float64   `json:"sc"`
	Profit    float64     `json:"profit"`
}

// walNode is a registry entry.
type walNode struct {
	ID   int    `json:"id"`
	Meta string `json:"meta,omitempty"`
}

// persister owns the log file and its dedicated writer goroutine. Appends
// are a channel send (never a disk wait); the writer drains whatever is
// queued, writes it, and fsyncs once per batch, so a burst of round closes
// costs one fsync, off every hot path.
type persister struct {
	f         *os.File
	syncDelay time.Duration

	// bufs recycles frame buffers between the appenders (which encode into
	// one) and the writer goroutine (which returns it after the disk write).
	// Record encoding used to be the durable close path's largest
	// allocation; pooling it keeps the steady state allocation-free.
	bufs sync.Pool

	mu     sync.Mutex // guards ch against send-after-close, and err
	closed bool
	err    error

	ch   chan persistMsg
	done chan struct{}
}

// persistMsg is either a framed record to append, a flush barrier, or both.
type persistMsg struct {
	rec   *frameBuf
	flush chan struct{}
}

// frameBuf is one pooled frame: an 8-byte length+CRC header followed by the
// JSON payload, built in place by frameRecord. The bound json.Encoder
// writes straight into the buffer, so one encode costs zero steady-state
// allocations once the pool is warm.
type frameBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func newFrameBuf() *frameBuf {
	fb := &frameBuf{}
	fb.enc = json.NewEncoder(&fb.buf)
	return fb
}

func newPersister(f *os.File, syncDelay time.Duration) *persister {
	if syncDelay <= 0 {
		syncDelay = defaultSyncDelay
	}
	p := &persister{
		f:         f,
		syncDelay: syncDelay,
		ch:        make(chan persistMsg, walBuffer),
		done:      make(chan struct{}),
	}
	p.bufs.New = func() any { return newFrameBuf() }
	go p.run()
	return p
}

// append frames rec into a pooled buffer and queues it for the writer,
// which returns the buffer to the pool once the bytes are on their way to
// disk. Errors (encode or disk) are sticky and surfaced through Err/Sync;
// the exchange keeps serving from memory either way, mirroring how a
// database treats a failing WAL device.
func (p *persister) append(rec walRecord) {
	fb := p.bufs.Get().(*frameBuf)
	err := frameRecord(fb, rec)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.bufs.Put(fb)
		if p.err == nil {
			p.err = err
		}
		return
	}
	if p.closed {
		p.bufs.Put(fb)
		return
	}
	// The send happens under mu so close() can never close the channel
	// between the closed-check and the send.
	p.ch <- persistMsg{rec: fb}
}

// sync blocks until every record appended so far is on disk and returns the
// first sticky error.
func (p *persister) sync() error {
	flushed := make(chan struct{})
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.ch <- persistMsg{flush: flushed}
	p.mu.Unlock()
	<-flushed
	return p.Err()
}

// Err returns the first append, write or fsync error, if any.
func (p *persister) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *persister) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// close drains the queue, fsyncs and closes the file. Idempotent.
func (p *persister) close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return p.Err()
	}
	p.closed = true
	close(p.ch)
	p.mu.Unlock()
	<-p.done
	if err := p.f.Close(); err != nil {
		p.fail(err)
	}
	return p.Err()
}

// run is the writer goroutine: batch every queued record, write, group
// commit (coalesce up to syncDelay of further records), fsync once, release
// flush waiters. It never exits before the channel closes — on a disk error
// it keeps draining (and discarding) so appenders can never wedge on a full
// channel.
func (p *persister) run() {
	defer close(p.done)
	var flushes []chan struct{}
	dirty := false
	write := func(msg persistMsg) {
		if msg.rec != nil {
			if p.Err() == nil {
				if _, err := p.f.Write(msg.rec.buf.Bytes()); err != nil {
					p.fail(err)
				} else {
					dirty = true
				}
			}
			p.bufs.Put(msg.rec)
		}
		if msg.flush != nil {
			flushes = append(flushes, msg.flush)
		}
	}
	commit := func() {
		if dirty {
			if err := p.f.Sync(); err != nil {
				p.fail(err)
			}
			dirty = false
		}
		for _, c := range flushes {
			close(c)
		}
		flushes = flushes[:0]
	}
	for msg := range p.ch {
		write(msg)
		// Group commit: hold the fsync for up to syncDelay while more
		// records trickle in — unless a Sync caller is already waiting.
		if len(flushes) == 0 {
			timer := time.NewTimer(p.syncDelay)
		coalesce:
			for {
				select {
				case m, ok := <-p.ch:
					if !ok {
						break coalesce // outer range exits next; commit below
					}
					write(m)
					if len(flushes) > 0 {
						break coalesce // a Sync arrived: flush now
					}
				case <-timer.C:
					break coalesce
				}
			}
			timer.Stop()
		}
		commit()
	}
	commit()
}

// frameRecord encodes rec into fb as a length-prefixed, CRC-guarded frame:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload JSON
//
// The header is written as a placeholder first and patched once the payload
// size is known, so the whole frame lands in one reused buffer with no
// intermediate marshal allocation. The bound encoder produces exactly
// json.Marshal's bytes plus a trailing newline, which is truncated to keep
// the on-disk format byte-identical to pre-pooling logs.
func frameRecord(fb *frameBuf, rec walRecord) error {
	var pad [8]byte
	fb.buf.Reset()
	fb.buf.Write(pad[:]) // header placeholder; Write to a Buffer cannot fail
	if err := fb.enc.Encode(rec); err != nil {
		return fmt.Errorf("exchange: encoding wal record: %w", err)
	}
	fb.buf.Truncate(fb.buf.Len() - 1) // drop the encoder's trailing newline
	frame := fb.buf.Bytes()
	payload := frame[8:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return nil
}

// scanWAL reads records until EOF or the first torn/corrupt frame and
// returns them with the byte offset of the last valid frame end. Everything
// past that offset is untrustworthy (a crash mid-append), so callers
// truncate there.
func scanWAL(f *os.File) (recs []walRecord, valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, valid, nil // EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxWalRecord {
			return recs, valid, nil // corrupt length
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, valid, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, valid, nil // corrupt payload
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, nil // CRC passed but undecodable: treat as tail
		}
		recs = append(recs, rec)
		valid += 8 + int64(n)
	}
}

// Open starts an exchange backed by a write-ahead outcome log in dir
// (created if absent). Every prior record is replayed first: jobs come back
// with their specs, retained outcome history, contiguous round numbering
// and reconstructed rng position; the registry and blacklist are restored;
// a torn tail from a crash mid-append is truncated. Timer-mode jobs resume
// their bid windows once replay completes.
func Open(dir string, opts Options) (*Exchange, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exchange: creating data dir: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exchange: opening wal: %w", err)
	}
	// Exclusive advisory lock for the exchange's lifetime (released when
	// the fd closes): two processes appending to one log would interleave
	// frames and read as corruption — exactly the history loss the log
	// exists to prevent. Fail fast instead.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("exchange: wal %s is locked by another process: %w", path, err)
	}
	recs, valid, err := scanWAL(f)
	if err == nil {
		var size int64
		if st, serr := f.Stat(); serr != nil {
			err = serr
		} else {
			size = st.Size()
		}
		if err == nil && size > valid {
			err = f.Truncate(valid)
		}
	}
	if err == nil {
		_, err = f.Seek(valid, io.SeekStart)
	}
	if err != nil {
		f.Close() //nolint:errcheck // already failing
		return nil, fmt.Errorf("exchange: preparing wal: %w", err)
	}

	ex := New(opts)
	for i, rec := range recs {
		if aerr := ex.applyRecord(rec); aerr != nil {
			ex.Close()
			f.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("exchange: replaying wal record %d: %w", i, aerr)
		}
	}
	ex.finishReplay()

	ex.wal = newPersister(f, opts.SyncInterval)
	// Start the bid windows only now: a loop closing rounds mid-replay would
	// interleave fresh draws with the reconstruction of old ones.
	ex.mu.Lock()
	for _, j := range ex.jobs {
		if j.spec.BidWindow > 0 && !j.closed {
			j.loopDone = make(chan struct{})
			go j.loop()
		}
	}
	ex.mu.Unlock()
	return ex, nil
}

// applyRecord replays one log record into the (still private) exchange.
// Replay is single-threaded, before any client can reach the exchange, so
// it touches job state without locks.
func (ex *Exchange) applyRecord(rec walRecord) error {
	switch rec.Kind {
	case recJobCreated:
		if rec.Job == nil {
			return errors.New("job record without payload")
		}
		spec, err := rec.Job.spec()
		if err != nil {
			return err
		}
		j, err := newJob(ex, spec.ID, spec)
		if err != nil {
			return err
		}
		if _, dup := ex.jobs[spec.ID]; dup {
			return fmt.Errorf("job %q created twice", spec.ID)
		}
		ex.jobs[spec.ID] = j
		ex.metrics.jobsCreated.Add(1)
	case recRound:
		if rec.Round == nil {
			return errors.New("round record without payload")
		}
		j, ok := ex.jobs[rec.Round.Job]
		if !ok {
			return fmt.Errorf("round for unknown job %q", rec.Round.Job)
		}
		j.restoreRound(rec.Round.outcome(j.id))
		j.src.fastForwardTo(rec.Round.Draws)
		j.auct.Resume(rec.Round.Round)
		for _, id := range rec.Round.Bidders {
			info, _ := ex.reg.Register(id, "")
			info.bids.Add(1)
		}
	case recJobClosed:
		j, ok := ex.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("close for unknown job %q", rec.ID)
		}
		if !j.closed {
			j.closed = true
			ex.metrics.jobsClosed.Add(1)
		}
	case recJobRemoved:
		j, ok := ex.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("removal of unknown job %q", rec.ID)
		}
		if !j.closed {
			ex.metrics.jobsClosed.Add(1)
		}
		delete(ex.jobs, rec.ID)
	case recNode:
		if rec.Node == nil {
			return errors.New("node record without payload")
		}
		ex.reg.Register(rec.Node.ID, rec.Node.Meta)
	case recNodeBan:
		if rec.Node == nil {
			return errors.New("ban record without payload")
		}
		ex.reg.Register(rec.Node.ID, rec.Node.Meta)
		ex.reg.Blacklist(rec.Node.ID)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return nil
}

// finishReplay settles derived state the log does not spell out: a job
// whose last persisted round hit MaxRounds crashed between its round record
// and its close record, so the close is reconstructed here.
func (ex *Exchange) finishReplay() {
	for _, j := range ex.jobs {
		if !j.closed && j.spec.MaxRounds > 0 && j.round > j.spec.MaxRounds {
			j.closed = true
			ex.metrics.jobsClosed.Add(1)
		}
	}
}

// spec reconstructs the JobSpec (rule included) of a job record.
func (w *walJob) spec() (JobSpec, error) {
	rule, err := w.Rule.Build()
	if err != nil {
		return JobSpec{}, err
	}
	spec := JobSpec{
		ID: w.ID,
		Auction: auction.Config{
			Rule:    rule,
			K:       w.K,
			Payment: auction.PaymentRule(w.Payment),
			Psi:     w.Psi,
		},
		Seed:         w.Seed,
		BidWindow:    time.Duration(w.BidWindowNS),
		MaxRounds:    w.MaxRounds,
		MinBids:      w.MinBids,
		KeepOutcomes: w.KeepOutcomes,
		Equilibrium:  w.Equilibrium,
	}
	spec.setDefaults()
	return spec, nil
}

// outcome reconstructs the RoundOutcome of a round record. Failed rounds
// keep a zero Outcome, exactly as closeRound published them.
func (w *walRound) outcome(jobID string) RoundOutcome {
	ro := RoundOutcome{
		JobID:   jobID,
		Round:   w.Round,
		NumBids: w.NumBids,
		Latency: time.Duration(w.LatencyNS),
	}
	if w.Err != "" {
		ro.Err = errors.New(w.Err)
		return ro
	}
	winners := make([]auction.Winner, len(w.Winners))
	for i, win := range w.Winners {
		winners[i] = auction.Winner{
			Bid: auction.Bid{
				NodeID:    win.NodeID,
				Qualities: win.Qualities,
				Payment:   win.BidPayment,
			},
			Score:   win.Score,
			Payment: win.Payment,
		}
	}
	if w.Winners == nil {
		winners = nil // ψ-FMore's zero-eligible outcome has nil Winners
	}
	ro.Outcome = auction.Outcome{
		Winners:          winners,
		Scores:           w.Scores,
		AggregatorProfit: w.Profit,
	}
	return ro
}

// --- record hooks -----------------------------------------------------------
//
// Every mutation the exchange must survive goes through one of these. They
// no-op on an in-memory exchange (New); on a persistent one (Open) they
// enqueue a record for the writer goroutine, so none of them waits on disk.

func (ex *Exchange) logJobCreated(spec JobSpec) error {
	if ex.wal == nil {
		return nil
	}
	ruleSpec, err := transport.SpecForRule(spec.Auction.Rule)
	if err != nil {
		// An unserializable rule cannot be recovered; refuse the job up
		// front rather than silently dropping it from the log.
		return fmt.Errorf("exchange: job %q is not persistable: %w", spec.ID, err)
	}
	ex.wal.append(walRecord{Kind: recJobCreated, Job: &walJob{
		ID:           spec.ID,
		Rule:         ruleSpec,
		K:            spec.Auction.K,
		Payment:      int(spec.Auction.Payment),
		Psi:          spec.Auction.Psi,
		Seed:         spec.Seed,
		BidWindowNS:  int64(spec.BidWindow),
		MaxRounds:    spec.MaxRounds,
		MinBids:      spec.MinBids,
		KeepOutcomes: spec.KeepOutcomes,
		Equilibrium:  spec.Equilibrium,
	}})
	return nil
}

func (ex *Exchange) logRound(ro RoundOutcome, bidders []int, draws int64) {
	if ex.wal == nil {
		return
	}
	rec := &walRound{
		Job:       ro.JobID,
		Round:     ro.Round,
		NumBids:   ro.NumBids,
		Bidders:   bidders,
		Draws:     draws,
		LatencyNS: int64(ro.Latency),
	}
	if ro.Err != nil {
		rec.Err = ro.Err.Error()
	} else {
		rec.Scores = ro.Outcome.Scores
		rec.Profit = ro.Outcome.AggregatorProfit
		if ro.Outcome.Winners != nil {
			rec.Winners = make([]walWinner, len(ro.Outcome.Winners))
			for i, win := range ro.Outcome.Winners {
				rec.Winners[i] = walWinner{
					NodeID:     win.Bid.NodeID,
					Qualities:  win.Bid.Qualities,
					BidPayment: win.Bid.Payment,
					Score:      win.Score,
					Payment:    win.Payment,
				}
			}
		}
	}
	ex.wal.append(walRecord{Kind: recRound, Round: rec})
}

func (ex *Exchange) logJobClosed(id string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recJobClosed, ID: id})
}

func (ex *Exchange) logJobRemoved(id string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recJobRemoved, ID: id})
}

func (ex *Exchange) logNode(id int, meta string) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recNode, Node: &walNode{ID: id, Meta: meta}})
}

func (ex *Exchange) logNodeBan(id int) {
	if ex.wal == nil {
		return
	}
	ex.wal.append(walRecord{Kind: recNodeBan, Node: &walNode{ID: id}})
}

package exchange

import (
	"fmt"

	"fmore/internal/partition"
)

// WrongPartitionError reports a job-scoped request that reached a replica
// whose cluster map places the job on a different replica. The HTTP layer
// renders it as 421 Misdirected Request with code wrong_partition and the
// owning replica's base URL in the envelope, which is what lets the router
// and the SDK converge in a single retry.
type WrongPartitionError struct {
	// JobID is the misrouted job.
	JobID string
	// Partition and ReplicaURL identify the owner under the replica's map.
	Partition  string
	ReplicaURL string
	// MapVersion is the version of the map that produced the verdict, so a
	// client holding a newer map can tell a stale rejection from a fresh one.
	MapVersion int64
}

func (e *WrongPartitionError) Error() string {
	return fmt.Sprintf("exchange: job %q belongs to partition %s at %s (map v%d)",
		e.JobID, e.Partition, e.ReplicaURL, e.MapVersion)
}

// Partition returns the replica's partition assignment (nil when the
// exchange runs unpartitioned).
func (ex *Exchange) Partition() *partition.Assignment { return ex.part }

// PartitionMap returns the replica's current cluster map (nil when
// unpartitioned).
func (ex *Exchange) PartitionMap() *partition.Map {
	if ex.part == nil {
		return nil
	}
	return ex.part.Map.Load()
}

// missingJob classifies a job the exchange does not host. On a partitioned
// replica whose map places the job elsewhere it is a routing miss —
// *WrongPartitionError carrying the owner — so the router and SDK can
// re-aim; everything else is a plain unknown_job. Hosted jobs never reach
// this path, which keeps the partition check entirely off the hot path: a
// correctly routed request costs zero extra work, and only lookup misses
// pay the one atomic map-handle load plus the rendezvous hash.
func (ex *Exchange) missingJob(jobID string) error {
	if p := ex.part; p != nil {
		if m := p.Map.Load(); m != nil {
			if owner, ok := m.Owner(jobID); ok && owner.Partition != p.Local {
				ex.metrics.wrongPartition.Add(1)
				return &WrongPartitionError{
					JobID:      jobID,
					Partition:  owner.Partition,
					ReplicaURL: owner.URL,
					MapVersion: m.Version,
				}
			}
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
}

// checkCreateOwnership enforces placement at creation time: an explicit job
// ID that rendezvous-hashes to another partition is refused with the owner
// in the error, before any state is touched. Creation is the one operation
// that is ownership-strict rather than host-based — it decides where the
// job's WAL records and outcome history will live.
func (ex *Exchange) checkCreateOwnership(jobID string) error {
	p := ex.part
	if p == nil || jobID == "" {
		return nil
	}
	m := p.Map.Load()
	if m == nil {
		return nil
	}
	if owner, ok := m.Owner(jobID); ok && owner.Partition != p.Local {
		ex.metrics.wrongPartition.Add(1)
		return &WrongPartitionError{
			JobID:      jobID,
			Partition:  owner.Partition,
			ReplicaURL: owner.URL,
			MapVersion: m.Version,
		}
	}
	return nil
}

package exchange

import (
	"context"
	"sync"
	"testing"
	"time"

	"fmore/internal/auction"
)

// collectSink buffers every delivered event (copying out of the pump's
// reused scratch) and sums the reported drops.
type collectSink struct {
	mu      sync.Mutex
	events  []TapEvent
	dropped uint64
}

func (s *collectSink) ConsumeTap(events []TapEvent, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, events...)
	s.dropped += dropped
}

func (s *collectSink) snapshot() ([]TapEvent, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TapEvent(nil), s.events...), s.dropped
}

// wedgedSink blocks forever inside its first ConsumeTap call — the
// pathological slow consumer the never-block rule is about.
type wedgedSink struct {
	entered chan struct{}
	once    sync.Once
	release chan struct{}
}

func (s *wedgedSink) ConsumeTap([]TapEvent, uint64) {
	s.once.Do(func() { close(s.entered) })
	<-s.release
}

func drainFirehose(t *testing.T, f *Firehose) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestFirehoseTapsAuctionEvents checks the event schema end to end: every
// accepted bid, every winner and every round close surface through an
// attached sink with the fields the aggregation layer depends on.
func TestFirehoseTapsAuctionEvents(t *testing.T) {
	const bidders = 8
	ex := New(Options{})
	defer ex.Close()

	sink := &collectSink{}
	detach := ex.Firehose().Attach(sink)
	defer detach()

	job, err := ex.CreateJob(JobSpec{ID: "tap-job", Auction: auction.Config{Rule: testRule(t, 0), K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	bids := testBids(0, 1, bidders)
	for _, b := range bids {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	ro, err := ex.CloseRound(job.ID())
	if err != nil {
		t.Fatal(err)
	}
	drainFirehose(t, ex.Firehose())

	events, dropped := sink.snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	var gotBids, gotWinners, gotRounds []TapEvent
	for _, ev := range events {
		if ev.Job != "tap-job" {
			t.Fatalf("event job = %q, want tap-job", ev.Job)
		}
		if ev.Round != 1 {
			t.Fatalf("event round = %d, want 1", ev.Round)
		}
		switch ev.Kind {
		case TapBidAccepted:
			gotBids = append(gotBids, ev)
		case TapWinner:
			gotWinners = append(gotWinners, ev)
		case TapRoundClosed:
			gotRounds = append(gotRounds, ev)
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
	if len(gotBids) != bidders {
		t.Fatalf("bid events = %d, want %d", len(gotBids), bidders)
	}
	for i, ev := range gotBids {
		if ev.Node != bids[i].NodeID || ev.Price != bids[i].Payment {
			t.Fatalf("bid event %d = node %d price %v, want node %d price %v",
				i, ev.Node, ev.Price, bids[i].NodeID, bids[i].Payment)
		}
	}
	if len(gotWinners) != len(ro.Outcome.Winners) {
		t.Fatalf("winner events = %d, want %d", len(gotWinners), len(ro.Outcome.Winners))
	}
	for i, ev := range gotWinners {
		w := ro.Outcome.Winners[i]
		if ev.Node != w.Bid.NodeID || ev.Payment != w.Payment || ev.Score != w.Score {
			t.Fatalf("winner event %d = %+v, want node %d payment %v score %v",
				i, ev, w.Bid.NodeID, w.Payment, w.Score)
		}
	}
	if len(gotRounds) != 1 {
		t.Fatalf("round events = %d, want 1", len(gotRounds))
	}
	rc := gotRounds[0]
	if rc.NumBids != bidders || rc.Winners != len(ro.Outcome.Winners) ||
		rc.Payment != ro.Outcome.TotalPayment() || rc.Profit != ro.Outcome.AggregatorProfit ||
		rc.Failed || rc.Latency <= 0 {
		t.Fatalf("round event = %+v, want bids=%d winners=%d payment=%v profit=%v failed=false latency>0",
			rc, bidders, len(ro.Outcome.Winners), ro.Outcome.TotalPayment(), ro.Outcome.AggregatorProfit)
	}

	if pub, drop := ex.Firehose().Stats(); pub != uint64(len(events)) || drop != 0 {
		t.Fatalf("Stats = (%d, %d), want (%d, 0)", pub, drop, len(events))
	}
	snap := ex.Metrics()
	if snap.FirehoseEvents != int64(len(events)) || snap.FirehoseDropped != 0 {
		t.Fatalf("snapshot firehose = (%d, %d), want (%d, 0)",
			snap.FirehoseEvents, snap.FirehoseDropped, len(events))
	}
}

// TestFirehoseAttachStartsAtLivePosition: a late sink sees only what is
// published after it attaches — the firehose is a tap, not a log.
func TestFirehoseAttachStartsAtLivePosition(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()

	// First sink turns recording on, then leaves.
	first := &collectSink{}
	detachFirst := ex.Firehose().Attach(first)

	job, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 1), K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBids(1, 1, 4) {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound(job.ID()); err != nil {
		t.Fatal(err)
	}
	drainFirehose(t, ex.Firehose())
	detachFirst()
	detachFirst() // idempotent

	late := &collectSink{}
	detach := ex.Firehose().Attach(late)
	defer detach()
	for _, b := range testBids(1, 2, 4) {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound(job.ID()); err != nil {
		t.Fatal(err)
	}
	drainFirehose(t, ex.Firehose())

	events, _ := late.snapshot()
	if len(events) == 0 {
		t.Fatal("late sink saw nothing")
	}
	for _, ev := range events {
		if ev.Round != 2 {
			t.Fatalf("late sink saw round-%d event %+v, want only round 2", ev.Round, ev)
		}
	}
}

// TestFirehoseWedgedSinkNeverBlocksProducers is the never-block acceptance
// test: with a sink permanently stuck inside ConsumeTap and a deliberately
// tiny ring, 64 bidders and repeated round closes must proceed unimpeded
// (any completion at all proves producers never wait on the sink — it is
// wedged for the whole test), the overrun must be counted as drops, and a
// healthy sink attached alongside must still receive the stream.
func TestFirehoseWedgedSinkNeverBlocksProducers(t *testing.T) {
	const (
		bidders = 64
		rounds  = 4
	)
	ex := New(Options{FirehoseRing: 64}) // minimum ring: overrun quickly
	defer ex.Close()

	wedged := &wedgedSink{entered: make(chan struct{}), release: make(chan struct{})}
	defer close(wedged.release)
	detachWedged := ex.Firehose().Attach(wedged)
	defer detachWedged()
	healthy := &collectSink{}
	detachHealthy := ex.Firehose().Attach(healthy)
	defer detachHealthy()

	job, err := ex.CreateJob(JobSpec{ID: "wedge", Auction: auction.Config{Rule: testRule(t, 2), K: 4}})
	if err != nil {
		t.Fatal(err)
	}

	// Ensure the wedged pump is truly inside ConsumeTap (not merely slow)
	// before the main workload, so overruns happen against a stuck cursor.
	// High node IDs keep these warm-up bids clear of the fleet below (the
	// round they enter stays open into the first loop iteration).
	for i, b := range testBids(2, 1, 4) {
		b.NodeID = 1000 + i
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	<-wedged.entered

	start := time.Now()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < bidders; i++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				b := testBids(2, round+2, bidders)[node]
				if _, err := ex.SubmitBid(job.ID(), b); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		if _, err := ex.CloseRound(job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	// Producers finished while the sink never returned; generous bound only
	// to catch a future regression into second-scale blocking.
	if elapsed > 30*time.Second {
		t.Fatalf("workload took %v with a wedged sink attached", elapsed)
	}

	// 64-slot ring, ~(64+4+1) events per round over 4+ rounds: the wedged
	// pump's cursor must have been lapped and the loss counted.
	_, dropped := ex.Firehose().Stats()
	if dropped == 0 {
		t.Fatal("wedged sink overran the ring but Stats reports no drops")
	}
	snap := ex.Metrics()
	if snap.FirehoseDropped == 0 {
		t.Fatal("snapshot reports no firehose drops")
	}
	if snap.RoundsTotal != rounds {
		t.Fatalf("rounds_total = %d, want %d", snap.RoundsTotal, rounds)
	}

	// Detaching the wedged sink freezes its loss into the exchange total
	// (monotone), and must not wait for the stuck ConsumeTap to return.
	before := snap.FirehoseDropped
	done := make(chan struct{})
	go func() { detachWedged(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("detach blocked on a wedged sink")
	}
	if after := ex.Metrics().FirehoseDropped; after < before {
		t.Fatalf("dropped total went backwards across detach: %d -> %d", before, after)
	}

	// The healthy sink shares no fate with the wedged one: it must have
	// seen every round close. (Drain only settles now that the wedged pump
	// is detached — it can never consume.)
	drainFirehose(t, ex.Firehose())
	events, _ := healthy.snapshot()
	closes := 0
	for _, ev := range events {
		if ev.Kind == TapRoundClosed {
			closes++
		}
	}
	if closes != rounds {
		t.Fatalf("healthy sink saw %d round closes, want %d", closes, rounds)
	}
}

// TestFirehoseUnobservedExchangeRecordsNothing: before any Attach the tap
// is off and Stats stay zero.
func TestFirehoseUnobservedExchangeRecordsNothing(t *testing.T) {
	ex := New(Options{})
	defer ex.Close()
	job, err := ex.CreateJob(JobSpec{Auction: auction.Config{Rule: testRule(t, 3), K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBids(3, 1, 4) {
		if _, err := ex.SubmitBid(job.ID(), b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound(job.ID()); err != nil {
		t.Fatal(err)
	}
	if pub, drop := ex.Firehose().Stats(); pub != 0 || drop != 0 {
		t.Fatalf("Stats = (%d, %d) on an unobserved exchange, want (0, 0)", pub, drop)
	}
}

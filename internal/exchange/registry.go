package exchange

import (
	"sync"
	"sync/atomic"

	"fmore/internal/admission"
)

// regShards is the stripe count of the registry. 64 stripes keep lock
// contention negligible even with every core registering or resolving
// bidders at once; the per-shard maps stay small enough to resize cheaply.
const regShards = 64

// NodeInfo is one registered edge node. The mutable fields are atomics so
// the hot bid-admission path (lookup → blacklist check → bid count) touches
// no lock beyond the shard's read lock.
type NodeInfo struct {
	// ID is the node's identifier, unique exchange-wide.
	ID int

	meta        atomic.Pointer[string]
	bids        atomic.Int64
	blacklisted atomic.Bool
	// admit is the node's private admission bucket, minted lazily on its
	// first admission-checked bid. Hanging it off the registry entry keeps
	// the hot path allocation-free (a pointer load) and bounds limiter
	// memory by the registry's own size — no separate keyed map to shard,
	// expire, or box int keys into.
	admit atomic.Pointer[admission.Bucket]
}

// admitBucket returns the node's private admission bucket, minting it on
// first use. Racing minters CAS and converge on one bucket; the loser's
// throwaway bucket was never observed, so token accounting stays exact.
// Returns nil (unlimited) when the controller has no node-level limit.
func (n *NodeInfo) admitBucket(c *admission.Controller) *admission.Bucket {
	if b := n.admit.Load(); b != nil {
		return b
	}
	b := c.NewNodeBucket()
	if b == nil {
		return nil
	}
	if n.admit.CompareAndSwap(nil, b) {
		return b
	}
	return n.admit.Load()
}

// Meta returns the node's opaque caller label (address, capability string,
// ...), empty if never set.
func (n *NodeInfo) Meta() string {
	if p := n.meta.Load(); p != nil {
		return *p
	}
	return ""
}

// Bids returns how many bids the node has had accepted.
func (n *NodeInfo) Bids() int64 { return n.bids.Load() }

// Blacklisted reports whether the node has been banned (contract breach).
func (n *NodeInfo) Blacklisted() bool { return n.blacklisted.Load() }

// Registry is the sharded node directory of the exchange. All methods are
// safe for concurrent use; reads take only a per-shard RLock and all
// per-node state updates are lock-free atomics.
type Registry struct {
	shards [regShards]regShard
	size   atomic.Int64
}

type regShard struct {
	mu    sync.RWMutex
	nodes map[int]*NodeInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].nodes = make(map[int]*NodeInfo)
	}
	return r
}

// shardFor spreads node IDs over the stripes with Fibonacci hashing, which
// distributes both sequential and strided ID schemes evenly.
func (r *Registry) shardFor(id int) *regShard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return &r.shards[h>>(64-6)] // top 6 bits: 64 shards
}

// Register adds the node if absent and returns its info record. created
// reports whether this call performed the registration. A non-empty meta
// always updates the record (last non-empty write wins), so a node that
// auto-registered through a bare bid can later be labeled via POST /nodes.
func (r *Registry) Register(id int, meta string) (info *NodeInfo, created bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	info = s.nodes[id]
	s.mu.RUnlock()
	if info == nil {
		s.mu.Lock()
		if info = s.nodes[id]; info == nil {
			info = &NodeInfo{ID: id}
			s.nodes[id] = info
			r.size.Add(1)
			created = true
		}
		s.mu.Unlock()
	}
	if meta != "" {
		info.meta.Store(&meta)
	}
	return info, created
}

// Lookup resolves a node without write intent.
func (r *Registry) Lookup(id int) (*NodeInfo, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	info, ok := s.nodes[id]
	s.mu.RUnlock()
	return info, ok
}

// Blacklist bans the node from all future rounds. It reports whether the
// node was registered.
func (r *Registry) Blacklist(id int) bool {
	info, ok := r.Lookup(id)
	if !ok {
		return false
	}
	info.blacklisted.Store(true)
	return true
}

// Len returns the registered-node count without taking any lock.
func (r *Registry) Len() int { return int(r.size.Load()) }

// restore reinstates a node exactly as a WAL snapshot captured it: meta,
// accepted-bid counter and ban flag. Replay-only — it runs single-threaded
// before the exchange is reachable, and tail records replayed afterwards
// (re-registrations, bans, per-round bid counts) layer on top of it.
func (r *Registry) restore(id int, meta string, bids int64, banned bool) {
	info, _ := r.Register(id, meta)
	info.bids.Store(bids)
	info.blacklisted.Store(banned)
}

// Range calls fn for every registered node until fn returns false. It holds
// one shard's read lock at a time, so concurrent registration in other
// shards proceeds unhindered.
func (r *Registry) Range(fn func(*NodeInfo) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, info := range s.nodes {
			if !fn(info) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

package exchange

import "fmore/internal/fault"

// Failpoints of the durability path. Each sits exactly where the real
// error would surface, so an injected EIO/ENOSPC/torn write exercises the
// identical handling code a failing disk would — sticky persister error,
// degraded mode, compaction abort-and-rearm. All are dormant (one atomic
// load, zero allocations) unless armed by a test, the chaos harness, or
// FMORE_FAILPOINTS (see internal/fault).
var (
	// fpWalWrite guards the writer's batch write syscall. Torn configs
	// model a short write: the allowed prefix reaches the file, then the
	// error sticks — the classic torn-tail crash shape.
	fpWalWrite = fault.New("wal/write")
	// fpWalFsync guards the group-commit fdatasync.
	fpWalFsync = fault.New("wal/fsync")
	// fpWalRotate guards the writer's segment switch (sealing the old
	// segment).
	fpWalRotate = fault.New("wal/rotate")
	// fpWalPrealloc guards new-segment preallocation in Compact; a firing
	// aborts the compaction (rearmed, not sticky) like a real ENOSPC.
	fpWalPrealloc = fault.New("wal/prealloc")
	// fpWalSnapshot guards the snapshot tmp+rename commit.
	fpWalSnapshot = fault.New("wal/snapshot")
)

package exchange

// Server-push round events. Each job fans its lifecycle transitions out to
// any number of subscribers; the HTTP front end exposes the stream as
// GET /v1/jobs/{id}/events (Server-Sent Events), which is how edge clients
// learn outcomes without long-polling.

// Event types of the per-job stream.
const (
	// EventRoundOpen announces that a round began collecting bids.
	EventRoundOpen = "round_open"
	// EventRoundClosed announces a completed round; Outcome carries the
	// result inline (or the round's error).
	EventRoundClosed = "round_closed"
	// EventJobClosed announces the job's end; the stream terminates after it.
	EventJobClosed = "job_closed"
)

// Event is one server-push notification of a job's lifecycle.
type Event struct {
	// Type is one of the Event* constants.
	Type string
	// Job and Round identify the transition (Round is zero for job_closed).
	Job   string
	Round int
	// Outcome is set on round_closed events. It owns its memory (the
	// publisher copies out of the job's pooled history before fan-out), so
	// subscribers may render or retain it at any pace. It must not be
	// mutated — every subscriber of the round shares the one copy.
	Outcome *RoundOutcome
}

// subBuffer is each subscriber's channel depth. A subscriber that falls this
// far behind is dropped (its channel closed) rather than blocking the round
// pipeline; the retained outcome history makes a reconnect with
// Last-Event-ID lossless, so dropping is safe.
const subBuffer = 64

// Subscription is one live event feed of a job.
type Subscription struct {
	// C delivers events in order. It is closed when the subscriber fell too
	// far behind (reconnect with the last seen round to resume), or after
	// Unsubscribe.
	C   chan Event
	job *Job
}

// Subscribe atomically snapshots the rounds the caller missed and registers
// a live subscriber, so no round can fall between replay and stream: every
// retained outcome with a round number strictly greater than afterRound is
// returned in past, and all later transitions arrive on the subscription
// channel. cur is the currently collecting round. On a closed job the
// subscription is nil — past is all the caller will ever get.
//
// Rounds older than the job's retained history (KeepOutcomes) cannot be
// replayed; resumption is lossless within the retention window.
//
// The returned outcomes own their memory: the caller renders them outside
// the job lock, which may be KeepOutcomes round closes later — the pooled
// history entries they were copied from can be recycled by then.
func (j *Job) Subscribe(afterRound int) (past []RoundOutcome, cur int, sub *Subscription) {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := afterRound - j.baseRnd
	if start < 0 {
		start = 0
	}
	if start < len(j.outcomes) {
		past = make([]RoundOutcome, 0, len(j.outcomes)-start)
		for _, ro := range j.outcomes[start:] {
			past = append(past, ro.clone())
		}
	}
	if j.closed.Load() {
		return past, j.round, nil
	}
	sub = &Subscription{C: make(chan Event, subBuffer), job: j}
	j.subs[sub] = struct{}{}
	return past, j.round, sub
}

// Unsubscribe detaches the subscription and closes its channel. Idempotent;
// safe to call on an already-dropped subscription.
func (j *Job) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dropLocked(sub)
}

// dropLocked removes a subscriber and closes its channel; callers hold j.mu.
func (j *Job) dropLocked(sub *Subscription) {
	if _, ok := j.subs[sub]; ok {
		delete(j.subs, sub)
		close(sub.C)
	}
}

// publishLocked fans one event out to every subscriber; callers hold j.mu.
// Sends never block: a subscriber with a full buffer is dropped, which the
// reader observes as a closed channel and recovers from by resubscribing
// with its last seen round.
func (j *Job) publishLocked(ev Event) {
	for sub := range j.subs {
		select {
		case sub.C <- ev:
		default:
			j.dropLocked(sub)
		}
	}
}

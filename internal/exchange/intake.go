package exchange

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fmore/internal/auction"
)

// maxDefaultIntakeShards caps the GOMAXPROCS-derived default shard count:
// beyond this, shard-selection collisions are already rare at any realistic
// bidder concurrency and more shards only cost memory and drain work. An
// explicit Options.IntakeShards override is honored past it.
const maxDefaultIntakeShards = 32

// intakeShard is one stripe of a job's bid intake: an append-only buffer,
// its dedup set, and the round number the buffered bids belong to, all
// under a shard-private mutex. A node always hashes to the same shard, so
// the per-shard seen set implements the exchange-wide one-bid-per-node-
// per-round rule exactly.
type intakeShard struct {
	mu sync.Mutex
	// round is the collecting round of the buffered bids. It advances when
	// the shard is drained, so a submit racing a round close is labeled with
	// the round it actually lands in: the closing round if it got into the
	// buffer before the drain, the next round otherwise.
	round int
	bids  []auction.Bid
	seen  map[int]struct{}
	// pad rounds the shard up to two full cache lines so two bidders on
	// adjacent shards never false-share a line.
	_ [80]byte
}

// intake is a job's striped bid-ingestion front: P shards, each with its own
// lock, so concurrent bidders only serialize when they hash to the same
// stripe. pending counts buffered bids across all shards (the quorum check
// and PendingBids read it without touching any shard).
type intake struct {
	shards  []intakeShard
	mask    uint32
	pending atomic.Int64
}

// newIntake sizes the stripe count to the machine (next power of two ≥
// GOMAXPROCS, capped at maxDefaultIntakeShards), or to the explicit
// override when positive (rounded up to a power of two, uncapped — the
// operator asked for exactly that contention profile).
func newIntake(override int) *intake {
	n := runtime.GOMAXPROCS(0)
	limit := maxDefaultIntakeShards
	if override > 0 {
		n = override
		limit = override
	}
	shards := 1
	for shards < n && shards < limit {
		shards <<= 1
	}
	in := &intake{shards: make([]intakeShard, shards), mask: uint32(shards - 1)}
	for i := range in.shards {
		in.shards[i].round = 1
		in.shards[i].seen = make(map[int]struct{})
	}
	return in
}

// shard maps a node to its stripe. Fibonacci hashing spreads both dense
// (sequential IDs) and sparse node populations evenly across stripes.
func (in *intake) shard(nodeID int) *intakeShard {
	h := uint32(nodeID) * 2654435761
	return &in.shards[(h>>16)&in.mask]
}

// submit appends one bid to the node's shard. closed is the job's
// lock-free closed flag, checked under the shard lock so a submit that
// observes it unset is linearized before the close.
//
// Acceptance side effects run INSIDE the shard's critical section, which
// is what lets the WAL snapshot subtract pending bids from the counters it
// captures (see captureSnapshot) without racing half-applied submissions:
// accepted, when non-nil, is the node's accepted-bid counter (registered
// nodes — the allocation-free hot path); onAccept, when non-nil, is the
// open posture's register-and-count slow path, run once per node lifetime.
// Both sides of the lock ordering stay acyclic: submit holds one shard
// lock and may take registry locks inside it, the same shard→registry
// order the snapshot capture uses, and never waits on closeMu or ex.mu.
//
// It returns the round the bid was entered into.
func (in *intake) submit(b auction.Bid, closed *atomic.Bool, accepted *atomic.Int64, onAccept func()) (round int, err error) {
	sh := in.shard(b.NodeID)
	sh.mu.Lock()
	if closed.Load() {
		sh.mu.Unlock()
		return 0, ErrJobClosed
	}
	if _, dup := sh.seen[b.NodeID]; dup {
		sh.mu.Unlock()
		return 0, ErrDuplicateBid
	}
	sh.seen[b.NodeID] = struct{}{}
	sh.bids = append(sh.bids, b)
	round = sh.round
	in.pending.Add(1)
	if accepted != nil {
		accepted.Add(1)
	}
	if onAccept != nil {
		onAccept()
	}
	sh.mu.Unlock()
	return round, nil
}

// lockAll freezes the intake (every shard lock held) for the WAL
// snapshot's capture window; unlockAll releases it. While frozen, no bid
// can enter any buffer and — because a registered node's accepted-bid
// counter increments inside the shard's critical section — no counter can
// move either, which is what makes the snapshot's pending-bid accounting
// exact. Submitters hold at most one shard lock and never wait on anything
// the freezer holds, so the bulk acquisition cannot deadlock.
func (in *intake) lockAll() {
	for i := range in.shards {
		in.shards[i].mu.Lock()
	}
}

func (in *intake) unlockAll() {
	for i := range in.shards {
		in.shards[i].mu.Unlock()
	}
}

// pendingByNodeLocked counts the buffered (not yet closed) bids per node;
// callers hold every shard lock (lockAll). The WAL snapshot uses it to
// capture per-node counters as of the rounds already closed: a pending
// bid's round record lands in the tail the snapshot does not cover, so its
// count must come from replaying that record, not from the snapshot too.
func (in *intake) pendingByNodeLocked(dst map[int]int64) {
	for i := range in.shards {
		for _, b := range in.shards[i].bids {
			dst[b.NodeID]++
		}
	}
}

// drain moves every buffered bid into dst, clears the dedup sets, and
// advances each shard's round: bids submitted after a shard's drain belong
// to — and are labeled as — the next round. Only the round-close path calls
// drain (serialized by the job's closeMu), so dst can be a buffer reused
// across rounds.
func (in *intake) drain(dst []auction.Bid) []auction.Bid {
	before := len(dst)
	for i := range in.shards {
		sh := &in.shards[i]
		sh.mu.Lock()
		dst = append(dst, sh.bids...)
		sh.bids = sh.bids[:0]
		clear(sh.seen)
		sh.round++
		sh.mu.Unlock()
	}
	in.pending.Add(int64(before - len(dst)))
	return dst
}

// setRound aligns every shard's collecting round (used by WAL replay, which
// rebuilds round numbering single-threaded before the job is reachable).
func (in *intake) setRound(round int) {
	for i := range in.shards {
		in.shards[i].round = round
	}
}

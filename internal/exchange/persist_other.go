//go:build !linux

package exchange

import "os"

// fdatasync falls back to a full File.Sync where the data-only flush is
// not available; the durable contract is identical, only the per-commit
// metadata journaling cost differs.
func fdatasync(f *os.File) error {
	return f.Sync()
}

// preallocate extends f to size with a sparse truncate so steady-state
// appends never move the file size. Best-effort: recovery tolerates both
// exact-sized and zero-filled tails.
func preallocate(f *os.File, size int64) {
	if size <= 0 {
		return
	}
	f.Truncate(size) //nolint:errcheck // best-effort
}

package exchange

import (
	"runtime"
	"sync"

	"fmore/internal/auction"
)

// scoreChunk is the default number of bids per pool task. Large enough that
// channel hand-off cost is amortized, small enough that a 64-bid round still
// parallelizes when several jobs close at once.
const defaultScoreChunk = 128

// batchState tracks one in-flight scoring batch. Jobs keep their batchState
// across rounds, so the steady-state scoring path performs no allocation.
type batchState struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

func (b *batchState) reset() {
	b.mu.Lock()
	b.err = nil
	b.mu.Unlock()
}

func (b *batchState) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *batchState) firstErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// scoreTask is one contiguous chunk of a round's bid slice to score.
type scoreTask struct {
	rule   auction.ScoringRule
	bids   []auction.Bid
	scores []float64
	batch  *batchState
}

// scorePool evaluates S(q, p) for bid batches on a fixed set of workers,
// shared by every job of the exchange so scoring load from concurrent round
// closes is batched across jobs rather than spawning per-round goroutines.
type scorePool struct {
	tasks chan scoreTask
	wg    sync.WaitGroup
	chunk int
}

func newScorePool(workers, chunk int) *scorePool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunk <= 0 {
		chunk = defaultScoreChunk
	}
	p := &scorePool{
		// 4 slots per worker of task backlog: enough that a burst of round
		// closes never blocks the submitter on a full channel for long.
		tasks: make(chan scoreTask, 4*workers),
		chunk: chunk,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *scorePool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		for i := range t.bids {
			b := &t.bids[i]
			s, err := auction.Score(t.rule, b.Qualities, b.Payment)
			if err != nil {
				t.batch.fail(err)
				break
			}
			t.scores[i] = s
		}
		t.batch.wg.Done()
	}
}

// score fills scores[i] = S(bids[i]) using the pool, blocking until the
// whole batch is done. scores must have len(bids) entries; batch is the
// caller's reusable completion tracker. On a scoring error, the first error
// is returned and the remaining entries of that chunk are undefined.
//
// Slates of at most one chunk are scored inline on the calling goroutine: a
// single-chunk batch is one pool task executed serially by one worker
// anyway, so the hand-off buys no parallelism — only channel transfer and a
// worker wakeup (BenchmarkScorePool_SmallSlate measures the gap). The score
// values, their order, and the round's rng draw sequence are identical on
// both paths (TestScoreInlineEquivalence).
func (p *scorePool) score(rule auction.ScoringRule, bids []auction.Bid, scores []float64, batch *batchState) error {
	if len(bids) <= p.chunk {
		for i := range bids {
			b := &bids[i]
			s, err := auction.Score(rule, b.Qualities, b.Payment)
			if err != nil {
				return err
			}
			scores[i] = s
		}
		return nil
	}
	batch.reset()
	for off := 0; off < len(bids); off += p.chunk {
		end := off + p.chunk
		if end > len(bids) {
			end = len(bids)
		}
		batch.wg.Add(1)
		p.tasks <- scoreTask{rule: rule, bids: bids[off:end], scores: scores[off:end], batch: batch}
	}
	batch.wg.Wait()
	return batch.firstErr()
}

// close drains the pool; score must not be called afterwards.
func (p *scorePool) close() {
	close(p.tasks)
	p.wg.Wait()
}

package exchange

import (
	"testing"

	"fmore/internal/auction"
)

// runRound submits a quorum of bids and closes one round.
func runRound(t *testing.T, ex *Exchange, jobID string, round int) {
	t.Helper()
	for _, b := range testBids(0, round, 6) {
		if _, err := ex.SubmitBid(jobID, b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound(jobID); err != nil {
		t.Fatal(err)
	}
}

// TestJobsActiveDerivedAcrossReopen pins the gauge semantics of
// jobs_active: it is derived from the live job map at scrape time, so a
// finished (MaxRounds) job leaves the count, a removed job leaves the
// count, and — the regression this test exists for — the count survives a
// WAL replay instead of going stale (the old counter-pair arithmetic
// double-counted closed jobs replayed as both created and closed).
func TestJobsActiveDerivedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ex, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	mk := func(id string, maxRounds int) {
		t.Helper()
		if _, err := ex.CreateJob(JobSpec{
			ID:        id,
			Auction:   auction.Config{Rule: testRule(t, 0), K: 2},
			MaxRounds: maxRounds,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("stays-open", 0)
	mk("finishes", 1)
	mk("removed", 0)

	runRound(t, ex, "stays-open", 1)
	runRound(t, ex, "finishes", 1) // MaxRounds=1: this close finishes the job
	runRound(t, ex, "removed", 1)
	if err := ex.RemoveJob("removed"); err != nil {
		t.Fatal(err)
	}

	if got := ex.Metrics().JobsActive; got != 1 {
		t.Fatalf("JobsActive = %d before restart, want 1", got)
	}
	ex.Close()

	ex2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	snap := ex2.Metrics()
	if snap.JobsActive != 1 {
		t.Fatalf("JobsActive = %d after replay, want 1", snap.JobsActive)
	}
	// The finished job is still addressable (retained history) but not
	// active; the removed one is gone entirely.
	if _, ok := ex2.Job("finishes"); !ok {
		t.Fatal("finished job lost across replay")
	}
	if _, ok := ex2.Job("removed"); ok {
		t.Fatal("removed job resurrected by replay")
	}

	// The gauge is live: closing the last open job drops it to zero.
	runRound(t, ex2, "stays-open", 2)
	if err := ex2.RemoveJob("stays-open"); err != nil {
		t.Fatal(err)
	}
	if got := ex2.Metrics().JobsActive; got != 0 {
		t.Fatalf("JobsActive = %d after removing the last job, want 0", got)
	}
}

// TestWalGauges pins wal_segment_count and wal_bytes: zero in-memory,
// live-updating on a durable exchange, shrinking across compaction, and
// reseeded from the segment scan on reopen.
func TestWalGauges(t *testing.T) {
	mem := New(Options{})
	if snap := mem.Metrics(); snap.WalSegmentCount != 0 || snap.WalBytes != 0 {
		t.Fatalf("in-memory WAL gauges = (%d, %d), want (0, 0)",
			snap.WalSegmentCount, snap.WalBytes)
	}
	mem.Close()

	dir := t.TempDir()
	ex, err := Open(dir, Options{SnapshotBytes: -1}) // manual compaction only
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(JobSpec{ID: "walg", Auction: auction.Config{Rule: testRule(t, 0), K: 2}}); err != nil {
		t.Fatal(err)
	}
	// The log writer is asynchronous; Sync drains it so the byte gauge
	// reflects the records above.
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	snap := ex.Metrics()
	if snap.WalSegmentCount != 1 {
		t.Fatalf("WalSegmentCount = %d on a fresh dir, want 1", snap.WalSegmentCount)
	}
	if snap.WalBytes <= 0 {
		t.Fatalf("WalBytes = %d after a logged job create, want > 0", snap.WalBytes)
	}

	// The byte gauge tracks the log as rounds append.
	before := snap.WalBytes
	for r := 1; r <= 16; r++ {
		runRound(t, ex, "walg", r)
	}
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	grown := ex.Metrics().WalBytes
	if grown <= before {
		t.Fatalf("WalBytes %d -> %d across 16 rounds, want growth", before, grown)
	}

	// Compaction moves history into the snapshot file and restarts the log:
	// back to one (nearly empty) segment, far fewer log bytes.
	if err := ex.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Sync(); err != nil {
		t.Fatal(err)
	}
	compacted := ex.Metrics()
	if compacted.WalSegmentCount != 1 {
		t.Fatalf("WalSegmentCount = %d after compaction, want 1", compacted.WalSegmentCount)
	}
	if compacted.WalBytes >= grown {
		t.Fatalf("WalBytes = %d after compaction, want < %d", compacted.WalBytes, grown)
	}
	ex.Close()

	// Reopen seeds the gauges from the on-disk segment scan.
	ex2, err := Open(dir, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	reopened := ex2.Metrics()
	if reopened.WalSegmentCount != 1 {
		t.Fatalf("WalSegmentCount = %d after reopen, want 1", reopened.WalSegmentCount)
	}
	if reopened.WalBytes != compacted.WalBytes {
		t.Fatalf("WalBytes = %d after reopen, want %d (the compacted size)",
			reopened.WalBytes, compacted.WalBytes)
	}
}

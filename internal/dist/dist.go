// Package dist provides the probability distributions of the FMore model:
// the common-knowledge distribution F of the private cost parameter θ that
// every bidder samples from (§III-B). The paper's experiments draw θ from
// uniform distributions, so Uniform is the primary implementation; the
// Distribution interface keeps the equilibrium solver generic in F.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution is a continuous distribution with bounded support, exposing
// exactly what the equilibrium machinery needs: sampling (population
// generation), the CDF F(θ) (win-probability model, Eq 9), and the support
// bounds (θ grid construction).
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
	// CDF returns F(x) = P(θ <= x). It clamps to [0, 1] outside the support.
	CDF(x float64) float64
	// Support returns the bounds [lo, hi] of the distribution.
	Support() (lo, hi float64)
}

// Uniform is the continuous uniform distribution on [Lo, Hi], the θ prior
// used throughout the paper's evaluation.
type Uniform struct {
	Lo, Hi float64
}

var _ Distribution = Uniform{}

// NewUniform returns the uniform distribution on [lo, hi]. The bounds must
// be finite with lo < hi.
func NewUniform(lo, hi float64) (Uniform, error) {
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return Uniform{}, fmt.Errorf("dist: uniform bounds must be finite, got [%v, %v]", lo, hi)
	}
	if !(lo < hi) {
		return Uniform{}, fmt.Errorf("dist: uniform needs lo < hi, got [%v, %v]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Support implements Distribution.
func (u Uniform) Support() (lo, hi float64) { return u.Lo, u.Hi }

// PDF returns the density, 1/(Hi−Lo) inside the support and 0 outside.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// Mean returns the expectation (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// String implements fmt.Stringer.
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g]", u.Lo, u.Hi) }

package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewUniformValidation(t *testing.T) {
	cases := []struct {
		lo, hi float64
	}{
		{1, 1},
		{2, 1},
		{math.NaN(), 1},
		{0, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := NewUniform(c.lo, c.hi); err == nil {
			t.Errorf("NewUniform(%v, %v): expected error", c.lo, c.hi)
		}
	}
	if _, err := NewUniform(-1, 3); err != nil {
		t.Fatalf("NewUniform(-1, 3): %v", err)
	}
}

func TestUniformCDFAndSupport(t *testing.T) {
	u, err := NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := u.Support()
	if lo != 1 || hi != 3 {
		t.Fatalf("Support() = (%v, %v), want (1, 3)", lo, hi)
	}
	for _, c := range []struct{ x, want float64 }{
		{0, 0}, {1, 0}, {2, 0.5}, {3, 1}, {4, 1},
	} {
		if got := u.CDF(c.x); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := u.PDF(2); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("PDF(2) = %v, want 0.5", got)
	}
	if got := u.PDF(0); got != 0 {
		t.Errorf("PDF(0) = %v, want 0", got)
	}
	if got := u.Mean(); got != 2 {
		t.Errorf("Mean() = %v, want 2", got)
	}
}

func TestUniformSampleStaysInSupportAndMatchesMean(t *testing.T) {
	u, err := NewUniform(0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		x := u.Sample(rng)
		if x < 0.5 || x >= 1.5 {
			t.Fatalf("sample %v outside [0.5, 1.5)", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("empirical mean %v too far from 1", mean)
	}
}

package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEulerSolveLinearODE(t *testing.T) {
	// dy/dx = y, y(0)=1 -> y(1) = e.
	got := EulerSolve(func(_, y float64) float64 { return y }, 0, 1, 1, 20000)
	if math.Abs(got-math.E) > 1e-3 {
		t.Errorf("Euler e = %v, want %v", got, math.E)
	}
}

func TestRK4SolveLinearODE(t *testing.T) {
	got := RK4Solve(func(_, y float64) float64 { return y }, 0, 1, 1, 100)
	if math.Abs(got-math.E) > 1e-8 {
		t.Errorf("RK4 e = %v, want %v", got, math.E)
	}
}

func TestRK4MoreAccurateThanEuler(t *testing.T) {
	f := func(x, y float64) float64 { return math.Cos(x) * y }
	// y' = cos(x) y, y(0)=1 -> y(x) = exp(sin x).
	want := math.Exp(math.Sin(2))
	euler := EulerSolve(f, 0, 1, 2, 200)
	rk4 := RK4Solve(f, 0, 1, 2, 200)
	if math.Abs(rk4-want) > math.Abs(euler-want) {
		t.Errorf("RK4 error %v should beat Euler error %v", math.Abs(rk4-want), math.Abs(euler-want))
	}
}

func TestSolversBackwardDirection(t *testing.T) {
	// Integrate from 1 back to 0: dy/dx = 2x, y(1) = 1 -> y(0) = 0.
	f := func(x, _ float64) float64 { return 2 * x }
	if got := RK4Solve(f, 1, 1, 0, 100); math.Abs(got) > 1e-9 {
		t.Errorf("RK4 backward = %v, want 0", got)
	}
	if got := EulerSolve(f, 1, 1, 0, 20000); math.Abs(got) > 1e-3 {
		t.Errorf("Euler backward = %v, want ~0", got)
	}
}

func TestTrapezoidAndSimpson(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	wantThird := 1.0 / 3
	if got := Trapezoid(f, 0, 1, 2000); math.Abs(got-wantThird) > 1e-5 {
		t.Errorf("Trapezoid x^2 = %v, want 1/3", got)
	}
	if got := Simpson(f, 0, 1, 10); math.Abs(got-wantThird) > 1e-12 {
		t.Errorf("Simpson x^2 = %v, want exactly 1/3 (polynomial degree <= 3)", got)
	}
	// Odd n should be rounded up, not crash.
	if got := Simpson(f, 0, 1, 7); math.Abs(got-wantThird) > 1e-10 {
		t.Errorf("Simpson odd-n x^2 = %v, want 1/3", got)
	}
}

func TestGoldenMax(t *testing.T) {
	x, fx := GoldenMax(func(x float64) float64 { return -(x - 2) * (x - 2) }, 0, 5, 1e-10)
	if math.Abs(x-2) > 1e-6 {
		t.Errorf("argmax = %v, want 2", x)
	}
	if math.Abs(fx) > 1e-10 {
		t.Errorf("max = %v, want 0", fx)
	}
}

func TestGridMaxMultimodal(t *testing.T) {
	// Two bumps; the taller one is at x = 4.
	f := func(x float64) float64 {
		return math.Exp(-(x-1)*(x-1)) + 1.5*math.Exp(-(x-4)*(x-4))
	}
	x, _ := GridMax(f, 0, 6, 200)
	if math.Abs(x-4) > 1e-3 {
		t.Errorf("GridMax picked %v, want 4 (global bump)", x)
	}
}

func TestCoordinateAscentMax(t *testing.T) {
	f := func(x []float64) float64 {
		return -(x[0]-1)*(x[0]-1) - (x[1]-3)*(x[1]-3)
	}
	x, fx, err := CoordinateAscentMax(f, []float64{0, 0}, []float64{5, 5}, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-3) > 1e-3 {
		t.Errorf("argmax = %v, want [1, 3]", x)
	}
	if math.Abs(fx) > 1e-5 {
		t.Errorf("max = %v, want 0", fx)
	}
}

func TestCoordinateAscentMaxErrors(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, _, err := CoordinateAscentMax(f, []float64{0}, []float64{1, 2}, 1, 10); err == nil {
		t.Error("mismatched bounds: want error")
	}
	if _, _, err := CoordinateAscentMax(f, nil, nil, 1, 10); err == nil {
		t.Error("empty bounds: want error")
	}
	if _, _, err := CoordinateAscentMax(f, []float64{2}, []float64{1}, 1, 10); err == nil {
		t.Error("inverted bounds: want error")
	}
}

func TestMonotoneInterpIncreasing(t *testing.T) {
	xs := Linspace(0, 10, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	m, err := NewMonotoneInterp(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Decreasing() {
		t.Error("interp should be increasing")
	}
	if got := m.At(3.5); math.Abs(got-8) > 1e-12 {
		t.Errorf("At(3.5) = %v, want 8", got)
	}
	if got := m.Inverse(8); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("Inverse(8) = %v, want 3.5", got)
	}
	// Clamping.
	if got := m.At(-5); got != 1 {
		t.Errorf("At(-5) = %v, want clamp to 1", got)
	}
	if got := m.Inverse(100); got != 10 {
		t.Errorf("Inverse(100) = %v, want clamp to 10", got)
	}
}

func TestMonotoneInterpDecreasing(t *testing.T) {
	xs := Linspace(0, 1, 101)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(-3 * x)
	}
	m, err := NewMonotoneInterp(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Decreasing() {
		t.Error("interp should be decreasing")
	}
	for _, x := range []float64{0.1, 0.33, 0.5, 0.77, 0.99} {
		y := m.At(x)
		back := m.Inverse(y)
		if math.Abs(back-x) > 1e-9 {
			t.Errorf("Inverse(At(%v)) = %v", x, back)
		}
	}
}

func TestMonotoneInterpRejectsBadGrids(t *testing.T) {
	if _, err := NewMonotoneInterp([]float64{0}, []float64{1}); err == nil {
		t.Error("short grid: want error")
	}
	if _, err := NewMonotoneInterp([]float64{0, 0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("non-increasing xs: want error")
	}
	if _, err := NewMonotoneInterp([]float64{0, 1, 2}, []float64{1, 5, 3}); err == nil {
		t.Error("non-monotone ys: want error")
	}
}

func TestMonotoneInterpInverseRoundTripProperty(t *testing.T) {
	xs := Linspace(0, 1, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x*x*x + x // strictly increasing
	}
	m, err := NewMonotoneInterp(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 1)
		y := m.At(x)
		return math.Abs(m.Inverse(y)-x) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(3, 4, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v, want [3]", got)
	}
}

func TestMinMaxNormalize(t *testing.T) {
	cases := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 0.5},
		{-1, 0, 10, 0},
		{11, 0, 10, 1},
		{3, 3, 3, 0}, // degenerate interval
	}
	for _, c := range cases {
		if got := MinMaxNormalize(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("MinMaxNormalize(%v, %v, %v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v, want 3", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v, want 0", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v, want 2", got)
	}
}

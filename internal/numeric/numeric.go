// Package numeric provides the small numerical toolbox the FMore equilibrium
// computation needs: explicit ODE integrators (the paper prescribes the Euler
// method, §IV Eq (13)-(14); RK4 is provided as a higher-order cross-check),
// quadrature, scalar maximization, and monotone interpolation with inversion.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadGrid reports an interpolation grid that is not strictly monotone or
// too short.
var ErrBadGrid = errors.New("numeric: grid must be strictly monotone with >= 2 points")

// ODEFunc is the right-hand side dy/dx = f(x, y) of a first-order ODE.
type ODEFunc func(x, y float64) float64

// EulerSolve integrates dy/dx = f from x0 to x1 with initial value y0 using
// the explicit Euler method with the given number of steps. This is the
// numerical method the paper names for solving the bid-payment ODE (Eq 12).
func EulerSolve(f ODEFunc, x0, y0, x1 float64, steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	h := (x1 - x0) / float64(steps)
	x, y := x0, y0
	for i := 0; i < steps; i++ {
		y += h * f(x, y)
		x = x0 + float64(i+1)*h
	}
	return y
}

// RK4Solve integrates dy/dx = f from x0 to x1 with initial value y0 using the
// classical fourth-order Runge–Kutta method (the paper's suggested
// alternative to Euler).
func RK4Solve(f ODEFunc, x0, y0, x1 float64, steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	h := (x1 - x0) / float64(steps)
	x, y := x0, y0
	for i := 0; i < steps; i++ {
		k1 := f(x, y)
		k2 := f(x+h/2, y+h/2*k1)
		k3 := f(x+h/2, y+h/2*k2)
		k4 := f(x+h, y+h*k3)
		y += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
		x = x0 + float64(i+1)*h
	}
	return y
}

// Trapezoid integrates f over [a, b] with n trapezoids.
func Trapezoid(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	sum := (f(a) + f(b)) / 2
	for i := 1; i < n; i++ {
		sum += f(a + float64(i)*h)
	}
	return sum * h
}

// Simpson integrates f over [a, b] with Simpson's composite rule; n is
// rounded up to the next even number of intervals.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// GoldenMax maximizes a unimodal function f on [a, b] by golden-section
// search and returns the argmax and maximum value. tol is the absolute
// bracket tolerance on x.
func GoldenMax(f func(float64) float64, a, b, tol float64) (x, fx float64) {
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949 // 1/φ
	lo, hi := a, b
	x1 := hi - invPhi*(hi-lo)
	x2 := lo + invPhi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for hi-lo > tol {
		if f1 < f2 {
			lo = x1
			x1, f1 = x2, f2
			x2 = lo + invPhi*(hi-lo)
			f2 = f(x2)
		} else {
			hi = x2
			x2, f2 = x1, f1
			x1 = hi - invPhi*(hi-lo)
			f1 = f(x1)
		}
	}
	x = (lo + hi) / 2
	return x, f(x)
}

// GridMax maximizes f on [a, b] by dense grid evaluation followed by a
// golden-section polish around the best grid cell. Unlike GoldenMax it does
// not require unimodality; the grid pins the basin, the polish refines it.
func GridMax(f func(float64) float64, a, b float64, gridPoints int) (x, fx float64) {
	if gridPoints < 3 {
		gridPoints = 3
	}
	h := (b - a) / float64(gridPoints-1)
	bestX, bestF := a, math.Inf(-1)
	for i := 0; i < gridPoints; i++ {
		xi := a + float64(i)*h
		if v := f(xi); v > bestF {
			bestX, bestF = xi, v
		}
	}
	lo := math.Max(a, bestX-h)
	hi := math.Min(b, bestX+h)
	px, pf := GoldenMax(f, lo, hi, (hi-lo)*1e-8)
	if pf > bestF {
		return px, pf
	}
	return bestX, bestF
}

// CoordinateAscentMax maximizes f over a box by cyclic coordinate ascent,
// using GridMax in each coordinate. It returns the argmax vector and value.
// It is used to solve the multi-dimensional quality choice
// argmax s(q1..qm) − c(q1..qm, θ) of Che's Theorem 1 / Proposition 3.
func CoordinateAscentMax(f func([]float64) float64, lo, hi []float64, sweeps, gridPoints int) ([]float64, float64, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, 0, fmt.Errorf("numeric: box bounds must be equal-length and non-empty, got %d and %d", len(lo), len(hi))
	}
	for j := range lo {
		if !(lo[j] <= hi[j]) {
			return nil, 0, fmt.Errorf("numeric: inverted box bound in dim %d: [%v, %v]", j, lo[j], hi[j])
		}
	}
	if sweeps < 1 {
		sweeps = 1
	}
	x := make([]float64, len(lo))
	for j := range x {
		x[j] = (lo[j] + hi[j]) / 2
	}
	cur := f(x)
	for s := 0; s < sweeps; s++ {
		improved := false
		for j := range x {
			j := j
			line := func(v float64) float64 {
				old := x[j]
				x[j] = v
				val := f(x)
				x[j] = old
				return val
			}
			bx, bf := GridMax(line, lo[j], hi[j], gridPoints)
			if bf > cur+1e-15 {
				x[j] = bx
				cur = bf
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return x, cur, nil
}

// MonotoneInterp is a piecewise-linear interpolant through strictly monotone
// (x, y) data. It supports both increasing and decreasing y and provides the
// inverse map, which the equilibrium computation uses to invert the score
// function X(θ) (H(x) = 1 − F(X⁻¹(x)) in Theorem 1).
type MonotoneInterp struct {
	xs, ys     []float64
	decreasing bool
}

// NewMonotoneInterp builds an interpolant over strictly increasing xs and
// strictly monotone ys. Both slices are copied.
func NewMonotoneInterp(xs, ys []float64) (*MonotoneInterp, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, ErrBadGrid
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, fmt.Errorf("%w: xs not strictly increasing at %d", ErrBadGrid, i)
		}
	}
	inc, dec := true, true
	for i := 1; i < len(ys); i++ {
		if !(ys[i] > ys[i-1]) {
			inc = false
		}
		if !(ys[i] < ys[i-1]) {
			dec = false
		}
	}
	if !inc && !dec {
		return nil, fmt.Errorf("%w: ys not strictly monotone", ErrBadGrid)
	}
	m := &MonotoneInterp{
		xs:         append([]float64(nil), xs...),
		ys:         append([]float64(nil), ys...),
		decreasing: dec,
	}
	return m, nil
}

// At evaluates the interpolant at x, clamping outside the grid.
func (m *MonotoneInterp) At(x float64) float64 {
	n := len(m.xs)
	switch {
	case x <= m.xs[0]:
		return m.ys[0]
	case x >= m.xs[n-1]:
		return m.ys[n-1]
	}
	i := searchSegment(m.xs, x)
	t := (x - m.xs[i]) / (m.xs[i+1] - m.xs[i])
	return m.ys[i] + t*(m.ys[i+1]-m.ys[i])
}

// Inverse evaluates the inverse interpolant at y, clamping outside the range.
func (m *MonotoneInterp) Inverse(y float64) float64 {
	n := len(m.ys)
	loY, hiY := m.ys[0], m.ys[n-1]
	if m.decreasing {
		loY, hiY = hiY, loY
	}
	switch {
	case y <= loY:
		if m.decreasing {
			return m.xs[n-1]
		}
		return m.xs[0]
	case y >= hiY:
		if m.decreasing {
			return m.xs[0]
		}
		return m.xs[n-1]
	}
	// Binary search over segments in the y direction.
	lo, hi := 0, n-2
	for lo < hi {
		mid := (lo + hi) / 2
		y1 := m.ys[mid+1]
		var pastSegment bool
		if m.decreasing {
			pastSegment = y < y1 // target lies toward larger x
		} else {
			pastSegment = y > y1
		}
		if pastSegment {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	y0, y1 := m.ys[i], m.ys[i+1]
	t := 0.0
	if y1 != y0 {
		t = (y - y0) / (y1 - y0)
	}
	return m.xs[i] + t*(m.xs[i+1]-m.xs[i])
}

// Domain returns the x-range of the interpolant.
func (m *MonotoneInterp) Domain() (lo, hi float64) {
	return m.xs[0], m.xs[len(m.xs)-1]
}

// Range returns the y-range of the interpolant in ascending order.
func (m *MonotoneInterp) Range() (lo, hi float64) {
	a, b := m.ys[0], m.ys[len(m.ys)-1]
	if a > b {
		a, b = b, a
	}
	return a, b
}

// Decreasing reports whether y decreases with x.
func (m *MonotoneInterp) Decreasing() bool { return m.decreasing }

// searchSegment returns i such that xs[i] <= x < xs[i+1], for x strictly
// inside the grid.
func searchSegment(xs []float64, x float64) int {
	lo, hi := 0, len(xs)-2
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid+1] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Linspace returns n evenly spaced points from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	h := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*h
	}
	out[n-1] = b
	return out
}

// MinMaxNormalize maps v from [lo, hi] to [0, 1], clamping at the ends; it is
// the normalization the walk-through example (§III-B) applies to bids.
func MinMaxNormalize(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	t := (v - lo) / (hi - lo)
	switch {
	case t < 0:
		return 0
	case t > 1:
		return 1
	default:
		return t
	}
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// Scope names the admission level that shed a request. The values double as
// the Prometheus `reason` label of admission_shed_total.
type Scope string

// Shed scopes, outermost first: the hierarchy is checked global → node →
// job, and the in-flight gate fronts the whole HTTP handler.
const (
	ScopeGlobal   Scope = "global"
	ScopeNode     Scope = "node"
	ScopeJob      Scope = "job"
	ScopeInflight Scope = "inflight"
)

// inflightRetryHint is the retry_after handed out when the in-flight gate
// sheds: slots free as fast as requests complete, so the hint is short.
const inflightRetryHint = 10 * time.Millisecond

// defaultOverloadWindow is how long after the most recent shed the
// controller keeps reporting overloaded on /v1/healthz, so probers see a
// stable signal instead of a flapping one.
const defaultOverloadWindow = time.Second

// Config sizes a Controller. Zero rates/limits mean "unlimited" at that
// level, so a Config only constrains the levels the operator asked for.
type Config struct {
	// GlobalRate / GlobalBurst bound total bid admissions per second across
	// the whole exchange.
	GlobalRate  float64
	GlobalBurst int
	// NodeRate / NodeBurst bound each node's bid rate. Registered nodes get
	// a private bucket (attached to the registry entry); nodes bidding
	// before registration share one bucket, which also throttles
	// registration-spray abuse.
	NodeRate  float64
	NodeBurst int
	// JobRate / JobBurst bound each job's intake rate.
	JobRate  float64
	JobBurst int
	// MaxInflight caps concurrently executing bid-submit requests; excess
	// requests are shed before their body is read.
	MaxInflight int64
	// MaxStreams caps concurrent SSE subscribers; at the cap the oldest
	// stream is evicted (its context canceled) to make room — newest wins.
	MaxStreams int
	// OverloadWindow is how long after a shed the controller reports
	// overloaded (default 1s).
	OverloadWindow time.Duration
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Controller is the admission authority for one exchange: it owns the
// global bucket, mints the per-node and per-job buckets, gates request
// concurrency and SSE subscriptions, and aggregates shed accounting. All
// hot-path methods are lock-free and allocation-free; only the SSE
// registry takes a (stream-lifecycle-rate) mutex.
type Controller struct {
	cfg    Config
	global *Bucket
	shared *Bucket // one bucket shared by all not-yet-registered nodes

	// Clock. Reading the OS clock per admitted bid is the single largest
	// cost the controller could add to the submit hot path, so AdmitBid
	// runs on cachedNow — refreshed only when a bucket rejects. A stale
	// clock is conservative for GCRA (it can only under-admit, never
	// over-admit: the TAT advances per admission regardless of now), and
	// the refresh-on-reject means every shed decision and retry hint is
	// computed against the real clock. With the default clock, nowNano
	// reads the monotonic elapsed time since construction instead of
	// calling through the cfg.Now func value.
	monotonic bool
	base      time.Time
	cachedNow atomic.Int64

	inflight atomic.Int64
	lastShed atomic.Int64 // controller-clock nanos of the most recent shed, 0 = never

	shedGlobal   atomic.Int64
	shedNode     atomic.Int64
	shedJob      atomic.Int64
	shedInflight atomic.Int64
	sseEvicted   atomic.Int64

	mu      sync.Mutex
	oldest  *stream // FIFO eviction order: oldest ← … ← newest
	newest  *stream
	streams int
}

// stream is one SSE subscription in the controller's FIFO eviction list.
type stream struct {
	evict      func()
	prev, next *stream
	inList     bool
}

// NewController builds a Controller from cfg. It never returns nil; a
// zero Config yields a controller that admits everything but still counts
// in-flight requests and serves healthz stats.
func NewController(cfg Config) *Controller {
	if cfg.OverloadWindow <= 0 {
		cfg.OverloadWindow = defaultOverloadWindow
	}
	c := &Controller{
		cfg:    cfg,
		global: NewBucket(cfg.GlobalRate, cfg.GlobalBurst),
		shared: NewBucket(cfg.NodeRate, cfg.NodeBurst),
	}
	if cfg.Now == nil {
		c.monotonic = true
		c.base = time.Now()
	}
	c.cachedNow.Store(c.nowNano())
	return c
}

// nowNano reads the controller's clock: monotonic elapsed nanos since
// construction by default (one runtime nanotime read, no func-value call),
// or the injected cfg.Now for tests. The +1 keeps the very first reading
// nonzero so lastShed's 0-means-never sentinel holds.
func (c *Controller) nowNano() int64 {
	if c.monotonic {
		return int64(time.Since(c.base)) + 1
	}
	return c.cfg.Now().UnixNano()
}

// refreshNow re-reads the clock and publishes it to the admission fast
// path.
func (c *Controller) refreshNow() int64 {
	n := c.nowNano()
	c.cachedNow.Store(n)
	return n
}

// NewNodeBucket mints a private per-node bucket (nil when the node level
// is unlimited or the controller is nil). The caller owns attaching it to
// the node's registry entry.
func (c *Controller) NewNodeBucket() *Bucket {
	if c == nil {
		return nil
	}
	return NewBucket(c.cfg.NodeRate, c.cfg.NodeBurst)
}

// NewJobBucket mints a private per-job bucket (nil when unlimited).
func (c *Controller) NewJobBucket() *Bucket {
	if c == nil {
		return nil
	}
	return NewBucket(c.cfg.JobRate, c.cfg.JobBurst)
}

// UnregisteredBucket returns the bucket shared by all nodes that have no
// registry entry yet.
func (c *Controller) UnregisteredBucket() *Bucket {
	if c == nil {
		return nil
	}
	return c.shared
}

// AdmitBid runs one bid through the hierarchy: global, then the node's
// bucket, then the job's. Each level consumes independently, so under
// overload an outer level may spend a token on a bid an inner level sheds;
// the waste is bounded by the inner level's rate and keeps the check
// lock-free. nil buckets are unlimited levels.
//
// The check first runs against the cached clock; a rejection under a stale
// clock triggers one real clock read and a retry of that level, so steady
// headroom costs no clock reads at all while every actual shed (and its
// retry hint) is judged against fresh time.
func (c *Controller) AdmitBid(node, job *Bucket) (ok bool, scope Scope, retryAfter time.Duration) {
	if c == nil {
		return true, "", 0
	}
	now := c.cachedNow.Load()
	fresh := false
	ok, retry := c.global.Allow(now)
	if !ok {
		now, fresh = c.refreshNow(), true
		ok, retry = c.global.Allow(now)
	}
	if !ok {
		c.shedGlobal.Add(1)
		c.noteShed(now)
		return false, ScopeGlobal, retry
	}
	if ok, retry = node.Allow(now); !ok {
		if !fresh {
			now, fresh = c.refreshNow(), true
			ok, retry = node.Allow(now)
		}
		if !ok {
			c.shedNode.Add(1)
			c.noteShed(now)
			return false, ScopeNode, retry
		}
	}
	if ok, retry = job.Allow(now); !ok {
		if !fresh {
			now = c.refreshNow()
			ok, retry = job.Allow(now)
		}
		if !ok {
			c.shedJob.Add(1)
			c.noteShed(now)
			return false, ScopeJob, retry
		}
	}
	return true, "", 0
}

// BeginRequest claims an in-flight slot for one bid-submit request; the
// caller must pair an admitted claim with EndRequest. Shed requests are the
// cheapest possible 429: no body read, no idempotency claim.
func (c *Controller) BeginRequest() (ok bool, retryAfter time.Duration) {
	if c == nil {
		return true, 0
	}
	n := c.inflight.Add(1)
	if max := c.cfg.MaxInflight; max > 0 && n > max {
		c.inflight.Add(-1)
		c.shedInflight.Add(1)
		c.noteShed(c.nowNano())
		return false, inflightRetryHint
	}
	return true, 0
}

// EndRequest releases the slot claimed by an admitted BeginRequest.
func (c *Controller) EndRequest() {
	if c != nil {
		c.inflight.Add(-1)
	}
}

// AcquireStream registers one SSE subscription. When the stream cap is
// reached the OLDEST registered stream is evicted — its evict callback
// (typically a context cancel) runs on the caller's goroutine — so new
// subscribers always get in. The returned release must be called when the
// stream ends; it is idempotent against a concurrent eviction.
func (c *Controller) AcquireStream(evict func()) (release func()) {
	if c == nil || c.cfg.MaxStreams <= 0 {
		return func() {}
	}
	s := &stream{evict: evict, inList: true}
	var victim *stream
	c.mu.Lock()
	if c.streams >= c.cfg.MaxStreams && c.oldest != nil {
		victim = c.oldest
		c.removeLocked(victim)
	}
	// Append at the newest end.
	s.prev = c.newest
	if c.newest != nil {
		c.newest.next = s
	} else {
		c.oldest = s
	}
	c.newest = s
	c.streams++
	c.mu.Unlock()
	if victim != nil {
		c.sseEvicted.Add(1)
		victim.evict()
	}
	return func() {
		c.mu.Lock()
		c.removeLocked(s)
		c.mu.Unlock()
	}
}

// removeLocked unlinks s if it is still registered.
func (c *Controller) removeLocked(s *stream) {
	if !s.inList {
		return
	}
	s.inList = false
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		c.oldest = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		c.newest = s.prev
	}
	s.prev, s.next = nil, nil
	c.streams--
}

// noteShed stamps the overload clock.
func (c *Controller) noteShed(now int64) { c.lastShed.Store(now) }

// Overloaded reports whether the exchange should advertise overload to
// health probers: either the in-flight gate is saturated right now, or a
// shed happened within the overload window. The returned hint is the
// retry_after_ms to serve alongside a 503.
func (c *Controller) Overloaded() (bool, time.Duration) {
	if c == nil {
		return false, 0
	}
	if max := c.cfg.MaxInflight; max > 0 && c.inflight.Load() >= max {
		return true, inflightRetryHint
	}
	if last := c.lastShed.Load(); last > 0 {
		if rem := int64(c.cfg.OverloadWindow) - (c.nowNano() - last); rem > 0 {
			return true, time.Duration(rem)
		}
	}
	return false, 0
}

// Stats is a point-in-time snapshot of the controller's accounting.
type Stats struct {
	Overloaded   bool
	RetryAfter   time.Duration
	Inflight     int64
	ShedGlobal   int64
	ShedNode     int64
	ShedJob      int64
	ShedInflight int64
	SSEActive    int64
	SSEEvicted   int64
}

// ShedTotal sums the sheds across every scope.
func (s Stats) ShedTotal() int64 {
	return s.ShedGlobal + s.ShedNode + s.ShedJob + s.ShedInflight
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	over, retry := c.Overloaded()
	c.mu.Lock()
	active := int64(c.streams)
	c.mu.Unlock()
	return Stats{
		Overloaded:   over,
		RetryAfter:   retry,
		Inflight:     c.inflight.Load(),
		ShedGlobal:   c.shedGlobal.Load(),
		ShedNode:     c.shedNode.Load(),
		ShedJob:      c.shedJob.Load(),
		ShedInflight: c.shedInflight.Load(),
		SSEActive:    active,
		SSEEvicted:   c.sseEvicted.Load(),
	}
}

package admission

import (
	"sync/atomic"
	"time"
)

// Breaker states. The zero value of Breaker starts closed.
const (
	stateClosed int32 = iota
	stateOpen
	stateHalfOpen
)

// Breaker is an atomics-only circuit breaker for slow or failing
// downstreams (a router's replica, an external sink). Closed passes
// everything; threshold consecutive failures open it; after cooldown one
// probe request is let through half-open, and its outcome decides whether
// the circuit closes again or re-opens for another cooldown.
type Breaker struct {
	state     atomic.Int32
	failures  atomic.Int64
	openedAt  atomic.Int64 // unix nanos of the last open transition
	threshold int64
	cooldown  int64 // nanos
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (clamped to ≥ 1) and probes again after cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: int64(threshold), cooldown: int64(cooldown)}
}

// Allow reports whether a request may proceed at time now (unix nanos).
// When an open breaker's cooldown has elapsed, exactly one caller wins the
// half-open probe slot; everyone else keeps failing fast until the probe
// reports back. A nil breaker allows everything.
func (b *Breaker) Allow(now int64) bool {
	if b == nil {
		return true
	}
	switch b.state.Load() {
	case stateClosed:
		return true
	case stateOpen:
		if now-b.openedAt.Load() < b.cooldown {
			return false
		}
		// CAS elects the single probe; losers observe half-open (or a
		// just-closed circuit if the probe already succeeded).
		if b.state.CompareAndSwap(stateOpen, stateHalfOpen) {
			return true
		}
		return b.state.Load() == stateClosed
	default: // half-open: the probe is in flight
		return false
	}
}

// Success records a completed request: the circuit closes and the failure
// streak resets.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.failures.Store(0)
	b.state.Store(stateClosed)
}

// Failure records a failed request at time now. A failed half-open probe
// re-opens immediately; in the closed state the threshold'th consecutive
// failure opens the circuit.
func (b *Breaker) Failure(now int64) {
	if b == nil {
		return
	}
	if b.state.Load() == stateHalfOpen {
		b.openedAt.Store(now)
		b.failures.Store(0)
		b.state.Store(stateOpen)
		return
	}
	if b.failures.Add(1) >= b.threshold {
		b.openedAt.Store(now)
		b.failures.Store(0)
		b.state.Store(stateOpen)
	}
}

// Open reports whether the circuit is currently failing fast (open and
// still cooling down, or waiting on a half-open probe).
func (b *Breaker) Open(now int64) bool { return !b.nilOrWouldAllow(now) }

// nilOrWouldAllow is Allow without the probe-election side effect, for
// observability callers that must not consume the probe slot.
func (b *Breaker) nilOrWouldAllow(now int64) bool {
	if b == nil {
		return true
	}
	switch b.state.Load() {
	case stateClosed:
		return true
	case stateOpen:
		return now-b.openedAt.Load() >= b.cooldown
	default:
		return false
	}
}

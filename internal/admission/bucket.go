package admission

import (
	"sync/atomic"
	"time"
)

// Bucket is a lock-free token bucket implemented as a GCRA (generic cell
// rate algorithm) limiter: the whole bucket state is one atomic int64 — the
// theoretical arrival time (TAT) in nanoseconds — so an admit is a load, a
// comparison and a CAS, with zero allocations and no locks. A nil *Bucket
// admits everything, which lets callers express "unlimited" without a
// branch at every site.
type Bucket struct {
	tat atomic.Int64 // theoretical arrival time, unix nanos
	// interval is the nanosecond cost of one token (1e9 / rate); depth is
	// the burst allowance expressed in the same unit (burst · interval).
	interval int64
	depth    int64
}

// NewBucket builds a bucket refilling at ratePerSec tokens per second with
// the given burst capacity (clamped to ≥ 1). A non-positive rate means
// unlimited and returns nil.
func NewBucket(ratePerSec float64, burst int) *Bucket {
	if ratePerSec <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	interval := int64(float64(time.Second) / ratePerSec)
	if interval < 1 {
		interval = 1
	}
	return &Bucket{interval: interval, depth: int64(burst) * interval}
}

// Allow consumes one token at time now (unix nanos). On rejection it
// reports how long the caller should wait before one token is available —
// the retry_after hint of the v1 envelope.
func (b *Bucket) Allow(now int64) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	for {
		tat := b.tat.Load()
		t := tat
		if now > t {
			t = now
		}
		next := t + b.interval
		if next-now > b.depth {
			// next == tat+interval here: rejection implies tat > now,
			// because an idle bucket (tat ≤ now) always has interval ≤
			// depth headroom. No state changes on rejection, so a rejected
			// caller never pushes the TAT further out.
			return false, time.Duration(next - now - b.depth)
		}
		if b.tat.CompareAndSwap(tat, next) {
			return true, 0
		}
	}
}

package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketConcurrentAccuracy hammers one bucket from 64 goroutines on a
// frozen clock and requires exact token accounting: the burst admits to the
// token, nothing more, and advancing the clock refills to the token. This
// is the -race witness that the CAS loop neither double-spends nor loses
// tokens under contention.
func TestBucketConcurrentAccuracy(t *testing.T) {
	const (
		rate      = 1000.0 // 1ms per token
		burst     = 100
		writers   = 64
		perWriter = 200
	)
	b := NewBucket(rate, burst)
	interval := int64(time.Millisecond)
	now := time.Now().UnixNano()

	hammer := func(at int64) int64 {
		var admitted atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if ok, _ := b.Allow(at); ok {
						admitted.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		return admitted.Load()
	}

	if got := hammer(now); got != burst {
		t.Fatalf("cold bucket admitted %d, want exactly the burst %d", got, burst)
	}
	// 50 intervals later exactly 50 tokens have refilled.
	if got := hammer(now + 50*interval); got != 50 {
		t.Fatalf("after 50 intervals admitted %d, want 50", got)
	}
	// No time passed: everything sheds, and the retry hint is one interval.
	ok, retry := b.Allow(now + 50*interval)
	if ok {
		t.Fatal("drained bucket admitted a bid")
	}
	if retry != time.Duration(interval) {
		t.Fatalf("retry hint = %v, want %v", retry, time.Duration(interval))
	}
	// Waiting out the hint admits again.
	if ok, _ := b.Allow(now + 50*interval + int64(retry)); !ok {
		t.Fatal("bucket still rejects after waiting out its own retry hint")
	}
}

// TestBucketNilUnlimited: nil buckets (rate 0) admit everything.
func TestBucketNilUnlimited(t *testing.T) {
	b := NewBucket(0, 10)
	if b != nil {
		t.Fatal("rate 0 should build a nil (unlimited) bucket")
	}
	if ok, retry := b.Allow(time.Now().UnixNano()); !ok || retry != 0 {
		t.Fatalf("nil bucket: ok=%v retry=%v", ok, retry)
	}
}

// TestControllerHierarchyScopes pins the check order (global before node
// before job), the per-scope counters, and that a rejection at one level
// reports that level's scope.
func TestControllerHierarchyScopes(t *testing.T) {
	clock := time.Now()
	c := NewController(Config{
		GlobalRate: 1000, GlobalBurst: 2,
		NodeRate: 1000, NodeBurst: 1,
		JobRate: 1000, JobBurst: 10,
		Now: func() time.Time { return clock },
	})
	node := c.NewNodeBucket()
	job := c.NewJobBucket()

	if ok, _, _ := c.AdmitBid(node, job); !ok {
		t.Fatal("first bid must admit")
	}
	// Node burst (1) is spent; the node level sheds next.
	ok, scope, retry := c.AdmitBid(node, job)
	if ok || scope != ScopeNode || retry <= 0 {
		t.Fatalf("second bid: ok=%v scope=%q retry=%v, want node shed", ok, scope, retry)
	}
	// A different node passes the node level, and the global burst (2) is
	// now spent — the shed bid above consumed a global token too, by design.
	other := c.NewNodeBucket()
	ok, scope, _ = c.AdmitBid(other, job)
	if ok || scope != ScopeGlobal {
		t.Fatalf("third bid: ok=%v scope=%q, want global shed", ok, scope)
	}
	st := c.Stats()
	if st.ShedGlobal != 1 || st.ShedNode != 1 || st.ShedJob != 0 || st.ShedTotal() != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Overloaded {
		t.Fatal("a shed within the window must report overloaded")
	}
	clock = clock.Add(2 * defaultOverloadWindow)
	if over, _ := c.Overloaded(); over {
		t.Fatal("overload must clear once the window passes without sheds")
	}
}

// TestControllerInflightGate: 64 concurrent claimants against an 8-slot
// gate never exceed 8 admitted at once, sheds are counted, and released
// slots are reusable.
func TestControllerInflightGate(t *testing.T) {
	c := NewController(Config{MaxInflight: 8})
	var (
		cur, peak atomic.Int64
		admitted  atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ok, retry := c.BeginRequest()
				if !ok {
					if retry <= 0 {
						t.Error("inflight shed without a retry hint")
					}
					continue
				}
				admitted.Add(1)
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				c.EndRequest()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 8 {
		t.Fatalf("peak concurrent admissions %d > MaxInflight 8", p)
	}
	if admitted.Load() == 0 {
		t.Fatal("no request was ever admitted")
	}
	st := c.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight gauge = %d after all releases", st.Inflight)
	}
	if st.ShedInflight+admitted.Load() != 64*100 {
		t.Fatalf("admitted %d + shed %d != %d attempts", admitted.Load(), st.ShedInflight, 64*100)
	}
}

// TestControllerStreamEvictionOrder pins the SSE cap policy: at the cap
// the OLDEST stream is evicted first (FIFO), release frees a slot without
// evictions, and a release racing its own eviction is harmless.
func TestControllerStreamEvictionOrder(t *testing.T) {
	c := NewController(Config{MaxStreams: 3})
	var (
		mu      sync.Mutex
		evicted []int
	)
	mark := func(id int) func() {
		return func() {
			mu.Lock()
			evicted = append(evicted, id)
			mu.Unlock()
		}
	}
	rel1 := c.AcquireStream(mark(1))
	rel2 := c.AcquireStream(mark(2))
	_ = c.AcquireStream(mark(3))
	if st := c.Stats(); st.SSEActive != 3 || st.SSEEvicted != 0 {
		t.Fatalf("stats after fill = %+v", st)
	}
	_ = c.AcquireStream(mark(4)) // cap hit: evicts 1
	_ = c.AcquireStream(mark(5)) // cap hit: evicts 2
	mu.Lock()
	got := append([]int(nil), evicted...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("eviction order = %v, want [1 2]", got)
	}
	// Releasing an evicted stream is a no-op; releasing a live one frees a
	// slot so the next acquire does not evict.
	rel1()
	rel2()
	if st := c.Stats(); st.SSEActive != 3 {
		t.Fatalf("active = %d, want 3 (streams 3,4,5)", st.SSEActive)
	}
	// One live release, then an acquire fits without eviction.
	relEvictable := c.AcquireStream(mark(6)) // evicts 3
	relEvictable()
	_ = c.AcquireStream(mark(7)) // fills the freed slot
	mu.Lock()
	final := append([]int(nil), evicted...)
	mu.Unlock()
	if len(final) != 3 || final[2] != 3 {
		t.Fatalf("evictions = %v, want [1 2 3]", final)
	}
	if st := c.Stats(); st.SSEActive != 3 || st.SSEEvicted != 3 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestControllerStreamConcurrent churns acquires/releases from many
// goroutines under -race and checks the registry never leaks entries.
func TestControllerStreamConcurrent(t *testing.T) {
	c := NewController(Config{MaxStreams: 4})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release := c.AcquireStream(func() {})
				release()
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.SSEActive != 0 {
		t.Fatalf("active streams = %d after all releases", st.SSEActive)
	}
}

// TestBreakerTransitions walks closed → open → half-open → closed and the
// failed-probe re-open.
func TestBreakerTransitions(t *testing.T) {
	b := NewBreaker(3, time.Second)
	now := time.Now().UnixNano()
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure(now) // third consecutive failure opens
	if b.Allow(now) {
		t.Fatal("breaker still closed after reaching the threshold")
	}
	if b.Allow(now + int64(500*time.Millisecond)) {
		t.Fatal("breaker allowed before cooldown elapsed")
	}
	probeAt := now + int64(time.Second)
	if !b.Allow(probeAt) {
		t.Fatal("cooldown elapsed: one probe must be allowed")
	}
	if b.Allow(probeAt) {
		t.Fatal("second caller during the half-open probe must fail fast")
	}
	// Failed probe: re-open for a full cooldown.
	b.Failure(probeAt)
	if b.Allow(probeAt + int64(500*time.Millisecond)) {
		t.Fatal("failed probe must re-open for a full cooldown")
	}
	again := probeAt + int64(time.Second)
	if !b.Allow(again) {
		t.Fatal("second probe must be allowed after the re-open cooldown")
	}
	b.Success()
	if !b.Allow(again) || !b.Allow(again) {
		t.Fatal("successful probe must close the circuit for everyone")
	}
	// A single failure on the re-closed circuit does not re-open it.
	b.Failure(again)
	if !b.Allow(again) {
		t.Fatal("success must have reset the failure streak")
	}
}

// TestBreakerProbeElection: when the cooldown lapses under concurrency,
// exactly one caller wins the half-open probe.
func TestBreakerProbeElection(t *testing.T) {
	b := NewBreaker(1, time.Millisecond)
	now := time.Now().UnixNano()
	b.Failure(now)
	probeAt := now + int64(2*time.Millisecond)
	var allowed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Allow(probeAt) {
				allowed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := allowed.Load(); got != 1 {
		t.Fatalf("%d probes allowed, want exactly 1", got)
	}
}

// TestNilController: every hot-path method on a nil controller is a no-op
// that admits, so callers never branch on enablement.
func TestNilController(t *testing.T) {
	var c *Controller
	if ok, _, _ := c.AdmitBid(nil, nil); !ok {
		t.Fatal("nil controller must admit")
	}
	if ok, _ := c.BeginRequest(); !ok {
		t.Fatal("nil controller must admit requests")
	}
	c.EndRequest()
	c.AcquireStream(func() { t.Fatal("nil controller must not evict") })()
	if over, _ := c.Overloaded(); over {
		t.Fatal("nil controller is never overloaded")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// Package admission is the exchange's overload-protection subsystem: it
// decides, before any expensive work happens, whether a request is allowed
// to consume the service.
//
// # Pieces
//
// [Bucket] is a lock-free GCRA token bucket — one atomic int64 of state, so
// an admit costs a load + CAS with zero allocations. [Controller] composes
// buckets into the admission hierarchy (global → per-node → per-job),
// gates bid-submit concurrency (MaxInflight), caps concurrent SSE
// subscribers with oldest-first eviction (MaxStreams), and aggregates shed
// accounting for the admission_* metric family. [Breaker] is an
// atomics-only circuit breaker for slow downstreams (the router wraps each
// replica forward in one).
//
// # Shed policy
//
// Only cheap, retryable ingress is ever shed: bid submissions (429 +
// retry_after_ms in the v1 envelope) and excess SSE subscriptions. Round
// closes, WAL commits and SSE heartbeats are never shed — admission
// protects the round pipeline, it never stalls it. Rejections happen
// before body reads and before idempotency-key claims, so a shed request
// costs almost nothing and does not burn its Idempotency-Key.
//
// # Overload signal
//
// Controller.Overloaded reports true while the in-flight gate is saturated
// or within OverloadWindow (default 1s) of the most recent shed. The
// exchange surfaces it on GET /v1/healthz (503 + retry_after_ms), which
// the router probes to fail fast on behalf of overloaded replicas.
package admission

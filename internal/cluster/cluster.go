// Package cluster is the in-process harness for the paper's real-world
// deployment experiment (§V-C): one aggregator and N edge nodes connected
// over loopback TCP, speaking the internal/transport protocol. It reproduces
// the 1 + 31 node setup of the paper's HPC cluster, with the deterministic
// timing model of internal/mec standing in for wall-clock measurements
// (DESIGN.md §3, substitution 3).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/dist"
	"fmore/internal/exchange"
	"fmore/internal/mec"
	"fmore/internal/ml"
	"fmore/internal/transport"
	"fmore/pkg/client"
)

// Config parameterizes a cluster run.
type Config struct {
	// Nodes is the edge-node count (the paper uses 31).
	Nodes int
	// K is the per-round winner count.
	K int
	// Rounds is the number of federated rounds.
	Rounds int
	// Task selects the workload (the paper's cluster runs CIFAR-10).
	Task data.TaskKind
	// TrainSamples/TestSamples size the generated corpus.
	TrainSamples, TestSamples int
	// MinNodeData/MaxNodeData bound per-node local data (the paper
	// allocates [2000, 10000]; scale down for CI).
	MinNodeData, MaxNodeData int
	// LocalEpochs, BatchSize, LR are local training hyperparameters.
	LocalEpochs, BatchSize int
	LR                     float64
	// RandomSelection runs the RandFL baseline instead of the auction.
	RandomSelection bool
	// UseExchange routes winner determination through an internal/exchange
	// job instead of the server's private auctioneer: TCP registrations are
	// mirrored into the exchange's node registry and every round is
	// delegated over the transport.Engine interface, exercising the same
	// engine the standalone exchange service runs. Ignored under
	// RandomSelection.
	UseExchange bool
	// Psi enables ψ-FMore on the server when in (0, 1).
	Psi float64
	// Seed drives the whole run.
	Seed int64
	// MaxSamplesPerRound caps per-winner local subsets (0 = offered size).
	MaxSamplesPerRound int

	// BreachNodeID, when >= 0, makes that node breach its contract at round
	// 1 (winning then vanishing) to exercise blacklisting. -1 disables.
	BreachNodeID int
	// DropNodeID, when >= 0, makes that node disconnect after round 1.
	DropNodeID int
}

func (c *Config) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 31
	}
	if c.K == 0 {
		c.K = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.Task == 0 {
		c.Task = data.CIFAR10
	}
	if c.TrainSamples == 0 {
		c.TrainSamples = 2000
	}
	if c.TestSamples == 0 {
		c.TestSamples = 400
	}
	if c.MinNodeData == 0 {
		c.MinNodeData = 40
	}
	if c.MaxNodeData == 0 {
		c.MaxNodeData = 200
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		if c.Task == data.CIFAR10 {
			c.LR = 0.02
		} else {
			c.LR = 0.04
		}
	}
	if c.BreachNodeID == 0 {
		c.BreachNodeID = -1
	}
	if c.DropNodeID == 0 {
		c.DropNodeID = -1
	}
}

// Result is the harness output: the aggregator's report augmented with the
// simulated per-round times of the mec timing model.
type Result struct {
	Report *transport.ServerReport
	// SimTimeSec and CumSimTimeSec are the simulated per-round and
	// cumulative durations (Fig. 13's y axis).
	SimTimeSec    []float64
	CumSimTimeSec []float64
	// Summaries holds each client's session summary, indexed by node ID
	// (nil for clients that errored).
	Summaries []*transport.ClientSummary
	// ClientErrors holds the per-node error, if any.
	ClientErrors []error
}

// clusterRule builds the deployment's scoring rule: additive with
// coefficients 0.4/0.3/0.3 over (computing power, bandwidth, data size),
// matching §V-A of the paper. Qualities are normalized client-side to [0,1].
func clusterRule() (auction.ScoringRule, error) {
	return auction.NewAdditive(0.4, 0.3, 0.3)
}

// Run generates the workload, starts the aggregator and all edge-node
// clients on loopback TCP, executes the full training, and assembles the
// result.
func Run(cfg Config) (*Result, error) {
	cfg.setDefaults()
	if cfg.Nodes < 2 || cfg.K < 1 || cfg.K >= cfg.Nodes {
		return nil, fmt.Errorf("cluster: need Nodes >= 2 and 1 <= K < Nodes, got %d/%d", cfg.Nodes, cfg.K)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	corpus, err := data.GenerateTask(cfg.Task, cfg.TrainSamples, cfg.TestSamples, cfg.Seed)
	if err != nil {
		return nil, err
	}
	part, err := data.PartitionHeterogeneous(corpus.Train, corpus.Classes, cfg.Nodes,
		cfg.MinNodeData, cfg.MaxNodeData, 1, rng)
	if err != nil {
		return nil, err
	}
	theta, err := dist.NewUniform(0.5, 1.5)
	if err != nil {
		return nil, err
	}
	pop, err := mec.NewPopulation(mec.PopulationConfig{
		N: cfg.Nodes, Theta: theta, Partition: part.Nodes, Classes: corpus.Classes,
	}, rng)
	if err != nil {
		return nil, err
	}

	rule, err := clusterRule()
	if err != nil {
		return nil, err
	}
	cost, err := auction.NewLinearCost(0.1, 0.1, 0.1)
	if err != nil {
		return nil, err
	}
	strategy, err := auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: rule, Cost: cost, Theta: theta,
		N: cfg.Nodes, K: cfg.K,
		QLo: []float64{0, 0, 0}, QHi: []float64{1, 1, 1},
		ThetaGridPoints: 65, QualityGridPoints: 24,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: equilibrium: %w", err)
	}

	// Pre-draw the per-round offered-resource schedule so client bids and
	// the timing model see the same dynamics.
	offers := make([][]mec.Resources, cfg.Rounds+1)
	dynRng := rand.New(rand.NewSource(cfg.Seed + 7))
	for round := 1; round <= cfg.Rounds; round++ {
		pop.Step(dynRng)
		row := make([]mec.Resources, cfg.Nodes)
		for i, n := range pop.Nodes {
			row[i] = n.Offered
		}
		offers[round] = row
	}

	global, err := buildModel(cfg.Task, rand.New(rand.NewSource(cfg.Seed+13)))
	if err != nil {
		return nil, err
	}

	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	defer listener.Close() //nolint:errcheck // harness teardown

	serverCfg := transport.ServerConfig{
		Listener:        listener,
		ExpectNodes:     cfg.Nodes,
		Rounds:          cfg.Rounds,
		K:               cfg.K,
		Rule:            rule,
		Psi:             cfg.Psi,
		Global:          global,
		Test:            corpus.Test,
		Seed:            cfg.Seed,
		RandomSelection: cfg.RandomSelection,
		RegisterTimeout: 30 * time.Second,
		BidTimeout:      30 * time.Second,
		UpdateTimeout:   120 * time.Second,
	}
	var (
		regErrMu sync.Mutex
		regErr   error
	)
	if cfg.UseExchange && !cfg.RandomSelection {
		// The exchange runs as a real HTTP service on loopback and the
		// harness reaches it exclusively through the pkg/client SDK — the
		// same path a separately deployed exchange would be driven over, so
		// the cluster experiment exercises the full /v1 API surface
		// (serialization, idempotency keys, error envelope) rather than an
		// in-process shortcut.
		ex := exchange.New(exchange.Options{RequireRegistration: true})
		defer ex.Close()
		exLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: exchange listen: %w", err)
		}
		exSrv := &http.Server{Handler: exchange.NewHandler(ex)}
		go exSrv.Serve(exLn) //nolint:errcheck // closed on teardown
		defer exSrv.Close()  //nolint:errcheck // harness teardown
		cl, err := client.New("http://" + exLn.Addr().String())
		if err != nil {
			return nil, fmt.Errorf("cluster: exchange client: %w", err)
		}
		ruleSpec, err := transport.SpecForRule(rule)
		if err != nil {
			return nil, fmt.Errorf("cluster: exchange rule: %w", err)
		}
		ctx := context.Background()
		job, err := cl.CreateJob(ctx, client.JobSpec{
			ID:   "cluster",
			Rule: ruleSpec,
			K:    cfg.K,
			Psi:  cfg.Psi,
			Seed: cfg.Seed,
			// BidWindow 0: the transport server owns the round cadence and
			// drives the job manually through the engine adapter.
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: exchange job: %w", err)
		}
		serverCfg.Engine = client.NewEngine(ctx, cl, job.ID)
		// The exchange requires registration, so a failed mirror here would
		// silently drop the node from every round (its bids answer 403 and
		// the engine tolerates individual rejections) — capture the first
		// failure and fail the run loudly instead.
		serverCfg.OnRegister = func(nodeID int) {
			if err := cl.Register(ctx, nodeID, "cluster-tcp-node"); err != nil {
				regErrMu.Lock()
				if regErr == nil {
					regErr = fmt.Errorf("cluster: mirroring node %d into the exchange: %w", nodeID, err)
				}
				regErrMu.Unlock()
			}
		}
	}
	server, err := transport.NewServer(serverCfg)
	if err != nil {
		return nil, err
	}

	type serverOut struct {
		report *transport.ServerReport
		err    error
	}
	serverCh := make(chan serverOut, 1)
	go func() {
		report, err := server.Run()
		serverCh <- serverOut{report, err}
	}()

	res := &Result{
		Summaries:    make([]*transport.ClientSummary, cfg.Nodes),
		ClientErrors: make([]error, cfg.Nodes),
	}
	var wg sync.WaitGroup
	addr := listener.Addr().String()
	for i := 0; i < cfg.Nodes; i++ {
		node := pop.Nodes[i]
		model, err := buildModel(cfg.Task, rand.New(rand.NewSource(cfg.Seed+100+int64(i))))
		if err != nil {
			return nil, err
		}
		clientCfg := transport.ClientConfig{
			Addr:   addr,
			NodeID: node.ID,
			Model:  model,
			Local:  node.Local,
			Qualities: func(round int) []float64 {
				off := offerFor(offers, round, node.ID, node.Offered)
				return []float64{
					off.CPUCores / 8,
					off.BandwidthMbps / 100,
					float64(off.DataSize) / float64(cfg.MaxNodeData),
				}
			},
			Payment: func(int) float64 { return strategy.Payment(node.Theta) },
			OfferedSamples: func(round int) int {
				n := offerFor(offers, round, node.ID, node.Offered).DataSize
				if cfg.MaxSamplesPerRound > 0 && n > cfg.MaxSamplesPerRound {
					n = cfg.MaxSamplesPerRound
				}
				return n
			},
			LocalEpochs: cfg.LocalEpochs,
			BatchSize:   cfg.BatchSize,
			LR:          cfg.LR,
			Seed:        cfg.Seed + 200 + int64(i),
		}
		if node.ID == cfg.BreachNodeID {
			clientCfg.BreachAtRound = 1
		}
		if node.ID == cfg.DropNodeID {
			clientCfg.DropAfterRound = 1
		}
		wg.Add(1)
		go func(i int, c transport.ClientConfig) {
			defer wg.Done()
			summary, err := transport.RunClient(c)
			res.Summaries[i] = summary
			res.ClientErrors[i] = err
		}(i, clientCfg)
	}

	out := <-serverCh
	wg.Wait()
	if out.err != nil {
		return nil, fmt.Errorf("cluster: server: %w", out.err)
	}
	regErrMu.Lock()
	mirrorErr := regErr
	regErrMu.Unlock()
	if mirrorErr != nil {
		return nil, mirrorErr
	}
	res.Report = out.report

	// Simulated timing (Fig. 13): per round, the slowest winner gates the
	// synchronous aggregation.
	tm := mec.DefaultTimingModel(global.NumParams())
	cum := 0.0
	for _, round := range res.Report.Rounds {
		winners := make([]*mec.EdgeNode, 0, len(round.SelectedIDs))
		samples := make([]int, 0, len(round.SelectedIDs))
		for _, id := range round.SelectedIDs {
			node := pop.Nodes[id]
			off := offerFor(offers, round.Round, id, node.Offered)
			// Evaluate timing against the round's offered resources.
			shadow := *node
			shadow.Offered = off
			winners = append(winners, &shadow)
			n := off.DataSize
			if cfg.MaxSamplesPerRound > 0 && n > cfg.MaxSamplesPerRound {
				n = cfg.MaxSamplesPerRound
			}
			samples = append(samples, n)
		}
		simT := 0.0
		if len(winners) > 0 {
			simT, err = tm.RoundTime(winners, samples, cfg.LocalEpochs)
			if err != nil {
				return nil, err
			}
		}
		cum += simT
		res.SimTimeSec = append(res.SimTimeSec, simT)
		res.CumSimTimeSec = append(res.CumSimTimeSec, cum)
	}
	return res, nil
}

// offerFor reads the pre-drawn offer schedule, falling back to the node's
// static offer when out of range.
func offerFor(offers [][]mec.Resources, round, id int, fallback mec.Resources) mec.Resources {
	if round >= 0 && round < len(offers) && offers[round] != nil && id < len(offers[round]) {
		return offers[round][id]
	}
	return fallback
}

// buildModel constructs the task-appropriate classifier.
func buildModel(kind data.TaskKind, rng *rand.Rand) (ml.Classifier, error) {
	switch kind {
	case data.MNISTO, data.MNISTF:
		return ml.NewImageCNN(ml.MNISTCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.CIFAR10:
		return ml.NewImageCNN(ml.CIFARCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.HPNews:
		return ml.NewLSTMClassifier(ml.LSTMConfig{
			Vocab: data.TextVocab, Embed: 10, Hidden: 20,
			Classes: data.NumClasses, Momentum: 0.9,
		}, rng)
	default:
		return nil, errors.New("cluster: unknown task kind")
	}
}

// TimeToAccuracy returns the cumulative simulated time at which the
// aggregator first reached the target accuracy, or 0 if never.
func (r *Result) TimeToAccuracy(target float64) float64 {
	for i, round := range r.Report.Rounds {
		if round.Accuracy >= target {
			return r.CumSimTimeSec[i]
		}
	}
	return 0
}

// Accuracies returns the per-round accuracy series.
func (r *Result) Accuracies() []float64 {
	out := make([]float64, len(r.Report.Rounds))
	for i, round := range r.Report.Rounds {
		out[i] = round.Accuracy
	}
	return out
}

// Losses returns the per-round loss series.
func (r *Result) Losses() []float64 {
	out := make([]float64, len(r.Report.Rounds))
	for i, round := range r.Report.Rounds {
		out[i] = round.Loss
	}
	return out
}

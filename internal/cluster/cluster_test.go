package cluster

import (
	"math/rand"
	"testing"

	"fmore/internal/data"
)

// tinyConfig keeps cluster integration tests fast: few nodes, small data,
// short rounds.
func tinyConfig() Config {
	return Config{
		Nodes:        5,
		K:            2,
		Rounds:       2,
		Task:         data.MNISTO,
		TrainSamples: 300,
		TestSamples:  60,
		MinNodeData:  20,
		MaxNodeData:  60,
		BatchSize:    16,
		Seed:         1,
		BreachNodeID: -1,
		DropNodeID:   -1,
	}
}

func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test")
	}
	res, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Report.Rounds))
	}
	for i, r := range res.Report.Rounds {
		if len(r.SelectedIDs) == 0 {
			t.Errorf("round %d selected nobody", r.Round)
		}
		if r.Accuracy <= 0 || r.Accuracy > 1 {
			t.Errorf("round %d accuracy %v out of range", r.Round, r.Accuracy)
		}
		if res.SimTimeSec[i] <= 0 {
			t.Errorf("round %d simulated time %v, want positive", r.Round, res.SimTimeSec[i])
		}
	}
	if res.CumSimTimeSec[1] <= res.CumSimTimeSec[0] {
		t.Error("cumulative simulated time should increase")
	}
	completed := 0
	for i, s := range res.Summaries {
		if res.ClientErrors[i] != nil {
			t.Errorf("client %d: %v", i, res.ClientErrors[i])
		}
		if s != nil && s.CompletedNormally {
			completed++
		}
	}
	if completed != 5 {
		t.Errorf("completed clients = %d, want 5", completed)
	}
}

// TestClusterUsesExchangeEngine proves the TCP harness and the exchange
// share one auction engine: winner determination is delegated to an
// internal/exchange job (nodes registered over the wire land in the
// exchange's registry), and the run must still select winners and pay them
// every round.
func TestClusterUsesExchangeEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test")
	}
	cfg := tinyConfig()
	cfg.UseExchange = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Report.Rounds))
	}
	for _, r := range res.Report.Rounds {
		if len(r.SelectedIDs) == 0 {
			t.Errorf("round %d selected nobody", r.Round)
		}
		if r.TotalPayment <= 0 {
			t.Errorf("round %d paid %v, want positive (FMore selection pays winners)", r.Round, r.TotalPayment)
		}
	}
}

func TestClusterRandomSelectionBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test")
	}
	cfg := tinyConfig()
	cfg.RandomSelection = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Report.Rounds {
		if r.TotalPayment != 0 {
			t.Errorf("RandFL round %d paid %v, want 0", r.Round, r.TotalPayment)
		}
	}
}

func TestClusterBreachInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster integration test")
	}
	cfg := tinyConfig()
	cfg.BreachNodeID = 0
	cfg.Rounds = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The run completes all rounds even if node 0 won round 1 and vanished.
	if len(res.Report.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(res.Report.Rounds))
	}
}

func TestClusterConfigValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.Nodes = 1
	if _, err := Run(cfg); err == nil {
		t.Error("Nodes=1: want error")
	}
	cfg = tinyConfig()
	cfg.K = 5
	if _, err := Run(cfg); err == nil {
		t.Error("K=Nodes: want error")
	}
}

func TestBuildModelPerTask(t *testing.T) {
	for _, kind := range []data.TaskKind{data.MNISTO, data.MNISTF, data.CIFAR10, data.HPNews} {
		m, err := buildModel(kind, newTestRNG())
		if err != nil {
			t.Errorf("%v: %v", kind, err)
			continue
		}
		if m.NumParams() == 0 {
			t.Errorf("%v: zero parameters", kind)
		}
	}
	if _, err := buildModel(data.TaskKind(99), newTestRNG()); err == nil {
		t.Error("unknown task: want error")
	}
}

func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }

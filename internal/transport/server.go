package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"fmore/internal/auction"
	"fmore/internal/ml"
)

// Engine abstracts winner determination so the aggregator can delegate
// rounds to an external auction service instead of its private auctioneer.
// internal/exchange implements it (one hosted job per server), proving the
// TCP harness and the exchange share one auction engine.
type Engine interface {
	// RunRound determines the round's winners over the collected bids.
	RunRound(round int, bids []auction.Bid) (auction.Outcome, error)
}

// ServerConfig parameterizes the aggregator server.
type ServerConfig struct {
	// Listener accepts node connections; the caller owns its lifecycle
	// (pass a ":0" listener in tests).
	Listener net.Listener
	// ExpectNodes is how many registrations to wait for before training.
	ExpectNodes int
	// RegisterTimeout bounds the whole registration phase.
	RegisterTimeout time.Duration
	// Rounds is the number of federated rounds to run.
	Rounds int
	// K is the number of auction winners per round.
	K int
	// Rule is the broadcast scoring rule (must be serializable via
	// SpecForRule).
	Rule auction.ScoringRule
	// Payment is the payment rule (default first-price).
	Payment auction.PaymentRule
	// Psi enables ψ-FMore when < 1 (default 1).
	Psi float64
	// Global is the aggregator's model, trained in place.
	Global ml.Classifier
	// Test is the evaluation set.
	Test []ml.Sample
	// BidTimeout bounds bid collection per round ("when the timer with a
	// predefined threshold expires, the aggregator finishes bid collection").
	BidTimeout time.Duration
	// UpdateTimeout bounds waiting for winner updates; a winner that misses
	// it is blacklisted (contract breach).
	UpdateTimeout time.Duration
	// SendTimeout bounds every outbound message.
	SendTimeout time.Duration
	// Seed drives auction tie-breaks.
	Seed int64
	// RandomSelection switches the server to the RandFL baseline: K bidders
	// are drawn uniformly (no payments), while bid scores are still recorded
	// for score-distribution analysis (Fig. 8).
	RandomSelection bool
	// Engine, when set, delegates winner determination to an external
	// auction service (e.g. an internal/exchange job) instead of the
	// server's private auctioneer. RandomSelection takes precedence.
	Engine Engine
	// OnRegister, when set, is invoked once per accepted node registration —
	// the hook the cluster harness uses to mirror TCP registrations into the
	// exchange's node registry.
	OnRegister func(nodeID int)
}

func (c *ServerConfig) setDefaults() {
	if c.RegisterTimeout == 0 {
		c.RegisterTimeout = 10 * time.Second
	}
	if c.BidTimeout == 0 {
		c.BidTimeout = 10 * time.Second
	}
	if c.UpdateTimeout == 0 {
		c.UpdateTimeout = 60 * time.Second
	}
	if c.SendTimeout == 0 {
		c.SendTimeout = 10 * time.Second
	}
	if c.Psi == 0 {
		c.Psi = 1
	}
	if c.Payment == 0 {
		c.Payment = auction.FirstPrice
	}
}

func (c *ServerConfig) validate() error {
	if c.Listener == nil {
		return errors.New("transport: ServerConfig.Listener is required")
	}
	if c.ExpectNodes < 1 {
		return fmt.Errorf("transport: ExpectNodes must be >= 1, got %d", c.ExpectNodes)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("transport: Rounds must be >= 1, got %d", c.Rounds)
	}
	if c.K < 1 {
		return fmt.Errorf("transport: K must be >= 1, got %d", c.K)
	}
	if c.Rule == nil || c.Global == nil || len(c.Test) == 0 {
		return errors.New("transport: Rule, Global and Test are required")
	}
	return nil
}

// ServerRound records one aggregator round.
type ServerRound struct {
	Round        int
	Accuracy     float64
	Loss         float64
	SelectedIDs  []int
	AllScores    []float64
	TotalPayment float64
	// WallTimeSec is the measured wall-clock duration of the round.
	WallTimeSec float64
	// TrainSamples is the total samples reported by winners.
	TrainSamples int
}

// ServerReport is the outcome of a full server run.
type ServerReport struct {
	Rounds []ServerRound
	// Blacklisted lists node IDs dropped for contract breach.
	Blacklisted []int
	// FinalAccuracy repeats the last round's accuracy.
	FinalAccuracy float64
}

// nodeSession is one registered node connection.
type nodeSession struct {
	id    int
	codec *Codec
	alive bool
}

// Server is the FMore aggregator over TCP.
type Server struct {
	cfg   ServerConfig
	spec  RuleSpec
	nodes []*nodeSession
	rng   *rand.Rand
}

// NewServer validates the configuration.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	spec, err := SpecForRule(cfg.Rule)
	if err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, spec: spec, rng: rand.New(rand.NewSource(cfg.Seed + 1))}, nil
}

// randomOutcome implements the RandFL baseline: K uniform winners with no
// payments; scores are still evaluated for telemetry.
func (s *Server) randomOutcome(bids []auction.Bid) (auction.Outcome, error) {
	scores := make([]float64, len(bids))
	for i, b := range bids {
		sc, err := auction.Score(s.cfg.Rule, b.Qualities, b.Payment)
		if err != nil {
			return auction.Outcome{}, err
		}
		scores[i] = sc
	}
	k := s.cfg.K
	if k > len(bids) {
		k = len(bids)
	}
	perm := s.rng.Perm(len(bids))[:k]
	out := auction.Outcome{Scores: scores}
	for _, idx := range perm {
		out.Winners = append(out.Winners, auction.Winner{
			Bid:     bids[idx].Clone(),
			Score:   scores[idx],
			Payment: 0,
		})
	}
	return out, nil
}

// Run executes registration, all training rounds, and shutdown, returning
// the per-round report.
func (s *Server) Run() (*ServerReport, error) {
	if err := s.register(); err != nil {
		return nil, err
	}
	defer s.closeAll()

	var auctioneer *auction.Auctioneer
	if s.cfg.Engine == nil {
		var err error
		auctioneer, err = auction.NewAuctioneer(auction.Config{
			Rule:    s.cfg.Rule,
			K:       s.cfg.K,
			Payment: s.cfg.Payment,
			Psi:     s.cfg.Psi,
		}, rand.New(rand.NewSource(s.cfg.Seed)))
		if err != nil {
			return nil, err
		}
	}

	report := &ServerReport{}
	for round := 1; round <= s.cfg.Rounds; round++ {
		rm, err := s.runRound(round, auctioneer, report)
		if err != nil {
			return nil, fmt.Errorf("transport: round %d: %w", round, err)
		}
		report.Rounds = append(report.Rounds, rm)
	}
	if len(report.Rounds) > 0 {
		report.FinalAccuracy = report.Rounds[len(report.Rounds)-1].Accuracy
	}
	s.broadcastDone(report)
	return report, nil
}

// register accepts connections until ExpectNodes hellos arrive or the
// registration deadline passes. An acceptor goroutine hands each connection
// to a handshake goroutine; the main loop blocks on completed handshakes so
// it never re-enters Accept while registrations are still in flight.
func (s *Server) register() error {
	deadline := time.Now().Add(s.cfg.RegisterTimeout)
	if dl, ok := s.cfg.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		if err := dl.SetDeadline(deadline); err != nil {
			return fmt.Errorf("transport: listener deadline: %w", err)
		}
	}
	sessions := make(chan *nodeSession, s.cfg.ExpectNodes*2)
	go func() {
		for {
			conn, err := s.cfg.Listener.Accept()
			if err != nil {
				return // deadline hit or listener closed
			}
			go func(conn net.Conn) {
				codec := NewCodec(conn)
				env, err := codec.Recv(time.Until(deadline))
				if err != nil || env.Kind != KindHello {
					_ = codec.Close()
					return
				}
				sessions <- &nodeSession{id: env.Hello.NodeID, codec: codec, alive: true}
			}(conn)
		}
	}()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(s.nodes) < s.cfg.ExpectNodes {
		select {
		case sess := <-sessions:
			s.nodes = append(s.nodes, sess)
			if s.cfg.OnRegister != nil {
				s.cfg.OnRegister(sess.id)
			}
		case <-timer.C:
			return fmt.Errorf("transport: only %d/%d nodes registered before deadline",
				len(s.nodes), s.cfg.ExpectNodes)
		}
	}
	// Stop accepting promptly and turn away stragglers.
	if dl, ok := s.cfg.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		_ = dl.SetDeadline(time.Now())
	}
	for {
		select {
		case sess := <-sessions:
			_ = sess.codec.Close()
		default:
			return nil
		}
	}
}

// runRound executes one full auction + training round.
func (s *Server) runRound(round int, auctioneer *auction.Auctioneer, report *ServerReport) (ServerRound, error) {
	start := time.Now()
	rm := ServerRound{Round: round}

	// Phase 1: broadcast the bid ask.
	ask := &Envelope{Kind: KindAsk, Ask: &Ask{Round: round, K: s.cfg.K, Rule: s.spec}}
	s.parallelOverAlive(func(n *nodeSession) {
		if err := n.codec.Send(ask, s.cfg.SendTimeout); err != nil {
			n.alive = false
		}
	})

	// Phase 2: collect sealed bids until the timer expires.
	type bidResult struct {
		sess *nodeSession
		bid  *Bid
	}
	var mu sync.Mutex
	var bids []bidResult
	s.parallelOverAlive(func(n *nodeSession) {
		env, err := n.codec.Recv(s.cfg.BidTimeout)
		if err != nil || env.Kind != KindBid {
			// Missing the bid window only skips this round; the node may
			// recover next round.
			return
		}
		if env.Bid.Declined {
			return
		}
		mu.Lock()
		bids = append(bids, bidResult{sess: n, bid: env.Bid})
		mu.Unlock()
	})
	if len(bids) == 0 {
		// No participation: evaluate and move on (the paper's aggregator
		// would also idle the round).
		loss, acc, err := s.cfg.Global.Evaluate(s.cfg.Test)
		if err != nil {
			return rm, err
		}
		rm.Loss, rm.Accuracy = loss, acc
		rm.WallTimeSec = time.Since(start).Seconds()
		return rm, nil
	}

	auctionBids := make([]auction.Bid, len(bids))
	byID := make(map[int]*nodeSession, len(bids))
	for i, b := range bids {
		auctionBids[i] = auction.Bid{NodeID: b.bid.NodeID, Qualities: b.bid.Qualities, Payment: b.bid.Payment}
		byID[b.bid.NodeID] = b.sess
	}
	// Winner determination runs on the pooled selection core either way:
	// the delegated engine (the exchange adapter) reuses its job's selector
	// across rounds, and the in-process auctioneer carries its own.
	var (
		outcome auction.Outcome
		err     error
	)
	switch {
	case s.cfg.RandomSelection:
		outcome, err = s.randomOutcome(auctionBids)
	case s.cfg.Engine != nil:
		outcome, err = s.cfg.Engine.RunRound(round, auctionBids)
	default:
		outcome, err = auctioneer.Run(auctionBids)
	}
	if err != nil {
		return rm, err
	}
	rm.AllScores = outcome.Scores
	rm.TotalPayment = outcome.TotalPayment()

	// Phase 3: notify every bidder; winners receive the model and payment.
	globalParams := s.cfg.Global.ParamVector()
	winners := make(map[int]float64, len(outcome.Winners)) // id -> payment
	for _, w := range outcome.Winners {
		winners[w.Bid.NodeID] = w.Payment
	}
	s.parallelOverAlive(func(n *nodeSession) {
		if _, bidded := byID[n.id]; !bidded {
			return
		}
		res := &Result{Round: round}
		if pay, won := winners[n.id]; won {
			res.Won, res.Payment, res.Params = true, pay, globalParams
		}
		if err := n.codec.Send(&Envelope{Kind: KindResult, Result: res}, s.cfg.SendTimeout); err != nil {
			n.alive = false
		}
	})

	// Phase 4: collect updates from winners; breaches are blacklisted.
	agg := make([]float64, len(globalParams))
	totalWeight := 0.0
	s.parallelOverAlive(func(n *nodeSession) {
		if _, won := winners[n.id]; !won || !n.alive {
			return
		}
		env, err := n.codec.Recv(s.cfg.UpdateTimeout)
		if err != nil || env.Kind != KindUpdate || len(env.Update.Params) != len(globalParams) {
			n.alive = false
			mu.Lock()
			report.Blacklisted = append(report.Blacklisted, n.id)
			mu.Unlock()
			_ = n.codec.Close()
			return
		}
		mu.Lock()
		w := float64(env.Update.NumSamples)
		if w <= 0 {
			w = 1
		}
		for j, v := range env.Update.Params {
			agg[j] += w * v
		}
		totalWeight += w
		rm.SelectedIDs = append(rm.SelectedIDs, n.id)
		rm.TrainSamples += env.Update.NumSamples
		mu.Unlock()
	})
	if totalWeight > 0 {
		for j := range agg {
			agg[j] /= totalWeight
		}
		if err := s.cfg.Global.SetParamVector(agg); err != nil {
			return rm, err
		}
	}

	loss, acc, err := s.cfg.Global.Evaluate(s.cfg.Test)
	if err != nil {
		return rm, err
	}
	rm.Loss, rm.Accuracy = loss, acc
	rm.WallTimeSec = time.Since(start).Seconds()
	return rm, nil
}

// parallelOverAlive applies fn concurrently to every alive session and waits.
func (s *Server) parallelOverAlive(fn func(*nodeSession)) {
	var wg sync.WaitGroup
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		wg.Add(1)
		go func(n *nodeSession) {
			defer wg.Done()
			fn(n)
		}(n)
	}
	wg.Wait()
}

func (s *Server) broadcastDone(report *ServerReport) {
	done := &Envelope{Kind: KindDone, Done: &Done{Rounds: len(report.Rounds), FinalAccuracy: report.FinalAccuracy}}
	s.parallelOverAlive(func(n *nodeSession) {
		_ = n.codec.Send(done, s.cfg.SendTimeout)
	})
}

func (s *Server) closeAll() {
	for _, n := range s.nodes {
		_ = n.codec.Close()
	}
}

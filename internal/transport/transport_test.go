package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"fmore/internal/auction"
	"fmore/internal/ml"
)

func TestRuleSpecRoundTrip(t *testing.T) {
	add, err := auction.NewAdditive(0.4, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	leo, err := auction.NewLeontief(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := auction.NewCobbDouglas(25, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := auction.NewNormalized(leo, []float64{1000, 5}, []float64{5000, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []auction.ScoringRule{add, leo, cd, norm} {
		spec, err := SpecForRule(rule)
		if err != nil {
			t.Fatalf("%s: %v", rule.Name(), err)
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", rule.Name(), err)
		}
		if rebuilt.Name() != rule.Name() || rebuilt.Dims() != rule.Dims() {
			t.Errorf("rebuilt %s/%d, want %s/%d", rebuilt.Name(), rebuilt.Dims(), rule.Name(), rule.Dims())
		}
		q := make([]float64, rule.Dims())
		for i := range q {
			q[i] = 0.3 + 0.2*float64(i)
		}
		if a, b := rule.Value(q), rebuilt.Value(q); a != b {
			t.Errorf("%s: value %v != rebuilt %v", rule.Name(), a, b)
		}
	}
	if _, err := (RuleSpec{Kind: "nope"}).Build(); err == nil {
		t.Error("unknown kind: want error")
	}
	if _, err := SpecForRule(fakeRule{}); err == nil {
		t.Error("unsupported rule: want error")
	}
}

type fakeRule struct{}

func (fakeRule) Value([]float64) float64 { return 0 }
func (fakeRule) Dims() int               { return 1 }
func (fakeRule) Name() string            { return "fake" }

func TestEnvelopeValidate(t *testing.T) {
	good := &Envelope{Kind: KindHello, Hello: &Hello{NodeID: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid envelope rejected: %v", err)
	}
	bad := &Envelope{Kind: KindAsk} // payload missing
	if err := bad.Validate(); !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("missing payload: got %v, want ErrUnexpectedMessage", err)
	}
	unknown := &Envelope{Kind: MsgKind(99)}
	if err := unknown.Validate(); err == nil {
		t.Error("unknown kind: want error")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewCodec(a), NewCodec(b)
	defer ca.Close() //nolint:errcheck
	defer cb.Close() //nolint:errcheck

	want := &Envelope{Kind: KindBid, Bid: &Bid{
		Round: 3, NodeID: 7, Qualities: []float64{0.5, 0.25}, Payment: 1.5,
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ca.Send(want, time.Second); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err := cb.Recv(time.Second)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindBid || got.Bid.NodeID != 7 || got.Bid.Payment != 1.5 {
		t.Errorf("got %+v, want %+v", got.Bid, want.Bid)
	}
	if len(got.Bid.Qualities) != 2 || got.Bid.Qualities[1] != 0.25 {
		t.Errorf("qualities = %v", got.Bid.Qualities)
	}
}

func TestCodecRecvTimeout(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close() //nolint:errcheck
	cb := NewCodec(b)
	defer cb.Close() //nolint:errcheck
	start := time.Now()
	if _, err := cb.Recv(50 * time.Millisecond); err == nil {
		t.Error("want timeout error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, want ~50ms", elapsed)
	}
}

func TestCodecRejectsInvalidEnvelope(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close() //nolint:errcheck
	defer b.Close() //nolint:errcheck
	ca := NewCodec(a)
	if err := ca.Send(&Envelope{Kind: KindAsk}, time.Second); err == nil {
		t.Error("invalid envelope: want error before any bytes hit the wire")
	}
}

// startTestServer builds an aggregator over a loopback listener with a tiny
// MLP task shared by the integration tests below.
func startTestServer(t *testing.T, nodes, k, rounds int, random bool) (addr string, done <-chan struct {
	report *ServerReport
	err    error
}) {
	t.Helper()
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { listener.Close() }) //nolint:errcheck

	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	global, err := ml.NewMLP(4, []int{6}, 2, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	test := make([]ml.Sample, 20)
	rng := rand.New(rand.NewSource(2))
	for i := range test {
		x := make([]float64, 4)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		if i%2 == 0 {
			x[0] += 3
		}
		test[i] = ml.Sample{Features: x, Label: i % 2}
	}
	server, err := NewServer(ServerConfig{
		Listener:        listener,
		ExpectNodes:     nodes,
		Rounds:          rounds,
		K:               k,
		Rule:            rule,
		Global:          global,
		Test:            test,
		Seed:            3,
		RandomSelection: random,
		RegisterTimeout: 5 * time.Second,
		BidTimeout:      5 * time.Second,
		UpdateTimeout:   10 * time.Second,
		SendTimeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct {
		report *ServerReport
		err    error
	}, 1)
	go func() {
		report, err := server.Run()
		ch <- struct {
			report *ServerReport
			err    error
		}{report, err}
	}()
	return listener.Addr().String(), ch
}

func testClientConfig(t *testing.T, addr string, id int, quality float64) ClientConfig {
	t.Helper()
	model, err := ml.NewMLP(4, []int{6}, 2, 0, rand.New(rand.NewSource(int64(10+id))))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(20 + id)))
	local := make([]ml.Sample, 30)
	for i := range local {
		x := make([]float64, 4)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		if i%2 == 0 {
			x[0] += 3
		}
		local[i] = ml.Sample{Features: x, Label: i % 2}
	}
	return ClientConfig{
		Addr:      addr,
		NodeID:    id,
		Model:     model,
		Local:     local,
		Qualities: func(int) []float64 { return []float64{quality, quality} },
		Payment:   func(int) float64 { return 0.05 },
		Seed:      int64(30 + id),
		Timeout:   5 * time.Second,
	}
}

func TestEndToEndFederatedRound(t *testing.T) {
	const nodes, k, rounds = 4, 2, 3
	addr, done := startTestServer(t, nodes, k, rounds, false)

	var wg sync.WaitGroup
	summaries := make([]*ClientSummary, nodes)
	for i := 0; i < nodes; i++ {
		// Node 0 and 1 offer higher quality, so they should win every round.
		quality := 0.9
		if i >= 2 {
			quality = 0.2
		}
		cfg := testClientConfig(t, addr, i, quality)
		wg.Add(1)
		go func(i int, cfg ClientConfig) {
			defer wg.Done()
			s, err := RunClient(cfg)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
			summaries[i] = s
		}(i, cfg)
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	if len(out.report.Rounds) != rounds {
		t.Fatalf("rounds = %d, want %d", len(out.report.Rounds), rounds)
	}
	for _, r := range out.report.Rounds {
		if len(r.SelectedIDs) != k {
			t.Errorf("round %d selected %v, want %d winners", r.Round, r.SelectedIDs, k)
		}
		for _, id := range r.SelectedIDs {
			if id >= 2 {
				t.Errorf("round %d selected low-quality node %d", r.Round, id)
			}
		}
		if len(r.AllScores) != nodes {
			t.Errorf("round %d recorded %d scores, want %d", r.Round, len(r.AllScores), nodes)
		}
		if r.TotalPayment <= 0 {
			t.Errorf("round %d total payment %v, want positive", r.Round, r.TotalPayment)
		}
	}
	for i, s := range summaries {
		if s == nil {
			t.Fatalf("client %d returned no summary", i)
		}
		if !s.CompletedNormally {
			t.Errorf("client %d did not see Done", i)
		}
		if s.RoundsSeen != rounds {
			t.Errorf("client %d saw %d rounds, want %d", i, s.RoundsSeen, rounds)
		}
	}
	if summaries[0].RoundsWon != rounds || summaries[1].RoundsWon != rounds {
		t.Errorf("high-quality nodes should win every round: %d/%d",
			summaries[0].RoundsWon, summaries[1].RoundsWon)
	}
	if summaries[2].RoundsWon != 0 || summaries[3].RoundsWon != 0 {
		t.Errorf("low-quality nodes should never win: %d/%d",
			summaries[2].RoundsWon, summaries[3].RoundsWon)
	}
	if summaries[0].TotalEarned <= 0 {
		t.Error("winner earned nothing")
	}
}

func TestRandomSelectionMode(t *testing.T) {
	const nodes, k, rounds = 4, 2, 4
	addr, done := startTestServer(t, nodes, k, rounds, true)
	var wg sync.WaitGroup
	wins := make([]int, nodes)
	var mu sync.Mutex
	for i := 0; i < nodes; i++ {
		quality := 0.9
		if i >= 2 {
			quality = 0.2
		}
		cfg := testClientConfig(t, addr, i, quality)
		wg.Add(1)
		go func(i int, cfg ClientConfig) {
			defer wg.Done()
			s, err := RunClient(cfg)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			mu.Lock()
			wins[i] = s.RoundsWon
			mu.Unlock()
		}(i, cfg)
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	// Payments must be zero under RandFL.
	for _, r := range out.report.Rounds {
		if r.TotalPayment != 0 {
			t.Errorf("round %d RandFL payment %v, want 0", r.Round, r.TotalPayment)
		}
		if len(r.SelectedIDs) != k {
			t.Errorf("round %d selected %d, want %d", r.Round, len(r.SelectedIDs), k)
		}
	}
}

func TestContractBreachGetsBlacklisted(t *testing.T) {
	const nodes, k, rounds = 3, 1, 3
	addr, done := startTestServer(t, nodes, k, rounds, false)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		// Node 0 bids highest and will win round 1 — then breaches.
		quality := 0.2
		if i == 0 {
			quality = 0.95
		}
		cfg := testClientConfig(t, addr, i, quality)
		if i == 0 {
			cfg.BreachAtRound = 1
		}
		wg.Add(1)
		go func(cfg ClientConfig) {
			defer wg.Done()
			_, _ = RunClient(cfg) // breaching/losing clients may error; fine
		}(cfg)
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	found := false
	for _, id := range out.report.Blacklisted {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("breaching node 0 not blacklisted: %v", out.report.Blacklisted)
	}
	// Training continued: all rounds completed.
	if len(out.report.Rounds) != rounds {
		t.Errorf("rounds = %d, want %d despite breach", len(out.report.Rounds), rounds)
	}
	// Round 1's breach means no update was aggregated that round.
	if got := out.report.Rounds[0].TrainSamples; got != 0 {
		t.Errorf("round 1 aggregated %d samples despite breach, want 0", got)
	}
	// Later rounds proceed with the remaining nodes.
	for _, r := range out.report.Rounds[1:] {
		for _, id := range r.SelectedIDs {
			if id == 0 {
				t.Error("blacklisted node selected again")
			}
		}
	}
}

func TestNodeDropIsTolerated(t *testing.T) {
	const nodes, k, rounds = 3, 1, 3
	addr, done := startTestServer(t, nodes, k, rounds, false)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		quality := 0.5 + 0.1*float64(i)
		cfg := testClientConfig(t, addr, i, quality)
		if i == 2 {
			cfg.DropAfterRound = 1 // the strongest node leaves after round 1
		}
		wg.Add(1)
		go func(cfg ClientConfig) {
			defer wg.Done()
			_, _ = RunClient(cfg)
		}(cfg)
	}
	out := <-done
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server: %v", out.err)
	}
	if len(out.report.Rounds) != rounds {
		t.Fatalf("rounds = %d, want %d despite drop", len(out.report.Rounds), rounds)
	}
	// After the drop, remaining rounds still select someone.
	for _, r := range out.report.Rounds[1:] {
		if len(r.SelectedIDs) == 0 {
			t.Errorf("round %d selected nobody after drop", r.Round)
		}
		for _, id := range r.SelectedIDs {
			if id == 2 {
				t.Errorf("round %d selected the departed node", r.Round)
			}
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	rule, err := auction.NewAdditive(1)
	if err != nil {
		t.Fatal(err)
	}
	global, err := ml.NewMLP(2, nil, 2, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	test := []ml.Sample{{Features: []float64{1, 2}, Label: 0}}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close() //nolint:errcheck
	cases := []struct {
		name string
		cfg  ServerConfig
	}{
		{"nil listener", ServerConfig{ExpectNodes: 1, Rounds: 1, K: 1, Rule: rule, Global: global, Test: test}},
		{"zero nodes", ServerConfig{Listener: listener, Rounds: 1, K: 1, Rule: rule, Global: global, Test: test}},
		{"zero rounds", ServerConfig{Listener: listener, ExpectNodes: 1, K: 1, Rule: rule, Global: global, Test: test}},
		{"zero K", ServerConfig{Listener: listener, ExpectNodes: 1, Rounds: 1, Rule: rule, Global: global, Test: test}},
		{"nil rule", ServerConfig{Listener: listener, ExpectNodes: 1, Rounds: 1, K: 1, Global: global, Test: test}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewServer(c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestClientConfigValidation(t *testing.T) {
	model, err := ml.NewMLP(2, nil, 2, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	local := []ml.Sample{{Features: []float64{1, 2}, Label: 0}}
	qf := func(int) []float64 { return []float64{1} }
	pf := func(int) float64 { return 1 }
	cases := []struct {
		name string
		cfg  ClientConfig
	}{
		{"no addr", ClientConfig{NodeID: 1, Model: model, Local: local, Qualities: qf, Payment: pf}},
		{"no model", ClientConfig{Addr: "x", NodeID: 1, Local: local, Qualities: qf, Payment: pf}},
		{"no data", ClientConfig{Addr: "x", NodeID: 1, Model: model, Qualities: qf, Payment: pf}},
		{"no bid funcs", ClientConfig{Addr: "x", NodeID: 1, Model: model, Local: local}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := RunClient(c.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestMsgKindString(t *testing.T) {
	kinds := map[MsgKind]string{
		KindHello: "hello", KindAsk: "ask", KindBid: "bid",
		KindResult: "result", KindUpdate: "update", KindDone: "done",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if MsgKind(42).String() == "" {
		t.Error("unknown kind should format")
	}
}

package transport

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// BenchmarkCodecModelTransfer measures the gob round-trip of a model-sized
// Result message (≈9k float64 parameters, the CIFAR CNN's size) over an
// in-memory pipe — the dominant wire cost of a federated round.
func BenchmarkCodecModelTransfer(b *testing.B) {
	a, c := net.Pipe()
	ca, cc := NewCodec(a), NewCodec(c)
	defer ca.Close() //nolint:errcheck
	defer cc.Close() //nolint:errcheck

	rng := rand.New(rand.NewSource(1))
	params := make([]float64, 9000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	env := &Envelope{Kind: KindResult, Result: &Result{
		Round: 1, Won: true, Payment: 0.5, Params: params,
	}}
	b.SetBytes(int64(len(params) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ca.Send(env, 10*time.Second); err != nil {
				b.Error(err)
			}
		}()
		if _, err := cc.Recv(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}

// BenchmarkCodecBid measures the tiny per-round bid message, supporting the
// paper's "the corresponding data size is just a few bytes" claim for the
// incentive overhead.
func BenchmarkCodecBid(b *testing.B) {
	a, c := net.Pipe()
	ca, cc := NewCodec(a), NewCodec(c)
	defer ca.Close() //nolint:errcheck
	defer cc.Close() //nolint:errcheck

	env := &Envelope{Kind: KindBid, Bid: &Bid{
		Round: 1, NodeID: 7, Qualities: []float64{0.5, 0.25, 0.75}, Payment: 1.5,
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ca.Send(env, 10*time.Second); err != nil {
				b.Error(err)
			}
		}()
		if _, err := cc.Recv(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}

// Package transport implements the wire protocol of the real FMore
// deployment (§V-C): an aggregator server and edge-node clients exchanging
// length-delimited gob messages over TCP. The per-round message flow follows
// Fig. 2(b) of the paper:
//
//	node → aggregator: Hello (registration with resource description)
//	aggregator → node: Ask (scoring rule + K — "a few bytes", §III-A)
//	node → aggregator: Bid (sealed: qualities + expected payment)
//	aggregator → node: Result (win/lose; winners receive payment + model)
//	winner → aggregator: Update (trained parameters + local sample count)
//	aggregator → node: Done (terminates the session)
//
// Nodes that miss deadlines are skipped for the round; winners that breach
// the contract (no Update before the deadline) are blacklisted, matching the
// paper's defaulter handling.
package transport

import (
	"errors"
	"fmt"

	"fmore/internal/auction"
	"fmore/internal/dist"
)

// MsgKind discriminates Envelope payloads.
type MsgKind int

const (
	// KindHello registers an edge node with the aggregator.
	KindHello MsgKind = iota + 1
	// KindAsk broadcasts the round's scoring rule and K.
	KindAsk
	// KindBid carries one sealed bid.
	KindBid
	// KindResult tells a node whether it won and, if so, carries the global
	// model and payment.
	KindResult
	// KindUpdate returns a winner's locally trained parameters.
	KindUpdate
	// KindDone terminates the session.
	KindDone
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindAsk:
		return "ask"
	case KindBid:
		return "bid"
	case KindResult:
		return "result"
	case KindUpdate:
		return "update"
	case KindDone:
		return "done"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// Hello registers a node.
type Hello struct {
	NodeID int
}

// RuleSpec is the serializable description of a scoring rule, rebuilt into
// an auction.ScoringRule on the node side. It covers the rule families of
// §III-A, optionally min–max normalized. The JSON tags serve the exchange's
// HTTP front end, which shares this wire form.
type RuleSpec struct {
	// Kind is "additive", "leontief" or "cobb-douglas".
	Kind string `json:"kind"`
	// Alpha holds the coefficients (exponents for Cobb–Douglas).
	Alpha []float64 `json:"alpha"`
	// Scale is the Cobb–Douglas scale factor (ignored otherwise).
	Scale float64 `json:"scale,omitempty"`
	// NormLo/NormHi, when non-empty, wrap the rule in min–max normalization.
	NormLo []float64 `json:"norm_lo,omitempty"`
	NormHi []float64 `json:"norm_hi,omitempty"`
}

// Build reconstructs the scoring rule.
func (r RuleSpec) Build() (auction.ScoringRule, error) {
	var (
		rule auction.ScoringRule
		err  error
	)
	switch r.Kind {
	case "additive":
		rule, err = auction.NewAdditive(r.Alpha...)
	case "leontief":
		rule, err = auction.NewLeontief(r.Alpha...)
	case "cobb-douglas":
		rule, err = auction.NewCobbDouglas(r.Scale, r.Alpha...)
	default:
		return nil, fmt.Errorf("transport: unknown rule kind %q", r.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: building rule: %w", err)
	}
	if len(r.NormLo) > 0 || len(r.NormHi) > 0 {
		rule, err = auction.NewNormalized(rule, r.NormLo, r.NormHi)
		if err != nil {
			return nil, fmt.Errorf("transport: building normalizer: %w", err)
		}
	}
	return rule, nil
}

// SpecForRule serializes a supported scoring rule into a RuleSpec.
func SpecForRule(rule auction.ScoringRule) (RuleSpec, error) {
	switch r := rule.(type) {
	case auction.Additive:
		return RuleSpec{Kind: "additive", Alpha: r.Alpha}, nil
	case auction.Leontief:
		return RuleSpec{Kind: "leontief", Alpha: r.Alpha}, nil
	case auction.CobbDouglas:
		return RuleSpec{Kind: "cobb-douglas", Alpha: r.Exponents, Scale: r.Scale}, nil
	case auction.Normalized:
		inner, err := SpecForRule(r.Rule)
		if err != nil {
			return RuleSpec{}, err
		}
		inner.NormLo, inner.NormHi = r.Lo, r.Hi
		return inner, nil
	default:
		return RuleSpec{}, fmt.Errorf("transport: rule %T is not serializable", rule)
	}
}

// CostSpec is the serializable description of a bidder cost family c(q, θ),
// rebuilt into an auction.CostFunction. Like RuleSpec, its JSON tags serve
// the exchange's HTTP front end.
type CostSpec struct {
	// Kind is "linear", "quadratic" or "power".
	Kind string `json:"kind"`
	// Beta holds the per-dimension coefficients.
	Beta []float64 `json:"beta"`
	// Gamma is the power-cost exponent (ignored otherwise).
	Gamma float64 `json:"gamma,omitempty"`
}

// Build reconstructs the cost function.
func (c CostSpec) Build() (auction.CostFunction, error) {
	var (
		cost auction.CostFunction
		err  error
	)
	switch c.Kind {
	case "linear":
		cost, err = auction.NewLinearCost(c.Beta...)
	case "quadratic":
		cost, err = auction.NewQuadraticCost(c.Beta...)
	case "power":
		cost, err = auction.NewPowerCost(c.Gamma, c.Beta...)
	default:
		return nil, fmt.Errorf("transport: unknown cost kind %q", c.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: building cost: %w", err)
	}
	return cost, nil
}

// DistSpec is the serializable description of the private-type distribution
// F of θ.
type DistSpec struct {
	// Kind is "uniform" (the paper's choice for all experiments).
	Kind string  `json:"kind"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Build reconstructs the distribution.
func (d DistSpec) Build() (dist.Distribution, error) {
	switch d.Kind {
	case "uniform":
		u, err := dist.NewUniform(d.Lo, d.Hi)
		if err != nil {
			return nil, fmt.Errorf("transport: building distribution: %w", err)
		}
		return u, nil
	default:
		return nil, fmt.Errorf("transport: unknown distribution kind %q", d.Kind)
	}
}

// EquilibriumSpec describes the bidder-side auction game of a hosted job —
// everything SolveEquilibrium needs beyond the job's own scoring rule and
// K. A job carrying it can serve the solved Theorem 1 strategy to its edge
// clients (GET /jobs/{id}/strategy on the exchange), so nodes need not run
// the equilibrium solver locally.
type EquilibriumSpec struct {
	// Cost is the common-knowledge cost family c(q, θ).
	Cost CostSpec `json:"cost"`
	// Theta is the distribution F of the private cost parameter.
	Theta DistSpec `json:"theta"`
	// N is the number of bidders in the game (the population size, > K).
	N int `json:"n"`
	// QLo, QHi bound the feasible quality box per dimension.
	QLo []float64 `json:"q_lo"`
	QHi []float64 `json:"q_hi"`
	// Solver optionally names the payment solver: "quadrature" (default),
	// "euler" or "rk4".
	Solver string `json:"solver,omitempty"`
}

// Config assembles and validates the full equilibrium configuration for a
// job's scoring rule and winner count.
func (e EquilibriumSpec) Config(rule auction.ScoringRule, k int) (auction.EquilibriumConfig, error) {
	cost, err := e.Cost.Build()
	if err != nil {
		return auction.EquilibriumConfig{}, err
	}
	theta, err := e.Theta.Build()
	if err != nil {
		return auction.EquilibriumConfig{}, err
	}
	var solver auction.SolverKind
	switch e.Solver {
	case "":
		// leave zero: SolveEquilibrium applies its default
	case "quadrature":
		solver = auction.SolverQuadrature
	case "euler":
		solver = auction.SolverEuler
	case "rk4":
		solver = auction.SolverRK4
	default:
		return auction.EquilibriumConfig{}, fmt.Errorf("transport: unknown solver %q", e.Solver)
	}
	cfg := auction.EquilibriumConfig{
		Rule:   rule,
		Cost:   cost,
		Theta:  theta,
		N:      e.N,
		K:      k,
		QLo:    append([]float64(nil), e.QLo...),
		QHi:    append([]float64(nil), e.QHi...),
		Solver: solver,
	}
	if err := cfg.Validate(); err != nil {
		return auction.EquilibriumConfig{}, err
	}
	return cfg, nil
}

// Ask is the round's bid ask.
type Ask struct {
	Round int
	K     int
	Rule  RuleSpec
}

// Bid is one sealed bid.
type Bid struct {
	Round     int
	NodeID    int
	Qualities []float64
	Payment   float64
	// Declined marks a node that sits the round out (e.g. IR violation).
	Declined bool
}

// Result tells a node the round's outcome.
type Result struct {
	Round int
	Won   bool
	// Payment and Params are set only for winners.
	Payment float64
	Params  []float64
	// Samples asks the winner to train on (up to) this many local samples;
	// 0 means the node's own offer.
	Samples int
}

// Update is a winner's trained model.
type Update struct {
	Round      int
	NodeID     int
	Params     []float64
	NumSamples int
	TrainLoss  float64
}

// Done terminates a session; FinalAccuracy is informational.
type Done struct {
	Rounds        int
	FinalAccuracy float64
}

// Envelope is the single wire type: Kind selects which pointer is set. A
// struct-of-pointers avoids gob interface registration while keeping each
// message strongly typed.
type Envelope struct {
	Kind   MsgKind
	Hello  *Hello
	Ask    *Ask
	Bid    *Bid
	Result *Result
	Update *Update
	Done   *Done
}

// ErrUnexpectedMessage reports a protocol-order violation.
var ErrUnexpectedMessage = errors.New("transport: unexpected message")

// Validate checks that exactly the payload matching Kind is present.
func (e *Envelope) Validate() error {
	var want bool
	switch e.Kind {
	case KindHello:
		want = e.Hello != nil
	case KindAsk:
		want = e.Ask != nil
	case KindBid:
		want = e.Bid != nil
	case KindResult:
		want = e.Result != nil
	case KindUpdate:
		want = e.Update != nil
	case KindDone:
		want = e.Done != nil
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrUnexpectedMessage, e.Kind)
	}
	if !want {
		return fmt.Errorf("%w: kind %v without payload", ErrUnexpectedMessage, e.Kind)
	}
	return nil
}

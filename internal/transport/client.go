package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"fmore/internal/ml"
)

// ClientConfig parameterizes one edge-node client.
type ClientConfig struct {
	// Addr is the aggregator's TCP address.
	Addr string
	// NodeID is this node's identity.
	NodeID int
	// Model is the local scratch model (same architecture as the global).
	Model ml.Classifier
	// Local is the node's private training data; it never leaves the node.
	Local []ml.Sample
	// Qualities returns the offered quality vector for a round (raw values;
	// the broadcast rule normalizes them server-side if configured).
	Qualities func(round int) []float64
	// Payment returns the asked payment for a round (the Nash equilibrium
	// payment pˢ(θ) in a rational deployment).
	Payment func(round int) float64
	// OfferedSamples returns how many local samples the node commits for a
	// round (capped by len(Local)); 0 means all local data.
	OfferedSamples func(round int) int
	// LocalEpochs, BatchSize, LR are the local training hyperparameters.
	LocalEpochs int
	BatchSize   int
	LR          float64
	// Timeout bounds each message operation; the idle wait between rounds
	// uses IdleTimeout (training of other winners can take a while).
	Timeout     time.Duration
	IdleTimeout time.Duration
	// Seed drives local subset sampling and shuffling.
	Seed int64

	// DropAfterRound, when > 0, makes the client disconnect after completing
	// that round (failure injection).
	DropAfterRound int
	// BreachAtRound, when > 0, makes the client win-and-vanish at that
	// round: it bids, accepts the model, but never returns an update
	// (contract breach; the aggregator should blacklist it).
	BreachAtRound int
}

func (c *ClientConfig) setDefaults() {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 120 * time.Second
	}
}

func (c *ClientConfig) validate() error {
	if c.Addr == "" {
		return errors.New("transport: ClientConfig.Addr is required")
	}
	if c.Model == nil {
		return errors.New("transport: ClientConfig.Model is required")
	}
	if len(c.Local) == 0 {
		return errors.New("transport: ClientConfig.Local data is required")
	}
	if c.Qualities == nil || c.Payment == nil {
		return errors.New("transport: Qualities and Payment functions are required")
	}
	return nil
}

// ClientSummary reports a node's session.
type ClientSummary struct {
	RoundsSeen    int
	RoundsWon     int
	TotalEarned   float64
	FinalAccuracy float64
	// CompletedNormally is true when the session ended with a Done message.
	CompletedNormally bool
}

// RunClient executes one edge node's full session against the aggregator:
// register, then per round bid → (if won) train → update, until Done.
func RunClient(cfg ClientConfig) (*ClientSummary, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", cfg.Addr, err)
	}
	codec := NewCodec(conn)
	defer codec.Close() //nolint:errcheck // read side already drained

	if err := codec.Send(&Envelope{Kind: KindHello, Hello: &Hello{NodeID: cfg.NodeID}}, cfg.Timeout); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	summary := &ClientSummary{}
	for {
		env, err := codec.Recv(cfg.IdleTimeout)
		if err != nil {
			return summary, fmt.Errorf("transport: node %d wait: %w", cfg.NodeID, err)
		}
		switch env.Kind {
		case KindAsk:
			round := env.Ask.Round
			summary.RoundsSeen++
			bid := &Bid{
				Round:     round,
				NodeID:    cfg.NodeID,
				Qualities: cfg.Qualities(round),
				Payment:   cfg.Payment(round),
			}
			if err := codec.Send(&Envelope{Kind: KindBid, Bid: bid}, cfg.Timeout); err != nil {
				return summary, err
			}
		case KindResult:
			if !env.Result.Won {
				continue
			}
			summary.RoundsWon++
			summary.TotalEarned += env.Result.Payment
			if cfg.BreachAtRound > 0 && env.Result.Round == cfg.BreachAtRound {
				// Contract breach: vanish without delivering the update.
				return summary, nil
			}
			update, err := trainLocally(cfg, env.Result, rng)
			if err != nil {
				return summary, err
			}
			if err := codec.Send(&Envelope{Kind: KindUpdate, Update: update}, cfg.Timeout); err != nil {
				return summary, err
			}
			if cfg.DropAfterRound > 0 && env.Result.Round >= cfg.DropAfterRound {
				return summary, nil
			}
		case KindDone:
			summary.FinalAccuracy = env.Done.FinalAccuracy
			summary.CompletedNormally = true
			return summary, nil
		default:
			return summary, fmt.Errorf("%w: client got %v", ErrUnexpectedMessage, env.Kind)
		}
	}
}

// trainLocally performs the winner's local update per Eq (2): load global
// parameters, train on the committed local subset, return the new
// parameters.
func trainLocally(cfg ClientConfig, res *Result, rng *rand.Rand) (*Update, error) {
	if err := cfg.Model.SetParamVector(res.Params); err != nil {
		return nil, fmt.Errorf("transport: node %d loading global model: %w", cfg.NodeID, err)
	}
	n := len(cfg.Local)
	if cfg.OfferedSamples != nil {
		if offered := cfg.OfferedSamples(res.Round); offered > 0 && offered < n {
			n = offered
		}
	}
	if res.Samples > 0 && res.Samples < n {
		n = res.Samples
	}
	subset := cfg.Local
	if n < len(cfg.Local) {
		idx := rng.Perm(len(cfg.Local))[:n]
		subset = make([]ml.Sample, n)
		for i, j := range idx {
			subset[i] = cfg.Local[j]
		}
	}
	loss := 0.0
	for e := 0; e < cfg.LocalEpochs; e++ {
		l, err := cfg.Model.TrainEpoch(subset, cfg.BatchSize, cfg.LR, rng)
		if err != nil {
			return nil, fmt.Errorf("transport: node %d local training: %w", cfg.NodeID, err)
		}
		loss = l
	}
	return &Update{
		Round:      res.Round,
		NodeID:     cfg.NodeID,
		Params:     cfg.Model.ParamVector(),
		NumSamples: len(subset),
		TrainLoss:  loss,
	}, nil
}

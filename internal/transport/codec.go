package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Codec frames Envelopes over a net.Conn with gob encoding and per-call
// deadlines. It is safe for one concurrent reader plus one concurrent
// writer (the protocol never needs more).
type Codec struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewCodec wraps an established connection.
func NewCodec(conn net.Conn) *Codec {
	return &Codec{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

// Send writes one envelope, failing if it cannot complete within timeout.
func (c *Codec) Send(e *Envelope, timeout time.Duration) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if timeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("transport: set write deadline: %w", err)
		}
		defer c.conn.SetWriteDeadline(time.Time{}) //nolint:errcheck // reset is best effort
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("transport: send %v: %w", e.Kind, err)
	}
	return nil
}

// Recv reads one envelope, failing if none arrives within timeout.
func (c *Codec) Recv(timeout time.Duration) (*Envelope, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("transport: set read deadline: %w", err)
		}
		defer c.conn.SetReadDeadline(time.Time{}) //nolint:errcheck // reset is best effort
	}
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}

// Close closes the underlying connection.
func (c *Codec) Close() error { return c.conn.Close() }

// RemoteAddr reports the peer address for logs.
func (c *Codec) RemoteAddr() string { return c.conn.RemoteAddr().String() }

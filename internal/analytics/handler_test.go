package analytics

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fmore/internal/auction"
	"fmore/internal/exchange"
)

// fixture runs a real exchange with the aggregator on its firehose and the
// stats handler in front, plays one full round, and drains the firehose so
// every assertion below sees settled rollups.
func fixture(t *testing.T) (*httptest.Server, *exchange.Exchange) {
	t.Helper()
	ex := exchange.New(exchange.Options{})
	agg := New(Options{})
	detach := ex.Firehose().Attach(agg)
	srv := httptest.NewServer(NewHandler(ex, agg, exchange.NewHandler(ex)))
	t.Cleanup(func() {
		srv.Close()
		detach()
		ex.Close()
	})

	rule, err := auction.NewAdditive(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(exchange.JobSpec{ID: "busy", Auction: auction.Config{Rule: rule, K: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.CreateJob(exchange.JobSpec{ID: "quiet", Auction: auction.Config{Rule: rule, K: 2}}); err != nil {
		t.Fatal(err)
	}
	ex.RegisterNode(50, "registered-but-quiet")
	for n := 0; n < 4; n++ {
		bid := auction.Bid{NodeID: n, Qualities: []float64{0.5, 0.5}, Payment: 0.1 + 0.05*float64(n)}
		if _, err := ex.SubmitBid("busy", bid); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ex.CloseRound("busy"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ex.Firehose().Drain(ctx); err != nil {
		t.Fatal(err)
	}
	return srv, ex
}

func get(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStatsEndpoints(t *testing.T) {
	srv, _ := fixture(t)

	var js JobStats
	if code := get(t, srv, "/v1/jobs/busy/stats", &js); code != 200 {
		t.Fatalf("busy job stats status = %d", code)
	}
	if js.Job != "busy" || js.Window.Rounds != 1 || js.Window.Bids != 4 || js.Window.Wins != 2 {
		t.Fatalf("busy job stats = %+v", js)
	}
	if js.Window.WinRate != 0.5 || js.Window.TotalPayment <= 0 {
		t.Fatalf("busy job window = %+v", js.Window)
	}
	var total int64
	for _, c := range js.PriceHistogram.Counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("price histogram sums to %d, want 4 (counts %v)", total, js.PriceHistogram.Counts)
	}

	var ns NodeStats
	if code := get(t, srv, "/v1/nodes/0/stats", &ns); code != 200 {
		t.Fatalf("node stats status = %d", code)
	}
	if ns.Node != 0 || ns.Window.Bids != 1 || ns.LastBidMS == 0 {
		t.Fatalf("node stats = %+v", ns)
	}
}

func TestStatsZeroForKnownButQuietEntities(t *testing.T) {
	srv, _ := fixture(t)

	var js JobStats
	if code := get(t, srv, "/v1/jobs/quiet/stats", &js); code != 200 {
		t.Fatalf("quiet job status = %d, want 200", code)
	}
	if js.Job != "quiet" || js.Window.Bids != 0 || js.Lifetime.Rounds != 0 {
		t.Fatalf("quiet job stats = %+v, want zeros", js)
	}
	if len(js.PriceHistogram.Bounds) == 0 || len(js.PriceHistogram.Counts) != len(js.PriceHistogram.Bounds)+1 {
		t.Fatalf("quiet job histogram shape = %+v", js.PriceHistogram)
	}

	var ns NodeStats
	if code := get(t, srv, "/v1/nodes/50/stats", &ns); code != 200 {
		t.Fatalf("quiet node status = %d, want 200", code)
	}
	if ns.Node != 50 || ns.Window.Bids != 0 || ns.LastBidMS != 0 {
		t.Fatalf("quiet node stats = %+v, want zeros", ns)
	}
}

func TestStatsErrors(t *testing.T) {
	srv, _ := fixture(t)

	if code := get(t, srv, "/v1/jobs/ghost/stats", nil); code != 404 {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get(t, srv, "/v1/nodes/999/stats", nil); code != 404 {
		t.Errorf("unknown node status = %d, want 404", code)
	}
	if code := get(t, srv, "/v1/nodes/not-a-number/stats", nil); code != 400 {
		t.Errorf("malformed node id status = %d, want 400", code)
	}
}

// TestHandlerFallsThrough: everything that is not a stats route reaches the
// wrapped exchange handler unchanged.
func TestHandlerFallsThrough(t *testing.T) {
	srv, _ := fixture(t)

	var snap map[string]any
	if code := get(t, srv, "/v1/metrics", &snap); code != 200 {
		t.Fatalf("/v1/metrics through the wrapper = %d", code)
	}
	if _, ok := snap["rounds_total"]; !ok {
		t.Fatalf("metrics payload missing rounds_total: %v", snap)
	}
	if code := get(t, srv, "/v1/jobs/busy", nil); code != 200 {
		t.Errorf("job detail through the wrapper = %d", code)
	}
}

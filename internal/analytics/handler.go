package analytics

import (
	"encoding/json"
	"net/http"
	"strconv"

	"fmore/internal/exchange"
)

// NewHandler wraps the exchange's HTTP handler with the analytics
// endpoints, keeping the v1 conventions (error envelope, stable codes):
//
//	GET /v1/jobs/{id}/stats   windowed + lifetime job rollups
//	GET /v1/nodes/{id}/stats  windowed + lifetime node rollups
//
// Everything else falls through to next (normally exchange.NewHandler).
// A known-but-quiet entity answers 200 with zero rollups; a fully unknown
// one is a 404 (unknown_job for jobs, not_found for nodes — node identity
// is only established by registration or a first accepted bid).
func NewHandler(ex *exchange.Exchange, agg *Aggregator, next http.Handler) http.Handler {
	h := &handler{ex: ex, agg: agg}
	mux := http.NewServeMux()
	mux.Handle("/", next)
	mux.HandleFunc("GET /v1/jobs/{id}/stats", h.jobStats)
	mux.HandleFunc("GET /v1/nodes/{id}/stats", h.nodeStats)
	return mux
}

type handler struct {
	ex  *exchange.Exchange
	agg *Aggregator
}

func (h *handler) jobStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := h.agg.JobStats(id)
	if !ok {
		// The aggregator has seen nothing — distinguish a quiet job from a
		// nonexistent one against the live exchange.
		if _, hosted := h.ex.Job(id); !hosted {
			writeErr(w, http.StatusNotFound, "unknown_job", "unknown job "+strconv.Quote(id))
			return
		}
		st = JobStats{Job: id, WindowSec: int64(h.agg.window.Seconds()), PriceHistogram: h.emptyHist()}
	}
	writeJSON(w, st)
}

func (h *handler) nodeStats(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_request", "bad node id "+strconv.Quote(r.PathValue("id")))
		return
	}
	st, ok := h.agg.NodeStats(id)
	if !ok {
		if _, known := h.ex.Registry().Lookup(id); !known {
			writeErr(w, http.StatusNotFound, "not_found", "unknown node "+strconv.Itoa(id))
			return
		}
		st = NodeStats{Node: id, WindowSec: int64(h.agg.window.Seconds()), PriceHistogram: h.emptyHist()}
	}
	writeJSON(w, st)
}

// emptyHist keeps the zero-stats response shape identical to a populated
// one (bounds present, counts all zero).
func (h *handler) emptyHist() PriceHistogram {
	return PriceHistogram{Bounds: h.agg.bounds, Counts: make([]int64, len(h.agg.bounds)+1)}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders the v1 error envelope {code, message}.
func writeErr(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{code, message})
}

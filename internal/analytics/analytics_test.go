package analytics

import (
	"sync"
	"testing"
	"time"

	"fmore/internal/exchange"
)

// fakeClock is an Options.Now source the tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func feedRound(a *Aggregator, job string, round int, nodes []int, winner int) {
	events := make([]exchange.TapEvent, 0, len(nodes)+2)
	for _, n := range nodes {
		events = append(events, exchange.TapEvent{
			Kind: exchange.TapBidAccepted, Job: job, Round: round, Node: n, Price: 0.2,
		})
	}
	events = append(events, exchange.TapEvent{
		Kind: exchange.TapWinner, Job: job, Round: round, Node: winner, Price: 0.2, Payment: 0.3, Score: 1.5,
	})
	events = append(events, exchange.TapEvent{
		Kind: exchange.TapRoundClosed, Job: job, Round: round,
		NumBids: len(nodes), Winners: 1, Payment: 0.3, Profit: 1.2,
		Latency: 2 * time.Millisecond,
	})
	a.ConsumeTap(events, 0)
}

func TestRollupMath(t *testing.T) {
	clock := newFakeClock()
	a := New(Options{Now: clock.now})

	feedRound(a, "j1", 1, []int{1, 2, 3}, 2)
	feedRound(a, "j1", 2, []int{1, 2, 3}, 2)

	js, ok := a.JobStats("j1")
	if !ok {
		t.Fatal("job j1 unknown to aggregator")
	}
	want := Rollup{
		Rounds: 2, Bids: 6, Wins: 2, WinRate: 2.0 / 6.0,
		TotalPayment: 0.6, AggregatorProfit: 2.4,
		AvgRoundLatencyMS: 2, MaxRoundLatencyMS: 2,
	}
	if js.Window != want {
		t.Errorf("job window rollup = %+v, want %+v", js.Window, want)
	}
	if js.Lifetime != want {
		t.Errorf("job lifetime rollup = %+v, want %+v", js.Lifetime, want)
	}
	if js.WindowSec != int64(defaultWindow/time.Second) {
		t.Errorf("WindowSec = %d, want %d", js.WindowSec, int64(defaultWindow/time.Second))
	}

	winner, ok := a.NodeStats(2)
	if !ok {
		t.Fatal("node 2 unknown")
	}
	if winner.Window.Bids != 2 || winner.Window.Wins != 2 || winner.Window.WinRate != 1 ||
		winner.Window.TotalPayment != 0.6 {
		t.Errorf("winner rollup = %+v", winner.Window)
	}
	if winner.LastBidMS == 0 || winner.LastWinMS == 0 {
		t.Errorf("winner last-seen stamps = (%d, %d), want both set", winner.LastBidMS, winner.LastWinMS)
	}
	loser, ok := a.NodeStats(1)
	if !ok {
		t.Fatal("node 1 unknown")
	}
	if loser.Window.Bids != 2 || loser.Window.Wins != 0 || loser.Window.WinRate != 0 {
		t.Errorf("loser rollup = %+v", loser.Window)
	}
	if loser.LastWinMS != 0 {
		t.Errorf("loser LastWinMS = %d, want 0 (never won)", loser.LastWinMS)
	}

	if ids := a.NodeIDs(); len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("NodeIDs = %v, want [1 2 3]", ids)
	}
}

func TestWindowExpiryKeepsLifetime(t *testing.T) {
	clock := newFakeClock()
	a := New(Options{Window: time.Minute, Buckets: 6, Now: clock.now})

	feedRound(a, "j1", 1, []int{1, 2}, 1)
	js, _ := a.JobStats("j1")
	if js.Window.Rounds != 1 || js.Lifetime.Rounds != 1 {
		t.Fatalf("fresh rollups = window %+v lifetime %+v", js.Window, js.Lifetime)
	}

	// Half a window later the data is still in range.
	clock.advance(30 * time.Second)
	js, _ = a.JobStats("j1")
	if js.Window.Rounds != 1 {
		t.Fatalf("window lost data mid-window: %+v", js.Window)
	}

	// Past the horizon the window drains but lifetime keeps everything.
	clock.advance(2 * time.Minute)
	js, _ = a.JobStats("j1")
	if js.Window.Rounds != 0 || js.Window.Bids != 0 {
		t.Errorf("window not empty after expiry: %+v", js.Window)
	}
	for _, c := range js.PriceHistogram.Counts {
		if c != 0 {
			t.Errorf("price histogram not empty after expiry: %v", js.PriceHistogram.Counts)
			break
		}
	}
	if js.Lifetime.Rounds != 1 || js.Lifetime.Bids != 2 {
		t.Errorf("lifetime decayed: %+v", js.Lifetime)
	}

	// New activity lands in fresh buckets (lazy in-place reset).
	feedRound(a, "j1", 2, []int{1, 2}, 2)
	js, _ = a.JobStats("j1")
	if js.Window.Rounds != 1 || js.Lifetime.Rounds != 2 {
		t.Errorf("post-expiry rollups = window %+v lifetime %+v", js.Window, js.Lifetime)
	}
}

func TestPriceHistogramBuckets(t *testing.T) {
	clock := newFakeClock()
	a := New(Options{PriceBounds: []float64{0.1, 0.5, 1}, Now: clock.now})

	prices := []float64{0.05, 0.1, 0.3, 0.9, 2.5}
	events := make([]exchange.TapEvent, len(prices))
	for i, p := range prices {
		events[i] = exchange.TapEvent{Kind: exchange.TapBidAccepted, Job: "j", Round: 1, Node: i, Price: p}
	}
	a.ConsumeTap(events, 0)

	js, _ := a.JobStats("j")
	wantCounts := []int64{2, 1, 1, 1} // <=0.1 (boundary inclusive), <=0.5, <=1, overflow
	if len(js.PriceHistogram.Counts) != len(wantCounts) {
		t.Fatalf("histogram counts = %v", js.PriceHistogram.Counts)
	}
	for i, w := range wantCounts {
		if js.PriceHistogram.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, js.PriceHistogram.Counts[i], w, js.PriceHistogram.Counts)
		}
	}
	if len(js.PriceHistogram.Bounds) != 3 || js.PriceHistogram.Bounds[2] != 1 {
		t.Errorf("bounds = %v", js.PriceHistogram.Bounds)
	}
}

func TestDroppedAccumulates(t *testing.T) {
	a := New(Options{})
	a.ConsumeTap(nil, 7)
	a.ConsumeTap([]exchange.TapEvent{{Kind: exchange.TapBidAccepted, Job: "j", Node: 1}}, 3)
	if got := a.Dropped(); got != 10 {
		t.Errorf("Dropped = %d, want 10", got)
	}
}

func TestUnknownEntities(t *testing.T) {
	a := New(Options{})
	if _, ok := a.JobStats("ghost"); ok {
		t.Error("JobStats on an unseen job reported ok")
	}
	if _, ok := a.NodeStats(99); ok {
		t.Error("NodeStats on an unseen node reported ok")
	}
}

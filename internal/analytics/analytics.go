// Package analytics turns the exchange's firehose into queryable rollups:
// per-job and per-node win rates, payment totals, round latencies and
// fixed-bucket bid-price histograms, maintained over a sliding window next
// to lifetime totals. The aggregator is an exchange.Sink — attach it with
// Exchange.Firehose().Attach — and NewHandler exposes its rollups as
// GET /v1/jobs/{id}/stats and GET /v1/nodes/{id}/stats in front of the
// exchange's own HTTP handler.
//
// The window is a ring of epoch-stamped buckets reset lazily in place, so
// steady-state aggregation allocates nothing: the firehose's zero-cost
// producer guarantee extends through the sink. Ingest takes one mutex —
// contention-free in practice, because a single pump goroutine is the only
// writer and readers are scrape-rate HTTP requests.
package analytics

import (
	"slices"
	"sync"
	"time"

	"fmore/internal/exchange"
)

// Defaults for Options.
const (
	defaultWindow  = 10 * time.Minute
	defaultBuckets = 30
)

// defaultPriceBounds are the bid-price histogram's upper bounds. Auction
// payments in this codebase live on [0, ~1] in the paper's normalized
// units; the doubling tail absorbs custom cost scales.
var defaultPriceBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Options configures an Aggregator.
type Options struct {
	// Window is the sliding rollup horizon (default 10m).
	Window time.Duration
	// Buckets subdivides the window; finer buckets expire data in smaller
	// steps at slightly more memory per job/node (default 30).
	Buckets int
	// PriceBounds overrides the bid-price histogram's upper bounds
	// (ascending; a final +Inf bucket is implicit).
	PriceBounds []float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Rollup is one aggregate view — either windowed or lifetime — of a job's
// or node's auction activity. Node rollups leave the round fields zero
// (rounds are a job-level event).
type Rollup struct {
	// Rounds and RoundsFailed count completed round closes.
	Rounds       int64 `json:"rounds"`
	RoundsFailed int64 `json:"rounds_failed"`
	// Bids counts accepted bids; Wins counts selected ones.
	Bids int64 `json:"bids"`
	Wins int64 `json:"wins"`
	// WinRate is Wins/Bids (0 when no bids).
	WinRate float64 `json:"win_rate"`
	// TotalPayment sums granted payments (for a job: across its rounds;
	// for a node: what the node was paid).
	TotalPayment float64 `json:"total_payment"`
	// AggregatorProfit sums round profits (jobs only).
	AggregatorProfit float64 `json:"aggregator_profit"`
	// AvgRoundLatencyMS / MaxRoundLatencyMS summarize close latency
	// (jobs only).
	AvgRoundLatencyMS float64 `json:"avg_round_latency_ms"`
	MaxRoundLatencyMS float64 `json:"max_round_latency_ms"`
}

// PriceHistogram is a fixed-bucket bid-price distribution: Counts[i] is
// the number of accepted bids with price <= Bounds[i], Counts[len(Bounds)]
// catches the rest. Bounds are parallel (not a map keyed by +Inf) so the
// histogram JSON-encodes cleanly.
type PriceHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// JobStats is the payload of GET /v1/jobs/{id}/stats.
type JobStats struct {
	Job       string `json:"job"`
	WindowSec int64  `json:"window_sec"`
	// Window covers roughly the last WindowSec seconds; Lifetime covers
	// everything since the aggregator attached.
	Window   Rollup `json:"window"`
	Lifetime Rollup `json:"lifetime"`
	// PriceHistogram is the windowed distribution of accepted bid prices.
	PriceHistogram PriceHistogram `json:"price_histogram"`
}

// NodeStats is the payload of GET /v1/nodes/{id}/stats.
type NodeStats struct {
	Node      int    `json:"node"`
	WindowSec int64  `json:"window_sec"`
	Window    Rollup `json:"window"`
	Lifetime  Rollup `json:"lifetime"`
	// PriceHistogram is the windowed distribution of the node's accepted
	// bid prices.
	PriceHistogram PriceHistogram `json:"price_histogram"`
	// LastBidMS / LastWinMS are unix-millisecond timestamps of the node's
	// most recent accepted bid and win (0 = never).
	LastBidMS int64 `json:"last_bid_ms"`
	LastWinMS int64 `json:"last_win_ms"`
}

// counters is the shared accumulator shape behind both bucket and
// lifetime totals.
type counters struct {
	rounds, failed int64
	bids, wins     int64
	payment        float64
	profit         float64
	latSumNs       int64
	latMaxNs       int64
	prices         []int64 // len(bounds)+1, nil for lifetime totals
}

func (c *counters) addTo(r *Rollup) {
	r.Rounds += c.rounds
	r.RoundsFailed += c.failed
	r.Bids += c.bids
	r.Wins += c.wins
	r.TotalPayment += c.payment
	r.AggregatorProfit += c.profit
}

// bucket is one window slice, valid only while its epoch is current (lazy
// in-place reset instead of a ticker goroutine or reallocation).
type bucket struct {
	epoch int64 // bucketDur index; 0 = never used (epochs start at 1)
	counters
}

// series is one entity's (job's or node's) rollup state.
type series struct {
	life    counters
	buckets []bucket
	lastBid time.Time
	lastWin time.Time
}

// Aggregator consumes the firehose and answers stats queries. It
// implements exchange.Sink; attach it via Exchange.Firehose().Attach.
type Aggregator struct {
	window    time.Duration
	bucketDur time.Duration
	nb        int
	bounds    []float64
	now       func() time.Time

	mu      sync.Mutex
	jobs    map[string]*series
	nodes   map[int]*series
	dropped uint64
}

// New builds an aggregator. Zero Options give a 10-minute window over 30
// buckets and the default price bounds.
func New(opts Options) *Aggregator {
	if opts.Window <= 0 {
		opts.Window = defaultWindow
	}
	if opts.Buckets <= 0 {
		opts.Buckets = defaultBuckets
	}
	if opts.PriceBounds == nil {
		opts.PriceBounds = defaultPriceBounds
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	bucketDur := opts.Window / time.Duration(opts.Buckets)
	if bucketDur <= 0 {
		bucketDur = time.Second
	}
	return &Aggregator{
		window:    opts.Window,
		bucketDur: bucketDur,
		nb:        opts.Buckets,
		bounds:    opts.PriceBounds,
		now:       opts.Now,
		jobs:      make(map[string]*series),
		nodes:     make(map[int]*series),
	}
}

// newSeries allocates one entity's state (once per entity lifetime; the
// steady state only mutates in place).
func (a *Aggregator) newSeries() *series {
	s := &series{buckets: make([]bucket, a.nb)}
	backing := make([]int64, a.nb*(len(a.bounds)+1))
	for i := range s.buckets {
		s.buckets[i].prices = backing[i*(len(a.bounds)+1) : (i+1)*(len(a.bounds)+1)]
	}
	return s
}

// at returns the entity's current write bucket, resetting it in place when
// its epoch expired.
func (a *Aggregator) at(s *series, epoch int64) *bucket {
	b := &s.buckets[epoch%int64(a.nb)]
	if b.epoch != epoch {
		prices := b.prices
		for i := range prices {
			prices[i] = 0
		}
		b.counters = counters{prices: prices}
		b.epoch = epoch
	}
	return b
}

func (a *Aggregator) jobSeries(id string) *series {
	s := a.jobs[id]
	if s == nil {
		s = a.newSeries()
		a.jobs[id] = s
	}
	return s
}

func (a *Aggregator) nodeSeries(id int) *series {
	s := a.nodes[id]
	if s == nil {
		s = a.newSeries()
		a.nodes[id] = s
	}
	return s
}

// priceBucket maps a bid price onto its histogram slot.
func (a *Aggregator) priceBucket(p float64) int {
	for i, bound := range a.bounds {
		if p <= bound {
			return i
		}
	}
	return len(a.bounds)
}

// ConsumeTap implements exchange.Sink. One batch costs one mutex
// acquisition and in-place counter updates; the only allocations are the
// first-contact series of a new job or node.
func (a *Aggregator) ConsumeTap(events []exchange.TapEvent, dropped uint64) {
	now := a.now()
	epoch := now.UnixNano()/int64(a.bucketDur) + 1 // +1: epoch 0 means "never"
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dropped += dropped
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case exchange.TapBidAccepted:
			js := a.jobSeries(ev.Job)
			jb := a.at(js, epoch)
			jb.bids++
			jb.prices[a.priceBucket(ev.Price)]++
			js.life.bids++

			ns := a.nodeSeries(ev.Node)
			nb := a.at(ns, epoch)
			nb.bids++
			nb.prices[a.priceBucket(ev.Price)]++
			ns.life.bids++
			ns.lastBid = now
		case exchange.TapWinner:
			js := a.jobSeries(ev.Job)
			a.at(js, epoch).wins++
			js.life.wins++

			ns := a.nodeSeries(ev.Node)
			nb := a.at(ns, epoch)
			nb.wins++
			nb.payment += ev.Payment
			ns.life.wins++
			ns.life.payment += ev.Payment
			ns.lastWin = now
		case exchange.TapRoundClosed:
			js := a.jobSeries(ev.Job)
			jb := a.at(js, epoch)
			lat := ev.Latency.Nanoseconds()
			jb.rounds++
			jb.payment += ev.Payment
			jb.profit += ev.Profit
			jb.latSumNs += lat
			if lat > jb.latMaxNs {
				jb.latMaxNs = lat
			}
			js.life.rounds++
			js.life.payment += ev.Payment
			js.life.profit += ev.Profit
			js.life.latSumNs += lat
			if lat > js.life.latMaxNs {
				js.life.latMaxNs = lat
			}
			if ev.Failed {
				jb.failed++
				js.life.failed++
			}
		}
	}
}

// Dropped returns the firehose events this aggregator was told it missed.
func (a *Aggregator) Dropped() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// windowRollup folds the live buckets (epoch within the window) into a
// rollup plus the windowed price histogram.
func (a *Aggregator) windowRollup(s *series) (Rollup, PriceHistogram) {
	nowEpoch := a.now().UnixNano()/int64(a.bucketDur) + 1
	minEpoch := nowEpoch - int64(a.nb) + 1
	var r Rollup
	var latSum, latMax int64
	hist := PriceHistogram{
		Bounds: a.bounds,
		Counts: make([]int64, len(a.bounds)+1),
	}
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch < minEpoch || b.epoch > nowEpoch {
			continue
		}
		b.counters.addTo(&r)
		latSum += b.latSumNs
		if b.latMaxNs > latMax {
			latMax = b.latMaxNs
		}
		for k, c := range b.prices {
			hist.Counts[k] += c
		}
	}
	finishRollup(&r, latSum, latMax)
	return r, hist
}

// lifetimeRollup folds the lifetime totals.
func lifetimeRollup(s *series) Rollup {
	var r Rollup
	s.life.addTo(&r)
	finishRollup(&r, s.life.latSumNs, s.life.latMaxNs)
	return r
}

func finishRollup(r *Rollup, latSumNs, latMaxNs int64) {
	if r.Bids > 0 {
		r.WinRate = float64(r.Wins) / float64(r.Bids)
	}
	if r.Rounds > 0 {
		r.AvgRoundLatencyMS = float64(latSumNs) / float64(r.Rounds) / 1e6
	}
	r.MaxRoundLatencyMS = float64(latMaxNs) / 1e6
}

// JobStats returns the job's rollups; ok is false when the aggregator has
// never seen the job.
func (a *Aggregator) JobStats(id string) (JobStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.jobs[id]
	if !ok {
		return JobStats{}, false
	}
	win, hist := a.windowRollup(s)
	return JobStats{
		Job:            id,
		WindowSec:      int64(a.window / time.Second),
		Window:         win,
		Lifetime:       lifetimeRollup(s),
		PriceHistogram: hist,
	}, true
}

// NodeStats returns the node's rollups; ok is false when the aggregator
// has never seen the node.
func (a *Aggregator) NodeStats(id int) (NodeStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.nodes[id]
	if !ok {
		return NodeStats{}, false
	}
	win, hist := a.windowRollup(s)
	st := NodeStats{
		Node:           id,
		WindowSec:      int64(a.window / time.Second),
		Window:         win,
		Lifetime:       lifetimeRollup(s),
		PriceHistogram: hist,
	}
	if !s.lastBid.IsZero() {
		st.LastBidMS = s.lastBid.UnixMilli()
	}
	if !s.lastWin.IsZero() {
		st.LastWinMS = s.lastWin.UnixMilli()
	}
	return st, true
}

// NodeIDs lists every node the aggregator has seen (ascending).
func (a *Aggregator) NodeIDs() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]int, 0, len(a.nodes))
	for id := range a.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

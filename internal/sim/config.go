// Package sim is the "smart simulator" of §V-A: it wires the dataset,
// population, auction and federated-learning substrates into the paper's
// experiments and regenerates every evaluation figure (Figs. 4-13) as
// numeric series. Each figure has a dedicated generator; bench_test.go and
// cmd/fmore-bench expose them.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"fmore/internal/auction"
	"fmore/internal/data"
	"fmore/internal/dist"
	"fmore/internal/fl"
	"fmore/internal/mec"
	"fmore/internal/ml"
)

// Method selects the client-selection strategy under test.
type Method int

const (
	// MethodFMore is the paper's auction scheme.
	MethodFMore Method = iota + 1
	// MethodRandFL is classic federated learning with random selection.
	MethodRandFL
	// MethodFixFL keeps a fixed winner set.
	MethodFixFL
	// MethodPsiFMore is the ψ-randomized extension.
	MethodPsiFMore
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodFMore:
		return "FMore"
	case MethodRandFL:
		return "RandFL"
	case MethodFixFL:
		return "FixFL"
	case MethodPsiFMore:
		return "psi-FMore"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Scale groups the size knobs shared by all experiments, so figures can run
// at paper scale (N=100, K=20, averaged over 5 repeats) or at a quick scale
// for CI and benchmarks.
type Scale struct {
	// N and K are the population and winner-set sizes.
	N, K int
	// Rounds is the number of federated rounds per run.
	Rounds int
	// TrainSamples/TestSamples size the generated corpus.
	TrainSamples, TestSamples int
	// MinNodeData/MaxNodeData bound per-node local data.
	MinNodeData, MaxNodeData int
	// MaxSamplesPerRound caps each winner's per-round subset (keeps CPU-only
	// training tractable; 0 = uncapped).
	MaxSamplesPerRound int
	// Repeats averages results over this many seeds ("all the results are
	// the average of five experiments", §V-A).
	Repeats int
	// Seed is the base seed; repeat r uses Seed + r.
	Seed int64
}

// PaperScale mirrors the paper's simulator dimensions: 100 participators,
// K = 20 winners, 20 rounds, averaged over 5 runs. Per-node data is scaled
// down from the paper's [1000, 5000] to keep pure-Go training tractable; the
// relative heterogeneity (5× spread) is preserved.
func PaperScale() Scale {
	return Scale{
		N: 100, K: 20, Rounds: 20,
		TrainSamples: 4000, TestSamples: 600,
		MinNodeData: 15, MaxNodeData: 200,
		MaxSamplesPerRound: 100,
		Repeats:            5,
		Seed:               1,
	}
}

// QuickScale is a reduced preset for benchmarks and integration tests.
func QuickScale() Scale {
	return Scale{
		N: 40, K: 8, Rounds: 8,
		TrainSamples: 1200, TestSamples: 300,
		MinNodeData: 10, MaxNodeData: 100,
		MaxSamplesPerRound: 60,
		Repeats:            1,
		Seed:               1,
	}
}

func (s Scale) validate() error {
	if s.N < 2 || s.K < 1 || s.K >= s.N {
		return fmt.Errorf("sim: need N >= 2 and 1 <= K < N, got N=%d K=%d", s.N, s.K)
	}
	if s.Rounds < 1 || s.Repeats < 1 {
		return fmt.Errorf("sim: need Rounds >= 1 and Repeats >= 1, got %d/%d", s.Rounds, s.Repeats)
	}
	if s.MinNodeData < 1 || s.MaxNodeData < s.MinNodeData {
		return fmt.Errorf("sim: node data range [%d, %d] invalid", s.MinNodeData, s.MaxNodeData)
	}
	return nil
}

// ExperimentConfig is one concrete run specification.
type ExperimentConfig struct {
	Task   data.TaskKind
	Method Method
	Scale  Scale
	// Psi applies to MethodPsiFMore (default 1 otherwise).
	Psi float64
	// LocalEpochs, BatchSize, LR are local training hyperparameters.
	LocalEpochs, BatchSize int
	LR                     float64
	// WithTiming attaches the mec timing model.
	WithTiming bool
}

func (c *ExperimentConfig) setDefaults() {
	if c.LocalEpochs == 0 {
		// Two local passes per round: the standard FedAvg E > 1 regime; the
		// hardest tiers need the extra local progress to move within the
		// paper's 20-round budget.
		c.LocalEpochs = 2
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		switch c.Task {
		case data.HPNews:
			c.LR = 0.08
		case data.CIFAR10:
			// The hardest image tier destabilizes above ~0.02 with momentum.
			c.LR = 0.02
		default:
			c.LR = 0.04
		}
	}
	if c.Psi == 0 {
		c.Psi = 1
	}
}

func (c *ExperimentConfig) validate() error {
	if c.Task == 0 {
		return errors.New("sim: Task is required")
	}
	if c.Method == 0 {
		return errors.New("sim: Method is required")
	}
	if c.Psi <= 0 || c.Psi > 1 {
		return fmt.Errorf("sim: Psi must be in (0, 1], got %v", c.Psi)
	}
	return c.Scale.validate()
}

// simulatorAuction bundles the paper-simulator market primitives: the
// scoring rule s(q₁, q₂) = 25·q₁·q₂ (α = 25, §V-A), a linear cost family,
// and θ ~ Uniform[1, 2].
type simulatorAuction struct {
	rule  auction.ScoringRule
	cost  auction.CostFunction
	theta dist.Distribution
}

func newSimulatorAuction() (*simulatorAuction, error) {
	rule, err := auction.NewCobbDouglas(25, 1, 1)
	if err != nil {
		return nil, err
	}
	cost, err := auction.NewLinearCost(0.5, 0.5)
	if err != nil {
		return nil, err
	}
	theta, err := dist.NewUniform(1, 2)
	if err != nil {
		return nil, err
	}
	return &simulatorAuction{rule: rule, cost: cost, theta: theta}, nil
}

// strategy solves the Nash equilibrium for the simulator market at (n, k).
func (sa *simulatorAuction) strategy(n, k int) (*auction.Strategy, error) {
	return auction.SolveEquilibrium(auction.EquilibriumConfig{
		Rule: sa.rule, Cost: sa.cost, Theta: sa.theta,
		N: n, K: k,
		QLo: []float64{0, 0}, QHi: []float64{1, 1},
		ThetaGridPoints: 65, QualityGridPoints: 32,
	})
}

// buildModel constructs the task's classifier with the paper's architecture
// shape at reduced width.
func buildModel(kind data.TaskKind, rng *rand.Rand) (ml.Classifier, error) {
	switch kind {
	case data.MNISTO, data.MNISTF:
		return ml.NewImageCNN(ml.MNISTCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.CIFAR10:
		return ml.NewImageCNN(ml.CIFARCNNConfig(data.ImageSize, data.ImageSize), rng)
	case data.HPNews:
		return ml.NewLSTMClassifier(ml.LSTMConfig{
			Vocab: data.TextVocab, Embed: 10, Hidden: 20,
			Classes: data.NumClasses, Momentum: 0.9,
		}, rng)
	default:
		return nil, fmt.Errorf("sim: unknown task %v", kind)
	}
}

// buildSelector constructs the method's selector for a given population.
func buildSelector(cfg ExperimentConfig, sa *simulatorAuction, pop *mec.Population, seed int64) (fl.Selector, error) {
	switch cfg.Method {
	case MethodRandFL:
		return fl.RandomSelector{K: cfg.Scale.K}, nil
	case MethodFixFL:
		ids := make([]int, pop.N())
		for i := range ids {
			ids[i] = i
		}
		return fl.NewFixedSelector(ids, cfg.Scale.K, rand.New(rand.NewSource(seed+31)))
	case MethodFMore, MethodPsiFMore:
		strat, err := sa.strategy(cfg.Scale.N, cfg.Scale.K)
		if err != nil {
			return nil, err
		}
		psi := 1.0
		name := "FMore"
		if cfg.Method == MethodPsiFMore {
			psi = cfg.Psi
			name = fmt.Sprintf("psi-FMore(%.2g)", psi)
		}
		auctioneer, err := auction.NewAuctioneer(auction.Config{
			Rule: sa.rule, K: cfg.Scale.K, Psi: psi,
		}, rand.New(rand.NewSource(seed+37)))
		if err != nil {
			return nil, err
		}
		return fl.NewFMoreSelector(auctioneer, fl.SimulatorBid(strat, float64(cfg.Scale.MaxNodeData)), name)
	default:
		return nil, fmt.Errorf("sim: unknown method %v", cfg.Method)
	}
}

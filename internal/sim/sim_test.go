package sim

import (
	"bytes"
	"strings"
	"testing"

	"fmore/internal/data"
)

// tinyScale keeps sim tests fast.
func tinyScale() Scale {
	return Scale{
		N: 12, K: 3, Rounds: 3,
		TrainSamples: 400, TestSamples: 100,
		MinNodeData: 10, MaxNodeData: 50,
		MaxSamplesPerRound: 25,
		Repeats:            1,
		Seed:               1,
	}
}

func TestRunOnceAllMethods(t *testing.T) {
	for _, method := range []Method{MethodFMore, MethodRandFL, MethodFixFL, MethodPsiFMore} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			cfg := ExperimentConfig{Task: data.MNISTO, Method: method, Scale: tinyScale()}
			if method == MethodPsiFMore {
				cfg.Psi = 0.5
			}
			hist, err := RunOnce(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(hist.Rounds) != 3 {
				t.Fatalf("rounds = %d, want 3", len(hist.Rounds))
			}
			for _, r := range hist.Rounds {
				if len(r.SelectedIDs) == 0 {
					t.Errorf("round %d selected nobody", r.Round)
				}
				if r.Accuracy < 0 || r.Accuracy > 1 {
					t.Errorf("round %d accuracy %v", r.Round, r.Accuracy)
				}
			}
		})
	}
}

func TestRunOnceValidation(t *testing.T) {
	if _, err := RunOnce(ExperimentConfig{Method: MethodFMore, Scale: tinyScale()}, 0); err == nil {
		t.Error("missing task: want error")
	}
	if _, err := RunOnce(ExperimentConfig{Task: data.MNISTO, Scale: tinyScale()}, 0); err == nil {
		t.Error("missing method: want error")
	}
	bad := tinyScale()
	bad.K = bad.N
	if _, err := RunOnce(ExperimentConfig{Task: data.MNISTO, Method: MethodFMore, Scale: bad}, 0); err == nil {
		t.Error("K=N: want error")
	}
}

func TestRunAveragedSeries(t *testing.T) {
	s := tinyScale()
	s.Repeats = 2
	avg, err := RunAveraged(ExperimentConfig{Task: data.MNISTO, Method: MethodFMore, Scale: s})
	if err != nil {
		t.Fatal(err)
	}
	if len(avg.Accuracy) != s.Rounds || len(avg.Loss) != s.Rounds {
		t.Fatalf("series lengths %d/%d, want %d", len(avg.Accuracy), len(avg.Loss), s.Rounds)
	}
	if avg.Runs != 2 || len(avg.Histories) != 2 {
		t.Errorf("runs recorded %d/%d, want 2", avg.Runs, len(avg.Histories))
	}
	if avg.Selector != "FMore" {
		t.Errorf("selector = %q", avg.Selector)
	}
	if avg.MeanPayment <= 0 || avg.MeanWinnerScore <= 0 {
		t.Errorf("auction telemetry missing: payment=%v score=%v", avg.MeanPayment, avg.MeanWinnerScore)
	}
	if got := avg.FinalAccuracy(); got != avg.Accuracy[s.Rounds-1] {
		t.Errorf("FinalAccuracy = %v, want %v", got, avg.Accuracy[s.Rounds-1])
	}
	if rta := avg.RoundsToAccuracy(2.0); rta != float64(s.Rounds+1) {
		t.Errorf("unreachable target should cap at Rounds+1, got %v", rta)
	}
}

func TestSweepAuctionMonotonicity(t *testing.T) {
	// Payment falls and score rises with N (Fig. 9b's shape).
	stats, err := SweepAuction([]int{20, 60, 120}, []int{5}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d, want 3", len(stats))
	}
	if !(stats[2].MeanPayment < stats[0].MeanPayment) {
		t.Errorf("payment should fall with N: %v -> %v", stats[0].MeanPayment, stats[2].MeanPayment)
	}
	if !(stats[2].MeanScore > stats[0].MeanScore) {
		t.Errorf("score should rise with N: %v -> %v", stats[0].MeanScore, stats[2].MeanScore)
	}

	// Payment rises with K (Fig. 10b / Theorem 3's shape).
	stats, err = SweepAuction([]int{60}, []int{5, 15, 25}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(stats[2].MeanPayment > stats[0].MeanPayment) {
		t.Errorf("payment should rise with K: %v -> %v", stats[0].MeanPayment, stats[2].MeanPayment)
	}
	if !(stats[2].MeanScore < stats[0].MeanScore) {
		t.Errorf("score should fall with K: %v -> %v", stats[0].MeanScore, stats[2].MeanScore)
	}
}

func TestSweepAuctionErrors(t *testing.T) {
	if _, err := SweepAuction(nil, []int{1}, 5, 1); err == nil {
		t.Error("empty ns: want error")
	}
	if _, err := SweepAuction([]int{5}, []int{5}, 5, 1); err == nil {
		t.Error("K>=N: want error")
	}
}

func TestSweepPsiConcentration(t *testing.T) {
	counts, err := SweepPsi([]float64{0.2, 0.9}, 50, 10, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 {
		t.Fatalf("counts = %d, want 2", len(counts))
	}
	// High ψ concentrates selection near the top of the ranking.
	if !(counts[1].Top10 > counts[0].Top10) {
		t.Errorf("top10 at psi=0.9 (%v) should exceed psi=0.2 (%v)", counts[1].Top10, counts[0].Top10)
	}
	if counts[0].MeanSelectedScoreRank <= counts[1].MeanSelectedScoreRank {
		t.Errorf("low psi should select lower-ranked nodes on average: %v vs %v",
			counts[0].MeanSelectedScoreRank, counts[1].MeanSelectedScoreRank)
	}
	for _, c := range counts {
		if c.Top10 > c.Top20 || c.Top20 > c.Top30 {
			t.Errorf("top-bucket counts must be nested: %+v", c)
		}
	}
	if _, err := SweepPsi(nil, 10, 2, 5, 1); err == nil {
		t.Error("empty psi sweep: want error")
	}
}

func TestNewScoreDistribution(t *testing.T) {
	scores := []float64{1, 1, 2, 3, 3, 3}
	d := NewScoreDistribution(scores, 3)
	total := 0.0
	for _, p := range d.Proportion {
		total += p
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("proportions sum to %v, want 100", total)
	}
	if len(d.BinCenters) != 3 {
		t.Errorf("bins = %d, want 3", len(d.BinCenters))
	}
	// Degenerate inputs do not panic.
	_ = NewScoreDistribution(nil, 5)
	_ = NewScoreDistribution([]float64{2, 2, 2}, 4)
}

func TestWriteFigure(t *testing.T) {
	fr := &FigureResult{
		ID:    "figX",
		Title: "test figure",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.75}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{0.25, 0.5}},
			{Name: "c", X: []float64{10, 20, 30}, Y: []float64{1, 2, 3}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, fr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "test figure", "a", "b", "c", "note: hello", "0.75"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodFMore.String() != "FMore" || MethodRandFL.String() != "RandFL" ||
		MethodFixFL.String() != "FixFL" || MethodPsiFMore.String() != "psi-FMore" {
		t.Error("Method.String mismatch")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should format")
	}
}

// TestFigure4QuickShape runs the figure-4 generator at tiny scale and
// validates its structure (full-scale shape checks live in the benches).
func TestFigure4QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	fr, err := Figure4(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if fr.ID != "fig4" {
		t.Errorf("ID = %q", fr.ID)
	}
	// 3 methods × (accuracy + loss).
	if len(fr.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fr.Series))
	}
	for _, s := range fr.Series {
		if len(s.X) != 3 || len(s.Y) != 3 {
			t.Errorf("series %q has %d/%d points, want 3", s.Name, len(s.X), len(s.Y))
		}
	}
	if len(fr.Notes) == 0 {
		t.Error("figure should derive notes")
	}
}

func TestFigure9And10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	s := tinyScale()
	fr, err := Figure9(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ser := range fr.Series {
		names[ser.Name] = true
	}
	for _, want := range []string{"payment-vs-N", "score-vs-N"} {
		if !names[want] {
			t.Errorf("fig9 missing series %q", want)
		}
	}
	fr10, err := Figure10(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	for _, ser := range fr10.Series {
		names[ser.Name] = true
	}
	for _, want := range []string{"payment-vs-K", "score-vs-K"} {
		if !names[want] {
			t.Errorf("fig10 missing series %q", want)
		}
	}
}

func TestFigure11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	fr, err := Figure11(tinyScale(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) < 5 {
		t.Errorf("fig11 series = %d, want >= 5", len(fr.Series))
	}
}

func TestFigures12And13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster figure generation")
	}
	fig12, fig13, err := Figures12And13(QuickClusterScale())
	if err != nil {
		t.Fatal(err)
	}
	if fig12.ID != "fig12" || fig13.ID != "fig13" {
		t.Errorf("ids = %q/%q", fig12.ID, fig13.ID)
	}
	if len(fig12.Series) != 4 {
		t.Errorf("fig12 series = %d, want 4", len(fig12.Series))
	}
	var cumF []float64
	for _, s := range fig13.Series {
		if s.Name == "FMore/cum-time" {
			cumF = s.Y
		}
	}
	for i := 1; i < len(cumF); i++ {
		if cumF[i] < cumF[i-1] {
			t.Error("cumulative time must be non-decreasing")
		}
	}
}

func TestInterpolateSeries(t *testing.T) {
	s := Series{Name: "t", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}}
	out, err := interpolateSeries(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.X) != 5 {
		t.Errorf("points = %d, want 5", len(out.X))
	}
	if _, err := interpolateSeries(Series{X: []float64{1}, Y: []float64{1}}, 3); err == nil {
		t.Error("short series: want error")
	}
}

func TestWriteFigureCSV(t *testing.T) {
	fr := &FigureResult{
		ID: "figY",
		Series: []Series{
			{Name: "s1", X: []float64{1, 2}, Y: []float64{0.5, 0.75}},
		},
	}
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, fr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	if lines[0] != "figure,series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "figY,s1,1,0.5") {
		t.Errorf("row = %q", lines[1])
	}
}

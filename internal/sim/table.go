package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteFigure renders a FigureResult as an aligned text table: one x column
// per distinct x-axis, one column per series, notes below. It is the output
// format of cmd/fmore-bench and the bench harness.
func WriteFigure(w io.Writer, fr *FigureResult) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", fr.ID, fr.Title); err != nil {
		return err
	}
	// Group series sharing the same x axis so they print side by side.
	groups := groupSeriesByAxis(fr.Series)
	for _, g := range groups {
		if err := writeSeriesGroup(w, g); err != nil {
			return err
		}
	}
	for _, note := range fr.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sameAxis(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func groupSeriesByAxis(series []Series) [][]Series {
	var groups [][]Series
	for _, s := range series {
		placed := false
		for gi := range groups {
			if sameAxis(groups[gi][0].X, s.X) {
				groups[gi] = append(groups[gi], s)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []Series{s})
		}
	}
	return groups
}

func writeSeriesGroup(w io.Writer, group []Series) error {
	if len(group) == 0 || len(group[0].X) == 0 {
		return nil
	}
	header := []string{"x"}
	for _, s := range group {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	rows := make([][]string, len(group[0].X))
	for r := range rows {
		row := make([]string, len(header))
		row[0] = trimFloat(group[0].X[r])
		for c, s := range group {
			if r < len(s.Y) {
				row[c+1] = trimFloat(s.Y[r])
			}
		}
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
		rows[r] = row
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// trimFloat formats compactly: integers without decimals, small floats with
// four significant digits.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e9 && v > -1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteFigureCSV renders a FigureResult as CSV: one row per (series, x, y)
// triple, suitable for external plotting.
func WriteFigureCSV(w io.Writer, fr *FigureResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range fr.Series {
		for i := range s.X {
			y := ""
			if i < len(s.Y) {
				y = strconv.FormatFloat(s.Y[i], 'g', 10, 64)
			}
			row := []string{fr.ID, s.Name, strconv.FormatFloat(s.X[i], 'g', 10, 64), y}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

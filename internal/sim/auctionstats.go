package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"fmore/internal/auction"
)

// AuctionStats summarizes a Monte-Carlo sweep of the simulator auction at a
// fixed (N, K): mean winner payment and mean winner score, the quantities of
// Figs. 9(b) and 10(b).
type AuctionStats struct {
	N, K        int
	MeanPayment float64
	MeanScore   float64
}

// auctionRoundSample draws one population of θ's, has every node submit its
// Nash equilibrium bid (qˢ(θ), pˢ(θ)), runs one FMore round, and returns
// the outcome. This is the pure-auction Monte Carlo behind Figs. 9(b),
// 10(b) and 11(b): all bid heterogeneity flows from the private type, as in
// the paper's analysis.
func auctionRoundSample(sa *simulatorAuction, strat *auction.Strategy, n, k int, psi float64, rng *rand.Rand) (*auction.Outcome, error) {
	bids := make([]auction.Bid, n)
	for i := 0; i < n; i++ {
		theta := sa.theta.Sample(rng)
		q, p := strat.Bid(theta)
		bids[i] = auction.Bid{NodeID: i, Qualities: q, Payment: p}
	}
	auctioneer, err := auction.NewAuctioneer(auction.Config{Rule: sa.rule, K: k, Psi: psi}, rng)
	if err != nil {
		return nil, err
	}
	out, err := auctioneer.Run(bids)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SweepAuction measures mean winner payment and score at each (N, K) pair
// over `trials` Monte-Carlo rounds. Exactly one of ns/ks may have length >
// 1; the other is held fixed at its single element.
func SweepAuction(ns, ks []int, trials int, seed int64) ([]AuctionStats, error) {
	if len(ns) == 0 || len(ks) == 0 {
		return nil, fmt.Errorf("sim: empty sweep")
	}
	if trials < 1 {
		trials = 1
	}
	sa, err := newSimulatorAuction()
	if err != nil {
		return nil, err
	}
	var out []AuctionStats
	for _, n := range ns {
		for _, k := range ks {
			if k >= n {
				return nil, fmt.Errorf("sim: sweep point K=%d >= N=%d", k, n)
			}
			strat, err := sa.strategy(n, k)
			if err != nil {
				return nil, fmt.Errorf("sim: strategy at N=%d K=%d: %w", n, k, err)
			}
			rng := rand.New(rand.NewSource(seed + int64(n)*31 + int64(k)*7))
			paySum, scoreSum, cnt := 0.0, 0.0, 0
			for trial := 0; trial < trials; trial++ {
				outc, err := auctionRoundSample(sa, strat, n, k, 1, rng)
				if err != nil {
					return nil, err
				}
				for _, w := range outc.Winners {
					paySum += w.Payment
					scoreSum += w.Score
					cnt++
				}
			}
			st := AuctionStats{N: n, K: k}
			if cnt > 0 {
				st.MeanPayment = paySum / float64(cnt)
				st.MeanScore = scoreSum / float64(cnt)
			}
			out = append(out, st)
		}
	}
	return out, nil
}

// PsiTopCounts measures, for each ψ, how many of the K selected nodes rank
// in the top-10/top-20/top-30 by score — Fig. 11(b).
type PsiTopCounts struct {
	Psi                   float64
	Top10, Top20, Top30   float64
	MeanSelectedScoreRank float64
}

// SweepPsi runs the ψ-FMore selection Monte Carlo at fixed N and K.
func SweepPsi(psis []float64, n, k, trials int, seed int64) ([]PsiTopCounts, error) {
	if len(psis) == 0 {
		return nil, fmt.Errorf("sim: empty psi sweep")
	}
	sa, err := newSimulatorAuction()
	if err != nil {
		return nil, err
	}
	strat, err := sa.strategy(n, k)
	if err != nil {
		return nil, err
	}
	var out []PsiTopCounts
	for _, psi := range psis {
		rng := rand.New(rand.NewSource(seed + int64(psi*1000)))
		var top10, top20, top30, rankSum float64
		count := 0
		for trial := 0; trial < trials; trial++ {
			outc, err := auctionRoundSample(sa, strat, n, k, psi, rng)
			if err != nil {
				return nil, err
			}
			// Rank all bidders by score, descending.
			type ranked struct {
				id    int
				score float64
			}
			all := make([]ranked, len(outc.Scores))
			for i, s := range outc.Scores {
				all[i] = ranked{id: i, score: s}
			}
			sort.Slice(all, func(a, b int) bool { return all[a].score > all[b].score })
			rankOf := make(map[int]int, len(all))
			for pos, r := range all {
				rankOf[r.id] = pos + 1
			}
			for _, w := range outc.Winners {
				rank := rankOf[w.Bid.NodeID]
				if rank <= 10 {
					top10++
				}
				if rank <= 20 {
					top20++
				}
				if rank <= 30 {
					top30++
				}
				rankSum += float64(rank)
				count++
			}
		}
		pt := PsiTopCounts{Psi: psi}
		if trials > 0 {
			pt.Top10 = top10 / float64(trials)
			pt.Top20 = top20 / float64(trials)
			pt.Top30 = top30 / float64(trials)
		}
		if count > 0 {
			pt.MeanSelectedScoreRank = rankSum / float64(count)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScoreDistribution pools scores into `bins` equal-width buckets and
// reports, per bucket, the proportion (%) of scores falling in it —
// Fig. 8's axes.
type ScoreDistribution struct {
	// BinCenters are the bucket mid-points (score axis).
	BinCenters []float64
	// Proportion[i] is the percentage of scores in bucket i.
	Proportion []float64
}

// NewScoreDistribution histograms the given scores.
func NewScoreDistribution(scores []float64, bins int) ScoreDistribution {
	if bins < 1 {
		bins = 10
	}
	d := ScoreDistribution{
		BinCenters: make([]float64, bins),
		Proportion: make([]float64, bins),
	}
	if len(scores) == 0 {
		return d
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(bins)
	for i := range d.BinCenters {
		d.BinCenters[i] = lo + (float64(i)+0.5)*width
	}
	for _, s := range scores {
		idx := int((s - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		d.Proportion[idx]++
	}
	for i := range d.Proportion {
		d.Proportion[i] = 100 * d.Proportion[i] / float64(len(scores))
	}
	return d
}

package sim

import (
	"fmt"

	"fmore/internal/data"
)

// HeadlineResult collects the paper's headline claims recomputed on this
// reproduction:
//
//	"FMore is able to speed up federated training via reducing training
//	 rounds by 51.3% on average and improve the model accuracy by 28% for
//	 the tested CNN and LSTM models." (§I, simulations)
//	"Real implementations ... witness the improvement of model accuracy by
//	 44.9% and the reduction of training time by 38.4%." (§I, cluster)
type HeadlineResult struct {
	// PerTask maps each simulated workload to its round reduction (vs
	// RandFL, at RandFL's final accuracy) and relative accuracy gain.
	PerTask map[string]TaskHeadline
	// MeanRoundReductionPct averages the per-task round reductions (the
	// paper reports 51.3%).
	MeanRoundReductionPct float64
	// LSTMAccuracyGainPct is the relative accuracy improvement on the LSTM
	// task at the final round (the paper reports 28%).
	LSTMAccuracyGainPct float64
	// ClusterAccuracyGainPct and ClusterTimeReductionPct come from the
	// deployment reproduction (the paper reports 44.9% and 38.4%).
	ClusterAccuracyGainPct  float64
	ClusterTimeReductionPct float64
}

// TaskHeadline is one workload's headline pair.
type TaskHeadline struct {
	RoundReductionPct float64
	AccuracyGainPct   float64
}

// HeadlineNumbers reruns the four simulation workloads plus the cluster
// deployment and derives the paper's headline quantities.
func HeadlineNumbers(scale Scale, cs ClusterScale) (*HeadlineResult, error) {
	res := &HeadlineResult{PerTask: map[string]TaskHeadline{}}
	var reductionSum float64
	var reductionN int
	for _, task := range []data.TaskKind{data.MNISTO, data.MNISTF, data.CIFAR10, data.HPNews} {
		fmore, err := RunAveraged(ExperimentConfig{Task: task, Method: MethodFMore, Scale: scale})
		if err != nil {
			return nil, fmt.Errorf("headline %v FMore: %w", task, err)
		}
		randfl, err := RunAveraged(ExperimentConfig{Task: task, Method: MethodRandFL, Scale: scale})
		if err != nil {
			return nil, fmt.Errorf("headline %v RandFL: %w", task, err)
		}
		th := TaskHeadline{}
		target := randfl.FinalAccuracy()
		rF, rR := fmore.RoundsToAccuracy(target), randfl.RoundsToAccuracy(target)
		if rR > 0 && rF > 0 {
			th.RoundReductionPct = 100 * (1 - rF/rR)
			reductionSum += th.RoundReductionPct
			reductionN++
		}
		if ra := randfl.FinalAccuracy(); ra > 0 {
			th.AccuracyGainPct = 100 * (fmore.FinalAccuracy()/ra - 1)
		}
		res.PerTask[task.String()] = th
		if task == data.HPNews {
			res.LSTMAccuracyGainPct = th.AccuracyGainPct
		}
	}
	if reductionN > 0 {
		res.MeanRoundReductionPct = reductionSum / float64(reductionN)
	}

	fig12, fig13, err := Figures12And13(cs)
	if err != nil {
		return nil, err
	}
	var totalF, totalR float64
	for _, s := range fig13.Series {
		if len(s.Y) == 0 {
			continue
		}
		switch s.Name {
		case "FMore/cum-time":
			totalF = s.Y[len(s.Y)-1]
		case "RandFL/cum-time":
			totalR = s.Y[len(s.Y)-1]
		}
	}
	if totalR > 0 {
		res.ClusterTimeReductionPct = 100 * (1 - totalF/totalR)
	}
	var accF, accR float64
	for _, s := range fig12.Series {
		if len(s.Y) == 0 {
			continue
		}
		switch s.Name {
		case "FMore/accuracy":
			accF = s.Y[len(s.Y)-1]
		case "RandFL/accuracy":
			accR = s.Y[len(s.Y)-1]
		}
	}
	if accR > 0 {
		res.ClusterAccuracyGainPct = 100 * (accF/accR - 1)
	}
	return res, nil
}

// Write renders the headline comparison against the paper's numbers.
func (h *HeadlineResult) Write(w interface{ Write([]byte) (int, error) }) error {
	lines := []string{
		"== headline numbers (paper → measured) ==",
		fmt.Sprintf("  mean round reduction:   paper 51.3%%  measured %.1f%%", h.MeanRoundReductionPct),
		fmt.Sprintf("  LSTM accuracy gain:     paper 28%%    measured %.1f%%", h.LSTMAccuracyGainPct),
		fmt.Sprintf("  cluster accuracy gain:  paper 44.9%%  measured %.1f%%", h.ClusterAccuracyGainPct),
		fmt.Sprintf("  cluster time reduction: paper 38.4%%  measured %.1f%%", h.ClusterTimeReductionPct),
	}
	for task, th := range h.PerTask {
		lines = append(lines, fmt.Sprintf("  %-10s rounds -%.1f%%  accuracy %+.1f%%",
			task, th.RoundReductionPct, th.AccuracyGainPct))
	}
	for _, l := range lines {
		if _, err := w.Write([]byte(l + "\n")); err != nil {
			return err
		}
	}
	return nil
}

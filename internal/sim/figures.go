package sim

import (
	"fmt"

	"fmore/internal/cluster"
	"fmore/internal/data"
	"fmore/internal/numeric"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// FigureResult is the numeric content of one paper figure.
type FigureResult struct {
	// ID is the paper figure id, e.g. "fig4".
	ID string
	// Title describes the figure.
	Title string
	// Series holds the curves (accuracy/loss/payment/... vs round/N/K/ψ).
	Series []Series
	// Notes records derived observations (speedups, crossovers).
	Notes []string
}

// roundsAxis returns 1..n as float64 x values.
func roundsAxis(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return x
}

// accuracyLossFigure runs the three methods on a task and assembles the
// paper's accuracy+loss panels (the template of Figs. 4-7).
func accuracyLossFigure(id, title string, task data.TaskKind, scale Scale) (*FigureResult, error) {
	fr := &FigureResult{ID: id, Title: title}
	var fmore, randfl *AvgHistory
	for _, method := range []Method{MethodFMore, MethodRandFL, MethodFixFL} {
		avg, err := RunAveraged(ExperimentConfig{Task: task, Method: method, Scale: scale})
		if err != nil {
			return nil, fmt.Errorf("%s %v: %w", id, method, err)
		}
		x := roundsAxis(scale.Rounds)
		fr.Series = append(fr.Series,
			Series{Name: avg.Selector + "/accuracy", X: x, Y: avg.Accuracy},
			Series{Name: avg.Selector + "/loss", X: x, Y: avg.Loss},
		)
		switch method {
		case MethodFMore:
			fmore = avg
		case MethodRandFL:
			randfl = avg
		}
	}
	// Derived note: speedup of FMore over RandFL at RandFL's final accuracy
	// (the paper reports 42-68% round reductions).
	target := randfl.FinalAccuracy()
	rF := fmore.RoundsToAccuracy(target)
	rR := randfl.RoundsToAccuracy(target)
	if rR > 0 && rF > 0 && rF <= float64(scale.Rounds) {
		fr.Notes = append(fr.Notes, fmt.Sprintf(
			"rounds to %.1f%% accuracy: FMore %.1f vs RandFL %.1f (%.0f%% reduction)",
			100*target, rF, rR, 100*(1-rF/rR)))
	}
	fr.Notes = append(fr.Notes, fmt.Sprintf(
		"final accuracy: FMore %.3f vs RandFL %.3f", fmore.FinalAccuracy(), randfl.FinalAccuracy()))
	return fr, nil
}

// Figure4 reproduces Fig. 4: accuracy and loss for the CNN on MNIST-O.
func Figure4(scale Scale) (*FigureResult, error) {
	return accuracyLossFigure("fig4", "CNN on MNIST-O: accuracy and loss vs round", data.MNISTO, scale)
}

// Figure5 reproduces Fig. 5: accuracy and loss for the CNN on MNIST-F.
func Figure5(scale Scale) (*FigureResult, error) {
	return accuracyLossFigure("fig5", "CNN on MNIST-F: accuracy and loss vs round", data.MNISTF, scale)
}

// Figure6 reproduces Fig. 6: accuracy and loss for the CNN on CIFAR-10.
func Figure6(scale Scale) (*FigureResult, error) {
	return accuracyLossFigure("fig6", "CNN on CIFAR-10: accuracy and loss vs round", data.CIFAR10, scale)
}

// Figure7 reproduces Fig. 7: accuracy and loss for the LSTM on HPNews.
func Figure7(scale Scale) (*FigureResult, error) {
	return accuracyLossFigure("fig7", "LSTM on HPNews: accuracy and loss vs round", data.HPNews, scale)
}

// Figure8 reproduces Fig. 8: the distribution of selected-node scores for
// the CIFAR-10 CNN (a) and the HPNews LSTM (b). "Total" is the score
// distribution of all bids; the per-method curves histogram the scores of
// the nodes each method actually selected.
func Figure8(scale Scale) (*FigureResult, error) {
	fr := &FigureResult{ID: "fig8", Title: "Distribution of selected-node scores"}
	const bins = 12
	for taskIdx, task := range []data.TaskKind{data.CIFAR10, data.HPNews} {
		// Per-task seed offset: bids derive from the data partition, so
		// distinct seeds keep the two panels' populations distinct.
		taskScale := scale
		taskScale.Seed += int64(taskIdx) * 7777
		var totalScores []float64
		perMethod := map[Method][]float64{}
		for _, method := range []Method{MethodFMore, MethodRandFL, MethodFixFL} {
			avg, err := RunAveraged(ExperimentConfig{Task: task, Method: method, Scale: taskScale})
			if err != nil {
				return nil, fmt.Errorf("fig8 %v %v: %w", task, method, err)
			}
			for _, h := range avg.Histories {
				for _, rm := range h.Rounds {
					if method == MethodFMore {
						totalScores = append(totalScores, rm.AllScores...)
					}
					// For baselines the auction telemetry is empty; score
					// their selections with the shadow scores from FMore's
					// run is not possible, so instead use winner scores when
					// available and node quality proxies otherwise.
					perMethod[method] = append(perMethod[method], rm.WinnerScores...)
				}
			}
		}
		suffix := "/" + task.String()
		dTotal := NewScoreDistribution(totalScores, bins)
		fr.Series = append(fr.Series, Series{Name: "Total" + suffix, X: dTotal.BinCenters, Y: dTotal.Proportion})
		dF := NewScoreDistribution(perMethod[MethodFMore], bins)
		fr.Series = append(fr.Series, Series{Name: "FMore" + suffix, X: dF.BinCenters, Y: dF.Proportion})
	}
	fr.Notes = append(fr.Notes,
		"FMore's selected-score mass sits right of the total-population distribution: it systematically picks high-score nodes",
		"baseline selections carry no scores (no auction), matching the paper's contrast")
	return fr, nil
}

// Figure9 reproduces Fig. 9: the impact of N. Panel (a): rounds to reach
// target accuracies for N=50 vs N=100 (FMore, MNIST-F). Panel (b): mean
// winner payment and score as N sweeps 50..200.
func Figure9(scale Scale, trials int) (*FigureResult, error) {
	fr := &FigureResult{ID: "fig9", Title: "Impact of the number of edge nodes N"}

	// Panel (a): federated runs at two population sizes.
	targets := []float64{0.70, 0.80, 0.82, 0.84, 0.86}
	for _, n := range []int{scale.N / 2, scale.N} {
		s := scale
		s.N = n
		avg, err := RunAveraged(ExperimentConfig{Task: data.MNISTF, Method: MethodFMore, Scale: s})
		if err != nil {
			return nil, fmt.Errorf("fig9a N=%d: %w", n, err)
		}
		x := make([]float64, len(targets))
		y := make([]float64, len(targets))
		for i, tgt := range targets {
			x[i] = tgt * 100
			y[i] = avg.RoundsToAccuracy(tgt)
		}
		fr.Series = append(fr.Series, Series{Name: fmt.Sprintf("rounds@N=%d", n), X: x, Y: y})
	}

	// Panel (b): auction sweep over N.
	ns := []int{50, 80, 110, 140, 170, 200}
	stats, err := SweepAuction(ns, []int{scale.K}, trials, scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig9b: %w", err)
	}
	var xs, pays, scores []float64
	for _, st := range stats {
		xs = append(xs, float64(st.N))
		pays = append(pays, st.MeanPayment)
		scores = append(scores, st.MeanScore)
	}
	fr.Series = append(fr.Series,
		Series{Name: "payment-vs-N", X: xs, Y: pays},
		Series{Name: "score-vs-N", X: xs, Y: scores},
	)
	if pays[len(pays)-1] < pays[0] {
		fr.Notes = append(fr.Notes, "payment decreases with N (more competition) — Theorem 2's shape")
	}
	if scores[len(scores)-1] > scores[0] {
		fr.Notes = append(fr.Notes, "winner score increases with N — more high-quality candidates")
	}
	return fr, nil
}

// Figure10 reproduces Fig. 10: the impact of K. Panel (a): rounds to reach
// target accuracies for K=small vs K=large. Panel (b): mean winner payment
// and score as K sweeps 5..35.
func Figure10(scale Scale, trials int) (*FigureResult, error) {
	fr := &FigureResult{ID: "fig10", Title: "Impact of the number of winners K"}

	targets := []float64{0.70, 0.80, 0.82, 0.84, 0.86}
	kSmall := scale.K / 4
	if kSmall < 1 {
		kSmall = 1
	}
	for _, k := range []int{kSmall, scale.K} {
		s := scale
		s.K = k
		avg, err := RunAveraged(ExperimentConfig{Task: data.MNISTF, Method: MethodFMore, Scale: s})
		if err != nil {
			return nil, fmt.Errorf("fig10a K=%d: %w", k, err)
		}
		x := make([]float64, len(targets))
		y := make([]float64, len(targets))
		for i, tgt := range targets {
			x[i] = tgt * 100
			y[i] = avg.RoundsToAccuracy(tgt)
		}
		fr.Series = append(fr.Series, Series{Name: fmt.Sprintf("rounds@K=%d", k), X: x, Y: y})
	}

	ks := []int{5, 10, 15, 20, 25, 30, 35}
	n := scale.N
	if n <= 35 {
		n = 40
	}
	stats, err := SweepAuction([]int{n}, ks, trials, scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig10b: %w", err)
	}
	var xs, pays, scores []float64
	for _, st := range stats {
		xs = append(xs, float64(st.K))
		pays = append(pays, st.MeanPayment)
		scores = append(scores, st.MeanScore)
	}
	fr.Series = append(fr.Series,
		Series{Name: "payment-vs-K", X: xs, Y: pays},
		Series{Name: "score-vs-K", X: xs, Y: scores},
	)
	if pays[len(pays)-1] > pays[0] {
		fr.Notes = append(fr.Notes, "payment increases with K (Theorem 3's shape)")
	}
	if scores[len(scores)-1] < scores[0] {
		fr.Notes = append(fr.Notes, "marginal winner score decreases with K")
	}
	return fr, nil
}

// Figure11 reproduces Fig. 11: the impact of ψ. Panel (a): rounds to target
// accuracy for ψ=0.3 vs ψ=0.9 in the small-data regime. Panel (b): of the K
// selected nodes, how many rank in the top-10/20/30 as ψ varies.
func Figure11(scale Scale, trials int) (*FigureResult, error) {
	fr := &FigureResult{ID: "fig11", Title: "Impact of the selection probability ψ"}

	// Small-data regime: tighten per-node data so diversity matters. The
	// accuracy targets sit below the ones of Figs. 9-10 because this regime
	// converges lower within the round budget.
	s := scale
	s.MaxNodeData = s.MinNodeData * 3
	s.MaxSamplesPerRound = s.MinNodeData * 2
	targets := []float64{0.40, 0.50, 0.60, 0.70, 0.80}
	for _, psi := range []float64{0.3, 0.9} {
		avg, err := RunAveraged(ExperimentConfig{Task: data.MNISTF, Method: MethodPsiFMore, Psi: psi, Scale: s})
		if err != nil {
			return nil, fmt.Errorf("fig11a psi=%v: %w", psi, err)
		}
		x := make([]float64, len(targets))
		y := make([]float64, len(targets))
		for i, tgt := range targets {
			x[i] = tgt * 100
			y[i] = avg.RoundsToAccuracy(tgt)
		}
		fr.Series = append(fr.Series, Series{Name: fmt.Sprintf("rounds@psi=%.1f", psi), X: x, Y: y})
	}

	psis := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	n, k := scale.N, scale.K
	if n < 40 {
		n, k = 100, 20 // panel (b) is pure auction Monte Carlo; keep paper size
	}
	counts, err := SweepPsi(psis, n, k, trials, scale.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig11b: %w", err)
	}
	var xs, t10, t20, t30 []float64
	for _, c := range counts {
		xs = append(xs, c.Psi)
		t10 = append(t10, c.Top10)
		t20 = append(t20, c.Top20)
		t30 = append(t30, c.Top30)
	}
	fr.Series = append(fr.Series,
		Series{Name: "top10-selected", X: xs, Y: t10},
		Series{Name: "top20-selected", X: xs, Y: t20},
		Series{Name: "top30-selected", X: xs, Y: t30},
	)
	if t30[len(t30)-1] > t30[0] {
		fr.Notes = append(fr.Notes, "larger ψ concentrates selection on top-score nodes; small ψ approaches RandFL")
	}
	return fr, nil
}

// ClusterScale sizes the Figure 12/13 deployment reproduction.
type ClusterScale struct {
	Nodes, K, Rounds          int
	TrainSamples, TestSamples int
	MinNodeData, MaxNodeData  int
	MaxSamplesPerRound        int
	Seed                      int64
}

// PaperClusterScale mirrors the paper's 31-node cluster (data scaled down).
func PaperClusterScale() ClusterScale {
	return ClusterScale{
		Nodes: 31, K: 8, Rounds: 20,
		TrainSamples: 3000, TestSamples: 500,
		MinNodeData: 40, MaxNodeData: 200,
		MaxSamplesPerRound: 60,
		Seed:               1,
	}
}

// QuickClusterScale is the CI/bench preset.
func QuickClusterScale() ClusterScale {
	return ClusterScale{
		Nodes: 8, K: 3, Rounds: 4,
		TrainSamples: 600, TestSamples: 150,
		MinNodeData: 20, MaxNodeData: 80,
		MaxSamplesPerRound: 40,
		Seed:               1,
	}
}

// Figures12And13 runs the loopback-TCP deployment for FMore and RandFL on
// the CIFAR-10 stand-in and assembles both figures: accuracy/loss vs round
// (Fig. 12) and cumulative training time vs round plus time-to-accuracy
// (Fig. 13).
func Figures12And13(cs ClusterScale) (*FigureResult, *FigureResult, error) {
	run := func(random bool) (*cluster.Result, error) {
		return cluster.Run(cluster.Config{
			Nodes: cs.Nodes, K: cs.K, Rounds: cs.Rounds,
			Task:         data.CIFAR10,
			TrainSamples: cs.TrainSamples, TestSamples: cs.TestSamples,
			MinNodeData: cs.MinNodeData, MaxNodeData: cs.MaxNodeData,
			MaxSamplesPerRound: cs.MaxSamplesPerRound,
			RandomSelection:    random,
			Seed:               cs.Seed,
			BreachNodeID:       -1,
			DropNodeID:         -1,
		})
	}
	fmoreRes, err := run(false)
	if err != nil {
		return nil, nil, fmt.Errorf("fig12 FMore cluster: %w", err)
	}
	randRes, err := run(true)
	if err != nil {
		return nil, nil, fmt.Errorf("fig12 RandFL cluster: %w", err)
	}

	x := roundsAxis(cs.Rounds)
	fig12 := &FigureResult{ID: "fig12", Title: "Realistic deployment: CIFAR-10 accuracy and loss"}
	fig12.Series = append(fig12.Series,
		Series{Name: "FMore/accuracy", X: x, Y: fmoreRes.Accuracies()},
		Series{Name: "RandFL/accuracy", X: x, Y: randRes.Accuracies()},
		Series{Name: "FMore/loss", X: x, Y: fmoreRes.Losses()},
		Series{Name: "RandFL/loss", X: x, Y: randRes.Losses()},
	)
	fa := fmoreRes.Accuracies()[cs.Rounds-1]
	ra := randRes.Accuracies()[cs.Rounds-1]
	if ra > 0 {
		fig12.Notes = append(fig12.Notes, fmt.Sprintf(
			"final accuracy: FMore %.3f vs RandFL %.3f (%+.1f%% relative)", fa, ra, 100*(fa/ra-1)))
	}

	fig13 := &FigureResult{ID: "fig13", Title: "Realistic deployment: training time"}
	fig13.Series = append(fig13.Series,
		Series{Name: "FMore/cum-time", X: x, Y: fmoreRes.CumSimTimeSec},
		Series{Name: "RandFL/cum-time", X: x, Y: randRes.CumSimTimeSec},
	)
	// Time-to-accuracy curve at interior targets.
	maxAcc := fa
	if ra < maxAcc {
		maxAcc = ra
	}
	var tx, tyF, tyR []float64
	for _, frac := range []float64{0.6, 0.7, 0.8, 0.9, 1.0} {
		tgt := maxAcc * frac
		tF := fmoreRes.TimeToAccuracy(tgt)
		tR := randRes.TimeToAccuracy(tgt)
		if tF > 0 && tR > 0 {
			tx = append(tx, tgt*100)
			tyF = append(tyF, tF)
			tyR = append(tyR, tR)
		}
	}
	fig13.Series = append(fig13.Series,
		Series{Name: "FMore/time-to-acc", X: tx, Y: tyF},
		Series{Name: "RandFL/time-to-acc", X: tx, Y: tyR},
	)
	totalF := fmoreRes.CumSimTimeSec[cs.Rounds-1]
	totalR := randRes.CumSimTimeSec[cs.Rounds-1]
	if totalR > 0 {
		fig13.Notes = append(fig13.Notes, fmt.Sprintf(
			"total simulated training time: FMore %.1fs vs RandFL %.1fs (%.1f%% reduction)",
			totalF, totalR, 100*(1-totalF/totalR)))
	}
	return fig12, fig13, nil
}

// interpolateSeries is a helper for smoothing sparse sweep outputs in
// reports (currently used by tests to sanity-check monotone trends).
func interpolateSeries(s Series, points int) (Series, error) {
	if len(s.X) < 2 {
		return s, fmt.Errorf("sim: series %q too short to interpolate", s.Name)
	}
	interp, err := numeric.NewMonotoneInterp(s.X, monotoneCopy(s.Y))
	if err != nil {
		return s, err
	}
	xs := numeric.Linspace(s.X[0], s.X[len(s.X)-1], points)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = interp.At(x)
	}
	return Series{Name: s.Name + "/interp", X: xs, Y: ys}, nil
}

// monotoneCopy nudges a nearly monotone series into a strictly monotone one
// so it can be interpolated.
func monotoneCopy(y []float64) []float64 {
	out := append([]float64(nil), y...)
	increasing := out[len(out)-1] >= out[0]
	for i := 1; i < len(out); i++ {
		if increasing && out[i] <= out[i-1] {
			out[i] = out[i-1] + 1e-9
		}
		if !increasing && out[i] >= out[i-1] {
			out[i] = out[i-1] - 1e-9
		}
	}
	return out
}

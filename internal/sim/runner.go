package sim

import (
	"fmt"
	"math/rand"

	"fmore/internal/data"
	"fmore/internal/fl"
	"fmore/internal/mec"
)

// RunOnce executes one federated training run under the experiment config
// with the given repeat index (seeds derive from Scale.Seed + repeat).
func RunOnce(cfg ExperimentConfig, repeat int) (*fl.History, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	seed := cfg.Scale.Seed + int64(repeat)*1000
	rng := rand.New(rand.NewSource(seed))

	corpus, err := data.GenerateTask(cfg.Task, cfg.Scale.TrainSamples, cfg.Scale.TestSamples, seed+1)
	if err != nil {
		return nil, err
	}
	part, err := data.PartitionHeterogeneous(corpus.Train, corpus.Classes,
		cfg.Scale.N, cfg.Scale.MinNodeData, cfg.Scale.MaxNodeData, 1, rng)
	if err != nil {
		return nil, err
	}
	sa, err := newSimulatorAuction()
	if err != nil {
		return nil, err
	}
	pop, err := mec.NewPopulation(mec.PopulationConfig{
		N: cfg.Scale.N, Theta: sa.theta, Partition: part.Nodes, Classes: corpus.Classes,
	}, rng)
	if err != nil {
		return nil, err
	}
	global, err := buildModel(cfg.Task, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return nil, err
	}
	selector, err := buildSelector(cfg, sa, pop, seed)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		Global:             global,
		Test:               corpus.Test,
		Selector:           selector,
		Population:         pop,
		Rounds:             cfg.Scale.Rounds,
		LocalEpochs:        cfg.LocalEpochs,
		BatchSize:          cfg.BatchSize,
		LR:                 cfg.LR,
		MaxSamplesPerRound: cfg.Scale.MaxSamplesPerRound,
		Seed:               seed + 3,
	}
	if cfg.WithTiming {
		tm := mec.DefaultTimingModel(global.NumParams())
		flCfg.Timing = &tm
	}
	return fl.Run(flCfg)
}

// AvgHistory is the pointwise mean of several runs of the same experiment.
type AvgHistory struct {
	Selector string
	Runs     int
	// Accuracy and Loss are per-round means.
	Accuracy []float64
	Loss     []float64
	// CumTime is the per-round mean cumulative simulated time (zeros
	// without timing).
	CumTime []float64
	// MeanWinnerScore and MeanPayment are averaged over rounds and runs
	// (auction methods only).
	MeanWinnerScore float64
	MeanPayment     float64
	// Histories keeps the raw runs for detail analysis.
	Histories []*fl.History
}

// RoundsToAccuracy averages, across runs, the first round reaching target;
// runs that never reach it count as Rounds+1 (a pessimistic cap, keeping
// comparisons meaningful).
func (a *AvgHistory) RoundsToAccuracy(target float64) float64 {
	if len(a.Histories) == 0 {
		return 0
	}
	total := 0.0
	for _, h := range a.Histories {
		r := h.RoundsToAccuracy(target)
		if r == 0 {
			r = len(h.Rounds) + 1
		}
		total += float64(r)
	}
	return total / float64(len(a.Histories))
}

// FinalAccuracy is the mean accuracy at the last round.
func (a *AvgHistory) FinalAccuracy() float64 {
	if len(a.Accuracy) == 0 {
		return 0
	}
	return a.Accuracy[len(a.Accuracy)-1]
}

// RunAveraged runs the experiment Scale.Repeats times and averages the
// series, the protocol of §V-A.
func RunAveraged(cfg ExperimentConfig) (*AvgHistory, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rounds := cfg.Scale.Rounds
	avg := &AvgHistory{
		Runs:     cfg.Scale.Repeats,
		Accuracy: make([]float64, rounds),
		Loss:     make([]float64, rounds),
		CumTime:  make([]float64, rounds),
	}
	scoreSum, scoreN := 0.0, 0
	paySum, payN := 0.0, 0
	for r := 0; r < cfg.Scale.Repeats; r++ {
		hist, err := RunOnce(cfg, r)
		if err != nil {
			return nil, fmt.Errorf("sim: repeat %d: %w", r, err)
		}
		if avg.Selector == "" {
			avg.Selector = hist.Selector
		}
		if len(hist.Rounds) != rounds {
			return nil, fmt.Errorf("sim: repeat %d produced %d rounds, want %d", r, len(hist.Rounds), rounds)
		}
		for i, rm := range hist.Rounds {
			avg.Accuracy[i] += rm.Accuracy
			avg.Loss[i] += rm.Loss
			avg.CumTime[i] += rm.CumTimeSec
			for _, s := range rm.WinnerScores {
				scoreSum += s
				scoreN++
			}
			if rm.TotalPayment > 0 && len(rm.SelectedIDs) > 0 {
				paySum += rm.TotalPayment / float64(len(rm.SelectedIDs))
				payN++
			}
		}
		avg.Histories = append(avg.Histories, hist)
	}
	inv := 1 / float64(cfg.Scale.Repeats)
	for i := 0; i < rounds; i++ {
		avg.Accuracy[i] *= inv
		avg.Loss[i] *= inv
		avg.CumTime[i] *= inv
	}
	if scoreN > 0 {
		avg.MeanWinnerScore = scoreSum / float64(scoreN)
	}
	if payN > 0 {
		avg.MeanPayment = paySum / float64(payN)
	}
	return avg, nil
}

package ml

import (
	"fmt"
	"math/rand"
)

// Layer is one differentiable stage of a feed-forward network. Layers carry
// their own parameters and cache the forward activations they need for the
// backward pass, so a Layer instance must not be shared between networks.
type Layer interface {
	// Forward maps a batch of n samples (x has n*InDim entries) to n*OutDim.
	Forward(x []float64, n int, train bool) []float64
	// Backward receives dLoss/dOut (n*OutDim) and returns dLoss/dIn
	// (n*InDim), accumulating parameter gradients.
	Backward(grad []float64, n int) []float64
	// Params exposes trainable tensors (empty for stateless layers).
	Params() []Param
	// InDim and OutDim are the flattened per-sample sizes.
	InDim() int
	OutDim() int
	// Name identifies the layer in errors and logs.
	Name() string
}

// Dense is a fully connected layer: y = Wx + b.
type Dense struct {
	in, out int
	w, b    Param
	lastX   []float64
}

var _ Layer = (*Dense)(nil)

// NewDense builds a fully connected layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{in: in, out: out, w: newParam(in * out), b: newParam(out)}
	xavierInit(d.w.W, in, out, rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64, n int, _ bool) []float64 {
	d.lastX = x
	y := make([]float64, n*d.out)
	for s := 0; s < n; s++ {
		xi := x[s*d.in : (s+1)*d.in]
		yi := y[s*d.out : (s+1)*d.out]
		for o := 0; o < d.out; o++ {
			sum := d.b.W[o]
			row := d.w.W[o*d.in : (o+1)*d.in]
			for i, xv := range xi {
				sum += row[i] * xv
			}
			yi[o] = sum
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64, n int) []float64 {
	gx := make([]float64, n*d.in)
	for s := 0; s < n; s++ {
		xi := d.lastX[s*d.in : (s+1)*d.in]
		gi := grad[s*d.out : (s+1)*d.out]
		gxi := gx[s*d.in : (s+1)*d.in]
		for o := 0; o < d.out; o++ {
			g := gi[o]
			if g == 0 {
				continue
			}
			d.b.G[o] += g
			row := d.w.W[o*d.in : (o+1)*d.in]
			growRow := d.w.G[o*d.in : (o+1)*d.in]
			for i, xv := range xi {
				growRow[i] += g * xv
				gxi[i] += g * row[i]
			}
		}
	}
	return gx
}

// Params implements Layer.
func (d *Dense) Params() []Param { return []Param{d.w, d.b} }

// InDim implements Layer.
func (d *Dense) InDim() int { return d.in }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.out }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d→%d)", d.in, d.out) }

// ReLU is the rectified linear activation.
type ReLU struct {
	dim  int
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU builds a ReLU over dim features.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward implements Layer.
func (r *ReLU) Forward(x []float64, n int, _ bool) []float64 {
	y := make([]float64, len(x))
	if cap(r.mask) < len(x) {
		r.mask = make([]bool, len(x))
	}
	r.mask = r.mask[:len(x)]
	for i, v := range x {
		if v > 0 {
			y[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad []float64, _ int) []float64 {
	gx := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			gx[i] = g
		}
	}
	return gx
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// InDim implements Layer.
func (r *ReLU) InDim() int { return r.dim }

// OutDim implements Layer.
func (r *ReLU) OutDim() int { return r.dim }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Dropout zeroes activations with probability Rate during training (inverted
// dropout: survivors are scaled by 1/(1−Rate)), and is the identity at
// evaluation time.
type Dropout struct {
	dim  int
	rate float64
	rng  *rand.Rand
	keep []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout builds a dropout layer; rate is clamped to [0, 0.95].
func NewDropout(dim int, rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 {
		rate = 0
	}
	if rate > 0.95 {
		rate = 0.95
	}
	return &Dropout{dim: dim, rate: rate, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x []float64, _ int, train bool) []float64 {
	if !train || d.rate == 0 {
		d.keep = nil
		return x
	}
	y := make([]float64, len(x))
	if cap(d.keep) < len(x) {
		d.keep = make([]bool, len(x))
	}
	d.keep = d.keep[:len(x)]
	scale := 1 / (1 - d.rate)
	for i, v := range x {
		if d.rng.Float64() >= d.rate {
			y[i] = v * scale
			d.keep[i] = true
		} else {
			d.keep[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad []float64, _ int) []float64 {
	if d.keep == nil {
		return grad
	}
	gx := make([]float64, len(grad))
	scale := 1 / (1 - d.rate)
	for i, g := range grad {
		if d.keep[i] {
			gx[i] = g * scale
		}
	}
	return gx
}

// Params implements Layer.
func (d *Dropout) Params() []Param { return nil }

// InDim implements Layer.
func (d *Dropout) InDim() int { return d.dim }

// OutDim implements Layer.
func (d *Dropout) OutDim() int { return d.dim }

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2g)", d.rate) }

// Conv2D is a valid-padding, stride-1 2D convolution over channel-major
// feature maps ([c][h][w] flattened).
type Conv2D struct {
	inC, inH, inW int
	outC, k       int
	outH, outW    int
	w, b          Param
	lastX         []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution with outC kernels of size k×k over an
// inC×inH×inW input.
func NewConv2D(inC, inH, inW, outC, k int, rng *rand.Rand) (*Conv2D, error) {
	if k < 1 || inH < k || inW < k {
		return nil, fmt.Errorf("ml: conv kernel %d does not fit input %dx%d", k, inH, inW)
	}
	c := &Conv2D{
		inC: inC, inH: inH, inW: inW,
		outC: outC, k: k,
		outH: inH - k + 1, outW: inW - k + 1,
		w: newParam(outC * inC * k * k),
		b: newParam(outC),
	}
	xavierInit(c.w.W, inC*k*k, outC*k*k, rng)
	return c, nil
}

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64, n int, _ bool) []float64 {
	c.lastX = x
	inSize := c.InDim()
	outSize := c.OutDim()
	y := make([]float64, n*outSize)
	for s := 0; s < n; s++ {
		xi := x[s*inSize : (s+1)*inSize]
		yi := y[s*outSize : (s+1)*outSize]
		for oc := 0; oc < c.outC; oc++ {
			bias := c.b.W[oc]
			for oh := 0; oh < c.outH; oh++ {
				for ow := 0; ow < c.outW; ow++ {
					sum := bias
					for ic := 0; ic < c.inC; ic++ {
						base := ic * c.inH * c.inW
						wBase := (oc*c.inC + ic) * c.k * c.k
						for kh := 0; kh < c.k; kh++ {
							rowOff := base + (oh+kh)*c.inW + ow
							wOff := wBase + kh*c.k
							for kw := 0; kw < c.k; kw++ {
								sum += xi[rowOff+kw] * c.w.W[wOff+kw]
							}
						}
					}
					yi[oc*c.outH*c.outW+oh*c.outW+ow] = sum
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad []float64, n int) []float64 {
	inSize := c.InDim()
	outSize := c.OutDim()
	gx := make([]float64, n*inSize)
	for s := 0; s < n; s++ {
		xi := c.lastX[s*inSize : (s+1)*inSize]
		gi := grad[s*outSize : (s+1)*outSize]
		gxi := gx[s*inSize : (s+1)*inSize]
		for oc := 0; oc < c.outC; oc++ {
			for oh := 0; oh < c.outH; oh++ {
				for ow := 0; ow < c.outW; ow++ {
					g := gi[oc*c.outH*c.outW+oh*c.outW+ow]
					if g == 0 {
						continue
					}
					c.b.G[oc] += g
					for ic := 0; ic < c.inC; ic++ {
						base := ic * c.inH * c.inW
						wBase := (oc*c.inC + ic) * c.k * c.k
						for kh := 0; kh < c.k; kh++ {
							rowOff := base + (oh+kh)*c.inW + ow
							wOff := wBase + kh*c.k
							for kw := 0; kw < c.k; kw++ {
								c.w.G[wOff+kw] += g * xi[rowOff+kw]
								gxi[rowOff+kw] += g * c.w.W[wOff+kw]
							}
						}
					}
				}
			}
		}
	}
	return gx
}

// Params implements Layer.
func (c *Conv2D) Params() []Param { return []Param{c.w, c.b} }

// InDim implements Layer.
func (c *Conv2D) InDim() int { return c.inC * c.inH * c.inW }

// OutDim implements Layer.
func (c *Conv2D) OutDim() int { return c.outC * c.outH * c.outW }

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d→%d,k=%d)", c.inC, c.inH, c.inW, c.outC, c.k)
}

// OutShape returns the output channel count and spatial dims, for stacking.
func (c *Conv2D) OutShape() (ch, h, w int) { return c.outC, c.outH, c.outW }

// MaxPool2D is a 2×2, stride-2 max pool over channel-major feature maps.
// Odd trailing rows/columns are dropped, matching common framework defaults.
type MaxPool2D struct {
	ch, inH, inW int
	outH, outW   int
	argmax       []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D builds the pool for a ch×inH×inW input.
func NewMaxPool2D(ch, inH, inW int) (*MaxPool2D, error) {
	if inH < 2 || inW < 2 {
		return nil, fmt.Errorf("ml: maxpool input %dx%d too small", inH, inW)
	}
	return &MaxPool2D{ch: ch, inH: inH, inW: inW, outH: inH / 2, outW: inW / 2}, nil
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x []float64, n int, _ bool) []float64 {
	inSize := m.InDim()
	outSize := m.OutDim()
	y := make([]float64, n*outSize)
	if cap(m.argmax) < n*outSize {
		m.argmax = make([]int, n*outSize)
	}
	m.argmax = m.argmax[:n*outSize]
	for s := 0; s < n; s++ {
		xi := x[s*inSize : (s+1)*inSize]
		for c := 0; c < m.ch; c++ {
			base := c * m.inH * m.inW
			for oh := 0; oh < m.outH; oh++ {
				for ow := 0; ow < m.outW; ow++ {
					bestIdx := base + (2*oh)*m.inW + 2*ow
					best := xi[bestIdx]
					for dh := 0; dh < 2; dh++ {
						for dw := 0; dw < 2; dw++ {
							idx := base + (2*oh+dh)*m.inW + (2*ow + dw)
							if xi[idx] > best {
								best, bestIdx = xi[idx], idx
							}
						}
					}
					out := s*outSize + c*m.outH*m.outW + oh*m.outW + ow
					y[out] = best
					m.argmax[out] = s*inSize + bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad []float64, n int) []float64 {
	gx := make([]float64, n*m.InDim())
	for i, g := range grad {
		gx[m.argmax[i]] += g
	}
	return gx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []Param { return nil }

// InDim implements Layer.
func (m *MaxPool2D) InDim() int { return m.ch * m.inH * m.inW }

// OutDim implements Layer.
func (m *MaxPool2D) OutDim() int { return m.ch * m.outH * m.outW }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return "maxpool2" }

// OutShape returns the output channel count and spatial dims, for stacking.
func (m *MaxPool2D) OutShape() (ch, h, w int) { return m.ch, m.outH, m.outW }

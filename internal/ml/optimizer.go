package ml

// SGD is stochastic gradient descent with classical momentum:
// v ← μv − lr·g; w ← w + v. With μ = 0 it is plain SGD, the local update
// rule of Eq (2) in the paper.
type SGD struct {
	params   []Param
	momentum float64
	velocity [][]float64
}

// NewSGD builds an optimizer over params with the given momentum in [0, 1).
func NewSGD(params []Param, momentum float64) *SGD {
	if momentum < 0 {
		momentum = 0
	}
	if momentum >= 1 {
		momentum = 0.99
	}
	s := &SGD{params: params, momentum: momentum}
	if momentum > 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, len(p.W))
		}
	}
	return s
}

// Step applies one update with learning rate lr using the gradients
// currently accumulated in the parameters.
func (s *SGD) Step(lr float64) {
	if s.momentum == 0 {
		for _, p := range s.params {
			for i := range p.W {
				p.W[i] -= lr * p.G[i]
			}
		}
		return
	}
	for pi, p := range s.params {
		v := s.velocity[pi]
		for i := range p.W {
			v[i] = s.momentum*v[i] - lr*p.G[i]
			p.W[i] += v[i]
		}
	}
}

// Momentum returns the configured momentum coefficient.
func (s *SGD) Momentum() float64 { return s.momentum }

package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// LSTMConfig sizes the sequence classifier used for the HPNews experiments
// (embedding → LSTM → dense softmax head, mirroring the paper's LSTM model).
type LSTMConfig struct {
	// Vocab is the token id space; every token must be in [0, Vocab).
	Vocab int
	// Embed is the embedding width.
	Embed int
	// Hidden is the LSTM state width.
	Hidden int
	// Classes is the output arity.
	Classes int
	// Momentum is the SGD momentum coefficient.
	Momentum float64
}

// LSTMClassifier is a single-layer LSTM text classifier trained with
// truncated-free full BPTT (sequences in the synthetic corpus are short).
type LSTMClassifier struct {
	cfg LSTMConfig

	embed Param // [vocab][embed]
	wx    Param // [4H][embed], gate order i,f,g,o
	wh    Param // [4H][H]
	b     Param // [4H]
	headW Param // [classes][H]
	headB Param // [classes]

	opt *SGD
	rng *rand.Rand
}

var _ Classifier = (*LSTMClassifier)(nil)

// NewLSTMClassifier builds and initializes the model. Forget-gate biases
// start at 1 per standard practice.
func NewLSTMClassifier(cfg LSTMConfig, rng *rand.Rand) (*LSTMClassifier, error) {
	if cfg.Vocab < 2 || cfg.Embed < 1 || cfg.Hidden < 1 || cfg.Classes < 2 {
		return nil, fmt.Errorf("ml: invalid LSTM config %+v", cfg)
	}
	if rng == nil {
		return nil, errors.New("ml: rng is required")
	}
	m := &LSTMClassifier{
		cfg:   cfg,
		embed: newParam(cfg.Vocab * cfg.Embed),
		wx:    newParam(4 * cfg.Hidden * cfg.Embed),
		wh:    newParam(4 * cfg.Hidden * cfg.Hidden),
		b:     newParam(4 * cfg.Hidden),
		headW: newParam(cfg.Classes * cfg.Hidden),
		headB: newParam(cfg.Classes),
		rng:   rng,
	}
	xavierInit(m.embed.W, cfg.Vocab, cfg.Embed, rng)
	xavierInit(m.wx.W, cfg.Embed, cfg.Hidden, rng)
	xavierInit(m.wh.W, cfg.Hidden, cfg.Hidden, rng)
	xavierInit(m.headW.W, cfg.Hidden, cfg.Classes, rng)
	for h := 0; h < cfg.Hidden; h++ {
		m.b.W[cfg.Hidden+h] = 1 // forget gate bias
	}
	m.opt = NewSGD(m.params(), cfg.Momentum)
	return m, nil
}

func (m *LSTMClassifier) params() []Param {
	return []Param{m.embed, m.wx, m.wh, m.b, m.headW, m.headB}
}

// lstmTrace caches one sample's forward pass for BPTT.
type lstmTrace struct {
	tokens []int
	xs     [][]float64 // embedded inputs per step
	gates  [][]float64 // post-activation i,f,g,o per step (4H)
	cs     [][]float64 // cell states per step
	hs     [][]float64 // hidden states per step (hs[0] = zeros)
	logits []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward runs one sample and returns the trace (kept only when train).
func (m *LSTMClassifier) forward(tokens []int, keep bool) (*lstmTrace, []float64, error) {
	H, E := m.cfg.Hidden, m.cfg.Embed
	if len(tokens) == 0 {
		return nil, nil, errors.New("ml: empty token sequence")
	}
	tr := &lstmTrace{tokens: tokens}
	h := make([]float64, H)
	c := make([]float64, H)
	if keep {
		tr.hs = append(tr.hs, append([]float64(nil), h...))
		tr.cs = append(tr.cs, append([]float64(nil), c...))
	}
	for _, tok := range tokens {
		if tok < 0 || tok >= m.cfg.Vocab {
			return nil, nil, fmt.Errorf("ml: token %d outside vocab [0, %d)", tok, m.cfg.Vocab)
		}
		x := m.embed.W[tok*E : (tok+1)*E]
		z := make([]float64, 4*H)
		for g := 0; g < 4*H; g++ {
			sum := m.b.W[g]
			rowX := m.wx.W[g*E : (g+1)*E]
			for e := 0; e < E; e++ {
				sum += rowX[e] * x[e]
			}
			rowH := m.wh.W[g*H : (g+1)*H]
			for j := 0; j < H; j++ {
				sum += rowH[j] * h[j]
			}
			z[g] = sum
		}
		newH := make([]float64, H)
		newC := make([]float64, H)
		for j := 0; j < H; j++ {
			iG := sigmoid(z[j])
			fG := sigmoid(z[H+j])
			gG := math.Tanh(z[2*H+j])
			oG := sigmoid(z[3*H+j])
			newC[j] = fG*c[j] + iG*gG
			newH[j] = oG * math.Tanh(newC[j])
			z[j], z[H+j], z[2*H+j], z[3*H+j] = iG, fG, gG, oG
		}
		h, c = newH, newC
		if keep {
			tr.xs = append(tr.xs, append([]float64(nil), x...))
			tr.gates = append(tr.gates, z)
			tr.hs = append(tr.hs, newH)
			tr.cs = append(tr.cs, newC)
		}
	}
	logits := make([]float64, m.cfg.Classes)
	for k := 0; k < m.cfg.Classes; k++ {
		sum := m.headB.W[k]
		row := m.headW.W[k*H : (k+1)*H]
		for j := 0; j < H; j++ {
			sum += row[j] * h[j]
		}
		logits[k] = sum
	}
	if keep {
		tr.logits = logits
	}
	return tr, logits, nil
}

// backward accumulates gradients for one sample given dLoss/dLogits.
func (m *LSTMClassifier) backward(tr *lstmTrace, dLogits []float64) {
	H, E := m.cfg.Hidden, m.cfg.Embed
	T := len(tr.tokens)
	dh := make([]float64, H)
	lastH := tr.hs[T]
	for k := 0; k < m.cfg.Classes; k++ {
		g := dLogits[k]
		if g == 0 {
			continue
		}
		m.headB.G[k] += g
		row := m.headW.W[k*H : (k+1)*H]
		growRow := m.headW.G[k*H : (k+1)*H]
		for j := 0; j < H; j++ {
			growRow[j] += g * lastH[j]
			dh[j] += g * row[j]
		}
	}
	dc := make([]float64, H)
	for t := T - 1; t >= 0; t-- {
		gates := tr.gates[t]
		cPrev := tr.cs[t]
		cCur := tr.cs[t+1]
		hPrev := tr.hs[t]
		dz := make([]float64, 4*H)
		for j := 0; j < H; j++ {
			iG, fG, gG, oG := gates[j], gates[H+j], gates[2*H+j], gates[3*H+j]
			tanhC := math.Tanh(cCur[j])
			dO := dh[j] * tanhC
			dcTotal := dc[j] + dh[j]*oG*(1-tanhC*tanhC)
			dI := dcTotal * gG
			dG := dcTotal * iG
			dF := dcTotal * cPrev[j]
			dc[j] = dcTotal * fG
			dz[j] = dI * iG * (1 - iG)
			dz[H+j] = dF * fG * (1 - fG)
			dz[2*H+j] = dG * (1 - gG*gG)
			dz[3*H+j] = dO * oG * (1 - oG)
		}
		x := tr.xs[t]
		dx := make([]float64, E)
		dhPrev := make([]float64, H)
		for g := 0; g < 4*H; g++ {
			gz := dz[g]
			if gz == 0 {
				continue
			}
			m.b.G[g] += gz
			rowX := m.wx.W[g*E : (g+1)*E]
			growX := m.wx.G[g*E : (g+1)*E]
			for e := 0; e < E; e++ {
				growX[e] += gz * x[e]
				dx[e] += gz * rowX[e]
			}
			rowH := m.wh.W[g*H : (g+1)*H]
			growH := m.wh.G[g*H : (g+1)*H]
			for j := 0; j < H; j++ {
				growH[j] += gz * hPrev[j]
				dhPrev[j] += gz * rowH[j]
			}
		}
		tok := tr.tokens[t]
		embRow := m.embed.G[tok*E : (tok+1)*E]
		for e := 0; e < E; e++ {
			embRow[e] += dx[e]
		}
		dh = dhPrev
	}
}

// TrainEpoch implements Classifier.
func (m *LSTMClassifier) TrainEpoch(samples []Sample, batchSize int, lr float64, rng *rand.Rand) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if rng == nil {
		rng = m.rng
	}
	idx := shuffledIndices(len(samples), rng)
	totalLoss := 0.0
	dLogits := make([]float64, m.cfg.Classes)
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		b := end - start
		zeroGrads(m.params())
		for i := start; i < end; i++ {
			s := samples[idx[i]]
			if s.Label < 0 || s.Label >= m.cfg.Classes {
				return 0, fmt.Errorf("ml: label %d outside [0, %d)", s.Label, m.cfg.Classes)
			}
			tr, logits, err := m.forward(s.Tokens, true)
			if err != nil {
				return 0, err
			}
			totalLoss += softmaxCrossEntropy(logits, s.Label, dLogits)
			invB := 1 / float64(b)
			for k := range dLogits {
				dLogits[k] *= invB
			}
			m.backward(tr, dLogits)
		}
		m.opt.Step(lr)
	}
	return totalLoss / float64(len(samples)), nil
}

// Evaluate implements Classifier.
func (m *LSTMClassifier) Evaluate(samples []Sample) (float64, float64, error) {
	if len(samples) == 0 {
		return 0, 0, ErrNoSamples
	}
	totalLoss, correct := 0.0, 0
	grad := make([]float64, m.cfg.Classes)
	for _, s := range samples {
		_, logits, err := m.forward(s.Tokens, false)
		if err != nil {
			return 0, 0, err
		}
		totalLoss += softmaxCrossEntropy(logits, s.Label, grad)
		if Argmax(logits) == s.Label {
			correct++
		}
	}
	return totalLoss / float64(len(samples)), float64(correct) / float64(len(samples)), nil
}

// ParamVector implements Classifier.
func (m *LSTMClassifier) ParamVector() []float64 { return flatten(m.params()) }

// SetParamVector implements Classifier.
func (m *LSTMClassifier) SetParamVector(v []float64) error { return unflatten(m.params(), v) }

// NumParams implements Classifier.
func (m *LSTMClassifier) NumParams() int { return countParams(m.params()) }

// Clone implements Classifier.
func (m *LSTMClassifier) Clone() Classifier {
	cl, err := NewLSTMClassifier(m.cfg, rand.New(rand.NewSource(m.rng.Int63())))
	if err != nil {
		panic(fmt.Sprintf("ml: clone rebuild failed: %v", err))
	}
	if err := cl.SetParamVector(m.ParamVector()); err != nil {
		panic(fmt.Sprintf("ml: clone parameter copy failed: %v", err))
	}
	return cl
}

// Config returns the model's configuration.
func (m *LSTMClassifier) Config() LSTMConfig { return m.cfg }

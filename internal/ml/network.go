package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Network is a feed-forward classifier (the CNN path of the paper's
// simulator): a stack of layers followed by a softmax cross-entropy head.
// It trains with mini-batch SGD with momentum.
type Network struct {
	layers  []Layer
	classes int
	opt     *SGD

	builder func(rng *rand.Rand) ([]Layer, error)
	rng     *rand.Rand
}

var _ Classifier = (*Network)(nil)

// NewNetwork assembles a network from a builder function. The builder
// pattern (rather than accepting layers directly) lets Clone construct
// architecturally identical fresh layers before copying parameters —
// layers cache activations and must never be shared.
func NewNetwork(classes int, momentum float64, rng *rand.Rand, builder func(rng *rand.Rand) ([]Layer, error)) (*Network, error) {
	if classes < 2 {
		return nil, fmt.Errorf("ml: need >= 2 classes, got %d", classes)
	}
	if rng == nil {
		return nil, errors.New("ml: rng is required")
	}
	layers, err := builder(rng)
	if err != nil {
		return nil, err
	}
	if len(layers) == 0 {
		return nil, errors.New("ml: builder produced no layers")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutDim() != layers[i].InDim() {
			return nil, fmt.Errorf("ml: layer %d (%s) outputs %d but layer %d (%s) expects %d",
				i-1, layers[i-1].Name(), layers[i-1].OutDim(), i, layers[i].Name(), layers[i].InDim())
		}
	}
	if layers[len(layers)-1].OutDim() != classes {
		return nil, fmt.Errorf("ml: final layer outputs %d, want %d classes",
			layers[len(layers)-1].OutDim(), classes)
	}
	n := &Network{
		layers:  layers,
		classes: classes,
		builder: builder,
		rng:     rng,
	}
	n.opt = NewSGD(n.params(), momentum)
	return n, nil
}

func (n *Network) params() []Param {
	var ps []Param
	for _, l := range n.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InDim returns the expected per-sample feature length.
func (n *Network) InDim() int { return n.layers[0].InDim() }

// forward runs the full stack on a batch.
func (n *Network) forward(x []float64, batch int, train bool) []float64 {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h, batch, train)
	}
	return h
}

// TrainEpoch implements Classifier.
func (n *Network) TrainEpoch(samples []Sample, batchSize int, lr float64, rng *rand.Rand) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if rng == nil {
		rng = n.rng
	}
	idx := shuffledIndices(len(samples), rng)
	totalLoss := 0.0
	in := n.InDim()
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		b := end - start
		x := make([]float64, b*in)
		labels := make([]int, b)
		for i := 0; i < b; i++ {
			s := samples[idx[start+i]]
			if len(s.Features) != in {
				return 0, fmt.Errorf("ml: sample has %d features, network expects %d", len(s.Features), in)
			}
			if s.Label < 0 || s.Label >= n.classes {
				return 0, fmt.Errorf("ml: label %d outside [0, %d)", s.Label, n.classes)
			}
			copy(x[i*in:(i+1)*in], s.Features)
			labels[i] = s.Label
		}
		logits := n.forward(x, b, true)
		grad := make([]float64, len(logits))
		for i := 0; i < b; i++ {
			totalLoss += softmaxCrossEntropy(logits[i*n.classes:(i+1)*n.classes], labels[i], grad[i*n.classes:(i+1)*n.classes])
		}
		// Mean gradient over the batch.
		invB := 1 / float64(b)
		for i := range grad {
			grad[i] *= invB
		}
		zeroGrads(n.params())
		g := grad
		for li := len(n.layers) - 1; li >= 0; li-- {
			g = n.layers[li].Backward(g, b)
		}
		n.opt.Step(lr)
	}
	return totalLoss / float64(len(samples)), nil
}

// Evaluate implements Classifier.
func (n *Network) Evaluate(samples []Sample) (float64, float64, error) {
	if len(samples) == 0 {
		return 0, 0, ErrNoSamples
	}
	in := n.InDim()
	totalLoss, correct := 0.0, 0
	grad := make([]float64, n.classes)
	const evalBatch = 64
	for start := 0; start < len(samples); start += evalBatch {
		end := start + evalBatch
		if end > len(samples) {
			end = len(samples)
		}
		b := end - start
		x := make([]float64, b*in)
		for i := 0; i < b; i++ {
			s := samples[start+i]
			if len(s.Features) != in {
				return 0, 0, fmt.Errorf("ml: sample has %d features, network expects %d", len(s.Features), in)
			}
			copy(x[i*in:(i+1)*in], s.Features)
		}
		logits := n.forward(x, b, false)
		for i := 0; i < b; i++ {
			row := logits[i*n.classes : (i+1)*n.classes]
			totalLoss += softmaxCrossEntropy(row, samples[start+i].Label, grad)
			if Argmax(row) == samples[start+i].Label {
				correct++
			}
		}
	}
	return totalLoss / float64(len(samples)), float64(correct) / float64(len(samples)), nil
}

// Predict returns the class probabilities for one sample.
func (n *Network) Predict(features []float64) ([]float64, error) {
	if len(features) != n.InDim() {
		return nil, fmt.Errorf("ml: sample has %d features, network expects %d", len(features), n.InDim())
	}
	logits := n.forward(features, 1, false)
	probs := make([]float64, n.classes)
	softmaxCrossEntropy(logits, 0, probs)
	// softmaxCrossEntropy wrote probs − onehot(0); undo the onehot.
	probs[0]++
	return probs, nil
}

// ParamVector implements Classifier.
func (n *Network) ParamVector() []float64 { return flatten(n.params()) }

// SetParamVector implements Classifier.
func (n *Network) SetParamVector(v []float64) error { return unflatten(n.params(), v) }

// NumParams implements Classifier.
func (n *Network) NumParams() int { return countParams(n.params()) }

// Clone implements Classifier: a fresh network with identical architecture,
// parameters, and optimizer settings (momentum state is not carried over,
// matching a newly recruited federated client).
func (n *Network) Clone() Classifier {
	// The builder already validated once; a second run cannot fail with the
	// same inputs, but keep the error path honest.
	cl, err := NewNetwork(n.classes, n.opt.Momentum(), rand.New(rand.NewSource(n.rng.Int63())), n.builder)
	if err != nil {
		panic(fmt.Sprintf("ml: clone rebuild failed: %v", err))
	}
	if err := cl.SetParamVector(n.ParamVector()); err != nil {
		panic(fmt.Sprintf("ml: clone parameter copy failed: %v", err))
	}
	return cl
}

// Package ml is a compact, dependency-free deep-learning substrate built for
// the FMore reproduction. The paper trains its federated models (two CNNs and
// an LSTM) on TensorFlow; this package provides the equivalent building
// blocks in pure Go: dense/convolution/pooling/dropout layers, an LSTM
// sequence classifier, softmax cross-entropy, and SGD with momentum — plus
// the flat parameter-vector accessors FedAvg aggregation needs.
//
// Models are deliberately narrower than the paper's (the incentive results
// depend on relative convergence behaviour, not absolute accuracy), but the
// architectures keep the same shape: conv → pool → dropout → dense → softmax
// for images, embedding → LSTM → dense for text.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Sample is one training or test example. Image/tabular models read
// Features; sequence models read Tokens. Label is the class index.
type Sample struct {
	Features []float64
	Tokens   []int
	Label    int
}

// Classifier is the training-side contract the federated-learning engine
// depends on: local mini-batch training, evaluation, and flat parameter
// access for global aggregation (Eqs 2 and 3 of the paper).
type Classifier interface {
	// TrainEpoch runs one epoch of mini-batch SGD over samples and returns
	// the mean training loss.
	TrainEpoch(samples []Sample, batchSize int, lr float64, rng *rand.Rand) (float64, error)
	// Evaluate returns mean cross-entropy loss and accuracy over samples.
	Evaluate(samples []Sample) (loss, acc float64, err error)
	// ParamVector returns a copy of all trainable parameters, flattened.
	ParamVector() []float64
	// SetParamVector overwrites all trainable parameters from v.
	SetParamVector(v []float64) error
	// NumParams returns the total number of trainable parameters.
	NumParams() int
	// Clone returns an independent copy with identical parameters.
	Clone() Classifier
}

// Param is one trainable tensor: the weight storage and its gradient
// accumulator, always the same length.
type Param struct {
	W []float64
	G []float64
}

// newParam allocates a parameter of length n.
func newParam(n int) Param {
	return Param{W: make([]float64, n), G: make([]float64, n)}
}

// zeroGrads clears the gradient accumulators of all params.
func zeroGrads(params []Param) {
	for _, p := range params {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// flatten copies all weights into a single vector.
func flatten(params []Param) []float64 {
	n := 0
	for _, p := range params {
		n += len(p.W)
	}
	out := make([]float64, 0, n)
	for _, p := range params {
		out = append(out, p.W...)
	}
	return out
}

// unflatten copies v into the weights; v must have exactly the right length.
func unflatten(params []Param, v []float64) error {
	n := 0
	for _, p := range params {
		n += len(p.W)
	}
	if len(v) != n {
		return fmt.Errorf("ml: parameter vector has %d entries, model needs %d", len(v), n)
	}
	off := 0
	for _, p := range params {
		copy(p.W, v[off:off+len(p.W)])
		off += len(p.W)
	}
	return nil
}

// countParams sums the weight lengths.
func countParams(params []Param) int {
	n := 0
	for _, p := range params {
		n += len(p.W)
	}
	return n
}

// ErrNoSamples reports training or evaluation on an empty sample set.
var ErrNoSamples = errors.New("ml: no samples")

// Argmax returns the index of the largest value.
func Argmax(v []float64) int {
	best, bestIdx := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bestIdx = x, i
		}
	}
	return bestIdx
}

// softmaxCrossEntropy computes, in place over logits, the softmax
// probabilities; it returns the cross-entropy loss against label and writes
// the gradient (probs − onehot) into grad.
func softmaxCrossEntropy(logits []float64, label int, grad []float64) float64 {
	maxLogit := math.Inf(-1)
	for _, v := range logits {
		if v > maxLogit {
			maxLogit = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxLogit)
		grad[i] = e
		sum += e
	}
	loss := 0.0
	for i := range grad {
		grad[i] /= sum
		if i == label {
			p := grad[i]
			if p < 1e-12 {
				p = 1e-12
			}
			loss = -math.Log(p)
			grad[i] -= 1
		}
	}
	return loss
}

// xavierInit fills w with Glorot-uniform values for fanIn/fanOut.
func xavierInit(w []float64, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * limit
	}
}

// shuffledIndices returns a permutation of [0, n).
func shuffledIndices(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

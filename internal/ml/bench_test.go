package ml

import (
	"math/rand"
	"testing"
)

// BenchmarkCNNTrainEpoch measures one local-training epoch of the
// MNIST-shaped CNN on a 64-sample shard — a winner's per-round work.
func BenchmarkCNNTrainEpoch(b *testing.B) {
	m, err := NewImageCNN(MNISTCNNConfig(12, 12), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 64)
	for i := range samples {
		x := make([]float64, 12*12)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		samples[i] = Sample{Features: x, Label: i % 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainEpoch(samples, 16, 0.04, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMTrainEpoch measures the text model's local epoch.
func BenchmarkLSTMTrainEpoch(b *testing.B) {
	m, err := NewLSTMClassifier(LSTMConfig{Vocab: 48, Embed: 10, Hidden: 20, Classes: 10, Momentum: 0.9},
		rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 64)
	for i := range samples {
		toks := make([]int, 10)
		for j := range toks {
			toks[j] = rng.Intn(48)
		}
		samples[i] = Sample{Tokens: toks, Label: i % 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.TrainEpoch(samples, 16, 0.05, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParamVectorRoundTrip measures the FedAvg serialization path:
// flattening and restoring a full model parameter vector.
func BenchmarkParamVectorRoundTrip(b *testing.B) {
	m, err := NewImageCNN(CIFARCNNConfig(12, 12), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := m.ParamVector()
		if err := m.SetParamVector(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCNNEvaluate measures the aggregator's per-round test evaluation.
func BenchmarkCNNEvaluate(b *testing.B) {
	m, err := NewImageCNN(MNISTCNNConfig(12, 12), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	samples := make([]Sample, 200)
	for i := range samples {
		x := make([]float64, 12*12)
		for d := range x {
			x[d] = rng.NormFloat64()
		}
		samples[i] = Sample{Features: x, Label: i % 10}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Evaluate(samples); err != nil {
			b.Fatal(err)
		}
	}
}
